// Package pathhist is a library for online travel-time histogram retrieval
// over network-constrained trajectories, reproducing Waury, Jensen, Koide,
// Ishikawa and Xiao: "Indexing Trajectories for Travel-Time Histogram
// Retrieval" (EDBT 2019).
//
// Given a road network and a set of map-matched trajectories, an Engine
// answers travel-time queries for arbitrary paths: the path is partitioned
// into sub-paths (by road category, zone type, or fixed length), each
// sub-path is answered with a strict path query against an extended
// SNT-index (an FM-index over the trajectory string plus a temporal tree
// forest holding traversal times), failing sub-queries are greedily relaxed
// (interval widening, path splitting, predicate dropping, speed-limit
// fallback), and the per-sub-path histograms are convolved into a histogram
// for the full path. A cardinality estimator skips index scans for
// sub-queries that cannot meet their sample-size requirement.
//
// Quick start:
//
//	g, ids := pathhist.PaperExampleNetwork()
//	store := pathhist.NewStore()
//	// ... add trajectories ...
//	eng, err := pathhist.NewEngine(g, store, pathhist.Options{})
//	res, err := eng.Query(pathhist.Query{
//	    Path: pathhist.Path{ids["A"], ids["B"], ids["E"]},
//	    Around: t0, WindowSeconds: 900, Beta: 20,
//	})
//	fmt.Println(res.Histogram.Mean(), res.Histogram.Quantile(0.95))
//
// The internal packages implement each subsystem: see DESIGN.md for the
// inventory and EXPERIMENTS.md for the reproduced evaluation.
package pathhist

import (
	"context"
	"errors"
	"fmt"
	"io"

	"pathhist/internal/card"
	"pathhist/internal/hist"
	"pathhist/internal/network"
	"pathhist/internal/query"
	"pathhist/internal/snapio"
	"pathhist/internal/snt"
	"pathhist/internal/temporal"
	"pathhist/internal/traj"
)

// Re-exported core types. The network and trajectory models are the
// library's vocabulary; aliases keep one canonical definition.
type (
	// Graph is the spatial road network G = (V, E, F).
	Graph = network.Graph
	// Path is a traversable sequence of directed edges.
	Path = network.Path
	// EdgeID identifies a directed edge.
	EdgeID = network.EdgeID
	// Store holds the trajectory set T.
	Store = traj.Store
	// Entry is one traversed segment of a trajectory.
	Entry = traj.Entry
	// TrajID identifies a trajectory.
	TrajID = traj.ID
	// UserID identifies a driver.
	UserID = traj.UserID
	// Histogram is a travel-time histogram.
	Histogram = hist.Histogram
)

// NoUser disables user filtering.
const NoUser = traj.NoUser

// Zone is the zone type of a road segment.
type Zone = network.Zone

// Zone types.
const (
	ZoneCity        = network.ZoneCity
	ZoneRural       = network.ZoneRural
	ZoneSummerHouse = network.ZoneSummerHouse
	ZoneAmbiguous   = network.ZoneAmbiguous
)

// NewStore returns an empty trajectory store.
func NewStore() *Store { return traj.NewStore() }

// NewGraph returns an empty road network.
func NewGraph() *Graph { return network.New() }

// ReadGraph deserialises a road network written with Graph.WriteTo.
func ReadGraph(r io.Reader) (*Graph, error) { return network.ReadGraph(r) }

// ReadStore deserialises a trajectory store written with Store.WriteTo.
func ReadStore(r io.Reader) (*Store, error) { return traj.ReadStore(r) }

// PaperExampleNetwork returns the Figure 1 / Table 1 example network and a
// name-to-edge mapping for segments "A".."F".
func PaperExampleNetwork() (*Graph, map[string]EdgeID) { return network.PaperExample() }

// TreeKind selects the temporal forest implementation.
type TreeKind = temporal.TreeKind

// Temporal tree kinds.
const (
	CSSTree   = temporal.CSS
	BPlusTree = temporal.BPlus
)

// PartitionMethod selects the initial query partitioning π (Section 3.2).
type PartitionMethod int

// Partitioning methods.
const (
	// ByZone splits sub-paths at zone-type changes (πZ, the paper's best).
	ByZone PartitionMethod = iota
	// ByCategory splits at road-category changes (πC).
	ByCategory
	// ByZoneAndCategory splits at either change (πZC).
	ByZoneAndCategory
	// NoPartition processes the whole path as one sub-query (πN).
	NoPartition
	// MainRoadUserFilters is πMDM: like ByCategory, with user filters
	// applied only on main roads.
	MainRoadUserFilters
	// EverySegment is π1 (the pre-computable per-segment baseline).
	EverySegment
)

func (m PartitionMethod) partitioner() query.Partitioner {
	switch m {
	case ByCategory:
		return query.Partitioner{Kind: query.Category}
	case ByZoneAndCategory:
		return query.Partitioner{Kind: query.ZoneCategory}
	case NoPartition:
		return query.Partitioner{Kind: query.None}
	case MainRoadUserFilters:
		return query.Partitioner{Kind: query.MDM}
	case EverySegment:
		return query.Partitioner{Kind: query.Regular, P: 1}
	default:
		return query.Partitioner{Kind: query.ZoneKind}
	}
}

// EstimatorMode selects the cardinality estimator (Section 4.4).
type EstimatorMode = card.Mode

// Estimator modes.
const (
	EstimatorOff     = card.Off
	EstimatorISA     = card.ISA
	EstimatorBTFast  = card.BTFast
	EstimatorBTAcc   = card.BTAcc
	EstimatorCSSFast = card.CSSFast
	EstimatorCSSAcc  = card.CSSAcc
)

// Options configures an Engine.
type Options struct {
	// Tree selects the temporal index implementation (CSS by default; the
	// paper finds it at least as fast as the B+-tree and smaller).
	Tree TreeKind
	// PartitionDays enables temporal index partitioning with the given
	// partition size in days (0 = one partition).
	PartitionDays int
	// Partition selects π (ByZone by default).
	Partition PartitionMethod
	// RegularP, when > 0, overrides Partition with the regular πp
	// partitioning into sub-paths of length p (the paper's baselines use
	// p = 1, 2, 3).
	RegularP int
	// LongestPrefixSplitting uses σL instead of the default (and per the
	// paper both faster and more accurate) regular halving σR.
	LongestPrefixSplitting bool
	// Estimator enables cardinality estimation. EstimatorCSSFast pairs
	// with CSSTree; EstimatorBTFast/BTAcc with BPlusTree.
	Estimator EstimatorMode
	// BucketSeconds is the histogram bucket width h (default 10 s).
	BucketSeconds int
	// IntervalSizes is the widening ladder A in seconds (default: 15, 30,
	// 45, 60, 90, 120 minutes).
	IntervalSizes []int64
	// OldestFirst scans temporal data forward in time instead of the
	// default newest-first order.
	OldestFirst bool
	// ZoneBetas overrides a query's Beta per initial sub-query by the
	// zone of its first segment — e.g. a smaller sample-size requirement
	// in rural zones (the extension suggested in the paper's outlook).
	ZoneBetas map[Zone]int
	// Workers bounds the per-query worker pool that executes a query's
	// initial sub-queries speculatively in parallel: 0 uses GOMAXPROCS,
	// 1 forces the paper's sequential Procedure 6. Results are identical
	// either way; see DESIGN.md §6.
	Workers int
	// DisableCache turns off the engine's shared sub-result cache.
	DisableCache bool
	// CacheCapacity is the total number of cached sub-results (a default
	// applies when 0).
	CacheCapacity int
	// DisableFullResultCache turns off the engine's full-result cache,
	// which memoises the final convolved histogram per (path, interval,
	// filter, beta) so repeated trips skip processing entirely.
	DisableFullResultCache bool
	// FullResultCacheCapacity is the total number of cached full results
	// (a default applies when 0).
	FullResultCacheCapacity int
	// AutoCompactPartitions enables automatic partition compaction: when a
	// batch ingest leaves the index with at least this many temporal
	// partitions, Extend merges them back down (off the serving path,
	// published as its own epoch) before returning. Repeated small ingests
	// otherwise degrade query latency linearly — every partition costs one
	// FM-index backward search per sub-query. 0 disables auto-compaction;
	// Engine.Compact remains available either way.
	AutoCompactPartitions int
	// MaxCompactedRecords caps one merged partition's traversal-record
	// count, making compaction size-tiered (partitions at or above the cap
	// are left alone). 0 merges without bound: compaction always yields a
	// single partition.
	MaxCompactedRecords int
	// CompactInBackground moves auto-compaction off the ingest path: a
	// triggering Extend returns as soon as its batch is published, and a
	// background goroutine prepares the merge off the write lock (ingest
	// and queries proceed), applying and publishing it as its own epoch
	// when ready. Engines with this set must be Closed to stop the
	// goroutine. Requires AutoCompactPartitions > 0 to ever trigger.
	CompactInBackground bool
	// MaxCompactionRuns caps how many partition runs one background
	// compaction cycle merges — the incremental-merge bound that keeps any
	// single publication small. 0 merges all plannable runs at once.
	MaxCompactionRuns int
}

// Engine answers travel-time queries over an indexed trajectory set.
//
// An Engine is safe for concurrent use by any number of goroutines: the
// served index snapshot is immutable, per-query scan state lives in pooled
// scratch buffers, and the shared caches are internally synchronised. A
// single Engine is meant to be shared by all request handlers of a server
// (see internal/ttserve).
//
// The one mutation an Engine supports is batch ingestion: Extend absorbs a
// batch of newer trajectories by building a copy-on-write index snapshot
// next to the serving one and publishing it atomically as a new epoch.
// Queries never block on an Extend — in-flight queries finish against the
// snapshot they started on, and cached results are epoch-stamped so none
// ever crosses the boundary (see DESIGN.md §8).
type Engine struct {
	g  *network.Graph
	qe *query.Engine

	// mapping is the read-only backing store of a zero-copy snapshot load
	// (LoadSnapshotFileMapped); nil for built or copy-loaded engines. The
	// engine holds it for its whole lifetime — later epochs produced by
	// Extend/Compact share untouched columns with the mapped snapshot, so
	// it is never safe to unmap while the engine (or any Replica) is
	// reachable; process exit releases it. Snapshot retention must never
	// prune the file behind it (see MappedSnapshotPath).
	mapping *snapio.Mapping
}

// NewEngine indexes the store and returns a query engine. The store is
// sorted by trajectory start time as a side effect.
func NewEngine(g *Graph, store *Store, opts Options) (*Engine, error) {
	if g == nil || store == nil {
		return nil, errors.New("pathhist: nil graph or store")
	}
	if store.Len() == 0 {
		return nil, errors.New("pathhist: empty trajectory store")
	}
	todBucket := 0
	if opts.Estimator == card.BTAcc || opts.Estimator == card.CSSAcc {
		todBucket = 900
	}
	ix := snt.Build(g, store, snt.Options{
		Tree:             opts.Tree,
		PartitionDays:    opts.PartitionDays,
		TodBucketSeconds: todBucket,
		OldestFirst:      opts.OldestFirst,
	})
	return &Engine{g: g, qe: query.NewEngineAt(ix, engineConfig(ix, opts), 0)}, nil
}

// engineConfig translates the public Options into the internal query
// engine configuration, building the cardinality estimator against the
// index that will be served (NewEngine's freshly built one, or
// LoadSnapshot's restored one).
func engineConfig(ix *snt.Index, opts Options) query.Config {
	splitter := query.SigmaR
	if opts.LongestPrefixSplitting {
		splitter = query.SigmaL
	}
	partitioner := opts.Partition.partitioner()
	if opts.RegularP > 0 {
		partitioner = query.Partitioner{Kind: query.Regular, P: opts.RegularP}
	}
	var est *card.Estimator
	if opts.Estimator != card.Off {
		est = card.New(ix, opts.Estimator)
	}
	return query.Config{
		Partitioner:             partitioner,
		Splitter:                splitter,
		Alphas:                  opts.IntervalSizes,
		BucketWidth:             opts.BucketSeconds,
		Estimator:               est,
		ZoneBetas:               opts.ZoneBetas,
		Workers:                 opts.Workers,
		DisableCache:            opts.DisableCache,
		CacheCapacity:           opts.CacheCapacity,
		DisableFullResultCache:  opts.DisableFullResultCache,
		FullResultCacheCapacity: opts.FullResultCacheCapacity,
		Compaction: snt.CompactionPolicy{
			TriggerPartitions: opts.AutoCompactPartitions,
			MaxMergedRecords:  opts.MaxCompactedRecords,
			MaxRuns:           opts.MaxCompactionRuns,
		},
		CompactInBackground: opts.CompactInBackground,
	}
}

// IngestStats describes the snapshot one Extend published.
type IngestStats = query.IngestStats

// Extend ingests a batch of newer trajectories without rebuilding the
// engine or blocking queries. Every trajectory in the batch must start
// after the currently indexed data ends (the temporal-partitioning
// precondition of the paper's Section 4.3.2); the batch becomes one new
// temporal partition, the cardinality estimator is refreshed, and the
// post-extend index state is published atomically as a new epoch (reported
// in the returned IngestStats). The batch store is sorted by start time as
// a side effect and its trajectory ids are reassigned to continue the
// engine's id space. Concurrent Extend calls are serialised; a rejected
// batch leaves the engine unchanged.
func (e *Engine) Extend(batch *Store) (IngestStats, error) { return e.qe.Extend(batch) }

// ExtendCtx is Extend honouring a context deadline while waiting to become
// the active writer (concurrent Extends serialise on an internal lock, so a
// slow competing ingest can consume a caller's whole deadline before its
// own work starts). Once the index build begins it always runs to
// publication: a context canceled mid-build does not un-publish the batch,
// so callers never observe a batch both acknowledged and absent.
func (e *Engine) ExtendCtx(ctx context.Context, batch *Store) (IngestStats, error) {
	return e.qe.ExtendCtx(ctx, batch)
}

// ValidateExtend checks a batch against the currently published snapshot
// exactly as Extend would — edge ids in range, trajectories internally
// valid, every start time after the indexed range — without ingesting or
// mutating anything. It exists for write-ahead logging: the serving layer
// validates first, durably logs the raw batch, then Extends, so the log
// never records a batch that replay would reject. A nil error here is
// Extend's admission contract modulo a concurrent Extend (callers wanting
// the full guarantee serialise the validate→log→extend sequence).
func (e *Engine) ValidateExtend(batch *Store) error { return e.qe.Index().ValidateBatch(batch) }

// Close stops the engine's background compactor, if Options.
// CompactInBackground ever started one, and waits for a merge in flight to
// finish publishing. The engine keeps answering queries (and even Extends)
// after Close — only background merging stops. Close is idempotent.
func (e *Engine) Close() { e.qe.Close() }

// Replica returns a read-only replica of the engine: it serves the exact
// snapshot the primary publishes — the two share one atomic publication
// cell, so an Extend on the primary is visible to the replica the same
// instant and answers stay bit-identical — while owning its result caches,
// spreading concurrent read load over per-replica cache locks. A replica
// of a mapped engine (LoadSnapshotFileMapped) shares the mapping and costs
// no index memory; K replicas serve off one page cache. Extend and Compact
// on a replica fail with query.ErrFollower; Close it independently.
func (e *Engine) Replica() *Engine {
	return &Engine{g: e.g, qe: query.NewFollower(e.qe), mapping: e.mapping}
}

// MappedSnapshotPath returns the snapshot file this engine serves over a
// read-only mapping ("" when the engine was built or copy-loaded). While
// non-empty, the file must not be deleted: unlinking a mapped file keeps
// the current process serving (unix keeps the inode alive) but silently
// breaks the next restart's re-open — snapshot retention treats this path
// exactly like the loaded file and never prunes it.
func (e *Engine) MappedSnapshotPath() string {
	if e.mapping == nil {
		return ""
	}
	return e.mapping.Path()
}

// Epoch returns the engine's current index epoch: 0 at construction,
// incremented by every successful non-empty Extend and every effective
// Compact.
func (e *Engine) Epoch() uint64 { return e.qe.Epoch() }

// CompactionStats reports what one compaction did.
type CompactionStats = snt.CompactionStats

// Compact merges the index's temporal partitions per the engine's
// compaction policy (Options.MaxCompactedRecords; the manual call ignores
// the auto-compaction threshold) and publishes the compacted index as a
// new epoch. Queries never block: compaction runs off the serving path
// against an immutable snapshot, and the compacted index answers every
// query bit-identically to the fragmented one — only faster, because each
// sub-query pays one FM-index backward search per partition. Stats with
// PartitionsBefore == PartitionsAfter mean nothing needed merging.
func (e *Engine) Compact() (CompactionStats, error) { return e.qe.Compact() }

// CompactionInfo returns how many compactions this engine has published
// and the stats of the most recent one.
func (e *Engine) CompactionInfo() (int64, CompactionStats) { return e.qe.CompactionInfo() }

// CompactionFailures counts auto-compactions that failed after their
// triggering ingest was already published (the ingest succeeded either
// way; the fragmented layout lives on until the next trigger or a manual
// Compact).
func (e *Engine) CompactionFailures() int64 { return e.qe.CompactionFailures() }

// IndexInfo summarises the served index snapshot (tree kind, partitions —
// including how many the last compaction merged down from — records,
// trajectories).
func (e *Engine) IndexInfo() string { return e.qe.Index().String() }

// Trajectories returns the number of indexed trajectories in the currently
// published snapshot.
func (e *Engine) Trajectories() int { return e.qe.Index().Stats().Trajs }

// Query describes a travel-time question. Optional features are switched
// on by explicit enable flags (Periodic, FilterUser, Exclude) so that every
// id and timestamp keeps its full domain — timestamp 0, user 0 and
// trajectory 0 are all valid values, never sentinels.
type Query struct {
	// Path is the path whose travel-time distribution is requested.
	Path Path
	// Periodic asks for the periodic time-of-day window of WindowSeconds
	// centred on Around's time of day. For convenience a non-zero Around
	// implies Periodic, so the flag is only required when the window is
	// centred on the stroke of midnight (Around == 0).
	Periodic bool
	Around   int64
	// WindowSeconds is the periodic window width (default 900 = 15 min).
	WindowSeconds int64
	// From/Until give the fixed interval [From, Until) of a non-periodic
	// query. Until == 0 means the end of the indexed data.
	From, Until int64
	// FilterUser restricts results to User's trajectories (user ids are
	// valid from 0 up, so an explicit flag avoids ambiguity).
	FilterUser bool
	User       UserID
	// Beta is the per-sub-query sample-size requirement (default 20, the
	// paper's accuracy sweet spot).
	Beta int
	// Exclude hides ExcludeTraj's trajectory from retrieval, so evaluation
	// queries derived from indexed trajectories cannot retrieve themselves.
	// The flag mirrors FilterUser: trajectory ids are valid from 0 up, so
	// an explicit flag avoids the zero-value ambiguity.
	Exclude     bool
	ExcludeTraj TrajID
}

// SubEstimate describes one final sub-query of a result.
type SubEstimate struct {
	Path      Path
	MeanTT    float64
	Samples   int
	Fallback  bool // speed-limit estimate, no data
	Histogram *Histogram
}

// Result is a travel-time distribution for a full path.
type Result struct {
	// Histogram is the convolved travel-time distribution in seconds.
	Histogram *Histogram
	// MeanSeconds is the summed sub-query sample means (the paper's point
	// estimate).
	MeanSeconds float64
	// Subs are the final sub-queries in path order.
	Subs []SubEstimate
	// IndexScans and EstimatorSkips expose the processing effort.
	IndexScans     int
	EstimatorSkips int
	// CacheHits and CacheMisses count sub-queries served by the engine's
	// shared sub-result cache versus scans that reached the index.
	CacheHits   int
	CacheMisses int
	// CacheInvalidations counts cached entries from another index epoch
	// this query dropped lazily (non-zero only for queries shortly after
	// an Extend).
	CacheInvalidations int
	// FullCacheHit marks a result served whole from the engine's
	// full-result cache (all other effort counters are zero).
	FullCacheHit bool
	// Epoch is the index epoch the query ran against.
	Epoch uint64
}

// Query answers a travel-time query.
func (e *Engine) Query(q Query) (*Result, error) {
	return e.QueryCtx(context.Background(), q)
}

// QueryCtx is Query honouring context cancellation and deadlines: the
// engine checks the context at every sub-query boundary and, inside the
// index scans, every few thousand records, so even a query whose scans
// cover millions of traversal records returns within a hair of its
// deadline. A canceled query returns ctx.Err() (test with errors.Is against
// context.DeadlineExceeded / context.Canceled); no partial result is
// returned and nothing partial enters the engine's caches. With a
// background context the behaviour and the result are exactly Query's.
func (e *Engine) QueryCtx(ctx context.Context, q Query) (*Result, error) {
	if len(q.Path) == 0 {
		return nil, errors.New("pathhist: empty query path")
	}
	for _, edge := range q.Path {
		if int(edge) < 0 || int(edge) >= e.g.NumEdges() {
			return nil, fmt.Errorf("pathhist: edge id %d out of range [0, %d)", edge, e.g.NumEdges())
		}
	}
	if !e.g.IsTraversable(q.Path) {
		return nil, fmt.Errorf("pathhist: path is not traversable")
	}
	beta := q.Beta
	if beta == 0 {
		beta = 20
	}
	var iv snt.Interval
	switch {
	case q.Periodic || q.Around != 0:
		w := q.WindowSeconds
		if w <= 0 {
			w = 900
		}
		iv = snt.PeriodicAround(q.Around, w)
	default:
		until := q.Until
		if until == 0 {
			_, tmax := e.qe.Index().TimeRange()
			until = tmax + 1
		}
		iv = snt.NewFixed(q.From, until)
	}
	excl := TrajID(-1)
	if q.Exclude {
		excl = q.ExcludeTraj
	}
	user := traj.NoUser
	if q.FilterUser {
		user = q.User
	}
	spq := query.SPQ{
		Path:     q.Path,
		Interval: iv,
		Filter:   snt.Filter{User: user, ExcludeTraj: excl},
		Beta:     beta,
	}
	res, err := e.qe.TripQueryCtx(ctx, spq)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Histogram:          res.Hist,
		MeanSeconds:        res.PredictedMean(),
		IndexScans:         res.IndexScans,
		EstimatorSkips:     res.EstimatorSkips,
		CacheHits:          res.CacheHits,
		CacheMisses:        res.CacheMisses,
		CacheInvalidations: res.CacheInvalidations,
		FullCacheHit:       res.FullCacheHit,
		Epoch:              res.Epoch,
	}
	for i := range res.Subs {
		s := &res.Subs[i]
		out.Subs = append(out.Subs, SubEstimate{
			Path:      s.Path,
			MeanTT:    s.MeanX(),
			Samples:   len(s.X),
			Fallback:  s.Fallback,
			Histogram: s.Hist,
		})
	}
	return out, nil
}

// SpeedLimitEstimate returns the data-free travel-time estimate for a path
// in seconds (the estimateTT baseline).
func (e *Engine) SpeedLimitEstimate(p Path) float64 { return e.g.EstimatePathTT(p) }

// QueryEngine exposes the underlying query engine. The returned type lives
// in an internal package, so only in-module callers can use it — it exists
// for the sharded scatter-gather layer, which pins per-shard index snapshots
// and runs the relaxation procedure itself across shards (internal/sharded).
func (e *Engine) QueryEngine() *query.Engine { return e.qe }

// IndexMemory returns the modelled index memory footprint in bytes by
// component: C arrays, wavelet trees, user container, temporal forest.
func (e *Engine) IndexMemory() (c, wt, user, forest int) {
	m := e.qe.Index().Memory()
	return m.CBytes, m.WTBytes, m.UserBytes, m.ForestBytes
}

// Partitions returns the number of temporal partitions of the currently
// published snapshot (grows by one per Extend).
func (e *Engine) Partitions() int { return e.qe.Index().NumPartitions() }

// CacheStats reports the cumulative sub-result cache statistics.
type CacheStats = query.CacheStats

// CacheStats snapshots the engine's shared sub-result cache counters (all
// zero when the cache is disabled).
func (e *Engine) CacheStats() CacheStats { return e.qe.Cache() }

// FullCacheStats snapshots the engine's full-result cache counters (all
// zero when the cache is disabled).
func (e *Engine) FullCacheStats() CacheStats { return e.qe.FullCache() }
