package pathhist

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pathhist/internal/failpoint"
)

// tmpLitter returns the names of leftover .snapshot-*.tmp files in dir. A
// failed snapshot write must clean these up: litter accumulating on every
// retry is how a degraded disk fills up for good.
func tmpLitter(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var tmps []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".snapshot-") && strings.HasSuffix(e.Name(), ".tmp") {
			tmps = append(tmps, e.Name())
		}
	}
	return tmps
}

// TestSnapshotWriteFailpoints injects a failure at every stage of the
// atomic snapshot write — payload write, fsync, rename, directory fsync —
// and checks the contract each stage promises: the error surfaces, no temp
// file is left behind, and the target file either does not exist (failure
// before rename) or is complete and loadable (failure after rename). A
// clean retry then succeeds against the same directory.
func TestSnapshotWriteFailpoints(t *testing.T) {
	defer failpoint.Reset()
	g, eng, qs := lifecycleEngine(t, Options{})
	boom := errors.New("injected disk failure")

	stages := []struct {
		site string
		// renamed reports whether the failure strikes after the target
		// file was published by the rename.
		renamed bool
	}{
		{FailpointSnapshotWrite, false},
		{FailpointSnapshotSync, false},
		{FailpointSnapshotRename, false},
		{FailpointSnapshotDirSync, true},
	}
	for _, st := range stages {
		t.Run(st.site, func(t *testing.T) {
			defer failpoint.Reset()
			dir := t.TempDir()
			failpoint.Enable(st.site, failpoint.Injection{Err: boom})
			_, err := eng.SnapshotFileIn(dir)
			if !errors.Is(err, boom) {
				t.Fatalf("SnapshotFileIn error = %v, want the injected failure", err)
			}
			if tmps := tmpLitter(t, dir); len(tmps) != 0 {
				t.Fatalf("temp litter after failed write: %v", tmps)
			}
			latest, err := FindLatestSnapshot(dir)
			if err != nil {
				t.Fatal(err)
			}
			if st.renamed {
				// Failure after publication: the file is complete even if
				// the claim of durability was withdrawn.
				if latest == "" {
					t.Fatal("no snapshot file despite failing after rename")
				}
				failpoint.Reset()
				re, err := LoadSnapshotFile(g, latest, Options{})
				if err != nil {
					t.Fatalf("loading post-rename snapshot: %v", err)
				}
				assertSameAnswers(t, eng, re, qs, st.site)
			} else if latest != "" {
				t.Fatalf("snapshot file %q exists despite failing before rename", latest)
			}
			// The disk "recovers": a retry into the same directory succeeds.
			failpoint.Reset()
			stats, err := eng.SnapshotFileIn(dir)
			if err != nil {
				t.Fatalf("retry after injected failure: %v", err)
			}
			re, err := LoadSnapshotFile(g, stats.Path, Options{})
			if err != nil {
				t.Fatalf("loading retried snapshot: %v", err)
			}
			assertSameAnswers(t, eng, re, qs, st.site+"/retry")
		})
	}
}

// TestSnapshotLoadFailpoint: an injected read failure on load surfaces as
// an error naming the file, and the SkipFirst knob proves the site is
// consulted per call, not latched.
func TestSnapshotLoadFailpoint(t *testing.T) {
	defer failpoint.Reset()
	g, eng, _ := lifecycleEngine(t, Options{})
	dir := t.TempDir()
	stats, err := eng.SnapshotFileIn(dir)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected read failure")
	failpoint.Enable(FailpointSnapshotLoad, failpoint.Injection{Err: boom})
	if _, err := LoadSnapshotFile(g, stats.Path, Options{}); !errors.Is(err, boom) {
		t.Fatalf("LoadSnapshotFile error = %v, want the injected failure", err)
	}
	failpoint.Reset()
	// One transient failure then success: SkipFirst delays the injection.
	failpoint.Enable(FailpointSnapshotLoad, failpoint.Injection{Err: boom, SkipFirst: 1, Times: 1})
	if _, err := LoadSnapshotFile(g, stats.Path, Options{}); err != nil {
		t.Fatalf("first load with SkipFirst=1: %v", err)
	}
	if _, err := LoadSnapshotFile(g, stats.Path, Options{}); !errors.Is(err, boom) {
		t.Fatalf("second load error = %v, want the injected failure", err)
	}
	if _, err := LoadSnapshotFile(g, filepath.Join(dir, "nope.snt"), Options{}); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
}
