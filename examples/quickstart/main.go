// Quickstart: the paper's running example end to end — the Figure 1
// network, the Table 1 attributes, the four trajectories of Section 2.2,
// and the strict path queries of Section 2.3, including the split into two
// sub-queries and the convolution of their histograms.
package main

import (
	"fmt"
	"log"

	"pathhist"
)

func main() {
	log.SetFlags(0)
	// The example road network of Figure 1 (segments A..F).
	g, ids := pathhist.PaperExampleNetwork()
	fmt.Println("Table 1: estimateTT at the speed limit")
	for _, name := range []string{"A", "B", "C", "D", "E", "F"} {
		e := g.Edge(ids[name])
		fmt.Printf("  %s: %-10s %-6s sl=%3.0f km/h l=%4.0f m  -> %5.1f s\n",
			name, e.Cat, e.Zone, e.SpeedLimit, e.Length, g.EstimateTT(ids[name]))
	}

	// The trajectory set of Section 2.2.
	store := pathhist.NewStore()
	e := func(name string, t int64, tt int32) pathhist.Entry {
		return pathhist.Entry{Edge: ids[name], T: t, TT: tt}
	}
	store.Add(1, []pathhist.Entry{e("A", 0, 3), e("B", 3, 4), e("E", 7, 4)})                // tr0
	store.Add(2, []pathhist.Entry{e("A", 2, 4), e("C", 6, 2), e("D", 8, 4), e("E", 12, 5)}) // tr1
	store.Add(2, []pathhist.Entry{e("A", 4, 3), e("B", 7, 3), e("F", 10, 6)})               // tr2
	store.Add(1, []pathhist.Entry{e("A", 6, 3), e("B", 9, 3), e("E", 12, 4)})               // tr3

	// Index and query: Q = spq(<A,B,E>, [0,15), u=u1, 2).
	eng, err := pathhist.NewEngine(g, store, pathhist.Options{
		Partition:     pathhist.NoPartition,
		BucketSeconds: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Query(pathhist.Query{
		Path:       pathhist.Path{ids["A"], ids["B"], ids["E"]},
		From:       0,
		Until:      15,
		FilterUser: true,
		User:       1,
		Beta:       2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nQ = spq(<A,B,E>, [0,15), u=u1, 2):")
	fmt.Printf("  T^P = {tr0, tr3}: histogram {[10,11): %.0f; [11,12): %.0f}, mean %.1f s\n",
		res.Histogram.Count(10), res.Histogram.Count(11), res.MeanSeconds)

	// The Section 2.3 split: Q1 = spq(<A,B>, [0,15), ∅, 3) and
	// Q2 = spq(<E>, [0,15), ∅, 3), combined by convolution. The regular
	// π2 partitioning produces exactly these sub-queries.
	eng2, err := pathhist.NewEngine(g, store, pathhist.Options{
		RegularP:      2,
		BucketSeconds: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	res2, err := eng2.Query(pathhist.Query{
		Path:  pathhist.Path{ids["A"], ids["B"], ids["E"]},
		From:  0,
		Until: 15,
		Beta:  3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSplit: Q1 = spq(<A,B>, [0,15), ∅, 3), Q2 = spq(<E>, [0,15), ∅, 3):")
	for i, s := range res2.Subs {
		fmt.Printf("  H%d over %d segment(s) from %d samples, mean %.2f s\n",
			i+1, len(s.Path), s.Samples, s.MeanTT)
	}
	fmt.Printf("  H = H1 * H2 = {[10,11): %.0f; [11,12): %.0f; [12,13): %.0f}\n",
		res2.Histogram.Count(10), res2.Histogram.Count(11), res2.Histogram.Count(12))
	fmt.Printf("  P(travel time < 12 s) = %.2f\n", res2.Histogram.CDF(12))
}
