// Commuter: time-varying and personal travel-time histograms — the
// motivating workload of the paper's introduction. A synthetic fleet is
// simulated over three months; one commuter's route is then queried at
// 08:00 (rush hour) versus 12:00 (midday), with and without a personal user
// filter, showing how periodic time-of-day intervals and user predicates
// change the retrieved distribution.
//
// The dataset comes from the internal simulator (a downstream user would
// load their own map-matched trajectories); all indexing and querying goes
// through the public pathhist API.
package main

import (
	"fmt"
	"log"

	"pathhist"
	"pathhist/internal/gps"
	"pathhist/internal/traj"
	"pathhist/internal/workload"
)

func main() {
	log.SetFlags(0)
	cfg := workload.SmallConfig()
	cfg.Drivers = 40
	cfg.Days = 90
	cfg.TargetTrips = 3000
	log.Printf("simulating %d drivers over %d days...", cfg.Drivers, cfg.Days)
	ds := workload.BuildDataset(cfg)
	log.Printf("%d trajectories, %d traversals", ds.Store.Len(), ds.Store.NumTraversals())

	eng, err := pathhist.NewEngine(ds.G, ds.Store, pathhist.Options{
		Partition: pathhist.ByZone,
		Estimator: pathhist.EstimatorCSSFast,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Pick a commuter: the driver with the most morning trips, and use
	// their habitual morning route as the query path.
	driver, route, depart := busiestCommuter(ds)
	fmt.Printf("\ncommuter: driver %d, route of %d segments, habitual departure %02d:%02d\n",
		driver, len(route), gps.TimeOfDay(depart)/3600, gps.TimeOfDay(depart)%3600/60)
	fmt.Printf("speed-limit estimate for the route: %.0f s\n", eng.SpeedLimitEstimate(route))

	show := func(label string, q pathhist.Query) {
		res, err := eng.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		h := res.Histogram
		fmt.Printf("%-28s mean %6.1f s   p05 %5.0f   p50 %5.0f   p95 %5.0f   (%d sub-queries)\n",
			label, res.MeanSeconds, h.Quantile(0.05), h.Quantile(0.5), h.Quantile(0.95), len(res.Subs))
	}

	rush := depart%86400 - depart%60 // the habitual 08:00-ish departure
	midday := int64(12 * 3600)
	fmt.Println("\neveryone's trajectories (temporal filters only):")
	show("  around rush hour:", pathhist.Query{Path: route, Around: rush, Beta: 20})
	show("  around midday:", pathhist.Query{Path: route, Around: midday, Beta: 20})

	fmt.Println("\nonly this driver's own history (user filter):")
	show("  around rush hour:", pathhist.Query{
		Path: route, Around: rush, Beta: 10, FilterUser: true, User: driver,
	})

	fmt.Println("\nall data, no time-of-day awareness (SPQ only):")
	show("  fixed interval:", pathhist.Query{Path: route, Beta: 20})
}

// busiestCommuter returns the driver with the most weekday-morning trips,
// one of their morning routes, and its departure time.
func busiestCommuter(ds *workload.Dataset) (pathhist.UserID, pathhist.Path, int64) {
	type trip struct {
		route  pathhist.Path
		depart int64
	}
	counts := map[pathhist.UserID]int{}
	sample := map[pathhist.UserID]trip{}
	for i := 0; i < ds.Store.Len(); i++ {
		tr := ds.Store.Get(traj.ID(i))
		tod := gps.TimeOfDay(tr.StartTime())
		if gps.IsWeekend(tr.StartTime()) || tod < 6*3600 || tod > 10*3600 || tr.Len() < 10 {
			continue
		}
		counts[tr.User]++
		sample[tr.User] = trip{route: tr.Path(), depart: tr.StartTime()}
	}
	var best pathhist.UserID
	bestN := -1
	for u, n := range counts {
		if n > bestN {
			best, bestN = u, n
		}
	}
	t := sample[best]
	return best, t.route, t.depart
}
