// Routing: travel-time histograms as route weights. The paper's purpose is
// to supply routing algorithms with on-the-fly, context-dependent
// distributions instead of scalar weights; this example compares two
// alternative routes between the same endpoints by their probability of
// arriving within a deadline — a decision a scalar mean gets wrong when one
// route is faster on average but riskier.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pathhist"
	"pathhist/internal/network"
	"pathhist/internal/traj"
	"pathhist/internal/workload"
)

func main() {
	log.SetFlags(0)
	cfg := workload.SmallConfig()
	cfg.Days = 120
	cfg.TargetTrips = 6000
	log.Printf("simulating dataset...")
	ds := workload.BuildDataset(cfg)

	eng, err := pathhist.NewEngine(ds.G, ds.Store, pathhist.Options{
		Partition: pathhist.ByZone,
		Estimator: pathhist.EstimatorCSSFast,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Find two materially different routes between the endpoints of a
	// well-travelled trip: the time-optimal route and a detour.
	routeA, routeB := alternativeRoutes(ds)
	if routeB == nil {
		log.Fatal("no alternative route found; rerun with a different seed")
	}
	departure := int64(workload.StartUnix2012 + 300*86400 + 8*3600) // 08:00

	fmt.Printf("\nroute A: %d segments, %.1f km, speed-limit time %.0f s\n",
		len(routeA), ds.G.PathLength(routeA)/1000, eng.SpeedLimitEstimate(routeA))
	fmt.Printf("route B: %d segments, %.1f km, speed-limit time %.0f s\n",
		len(routeB), ds.G.PathLength(routeB)/1000, eng.SpeedLimitEstimate(routeB))

	qa, err := eng.Query(pathhist.Query{Path: routeA, Around: departure, Beta: 20})
	if err != nil {
		log.Fatal(err)
	}
	qb, err := eng.Query(pathhist.Query{Path: routeB, Around: departure, Beta: 20})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nat 08:00, retrieved distributions:\n")
	fmt.Printf("  route A: mean %6.1f s, p95 %6.0f s\n", qa.MeanSeconds, qa.Histogram.Quantile(0.95))
	fmt.Printf("  route B: mean %6.1f s, p95 %6.0f s\n", qb.MeanSeconds, qb.Histogram.Quantile(0.95))

	// Deadline decision: probability of arriving within the deadline.
	deadline := int((qa.MeanSeconds + qb.MeanSeconds) / 2)
	pa := qa.Histogram.CDF(deadline)
	pb := qb.Histogram.CDF(deadline)
	fmt.Printf("\ndeadline of %d s after departure:\n", deadline)
	fmt.Printf("  P(A arrives in time) = %.2f\n", pa)
	fmt.Printf("  P(B arrives in time) = %.2f\n", pb)
	if pa >= pb {
		fmt.Println("  -> choose route A")
	} else {
		fmt.Println("  -> choose route B")
	}
}

// alternativeRoutes picks a frequently driven trip and computes the
// time-optimal route plus a detour that avoids the optimal route's middle
// segment.
func alternativeRoutes(ds *workload.Dataset) (pathhist.Path, pathhist.Path) {
	rng := rand.New(rand.NewSource(3))
	router := network.NewRouter(ds.G)
	for try := 0; try < 200; try++ {
		tr := ds.Store.Get(traj.ID(rng.Intn(ds.Store.Len())))
		if tr.Len() < 20 {
			continue
		}
		p := tr.Path()
		src := ds.G.Edge(p[0]).From
		dst := ds.G.Edge(p[len(p)-1]).To
		best := router.Route(src, dst)
		if len(best) < 10 {
			continue
		}
		// Detour: route via a vertex well off the optimal route.
		mid := ds.G.Edge(best[len(best)/2]).From
		detourVia := pickDetourVertex(ds, rng, mid)
		if detourVia < 0 {
			continue
		}
		leg1 := router.Route(src, network.VertexID(detourVia))
		if leg1 == nil {
			continue
		}
		leg2 := router.Route(network.VertexID(detourVia), dst)
		if leg2 == nil {
			continue
		}
		detour := append(append(pathhist.Path{}, leg1...), leg2...)
		if !ds.G.IsTraversable(detour) || samePath(best, detour) {
			continue
		}
		return best, detour
	}
	return nil, nil
}

func pickDetourVertex(ds *workload.Dataset, rng *rand.Rand, avoid network.VertexID) int {
	av := ds.G.Vertex(avoid)
	for try := 0; try < 50; try++ {
		city := ds.Gen.CityVertices[rng.Intn(len(ds.Gen.CityVertices))]
		v := city[rng.Intn(len(city))]
		vv := ds.G.Vertex(v)
		dx, dy := vv.X-av.X, vv.Y-av.Y
		if d := dx*dx + dy*dy; d > 1e6 { // at least 1 km away
			return int(v)
		}
	}
	return -1
}

func samePath(a, b pathhist.Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
