// Pipeline: the full substrate chain of Section 5.1 — raw 1 Hz GPS traces
// with positional noise are map-matched to the network with the HMM matcher
// (Newson & Krumm), split at 180 s gaps, loaded into the SNT-index, and
// queried. This is what a deployment ingesting live GPS data would run; the
// main experiments skip the (deterministic-output) matching stage and index
// simulator NCTs directly, as explained in DESIGN.md §1.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pathhist"
	"pathhist/internal/gps"
	"pathhist/internal/mapmatch"
	"pathhist/internal/network"
	"pathhist/internal/traj"
	"pathhist/internal/zoning"
)

func main() {
	log.SetFlags(0)
	// A small synthetic network with zones.
	cfg := network.DefaultGenConfig()
	cfg.Cities = 3
	cfg.GridSize = 6
	res := network.Generate(cfg)
	zoning.FromGenResult(res, cfg.GridSpacing*0.9).Assign(res.Graph)
	g := res.Graph
	log.Printf("network: %d directed edges", g.NumEdges())

	rng := rand.New(rand.NewSource(7))
	sim := gps.NewSimulator(g, rng)
	router := network.NewRouter(g)
	matcher := mapmatch.NewMatcher(g)
	drivers := gps.NewDrivers(8, rng)

	// Simulate trips, emit noisy GPS, map-match back to NCTs.
	store := pathhist.NewStore()
	var fixesTotal, matchedSegs, groundSegs int
	day := workloadDay()
	for trip := 0; trip < 120; trip++ {
		d := &drivers[trip%len(drivers)]
		src := res.CityVertices[trip%3][rng.Intn(len(res.CityVertices[trip%3]))]
		dst := res.CityVertices[(trip+1)%3][rng.Intn(len(res.CityVertices[(trip+1)%3]))]
		route := router.Route(src, dst)
		if len(route) < 8 {
			continue
		}
		depart := day + int64(trip%20)*86400 + 7*3600 + int64(rng.Intn(6*3600))
		ground := sim.SimulateTraversal(route, depart, d)
		fixes := sim.EmitFixes(ground, 4.0) // 4 m GPS noise at 1 Hz
		fixesTotal += len(fixes)
		groundSegs += len(ground)
		matched, err := matcher.Match(fixes)
		if err != nil {
			continue // too short / broken trace, as in real preprocessing
		}
		matchedSegs += len(matched)
		for _, part := range traj.SplitGaps(matched, traj.MaxGap) {
			if len(part) > 0 {
				store.Add(d.ID, part)
			}
		}
	}
	log.Printf("map matching: %d GPS fixes -> %d trajectories (%d of %d segment traversals recovered)",
		fixesTotal, store.Len(), matchedSegs, groundSegs)

	// Index the map-matched trajectories and query a popular path.
	eng, err := pathhist.NewEngine(g, store, pathhist.Options{Partition: pathhist.ByZone})
	if err != nil {
		log.Fatal(err)
	}
	// Query the most frequently matched 5-segment path.
	path := popularPath(store, 5)
	if path == nil {
		log.Fatal("no popular path found")
	}
	resq, err := eng.Query(pathhist.Query{Path: path, Beta: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery over a popular %d-segment path (from map-matched data):\n", len(path))
	fmt.Printf("  mean %.1f s, p50 %.0f s, p95 %.0f s from %d sub-queries\n",
		resq.MeanSeconds, resq.Histogram.Quantile(0.5), resq.Histogram.Quantile(0.95), len(resq.Subs))
	fmt.Printf("  speed-limit estimate for comparison: %.1f s\n", eng.SpeedLimitEstimate(path))
}

func workloadDay() int64 { return 1335830400 } // 2012-05-01

// popularPath returns the most frequent k-segment sub-path in the store.
func popularPath(store *pathhist.Store, k int) pathhist.Path {
	type key [5]pathhist.EdgeID
	counts := map[key]int{}
	for i := 0; i < store.Len(); i++ {
		tr := store.Get(traj.ID(i))
		p := tr.Path()
		for off := 0; off+k <= len(p); off++ {
			var kk key
			copy(kk[:], p[off:off+k])
			counts[kk]++
		}
	}
	var best key
	bestN := 0
	for kk, n := range counts {
		if n > bestN {
			best, bestN = kk, n
		}
	}
	if bestN == 0 {
		return nil
	}
	return pathhist.Path(best[:])
}
