package pathhist

import (
	"math"
	"testing"
)

// exampleEngine builds an engine over the paper's running example.
func exampleEngine(t testing.TB, opts Options) (*Engine, map[string]EdgeID) {
	t.Helper()
	g, ids := PaperExampleNetwork()
	s := NewStore()
	e := func(name string, at int64, tt int32) Entry {
		return Entry{Edge: ids[name], T: at, TT: tt}
	}
	s.Add(1, []Entry{e("A", 0, 3), e("B", 3, 4), e("E", 7, 4)})
	s.Add(2, []Entry{e("A", 2, 4), e("C", 6, 2), e("D", 8, 4), e("E", 12, 5)})
	s.Add(2, []Entry{e("A", 4, 3), e("B", 7, 3), e("F", 10, 6)})
	s.Add(1, []Entry{e("A", 6, 3), e("B", 9, 3), e("E", 12, 4)})
	eng, err := NewEngine(g, s, opts)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return eng, ids
}

func TestEngineErrors(t *testing.T) {
	g, _ := PaperExampleNetwork()
	if _, err := NewEngine(nil, NewStore(), Options{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := NewEngine(g, NewStore(), Options{}); err == nil {
		t.Error("empty store accepted")
	}
	eng, ids := exampleEngine(t, Options{})
	if _, err := eng.Query(Query{}); err == nil {
		t.Error("empty path accepted")
	}
	if _, err := eng.Query(Query{Path: Path{ids["A"], ids["D"]}}); err == nil {
		t.Error("non-traversable path accepted")
	}
	if _, err := eng.Query(Query{Path: Path{EdgeID(999999)}}); err == nil {
		t.Error("out-of-range edge id accepted")
	}
	if _, err := eng.Query(Query{Path: Path{EdgeID(-1), ids["A"]}}); err == nil {
		t.Error("negative edge id accepted")
	}
}

func TestQueryPaperExample(t *testing.T) {
	eng, ids := exampleEngine(t, Options{Partition: NoPartition, BucketSeconds: 1})
	res, err := eng.Query(Query{
		Path:       Path{ids["A"], ids["B"], ids["E"]},
		From:       0,
		Until:      15,
		FilterUser: true,
		User:       1,
		Beta:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Subs) != 1 || res.Subs[0].Samples != 2 {
		t.Fatalf("subs = %+v", res.Subs)
	}
	if res.MeanSeconds != 10.5 {
		t.Errorf("MeanSeconds = %v", res.MeanSeconds)
	}
	if res.Histogram.Count(10) != 1 || res.Histogram.Count(11) != 1 {
		t.Error("histogram shape wrong")
	}
	if res.IndexScans < 1 {
		t.Error("IndexScans not counted")
	}
}

func TestQueryDefaultsAndPeriodic(t *testing.T) {
	eng, ids := exampleEngine(t, Options{BucketSeconds: 1})
	// Periodic window around t=4 (time of day ~00:00:04), default beta
	// forces relaxation down to single segments.
	res, err := eng.Query(Query{
		Path:   Path{ids["A"], ids["B"], ids["E"]},
		Around: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Histogram == nil || res.Histogram.Total() == 0 {
		t.Fatal("no histogram")
	}
	if res.MeanSeconds <= 0 {
		t.Error("mean missing")
	}
	// The mean must be near the true full-path durations (10-11 s).
	if res.MeanSeconds < 8 || res.MeanSeconds > 14 {
		t.Errorf("MeanSeconds = %v implausible", res.MeanSeconds)
	}
}

func TestQueryUntilDefaultsToDataEnd(t *testing.T) {
	eng, ids := exampleEngine(t, Options{Partition: NoPartition, BucketSeconds: 1})
	res, err := eng.Query(Query{Path: Path{ids["E"]}, Beta: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Subs[0].Samples != 3 {
		t.Fatalf("samples = %d, want all 3 E traversals", res.Subs[0].Samples)
	}
}

func TestOptionsMatrix(t *testing.T) {
	// Every option combination must produce a working engine with sane
	// results on the example data.
	for _, opt := range []Options{
		{},
		{Tree: BPlusTree},
		{Partition: ByCategory},
		{Partition: ByZoneAndCategory},
		{Partition: MainRoadUserFilters},
		{Partition: EverySegment},
		{LongestPrefixSplitting: true},
		{Estimator: EstimatorISA},
		{Estimator: EstimatorCSSFast},
		{Estimator: EstimatorCSSAcc},
		{Tree: BPlusTree, Estimator: EstimatorBTFast},
		{Tree: BPlusTree, Estimator: EstimatorBTAcc},
		{PartitionDays: 7},
		{BucketSeconds: 5, IntervalSizes: []int64{600, 1200}},
		{OldestFirst: true},
	} {
		eng, ids := exampleEngine(t, opt)
		res, err := eng.Query(Query{Path: Path{ids["A"], ids["B"], ids["E"]}, Around: 4, Beta: 2})
		if err != nil {
			t.Fatalf("opts %+v: %v", opt, err)
		}
		if res.Histogram == nil || res.Histogram.Total() == 0 {
			t.Fatalf("opts %+v: empty histogram", opt)
		}
		if res.MeanSeconds < 5 || res.MeanSeconds > 25 {
			t.Fatalf("opts %+v: mean %v", opt, res.MeanSeconds)
		}
	}
}

// TestExcludeTrajectoryZero pins the zero-value fix: trajectory 0 is a
// valid id and must be excludable; without the Exclude flag the id field is
// ignored entirely.
func TestExcludeTrajectoryZero(t *testing.T) {
	eng, ids := exampleEngine(t, Options{Partition: NoPartition, BucketSeconds: 1})
	all, err := eng.Query(Query{Path: Path{ids["A"]}, Beta: 10})
	if err != nil {
		t.Fatal(err)
	}
	if all.Subs[0].Samples != 4 {
		t.Fatalf("unfiltered samples = %d, want 4", all.Subs[0].Samples)
	}
	// Trajectory 0 (the earliest start) traversed A: excluding it must
	// drop exactly one sample.
	excl, err := eng.Query(Query{Path: Path{ids["A"]}, Beta: 10, Exclude: true, ExcludeTraj: 0})
	if err != nil {
		t.Fatal(err)
	}
	if excl.Subs[0].Samples != 3 {
		t.Fatalf("samples with trajectory 0 excluded = %d, want 3", excl.Subs[0].Samples)
	}
	// Without the flag, a non-zero ExcludeTraj is inert.
	inert, err := eng.Query(Query{Path: Path{ids["A"]}, Beta: 10, ExcludeTraj: 1})
	if err != nil {
		t.Fatal(err)
	}
	if inert.Subs[0].Samples != 4 {
		t.Fatalf("samples with inert ExcludeTraj = %d, want 4", inert.Subs[0].Samples)
	}
}

// TestPeriodicAnchorAtMidnight pins the other zero-value fix: the Periodic
// flag makes Around == 0 (exactly midnight) a valid periodic anchor instead
// of silently degrading to a fixed interval.
func TestPeriodicAnchorAtMidnight(t *testing.T) {
	eng, ids := exampleEngine(t, Options{BucketSeconds: 1})
	// The example traversals all happen seconds after midnight, so a
	// 15-minute window centred on 00:00:00 covers them.
	res, err := eng.Query(Query{Path: Path{ids["A"]}, Periodic: true, Around: 0, Beta: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Subs[0].Samples != 4 || res.Subs[0].Fallback {
		t.Fatalf("midnight periodic window: %+v", res.Subs[0])
	}
}

// TestEngineExtendPublicAPI drives the library-level ingestion path: a
// batch of newer trajectories becomes queryable with no engine rebuild.
func TestEngineExtendPublicAPI(t *testing.T) {
	eng, ids := exampleEngine(t, Options{Partition: NoPartition, BucketSeconds: 1})
	if eng.Epoch() != 0 || eng.Trajectories() != 4 {
		t.Fatalf("fresh engine: epoch %d, %d trajectories", eng.Epoch(), eng.Trajectories())
	}
	day := int64(86400)
	batch := NewStore()
	batch.Add(3, []Entry{
		{Edge: ids["A"], T: day, TT: 5},
		{Edge: ids["B"], T: day + 5, TT: 5},
		{Edge: ids["E"], T: day + 10, TT: 5},
	})
	// β above the match count so the scan is effectively exhaustive and the
	// new batch's traversal must show up as one extra sample.
	probe := Query{Path: Path{ids["A"], ids["B"], ids["E"]}, Until: 3 * day, Beta: 10}
	before, err := eng.Query(probe)
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Extend(batch)
	if err != nil {
		t.Fatalf("Extend: %v", err)
	}
	if st.Epoch != 1 || st.Trajectories != 1 || st.TotalTrajectories != 5 {
		t.Fatalf("ingest stats = %+v", st)
	}
	if eng.Epoch() != 1 || eng.Partitions() != 2 || eng.Trajectories() != 5 {
		t.Fatalf("post-extend: epoch %d, %d partitions, %d trajectories",
			eng.Epoch(), eng.Partitions(), eng.Trajectories())
	}
	after, err := eng.Query(probe)
	if err != nil {
		t.Fatal(err)
	}
	if after.FullCacheHit {
		t.Fatal("post-extend query served from the pre-extend full-result cache")
	}
	if after.Epoch != 1 || before.Epoch != 0 {
		t.Fatalf("result epochs %d/%d, want 0/1", before.Epoch, after.Epoch)
	}
	if want := before.Subs[0].Samples + 1; after.Subs[0].Samples != want {
		t.Fatalf("post-extend samples = %d, want %d (new batch included)",
			after.Subs[0].Samples, want)
	}
	// An overlapping batch is rejected wholesale and changes nothing.
	bad := NewStore()
	bad.Add(3, []Entry{{Edge: ids["A"], T: 1, TT: 2}})
	if _, err := eng.Extend(bad); err == nil {
		t.Fatal("overlapping batch accepted")
	}
	if eng.Epoch() != 1 || eng.Trajectories() != 5 {
		t.Fatal("failed Extend changed the engine")
	}
}

func TestSpeedLimitEstimate(t *testing.T) {
	eng, ids := exampleEngine(t, Options{})
	got := eng.SpeedLimitEstimate(Path{ids["A"], ids["B"], ids["E"]})
	if math.Abs(got-(29.5+8.6+7.2)) > 0.2 {
		t.Errorf("SpeedLimitEstimate = %v", got)
	}
}

func TestIndexMemoryAndPartitions(t *testing.T) {
	eng, _ := exampleEngine(t, Options{PartitionDays: 1})
	c, wt, user, forest := eng.IndexMemory()
	if c <= 0 || wt <= 0 || user <= 0 || forest <= 0 {
		t.Errorf("memory components: %d %d %d %d", c, wt, user, forest)
	}
	if eng.Partitions() < 1 {
		t.Error("partitions")
	}
}

func TestFallbackSegment(t *testing.T) {
	// Querying F with a driver who never drove it: relaxation drops the
	// filter and uses tr2's traversal; no fallback needed.
	eng, ids := exampleEngine(t, Options{BucketSeconds: 1})
	res, err := eng.Query(Query{
		Path: Path{ids["F"]}, Around: 10, FilterUser: true, User: 1, Beta: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Subs[0].Fallback {
		t.Error("unexpected fallback")
	}
	if res.Subs[0].MeanTT != 6 {
		t.Errorf("MeanTT = %v, want 6", res.Subs[0].MeanTT)
	}
}
