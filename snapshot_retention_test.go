package pathhist

import (
	"os"
	"path/filepath"
	"testing"
)

// TestSnapshotFileInAndRetention pins the epoch-named snapshot lifecycle:
// SnapshotFileIn writes snapshot-<epoch>.snt with trajectory-count stats,
// FindLatestSnapshot picks the newest (falling back to the legacy name),
// and PruneSnapshots keeps the newest K while never deleting the protected
// file.
func TestSnapshotFileInAndRetention(t *testing.T) {
	g, eng, qs := lifecycleEngine(t, Options{Partition: ByZone})
	dir := t.TempDir()

	st, err := eng.SnapshotFileIn(dir)
	if err != nil {
		t.Fatal(err)
	}
	wantPath := filepath.Join(dir, SnapshotName(eng.Epoch()))
	if st.Path != wantPath || st.Epoch != eng.Epoch() || st.Trajectories != eng.Trajectories() {
		t.Fatalf("stats %+v, want path %s epoch %d trajs %d", st, wantPath, eng.Epoch(), eng.Trajectories())
	}
	if _, err := os.Stat(wantPath); err != nil {
		t.Fatalf("snapshot file missing: %v", err)
	}
	// The epoch-named file loads like any snapshot.
	restored, err := LoadSnapshotFile(g, st.Path, Options{Partition: ByZone})
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, eng, restored, qs, "epoch-named snapshot")

	// Fake older generations plus a legacy snapshot. The engine's epoch is
	// 3 (two extends + compaction), so epochs 0-2 are strictly older.
	if eng.Epoch() != 3 {
		t.Fatalf("lifecycle epoch = %d, fixture assumes 3", eng.Epoch())
	}
	older := []string{SnapshotName(0), SnapshotName(1), SnapshotName(2)}
	for _, name := range older {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("old"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, SnapshotFileName), []byte("legacy"), 0o644); err != nil {
		t.Fatal(err)
	}

	latest, err := FindLatestSnapshot(dir)
	if err != nil || latest != wantPath {
		t.Fatalf("FindLatestSnapshot = %s, %v; want %s", latest, err, wantPath)
	}

	// keep=2 with epoch 1 protected: epochs {0} and the legacy file go,
	// {1 (protected), 2, real} survive.
	protect := filepath.Join(dir, SnapshotName(1))
	deleted, err := PruneSnapshots(dir, 2, protect)
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 2 {
		t.Fatalf("deleted %v, want 2 files", deleted)
	}
	for _, name := range []string{SnapshotName(1), SnapshotName(2), filepath.Base(wantPath)} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("%s should survive: %v", name, err)
		}
	}
	for _, name := range []string{SnapshotName(0), SnapshotFileName} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("%s should be pruned", name)
		}
	}

	// With the protection lifted the keep bound applies strictly.
	if _, err := PruneSnapshots(dir, 1, ""); err != nil {
		t.Fatal(err)
	}
	left, err := FindLatestSnapshot(dir)
	if err != nil || left != wantPath {
		t.Fatalf("after prune to 1: latest = %s, %v", left, err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("%d files left, want 1", len(entries))
	}
}

// TestFindLatestSnapshotLegacyFallback: a directory holding only the
// legacy snapshot.snt (written by an older build) still resolves.
func TestFindLatestSnapshotLegacyFallback(t *testing.T) {
	dir := t.TempDir()
	if got, err := FindLatestSnapshot(dir); err != nil || got != "" {
		t.Fatalf("empty dir: %q, %v", got, err)
	}
	legacy := filepath.Join(dir, SnapshotFileName)
	if err := os.WriteFile(legacy, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := FindLatestSnapshot(dir); err != nil || got != legacy {
		t.Fatalf("legacy dir: %q, %v", got, err)
	}
	// Pruning a legacy-only directory deletes nothing (it is the only
	// generation).
	if deleted, err := PruneSnapshots(dir, 1, ""); err != nil || len(deleted) != 0 {
		t.Fatalf("legacy-only prune: %v, %v", deleted, err)
	}
}
