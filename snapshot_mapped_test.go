package pathhist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"pathhist/internal/query"
	"pathhist/internal/workload"
)

// TestLoadSnapshotFileMapped: a mapped load answers bit-identically to the
// copying load and to the writer, reports the mapping it holds, and a
// follower replica shares it.
func TestLoadSnapshotFileMapped(t *testing.T) {
	opts := Options{Partition: ByZone, Estimator: EstimatorCSSAcc}
	g, eng, qs := lifecycleEngine(t, opts)
	dir := t.TempDir()
	st, err := eng.SnapshotFileIn(dir)
	if err != nil {
		t.Fatal(err)
	}

	mapped, err := LoadSnapshotFileMapped(g, st.Path, opts)
	if err != nil {
		t.Fatal(err)
	}
	copied, err := LoadSnapshotFile(g, st.Path, opts)
	if err != nil {
		t.Fatal(err)
	}
	if mapped.Epoch() != eng.Epoch() || mapped.Trajectories() != eng.Trajectories() {
		t.Fatalf("mapped engine: epoch %d trajs %d, want %d/%d",
			mapped.Epoch(), mapped.Trajectories(), eng.Epoch(), eng.Trajectories())
	}
	if mapped.MappedSnapshotPath() != st.Path {
		t.Fatalf("MappedSnapshotPath = %q, want %q", mapped.MappedSnapshotPath(), st.Path)
	}
	if copied.MappedSnapshotPath() != "" || eng.MappedSnapshotPath() != "" {
		t.Fatal("non-mapped engines report a mapped snapshot path")
	}
	assertSameAnswers(t, eng, mapped, qs, "mapped vs writer")
	assertSameAnswers(t, copied, mapped, qs, "mapped vs copied")

	// A follower replica shares the mapping and the published snapshot.
	rep := mapped.Replica()
	if rep.MappedSnapshotPath() != st.Path || rep.Epoch() != mapped.Epoch() {
		t.Fatalf("replica: path %q epoch %d, want %q/%d",
			rep.MappedSnapshotPath(), rep.Epoch(), st.Path, mapped.Epoch())
	}
	assertSameAnswers(t, mapped, rep, qs, "replica vs primary")

	if _, err := LoadSnapshotFileMapped(nil, st.Path, opts); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := LoadSnapshotFileMapped(g, filepath.Join(dir, "nope.snt"), opts); err == nil {
		t.Fatal("missing file loaded")
	}
}

// snapshotSections parses the file framing and returns one byte offset
// inside each section's payload (skipping padding, which no checksum
// covers).
func snapshotSections(t *testing.T, data []byte) map[string]int {
	t.Helper()
	const headerSize, sectionHdrSize = 40, 24
	offsets := map[string]int{"file header": 20} // epoch field, CRC-covered
	off := headerSize
	for i := 0; off+sectionHdrSize <= len(data); i++ {
		kind := binary.LittleEndian.Uint32(data[off:])
		length := int(binary.LittleEndian.Uint64(data[off+8:]))
		offsets[fmt.Sprintf("section %d (kind %d) header", i, kind)] = off + 8
		if length > 0 {
			offsets[fmt.Sprintf("section %d (kind %d) payload", i, kind)] = off + sectionHdrSize + length/2
		}
		off += sectionHdrSize + (length+7)/8*8
	}
	if off != len(data) {
		t.Fatalf("framing walk ended at %d of %d bytes", off, len(data))
	}
	return offsets
}

// TestMappedCorruptionTable: a single flipped bit anywhere that matters —
// the header, any section header, any section payload — must fail the
// mapped load closed before the engine serves a byte.
func TestMappedCorruptionTable(t *testing.T) {
	opts := Options{Partition: ByZone}
	g, eng, _ := lifecycleEngine(t, opts)
	dir := t.TempDir()
	st, err := eng.SnapshotFileIn(dir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(st.Path)
	if err != nil {
		t.Fatal(err)
	}

	for name, off := range snapshotSections(t, data) {
		t.Run(name, func(t *testing.T) {
			bad := append([]byte(nil), data...)
			bad[off] ^= 0x04
			path := filepath.Join(t.TempDir(), "corrupt.snt")
			if err := os.WriteFile(path, bad, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := LoadSnapshotFileMapped(g, path, opts); err == nil {
				t.Fatalf("bit flip at offset %d served", off)
			}
		})
	}
}

// TestMappedVsCopiedDifferential (-race): a mapped engine and a copied
// engine restored from the same file stay bit-identical through the full
// mutation lifecycle — concurrent queries while both Extend, then both
// Compact. Extending a mapped index detaches its frozen columns to the heap
// (temporal.FrozenIndex.Mapped); a write through the PROT_READ mapping
// would fault, and the race detector guards the heap side.
func TestMappedVsCopiedDifferential(t *testing.T) {
	cfg := workload.SmallConfig()
	ds := workload.BuildDataset(cfg)
	qs := ds.MakeQueries(0.05, 5, cfg.Seed+1)
	ds.Store.SortByStart()
	cuts := ds.Store.QuiescentCuts()
	if len(cuts) < 2 {
		t.Fatalf("dataset has %d quiescent cuts, need 2", len(cuts))
	}
	cut := cuts[len(cuts)/2]
	opts := Options{Partition: ByZone}
	base, err := NewEngine(ds.G, ds.Store.Slice(0, cut), opts)
	if err != nil {
		t.Fatal(err)
	}
	st, err := base.SnapshotFileIn(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := LoadSnapshotFileMapped(ds.G, st.Path, opts)
	if err != nil {
		t.Fatal(err)
	}
	copied, err := LoadSnapshotFile(ds.G, st.Path, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, copied, mapped, qs, "restored")

	// Queries hammer both engines while the mutations run.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w, eng := range []*Engine{mapped, copied} {
		wg.Add(1)
		go func(w int, eng *Engine) {
			defer wg.Done()
			for i := w; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := qs[i%len(qs)]
				if _, err := eng.Query(Query{Path: q.Path, Around: q.T0, Beta: 20}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w, eng)
	}
	rest := ds.Store.Slice(cut, ds.Store.Len())
	for _, eng := range []*Engine{mapped, copied} {
		if _, err := eng.Extend(rest); err != nil {
			t.Error(err)
		}
	}
	for _, eng := range []*Engine{mapped, copied} {
		if _, err := eng.Compact(); err != nil {
			t.Error(err)
		}
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	if mapped.Epoch() != copied.Epoch() {
		t.Fatalf("epochs diverged: mapped %d, copied %d", mapped.Epoch(), copied.Epoch())
	}
	assertSameAnswers(t, copied, mapped, qs, "after extend+compact")
}

// TestPruneProtectsMappedSnapshot: retention never deletes the file a live
// engine is mapped over, even when newer generations push it past the keep
// bound — unmapping a served file out from under the engine would be a
// use-after-free enforced by the kernel.
func TestPruneProtectsMappedSnapshot(t *testing.T) {
	opts := Options{Partition: ByZone}
	g, eng, qs := lifecycleEngine(t, opts)
	dir := t.TempDir()
	st, err := eng.SnapshotFileIn(dir)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := LoadSnapshotFileMapped(g, st.Path, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Newer generations arrive; the mapped file is now the oldest.
	for epoch := eng.Epoch() + 1; epoch <= eng.Epoch()+3; epoch++ {
		if err := os.WriteFile(filepath.Join(dir, SnapshotName(epoch)), []byte("newer"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	deleted, err := PruneSnapshots(dir, 1, mapped.MappedSnapshotPath())
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 2 {
		t.Fatalf("deleted %v, want exactly the 2 unprotected older generations", deleted)
	}
	if _, err := os.Stat(st.Path); err != nil {
		t.Fatalf("mapped snapshot pruned: %v", err)
	}
	// The engine still serves off the mapping.
	queryOnce(t, mapped, qs[0])

	// Without the pin the same prune would have taken the file.
	if _, err := PruneSnapshots(dir, 1, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(st.Path); !os.IsNotExist(err) {
		t.Fatal("unprotected old snapshot survived the control prune")
	}
}

// TestReplicaFollowerReadOnly: a follower shares the primary's published
// epochs and serves identical answers, but refuses mutation with
// ErrFollower.
func TestReplicaFollowerReadOnly(t *testing.T) {
	cfg := workload.SmallConfig()
	ds := workload.BuildDataset(cfg)
	qs := ds.MakeQueries(0.05, 5, cfg.Seed+1)
	ds.Store.SortByStart()
	cuts := ds.Store.QuiescentCuts()
	cut := cuts[len(cuts)/2]
	primary, err := NewEngine(ds.G, ds.Store.Slice(0, cut), Options{Partition: ByZone})
	if err != nil {
		t.Fatal(err)
	}
	rep := primary.Replica()
	assertSameAnswers(t, primary, rep, qs, "follower before extend")

	rest := ds.Store.Slice(cut, ds.Store.Len())
	if _, err := rep.Extend(rest); !errors.Is(err, query.ErrFollower) {
		t.Fatalf("follower Extend error = %v, want ErrFollower", err)
	}
	if _, err := rep.Compact(); !errors.Is(err, query.ErrFollower) {
		t.Fatalf("follower Compact error = %v, want ErrFollower", err)
	}

	// The primary mutates; the follower observes the new epoch instantly
	// (shared publication cell) and stays bit-identical.
	if _, err := primary.Extend(rest); err != nil {
		t.Fatal(err)
	}
	if rep.Epoch() != primary.Epoch() {
		t.Fatalf("follower epoch %d, primary %d", rep.Epoch(), primary.Epoch())
	}
	assertSameAnswers(t, primary, rep, qs, "follower after extend")
}
