// Command pathhistlint runs the engine's invariant lint suite
// (internal/analysis, DESIGN.md §13) over Go packages.
//
// Standalone:
//
//	go run ./cmd/pathhistlint ./...
//	go run ./cmd/pathhistlint -rules frozenmut,syncerr ./internal/...
//
// As a vet tool (the unitchecker protocol — go vet typechecks and supplies
// export data per package, pathhistlint analyzes):
//
//	go build -o /tmp/pathhistlint ./cmd/pathhistlint
//	go vet -vettool=/tmp/pathhistlint ./...
//
// Exit status: 0 clean, 1 usage or load failure, 2 diagnostics reported.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"runtime"
	"strings"

	"pathhist/internal/analysis"
)

func main() {
	var (
		vFlag     = flag.String("V", "", "print version and exit (go vet handshake)")
		flagsFlag = flag.Bool("flags", false, "print flag descriptions as JSON and exit (go vet handshake)")
		listFlag  = flag.Bool("list", false, "list the suite's analyzers and exit")
		rulesFlag = flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	)
	// go vet passes analyzer flags like -frozenmut=true to enable passes;
	// accept and ignore unknown boolean selectors gracefully by defining
	// one per analyzer.
	enabled := make(map[string]*bool)
	for _, a := range analysis.All() {
		enabled[a.Name] = flag.Bool(a.Name, true, "enable the "+a.Name+" pass")
	}
	flag.Parse()

	if *vFlag != "" {
		// The cmd/go vettool handshake: "path version <id>", where the id
		// keys go vet's result cache — hash the binary so a rebuilt tool
		// invalidates cached verdicts.
		exe, err := os.Executable()
		if err != nil {
			exe = "pathhistlint"
		}
		h := sha256.New()
		if data, err := os.ReadFile(exe); err == nil {
			h.Write(data)
		}
		fmt.Printf("%s version %s buildID=%x\n", exe, runtime.Version(), h.Sum(nil))
		return
	}
	if *flagsFlag {
		// go vet asks which flags the tool understands before passing any.
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		var fl []jsonFlag
		flag.VisitAll(func(f *flag.Flag) {
			b, ok := f.Value.(interface{ IsBoolFlag() bool })
			fl = append(fl, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
		})
		data, err := json.MarshalIndent(fl, "", "\t")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		//lint:ignore syncerr handshake output to go vet; a broken pipe surfaces in go vet itself
		os.Stdout.Write(data)
		fmt.Println()
		return
	}
	if *listFlag {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := selectAnalyzers(*rulesFlag, enabled)
	args := flag.Args()

	// Unitchecker mode: go vet invokes the tool with a single *.cfg file.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVettool(args[0], analyzers))
	}

	if len(args) == 0 {
		args = []string{"./..."}
	}
	diags, err := analysis.Run(".", args, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

// version participates in go vet's tool-cache key; bump when analyzer
// behaviour changes so cached clean verdicts are invalidated.
const version = "v8.0.0"

func selectAnalyzers(rules string, enabled map[string]*bool) []*analysis.Analyzer {
	var out []*analysis.Analyzer
	if rules != "" {
		for _, name := range strings.Split(rules, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "pathhistlint: unknown rule %q\n", name)
				os.Exit(1)
			}
			out = append(out, a)
		}
		return out
	}
	for _, a := range analysis.All() {
		if on, ok := enabled[a.Name]; !ok || *on {
			out = append(out, a)
		}
	}
	return out
}

// vetConfig is the package description go vet hands a -vettool (the
// x/tools unitchecker wire format; unknown fields are ignored).
type vetConfig struct {
	ID          string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOutput  string
	VetxOnly    bool
}

// runVettool analyzes the single package described by cfgFile, using the
// export data go vet already produced for its dependencies.
func runVettool(cfgFile string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pathhistlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "pathhistlint: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// The protocol requires an output file even from fact-free tools.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "pathhistlint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// The suite guards production code: standalone mode analyzes only
	// non-test GoFiles, so the test-augmented variants go vet also builds
	// are skipped here for the same verdict from both entry points. A unit
	// containing any _test.go file is such a variant — the production
	// files it duplicates are analyzed under their own unit.
	for _, f := range cfg.GoFiles {
		if strings.HasSuffix(f, "_test.go") {
			return 0
		}
	}
	fset := token.NewFileSet()
	imp := analysis.NewMapImporter(fset, cfg.PackageFile)
	pkg, err := analysis.CheckFiles(fset, cfg.ImportPath, cfg.GoFiles, cfg.ImportMap, imp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pathhistlint: %v\n", err)
		return 1
	}
	diags := analysis.RunPackage(pkg, analyzers)
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
