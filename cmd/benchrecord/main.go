// Command benchrecord runs the repository's hot-path benchmarks and writes
// the parsed numbers to a JSON file, so every PR leaves a machine-readable
// point on the performance trajectory:
//
//	go run ./cmd/benchrecord -out BENCH_pr1.json
//
// The default benchmark selection covers the TripQuery hot path (the
// sequential baseline, the parallel+cached serving path, and the raw scan
// primitives); -bench overrides the regexp and -benchtime the duration.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Record is one parsed benchmark result line.
type Record struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BaselineNsPerOp is the same benchmark's ns/op from the -baseline
	// file, when given — the before/after pair of a perf PR.
	BaselineNsPerOp float64            `json:"baseline_ns_per_op,omitempty"`
	BytesPerOp      float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp     float64            `json:"allocs_per_op,omitempty"`
	Metrics         map[string]float64 `json:"metrics,omitempty"`
}

// File is the JSON document benchrecord writes.
type File struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	// GoMaxProcs records the scheduler width of the recording machine —
	// parallel and replica-serving numbers are meaningless without it.
	GoMaxProcs int               `json:"gomaxprocs,omitempty"`
	Bench      string            `json:"bench_regexp"`
	Records    []Record          `json:"records"`
	Derived    map[string]string `json:"derived,omitempty"`
}

const defaultBench = "BenchmarkTripQuerySequential|BenchmarkTripQueryParallel|" +
	"BenchmarkTripQueryFullCacheHit|" +
	"BenchmarkFig5aTemporalPiZ$|BenchmarkGetTravelTimes|BenchmarkThroughputParallel|" +
	"BenchmarkPublicAPIQuery|BenchmarkEngineExtend|BenchmarkExtendWhileServing|" +
	"BenchmarkManyPartitions|BenchmarkCompact$|BenchmarkFMIndexBackwardSearch|" +
	"BenchmarkRankTwoLevel|BenchmarkRankLinearScan|" +
	"BenchmarkSnapshotBuild|BenchmarkSnapshotWrite|BenchmarkSnapshotLoad|" +
	"BenchmarkSnapshotLoadMapped|" +
	"BenchmarkSustainedIngestInLock|BenchmarkSustainedIngestBackground|BenchmarkWALAppend|" +
	"BenchmarkShardScaling|BenchmarkReplicaServing"

func main() {
	bench := flag.String("bench", defaultBench, "benchmark regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "1s", "go test -benchtime value")
	count := flag.Int("count", 1, "go test -count value")
	out := flag.String("out", "BENCH.json", "output JSON path")
	baseline := flag.String("baseline", "", "previous benchrecord JSON to diff against (before/after ns/op)")
	flag.Parse()

	// Load the baseline before the (multi-minute) benchmark run so a bad
	// path fails fast instead of discarding the run.
	var prev *File
	if *baseline != "" {
		loaded, err := loadBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrecord: baseline: %v\n", err)
			os.Exit(1)
		}
		prev = loaded
	}

	// ./... rather than .: the rank-directory micro-benchmarks live in
	// internal/bitvec; non-matching packages cost only a compile.
	args := []string{"test", "-run", "^$", "-bench", *bench,
		"-benchmem", "-benchtime", *benchtime, "-count", strconv.Itoa(*count), "./..."}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchrecord: go %s: %v\n", strings.Join(args, " "), err)
		os.Exit(1)
	}
	//lint:ignore syncerr the stdout echo is informational; the JSON artifact write below is checked
	os.Stdout.Write(raw)

	f := File{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Bench:       *bench,
		Records:     parse(string(raw)),
	}
	if v, err := exec.Command("go", "version").Output(); err == nil {
		f.GoVersion = strings.TrimSpace(string(v))
	}
	if prev != nil {
		attachBaseline(&f, prev, *baseline)
	}
	f.Derived = derive(f.Records)

	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchrecord: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchrecord: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchrecord: wrote %d records to %s\n", len(f.Records), *out)
}

var lineRe = regexp.MustCompile(`^(Benchmark\S+)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// parse extracts records from `go test -bench` output. Each measurement is
// a "<value> <unit>" pair; ns/op, B/op and allocs/op map to fixed fields,
// anything else (b.ReportMetric output) lands in Metrics.
func parse(out string) []Record {
	var recs []Record
	for _, line := range strings.Split(out, "\n") {
		m := lineRe.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		r := Record{Name: m[1]}
		r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = val
			case "B/op":
				r.BytesPerOp = val
			case "allocs/op":
				r.AllocsPerOp = val
			default:
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[fields[i+1]] = val
			}
		}
		recs = append(recs, r)
	}
	return recs
}

// loadBaseline reads and parses an earlier benchrecord file.
func loadBaseline(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var prev File
	if err := json.Unmarshal(data, &prev); err != nil {
		return nil, err
	}
	return &prev, nil
}

// attachBaseline stores the baseline's ns/op next to each matching record,
// so the output carries its own before/after comparison. Zero matches is
// only a warning at this point — the benchmark run already happened and
// its output is worth keeping.
func attachBaseline(f *File, prev *File, path string) {
	byName := map[string]Record{}
	for _, r := range prev.Records {
		byName[r.Name] = r
	}
	matched := 0
	for i := range f.Records {
		if b, ok := byName[f.Records[i].Name]; ok {
			f.Records[i].BaselineNsPerOp = b.NsPerOp
			matched++
		}
	}
	if matched == 0 {
		fmt.Fprintf(os.Stderr, "benchrecord: warning: no benchmark names in %s match this run (different -bench selection?)\n", path)
	}
}

// derive computes the headline ratios the acceptance criteria track.
func derive(recs []Record) map[string]string {
	byName := map[string]Record{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	out := map[string]string{}
	seq, haveSeq := byName["BenchmarkTripQuerySequential"]
	if par, ok := byName["BenchmarkTripQueryParallel"]; ok && haveSeq && par.NsPerOp > 0 {
		out["parallel_speedup_vs_sequential"] = fmt.Sprintf("%.2fx", seq.NsPerOp/par.NsPerOp)
	}
	if full, ok := byName["BenchmarkTripQueryFullCacheHit"]; ok && haveSeq && full.NsPerOp > 0 {
		out["full_cache_speedup_vs_sequential"] = fmt.Sprintf("%.2fx", seq.NsPerOp/full.NsPerOp)
	}
	if idle, ok := byName["BenchmarkEngineExtend"]; ok && idle.NsPerOp > 0 {
		if busy, ok := byName["BenchmarkExtendWhileServing"]; ok && busy.NsPerOp > 0 {
			out["extend_under_load_vs_idle"] = fmt.Sprintf("%.2fx", busy.NsPerOp/idle.NsPerOp)
		}
	}
	if rebuilt, ok := byName["BenchmarkManyPartitions/rebuilt"]; ok && rebuilt.NsPerOp > 0 {
		if frag, ok := byName["BenchmarkManyPartitions/fragmented32"]; ok {
			out["fragmented32_vs_rebuilt"] = fmt.Sprintf("%.2fx", frag.NsPerOp/rebuilt.NsPerOp)
		}
		if comp, ok := byName["BenchmarkManyPartitions/compacted"]; ok {
			out["compacted_vs_rebuilt"] = fmt.Sprintf("%.2fx", comp.NsPerOp/rebuilt.NsPerOp)
		}
	}
	if lin, ok := byName["BenchmarkRankLinearScan"]; ok && lin.NsPerOp > 0 {
		if two, ok := byName["BenchmarkRankTwoLevel"]; ok && two.NsPerOp > 0 {
			out["rank_directory_speedup"] = fmt.Sprintf("%.2fx", lin.NsPerOp/two.NsPerOp)
		}
	}
	// Restart persistence (PR 5): how much faster a snapshot load restores
	// a serving-ready engine than the from-scratch build it replaces
	// (acceptance bar: >= 10x).
	if build, ok := byName["BenchmarkSnapshotBuild"]; ok && build.NsPerOp > 0 {
		if load, ok := byName["BenchmarkSnapshotLoad"]; ok && load.NsPerOp > 0 {
			out["load_vs_build"] = fmt.Sprintf("%.2fx", build.NsPerOp/load.NsPerOp)
		}
	}
	// Zero-copy mmap loading (PR 10): how much faster the mapped restore is
	// than the copying one, and what the mapped restart costs outright.
	if load, ok := byName["BenchmarkSnapshotLoad"]; ok && load.NsPerOp > 0 {
		if m, ok := byName["BenchmarkSnapshotLoadMapped"]; ok && m.NsPerOp > 0 {
			out["mmap_load_vs_copy_load"] = fmt.Sprintf("%.2fx", load.NsPerOp/m.NsPerOp)
			out["mmap_load_ms"] = fmt.Sprintf("%.3f ms", m.NsPerOp/1e6)
		}
	}
	// Per-shard replica sets (PR 10): serving throughput of two replicas per
	// shard over one, and how the naturally-fired hedges fare.
	if r1, ok := byName["BenchmarkReplicaServing/replicas1"]; ok && r1.Metrics["qps"] > 0 {
		if r2, ok := byName["BenchmarkReplicaServing/replicas2"]; ok && r2.Metrics["qps"] > 0 {
			out["replica2_qps_vs_replica1"] = fmt.Sprintf("%.2fx", r2.Metrics["qps"]/r1.Metrics["qps"])
			if rate, ok := r2.Metrics["hedge-win-rate"]; ok {
				out["replica_hedge_win_rate"] = fmt.Sprintf("%.2f", rate)
			}
			if rate, ok := r2.Metrics["cross-replica-rate"]; ok {
				out["replica_hedge_cross_rate"] = fmt.Sprintf("%.2f", rate)
			}
		}
	}
	// Durable sustained ingestion (PR 6): extend-latency tail under in-lock
	// vs background compaction, and the WAL fsync each acknowledged batch
	// pays on the durable admission path.
	if il, ok := byName["BenchmarkSustainedIngestInLock"]; ok && il.Metrics["p99-ms"] > 0 {
		if bg, ok := byName["BenchmarkSustainedIngestBackground"]; ok && bg.Metrics["p99-ms"] > 0 {
			out["sustained_p99_inlock_vs_background"] = fmt.Sprintf("%.2fx",
				il.Metrics["p99-ms"]/bg.Metrics["p99-ms"])
		}
	}
	if w, ok := byName["BenchmarkWALAppend"]; ok && w.Metrics["fsync-ms"] > 0 {
		out["wal_fsync_ms_per_batch"] = fmt.Sprintf("%.2f ms", w.Metrics["fsync-ms"])
	}
	// Sharded scatter-gather serving (PR 9): concurrent-ingest throughput
	// and per-query merge overhead of 4 shards relative to 1.
	if s1, ok := byName["BenchmarkShardScaling/shards1"]; ok && s1.Metrics["trajs/s"] > 0 {
		if s4, ok := byName["BenchmarkShardScaling/shards4"]; ok && s4.Metrics["trajs/s"] > 0 {
			out["shard4_ingest_throughput_vs_shard1"] = fmt.Sprintf("%.2fx",
				s4.Metrics["trajs/s"]/s1.Metrics["trajs/s"])
		}
		if s4, ok := byName["BenchmarkShardScaling/shards4"]; ok && s1.Metrics["query-ms"] > 0 && s4.Metrics["query-ms"] > 0 {
			out["shard4_query_ms_vs_shard1"] = fmt.Sprintf("%.2fx",
				s4.Metrics["query-ms"]/s1.Metrics["query-ms"])
		}
	}
	for _, r := range recs {
		if r.BaselineNsPerOp > 0 && r.NsPerOp > 0 {
			out[r.Name+"_vs_baseline"] = fmt.Sprintf("%+.1f%% ns/op", (r.NsPerOp/r.BaselineNsPerOp-1)*100)
		}
	}
	return out
}
