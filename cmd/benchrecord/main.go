// Command benchrecord runs the repository's hot-path benchmarks and writes
// the parsed numbers to a JSON file, so every PR leaves a machine-readable
// point on the performance trajectory:
//
//	go run ./cmd/benchrecord -out BENCH_pr1.json
//
// The default benchmark selection covers the TripQuery hot path (the
// sequential baseline, the parallel+cached serving path, and the raw scan
// primitives); -bench overrides the regexp and -benchtime the duration.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Record is one parsed benchmark result line.
type Record struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// File is the JSON document benchrecord writes.
type File struct {
	GeneratedAt string            `json:"generated_at"`
	GoVersion   string            `json:"go_version"`
	Bench       string            `json:"bench_regexp"`
	Records     []Record          `json:"records"`
	Derived     map[string]string `json:"derived,omitempty"`
}

const defaultBench = "BenchmarkTripQuerySequential|BenchmarkTripQueryParallel|" +
	"BenchmarkFig5aTemporalPiZ$|BenchmarkGetTravelTimes|BenchmarkThroughputParallel|" +
	"BenchmarkPublicAPIQuery"

func main() {
	bench := flag.String("bench", defaultBench, "benchmark regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "1s", "go test -benchtime value")
	count := flag.Int("count", 1, "go test -count value")
	out := flag.String("out", "BENCH.json", "output JSON path")
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *bench,
		"-benchmem", "-benchtime", *benchtime, "-count", strconv.Itoa(*count), "."}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchrecord: go %s: %v\n", strings.Join(args, " "), err)
		os.Exit(1)
	}
	os.Stdout.Write(raw)

	f := File{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Bench:       *bench,
		Records:     parse(string(raw)),
	}
	if v, err := exec.Command("go", "version").Output(); err == nil {
		f.GoVersion = strings.TrimSpace(string(v))
	}
	f.Derived = derive(f.Records)

	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchrecord: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchrecord: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchrecord: wrote %d records to %s\n", len(f.Records), *out)
}

var lineRe = regexp.MustCompile(`^(Benchmark\S+)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// parse extracts records from `go test -bench` output. Each measurement is
// a "<value> <unit>" pair; ns/op, B/op and allocs/op map to fixed fields,
// anything else (b.ReportMetric output) lands in Metrics.
func parse(out string) []Record {
	var recs []Record
	for _, line := range strings.Split(out, "\n") {
		m := lineRe.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		r := Record{Name: m[1]}
		r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = val
			case "B/op":
				r.BytesPerOp = val
			case "allocs/op":
				r.AllocsPerOp = val
			default:
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[fields[i+1]] = val
			}
		}
		recs = append(recs, r)
	}
	return recs
}

// derive computes the headline ratios the acceptance criteria track.
func derive(recs []Record) map[string]string {
	byName := map[string]Record{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	out := map[string]string{}
	seq, haveSeq := byName["BenchmarkTripQuerySequential"]
	if par, ok := byName["BenchmarkTripQueryParallel"]; ok && haveSeq && par.NsPerOp > 0 {
		out["parallel_speedup_vs_sequential"] = fmt.Sprintf("%.2fx", seq.NsPerOp/par.NsPerOp)
	}
	return out
}
