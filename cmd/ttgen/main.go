// Command ttgen generates a synthetic evaluation dataset — the road
// network (with zones joined) and the simulated map-matched trajectories —
// and writes both to disk for use by ttquery.
//
// Usage:
//
//	ttgen -out data/ -scale small
//	ttgen -out data/ -drivers 458 -days 420 -trips 60000 -cities 10
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"pathhist/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ttgen: ")
	var (
		out     = flag.String("out", "data", "output directory")
		scale   = flag.String("scale", "small", "preset scale: small or full")
		seed    = flag.Int64("seed", 42, "master random seed")
		drivers = flag.Int("drivers", 0, "override number of drivers")
		days    = flag.Int("days", 0, "override number of simulated days")
		trips   = flag.Int("trips", 0, "override target trip count")
		cities  = flag.Int("cities", 0, "override number of cities")
	)
	flag.Parse()

	cfg := workload.SmallConfig()
	if *scale == "full" {
		cfg = workload.DefaultConfig()
	}
	cfg.Seed = *seed
	cfg.Net.Seed = *seed
	if *drivers > 0 {
		cfg.Drivers = *drivers
	}
	if *days > 0 {
		cfg.Days = *days
	}
	if *trips > 0 {
		cfg.TargetTrips = *trips
	}
	if *cities > 0 {
		cfg.Net.Cities = *cities
	}

	log.Printf("generating: %d cities, %d drivers, %d days, target %d trips",
		cfg.Net.Cities, cfg.Drivers, cfg.Days, cfg.TargetTrips)
	ds := workload.BuildDataset(cfg)
	log.Printf("network: %d vertices, %d directed edges",
		ds.G.NumVertices(), ds.G.NumEdges())
	log.Printf("trajectories: %d (%d segment traversals, %d drivers)",
		ds.Store.Len(), ds.Store.NumTraversals(), ds.Store.NumUsers())

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	netPath := filepath.Join(*out, "network.bin")
	trajPath := filepath.Join(*out, "trajectories.bin")
	if err := writeFile(netPath, func(f *os.File) error {
		_, err := ds.G.WriteTo(f)
		return err
	}); err != nil {
		log.Fatalf("writing %s: %v", netPath, err)
	}
	if err := writeFile(trajPath, func(f *os.File) error {
		_, err := ds.Store.WriteTo(f)
		return err
	}); err != nil {
		log.Fatalf("writing %s: %v", trajPath, err)
	}
	fmt.Printf("wrote %s and %s\n", netPath, trajPath)
}

func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		//lint:ignore syncerr the generator's error wins; the partial file is useless either way
		f.Close()
		return err
	}
	return f.Close()
}
