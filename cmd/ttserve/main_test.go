package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"syscall"
	"testing"
	"time"

	"pathhist"
	"pathhist/internal/workload"
)

// writeDataset materialises a ttgen-style dataset directory holding the
// first part of the store, returning the remainder as an extend batch.
func writeDataset(t *testing.T, dir string) (*pathhist.Graph, *pathhist.Store, *pathhist.Store) {
	t.Helper()
	ds := workload.BuildDataset(workload.SmallConfig())
	ds.Store.SortByStart()
	cuts := ds.Store.QuiescentCuts()
	if len(cuts) == 0 {
		t.Fatal("no quiescent cuts")
	}
	cut := cuts[len(cuts)/2]
	base, batch := ds.Store.Slice(0, cut), ds.Store.Slice(cut, ds.Store.Len())
	write := func(name string, fn func(f *os.File) error) {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := fn(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	write("network.bin", func(f *os.File) error { _, err := ds.G.WriteTo(f); return err })
	write("trajectories.bin", func(f *os.File) error { _, err := base.WriteTo(f); return err })
	return ds.G, base, batch
}

// TestLifecycleSIGTERM is the acceptance scenario: under live query +
// ingest load, SIGTERM drains in-flight requests (an accepted /extend
// completes and is acknowledged), leaks no goroutines, and the final
// snapshot captures exactly the acknowledged state.
func TestLifecycleSIGTERM(t *testing.T) {
	dataDir, snapDir := t.TempDir(), t.TempDir()
	g, base, batch := writeDataset(t, dataDir)

	baseline := runtime.NumGoroutine()
	started := make(chan string, 1)
	done := make(chan error, 1)
	cfg := config{
		data:         dataDir,
		addr:         "127.0.0.1:0",
		enableExtend: true,
		maxExtendMiB: 64,
		autoCompact:  0,
		snapshotDir:  snapDir,
		started:      started,
	}
	go func() { done <- run(context.Background(), cfg) }()
	var addr string
	select {
	case addr = <-started:
	case err := <-done:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("server did not start")
	}
	url := "http://" + addr
	client := &http.Client{Timeout: 30 * time.Second}

	// Keep the server under query load while the signal lands.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	qpath := base.Get(0).Path()
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(fmt.Sprintf("%s/query?path=%s&beta=5", url, pathParam(qpath)))
				if err != nil {
					return // listener closed during shutdown: expected
				}
				resp.Body.Close()
			}
		}()
	}

	// Fire the ingest and the signal concurrently — the batch is either
	// acknowledged (200, must survive into the snapshot) or refused whole.
	var buf bytes.Buffer
	if _, err := batch.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	extendDone := make(chan int, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := client.Post(url+"/extend", "application/octet-stream", bytes.NewReader(buf.Bytes()))
		if err != nil {
			extendDone <- 0 // connection refused before acceptance
			return
		}
		defer resp.Body.Close()
		extendDone <- resp.StatusCode
	}()
	time.Sleep(50 * time.Millisecond) // let the extend reach the server
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("server did not shut down")
	}
	close(stop)
	wg.Wait()
	extendStatus := <-extendDone
	client.CloseIdleConnections()

	// The final snapshot must exist, load cleanly, and hold exactly the
	// acknowledged trajectory count.
	snapPath := filepath.Join(snapDir, pathhist.SnapshotFileName)
	restored, err := pathhist.LoadSnapshotFile(g, snapPath, pathhist.Options{Partition: pathhist.ByZone})
	if err != nil {
		t.Fatalf("final snapshot does not load: %v", err)
	}
	want := base.Len()
	if extendStatus == http.StatusOK {
		want += batch.Len()
	} else if extendStatus != 0 {
		t.Fatalf("extend status = %d", extendStatus)
	}
	if restored.Trajectories() != want {
		t.Fatalf("snapshot holds %d trajectories, want %d (extend status %d)",
			restored.Trajectories(), want, extendStatus)
	}

	// No goroutine leak: everything run started must wind down.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		t.Fatalf("goroutines: %d, baseline %d", n, baseline)
	}
}

// TestLoadSnapshotFallback: an unusable -load-snapshot file must not stop
// the service — it logs and falls back to a from-scratch build.
func TestLoadSnapshotFallback(t *testing.T) {
	dataDir := t.TempDir()
	g, base, _ := writeDataset(t, dataDir)

	bad := filepath.Join(t.TempDir(), "corrupt.snt")
	if err := os.WriteFile(bad, []byte("not a snapshot at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	opts := pathhist.Options{Partition: pathhist.ByZone}
	eng, source, err := buildOrRestore(g, func() (*pathhist.Store, error) { return base, nil }, opts, bad)
	if err != nil {
		t.Fatalf("fallback build failed: %v", err)
	}
	if source != "built from trajectories.bin" {
		t.Fatalf("source = %q", source)
	}
	if eng.Trajectories() != base.Len() {
		t.Fatalf("fallback engine holds %d trajectories, want %d", eng.Trajectories(), base.Len())
	}

	// And a good snapshot restores without touching the build path.
	snap := filepath.Join(t.TempDir(), pathhist.SnapshotFileName)
	if _, err := eng.SnapshotFile(snap); err != nil {
		t.Fatal(err)
	}
	restored, source, err := buildOrRestore(g, func() (*pathhist.Store, error) { return base, nil }, opts, snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Trajectories() != base.Len() || source == "built from trajectories.bin" {
		t.Fatalf("restore: %d trajectories, source %q", restored.Trajectories(), source)
	}
}

func pathParam(p pathhist.Path) string {
	out := ""
	for i, e := range p {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprint(int(e))
	}
	return out
}
