package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"
	"syscall"
	"testing"
	"time"

	"pathhist"
	"pathhist/internal/workload"
)

// writeDataset materialises a ttgen-style dataset directory holding the
// first part of the store, returning the remainder as an extend batch.
func writeDataset(t *testing.T, dir string) (*pathhist.Graph, *pathhist.Store, *pathhist.Store) {
	t.Helper()
	ds := workload.BuildDataset(workload.SmallConfig())
	ds.Store.SortByStart()
	cuts := ds.Store.QuiescentCuts()
	if len(cuts) == 0 {
		t.Fatal("no quiescent cuts")
	}
	cut := cuts[len(cuts)/2]
	base, batch := ds.Store.Slice(0, cut), ds.Store.Slice(cut, ds.Store.Len())
	write := func(name string, fn func(f *os.File) error) {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := fn(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	write("network.bin", func(f *os.File) error { _, err := ds.G.WriteTo(f); return err })
	write("trajectories.bin", func(f *os.File) error { _, err := base.WriteTo(f); return err })
	return ds.G, base, batch
}

// TestLifecycleSIGTERM is the acceptance scenario: under live query +
// ingest load, SIGTERM drains in-flight requests (an accepted /extend
// completes and is acknowledged), leaks no goroutines, and the final
// snapshot captures exactly the acknowledged state.
func TestLifecycleSIGTERM(t *testing.T) {
	dataDir, snapDir := t.TempDir(), t.TempDir()
	g, base, batch := writeDataset(t, dataDir)

	baseline := runtime.NumGoroutine()
	started := make(chan string, 1)
	done := make(chan error, 1)
	cfg := config{
		data:         dataDir,
		addr:         "127.0.0.1:0",
		enableExtend: true,
		maxExtendMiB: 64,
		autoCompact:  0,
		snapshotDir:  snapDir,
		started:      started,
	}
	go func() { done <- run(context.Background(), cfg) }()
	var addr string
	select {
	case addr = <-started:
	case err := <-done:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("server did not start")
	}
	url := "http://" + addr
	client := &http.Client{Timeout: 30 * time.Second}

	// Keep the server under query load while the signal lands.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	qpath := base.Get(0).Path()
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(fmt.Sprintf("%s/query?path=%s&beta=5", url, pathParam(qpath)))
				if err != nil {
					return // listener closed during shutdown: expected
				}
				resp.Body.Close()
			}
		}()
	}

	// Fire the ingest and the signal concurrently — the batch is either
	// acknowledged (200, must survive into the snapshot) or refused whole.
	var buf bytes.Buffer
	if _, err := batch.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	extendDone := make(chan int, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := client.Post(url+"/extend", "application/octet-stream", bytes.NewReader(buf.Bytes()))
		if err != nil {
			extendDone <- 0 // connection refused before acceptance
			return
		}
		defer resp.Body.Close()
		extendDone <- resp.StatusCode
	}()
	time.Sleep(50 * time.Millisecond) // let the extend reach the server
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("server did not shut down")
	}
	close(stop)
	wg.Wait()
	extendStatus := <-extendDone
	client.CloseIdleConnections()

	// The final snapshot must exist, load cleanly, and hold exactly the
	// acknowledged trajectory count.
	snapPath, err := pathhist.FindLatestSnapshot(snapDir)
	if err != nil || snapPath == "" {
		t.Fatalf("no final snapshot in %s: %v", snapDir, err)
	}
	restored, err := pathhist.LoadSnapshotFile(g, snapPath, pathhist.Options{Partition: pathhist.ByZone})
	if err != nil {
		t.Fatalf("final snapshot does not load: %v", err)
	}
	want := base.Len()
	if extendStatus == http.StatusOK {
		want += batch.Len()
	} else if extendStatus != 0 {
		t.Fatalf("extend status = %d", extendStatus)
	}
	if restored.Trajectories() != want {
		t.Fatalf("snapshot holds %d trajectories, want %d (extend status %d)",
			restored.Trajectories(), want, extendStatus)
	}

	// No goroutine leak: everything run started must wind down.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		t.Fatalf("goroutines: %d, baseline %d", n, baseline)
	}
}

// TestLoadSnapshotFallback: an unusable -load-snapshot file must not stop
// the service — it logs and falls back to a from-scratch build.
func TestLoadSnapshotFallback(t *testing.T) {
	dataDir := t.TempDir()
	g, base, _ := writeDataset(t, dataDir)

	bad := filepath.Join(t.TempDir(), "corrupt.snt")
	if err := os.WriteFile(bad, []byte("not a snapshot at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	opts := pathhist.Options{Partition: pathhist.ByZone}
	eng, source, err := buildOrRestore(g, func() (*pathhist.Store, error) { return base, nil }, opts, bad, false)
	if err != nil {
		t.Fatalf("fallback build failed: %v", err)
	}
	if source != "built from trajectories.bin" {
		t.Fatalf("source = %q", source)
	}
	if eng.Trajectories() != base.Len() {
		t.Fatalf("fallback engine holds %d trajectories, want %d", eng.Trajectories(), base.Len())
	}

	// And a good snapshot restores without touching the build path.
	snap := filepath.Join(t.TempDir(), pathhist.SnapshotFileName)
	if _, err := eng.SnapshotFile(snap); err != nil {
		t.Fatal(err)
	}
	restored, source, err := buildOrRestore(g, func() (*pathhist.Store, error) { return base, nil }, opts, snap, false)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Trajectories() != base.Len() || source == "built from trajectories.bin" {
		t.Fatalf("restore: %d trajectories, source %q", restored.Trajectories(), source)
	}
}

// TestHelperServeProcess is not a test: it is the subprocess body for the
// SIGKILL crash-recovery test below, re-execing the test binary so a real
// kill -9 can land on a real process. Activated only via TTSERVE_HELPER.
func TestHelperServeProcess(t *testing.T) {
	if os.Getenv("TTSERVE_HELPER") != "1" {
		t.Skip("helper process body; driven by TestCrashRecoverySIGKILL")
	}
	started := make(chan string, 1)
	go func() {
		addr := <-started
		tmp := os.Getenv("TTSERVE_ADDRFILE") + ".tmp"
		if err := os.WriteFile(tmp, []byte(addr), 0o644); err == nil {
			_ = os.Rename(tmp, os.Getenv("TTSERVE_ADDRFILE"))
		}
	}()
	shards := 1
	if s := os.Getenv("TTSERVE_SHARDS"); s != "" {
		if _, err := fmt.Sscanf(s, "%d", &shards); err != nil {
			t.Fatalf("TTSERVE_SHARDS=%q: %v", s, err)
		}
	}
	cfg := config{
		data:          os.Getenv("TTSERVE_DATA"),
		addr:          "127.0.0.1:0",
		enableExtend:  true,
		maxExtendMiB:  64,
		autoCompact:   0,
		snapshotDir:   os.Getenv("TTSERVE_SNAP"),
		snapshotKeep:  3,
		shards:        shards,
		mmapSnapshots: os.Getenv("TTSERVE_MMAP") == "1",
		started:       started,
	}
	if err := run(context.Background(), cfg); err != nil {
		t.Fatalf("helper run: %v", err)
	}
}

// TestCrashRecoverySIGKILL is the durability acceptance scenario from
// DESIGN.md §11: batches acknowledged over HTTP survive a kill -9 — no
// drain, no final snapshot, nothing but the write-ahead log — and after a
// restart the service reports ready only once it again holds every
// acknowledged trajectory, answering queries exactly as before the crash.
func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess lifecycle test")
	}
	dataDir, snapDir := t.TempDir(), t.TempDir()
	_, base, batch := writeDataset(t, dataDir)
	addrFile := filepath.Join(t.TempDir(), "addr")
	client := &http.Client{Timeout: 30 * time.Second}

	start := func() *exec.Cmd {
		t.Helper()
		os.Remove(addrFile)
		cmd := exec.Command(os.Args[0], "-test.run=TestHelperServeProcess")
		cmd.Env = append(os.Environ(),
			"TTSERVE_HELPER=1",
			"TTSERVE_DATA="+dataDir,
			"TTSERVE_SNAP="+snapDir,
			"TTSERVE_ADDRFILE="+addrFile,
		)
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd
	}
	waitReady := func() string {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
				url := "http://" + string(b)
				if resp, err := client.Get(url + "/readyz"); err == nil {
					code := resp.StatusCode
					resp.Body.Close()
					if code == http.StatusOK {
						return url
					}
				}
			}
			time.Sleep(25 * time.Millisecond)
		}
		t.Fatal("server never became ready")
		return ""
	}

	cmd := start()
	url := waitReady()

	// Acknowledge a batch: once the 200 lands, the bytes are fsynced in the
	// log and the crash below must not lose them.
	var buf bytes.Buffer
	if _, err := batch.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url+"/extend", "application/octet-stream", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("extend status = %d", resp.StatusCode)
	}
	queryURL := fmt.Sprintf("%s/query?path=%s&beta=5", url, pathParam(base.Get(0).Path()))
	preKill, err := client.Get(queryURL)
	if err != nil {
		t.Fatal(err)
	}
	var want map[string]any
	if err := json.NewDecoder(preKill.Body).Decode(&want); err != nil {
		t.Fatal(err)
	}
	preKill.Body.Close()
	client.CloseIdleConnections()

	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no handler runs
		t.Fatal(err)
	}
	_ = cmd.Wait()

	cmd2 := start()
	defer func() {
		_ = cmd2.Process.Signal(syscall.SIGTERM)
		_ = cmd2.Wait()
	}()
	url2 := waitReady()

	// Every acknowledged trajectory is back.
	sresp, err := client.Get(url2 + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Trajectories int  `json:"trajectories"`
		Ready        bool `json:"ready"`
		WALEnabled   bool `json:"wal_enabled"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if !st.Ready || !st.WALEnabled {
		t.Fatalf("restarted statsz: %+v", st)
	}
	if wantTrajs := base.Len() + batch.Len(); st.Trajectories != wantTrajs {
		t.Fatalf("restarted server holds %d trajectories, want %d (acknowledged)", st.Trajectories, wantTrajs)
	}

	// And answers queries exactly as the pre-crash server did.
	postKill, err := client.Get(fmt.Sprintf("%s/query?path=%s&beta=5", url2, pathParam(base.Get(0).Path())))
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.NewDecoder(postKill.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	postKill.Body.Close()
	client.CloseIdleConnections()
	for _, k := range []string{"mean_seconds", "p05_seconds", "p50_seconds", "p95_seconds"} {
		if got[k] != want[k] {
			t.Fatalf("post-crash %s = %v, pre-crash %v", k, got[k], want[k])
		}
	}
}

// TestMappedCrashRecoverySIGKILL is the zero-copy variant of the crash
// scenario (DESIGN.md §15): the server restores by memory-mapping the
// snapshot file read-only, serves queries off the mapping, takes a kill -9
// while queries are in flight over it, and a second mapped restart answers
// bit-identically — the PROT_READ mapping means the crash cannot have
// dirtied the file it was serving from.
func TestMappedCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess lifecycle test")
	}
	dataDir, snapDir := t.TempDir(), t.TempDir()
	g, base, _ := writeDataset(t, dataDir)
	addrFile := filepath.Join(t.TempDir(), "addr")
	client := &http.Client{Timeout: 30 * time.Second}

	// Pre-seed the snapshot both mapped restarts serve from.
	seed, err := pathhist.NewEngine(g, base, pathhist.Options{Partition: pathhist.ByZone})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seed.SnapshotFileIn(snapDir); err != nil {
		t.Fatal(err)
	}

	start := func() *exec.Cmd {
		t.Helper()
		os.Remove(addrFile)
		cmd := exec.Command(os.Args[0], "-test.run=TestHelperServeProcess")
		cmd.Env = append(os.Environ(),
			"TTSERVE_HELPER=1",
			"TTSERVE_DATA="+dataDir,
			"TTSERVE_SNAP="+snapDir,
			"TTSERVE_ADDRFILE="+addrFile,
			"TTSERVE_MMAP=1",
		)
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd
	}
	waitReady := func() string {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
				url := "http://" + string(b)
				if resp, err := client.Get(url + "/readyz"); err == nil {
					code := resp.StatusCode
					resp.Body.Close()
					if code == http.StatusOK {
						return url
					}
				}
			}
			time.Sleep(25 * time.Millisecond)
		}
		t.Fatal("server never became ready")
		return ""
	}
	fetch := func(url string) map[string]any {
		t.Helper()
		resp, err := client.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query status = %d", resp.StatusCode)
		}
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return m
	}

	cmd := start()
	url := waitReady()
	queryPath := pathParam(base.Get(0).Path())
	want := fetch(fmt.Sprintf("%s/query?path=%s&beta=5", url, queryPath))

	// Keep queries in flight over the mapping while the kill -9 lands.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(fmt.Sprintf("%s/query?path=%s&beta=5", url, queryPath))
				if err != nil {
					return // connection dies with the process: expected
				}
				resp.Body.Close()
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()
	close(stop)
	wg.Wait()
	client.CloseIdleConnections()

	// The snapshot file the crashed process was mapped over is untouched;
	// a second mapped restart serves bit-identical answers.
	cmd2 := start()
	defer func() {
		_ = cmd2.Process.Signal(syscall.SIGTERM)
		_ = cmd2.Wait()
	}()
	url2 := waitReady()
	got := fetch(fmt.Sprintf("%s/query?path=%s&beta=5", url2, queryPath))
	for _, k := range []string{"mean_seconds", "p05_seconds", "p50_seconds", "p95_seconds", "epoch"} {
		if got[k] != want[k] {
			t.Fatalf("post-crash %s = %v, pre-crash %v", k, got[k], want[k])
		}
	}
	st := fetch(url2 + "/statsz")
	if n, ok := st["trajectories"].(float64); !ok || int(n) != base.Len() {
		t.Fatalf("restarted server holds %v trajectories, want %d", st["trajectories"], base.Len())
	}
}

func pathParam(p pathhist.Path) string {
	out := ""
	for i, e := range p {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprint(int(e))
	}
	return out
}
