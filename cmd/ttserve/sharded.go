package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"pathhist"
	"pathhist/internal/sharded"
	"pathhist/internal/ttserve"
	"pathhist/internal/wal"
)

// shardDir is shard k's durability directory under -snapshot-dir: its own
// snapshots and its own extend.wal, so shards fail, snapshot and recover
// independently.
func shardDir(base string, k int) string {
	return filepath.Join(base, fmt.Sprintf("shard-%d", k))
}

// shardState is one shard's recovered pieces.
type shardState struct {
	eng      *pathhist.Engine
	log      *wal.WAL
	snapPath string
	dir      string
	source   string
	applied  int
	err      error
}

// recoverShard restores one shard: newest snapshot in its directory (or a
// deterministic stripe build when there is none), then open its write-ahead
// log and replay the records the snapshot does not cover. Each shard's
// recovery is self-contained, so runSharded runs them in parallel.
func recoverShard(g *pathhist.Graph, st *shardState, stripe func() (*pathhist.Store, error), opts pathhist.Options, walEnabled, mmapLoad bool) {
	st.eng, st.source, st.err = buildOrRestore(g, stripe, opts, st.snapPath, mmapLoad)
	if st.err != nil || !walEnabled {
		return
	}
	st.log, st.err = wal.Open(filepath.Join(st.dir, walFileName))
	if st.err != nil {
		st.err = fmt.Errorf("write-ahead log: %w", st.err)
		return
	}
	if ws := st.log.Stats(); ws.TornTail {
		log.Printf("shard write-ahead log %s: dropped a torn %d-byte tail (crash mid-append; the batch was never acknowledged)",
			st.dir, ws.TornBytes)
	}
	st.applied, st.err = ttserve.ReplayWAL(st.eng, st.log)
	if st.err != nil {
		st.err = fmt.Errorf("replaying write-ahead log: %w", st.err)
	}
}

// runSharded is run's -shards>1 counterpart: the same lifecycle — bind
// behind a bootstrap handler, recover, serve, drain, final snapshot — with
// N per-stripe engines recovered in parallel and served through the
// scatter-gather front. Each shard owns a directory (shard-K under
// -snapshot-dir) holding its snapshots and write-ahead log; striping is
// deterministic (sort by start time, contiguous near-even slices), so a
// shard rebuilt from trajectories.bin always receives the same stripe it
// held before, and per-shard WAL replay chains from it exactly as in the
// single-engine deployment.
func runSharded(ctx context.Context, cfg config) error {
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	context.AfterFunc(ctx, stop)

	type handlerBox struct{ h http.Handler }
	var handler atomic.Value
	handler.Store(handlerBox{bootstrapHandler()})
	httpSrv := &http.Server{
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			handler.Load().(handlerBox).h.ServeHTTP(w, r)
		}),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	log.Printf("listening on %s (not ready; recovering %d shards)", ln.Addr(), cfg.shards)
	fail := func(err error) error {
		httpSrv.Close()
		return err
	}

	g, err := loadGraph(cfg.data)
	if err != nil {
		return fail(err)
	}
	if ctx.Err() != nil {
		log.Printf("interrupted while loading the dataset; exiting")
		httpSrv.Close()
		return nil
	}
	opts := pathhist.Options{
		Partition:             pathhist.ByZone,
		Estimator:             pathhist.EstimatorCSSFast,
		AutoCompactPartitions: cfg.autoCompact,
		CompactInBackground:   cfg.compactBackground,
	}
	shardOpts := sharded.ShardOptions(opts)

	n := cfg.shards
	states := make([]*shardState, n)
	walEnabled := cfg.enableExtend && cfg.snapshotDir != "" && !cfg.disableWAL
	for k := range states {
		states[k] = &shardState{}
		if cfg.snapshotDir == "" {
			continue
		}
		states[k].dir = shardDir(cfg.snapshotDir, k)
		if err := os.MkdirAll(states[k].dir, 0o755); err != nil {
			return fail(fmt.Errorf("shard %d snapshot dir: %w", k, err))
		}
		if cfg.loadSnapshot == "" {
			states[k].snapPath, err = pathhist.FindLatestSnapshot(states[k].dir)
			if err != nil {
				return fail(fmt.Errorf("scanning %s for snapshots: %w", states[k].dir, err))
			}
		}
	}

	// The trajectory store is striped lazily, once, the first time some
	// shard actually needs to build from scratch — a full restore never
	// reads trajectories.bin at all.
	var stripeOnce sync.Once
	var stripes []*pathhist.Store
	var stripeErr error
	stripeFor := func(k int) func() (*pathhist.Store, error) {
		return func() (*pathhist.Store, error) {
			stripeOnce.Do(func() {
				var store *pathhist.Store
				if store, stripeErr = loadStore(cfg.data); stripeErr != nil {
					return
				}
				stripes = sharded.Stripes(store, n)
				if len(stripes) != n {
					stripeErr = fmt.Errorf("dataset holds %d trajectories, fewer than %d shards", store.Len(), n)
				}
			})
			if stripeErr != nil {
				return nil, stripeErr
			}
			return stripes[k], nil
		}
	}
	var wg sync.WaitGroup
	for k := range states {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			recoverShard(g, states[k], stripeFor(k), shardOpts, walEnabled, cfg.mmapSnapshots)
		}(k)
	}
	wg.Wait()
	cleanup := func() {
		for _, st := range states {
			if st.eng != nil {
				st.eng.Close()
			}
			if st.log != nil {
				//lint:ignore syncerr best-effort close while abandoning startup — the process exits with the original error and nothing was acknowledged
				st.log.Close()
			}
		}
	}
	for k, st := range states {
		if st.err != nil {
			cleanup()
			return fail(fmt.Errorf("shard %d: %w", k, st.err))
		}
		if st.applied > 0 {
			log.Printf("shard %d: replayed %d acknowledged batches (%d trajectories)", k, st.applied, st.eng.Trajectories())
		}
	}
	if ctx.Err() != nil {
		log.Printf("interrupted while recovering the shards; exiting")
		httpSrv.Close()
		cleanup()
		return nil
	}

	engines := make([]*pathhist.Engine, n)
	for k, st := range states {
		engines[k] = st.eng
	}
	cluster, err := sharded.New(g, engines, sharded.Config{Opts: opts, ReplicasPerShard: cfg.replicasPerShard})
	if err != nil {
		cleanup()
		return fail(err)
	}
	shardSrvs := make([]*ttserve.Server, n)
	for k, st := range states {
		shardSrvs[k] = ttserve.NewServer(st.eng, ttserve.Config{
			EnableExtend:          cfg.enableExtend,
			MaxExtendBytes:        cfg.maxExtendMiB << 20,
			MaxExtendTrajectories: cfg.maxTrajs,
			SnapshotDir:           st.dir,
			SnapshotKeep:          cfg.snapshotKeep,
			WAL:                   st.log,
			LoadedSnapshotPath:    st.snapPath,
			MaxWALBytes:           cfg.maxWALMiB << 20,
			MaxPartitionBacklog:   cfg.maxBacklog,
		})
	}
	front, err := ttserve.NewShardedServer(cluster, shardSrvs, ttserve.Config{
		EnableExtend:          cfg.enableExtend,
		MaxExtendBytes:        cfg.maxExtendMiB << 20,
		MaxExtendTrajectories: cfg.maxTrajs,
		QueryTimeout:          cfg.queryTimeout,
		ExtendTimeout:         cfg.extendTimeout,
	})
	if err != nil {
		cleanup()
		return fail(err)
	}
	handler.Store(handlerBox{front})
	total := 0
	for _, st := range states {
		total += st.eng.Trajectories()
	}
	mode := "ingestion disabled"
	if cfg.enableExtend {
		mode = "live ingestion on POST /extend"
		if walEnabled {
			mode += ", write-ahead logged per shard"
		}
	}
	log.Printf("serving %d trajectories over %d edges across %d shards; listening on %s (%s)",
		total, g.NumEdges(), n, ln.Addr(), mode)
	if cfg.started != nil {
		cfg.started <- ln.Addr().String()
	}

	// Replayed logs mean stale durable bases: snapshot every shard whose
	// log holds records so the next restart replays from here.
	if walEnabled {
		replayed := false
		for _, st := range states {
			if st.log.Size() > 16 {
				replayed = true
			}
		}
		if replayed {
			if _, err := front.WriteSnapshots(); err != nil {
				log.Printf("warning: post-recovery snapshots: %v", err)
			} else {
				log.Printf("post-recovery snapshots written for %d shards", n)
			}
		}
	}
	if cfg.snapshotDir != "" && cfg.snapshotInterval > 0 {
		go func() {
			tick := time.NewTicker(cfg.snapshotInterval)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if _, err := front.WriteSnapshots(); err != nil {
						log.Printf("warning: periodic snapshots: %v", err)
					}
				}
			}
		}()
	}

	select {
	case err := <-errc:
		cluster.Close()
		return err
	case <-ctx.Done():
	}
	front.BeginDrain()
	log.Printf("shutting down: draining in-flight requests (limit %v)", shutdownTimeout)
	shCtx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	var drainErr error
	if err := httpSrv.Shutdown(shCtx); err != nil {
		drainErr = fmt.Errorf("shutdown: %w", err)
		log.Printf("warning: %v; writing the final snapshots anyway", drainErr)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) && drainErr == nil {
		drainErr = err
	}
	if cfg.snapshotDir != "" {
		if _, err := front.WriteSnapshots(); err != nil {
			cluster.Close()
			if drainErr != nil {
				return fmt.Errorf("final snapshots: %v (after %w)", err, drainErr)
			}
			return fmt.Errorf("final snapshots: %w", err)
		}
		log.Printf("final snapshots written for %d shards", n)
	}
	for k, st := range states {
		if st.log == nil {
			continue
		}
		if err := st.log.Close(); err != nil && drainErr == nil {
			drainErr = fmt.Errorf("closing shard %d write-ahead log: %w", k, err)
		}
	}
	cluster.Close()
	if drainErr != nil {
		return drainErr
	}
	log.Printf("shutdown complete")
	return nil
}
