// Command ttserve exposes travel-time histogram retrieval as an HTTP JSON
// service over a dataset produced by ttgen — the "online routing
// application" deployment shape the paper's outlook describes. One shared
// engine serves all requests concurrently; with -enable-extend the service
// also ingests live trajectory batches, published lock-free as index
// epochs (DESIGN.md §8).
//
// Durability (DESIGN.md §11): with -enable-extend and -snapshot-dir the
// service keeps a write-ahead log next to its snapshots — every /extend is
// fsynced to the log before it is acknowledged, so a crash (SIGKILL,
// panic, power loss) loses nothing a client was told succeeded. Startup
// recovers in order: bind the listener behind a not-ready bootstrap
// handler, restore the newest snapshot in -snapshot-dir (or build from
// trajectories.bin when there is none), replay the log's uncovered
// records, then swap in the real handler — /readyz flips to 200 only after
// snapshot load and WAL replay both completed. -snapshot-interval bounds
// how much log a future restart replays by snapshotting periodically; each
// snapshot rotates the log and prunes old snapshot generations down to
// -snapshot-keep.
//
// The process runs as a managed foreground service: SIGINT/SIGTERM drain
// in-flight requests (every accepted /extend completes and is acknowledged
// before the listener closes for good) while new requests get 503 +
// Retry-After instead of connection resets, and the listener applies
// read/header/idle timeouts so one slow client cannot pin goroutines
// forever.
//
//	ttserve -data data -addr :8080 [-enable-extend] [-auto-compact 16]
//	        [-snapshot-dir snapdir] [-snapshot-interval 5m] [-snapshot-keep 3]
//	        [-load-snapshot snapdir/snapshot-…snt] [-disable-wal]
//
//	GET  /query?path=17,42,43&tod=08:15&window=900&beta=20[&user=3]
//	GET  /query?path=17,42,43&from=1335830400&until=1335917000&beta=20
//	POST /extend            (body: trajectory batch in traj binary format)
//	POST /compact           (merge ingested partitions; new epoch)
//	POST /snapshot          (persist the served index to -snapshot-dir)
//	GET  /statsz
//	GET  /healthz           (liveness: 200 while the process runs)
//	GET  /readyz            (readiness: 200 once recovered and not draining)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	"pathhist"
	"pathhist/internal/ttserve"
	"pathhist/internal/wal"
)

// config carries the parsed flags; run is kept separate from main so the
// full lifecycle — listen, recover, serve, drain, final snapshot — is
// testable.
type config struct {
	data              string
	addr              string
	shards            int
	enableExtend      bool
	maxExtendMiB      int64
	maxTrajs          int
	autoCompact       int
	compactBackground bool
	snapshotDir       string
	snapshotInterval  time.Duration
	snapshotKeep      int
	loadSnapshot      string
	mmapSnapshots     bool
	replicasPerShard  int
	disableWAL        bool
	maxWALMiB         int64
	maxBacklog        int
	queryTimeout      time.Duration
	extendTimeout     time.Duration

	// started, when non-nil, receives the bound listener address once the
	// server is recovered and serving (used by the lifecycle tests; nil in
	// main).
	started chan<- string
}

// walFileName is the write-ahead log's file name inside -snapshot-dir: the
// log and the snapshots it chains from live on the same filesystem, so a
// snapshot + rotation is atomic with respect to mount loss.
const walFileName = "extend.wal"

// shutdownTimeout bounds the graceful drain: in-flight requests get this
// long to complete after SIGINT/SIGTERM before the server gives up.
const shutdownTimeout = 30 * time.Second

func main() {
	log.SetFlags(0)
	log.SetPrefix("ttserve: ")
	var cfg config
	flag.StringVar(&cfg.data, "data", "data", "dataset directory (from ttgen)")
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.IntVar(&cfg.shards, "shards", 1,
		"number of independent index shards; >1 serves through the fault-tolerant scatter-gather front with one engine, write-ahead log and snapshot directory (shard-K under -snapshot-dir) per shard")
	flag.BoolVar(&cfg.enableExtend, "enable-extend", false,
		"accept live trajectory batches on POST /extend, compaction on POST /compact and snapshots on POST /snapshot")
	flag.Int64Var(&cfg.maxExtendMiB, "max-extend-mib", 64, "largest accepted /extend body in MiB")
	flag.IntVar(&cfg.maxTrajs, "max-extend-trajs", 0,
		"largest accepted /extend batch in trajectories (0 = unlimited); larger batches get 413")
	flag.IntVar(&cfg.autoCompact, "auto-compact", 16,
		"merge ingested partitions once this many accumulate (0 = manual /compact only)")
	flag.BoolVar(&cfg.compactBackground, "compact-background", true,
		"run auto-compaction merges in a background goroutine instead of inside the triggering /extend request")
	flag.StringVar(&cfg.snapshotDir, "snapshot-dir", "",
		"directory for index snapshots and the ingest write-ahead log: enables POST /snapshot (with -enable-extend), periodic and shutdown snapshots, and crash recovery")
	flag.DurationVar(&cfg.snapshotInterval, "snapshot-interval", 0,
		"write a snapshot (rotating the write-ahead log) this often (0 = only on demand and at shutdown)")
	flag.IntVar(&cfg.snapshotKeep, "snapshot-keep", ttserve.DefaultSnapshotKeep,
		"how many snapshot generations to retain in -snapshot-dir")
	flag.StringVar(&cfg.loadSnapshot, "load-snapshot", "",
		"restore the engine from this snapshot file instead of the newest one in -snapshot-dir (falls back to a build if the snapshot is unusable)")
	flag.BoolVar(&cfg.mmapSnapshots, "mmap-snapshots", false,
		"restore snapshots by memory-mapping the file read-only instead of copying it onto the heap (DESIGN.md §15): the index columns view the mapping zero-copy, restart cost stays flat as the index grows, and replicas share one physical copy")
	flag.IntVar(&cfg.replicasPerShard, "replicas-per-shard", 1,
		"query-engine replicas per shard (with -shards>1): replicas share the shard's published snapshot (and mapping, with -mmap-snapshots), the dispatcher load-balances across them and hedges to a different replica")
	flag.BoolVar(&cfg.disableWAL, "disable-wal", false,
		"skip the ingest write-ahead log: /extend acknowledges after publication only, and batches since the last snapshot are lost on a crash")
	flag.Int64Var(&cfg.maxWALMiB, "max-wal-mib", 256,
		"shed /extend load (503 + Retry-After) once the write-ahead log exceeds this many MiB (0 = unbounded)")
	flag.IntVar(&cfg.maxBacklog, "max-partition-backlog", 0,
		"shed /extend load (503 + Retry-After) once the index holds more than this many partitions (0 = unbounded)")
	flag.DurationVar(&cfg.queryTimeout, "query-timeout", 0,
		"abort /query requests that exceed this deadline with 504 (0 = unbounded); a ?timeout= parameter can lower but never raise it")
	flag.DurationVar(&cfg.extendTimeout, "extend-timeout", 0,
		"shed /extend requests still waiting for the ingest lock after this long with 504 (0 = unbounded); never interrupts a batch once it is logged")
	flag.Parse()

	if err := run(context.Background(), cfg); err != nil {
		log.Fatal(err)
	}
}

// bootstrapHandler serves while the index is being recovered: the process
// is alive (/healthz 200) but not routable (/readyz 503) and every other
// request is shed with 503 + Retry-After instead of connection refused —
// an orchestrator sees a starting replica, not a dead one.
func bootstrapHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", ttserve.RetryAfter())
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"error":"recovering: snapshot load and log replay in progress"}`)
	})
	return mux
}

// run is the whole service lifecycle. It returns once the server has shut
// down cleanly (nil) or failed.
func run(ctx context.Context, cfg config) error {
	if cfg.shards > 1 {
		return runSharded(ctx, cfg)
	}
	// Signal wiring first: a SIGTERM during the (potentially long) recovery
	// triggers a clean exit at the next phase boundary. The AfterFunc
	// restores default signal handling the moment the first signal lands,
	// so a second signal hard-kills even mid-recovery — the signals are
	// never silently swallowed.
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	context.AfterFunc(ctx, stop)

	// The listener binds before recovery starts, behind the bootstrap
	// handler. A bare ListenAndServe would accept connections with no
	// deadlines at all: a slowloris client (or a stalled proxy) could hold
	// request goroutines open forever. Headers get a tight deadline; bodies
	// a generous one (/extend uploads are tens of MiB); idle keep-alives
	// are bounded so a rolling restart is not hostage to dormant
	// connections.
	type handlerBox struct{ h http.Handler } // one concrete type for atomic.Value
	var handler atomic.Value                 // handlerBox: bootstrap, swapped for the real server
	handler.Store(handlerBox{bootstrapHandler()})
	httpSrv := &http.Server{
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			handler.Load().(handlerBox).h.ServeHTTP(w, r)
		}),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	log.Printf("listening on %s (not ready; recovering)", ln.Addr())
	// Any pre-serving failure must take the bootstrap listener down with it.
	fail := func(err error) error {
		httpSrv.Close()
		return err
	}

	g, err := loadGraph(cfg.data)
	if err != nil {
		return fail(err)
	}
	if ctx.Err() != nil {
		log.Printf("interrupted while loading the dataset; exiting")
		httpSrv.Close()
		return nil
	}
	opts := pathhist.Options{
		Partition:             pathhist.ByZone,
		Estimator:             pathhist.EstimatorCSSFast,
		AutoCompactPartitions: cfg.autoCompact,
		CompactInBackground:   cfg.compactBackground,
	}
	if cfg.snapshotDir != "" {
		if err := os.MkdirAll(cfg.snapshotDir, 0o755); err != nil {
			return fail(fmt.Errorf("snapshot dir: %w", err))
		}
	}
	// Resolve the recovery base: an explicit -load-snapshot wins, otherwise
	// the newest snapshot in -snapshot-dir.
	snapshotPath := cfg.loadSnapshot
	if snapshotPath == "" && cfg.snapshotDir != "" {
		snapshotPath, err = pathhist.FindLatestSnapshot(cfg.snapshotDir)
		if err != nil {
			return fail(fmt.Errorf("scanning %s for snapshots: %w", cfg.snapshotDir, err))
		}
	}
	// The trajectory store is only needed when the index is actually built
	// — a successful snapshot restore must not pay for reading and parsing
	// trajectories.bin (the biggest file in the dataset), so it loads
	// lazily inside the fallback path.
	eng, source, err := buildOrRestore(g, func() (*pathhist.Store, error) {
		return loadStore(cfg.data)
	}, opts, snapshotPath, cfg.mmapSnapshots)
	if err != nil {
		return fail(err)
	}
	if ctx.Err() != nil {
		log.Printf("interrupted while building the index; exiting")
		httpSrv.Close()
		eng.Close()
		return nil
	}

	// Write-ahead log: open, replay what the snapshot does not cover, and
	// only then declare the engine recovered. Replay fails closed — a log
	// that does not chain from the restored state (or fails its checksums)
	// stops the process rather than silently serving less than what was
	// acknowledged.
	var ingestLog *wal.WAL
	walEnabled := cfg.enableExtend && cfg.snapshotDir != "" && !cfg.disableWAL
	if walEnabled {
		ingestLog, err = wal.Open(filepath.Join(cfg.snapshotDir, walFileName))
		if err != nil {
			return fail(fmt.Errorf("write-ahead log: %w", err))
		}
		if st := ingestLog.Stats(); st.TornTail {
			log.Printf("write-ahead log: dropped a torn %d-byte tail (crash mid-append; the batch was never acknowledged)", st.TornBytes)
		}
		applied, err := ttserve.ReplayWAL(eng, ingestLog)
		if err != nil {
			return fail(fmt.Errorf("replaying write-ahead log: %w", err))
		}
		if applied > 0 {
			log.Printf("write-ahead log: replayed %d acknowledged batches (epoch %d, %d trajectories)",
				applied, eng.Epoch(), eng.Trajectories())
		}
	}

	mode := "ingestion disabled"
	if cfg.enableExtend {
		mode = "live ingestion on POST /extend"
		if cfg.autoCompact > 0 {
			mode += fmt.Sprintf(", auto-compaction at %d partitions", cfg.autoCompact)
			if cfg.compactBackground {
				mode += " (background)"
			}
		}
		if walEnabled {
			mode += ", write-ahead logged"
		}
	}
	if cfg.snapshotDir != "" {
		mode += fmt.Sprintf(", snapshots to %s", cfg.snapshotDir)
	}

	srv := ttserve.NewServer(eng, ttserve.Config{
		EnableExtend:          cfg.enableExtend,
		MaxExtendBytes:        cfg.maxExtendMiB << 20,
		MaxExtendTrajectories: cfg.maxTrajs,
		SnapshotDir:           cfg.snapshotDir,
		SnapshotKeep:          cfg.snapshotKeep,
		WAL:                   ingestLog,
		LoadedSnapshotPath:    snapshotPath,
		MaxWALBytes:           cfg.maxWALMiB << 20,
		MaxPartitionBacklog:   cfg.maxBacklog,
		QueryTimeout:          cfg.queryTimeout,
		ExtendTimeout:         cfg.extendTimeout,
	})
	// Recovery complete: swap the real handler in; /readyz flips to 200.
	handler.Store(handlerBox{srv})
	log.Printf("serving %d trajectories over %d edges (%s); listening on %s (%s)",
		eng.Trajectories(), g.NumEdges(), source, ln.Addr(), mode)
	if cfg.started != nil {
		cfg.started <- ln.Addr().String()
	}

	// A replayed log means the durable base is stale: snapshot now so the
	// next restart replays from here, and so the log is rotated down.
	if walEnabled && ingestLog.Size() > 16 {
		if st, err := srv.WriteSnapshot(); err != nil {
			log.Printf("warning: post-recovery snapshot: %v", err)
		} else {
			log.Printf("post-recovery snapshot: %s (epoch %d)", st.Path, st.Epoch)
		}
	}

	// Periodic snapshots bound the replay a crash victim pays for.
	if cfg.snapshotDir != "" && cfg.snapshotInterval > 0 {
		go func() {
			tick := time.NewTicker(cfg.snapshotInterval)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if st, err := srv.WriteSnapshot(); err != nil {
						log.Printf("warning: periodic snapshot: %v", err)
					} else {
						log.Printf("periodic snapshot: %s (epoch %d, %d bytes)", st.Path, st.Epoch, st.Bytes)
					}
				}
			}
		}()
	}

	select {
	case err := <-errc:
		eng.Close()
		return err
	case <-ctx.Done():
	}
	// Graceful drain: flip /readyz, shed new requests with 503 +
	// Retry-After, and let in-flight requests — including /extend
	// publications — complete and be acknowledged. Default signal handling
	// is already restored (the AfterFunc above), so a second signal kills
	// the process the default way.
	srv.BeginDrain()
	log.Printf("shutting down: draining in-flight requests (limit %v)", shutdownTimeout)
	shCtx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	var drainErr error
	if err := httpSrv.Shutdown(shCtx); err != nil {
		// A stuck client exceeded the drain budget. Keep going: the final
		// snapshot below persists every batch already acknowledged, which
		// matters more after a messy drain, not less.
		drainErr = fmt.Errorf("shutdown: %w", err)
		log.Printf("warning: %v; writing the final snapshot anyway", drainErr)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) && drainErr == nil {
		drainErr = err
	}
	// Final snapshot, after the drain: it captures every batch that was
	// acknowledged before the listener closed, so the next restart resumes
	// from exactly the state clients saw — written even when the drain
	// timed out, since the published engine state is valid regardless.
	if cfg.snapshotDir != "" {
		st, err := srv.WriteSnapshot()
		if err != nil {
			eng.Close()
			if drainErr != nil {
				return fmt.Errorf("final snapshot: %v (after %w)", err, drainErr)
			}
			return fmt.Errorf("final snapshot: %w", err)
		}
		log.Printf("final snapshot: %s (%d bytes, epoch %d)", st.Path, st.Bytes, st.Epoch)
	}
	if ingestLog != nil {
		if err := ingestLog.Close(); err != nil && drainErr == nil {
			drainErr = fmt.Errorf("closing write-ahead log: %w", err)
		}
	}
	eng.Close()
	if drainErr != nil {
		return drainErr
	}
	log.Printf("shutdown complete")
	return nil
}

// buildOrRestore restores the engine from a snapshot when one is given and
// loadable, and otherwise builds from the trajectory store (fetched
// lazily — a successful restore never reads trajectories.bin at all). With
// mmapLoad set the restore memory-maps the file and serves zero-copy views
// over it (DESIGN.md §15) instead of copying the columns onto the heap.
// Snapshot loading fails closed — a corrupt, truncated, version-skewed or
// wrong-network file is reported and skipped, never served — but the
// service still comes up, via the same from-scratch build path a plain
// start uses.
func buildOrRestore(g *pathhist.Graph, loadStore func() (*pathhist.Store, error), opts pathhist.Options, snapshotPath string, mmapLoad bool) (*pathhist.Engine, string, error) {
	if snapshotPath != "" {
		var eng *pathhist.Engine
		var err error
		how := "restored from"
		if mmapLoad {
			eng, err = pathhist.LoadSnapshotFileMapped(g, snapshotPath, opts)
			how = "mapped read-only from"
		} else {
			eng, err = pathhist.LoadSnapshotFile(g, snapshotPath, opts)
		}
		if err == nil {
			return eng, fmt.Sprintf("%s %s, epoch %d", how, snapshotPath, eng.Epoch()), nil
		}
		log.Printf("warning: snapshot %s unusable (%v); falling back to a from-scratch build", snapshotPath, err)
	}
	store, err := loadStore()
	if err != nil {
		return nil, "", err
	}
	eng, err := pathhist.NewEngine(g, store, opts)
	if err != nil {
		return nil, "", err
	}
	return eng, "built from trajectories.bin", nil
}

func loadGraph(dir string) (*pathhist.Graph, error) {
	nf, err := os.Open(filepath.Join(dir, "network.bin"))
	if err != nil {
		return nil, err
	}
	defer nf.Close()
	return pathhist.ReadGraph(nf)
}

func loadStore(dir string) (*pathhist.Store, error) {
	tf, err := os.Open(filepath.Join(dir, "trajectories.bin"))
	if err != nil {
		return nil, err
	}
	defer tf.Close()
	return pathhist.ReadStore(tf)
}
