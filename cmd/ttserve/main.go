// Command ttserve exposes travel-time histogram retrieval as an HTTP JSON
// service over a dataset produced by ttgen — the "online routing
// application" deployment shape the paper's outlook describes (engines are
// immutable after construction, so requests are served concurrently).
//
//	ttserve -data data -addr :8080
//
//	GET /query?path=17,42,43&tod=08:15&window=900&beta=20[&user=3]
//	GET /healthz
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"path/filepath"

	"pathhist"
	"pathhist/internal/ttserve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ttserve: ")
	var (
		data = flag.String("data", "data", "dataset directory (from ttgen)")
		addr = flag.String("addr", ":8080", "listen address")
	)
	flag.Parse()

	g, store, err := load(*data)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := pathhist.NewEngine(g, store, pathhist.Options{
		Partition: pathhist.ByZone,
		Estimator: pathhist.EstimatorCSSFast,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("indexed %d trajectories over %d edges; listening on %s",
		store.Len(), g.NumEdges(), *addr)
	if err := http.ListenAndServe(*addr, ttserve.NewHandler(eng)); err != nil {
		log.Fatal(err)
	}
}

func load(dir string) (*pathhist.Graph, *pathhist.Store, error) {
	nf, err := os.Open(filepath.Join(dir, "network.bin"))
	if err != nil {
		return nil, nil, err
	}
	defer nf.Close()
	g, err := pathhist.ReadGraph(nf)
	if err != nil {
		return nil, nil, err
	}
	tf, err := os.Open(filepath.Join(dir, "trajectories.bin"))
	if err != nil {
		return nil, nil, err
	}
	defer tf.Close()
	store, err := pathhist.ReadStore(tf)
	if err != nil {
		return nil, nil, err
	}
	return g, store, nil
}
