// Command ttserve exposes travel-time histogram retrieval as an HTTP JSON
// service over a dataset produced by ttgen — the "online routing
// application" deployment shape the paper's outlook describes. One shared
// engine serves all requests concurrently; with -enable-extend the service
// also ingests live trajectory batches, published lock-free as index
// epochs (DESIGN.md §8).
//
//	ttserve -data data -addr :8080 [-enable-extend]
//
//	GET  /query?path=17,42,43&tod=08:15&window=900&beta=20[&user=3]
//	GET  /query?path=17,42,43&from=1335830400&until=1335917000&beta=20
//	POST /extend            (body: trajectory batch in traj binary format)
//	GET  /statsz
//	GET  /healthz
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"path/filepath"

	"pathhist"
	"pathhist/internal/ttserve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ttserve: ")
	var (
		data         = flag.String("data", "data", "dataset directory (from ttgen)")
		addr         = flag.String("addr", ":8080", "listen address")
		enableExtend = flag.Bool("enable-extend", false,
			"accept live trajectory batches on POST /extend (traj binary format)")
		maxExtendMiB = flag.Int64("max-extend-mib", 64, "largest accepted /extend body in MiB")
	)
	flag.Parse()

	g, store, err := load(*data)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := pathhist.NewEngine(g, store, pathhist.Options{
		Partition: pathhist.ByZone,
		Estimator: pathhist.EstimatorCSSFast,
	})
	if err != nil {
		log.Fatal(err)
	}
	mode := "ingestion disabled"
	if *enableExtend {
		mode = "live ingestion on POST /extend"
	}
	log.Printf("indexed %d trajectories over %d edges; listening on %s (%s)",
		store.Len(), g.NumEdges(), *addr, mode)
	handler := ttserve.NewHandlerWith(eng, ttserve.Config{
		EnableExtend:   *enableExtend,
		MaxExtendBytes: *maxExtendMiB << 20,
	})
	if err := http.ListenAndServe(*addr, handler); err != nil {
		log.Fatal(err)
	}
}

func load(dir string) (*pathhist.Graph, *pathhist.Store, error) {
	nf, err := os.Open(filepath.Join(dir, "network.bin"))
	if err != nil {
		return nil, nil, err
	}
	defer nf.Close()
	g, err := pathhist.ReadGraph(nf)
	if err != nil {
		return nil, nil, err
	}
	tf, err := os.Open(filepath.Join(dir, "trajectories.bin"))
	if err != nil {
		return nil, nil, err
	}
	defer tf.Close()
	store, err := pathhist.ReadStore(tf)
	if err != nil {
		return nil, nil, err
	}
	return g, store, nil
}
