// Command ttserve exposes travel-time histogram retrieval as an HTTP JSON
// service over a dataset produced by ttgen — the "online routing
// application" deployment shape the paper's outlook describes. One shared
// engine serves all requests concurrently; with -enable-extend the service
// also ingests live trajectory batches, published lock-free as index
// epochs (DESIGN.md §8).
//
//	ttserve -data data -addr :8080 [-enable-extend] [-auto-compact 16]
//
//	GET  /query?path=17,42,43&tod=08:15&window=900&beta=20[&user=3]
//	GET  /query?path=17,42,43&from=1335830400&until=1335917000&beta=20
//	POST /extend            (body: trajectory batch in traj binary format)
//	POST /compact           (merge ingested partitions; new epoch)
//	GET  /statsz
//	GET  /healthz
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"

	"pathhist"
	"pathhist/internal/ttserve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ttserve: ")
	var (
		data         = flag.String("data", "data", "dataset directory (from ttgen)")
		addr         = flag.String("addr", ":8080", "listen address")
		enableExtend = flag.Bool("enable-extend", false,
			"accept live trajectory batches on POST /extend and compaction on POST /compact")
		maxExtendMiB   = flag.Int64("max-extend-mib", 64, "largest accepted /extend body in MiB")
		maxExtendTrajs = flag.Int("max-extend-trajs", 0,
			"largest accepted /extend batch in trajectories (0 = unlimited); larger batches get 413")
		autoCompact = flag.Int("auto-compact", 16,
			"merge ingested partitions once this many accumulate (0 = manual /compact only)")
	)
	flag.Parse()

	g, store, err := load(*data)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := pathhist.NewEngine(g, store, pathhist.Options{
		Partition:             pathhist.ByZone,
		Estimator:             pathhist.EstimatorCSSFast,
		AutoCompactPartitions: *autoCompact,
	})
	if err != nil {
		log.Fatal(err)
	}
	mode := "ingestion disabled"
	if *enableExtend {
		mode = "live ingestion on POST /extend"
		if *autoCompact > 0 {
			mode += fmt.Sprintf(", auto-compaction at %d partitions", *autoCompact)
		}
	}
	log.Printf("indexed %d trajectories over %d edges; listening on %s (%s)",
		store.Len(), g.NumEdges(), *addr, mode)
	handler := ttserve.NewHandlerWith(eng, ttserve.Config{
		EnableExtend:          *enableExtend,
		MaxExtendBytes:        *maxExtendMiB << 20,
		MaxExtendTrajectories: *maxExtendTrajs,
	})
	if err := http.ListenAndServe(*addr, handler); err != nil {
		log.Fatal(err)
	}
}

func load(dir string) (*pathhist.Graph, *pathhist.Store, error) {
	nf, err := os.Open(filepath.Join(dir, "network.bin"))
	if err != nil {
		return nil, nil, err
	}
	defer nf.Close()
	g, err := pathhist.ReadGraph(nf)
	if err != nil {
		return nil, nil, err
	}
	tf, err := os.Open(filepath.Join(dir, "trajectories.bin"))
	if err != nil {
		return nil, nil, err
	}
	defer tf.Close()
	store, err := pathhist.ReadStore(tf)
	if err != nil {
		return nil, nil, err
	}
	return g, store, nil
}
