// Command ttserve exposes travel-time histogram retrieval as an HTTP JSON
// service over a dataset produced by ttgen — the "online routing
// application" deployment shape the paper's outlook describes. One shared
// engine serves all requests concurrently; with -enable-extend the service
// also ingests live trajectory batches, published lock-free as index
// epochs (DESIGN.md §8).
//
// Restart persistence (DESIGN.md §10): with -snapshot-dir the service
// writes mmap-friendly snapshots of the served index — on demand via
// POST /snapshot (behind -enable-extend) and automatically as the final
// act of a graceful shutdown — and -load-snapshot restores the engine from
// such a file instead of rebuilding the index from trajectories.bin. A
// snapshot that fails verification (truncated, checksum mismatch, wrong
// version, wrong network) is never served: the service logs the reason and
// falls back to a from-scratch build.
//
// The process runs as a managed foreground service: SIGINT/SIGTERM drain
// in-flight requests (every accepted /extend completes and is acknowledged
// before the listener closes for good) instead of killing them mid-
// publication, and the listener applies read/header/idle timeouts so one
// slow client cannot pin goroutines forever.
//
//	ttserve -data data -addr :8080 [-enable-extend] [-auto-compact 16]
//	        [-snapshot-dir snapdir] [-load-snapshot snapdir/snapshot.snt]
//
//	GET  /query?path=17,42,43&tod=08:15&window=900&beta=20[&user=3]
//	GET  /query?path=17,42,43&from=1335830400&until=1335917000&beta=20
//	POST /extend            (body: trajectory batch in traj binary format)
//	POST /compact           (merge ingested partitions; new epoch)
//	POST /snapshot          (persist the served index to -snapshot-dir)
//	GET  /statsz
//	GET  /healthz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"pathhist"
	"pathhist/internal/ttserve"
)

// config carries the parsed flags; run is kept separate from main so the
// full lifecycle — listen, serve, drain, final snapshot — is testable.
type config struct {
	data         string
	addr         string
	enableExtend bool
	maxExtendMiB int64
	maxTrajs     int
	autoCompact  int
	snapshotDir  string
	loadSnapshot string

	// started, when non-nil, receives the bound listener address once the
	// server accepts connections (used by the lifecycle test; nil in main).
	started chan<- string
}

// shutdownTimeout bounds the graceful drain: in-flight requests get this
// long to complete after SIGINT/SIGTERM before the server gives up.
const shutdownTimeout = 30 * time.Second

func main() {
	log.SetFlags(0)
	log.SetPrefix("ttserve: ")
	var cfg config
	flag.StringVar(&cfg.data, "data", "data", "dataset directory (from ttgen)")
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.BoolVar(&cfg.enableExtend, "enable-extend", false,
		"accept live trajectory batches on POST /extend, compaction on POST /compact and snapshots on POST /snapshot")
	flag.Int64Var(&cfg.maxExtendMiB, "max-extend-mib", 64, "largest accepted /extend body in MiB")
	flag.IntVar(&cfg.maxTrajs, "max-extend-trajs", 0,
		"largest accepted /extend batch in trajectories (0 = unlimited); larger batches get 413")
	flag.IntVar(&cfg.autoCompact, "auto-compact", 16,
		"merge ingested partitions once this many accumulate (0 = manual /compact only)")
	flag.StringVar(&cfg.snapshotDir, "snapshot-dir", "",
		"directory for index snapshots: enables POST /snapshot (with -enable-extend) and a final snapshot on graceful shutdown")
	flag.StringVar(&cfg.loadSnapshot, "load-snapshot", "",
		"restore the engine from this snapshot file instead of building from trajectories.bin (falls back to a build if the snapshot is unusable)")
	flag.Parse()

	if err := run(context.Background(), cfg); err != nil {
		log.Fatal(err)
	}
}

// run is the whole service lifecycle. It returns once the server has shut
// down cleanly (nil) or failed.
func run(ctx context.Context, cfg config) error {
	// Signal wiring first: a SIGTERM during the (potentially long) build
	// triggers a clean exit at the next phase boundary. The AfterFunc
	// restores default signal handling the moment the first signal lands,
	// so a second signal hard-kills even mid-build — the signals are never
	// silently swallowed.
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	context.AfterFunc(ctx, stop)

	g, err := loadGraph(cfg.data)
	if err != nil {
		return err
	}
	if ctx.Err() != nil {
		log.Printf("interrupted while loading the dataset; exiting")
		return nil
	}
	opts := pathhist.Options{
		Partition:             pathhist.ByZone,
		Estimator:             pathhist.EstimatorCSSFast,
		AutoCompactPartitions: cfg.autoCompact,
	}
	// The trajectory store is only needed when the index is actually built
	// — a successful snapshot restore must not pay for reading and parsing
	// trajectories.bin (the biggest file in the dataset), so it loads
	// lazily inside the fallback path.
	eng, source, err := buildOrRestore(g, func() (*pathhist.Store, error) {
		return loadStore(cfg.data)
	}, opts, cfg.loadSnapshot)
	if err != nil {
		return err
	}
	if ctx.Err() != nil {
		log.Printf("interrupted while building the index; exiting")
		return nil
	}
	mode := "ingestion disabled"
	if cfg.enableExtend {
		mode = "live ingestion on POST /extend"
		if cfg.autoCompact > 0 {
			mode += fmt.Sprintf(", auto-compaction at %d partitions", cfg.autoCompact)
		}
	}
	if cfg.snapshotDir != "" {
		if err := os.MkdirAll(cfg.snapshotDir, 0o755); err != nil {
			return fmt.Errorf("snapshot dir: %w", err)
		}
		mode += fmt.Sprintf(", snapshots to %s", cfg.snapshotDir)
	}

	srv := ttserve.NewServer(eng, ttserve.Config{
		EnableExtend:          cfg.enableExtend,
		MaxExtendBytes:        cfg.maxExtendMiB << 20,
		MaxExtendTrajectories: cfg.maxTrajs,
		SnapshotDir:           cfg.snapshotDir,
	})
	// A bare ListenAndServe would accept connections with no deadlines at
	// all: a slowloris client (or a stalled proxy) could hold request
	// goroutines open forever. Headers get a tight deadline; bodies a
	// generous one (/extend uploads are tens of MiB); idle keep-alives are
	// bounded so a rolling restart is not hostage to dormant connections.
	httpSrv := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	log.Printf("serving %d trajectories over %d edges (%s); listening on %s (%s)",
		eng.Trajectories(), g.NumEdges(), source, ln.Addr(), mode)
	if cfg.started != nil {
		cfg.started <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Graceful drain: stop accepting, let in-flight requests — including
	// /extend publications — complete and be acknowledged. Default signal
	// handling is already restored (the AfterFunc above), so a second
	// signal kills the process the default way.
	log.Printf("shutting down: draining in-flight requests (limit %v)", shutdownTimeout)
	shCtx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	var drainErr error
	if err := httpSrv.Shutdown(shCtx); err != nil {
		// A stuck client exceeded the drain budget. Keep going: the final
		// snapshot below persists every batch already acknowledged, which
		// matters more after a messy drain, not less.
		drainErr = fmt.Errorf("shutdown: %w", err)
		log.Printf("warning: %v; writing the final snapshot anyway", drainErr)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) && drainErr == nil {
		drainErr = err
	}
	// Final snapshot, after the drain: it captures every batch that was
	// acknowledged before the listener closed, so the next -load-snapshot
	// resumes from exactly the state clients saw — written even when the
	// drain timed out, since the published engine state is valid regardless.
	if cfg.snapshotDir != "" {
		st, err := srv.WriteSnapshot()
		if err != nil {
			if drainErr != nil {
				return fmt.Errorf("final snapshot: %v (after %w)", err, drainErr)
			}
			return fmt.Errorf("final snapshot: %w", err)
		}
		log.Printf("final snapshot: %s (%d bytes, epoch %d)", st.Path, st.Bytes, st.Epoch)
	}
	if drainErr != nil {
		return drainErr
	}
	log.Printf("shutdown complete")
	return nil
}

// buildOrRestore restores the engine from a snapshot when one is given and
// loadable, and otherwise builds from the trajectory store (fetched
// lazily — a successful restore never reads trajectories.bin at all).
// Snapshot loading fails closed — a corrupt, truncated, version-skewed or
// wrong-network file is reported and skipped, never served — but the
// service still comes up, via the same from-scratch build path a plain
// start uses.
func buildOrRestore(g *pathhist.Graph, loadStore func() (*pathhist.Store, error), opts pathhist.Options, snapshotPath string) (*pathhist.Engine, string, error) {
	if snapshotPath != "" {
		eng, err := pathhist.LoadSnapshotFile(g, snapshotPath, opts)
		if err == nil {
			return eng, fmt.Sprintf("restored from %s, epoch %d", snapshotPath, eng.Epoch()), nil
		}
		log.Printf("warning: snapshot %s unusable (%v); falling back to a from-scratch build", snapshotPath, err)
	}
	store, err := loadStore()
	if err != nil {
		return nil, "", err
	}
	eng, err := pathhist.NewEngine(g, store, opts)
	if err != nil {
		return nil, "", err
	}
	return eng, "built from trajectories.bin", nil
}

func loadGraph(dir string) (*pathhist.Graph, error) {
	nf, err := os.Open(filepath.Join(dir, "network.bin"))
	if err != nil {
		return nil, err
	}
	defer nf.Close()
	return pathhist.ReadGraph(nf)
}

func loadStore(dir string) (*pathhist.Store, error) {
	tf, err := os.Open(filepath.Join(dir, "trajectories.bin"))
	if err != nil {
		return nil, err
	}
	defer tf.Close()
	return pathhist.ReadStore(tf)
}
