package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// TestShardedLifecycleSIGTERM: the -shards 3 deployment runs the same
// lifecycle as the single engine — recover, serve, drain on SIGTERM, final
// per-shard snapshots — and a fresh process restores from those snapshots
// with every trajectory accounted for.
func TestShardedLifecycleSIGTERM(t *testing.T) {
	dataDir, snapDir := t.TempDir(), t.TempDir()
	_, base, batch := writeDataset(t, dataDir)

	started := make(chan string, 1)
	done := make(chan error, 1)
	cfg := config{
		data:         dataDir,
		addr:         "127.0.0.1:0",
		enableExtend: true,
		maxExtendMiB: 64,
		autoCompact:  0,
		snapshotDir:  snapDir,
		shards:       3,
		started:      started,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { done <- run(ctx, cfg) }()
	var addr string
	select {
	case addr = <-started:
	case err := <-done:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("sharded server did not start")
	}
	url := "http://" + addr
	client := &http.Client{Timeout: 30 * time.Second}

	var buf bytes.Buffer
	if _, err := batch.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url+"/extend", "application/octet-stream", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var ext struct {
		Shard        int `json:"shard"`
		ClusterTotal int `json:"cluster_total_trajectories"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ext); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("extend status = %d", resp.StatusCode)
	}
	if want := base.Len() + batch.Len(); ext.ClusterTotal != want {
		t.Fatalf("cluster total after extend = %d, want %d", ext.ClusterTotal, want)
	}
	client.CloseIdleConnections()

	cancel() // the in-process stand-in for SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("sharded server did not shut down")
	}

	// Every shard directory holds a final snapshot, and a restart restores
	// the full acknowledged count from them.
	for k := 0; k < 3; k++ {
		if _, err := os.Stat(shardDir(snapDir, k)); err != nil {
			t.Fatalf("shard %d directory: %v", k, err)
		}
	}
	started2 := make(chan string, 1)
	done2 := make(chan error, 1)
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	cfg.started = started2
	go func() { done2 <- run(ctx2, cfg) }()
	select {
	case addr = <-started2:
	case err := <-done2:
		t.Fatalf("restarted run exited early: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("restarted sharded server did not start")
	}
	var st struct {
		Shards       int  `json:"shards"`
		Trajectories int  `json:"trajectories"`
		Ready        bool `json:"ready"`
	}
	sresp, err := client.Get("http://" + addr + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	client.CloseIdleConnections()
	if !st.Ready || st.Shards != 3 || st.Trajectories != base.Len()+batch.Len() {
		t.Fatalf("restarted statsz = %+v, want ready, 3 shards, %d trajectories", st, base.Len()+batch.Len())
	}
	cancel2()
	select {
	case err := <-done2:
		if err != nil {
			t.Fatalf("restarted run: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("restarted sharded server did not shut down")
	}
}

// TestShardedCrashRecoverySIGKILL: the sharded deployment honours the same
// durability contract as the single engine — a batch acknowledged over HTTP
// lands in exactly one shard's write-ahead log and survives kill -9; after a
// restart the cluster again holds every acknowledged trajectory and answers
// queries exactly as before the crash.
func TestShardedCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess lifecycle test")
	}
	dataDir, snapDir := t.TempDir(), t.TempDir()
	_, base, batch := writeDataset(t, dataDir)
	addrFile := filepath.Join(t.TempDir(), "addr")
	client := &http.Client{Timeout: 30 * time.Second}

	start := func() *exec.Cmd {
		t.Helper()
		os.Remove(addrFile)
		cmd := exec.Command(os.Args[0], "-test.run=TestHelperServeProcess")
		cmd.Env = append(os.Environ(),
			"TTSERVE_HELPER=1",
			"TTSERVE_DATA="+dataDir,
			"TTSERVE_SNAP="+snapDir,
			"TTSERVE_ADDRFILE="+addrFile,
			"TTSERVE_SHARDS=4",
		)
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd
	}
	waitReady := func() string {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
				url := "http://" + string(b)
				if resp, err := client.Get(url + "/readyz"); err == nil {
					code := resp.StatusCode
					resp.Body.Close()
					if code == http.StatusOK {
						return url
					}
				}
			}
			time.Sleep(25 * time.Millisecond)
		}
		t.Fatal("sharded server never became ready")
		return ""
	}

	cmd := start()
	url := waitReady()

	var buf bytes.Buffer
	if _, err := batch.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url+"/extend", "application/octet-stream", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var ext struct {
		Shard int `json:"shard"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ext); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("extend status = %d", resp.StatusCode)
	}
	if ext.Shard < 0 || ext.Shard >= 4 {
		t.Fatalf("extend routed to shard %d", ext.Shard)
	}
	queryURL := fmt.Sprintf("%s/query?path=%s&beta=5", url, pathParam(base.Get(0).Path()))
	preKill, err := client.Get(queryURL)
	if err != nil {
		t.Fatal(err)
	}
	var want map[string]any
	if err := json.NewDecoder(preKill.Body).Decode(&want); err != nil {
		t.Fatal(err)
	}
	preKill.Body.Close()
	client.CloseIdleConnections()
	if want["partial"] == true {
		t.Fatalf("healthy pre-crash cluster answered partial: %v", want)
	}

	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no handler runs
		t.Fatal(err)
	}
	_ = cmd.Wait()

	// The acknowledged batch must be durable in exactly its shard's log.
	if _, err := os.Stat(filepath.Join(shardDir(snapDir, ext.Shard), walFileName)); err != nil {
		t.Fatalf("shard %d write-ahead log after crash: %v", ext.Shard, err)
	}

	cmd2 := start()
	defer func() {
		_ = cmd2.Process.Signal(syscall.SIGTERM)
		_ = cmd2.Wait()
	}()
	url2 := waitReady()

	sresp, err := client.Get(url2 + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Shards       int  `json:"shards"`
		Trajectories int  `json:"trajectories"`
		Ready        bool `json:"ready"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if !st.Ready || st.Shards != 4 {
		t.Fatalf("restarted statsz: %+v", st)
	}
	if wantTrajs := base.Len() + batch.Len(); st.Trajectories != wantTrajs {
		t.Fatalf("restarted cluster holds %d trajectories, want %d (acknowledged)", st.Trajectories, wantTrajs)
	}

	postKill, err := client.Get(fmt.Sprintf("%s/query?path=%s&beta=5", url2, pathParam(base.Get(0).Path())))
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.NewDecoder(postKill.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	postKill.Body.Close()
	client.CloseIdleConnections()
	if got["partial"] == true {
		t.Fatalf("recovered cluster answered partial: %v", got)
	}
	for _, k := range []string{"mean_seconds", "p05_seconds", "p50_seconds", "p95_seconds"} {
		if got[k] != want[k] {
			t.Fatalf("post-crash %s = %v, pre-crash %v", k, got[k], want[k])
		}
	}
}
