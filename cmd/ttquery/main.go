// Command ttquery loads a dataset produced by ttgen, builds the SNT-index
// and answers travel-time queries. Without an explicit path it samples a
// random indexed trajectory and queries its path, printing the resulting
// histogram as an ASCII bar chart together with the ground truth.
//
// Usage:
//
//	ttquery -data data/                          # random trajectory path
//	ttquery -data data/ -path 17,42,43,44 -tod 08:15 -beta 20
//	ttquery -data data/ -user 12 -partition mdm  # user-filtered query
//	ttquery -data data/ -extends 32 -compact     # simulate live ingestion,
//	                                             # then merge the partitions
//	ttquery -data data/ -save index.snt          # persist the built index
//	ttquery -data data/ -load index.snt          # restore it instead of
//	                                             # rebuilding (restart demo)
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"pathhist"
	"pathhist/internal/experiments"
	"pathhist/internal/gps"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ttquery: ")
	var (
		data      = flag.String("data", "data", "dataset directory (from ttgen)")
		pathArg   = flag.String("path", "", "comma-separated directed edge ids; empty = sample a trajectory")
		tod       = flag.String("tod", "", "periodic window centre as HH:MM; empty = fixed interval over all data")
		window    = flag.Int64("window", 900, "periodic window width in seconds")
		beta      = flag.Int("beta", 20, "required sample size per sub-query")
		user      = flag.Int("user", -1, "restrict to one driver id (-1 = all)")
		partition = flag.String("partition", "zone", "partitioning: zone, category, zonecategory, none, mdm, segment")
		seed      = flag.Int64("seed", 1, "seed for trajectory sampling")
		extends   = flag.Int("extends", 0,
			"ingest the newest part of the dataset through this many live Extend batches instead of the initial build")
		compact = flag.Bool("compact", false, "compact the partitions after the simulated ingestion")
		save    = flag.String("save", "", "write a snapshot of the built index to this file (atomic) before querying")
		load    = flag.String("load", "", "restore the index from this snapshot file instead of building it")
		mmap    = flag.Bool("mmap", false, "with -load: memory-map the snapshot read-only instead of copying it onto the heap (DESIGN.md §15)")
	)
	flag.Parse()

	g, store, err := loadDataset(*data)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loaded %d edges, %d trajectories", g.NumEdges(), store.Len())

	opts := pathhist.Options{}
	switch *partition {
	case "zone":
		opts.Partition = pathhist.ByZone
	case "category":
		opts.Partition = pathhist.ByCategory
	case "zonecategory":
		opts.Partition = pathhist.ByZoneAndCategory
	case "none":
		opts.Partition = pathhist.NoPartition
	case "mdm":
		opts.Partition = pathhist.MainRoadUserFilters
	case "segment":
		opts.Partition = pathhist.EverySegment
	default:
		log.Fatalf("unknown partitioning %q", *partition)
	}
	if *load != "" && (*extends > 0 || *compact) {
		log.Fatal("-load restores a finished index; it cannot be combined with -extends/-compact (snapshot the extended index with -save instead)")
	}
	if *mmap && *load == "" {
		log.Fatal("-mmap only applies to the -load restore path")
	}
	var eng *pathhist.Engine
	if *load != "" {
		// The restart-persistence demo: restore a serving-ready engine from
		// a snapshot instead of rebuilding suffix arrays and freezing trees.
		started := time.Now()
		how := "copied"
		if *mmap {
			eng, err = pathhist.LoadSnapshotFileMapped(g, *load, opts)
			how = "mapped read-only"
		} else {
			eng, err = pathhist.LoadSnapshotFile(g, *load, opts)
		}
		if err != nil {
			log.Fatalf("loading snapshot: %v", err)
		}
		log.Printf("restored %s from %s (%s) in %v (epoch %d)", eng.IndexInfo(), *load, how, time.Since(started), eng.Epoch())
	} else {
		started := time.Now()
		eng, err = buildEngine(g, store, opts, *extends, *compact)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("built %s in %v", eng.IndexInfo(), time.Since(started))
	}
	if *save != "" {
		st, err := eng.SnapshotFile(*save)
		if err != nil {
			log.Fatalf("saving snapshot: %v", err)
		}
		log.Printf("saved snapshot to %s (%d bytes, epoch %d); restore with -load %s",
			*save, st.Bytes, st.Epoch, *save)
	}

	q := pathhist.Query{Beta: *beta}
	var groundTruth int64 = -1
	if *pathArg != "" {
		for _, tok := range strings.Split(*pathArg, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				log.Fatalf("bad edge id %q", tok)
			}
			q.Path = append(q.Path, pathhist.EdgeID(id))
		}
	} else {
		rng := rand.New(rand.NewSource(*seed))
		tr := store.Get(pathhist.TrajID(rng.Intn(store.Len())))
		q.Path = tr.Path()
		q.Exclude = true
		q.ExcludeTraj = tr.ID
		groundTruth = tr.TotalDuration()
		if *tod == "" {
			q.Periodic = true
			q.Around = tr.StartTime()
			q.WindowSeconds = *window
		}
		fmt.Printf("sampled trajectory %d (driver %d, %d segments, true travel time %d s, departs %s)\n",
			tr.ID, tr.User, tr.Len(), groundTruth, fmtTod(gps.TimeOfDay(tr.StartTime())))
	}
	if *tod != "" {
		parts := strings.SplitN(*tod, ":", 2)
		if len(parts) != 2 {
			log.Fatalf("bad -tod %q, want HH:MM", *tod)
		}
		hh, err1 := strconv.Atoi(parts[0])
		mm, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || hh < 0 || hh > 23 || mm < 0 || mm > 59 {
			log.Fatalf("bad -tod %q", *tod)
		}
		q.Periodic = true
		q.Around = int64(hh*3600 + mm*60)
		q.WindowSeconds = *window
	}
	if *user >= 0 {
		q.FilterUser = true
		q.User = pathhist.UserID(*user)
	}

	res, err := eng.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	printResult(res, groundTruth)
}

// buildEngine indexes the dataset. With extends > 0 it simulates live
// ingestion: the oldest portion is indexed up front and the rest arrives
// through Extend batches cut at quiescent boundaries (each batch starts
// after everything before it has ended — the Extend precondition), leaving
// one temporal partition per batch. With compact set the fragmented
// partitions are merged afterwards, demonstrating the compaction subsystem.
func buildEngine(g *pathhist.Graph, store *pathhist.Store, opts pathhist.Options, extends int, compact bool) (*pathhist.Engine, error) {
	if extends <= 0 {
		return pathhist.NewEngine(g, store, opts)
	}
	// Keep roughly half as the base, spread the requested batches over the
	// newest half's quiescent boundaries (sorts the store as a side effect).
	cuts := experiments.IngestionCuts(store, extends)
	if cuts == nil {
		return nil, fmt.Errorf("dataset has too few quiescent boundaries to simulate %d extends", extends)
	}
	eng, err := pathhist.NewEngine(g, store.Slice(0, cuts[0]), opts)
	if err != nil {
		return nil, err
	}
	for b := 0; b < len(cuts); b++ {
		hi := store.Len()
		if b+1 < len(cuts) {
			hi = cuts[b+1]
		}
		if _, err := eng.Extend(store.Slice(cuts[b], hi)); err != nil {
			return nil, fmt.Errorf("extend batch %d: %w", b, err)
		}
	}
	log.Printf("after %d extends: %s", len(cuts), eng.IndexInfo())
	if compact {
		st, err := eng.Compact()
		if err != nil {
			return nil, err
		}
		log.Printf("compacted %d partitions into %d (%d runs, %d records rebuilt) in %v: %s",
			st.PartitionsBefore, st.PartitionsAfter, st.Runs, st.RecordsRebuilt, st.Elapsed, eng.IndexInfo())
	}
	return eng, nil
}

func loadDataset(dir string) (*pathhist.Graph, *pathhist.Store, error) {
	nf, err := os.Open(filepath.Join(dir, "network.bin"))
	if err != nil {
		return nil, nil, fmt.Errorf("open network (run ttgen first?): %w", err)
	}
	defer nf.Close()
	g, err := pathhist.ReadGraph(nf)
	if err != nil {
		return nil, nil, err
	}
	tf, err := os.Open(filepath.Join(dir, "trajectories.bin"))
	if err != nil {
		return nil, nil, fmt.Errorf("open trajectories: %w", err)
	}
	defer tf.Close()
	store, err := pathhist.ReadStore(tf)
	if err != nil {
		return nil, nil, err
	}
	return g, store, nil
}

func fmtTod(tod int64) string {
	return fmt.Sprintf("%02d:%02d", tod/3600, tod%3600/60)
}

func printResult(res *pathhist.Result, groundTruth int64) {
	fmt.Printf("\npredicted mean travel time: %.1f s", res.MeanSeconds)
	if groundTruth >= 0 {
		fmt.Printf("   (ground truth %d s)", groundTruth)
	}
	fmt.Println()
	h := res.Histogram
	fmt.Printf("distribution: p05=%.0fs  p50=%.0fs  p95=%.0fs\n",
		h.Quantile(0.05), h.Quantile(0.5), h.Quantile(0.95))
	cacheNote := ""
	if res.FullCacheHit {
		cacheNote = ", served from full-result cache"
	}
	fmt.Printf("%d sub-queries (index scans %d, estimator skips %d, cache %d/%d hit/miss%s):\n",
		len(res.Subs), res.IndexScans, res.EstimatorSkips, res.CacheHits, res.CacheMisses, cacheNote)
	for i, s := range res.Subs {
		note := ""
		if s.Fallback {
			note = "  [speed-limit fallback]"
		}
		fmt.Printf("  %2d: %3d segments, %3d samples, mean %7.1f s%s\n",
			i+1, len(s.Path), s.Samples, s.MeanTT, note)
	}
	// ASCII histogram between p01 and p99.
	lo := int(h.Quantile(0.01))
	hi := int(h.Quantile(0.99)) + h.BucketWidth()
	width := h.BucketWidth()
	maxMass := 0.0
	for b := lo / width * width; b < hi; b += width {
		if m := h.Count(b); m > maxMass {
			maxMass = m
		}
	}
	if maxMass == 0 {
		return
	}
	fmt.Println("\ntravel-time histogram:")
	for b := lo / width * width; b < hi; b += width {
		m := h.Count(b)
		bar := strings.Repeat("#", int(m/maxMass*50))
		fmt.Printf("  %5d-%5ds |%-50s| %.0f\n", b, b+width, bar, m)
	}
}
