// Command ttbench regenerates the paper's evaluation: every figure of
// Section 6 can be reproduced individually or in one run. Results are
// printed as aligned text tables whose rows/series correspond to the
// paper's plots (see EXPERIMENTS.md for the recorded comparison).
//
// Usage:
//
//	ttbench -experiment all -scale small
//	ttbench -experiment fig5,fig9 -scale full
//	ttbench -experiment fig11a -queries 200
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"pathhist"
	"pathhist/internal/experiments"
	"pathhist/internal/network"
	"pathhist/internal/sharded"
	"pathhist/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ttbench: ")
	var (
		expArg   = flag.String("experiment", "all", "comma-separated: table1,fig5,fig6,fig7,fig8,fig9,fig10a,fig10b,fig10c,fig11a,fig11b,fig11c,baselines,compact,sustained,deadline,shards,all")
		scale    = flag.String("scale", "small", "dataset scale: small, medium or full")
		seed     = flag.Int64("seed", 42, "master seed")
		frac     = flag.Float64("queryfrac", 0, "query sampling fraction (0 = scale default)")
		subQs    = flag.Int("subqueries", 5000, "sub-queries for fig11a")
		minLen   = flag.Int("minlen", 5, "minimum query path length in segments")
		batches  = flag.Int("compact-batches", 32, "simulated Extend batches for the compact experiment")
		deadline = flag.Duration("deadline", 50*time.Millisecond, "per-query deadline for the deadline experiment")
	)
	flag.Parse()

	cfg := workload.SmallConfig()
	queryFrac := 0.10
	switch *scale {
	case "small":
	case "medium":
		cfg = workload.DefaultConfig()
		cfg.Days = 180
		cfg.TargetTrips = 25000
		queryFrac = 0.03
	case "full":
		cfg = workload.DefaultConfig()
		queryFrac = 0.01
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	cfg.Seed = *seed
	cfg.Net.Seed = *seed
	if *frac > 0 {
		queryFrac = *frac
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*expArg, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }

	start := time.Now()
	log.Printf("building dataset (%s scale, seed %d)...", *scale, *seed)
	env := experiments.NewEnv(cfg, queryFrac, *minLen)
	km, segs, secs := env.DS.AvgQueryStats(env.Queries)
	log.Printf("dataset: %d edges, %d trajectories, %d traversals",
		env.DS.G.NumEdges(), env.DS.Store.Len(), env.DS.Store.NumTraversals())
	log.Printf("query set: %d queries, avg %.1f km, %.1f segments, %.0f s (paper: 13.7 km, 55, 800 s)",
		len(env.Queries), km, segs, secs)

	if sel("table1") {
		runTable1()
	}
	if sel("baselines") || sel("fig5") || sel("fig6") {
		b := env.RunBaselines()
		fmt.Println("\n== Baselines (Section 6.1) ==")
		fmt.Printf("speed limits only:      sMAPE %6.2f%%   weighted error %6.2f%%   (paper: 34.3%% / 36.9%%)\n",
			b.SpeedLimitSMAPE, b.SpeedLimitWE)
		fmt.Printf("all data per segment:   sMAPE %6.2f%%   weighted error %6.2f%%   (paper: 13.8%% / 24.0%%)\n",
			b.SegmentAllSMAPE, b.SegmentAllWE)
	}

	needGrid := sel("fig5") || sel("fig6") || sel("fig7") || sel("fig8") || sel("fig9")
	if needGrid {
		for _, spec := range experiments.DefaultGrids() {
			log.Printf("running %s grid (%d cells)...", spec.QType,
				len(spec.Partitioners)*len(spec.Splitters)*len(spec.Betas))
			points := env.RunGrid(spec)
			if sel("fig5") {
				fmt.Printf("\n== Figure 5 (%s): sMAPE %% ==\n", spec.QType)
				fmt.Print(experiments.FormatGrid(points, func(p experiments.GridPoint) float64 { return p.SMAPE }, "sMAPE"))
			}
			if sel("fig6") {
				fmt.Printf("\n== Figure 6 (%s): weighted error %% ==\n", spec.QType)
				fmt.Print(experiments.FormatGrid(points, func(p experiments.GridPoint) float64 { return p.WeightedE }, "wErr"))
			}
			if sel("fig7") {
				fmt.Printf("\n== Figure 7 (%s): avg sub-query path length ==\n", spec.QType)
				fmt.Print(experiments.FormatGrid(points, func(p experiments.GridPoint) float64 { return p.AvgSubLen }, "len"))
			}
			if sel("fig8") {
				fmt.Printf("\n== Figure 8 (%s): avg log-likelihood ==\n", spec.QType)
				fmt.Print(experiments.FormatGrid(points, func(p experiments.GridPoint) float64 { return p.LogL }, "logL"))
			}
			if sel("fig9") {
				fmt.Printf("\n== Figure 9 (%s): ms per query ==\n", spec.QType)
				fmt.Print(experiments.FormatGrid(points, func(p experiments.GridPoint) float64 { return p.MsPerQuery }, "ms"))
			}
		}
	}

	if sel("fig10a") || sel("fig10c") {
		log.Print("running temporal partitioning memory/setup sweep...")
		rows := env.RunMemory(experiments.DefaultPartitionDays)
		fmt.Println("\n== Figure 10a/10c: index memory by component & setup time ==")
		fmt.Print(experiments.FormatMemory(rows))
	}
	if sel("fig10b") {
		log.Print("running time-of-day histogram memory sweep...")
		rows := env.RunTodMemory(experiments.DefaultPartitionDays, []int{1, 5, 10})
		fmt.Println("\n== Figure 10b: time-of-day histogram memory ==")
		fmt.Print(experiments.FormatTodMemory(rows))
	}
	if sel("fig11a") {
		log.Print("running cardinality estimator q-error...")
		rows := env.RunQError(*subQs)
		fmt.Println("\n== Figure 11a: estimator q-error (orders of magnitude) ==")
		fmt.Print(experiments.FormatQError(rows))
	}
	if sel("ablations") {
		log.Print("running design-choice ablations...")
		fmt.Println("\n== Ablation: per-zone beta (paper outlook) ==")
		fmt.Print(experiments.FormatAblation(env.RunZoneBetaAblation(20)))
		fmt.Println("\n== Ablation: shift-and-enlarge (Section 4.2) ==")
		fmt.Print(experiments.FormatAblation(env.RunShiftEnlargeAblation(20)))
		fmt.Println("\n== Ablation: splitting method on piN ==")
		fmt.Print(experiments.FormatAblation(env.RunSplitterAblation(20)))
	}
	if sel("fig11b") || sel("fig11c") {
		log.Print("running estimator runtime/accuracy sweep (builds several indexes)...")
		rows := env.RunEstimatorSweep(experiments.DefaultPartitionDays)
		if sel("fig11b") {
			fmt.Println("\n== Figure 11b: ms per query by estimator & partition size ==")
			fmt.Print(experiments.FormatEstimatorSweep(rows,
				func(r experiments.EstimatorRuntimeRow) float64 { return r.MsPerQuery }, "ms"))
		}
		if sel("fig11c") {
			fmt.Println("\n== Figure 11c: sMAPE by estimator & partition size ==")
			fmt.Print(experiments.FormatEstimatorSweep(rows,
				func(r experiments.EstimatorRuntimeRow) float64 { return r.SMAPE }, "sMAPE"))
		}
	}
	if sel("compact") {
		log.Printf("running partition compaction sweep (%d extends)...", *batches)
		rows := env.RunCompactionSweep(*batches)
		fmt.Println("\n== Partition compaction: query latency by index layout ==")
		fmt.Print(experiments.FormatCompaction(rows))
	}
	if sel("sustained") {
		log.Printf("running sustained ingestion (%d extends, WAL + concurrent queries)...", *batches)
		rows := env.RunSustained(*batches)
		fmt.Println("\n== Sustained ingestion: extend latency by compaction regime ==")
		fmt.Print(experiments.FormatSustained(rows))
	}
	if sel("deadline") {
		log.Printf("running bounded-latency replay (per-query deadline %s)...", *deadline)
		r := env.RunDeadline(*deadline, 20)
		fmt.Println("\n== Bounded latency: query set under a per-query deadline ==")
		fmt.Printf("deadline %v: %d/%d completed, %d timed out, max latency %v, max overrun %v\n",
			r.Deadline, r.Completed, r.Queries, r.TimedOut,
			r.MaxLatency.Round(time.Microsecond), r.MaxOverrun.Round(time.Microsecond))
	}
	if sel("shards") {
		log.Printf("running shard scaling (build + query + %d-batch concurrent ingest per N)...", *batches)
		s := env.DS.Store.Slice(0, env.DS.Store.Len())
		s.SortByStart()
		var qs []pathhist.Query
		for _, q := range env.Queries {
			qs = append(qs, pathhist.Query{Path: pathhist.Path(q.Path), Periodic: true, Around: q.T0, Beta: 20})
		}
		rows, err := sharded.RunShardScaling(env.DS.G, s, qs, []int{1, 2, 4, 8}, *batches)
		if err != nil {
			log.Fatalf("shard scaling: %v", err)
		}
		fmt.Println("\n== Shard scaling: scatter-gather cost and concurrent-ingest gain vs N ==")
		fmt.Print(sharded.FormatShardScaling(rows))
	}

	log.Printf("done in %s", time.Since(start).Round(time.Millisecond))
}

// runTable1 prints the estimateTT example of Table 1.
func runTable1() {
	g, ids := network.PaperExample()
	fmt.Println("\n== Table 1: example network F and estimateTT ==")
	fmt.Printf("%-3s%-11s%-7s%5s%7s%13s\n", "e", "c", "z", "sl", "l", "estimateTT")
	for _, name := range []string{"A", "B", "C", "D", "E", "F"} {
		e := g.Edge(ids[name])
		fmt.Printf("%-3s%-11s%-7s%5.0f%7.0f%12.1fs\n",
			name, e.Cat.String(), e.Zone.String(), e.SpeedLimit, e.Length,
			g.EstimateTT(ids[name]))
	}
}
