package fmindex

import (
	"math/rand"
	"testing"

	"pathhist/internal/suffix"
)

// buildPaperText returns the Section 4.1.1 trajectory string
// T = ABE$ACDE$ABF$ABE$ with A..F mapped to symbols 2..7.
func buildPaperText() ([]int32, int) {
	text := []int32{}
	sym := func(c byte) int32 {
		if c == '$' {
			return Terminator
		}
		return int32(c-'A') + MinEdgeSymbol
	}
	for _, c := range []byte("ABE$ACDE$ABF$ABE$") {
		text = append(text, sym(c))
	}
	return text, int(MinEdgeSymbol) + 6
}

func path(names string) []int32 {
	out := make([]int32, len(names))
	for i := range names {
		out[i] = int32(names[i]-'A') + MinEdgeSymbol
	}
	return out
}

func TestPaperISARanges(t *testing.T) {
	text, k := buildPaperText()
	ix := New(text, k)
	// Section 4.1.1: R(<A>) = [4, 8) and R(<A,B>) = [4, 7).
	if st, ed := ix.GetISARange(path("A")); st != 4 || ed != 8 {
		t.Errorf("R(<A>) = [%d, %d), want [4, 8)", st, ed)
	}
	if st, ed := ix.GetISARange(path("AB")); st != 4 || ed != 7 {
		t.Errorf("R(<A,B>) = [%d, %d), want [4, 7)", st, ed)
	}
	// Counts per trajectory set: ABE twice, ACDE once, ABF once.
	cases := []struct {
		p    string
		want int64
	}{
		{"ABE", 2}, {"ACDE", 1}, {"ABF", 1}, {"AB", 3}, {"A", 4},
		{"E", 3}, {"B", 3}, {"CD", 1}, {"BE", 2}, {"BF", 1},
		{"AD", 0}, {"EA", 0}, {"FF", 0}, {"ABCDEF", 0},
	}
	for _, c := range cases {
		if got := ix.Count(path(c.p)); got != c.want {
			t.Errorf("Count(%s) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestISARangeMatchesSuffixArray(t *testing.T) {
	// Property: GetISARange(P) equals the range of suffix-array rows whose
	// suffixes start with P.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		// Random trajectory string: 3-9 trajectories of 1-8 edges over a
		// small edge alphabet, each terminated by '$'.
		k := int(MinEdgeSymbol) + 5
		var text []int32
		for tr := 0; tr < 3+rng.Intn(7); tr++ {
			for e := 0; e < 1+rng.Intn(8); e++ {
				text = append(text, MinEdgeSymbol+int32(rng.Intn(5)))
			}
			text = append(text, Terminator)
		}
		sa := suffix.Array(text, k)
		ix := New(text, k)
		for q := 0; q < 30; q++ {
			plen := 1 + rng.Intn(4)
			p := make([]int32, plen)
			for i := range p {
				p[i] = MinEdgeSymbol + int32(rng.Intn(5))
			}
			st, ed := ix.GetISARange(p)
			// Reference: scan the suffix array.
			var wantSt, wantEd int64 = -1, -1
			for row, pos := range sa {
				match := int(pos)+plen <= len(text)
				if match {
					for i := 0; i < plen; i++ {
						if text[int(pos)+i] != p[i] {
							match = false
							break
						}
					}
				}
				if match {
					if wantSt < 0 {
						wantSt = int64(row)
					}
					wantEd = int64(row) + 1
				}
			}
			if wantSt < 0 {
				if st != ed {
					t.Fatalf("trial %d: path %v should be absent, got [%d,%d)", trial, p, st, ed)
				}
				continue
			}
			if st != wantSt || ed != wantEd {
				t.Fatalf("trial %d: path %v range [%d,%d), want [%d,%d)", trial, p, st, ed, wantSt, wantEd)
			}
		}
	}
}

func TestEmptyAndInvalidPaths(t *testing.T) {
	text, k := buildPaperText()
	ix := New(text, k)
	if st, ed := ix.GetISARange(nil); st != 0 || ed != 0 {
		t.Error("empty path should yield empty range")
	}
	// Out-of-alphabet symbol.
	if st, ed := ix.GetISARange([]int32{999}); st != 0 || ed != 0 {
		t.Error("out-of-alphabet symbol should yield empty range")
	}
	if st, ed := ix.GetISARange([]int32{path("A")[0], 999}); st != 0 || ed != 0 {
		t.Error("out-of-alphabet tail should yield empty range")
	}
	if ix.Len() != len(text) {
		t.Errorf("Len = %d", ix.Len())
	}
}

func TestSizeAccounting(t *testing.T) {
	text, k := buildPaperText()
	ix := New(text, k)
	if ix.CSizeBytes() != (k+1)*4 {
		t.Errorf("CSizeBytes = %d", ix.CSizeBytes())
	}
	if ix.WTSizeBytes() <= 0 {
		t.Error("WTSizeBytes should be positive")
	}
	if ix.C(Terminator) != 0 {
		t.Errorf("C($) = %d, want 0 (nothing sorts before $)", ix.C(Terminator))
	}
	if ix.C(MinEdgeSymbol) != 4 {
		t.Errorf("C(A) = %d, want 4 (four $ terminators)", ix.C(MinEdgeSymbol))
	}
}
