// Snapshot serialization of the FM-index (DESIGN.md §10): the symbol-count
// array C, the text length, and the wavelet tree holding the BWT. Nothing
// is recomputed on load — backward search runs straight off the decoded
// structures. Under a zero-copy reader (DESIGN.md §15) C and the wavelet
// vectors are views of the read-only mapping; the index is immutable after
// construction, so the views are safe for its whole lifetime.
package fmindex

import (
	"fmt"

	"pathhist/internal/snapio"
	"pathhist/internal/wavelet"
)

// EncodeSnap appends the index to the open snapshot section.
func (ix *Index) EncodeSnap(w *snapio.Writer) {
	w.U64(uint64(ix.n))
	w.I64s(ix.c)
	ix.wt.EncodeSnap(w)
}

// DecodeSnap reads an index written by EncodeSnap and cross-checks the
// wavelet tree's sequence length against the declared text length.
func DecodeSnap(r *snapio.Reader) (*Index, error) {
	n := r.Int()
	c := r.I64s()
	if err := r.Err(); err != nil {
		return nil, err
	}
	wt, err := wavelet.DecodeSnapTree(r)
	if err != nil {
		return nil, err
	}
	if wt.Len() != n {
		return nil, fmt.Errorf("fmindex: snapshot text length %d but wavelet tree holds %d symbols", n, wt.Len())
	}
	if len(c) == 0 {
		return nil, fmt.Errorf("fmindex: snapshot with empty C array")
	}
	return &Index{c: c, wt: wt, n: n}, nil
}
