// Package fmindex implements the spatial FM-index of the SNT-index (Section
// 4.1.1): the symbol-count array C plus the Burrows-Wheeler transform of the
// trajectory string stored in a wavelet tree. GetISARange is Procedure 2 of
// the paper: backward search returning the ISA range [st, ed) of all
// suffixes of the trajectory string that begin with a query path.
package fmindex

import (
	"pathhist/internal/suffix"
	"pathhist/internal/wavelet"
)

// Terminator is the trajectory-separator symbol '$'. Edge symbols start at
// MinEdgeSymbol; symbol 0 is reserved for the suffix-array sentinel.
const (
	Terminator    int32 = 1
	MinEdgeSymbol int32 = 2
)

// Index is an FM-index over one trajectory string.
type Index struct {
	c  []int64 // c[s] = number of symbols in T lexicographically smaller than s; len = k+1
	wt *wavelet.Tree
	n  int
}

// New builds the FM-index of the trajectory string text whose symbols lie in
// [1, k). It computes the suffix array internally.
func New(text []int32, k int) *Index {
	sa := suffix.Array(text, k)
	return FromBWT(suffix.BWT(text, sa), k)
}

// FromBWT builds the FM-index from an existing Burrows-Wheeler transform.
func FromBWT(bwt []int32, k int) *Index {
	c := make([]int64, k+1)
	for _, s := range bwt {
		c[s+1]++
	}
	for i := 1; i <= k; i++ {
		c[i] += c[i-1]
	}
	return &Index{c: c, wt: wavelet.New(bwt), n: len(bwt)}
}

// Len returns |T|.
func (ix *Index) Len() int { return ix.n }

// C returns C[s] (exported for the cardinality estimator's diagnostics).
func (ix *Index) C(s int32) int64 { return ix.c[s] }

// Alphabet returns k, the alphabet size the index was built with (len(C)
// is k+1). The snapshot loader cross-checks it against the index-level
// alphabet.
func (ix *Index) Alphabet() int { return len(ix.c) - 1 }

// GetISARange implements Procedure 2: it returns the ISA range [st, ed) of
// the path given as a symbol sequence; an empty range is (0, 0).
func (ix *Index) GetISARange(path []int32) (st, ed int64) {
	l := len(path)
	if l == 0 {
		return 0, 0
	}
	c := path[l-1]
	if int(c)+1 >= len(ix.c) {
		return 0, 0
	}
	st = ix.c[c]
	ed = ix.c[c+1]
	for i := 2; i <= l; i++ {
		c = path[l-i]
		if int(c)+1 >= len(ix.c) {
			return 0, 0
		}
		rs, re := ix.wt.Rank2(c, int(st), int(ed))
		st = ix.c[c] + int64(rs)
		ed = ix.c[c] + int64(re)
		if st >= ed {
			return 0, 0
		}
	}
	return st, ed
}

// Count returns the number of occurrences of the path in the trajectory
// string, i.e. the width of its ISA range — the c_P input of the cardinality
// estimator (Section 4.4).
func (ix *Index) Count(path []int32) int64 {
	st, ed := ix.GetISARange(path)
	return ed - st
}

// CSizeBytes models the memory of the symbol-count array: the paper keeps a
// full-alphabet counter per partition (Figure 10a shows C growing linearly
// with the number of partitions).
func (ix *Index) CSizeBytes() int { return len(ix.c) * 4 }

// WTSizeBytes models the wavelet-tree memory.
func (ix *Index) WTSizeBytes() int { return ix.wt.SizeBytes() }
