// Snapshot serialization of the bit vector (DESIGN.md §10). The payload and
// both rank-directory levels are written verbatim, so a load rebuilds
// nothing — the vector serves rank queries straight off the decoded columns.
// Under a zero-copy reader (DESIGN.md §15) all three columns are views of
// the read-only mapping; the vector never writes to them after
// construction, so no detach step is needed.
package bitvec

import (
	"fmt"

	"pathhist/internal/snapio"
)

// EncodeSnap appends the vector to the open snapshot section: bit length,
// ones count, words, and the two rank-directory levels.
func (v *Vector) EncodeSnap(w *snapio.Writer) {
	w.U64(uint64(v.n))
	w.U64(uint64(v.ones))
	w.U64s(v.words)
	w.I32s(v.blocks)
	w.U16s(v.sub)
}

// DecodeSnapVector reads a vector written by EncodeSnap and validates the
// structural invariants (column lengths implied by the bit length), so a
// corrupt-but-CRC-valid file cannot yield out-of-bounds rank lookups.
func DecodeSnapVector(r *snapio.Reader) (*Vector, error) {
	v := &Vector{
		n:    int(r.U64()),
		ones: int(r.U64()),
	}
	v.words = r.U64s()
	v.blocks = r.I32s()
	v.sub = r.U16s()
	if err := r.Err(); err != nil {
		return nil, err
	}
	nw := (v.n + 63) / 64
	if v.n < 0 || len(v.words) != nw || len(v.blocks) != nw/wordsPerBlock+1 || len(v.sub) != nw {
		return nil, fmt.Errorf("bitvec: inconsistent snapshot vector: n=%d words=%d blocks=%d sub=%d",
			v.n, len(v.words), len(v.blocks), len(v.sub))
	}
	return v, nil
}
