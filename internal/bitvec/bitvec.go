// Package bitvec provides an immutable bit vector with O(1) rank support,
// the building block of the wavelet tree (Section 4.1.1: "The
// Burrows-Wheeler transform is stored in a wavelet tree to enable rank
// queries").
package bitvec

import "math/bits"

const wordsPerBlock = 8 // 512-bit superblocks

// Builder accumulates bits; Finish freezes it into a Vector.
type Builder struct {
	words []uint64
	n     int
}

// NewBuilder returns a builder with capacity for n bits.
func NewBuilder(n int) *Builder {
	return &Builder{words: make([]uint64, (n+63)/64)}
}

// Append adds one bit.
func (b *Builder) Append(bit bool) {
	w := b.n >> 6
	if w >= len(b.words) {
		b.words = append(b.words, 0)
	}
	if bit {
		b.words[w] |= 1 << uint(b.n&63)
	}
	b.n++
}

// Set sets bit i (which must be < the capacity given to NewBuilder) and
// extends the logical length to cover it. Used for random-order filling.
func (b *Builder) Set(i int) {
	b.words[i>>6] |= 1 << uint(i&63)
	if i >= b.n {
		b.n = i + 1
	}
}

// SetLen fixes the logical length (for Set-based filling).
func (b *Builder) SetLen(n int) { b.n = n }

// Finish freezes the builder into a Vector with a two-level rank directory:
// an absolute popcount per 512-bit superblock plus a superblock-relative
// popcount per word, so Rank1 answers with two table reads and one word
// popcount — no per-query scan over the superblock's words.
func (b *Builder) Finish() *Vector {
	nw := (b.n + 63) / 64
	v := &Vector{words: b.words[:nw], n: b.n}
	v.blocks = make([]int32, nw/wordsPerBlock+1)
	v.sub = make([]uint16, nw)
	var sum int32
	var rel uint16
	for i, w := range v.words {
		if i%wordsPerBlock == 0 {
			v.blocks[i/wordsPerBlock] = sum
			rel = 0
		}
		v.sub[i] = rel
		c := bits.OnesCount64(w)
		sum += int32(c)
		rel += uint16(c)
	}
	v.ones = int(sum)
	return v
}

// Vector is an immutable bit vector with a two-level rank directory.
type Vector struct {
	words []uint64
	// blocks[j] is the number of set bits before superblock j (absolute,
	// one entry per 8 words); sub[i] is the number of set bits between the
	// start of word i's superblock and word i (relative, at most 7*64 so a
	// uint16 always fits). Together they make Rank1 O(1).
	blocks []int32
	sub    []uint16
	n      int
	ones   int
}

// Len returns the number of bits.
func (v *Vector) Len() int { return v.n }

// Ones returns the total number of set bits.
func (v *Vector) Ones() int { return v.ones }

// Get returns bit i.
func (v *Vector) Get(i int) bool {
	return v.words[i>>6]&(1<<uint(i&63)) != 0
}

// Rank1 returns the number of set bits in [0, i) in O(1): superblock
// absolute count + in-superblock word offset + popcount of the partial word.
func (v *Vector) Rank1(i int) int {
	if i <= 0 {
		return 0
	}
	if i >= v.n {
		return v.ones
	}
	w := i >> 6
	r := int(v.blocks[w/wordsPerBlock]) + int(v.sub[w])
	if rem := uint(i & 63); rem != 0 {
		r += bits.OnesCount64(v.words[w] & (1<<rem - 1))
	}
	return r
}

// Rank0 returns the number of clear bits in [0, i).
func (v *Vector) Rank0(i int) int {
	if i <= 0 {
		return 0
	}
	if i > v.n {
		i = v.n
	}
	return i - v.Rank1(i)
}

// SizeBytes models the memory footprint: bit words plus both rank-directory
// levels.
func (v *Vector) SizeBytes() int {
	return len(v.words)*8 + len(v.blocks)*4 + len(v.sub)*2
}
