package bitvec

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRankSmall(t *testing.T) {
	b := NewBuilder(10)
	pattern := []bool{true, false, true, true, false, false, true, false, true, true}
	for _, bit := range pattern {
		b.Append(bit)
	}
	v := b.Finish()
	if v.Len() != 10 {
		t.Fatalf("Len = %d", v.Len())
	}
	if v.Ones() != 6 {
		t.Fatalf("Ones = %d", v.Ones())
	}
	wantRank := 0
	for i := 0; i <= 10; i++ {
		if got := v.Rank1(i); got != wantRank {
			t.Errorf("Rank1(%d) = %d, want %d", i, got, wantRank)
		}
		if got := v.Rank0(i); got != i-wantRank {
			t.Errorf("Rank0(%d) = %d, want %d", i, got, i-wantRank)
		}
		if i < 10 {
			if v.Get(i) != pattern[i] {
				t.Errorf("Get(%d) = %v", i, v.Get(i))
			}
			if pattern[i] {
				wantRank++
			}
		}
	}
	// Out-of-range clamps.
	if v.Rank1(100) != 6 || v.Rank1(-5) != 0 {
		t.Error("rank clamping wrong")
	}
}

func TestRankAcrossBlocks(t *testing.T) {
	// Long enough to span several 512-bit superblocks.
	rng := rand.New(rand.NewSource(3))
	n := 5000
	bits := make([]bool, n)
	b := NewBuilder(n)
	for i := range bits {
		bits[i] = rng.Intn(3) == 0
		b.Append(bits[i])
	}
	v := b.Finish()
	cum := 0
	for i := 0; i <= n; i++ {
		if got := v.Rank1(i); got != cum {
			t.Fatalf("Rank1(%d) = %d, want %d", i, got, cum)
		}
		if i < n && bits[i] {
			cum++
		}
	}
}

func TestSetBasedFill(t *testing.T) {
	b := NewBuilder(100)
	b.SetLen(100)
	for _, i := range []int{0, 7, 63, 64, 99} {
		b.Set(i)
	}
	v := b.Finish()
	if v.Ones() != 5 || v.Len() != 100 {
		t.Fatalf("Ones=%d Len=%d", v.Ones(), v.Len())
	}
	if !v.Get(63) || !v.Get(64) || v.Get(65) {
		t.Error("Set placement wrong")
	}
	if v.Rank1(64) != 3 {
		t.Errorf("Rank1(64) = %d, want 3", v.Rank1(64))
	}
}

func TestRankQuick(t *testing.T) {
	f := func(raw []byte) bool {
		b := NewBuilder(len(raw) * 8)
		var bits []bool
		for _, by := range raw {
			for k := 0; k < 8; k++ {
				bit := by&(1<<k) != 0
				bits = append(bits, bit)
				b.Append(bit)
			}
		}
		v := b.Finish()
		cum := 0
		for i := 0; i <= len(bits); i++ {
			if v.Rank1(i) != cum {
				return false
			}
			if i < len(bits) && bits[i] {
				cum++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestRankDirectoryEdges pins the two-level directory on the shapes that
// stress its boundaries: empty vectors, all-ones vectors, and ranks exactly
// at word and superblock boundaries.
func TestRankDirectoryEdges(t *testing.T) {
	// Empty vector.
	v := NewBuilder(0).Finish()
	if v.Len() != 0 || v.Ones() != 0 || v.Rank1(0) != 0 || v.Rank1(10) != 0 || v.Rank0(5) != 0 {
		t.Fatalf("empty vector misbehaves: %d %d", v.Len(), v.Ones())
	}

	// All ones across several superblocks: Rank1(i) == i everywhere.
	n := 64*wordsPerBlock*3 + 17
	ab := NewBuilder(n)
	for i := 0; i < n; i++ {
		ab.Append(true)
	}
	av := ab.Finish()
	if av.Ones() != n {
		t.Fatalf("Ones = %d, want %d", av.Ones(), n)
	}
	for _, i := range []int{0, 1, 63, 64, 65, 511, 512, 513, 1024, n - 1, n, n + 5} {
		want := i
		if want > n {
			want = n
		}
		if got := av.Rank1(i); got != want {
			t.Fatalf("all-ones Rank1(%d) = %d, want %d", i, got, want)
		}
		if got := av.Rank0(i); got != 0 {
			t.Fatalf("all-ones Rank0(%d) = %d", i, got)
		}
	}

	// Exact word/superblock boundaries on a mixed vector, against a naive
	// recount.
	bits := make([]bool, n)
	mb := NewBuilder(n)
	for i := range bits {
		bits[i] = i%3 == 0 || i%64 == 63
		mb.Append(bits[i])
	}
	mv := mb.Finish()
	for _, i := range []int{0, 63, 64, 128, 511, 512, 513, 512 * 2, 512*3 - 1, 512 * 3, n} {
		want := 0
		for j := 0; j < i && j < n; j++ {
			if bits[j] {
				want++
			}
		}
		if got := mv.Rank1(i); got != want {
			t.Fatalf("boundary Rank1(%d) = %d, want %d", i, got, want)
		}
	}

	// The directory sizes are accounted for.
	if mv.SizeBytes() <= len(mv.words)*8 {
		t.Fatal("SizeBytes omits the rank directory")
	}
}

// rank1Linear is the pre-directory algorithm (superblock count plus a scan
// over the superblock's words) kept as the benchmark baseline for the
// two-level directory.
func rank1Linear(v *Vector, i int) int {
	if i <= 0 {
		return 0
	}
	if i > v.n {
		i = v.n
	}
	w := i >> 6
	r := int(v.blocks[w/wordsPerBlock])
	for j := w / wordsPerBlock * wordsPerBlock; j < w; j++ {
		r += bits.OnesCount64(v.words[j])
	}
	if rem := uint(i & 63); rem != 0 {
		r += bits.OnesCount64(v.words[w] & (1<<rem - 1))
	}
	return r
}

func benchVector(n int) (*Vector, []int) {
	rng := rand.New(rand.NewSource(9))
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.Append(rng.Intn(2) == 0)
	}
	idx := make([]int, 1024)
	for i := range idx {
		idx[i] = rng.Intn(n)
	}
	return b.Finish(), idx
}

// BenchmarkRankTwoLevel vs BenchmarkRankLinearScan is the rank-directory
// before/after pair: O(1) table reads against the per-superblock word scan
// it replaced.
func BenchmarkRankTwoLevel(b *testing.B) {
	v, idx := benchVector(1 << 20)
	b.ResetTimer()
	s := 0
	for i := 0; i < b.N; i++ {
		s += v.Rank1(idx[i%len(idx)])
	}
	_ = s
}

func BenchmarkRankLinearScan(b *testing.B) {
	v, idx := benchVector(1 << 20)
	b.ResetTimer()
	s := 0
	for i := 0; i < b.N; i++ {
		s += rank1Linear(v, idx[i%len(idx)])
	}
	_ = s
}

func TestSizeBytes(t *testing.T) {
	b := NewBuilder(1024)
	for i := 0; i < 1024; i++ {
		b.Append(i%2 == 0)
	}
	v := b.Finish()
	if v.SizeBytes() < 1024/8 {
		t.Errorf("SizeBytes = %d implausibly small", v.SizeBytes())
	}
}
