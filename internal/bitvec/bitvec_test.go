package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRankSmall(t *testing.T) {
	b := NewBuilder(10)
	pattern := []bool{true, false, true, true, false, false, true, false, true, true}
	for _, bit := range pattern {
		b.Append(bit)
	}
	v := b.Finish()
	if v.Len() != 10 {
		t.Fatalf("Len = %d", v.Len())
	}
	if v.Ones() != 6 {
		t.Fatalf("Ones = %d", v.Ones())
	}
	wantRank := 0
	for i := 0; i <= 10; i++ {
		if got := v.Rank1(i); got != wantRank {
			t.Errorf("Rank1(%d) = %d, want %d", i, got, wantRank)
		}
		if got := v.Rank0(i); got != i-wantRank {
			t.Errorf("Rank0(%d) = %d, want %d", i, got, i-wantRank)
		}
		if i < 10 {
			if v.Get(i) != pattern[i] {
				t.Errorf("Get(%d) = %v", i, v.Get(i))
			}
			if pattern[i] {
				wantRank++
			}
		}
	}
	// Out-of-range clamps.
	if v.Rank1(100) != 6 || v.Rank1(-5) != 0 {
		t.Error("rank clamping wrong")
	}
}

func TestRankAcrossBlocks(t *testing.T) {
	// Long enough to span several 512-bit superblocks.
	rng := rand.New(rand.NewSource(3))
	n := 5000
	bits := make([]bool, n)
	b := NewBuilder(n)
	for i := range bits {
		bits[i] = rng.Intn(3) == 0
		b.Append(bits[i])
	}
	v := b.Finish()
	cum := 0
	for i := 0; i <= n; i++ {
		if got := v.Rank1(i); got != cum {
			t.Fatalf("Rank1(%d) = %d, want %d", i, got, cum)
		}
		if i < n && bits[i] {
			cum++
		}
	}
}

func TestSetBasedFill(t *testing.T) {
	b := NewBuilder(100)
	b.SetLen(100)
	for _, i := range []int{0, 7, 63, 64, 99} {
		b.Set(i)
	}
	v := b.Finish()
	if v.Ones() != 5 || v.Len() != 100 {
		t.Fatalf("Ones=%d Len=%d", v.Ones(), v.Len())
	}
	if !v.Get(63) || !v.Get(64) || v.Get(65) {
		t.Error("Set placement wrong")
	}
	if v.Rank1(64) != 3 {
		t.Errorf("Rank1(64) = %d, want 3", v.Rank1(64))
	}
}

func TestRankQuick(t *testing.T) {
	f := func(raw []byte) bool {
		b := NewBuilder(len(raw) * 8)
		var bits []bool
		for _, by := range raw {
			for k := 0; k < 8; k++ {
				bit := by&(1<<k) != 0
				bits = append(bits, bit)
				b.Append(bit)
			}
		}
		v := b.Finish()
		cum := 0
		for i := 0; i <= len(bits); i++ {
			if v.Rank1(i) != cum {
				return false
			}
			if i < len(bits) && bits[i] {
				cum++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSizeBytes(t *testing.T) {
	b := NewBuilder(1024)
	for i := 0; i < 1024; i++ {
		b.Append(i%2 == 0)
	}
	v := b.Finish()
	if v.SizeBytes() < 1024/8 {
		t.Errorf("SizeBytes = %d implausibly small", v.SizeBytes())
	}
}
