package card

import (
	"math/rand"
	"testing"

	"pathhist/internal/metrics"
	"pathhist/internal/network"
	"pathhist/internal/snt"
	"pathhist/internal/traj"
)

// buildSkewedIndex indexes trips whose departures cluster at 08:00 (80%)
// and 16:00 (20%) over many days so that formula (1)'s uniformity
// assumption is badly wrong and formula (2) pays off.
func buildSkewedIndex(t testing.TB, opts snt.Options) (*snt.Index, map[string]network.EdgeID, *traj.Store) {
	t.Helper()
	g, ids := network.PaperExample()
	rng := rand.New(rand.NewSource(31))
	s := traj.NewStore()
	for d := 0; d < 200; d++ {
		n := 5 + rng.Intn(5)
		for k := 0; k < n; k++ {
			hour := int64(8)
			if rng.Float64() < 0.2 {
				hour = 16
			}
			t0 := int64(d)*snt.DaySeconds + hour*3600 + int64(rng.Intn(1800))
			tt1 := int32(3 + rng.Intn(5))
			tt2 := int32(4 + rng.Intn(5))
			s.Add(traj.UserID(rng.Intn(10)), []traj.Entry{
				{Edge: ids["A"], T: t0, TT: tt1},
				{Edge: ids["B"], T: t0 + int64(tt1), TT: tt2},
				{Edge: ids["E"], T: t0 + int64(tt1+tt2), TT: 5},
			})
		}
	}
	return snt.Build(g, s, opts), ids, s
}

func TestModeStrings(t *testing.T) {
	for m, want := range map[Mode]string{
		Off: "Off", ISA: "ISA", BTFast: "BT-Fast", BTAcc: "BT-Acc",
		CSSFast: "CSS-Fast", CSSAcc: "CSS-Acc",
	} {
		if m.String() != want {
			t.Errorf("%v != %s", m, want)
		}
	}
	if Mode(99).String() != "mode(?)" {
		t.Error("unknown mode name")
	}
}

func TestOffMode(t *testing.T) {
	ix, ids, _ := buildSkewedIndex(t, snt.Options{})
	e := New(ix, Off)
	if e.Enabled() {
		t.Error("Off should not be enabled")
	}
	if _, ok := e.Estimate(network.Path{ids["A"]}, snt.NewFixed(0, 10), snt.NoFilter); ok {
		t.Error("Off mode should not estimate")
	}
	var nilEst *Estimator
	if nilEst.Enabled() {
		t.Error("nil estimator should not be enabled")
	}
}

func TestISAMode(t *testing.T) {
	ix, ids, s := buildSkewedIndex(t, snt.Options{})
	e := New(ix, ISA)
	p := network.Path{ids["A"], ids["B"], ids["E"]}
	est, ok := e.Estimate(p, snt.NewPeriodic(8*3600, 900), snt.NoFilter)
	if !ok {
		t.Fatal("ISA should estimate")
	}
	// ISA ignores every predicate: the estimate is the full path count.
	if est != float64(s.Len()) {
		t.Errorf("ISA estimate = %v, want %d", est, s.Len())
	}
}

func TestUserPredicateSelectivity(t *testing.T) {
	ix, ids, _ := buildSkewedIndex(t, snt.Options{TodBucketSeconds: 900})
	e := New(ix, CSSAcc)
	p := network.Path{ids["A"]}
	iv := snt.NewPeriodic(8*3600, 1800)
	plain, _ := e.Estimate(p, iv, snt.NoFilter)
	withUser, _ := e.Estimate(p, iv, snt.Filter{User: 3, ExcludeTraj: -1})
	if withUser != plain*SelU {
		t.Errorf("user predicate should scale by %v: %v vs %v", SelU, plain, withUser)
	}
}

func TestAccBeatsFastOnSkewedToD(t *testing.T) {
	ix, ids, _ := buildSkewedIndex(t, snt.Options{TodBucketSeconds: 900})
	p := network.Path{ids["A"], ids["B"]}
	// Window on the morning peak: uniform assumption underestimates badly.
	iv := snt.NewPeriodic(8*3600, 1800)
	actual := float64(ix.CountMatches(p, iv, snt.NoFilter, 0))
	fast, _ := New(ix, BTFast).Estimate(p, iv, snt.NoFilter)
	acc, _ := New(ix, CSSAcc).Estimate(p, iv, snt.NoFilter)
	isa, _ := New(ix, ISA).Estimate(p, iv, snt.NoFilter)
	qFast := metrics.QError(fast, actual)
	qAcc := metrics.QError(acc, actual)
	qISA := metrics.QError(isa, actual)
	if qAcc > qFast || qAcc > qISA {
		t.Errorf("Acc should beat Fast and ISA: %.2f %.2f %.2f (actual %v, fast %v, acc %v, isa %v)",
			qAcc, qFast, qISA, actual, fast, acc, isa)
	}
	// The uniform assumption is badly wrong on the 80% morning peak.
	if qFast < 10 {
		t.Errorf("Fast should be far off on skewed data: q=%v", qFast)
	}
	// The Acc estimate should be quite close.
	if qAcc > 1.6 {
		t.Errorf("Acc q-error too high: %v", qAcc)
	}
	// On a selective off-peak window, ISA (which ignores all predicates)
	// overestimates heavily while Acc stays close.
	offPeak := snt.NewPeriodic(16*3600, 1800)
	actualOff := float64(ix.CountMatches(p, offPeak, snt.NoFilter, 0))
	isaOff, _ := New(ix, ISA).Estimate(p, offPeak, snt.NoFilter)
	accOff, _ := New(ix, CSSAcc).Estimate(p, offPeak, snt.NoFilter)
	if metrics.QError(isaOff, actualOff) < 3 {
		t.Errorf("ISA should be far off on a selective window: est %v actual %v", isaOff, actualOff)
	}
	if metrics.QError(accOff, actualOff) > 1.6 {
		t.Errorf("Acc off-peak q-error too high: est %v actual %v", accOff, actualOff)
	}
}

func TestFixedTimeframeSelectivity(t *testing.T) {
	ix, ids, s := buildSkewedIndex(t, snt.Options{})
	p := network.Path{ids["A"]}
	// First half of the data period.
	tmin, tmax := ix.TimeRange()
	mid := (tmin + tmax) / 2
	iv := snt.NewFixed(tmin, mid)
	actual := float64(ix.CountMatches(p, iv, snt.NoFilter, 0))
	exact, _ := New(ix, CSSFast).Estimate(p, iv, snt.NoFilter)
	naive, _ := New(ix, BTFast).Estimate(p, iv, snt.NoFilter)
	qExact := metrics.QError(exact, actual)
	qNaive := metrics.QError(naive, actual)
	if qExact > qNaive+1e-9 {
		t.Errorf("CSS exact count (%v, q=%.3f) should not lose to naive (%v, q=%.3f), actual %v",
			exact, qExact, naive, qNaive, actual)
	}
	// CSS-Fast on a fixed interval with no ToD factor equals the exact
	// count of first-segment entries in range, which is the actual
	// trajectory count here (each trajectory enters A exactly once).
	if qExact > 1.0001 {
		t.Errorf("CSS-Fast fixed-interval should be exact: est %v actual %v (store %d)", exact, actual, s.Len())
	}
}

func TestMissingSegmentSelectivity(t *testing.T) {
	ix, ids, _ := buildSkewedIndex(t, snt.Options{})
	e := New(ix, CSSFast)
	// Segment F exists in the graph but has no data; c_P = 0 anyway.
	est, ok := e.Estimate(network.Path{ids["F"]}, snt.NewFixed(0, 100), snt.NoFilter)
	if !ok || est != 0 {
		t.Errorf("estimate for dataless segment = %v ok=%v", est, ok)
	}
	// Empty path.
	if _, ok := e.Estimate(nil, snt.NewFixed(0, 100), snt.NoFilter); ok {
		t.Error("empty path should not estimate")
	}
}

func TestAccFallsBackWithoutHistograms(t *testing.T) {
	ix, ids, _ := buildSkewedIndex(t, snt.Options{}) // no ToD histograms
	p := network.Path{ids["A"]}
	iv := snt.NewPeriodic(8*3600, 1800)
	acc, _ := New(ix, BTAcc).Estimate(p, iv, snt.NoFilter)
	fast, _ := New(ix, BTFast).Estimate(p, iv, snt.NoFilter)
	if acc != fast {
		t.Errorf("without histograms Acc should equal Fast: %v vs %v", acc, fast)
	}
}
