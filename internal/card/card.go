// Package card implements the SPQ cardinality estimator of Section 4.4. It
// estimates β̂, the number of trajectories a strict path query would
// retrieve, as
//
//	β̂ = sel_tod * sel_tf * sel_u * c_P
//
// where c_P is the exact path occurrence count from the FM-index, sel_tod
// the time-of-day selectivity (formula 1: uniform; formula 2: per-segment
// time-of-day histograms), sel_tf the timeframe selectivity (formula 3:
// naive min/max; or an exact CSS-tree range count), and sel_u the Selinger
// default of 1/10 for user predicates. The query processor uses β̂ < β to
// relax a sub-query without paying for an index scan.
package card

import (
	"pathhist/internal/network"
	"pathhist/internal/snt"
)

// Mode selects the estimator variant (Section 4.4 defines five; Off
// disables estimation, the plain "CSS"/"BT" configurations of Figure 11b).
type Mode int

// Estimator modes.
const (
	Off     Mode = iota
	ISA          // β̂ = c_P
	BTFast       // formulas (1) and (3)
	BTAcc        // formulas (2) and (3)
	CSSFast      // formula (1) + exact CSS range count
	CSSAcc       // formula (2) + exact CSS range count
)

var modeNames = map[Mode]string{
	Off: "Off", ISA: "ISA", BTFast: "BT-Fast", BTAcc: "BT-Acc",
	CSSFast: "CSS-Fast", CSSAcc: "CSS-Acc",
}

// String returns the paper's name for the mode.
func (m Mode) String() string {
	if s, ok := modeNames[m]; ok {
		return s
	}
	return "mode(?)"
}

// SelU is the default selectivity of a user predicate, the 1/10 suggested by
// Selinger et al. (Section 4.4).
const SelU = 0.1

// Estimator estimates SPQ cardinalities against an SNT-index.
type Estimator struct {
	ix   *snt.Index
	mode Mode
}

// New returns an estimator in the given mode.
func New(ix *snt.Index, mode Mode) *Estimator {
	return &Estimator{ix: ix, mode: mode}
}

// Mode returns the configured mode.
func (e *Estimator) Mode() Mode { return e.mode }

// Enabled reports whether estimation is active.
func (e *Estimator) Enabled() bool { return e != nil && e.mode != Off }

// Estimate returns β̂ for the sub-query spq(p, iv, f, ·). With mode Off it
// returns ok=false and the caller must scan.
func (e *Estimator) Estimate(p network.Path, iv snt.Interval, f snt.Filter) (float64, bool) {
	if !e.Enabled() || len(p) == 0 {
		return 0, false
	}
	cP := float64(e.ix.PathCount(p))
	if e.mode == ISA {
		return cP, true
	}
	est := cP * e.selTod(p[0], iv) * e.selTf(p[0], iv)
	if f.HasPredicate() {
		est *= SelU
	}
	return est, true
}

// selTod is the time-of-day selectivity of a periodic predicate.
func (e *Estimator) selTod(e0 network.EdgeID, iv snt.Interval) float64 {
	if !iv.IsPeriodic() {
		return 1
	}
	if e.mode == BTAcc || e.mode == CSSAcc {
		if sel, ok := e.ix.TodSelectivity(e0, iv); ok {
			return sel
		}
		// Histograms unavailable for the segment: fall back to formula 1.
	}
	return float64(iv.Alpha()) / float64(snt.DaySeconds)
}

// selTf is the timeframe selectivity of a fixed predicate.
func (e *Estimator) selTf(e0 network.EdgeID, iv snt.Interval) float64 {
	if iv.IsPeriodic() {
		// A periodic predicate recurs over the whole timeframe.
		return 1
	}
	phi := e.ix.Frozen().Get(e0)
	if phi == nil || phi.Len() == 0 {
		return 0
	}
	switch e.mode {
	case CSSFast, CSSAcc:
		// Exact range size in O(log n) — an offset subtraction on the
		// frozen columnar index (Section 4.3.1's CSS-tree property, which
		// freezing extends to every tree kind; the BT modes keep formula 3
		// to reproduce the paper's estimator grid).
		return float64(phi.CountRange(iv.Start, iv.End)) / float64(phi.Len())
	default:
		// Formula (3): naive ratio over [F[e0]min, F[e0]max].
		min, max := phi.MinKey(), phi.MaxKey()
		span := max - min
		if span <= 0 {
			if iv.Contains(min) {
				return 1
			}
			return 0
		}
		lo, hi := iv.Start, iv.End
		if lo < min {
			lo = min
		}
		if hi > max+1 {
			hi = max + 1
		}
		if hi <= lo {
			return 0
		}
		sel := float64(hi-lo) / float64(span)
		if sel > 1 {
			sel = 1
		}
		return sel
	}
}
