package workload

import (
	"testing"

	"pathhist/internal/gps"
	"pathhist/internal/network"
	"pathhist/internal/traj"
)

// tinyConfig keeps the test fast.
func tinyConfig() Config {
	cfg := SmallConfig()
	cfg.Net.Cities = 3
	cfg.Net.GridSize = 5
	cfg.Drivers = 20
	cfg.Days = 40
	cfg.TargetTrips = 800
	return cfg
}

func TestBuildDataset(t *testing.T) {
	cfg := tinyConfig()
	ds := BuildDataset(cfg)
	if ds.Store.Len() < cfg.TargetTrips/3 {
		t.Fatalf("only %d trajectories (target %d)", ds.Store.Len(), cfg.TargetTrips)
	}
	if got := ds.Store.Len(); got > cfg.TargetTrips*3 {
		t.Fatalf("%d trajectories, far over target %d", got, cfg.TargetTrips)
	}
	if len(ds.Drivers) != cfg.Drivers {
		t.Error("drivers")
	}
	// All trajectories valid and traversable.
	for i := 0; i < ds.Store.Len(); i++ {
		tr := ds.Store.Get(traj.ID(i))
		if err := tr.Validate(); err != nil {
			t.Fatalf("trajectory %d invalid: %v", i, err)
		}
		if !ds.G.IsTraversable(tr.Path()) {
			t.Fatalf("trajectory %d path not traversable", i)
		}
		if tr.ID != traj.ID(i) {
			t.Fatal("ids not positional after SortByStart")
		}
	}
	// Timestamps within the configured period.
	tmin, tmax := ds.Store.TimeRange()
	if tmin < cfg.StartUnix || tmax > cfg.StartUnix+int64(cfg.Days+1)*gps.Day {
		t.Errorf("time range [%d, %d] outside config", tmin, tmax)
	}
	// Zones were assigned: city edges exist.
	zones := map[network.Zone]int{}
	for i := 0; i < ds.G.NumEdges(); i++ {
		zones[ds.G.Edge(network.EdgeID(i)).Zone]++
	}
	if zones[network.ZoneCity] == 0 || zones[network.ZoneRural] == 0 {
		t.Errorf("zone mix missing: %v", zones)
	}
}

func TestDatasetDeterminism(t *testing.T) {
	cfg := tinyConfig()
	a := BuildDataset(cfg)
	b := BuildDataset(cfg)
	if a.Store.Len() != b.Store.Len() || a.Store.NumTraversals() != b.Store.NumTraversals() {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d trajectories/traversals",
			a.Store.Len(), a.Store.NumTraversals(), b.Store.Len(), b.Store.NumTraversals())
	}
	for i := 0; i < a.Store.Len(); i++ {
		ta, tb := a.Store.Get(traj.ID(i)), b.Store.Get(traj.ID(i))
		if ta.User != tb.User || ta.StartTime() != tb.StartTime() || ta.Len() != tb.Len() {
			t.Fatalf("trajectory %d differs", i)
		}
	}
}

func TestCommutePeaks(t *testing.T) {
	ds := BuildDataset(tinyConfig())
	// Weekday trip departures must cluster in the two commute windows.
	var morning, evening, night int
	for i := 0; i < ds.Store.Len(); i++ {
		tr := ds.Store.Get(traj.ID(i))
		t0 := tr.StartTime()
		if gps.IsWeekend(t0) {
			continue
		}
		tod := gps.TimeOfDay(t0)
		switch {
		case tod >= 6*3600 && tod < 10*3600:
			morning++
		case tod >= 14*3600 && tod < 19*3600:
			evening++
		case tod < 5*3600 || tod >= 22*3600:
			night++
		}
	}
	if morning < 10 || evening < 10 {
		t.Fatalf("no commute peaks: morning=%d evening=%d", morning, evening)
	}
	if night > morning/5 {
		t.Errorf("too many night trips: %d vs morning %d", night, morning)
	}
}

func TestMakeQueries(t *testing.T) {
	ds := BuildDataset(tinyConfig())
	qs := ds.MakeQueries(0.2, 5, 7)
	if len(qs) == 0 {
		t.Fatal("no queries derived")
	}
	median := ds.Store.MedianStart()
	for _, q := range qs {
		if q.T0 <= median {
			t.Fatal("query before median timestamp")
		}
		if len(q.Path) < 5 {
			t.Fatal("query below minimum length")
		}
		tr := ds.Store.Get(q.Traj)
		if q.Actual != tr.TotalDuration() || q.User != tr.User {
			t.Fatal("query ground truth mismatch")
		}
	}
	// Deterministic given the same seed.
	qs2 := ds.MakeQueries(0.2, 5, 7)
	if len(qs) != len(qs2) || qs[0].Traj != qs2[0].Traj {
		t.Error("query sampling not deterministic")
	}
	// Stats plausible.
	km, segs, secs := ds.AvgQueryStats(qs)
	if km <= 0 || segs < 5 || secs <= 0 {
		t.Errorf("stats: %v km, %v segs, %v s", km, segs, secs)
	}
	if k, s, c := ds.AvgQueryStats(nil); k != 0 || s != 0 || c != 0 {
		t.Error("empty stats")
	}
}

func TestUserRoutineRepetition(t *testing.T) {
	// Commuters repeat their route: the same (user, first edge) pair must
	// recur many times, which is what user-filtered SPQs rely on.
	ds := BuildDataset(tinyConfig())
	type key struct {
		u traj.UserID
		e network.EdgeID
	}
	counts := map[key]int{}
	for i := 0; i < ds.Store.Len(); i++ {
		tr := ds.Store.Get(traj.ID(i))
		counts[key{tr.User, tr.Seq[0].Edge}]++
	}
	best := 0
	for _, c := range counts {
		if c > best {
			best = c
		}
	}
	if best < 5 {
		t.Errorf("no repeated user routes (max %d)", best)
	}
}
