// Package workload builds the evaluation setting of Section 5: a synthetic
// substitute for the ITSP data (a road network with zones, a driver
// population with commuting patterns, and trips simulated with congestion,
// driver heterogeneity and turn delays) plus the query-set derivation of
// Section 5.2 (a random sample of trajectories after the median timestamp,
// queried with periodic, user-filtered, or fixed temporal predicates).
package workload

import (
	"math/rand"

	"pathhist/internal/gps"
	"pathhist/internal/network"
	"pathhist/internal/traj"
	"pathhist/internal/zoning"
)

// Config parameterises dataset generation.
type Config struct {
	Seed      int64
	Net       network.GenConfig
	Drivers   int
	Days      int
	StartUnix int64 // dataset epoch (the ITSP data starts 2012-05-01)
	// TargetTrips steers the activity probability so the expected number
	// of trips is roughly this.
	TargetTrips int
}

// StartUnix2012 is 2012-05-01 00:00:00 UTC, the ITSP collection start.
const StartUnix2012 int64 = 1335830400

// DefaultConfig is the full-scale configuration used by cmd/ttbench
// (laptop-scale stand-in for the paper's 1.4M-trajectory dataset).
func DefaultConfig() Config {
	return Config{
		Seed:        42,
		Net:         network.DefaultGenConfig(),
		Drivers:     458, // as in the ITSP platform
		Days:        420,
		StartUnix:   StartUnix2012,
		TargetTrips: 60000,
	}
}

// SmallConfig is the scaled-down configuration used by tests and
// go-test benchmarks.
func SmallConfig() Config {
	net := network.DefaultGenConfig()
	net.Cities = 4
	net.GridSize = 6
	net.SummerAreas = 2
	return Config{
		Seed:        42,
		Net:         net,
		Drivers:     60,
		Days:        90,
		StartUnix:   StartUnix2012,
		TargetTrips: 4000,
	}
}

// Dataset is a generated evaluation dataset.
type Dataset struct {
	Cfg     Config
	G       *network.Graph
	Gen     *network.GenResult
	Store   *traj.Store
	Drivers []gps.Driver
}

// driverPlan holds a driver's cached routes and habitual departure times.
// Departure-time diversity across drivers is what makes time-of-day
// predicates informative: segments shared by early and late commuters see
// systematically different congestion.
type driverPlan struct {
	commuteOut  network.Path
	commuteBack network.Path
	errands     []network.Path
	outMu       float64 // habitual morning departure, seconds of day
	backMu      float64 // habitual return departure
}

// BuildDataset generates the network, zones, drivers and trips.
func BuildDataset(cfg Config) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := network.Generate(cfg.Net)
	g := res.Graph
	zoning.FromGenResult(res, cfg.Net.GridSpacing*0.9).Assign(g)
	drivers := gps.NewDrivers(cfg.Drivers, rng)
	router := network.NewRouter(g)
	sim := gps.NewSimulator(g, rng)

	// Per-driver plans: home and work in different cities (commuting over
	// main roads drives the πMDM story), plus a pool of errand routes.
	plans := make([]driverPlan, cfg.Drivers)
	randomVertex := func(city int) network.VertexID {
		vs := res.CityVertices[city]
		return vs[rng.Intn(len(vs))]
	}
	for i := range plans {
		homeCity := rng.Intn(cfg.Net.Cities)
		workCity := rng.Intn(cfg.Net.Cities)
		for workCity == homeCity {
			workCity = rng.Intn(cfg.Net.Cities)
		}
		home := randomVertex(homeCity)
		work := randomVertex(workCity)
		plans[i].commuteOut = router.Route(home, work)
		plans[i].commuteBack = router.Route(work, home)
		plans[i].outMu = 7*3600 + rng.Float64()*2.5*3600   // 07:00..09:30
		plans[i].backMu = 15*3600 + rng.Float64()*3.0*3600 // 15:00..18:00
		for e := 0; e < 3; e++ {
			from := randomVertex(rng.Intn(cfg.Net.Cities))
			to := randomVertex(rng.Intn(cfg.Net.Cities))
			if p := router.Route(from, to); len(p) >= 3 {
				plans[i].errands = append(plans[i].errands, p)
			}
		}
	}

	// Activity probability so that expected trips ≈ TargetTrips. A
	// commuting weekday contributes ~2.3 trips, an active weekend day ~1.
	expectedPerDriverDay := 2.3*5.0/7.0 + 0.5*1.0*2.0/7.0
	pActive := float64(cfg.TargetTrips) / (float64(cfg.Drivers) * float64(cfg.Days) * expectedPerDriverDay)
	if pActive > 0.98 {
		pActive = 0.98
	}

	store := traj.NewStore()
	addTrip := func(p network.Path, depart int64, d *gps.Driver) {
		if len(p) == 0 {
			return
		}
		// Quantise departures to the minute, as in the ITSP records.
		depart = depart / 60 * 60
		entries := sim.SimulateTraversal(p, depart, d)
		// The simulator produces contiguous trips; gap splitting is a
		// no-op here but applied for fidelity with the preprocessing.
		for _, part := range traj.SplitGaps(entries, traj.MaxGap) {
			if len(part) > 0 {
				store.Add(d.ID, part)
			}
		}
	}
	normal := func(mu, sigma, lo, hi float64) int64 {
		x := mu + rng.NormFloat64()*sigma
		if x < lo {
			x = lo
		}
		if x > hi {
			x = hi
		}
		return int64(x)
	}
	for day := 0; day < cfg.Days; day++ {
		dayStart := cfg.StartUnix + int64(day)*gps.Day
		weekend := gps.IsWeekend(dayStart)
		for di := range drivers {
			d := &drivers[di]
			pl := &plans[di]
			if weekend {
				if rng.Float64() < pActive*0.5 && len(pl.errands) > 0 {
					dep := dayStart + normal(13*3600, 2.5*3600, 8*3600, 20*3600)
					addTrip(pl.errands[rng.Intn(len(pl.errands))], dep, d)
				}
				continue
			}
			if rng.Float64() >= pActive {
				continue
			}
			out := dayStart + normal(pl.outMu, 0.2*3600, 6*3600, 10.5*3600)
			back := dayStart + normal(pl.backMu, 0.25*3600, 14*3600, 19.5*3600)
			addTrip(pl.commuteOut, out, d)
			addTrip(pl.commuteBack, back, d)
			if rng.Float64() < 0.3 && len(pl.errands) > 0 {
				dep := dayStart + normal(12*3600, 1.5*3600, 10*3600, 21*3600)
				addTrip(pl.errands[rng.Intn(len(pl.errands))], dep, d)
			}
		}
	}
	store.SortByStart()
	return &Dataset{Cfg: cfg, G: g, Gen: res, Store: store, Drivers: drivers}
}

// Query is one evaluation query derived from an indexed trajectory
// (Section 5.2): the trajectory's own path, start time, user, and ground
// truth travel times.
type Query struct {
	Traj    traj.ID
	User    traj.UserID
	Path    network.Path
	T0      int64
	Actual  int64        // a_tri: the trajectory's true travel time
	Entries []traj.Entry // per-segment ground truth for the weighted error
}

// MakeQueries derives the query set: a random fraction of the trajectories
// that start after the median timestamp (ensuring ample history) and have
// at least minLen segments.
func (d *Dataset) MakeQueries(frac float64, minLen int, seed int64) []Query {
	rng := rand.New(rand.NewSource(seed))
	median := d.Store.MedianStart()
	var out []Query
	for i := 0; i < d.Store.Len(); i++ {
		tr := d.Store.Get(traj.ID(i))
		if tr.StartTime() <= median || tr.Len() < minLen {
			continue
		}
		if rng.Float64() >= frac {
			continue
		}
		out = append(out, Query{
			Traj:    tr.ID,
			User:    tr.User,
			Path:    tr.Path(),
			T0:      tr.StartTime(),
			Actual:  tr.TotalDuration(),
			Entries: tr.Seq,
		})
	}
	return out
}

// AvgQueryStats summarises a query set (the paper reports 13.7 km, 55
// segments, 800 s averages).
func (d *Dataset) AvgQueryStats(qs []Query) (km float64, segments float64, seconds float64) {
	if len(qs) == 0 {
		return 0, 0, 0
	}
	for _, q := range qs {
		km += d.G.PathLength(q.Path) / 1000
		segments += float64(len(q.Path))
		seconds += float64(q.Actual)
	}
	n := float64(len(qs))
	return km / n, segments / n, seconds / n
}
