package failpoint

import (
	"errors"
	"testing"
	"time"
)

func TestInactiveSiteIsFree(t *testing.T) {
	Reset()
	if err := Inject("never.enabled"); err != nil {
		t.Fatalf("inactive site injected %v", err)
	}
	if got := Hits("never.enabled"); got != 0 {
		t.Fatalf("inactive site counted %d hits", got)
	}
}

func TestErrorInjection(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Enable("t.err", Injection{Err: boom})
	if err := Inject("t.err"); !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
	// Other sites stay clean while one is enabled.
	if err := Inject("t.other"); err != nil {
		t.Fatalf("unrelated site injected %v", err)
	}
	Disable("t.err")
	if err := Inject("t.err"); err != nil {
		t.Fatalf("disabled site injected %v", err)
	}
}

func TestSkipFirstAndTimes(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Enable("t.window", Injection{Err: boom, SkipFirst: 2, Times: 1})
	var got []bool
	for i := 0; i < 5; i++ {
		got = append(got, Inject("t.window") != nil)
	}
	want := []bool{false, false, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d: fired=%v, want %v (all: %v)", i+1, got[i], want[i], got)
		}
	}
	if h := Hits("t.window"); h != 5 {
		t.Fatalf("hits = %d, want 5", h)
	}
}

func TestPanicInjection(t *testing.T) {
	defer Reset()
	Enable("t.panic", Injection{Panic: "simulated"})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic")
		}
	}()
	_ = Inject("t.panic")
}

func TestDelayInjection(t *testing.T) {
	defer Reset()
	Enable("t.delay", Injection{Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := Inject("t.delay"); err != nil {
		t.Fatalf("delay-only injection returned %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delay injection returned after %v", d)
	}
}

func TestEnableReplacesAndResets(t *testing.T) {
	defer Reset()
	Enable("t.re", Injection{Err: errors.New("a")})
	_ = Inject("t.re")
	Enable("t.re", Injection{SkipFirst: 1, Err: errors.New("b")})
	if h := Hits("t.re"); h != 0 {
		t.Fatalf("re-enable kept %d hits", h)
	}
	if err := Inject("t.re"); err != nil {
		t.Fatalf("first hit after re-enable fired: %v", err)
	}
	if err := Inject("t.re"); err == nil {
		t.Fatal("second hit after re-enable did not fire")
	}
}
