// Package failpoint is a tiny, build-tag-free fault-injection registry for
// testing failure paths that are otherwise unreachable without real broken
// hardware: fsync errors, slow disks, panics in the middle of an I/O
// sequence (DESIGN.md §12).
//
// Production code marks a site by calling Inject (or InjectCtx) at the
// exact point where an I/O operation could fail:
//
//	if err := failpoint.Inject("wal.append.sync"); err != nil {
//	    return err
//	}
//	err := f.Sync()
//
// Tests activate an injection for a named site and get deterministic
// failures — an error, a delay, or a panic, optionally only after the
// first SkipFirst hits and for at most Times hits:
//
//	failpoint.Enable("wal.append.sync", failpoint.Injection{
//	    Err: errDiskGone, SkipFirst: 2,
//	})
//	defer failpoint.Disable("wal.append.sync")
//
// When no failpoint is enabled anywhere — the only state production code
// ever runs in — Inject is one atomic load and an immediate return. There
// is no build tag: the sites are always compiled in, so the binary that is
// tested is the binary that ships, and a fault-injection suite can drive a
// real server end to end.
//
// The registry is process-global because the sites it names are spread
// across packages that must not depend on test wiring. Tests that enable
// failpoints must not run in parallel with tests that hit the same sites;
// the suites under internal/wal and internal/ttserve serialise themselves.
package failpoint

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Injection describes what happens when an enabled site is hit. The zero
// value injects nothing but still counts hits (useful to assert a site is
// reached).
type Injection struct {
	// Err is returned from Inject after Delay elapses.
	Err error
	// Delay blocks the caller before anything else happens (slow-disk
	// simulation; composes with Err and Panic).
	Delay time.Duration
	// Panic, when non-empty, makes Inject panic with this message after
	// Delay — the crash-mid-sequence simulation.
	Panic string
	// SkipFirst lets the first SkipFirst hits pass through untouched, so a
	// test can fail exactly the Nth operation.
	SkipFirst int
	// Times bounds how many hits trigger the injection once SkipFirst is
	// exhausted (0 = every later hit). After the budget is spent the site
	// behaves as if disabled (but keeps counting hits).
	Times int
}

// Well-known sites of the sharded scatter-gather layer (DESIGN.md §14).
// The dispatcher hits both the bare site and a per-shard variant
// (name + "." + strconv.Itoa(shard)), so a test can fail every shard or
// exactly one.
const (
	// ShardDispatch fires at the top of every per-shard sub-query dispatch.
	ShardDispatch = "shard.dispatch"
	// ShardSlow fires in the same place; enable it with a Delay to simulate
	// a slow shard without failing it (hedging coverage).
	ShardSlow = "shard.slow"
	// ShardDown fires inside each dispatch attempt; enable it with an Err
	// to simulate a shard that is hard down.
	ShardDown = "shard.down"
)

// site is one enabled failpoint's mutable state.
type site struct {
	mu   sync.Mutex
	inj  Injection
	hits int
}

var (
	// active is the fast-path gate: number of currently enabled sites.
	active atomic.Int32

	mu    sync.Mutex
	sites map[string]*site
)

// Enable activates an injection for the named site, replacing any previous
// one (and resetting its hit count).
func Enable(name string, inj Injection) {
	mu.Lock()
	defer mu.Unlock()
	if sites == nil {
		sites = make(map[string]*site)
	}
	if _, ok := sites[name]; !ok {
		active.Add(1)
	}
	sites[name] = &site{inj: inj}
}

// Disable deactivates the named site. Disabling an inactive site is a
// no-op.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := sites[name]; ok {
		delete(sites, name)
		active.Add(-1)
	}
}

// Reset deactivates every site — the test-suite teardown.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	active.Add(-int32(len(sites)))
	sites = nil
}

// Hits reports how many times the named site was reached since it was
// enabled (0 when not enabled).
func Hits(name string) int {
	mu.Lock()
	s := sites[name]
	mu.Unlock()
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits
}

// Inject marks a fault-injection site. With no injection enabled for name
// it returns nil immediately (one atomic load when nothing is enabled
// process-wide). With one enabled it counts the hit and, when the
// SkipFirst/Times window says so, sleeps Delay, panics Panic, and/or
// returns Err.
func Inject(name string) error {
	if active.Load() == 0 {
		return nil
	}
	mu.Lock()
	s := sites[name]
	mu.Unlock()
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.hits++
	fire := s.hits > s.inj.SkipFirst &&
		(s.inj.Times == 0 || s.hits <= s.inj.SkipFirst+s.inj.Times)
	inj := s.inj
	s.mu.Unlock()
	if !fire {
		return nil
	}
	if inj.Delay > 0 {
		time.Sleep(inj.Delay)
	}
	if inj.Panic != "" {
		panic(fmt.Sprintf("failpoint %s: %s", name, inj.Panic))
	}
	return inj.Err
}
