package mapmatch

import (
	"math/rand"
	"testing"

	"pathhist/internal/gps"
	"pathhist/internal/network"
	"pathhist/internal/traj"
)

func TestProject(t *testing.T) {
	g := network.New()
	a := g.AddVertex(0, 0)
	b := g.AddVertex(100, 0)
	e := g.AddEdge(network.Edge{From: a, To: b, Cat: network.Primary, SpeedLimit: 50})
	m := NewMatcher(g)
	frac, d := m.project(e, 50, 10)
	if frac != 0.5 || d != 10 {
		t.Errorf("project mid = %v, %v", frac, d)
	}
	frac, d = m.project(e, -20, 0)
	if frac != 0 || d != 20 {
		t.Errorf("project before start = %v, %v", frac, d)
	}
	frac, d = m.project(e, 150, 0)
	if frac != 1 || d != 50 {
		t.Errorf("project past end = %v, %v", frac, d)
	}
}

func TestGridNear(t *testing.T) {
	g := network.New()
	a := g.AddVertex(0, 0)
	b := g.AddVertex(100, 0)
	c := g.AddVertex(5000, 5000)
	d := g.AddVertex(5100, 5000)
	e1 := g.AddEdge(network.Edge{From: a, To: b, Cat: network.Primary, SpeedLimit: 50})
	e2 := g.AddEdge(network.Edge{From: c, To: d, Cat: network.Primary, SpeedLimit: 50})
	eg := newEdgeGrid(g, 250)
	near := eg.near(50, 0, 50)
	found1, found2 := false, false
	for _, id := range near {
		if id == e1 {
			found1 = true
		}
		if id == e2 {
			found2 = true
		}
	}
	if !found1 {
		t.Error("nearby edge not found")
	}
	if found2 {
		t.Error("distant edge returned")
	}
}

func TestRouteDistanceSameEdge(t *testing.T) {
	g := network.New()
	a := g.AddVertex(0, 0)
	b := g.AddVertex(100, 0)
	e := g.AddEdge(network.Edge{From: a, To: b, Cat: network.Primary, SpeedLimit: 50})
	m := NewMatcher(g)
	d, ok := m.routeDistance(candidate{edge: e, frac: 0.2}, candidate{edge: e, frac: 0.7})
	if !ok || d < 49.99 || d > 50.01 {
		t.Errorf("same-edge distance = %v, %v", d, ok)
	}
}

func TestRouteDistanceAcrossVertices(t *testing.T) {
	g, ids := network.PaperExample()
	m := NewMatcher(g)
	m.MaxRoute = 5000
	// From halfway along A to halfway along B: 450 + 0 + 60 = 510.
	d, ok := m.routeDistance(
		candidate{edge: ids["A"], frac: 0.5},
		candidate{edge: ids["B"], frac: 0.5})
	if !ok || d != 450+60 {
		t.Errorf("cross-edge distance = %v, %v; want 510", d, ok)
	}
	// No route from F to A.
	_, ok = m.routeDistance(candidate{edge: ids["F"], frac: 0.5}, candidate{edge: ids["A"], frac: 0.5})
	if ok {
		t.Error("expected no route from F to A")
	}
}

// simulateAndMatch generates a trip on a synthetic network, emits noisy GPS
// and matches it back.
func simulateAndMatch(t *testing.T, seed int64, noise float64) (ground []traj.Entry, matched []traj.Entry, g *network.Graph) {
	t.Helper()
	cfg := network.DefaultGenConfig()
	cfg.Cities = 3
	cfg.GridSize = 6
	cfg.Seed = 11
	res := network.Generate(cfg)
	g = res.Graph
	r := network.NewRouter(g)
	rng := rand.New(rand.NewSource(seed))
	// Route between two distinct city centers.
	src := res.CityVertices[0][len(res.CityVertices[0])/2]
	dst := res.CityVertices[1][len(res.CityVertices[1])/2]
	p := r.Route(src, dst)
	if p == nil {
		t.Fatal("no route between cities")
	}
	sim := gps.NewSimulator(g, rng)
	d := gps.Driver{ID: 0, CruiseFactor: 1, CityFactor: 1}
	ground = sim.SimulateTraversal(p, 1370304000+10*3600, &d)
	fixes := sim.EmitFixes(ground, noise)
	m := NewMatcher(g)
	var err error
	matched, err = m.Match(fixes)
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	return ground, matched, g
}

func TestMatchRecoversPath(t *testing.T) {
	ground, matched, g := simulateAndMatch(t, 5, 4)
	if len(matched) < len(ground)/2 {
		t.Fatalf("matched only %d of %d segments", len(matched), len(ground))
	}
	// The matched sequence must be traversable.
	var mp network.Path
	for _, e := range matched {
		mp = append(mp, e.Edge)
	}
	if !g.IsTraversable(mp) {
		t.Fatal("matched path not traversable")
	}
	// Validate as a trajectory.
	tr := traj.Trajectory{Seq: matched}
	if err := tr.Validate(); err != nil {
		t.Fatalf("matched trajectory invalid: %v", err)
	}
	// Most matched interior edges should be on the ground-truth path.
	onPath := map[network.EdgeID]bool{}
	for _, e := range ground {
		onPath[e.Edge] = true
	}
	hits := 0
	for _, e := range matched {
		if onPath[e.Edge] {
			hits++
		}
	}
	if frac := float64(hits) / float64(len(matched)); frac < 0.85 {
		t.Errorf("only %.0f%% of matched edges on ground-truth path", frac*100)
	}
}

func TestMatchTravelTimesClose(t *testing.T) {
	ground, matched, _ := simulateAndMatch(t, 6, 3)
	gt := map[network.EdgeID]int32{}
	for _, e := range ground {
		gt[e.Edge] = e.TT
	}
	var n, closeEnough int
	for _, e := range matched {
		want, ok := gt[e.Edge]
		if !ok {
			continue
		}
		n++
		diff := int32(e.TT) - want
		if diff < 0 {
			diff = -diff
		}
		// Boundary interpolation at 1 Hz sampling should land within a
		// few seconds for the typical segment.
		if diff <= 5 {
			closeEnough++
		}
	}
	if n == 0 {
		t.Fatal("no overlapping segments to compare")
	}
	if frac := float64(closeEnough) / float64(n); frac < 0.7 {
		t.Errorf("only %.0f%% of matched TTs within 5 s of ground truth", frac*100)
	}
}

func TestMatchTooShort(t *testing.T) {
	g, _ := network.PaperExample()
	m := NewMatcher(g)
	if _, err := m.Match([]gps.Fix{{T: 0, X: 0, Y: 0}}); err != ErrTooShort {
		t.Errorf("err = %v, want ErrTooShort", err)
	}
	// Fixes far away from any edge are all skipped.
	far := []gps.Fix{{T: 0, X: 1e7, Y: 1e7}, {T: 1, X: 1e7, Y: 1e7}, {T: 2, X: 1e7, Y: 1e7}}
	if _, err := m.Match(far); err != ErrTooShort {
		t.Errorf("err = %v, want ErrTooShort", err)
	}
}

func TestMatchFillsSkippedEdges(t *testing.T) {
	// Downsampling aggressively makes consecutive decoded fixes skip
	// entire short edges; assemble must fill the gaps with the shortest
	// connecting path so the output stays traversable.
	ground, _, g := simulateAndMatch(t, 8, 2)
	cfg := network.DefaultGenConfig()
	cfg.Cities = 3
	cfg.GridSize = 6
	cfg.Seed = 11
	_ = cfg
	m := NewMatcher(g)
	m.SampleEvery = 8 // every 8th fix at 1 Hz: gaps larger than short edges
	rng := rand.New(rand.NewSource(12))
	sim := gps.NewSimulator(g, rng)
	fixes := sim.EmitFixes(ground, 3)
	matched, err := m.Match(fixes)
	if err != nil {
		t.Fatalf("Match: %v", err)
	}
	var mp network.Path
	for _, e := range matched {
		mp = append(mp, e.Edge)
	}
	if !g.IsTraversable(mp) {
		t.Fatal("gap-filled path not traversable")
	}
	tr := traj.Trajectory{Seq: matched}
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if len(matched) < len(ground)/2 {
		t.Fatalf("recovered only %d of %d segments", len(matched), len(ground))
	}
}
