package mapmatch

import (
	"math"

	"pathhist/internal/network"
)

// edgeGrid is a uniform spatial hash over edge bounding boxes used for
// candidate generation. Cells are cell x cell meters.
type edgeGrid struct {
	cell  float64
	cells map[[2]int32][]network.EdgeID
}

func newEdgeGrid(g *network.Graph, cell float64) *edgeGrid {
	eg := &edgeGrid{cell: cell, cells: make(map[[2]int32][]network.EdgeID)}
	for i := 0; i < g.NumEdges(); i++ {
		id := network.EdgeID(i)
		e := g.Edge(id)
		a, b := g.Vertex(e.From), g.Vertex(e.To)
		minX, maxX := math.Min(a.X, b.X), math.Max(a.X, b.X)
		minY, maxY := math.Min(a.Y, b.Y), math.Max(a.Y, b.Y)
		for cx := eg.idx(minX); cx <= eg.idx(maxX); cx++ {
			for cy := eg.idx(minY); cy <= eg.idx(maxY); cy++ {
				k := [2]int32{cx, cy}
				eg.cells[k] = append(eg.cells[k], id)
			}
		}
	}
	return eg
}

func (eg *edgeGrid) idx(v float64) int32 {
	return int32(math.Floor(v / eg.cell))
}

// near returns edge ids whose cells intersect the radius-r square around
// (x, y). Distances are not verified here; the caller filters by projection
// distance.
func (eg *edgeGrid) near(x, y, r float64) []network.EdgeID {
	var out []network.EdgeID
	seen := make(map[network.EdgeID]struct{})
	for cx := eg.idx(x - r); cx <= eg.idx(x+r); cx++ {
		for cy := eg.idx(y - r); cy <= eg.idx(y+r); cy++ {
			for _, id := range eg.cells[[2]int32{cx, cy}] {
				if _, dup := seen[id]; dup {
					continue
				}
				seen[id] = struct{}{}
				out = append(out, id)
			}
		}
	}
	return out
}
