// Package mapmatch implements Hidden-Markov-Model map matching in the style
// of Newson & Krumm (2009), the preprocessing step that turns raw GPS traces
// into the network-constrained trajectories the paper indexes (Section
// 5.1.3). Candidate road segments near each fix are scored with a Gaussian
// emission model; transitions are scored by the discrepancy between
// on-network route distance and straight-line distance; Viterbi decoding
// yields the most likely segment sequence, from which per-segment entry
// times and traversal durations are interpolated. Mirroring the ITSP
// preprocessing, the partially covered first and last segments are dropped
// so that all reported durations are meaningful.
package mapmatch

import (
	"container/heap"
	"errors"
	"math"

	"pathhist/internal/gps"
	"pathhist/internal/network"
	"pathhist/internal/traj"
)

// Matcher matches GPS traces to a road network.
type Matcher struct {
	g    *network.Graph
	grid *edgeGrid

	// Sigma is the GPS noise standard deviation in meters (emission model).
	Sigma float64
	// Beta is the exponential transition scale in meters.
	Beta float64
	// Radius is the candidate search radius in meters.
	Radius float64
	// MaxRoute is the route-search cutoff between consecutive fixes in
	// meters.
	MaxRoute float64
	// SampleEvery decodes every k-th fix (1 = all fixes).
	SampleEvery int
}

// NewMatcher builds a matcher (and its spatial index) over g.
func NewMatcher(g *network.Graph) *Matcher {
	return &Matcher{
		g:           g,
		grid:        newEdgeGrid(g, 250),
		Sigma:       6,
		Beta:        25,
		Radius:      45,
		MaxRoute:    600,
		SampleEvery: 2,
	}
}

// ErrTooShort is returned when a trace matches fewer than three segments, so
// that no segment with both boundaries observed remains after dropping the
// partial first and last segments.
var ErrTooShort = errors.New("mapmatch: trace too short to match")

// ErrBroken is returned when no candidate chain with finite probability
// exists (e.g. the trace leaves the mapped area).
var ErrBroken = errors.New("mapmatch: no feasible matching")

// candidate is a point-on-edge hypothesis for one fix.
type candidate struct {
	edge network.EdgeID
	frac float64 // position along the edge in [0, 1]
	dist float64 // meters from the fix
}

// Match decodes a GPS trace into an NCT traversal sequence.
func (m *Matcher) Match(fixes []gps.Fix) ([]traj.Entry, error) {
	step := m.SampleEvery
	if step < 1 {
		step = 1
	}
	var sampled []gps.Fix
	var cands [][]candidate
	for i := 0; i < len(fixes); i += step {
		c := m.candidates(fixes[i])
		if len(c) == 0 {
			continue // off-network blip; skip the fix
		}
		sampled = append(sampled, fixes[i])
		cands = append(cands, c)
	}
	if len(sampled) < 3 {
		return nil, ErrTooShort
	}
	states, err := m.viterbi(sampled, cands)
	if err != nil {
		return nil, err
	}
	return m.assemble(sampled, cands, states)
}

// candidates returns the point-on-edge hypotheses within Radius of f.
func (m *Matcher) candidates(f gps.Fix) []candidate {
	var out []candidate
	for _, eid := range m.grid.near(f.X, f.Y, m.Radius) {
		frac, d := m.project(eid, f.X, f.Y)
		if d <= m.Radius {
			out = append(out, candidate{edge: eid, frac: frac, dist: d})
		}
	}
	return out
}

// project returns the parametric position of the closest point on edge e to
// (x, y) and its distance.
func (m *Matcher) project(e network.EdgeID, x, y float64) (frac, dist float64) {
	ed := m.g.Edge(e)
	a, b := m.g.Vertex(ed.From), m.g.Vertex(ed.To)
	dx, dy := b.X-a.X, b.Y-a.Y
	l2 := dx*dx + dy*dy
	if l2 == 0 {
		return 0, math.Hypot(x-a.X, y-a.Y)
	}
	t := ((x-a.X)*dx + (y-a.Y)*dy) / l2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	px, py := a.X+t*dx, a.Y+t*dy
	return t, math.Hypot(x-px, y-py)
}

// viterbi returns, per sampled fix, the index of the chosen candidate.
func (m *Matcher) viterbi(fixes []gps.Fix, cands [][]candidate) ([]int, error) {
	n := len(fixes)
	prob := make([][]float64, n)
	back := make([][]int, n)
	emit := func(c candidate) float64 {
		d := c.dist / m.Sigma
		return -0.5 * d * d
	}
	prob[0] = make([]float64, len(cands[0]))
	back[0] = make([]int, len(cands[0]))
	for j, c := range cands[0] {
		prob[0][j] = emit(c)
	}
	for i := 1; i < n; i++ {
		prob[i] = make([]float64, len(cands[i]))
		back[i] = make([]int, len(cands[i]))
		straight := math.Hypot(fixes[i].X-fixes[i-1].X, fixes[i].Y-fixes[i-1].Y)
		for j, cj := range cands[i] {
			best := math.Inf(-1)
			bestK := -1
			for k, ck := range cands[i-1] {
				if prob[i-1][k] == math.Inf(-1) {
					continue
				}
				rd, ok := m.routeDistance(ck, cj)
				var trans float64
				if !ok {
					trans = -40 // heavily penalised, not impossible
				} else {
					trans = -math.Abs(rd-straight) / m.Beta
				}
				if p := prob[i-1][k] + trans; p > best {
					best, bestK = p, k
				}
			}
			if bestK < 0 {
				prob[i][j] = math.Inf(-1)
				continue
			}
			prob[i][j] = best + emit(cj)
			back[i][j] = bestK
		}
	}
	// Backtrack from the best final state.
	bestJ, bestP := -1, math.Inf(-1)
	for j, p := range prob[n-1] {
		if p > bestP {
			bestJ, bestP = j, p
		}
	}
	if bestJ < 0 {
		return nil, ErrBroken
	}
	states := make([]int, n)
	states[n-1] = bestJ
	for i := n - 1; i > 0; i-- {
		states[i-1] = back[i][states[i]]
	}
	return states, nil
}

// routeDistance returns the on-network driving distance in meters from
// point-on-edge a to point-on-edge b, or false if none exists within
// MaxRoute.
func (m *Matcher) routeDistance(a, b candidate) (float64, bool) {
	la := m.g.Edge(a.edge).Length
	lb := m.g.Edge(b.edge).Length
	if a.edge == b.edge {
		if b.frac >= a.frac {
			return (b.frac - a.frac) * la, true
		}
		// Driving backwards on a directed edge is impossible; must loop.
		// Fall through to the graph search from the edge head.
	}
	rem := (1 - a.frac) * la
	pre := b.frac * lb
	d, ok := m.vertexRoute(m.g.Edge(a.edge).To, m.g.Edge(b.edge).From, m.MaxRoute)
	if !ok {
		return 0, false
	}
	return rem + d + pre, true
}

type mmPQItem struct {
	v network.VertexID
	d float64
}
type mmPQ []mmPQItem

func (q mmPQ) Len() int            { return len(q) }
func (q mmPQ) Less(i, j int) bool  { return q[i].d < q[j].d }
func (q mmPQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *mmPQ) Push(x interface{}) { *q = append(*q, x.(mmPQItem)) }
func (q *mmPQ) Pop() interface{} {
	old := *q
	it := old[len(old)-1]
	*q = old[:len(old)-1]
	return it
}

// vertexRoute is a cutoff Dijkstra by edge length between vertices.
func (m *Matcher) vertexRoute(src, dst network.VertexID, cutoff float64) (float64, bool) {
	if src == dst {
		return 0, true
	}
	dist := map[network.VertexID]float64{src: 0}
	q := mmPQ{{v: src, d: 0}}
	for len(q) > 0 {
		it := heap.Pop(&q).(mmPQItem)
		if it.d > dist[it.v] {
			continue
		}
		if it.v == dst {
			return it.d, true
		}
		for _, eid := range m.g.Out(it.v) {
			e := m.g.Edge(eid)
			nd := it.d + e.Length
			if nd > cutoff {
				continue
			}
			if old, ok := dist[e.To]; !ok || nd < old {
				dist[e.To] = nd
				heap.Push(&q, mmPQItem{v: e.To, d: nd})
			}
		}
	}
	return 0, false
}

// vertexPath is vertexRoute that also reconstructs the edge path.
func (m *Matcher) vertexPath(src, dst network.VertexID, cutoff float64) (network.Path, bool) {
	if src == dst {
		return network.Path{}, true
	}
	dist := map[network.VertexID]float64{src: 0}
	prev := map[network.VertexID]network.EdgeID{}
	q := mmPQ{{v: src, d: 0}}
	for len(q) > 0 {
		it := heap.Pop(&q).(mmPQItem)
		if it.d > dist[it.v] {
			continue
		}
		if it.v == dst {
			var rev network.Path
			for v := dst; v != src; {
				e := prev[v]
				rev = append(rev, e)
				v = m.g.Edge(e).From
			}
			for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
				rev[i], rev[j] = rev[j], rev[i]
			}
			return rev, true
		}
		for _, eid := range m.g.Out(it.v) {
			e := m.g.Edge(eid)
			nd := it.d + e.Length
			if nd > cutoff {
				continue
			}
			if old, ok := dist[e.To]; !ok || nd < old {
				dist[e.To] = nd
				prev[e.To] = eid
				heap.Push(&q, mmPQItem{v: e.To, d: nd})
			}
		}
	}
	return nil, false
}

// assemble turns the decoded per-fix states into an NCT entry sequence:
// consecutive same-edge runs are collapsed, gaps between non-adjacent
// matched edges are filled with the shortest connecting path, boundary
// times are interpolated, and the partial first and last segments dropped.
func (m *Matcher) assemble(fixes []gps.Fix, cands [][]candidate, states []int) ([]traj.Entry, error) {
	type run struct {
		edge          network.EdgeID
		firstT, lastT int64
	}
	var runs []run
	for i := range fixes {
		e := cands[i][states[i]].edge
		if len(runs) > 0 && runs[len(runs)-1].edge == e {
			runs[len(runs)-1].lastT = fixes[i].T
			continue
		}
		runs = append(runs, run{edge: e, firstT: fixes[i].T, lastT: fixes[i].T})
	}
	// Expand into a full traversable path with per-edge boundary anchors.
	type anchored struct {
		edge   network.EdgeID
		enterT float64 // <0 if unknown (to interpolate)
	}
	var seq []anchored
	for i, r := range runs {
		if i == 0 {
			seq = append(seq, anchored{edge: r.edge, enterT: -1})
			continue
		}
		prevEdge := seq[len(seq)-1].edge
		boundary := (float64(runs[i-1].lastT) + float64(r.firstT)) / 2
		if m.g.Edge(prevEdge).To == m.g.Edge(r.edge).From {
			seq = append(seq, anchored{edge: r.edge, enterT: boundary})
			continue
		}
		// Fill the gap with the shortest connecting path.
		fill, ok := m.vertexPath(m.g.Edge(prevEdge).To, m.g.Edge(r.edge).From, m.MaxRoute*2)
		if !ok {
			return nil, ErrBroken
		}
		for _, e := range fill {
			seq = append(seq, anchored{edge: e, enterT: -1})
		}
		// The known boundary time applies at the start of the filled gap;
		// intermediate entry times are interpolated below.
		if len(fill) > 0 {
			seq[len(seq)-len(fill)].enterT = boundary
			seq = append(seq, anchored{edge: r.edge, enterT: -1})
		} else {
			seq = append(seq, anchored{edge: r.edge, enterT: boundary})
		}
	}
	if len(seq) < 3 {
		return nil, ErrTooShort
	}
	// Interpolate unknown entry times between known anchors proportionally
	// to speed-limit travel time.
	exitT := float64(runs[len(runs)-1].lastT)
	times := make([]float64, len(seq)+1)
	times[len(seq)] = exitT
	for i, a := range seq {
		times[i] = a.enterT
	}
	times[0] = float64(runs[0].firstT) // partial; dropped below anyway
	for i := 1; i <= len(seq); i++ {
		if times[i] >= 0 {
			continue
		}
		// Find the next known anchor.
		j := i
		for times[j] < 0 {
			j++
		}
		var total float64
		for k := i - 1; k < j; k++ {
			total += m.g.EstimateTT(seq[k].edge)
		}
		span := times[j] - times[i-1]
		acc := 0.0
		for k := i; k < j; k++ {
			acc += m.g.EstimateTT(seq[k-1].edge)
			times[k] = times[i-1] + span*acc/total
		}
		i = j
	}
	// Drop partial first and last segments; emit integer-second entries.
	var entries []traj.Entry
	for i := 1; i < len(seq)-1; i++ {
		et := int64(math.Round(times[i]))
		tt := int64(math.Round(times[i+1])) - et
		if tt < 1 {
			tt = 1
		}
		if len(entries) > 0 && et <= entries[len(entries)-1].T {
			et = entries[len(entries)-1].T + 1
		}
		entries = append(entries, traj.Entry{Edge: seq[i].edge, T: et, TT: int32(tt)})
	}
	if len(entries) == 0 {
		return nil, ErrTooShort
	}
	return entries, nil
}
