package traj

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

// fuzzSeedStore builds a small store whose serialisation seeds the corpus.
func fuzzSeedStore() *Store {
	s := NewStore()
	s.Add(7, []Entry{{Edge: 1, T: 100, TT: 30}, {Edge: 2, T: 130, TT: 45}})
	s.Add(9, []Entry{{Edge: 3, T: 86400, TT: 12}})
	return s
}

// FuzzReadStore drives the /extend wire-format reader with arbitrary
// bytes: hostile length prefixes, truncations and bit flips must surface
// as errors, never as panics or runaway allocations. Whenever a read
// succeeds, the store must survive a write/read round trip bit-identically
// — the decoder accepts only what the encoder can reproduce.
func FuzzReadStore(f *testing.F) {
	var seed bytes.Buffer
	if _, err := fuzzSeedStore().WriteTo(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("NCT1"))
	// A lying count with no payload behind it.
	lying := append([]byte("NCT1"), 0xff, 0xff, 0xff, 0x7f)
	f.Add(lying)
	// A lying per-trajectory length prefix.
	huge := append([]byte("NCT1"), make([]byte, 12)...)
	binary.LittleEndian.PutUint32(huge[4:], 1)
	binary.LittleEndian.PutUint32(huge[12:], 1<<30)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadStore(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if _, err := s.WriteTo(&out); err != nil {
			t.Fatalf("re-encoding an accepted store: %v", err)
		}
		s2, err := ReadStore(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding our own encoding: %v", err)
		}
		if !reflect.DeepEqual(s.trajs, s2.trajs) {
			t.Fatal("round trip changed the store")
		}
	})
}
