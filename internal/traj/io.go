package traj

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"pathhist/internal/network"
)

// Binary serialisation of a trajectory store. The format is a simple
// length-prefixed little-endian layout:
//
//	magic "NCT1" | uint32 count | per trajectory:
//	  int32 user | uint32 len | per entry: int32 edge, int64 t, int32 tt
//
// Trajectory ids are positional and therefore not stored.

var magic = [4]byte{'N', 'C', 'T', '1'}

// WriteTo serialises the store.
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v interface{}) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := write(magic); err != nil {
		return n, err
	}
	if err := write(uint32(len(s.trajs))); err != nil {
		return n, err
	}
	for i := range s.trajs {
		tr := &s.trajs[i]
		if err := write(int32(tr.User)); err != nil {
			return n, err
		}
		if err := write(uint32(len(tr.Seq))); err != nil {
			return n, err
		}
		for _, e := range tr.Seq {
			if err := write(int32(e.Edge)); err != nil {
				return n, err
			}
			if err := write(e.T); err != nil {
				return n, err
			}
			if err := write(e.TT); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// ReadStore deserialises a store written by WriteTo.
func ReadStore(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, fmt.Errorf("traj: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("traj: bad magic %q", m[:])
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("traj: reading count: %w", err)
	}
	s := NewStore()
	for i := uint32(0); i < count; i++ {
		var user int32
		var l uint32
		if err := binary.Read(br, binary.LittleEndian, &user); err != nil {
			return nil, fmt.Errorf("traj: trajectory %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &l); err != nil {
			return nil, fmt.Errorf("traj: trajectory %d: %w", i, err)
		}
		if l == 0 {
			return nil, fmt.Errorf("traj: trajectory %d: empty sequence", i)
		}
		// The length prefix is untrusted (batches arrive over HTTP): grow
		// the sequence incrementally instead of trusting l for one huge
		// up-front allocation — a lying prefix then fails with a short read
		// after at most doubling the bytes actually present.
		capHint := int(l)
		if capHint > 4096 {
			capHint = 4096
		}
		seq := make([]Entry, 0, capHint)
		for j := uint32(0); j < l; j++ {
			var edge, tt int32
			var t int64
			if err := binary.Read(br, binary.LittleEndian, &edge); err != nil {
				return nil, fmt.Errorf("traj: trajectory %d entry %d: %w", i, j, err)
			}
			if err := binary.Read(br, binary.LittleEndian, &t); err != nil {
				return nil, fmt.Errorf("traj: trajectory %d entry %d: %w", i, j, err)
			}
			if err := binary.Read(br, binary.LittleEndian, &tt); err != nil {
				return nil, fmt.Errorf("traj: trajectory %d entry %d: %w", i, j, err)
			}
			seq = append(seq, Entry{Edge: network.EdgeID(edge), T: t, TT: tt})
		}
		s.Add(UserID(user), seq)
	}
	return s, nil
}
