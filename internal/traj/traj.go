// Package traj models network-constrained trajectories (NCTs) as defined in
// Section 2.2 of the paper: a trajectory (d, u, s) of driver u with id d is a
// sequence s = <(e0,t0,TT0), ..., (e_{l-1},t_{l-1},TT_{l-1})> of traversed
// segments with entry timestamps and traversal durations. The package also
// provides the 180-second gap splitting of the ITSP preprocessing step
// (Section 5.1.3), the Dur function, a trajectory store, and binary
// serialisation.
package traj

import (
	"errors"
	"fmt"
	"sort"

	"pathhist/internal/network"
)

// ID identifies a trajectory (the set D of the paper).
type ID int32

// UserID identifies a driver (the set U of the paper). The ITSP dataset uses
// the vehicle id as the user id; so does this reproduction.
type UserID int32

// NoUser marks a trajectory without user information.
const NoUser UserID = -1

// Entry is one element of the sequence s: segment e entered at time t (unix
// seconds) and traversed in TT seconds (TT > 0).
type Entry struct {
	Edge network.EdgeID
	T    int64
	TT   int32
}

// Trajectory is a network-constrained trajectory (d, u, s).
type Trajectory struct {
	ID   ID
	User UserID
	Seq  []Entry
}

// Len returns the number of traversed segments l.
func (tr *Trajectory) Len() int { return len(tr.Seq) }

// StartTime returns tr.t0, the entry time of the first segment.
func (tr *Trajectory) StartTime() int64 {
	if len(tr.Seq) == 0 {
		return 0
	}
	return tr.Seq[0].T
}

// Path returns P_tr, the sequence of traversed edges.
func (tr *Trajectory) Path() network.Path {
	p := make(network.Path, len(tr.Seq))
	for i, e := range tr.Seq {
		p[i] = e.Edge
	}
	return p
}

// TotalDuration returns the summed traversal time of all segments in seconds.
func (tr *Trajectory) TotalDuration() int64 {
	var sum int64
	for _, e := range tr.Seq {
		sum += int64(e.TT)
	}
	return sum
}

// Validate checks the Section 2.2 invariants: strictly increasing entry
// timestamps and positive traversal durations.
func (tr *Trajectory) Validate() error {
	for i, e := range tr.Seq {
		if e.TT <= 0 {
			return fmt.Errorf("traj %d: entry %d has TT %d <= 0", tr.ID, i, e.TT)
		}
		if i > 0 && e.T <= tr.Seq[i-1].T {
			return fmt.Errorf("traj %d: timestamps not increasing at %d", tr.ID, i)
		}
	}
	return nil
}

// ErrNoSubPath is returned by Dur when the trajectory does not contain the
// path as a sub-path (Dur is then undefined per Section 2.2).
var ErrNoSubPath = errors.New("traj: trajectory does not traverse the path")

// Dur returns Dur(tr, P): the summed traversal time of the first occurrence
// of P as a contiguous sub-path of P_tr. It returns ErrNoSubPath if the
// trajectory never traverses P without detours.
func (tr *Trajectory) Dur(p network.Path) (int64, error) {
	if len(p) == 0 || len(p) > len(tr.Seq) {
		return 0, ErrNoSubPath
	}
outer:
	for i := 0; i+len(p) <= len(tr.Seq); i++ {
		for j := range p {
			if tr.Seq[i+j].Edge != p[j] {
				continue outer
			}
		}
		var sum int64
		for j := range p {
			sum += int64(tr.Seq[i+j].TT)
		}
		return sum, nil
	}
	return 0, ErrNoSubPath
}

// MaxGap is the ITSP trajectory-splitting threshold: a new trajectory starts
// if more than 180 seconds elapsed since the previous GPS point.
const MaxGap int64 = 180

// SplitGaps splits a raw traversal sequence into maximal sub-sequences whose
// consecutive entries are separated by at most MaxGap seconds of idle time
// (t_{i+1} <= t_i + TT_i + maxGap). This mirrors the ITSP preprocessing step.
func SplitGaps(seq []Entry, maxGap int64) [][]Entry {
	if len(seq) == 0 {
		return nil
	}
	var out [][]Entry
	start := 0
	for i := 1; i < len(seq); i++ {
		if seq[i].T > seq[i-1].T+int64(seq[i-1].TT)+maxGap {
			out = append(out, seq[start:i])
			start = i
		}
	}
	return append(out, seq[start:])
}

// Store holds the trajectory set T and the driver association.
type Store struct {
	trajs []Trajectory
	users map[UserID]struct{}
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{users: make(map[UserID]struct{})}
}

// Add appends a trajectory, assigning it the next id. It panics on an empty
// sequence (a programming error in the caller).
func (s *Store) Add(user UserID, seq []Entry) ID {
	if len(seq) == 0 {
		panic("traj: Add with empty sequence")
	}
	id := ID(len(s.trajs))
	s.trajs = append(s.trajs, Trajectory{ID: id, User: user, Seq: seq})
	if user != NoUser {
		s.users[user] = struct{}{}
	}
	return id
}

// Len returns |T|.
func (s *Store) Len() int { return len(s.trajs) }

// NumUsers returns the number of distinct drivers.
func (s *Store) NumUsers() int { return len(s.users) }

// Get returns the trajectory with the given id.
func (s *Store) Get(id ID) *Trajectory { return &s.trajs[id] }

// All returns the backing slice of trajectories. It must not be modified.
func (s *Store) All() []Trajectory { return s.trajs }

// NumTraversals returns the total number of segment traversals.
func (s *Store) NumTraversals() int {
	n := 0
	for i := range s.trajs {
		n += len(s.trajs[i].Seq)
	}
	return n
}

// SortByStart orders trajectories by start time and reassigns ids so that
// id order equals temporal order — the property temporal index partitioning
// relies on (Section 4.3.2). It returns the store for chaining.
func (s *Store) SortByStart() *Store {
	sort.SliceStable(s.trajs, func(i, j int) bool {
		return s.trajs[i].StartTime() < s.trajs[j].StartTime()
	})
	for i := range s.trajs {
		s.trajs[i].ID = ID(i)
	}
	return s
}

// Slice returns a deep copy of trajectories [lo, hi) as a fresh store with
// ids renumbered from 0 — the batch-carving primitive of the ingestion
// paths (an Extend batch must be its own store).
func (s *Store) Slice(lo, hi int) *Store {
	out := NewStore()
	for i := lo; i < hi; i++ {
		tr := &s.trajs[i]
		out.Add(tr.User, append([]Entry(nil), tr.Seq...))
	}
	return out
}

// QuiescentCuts returns the positions at which the store can be split into
// strictly-newer batches: every returned index i marks a trajectory that
// starts strictly after every earlier trajectory has ended, which is
// exactly the precondition snt.Index.Extend places on a batch. The store
// is sorted by start time as a side effect.
func (s *Store) QuiescentCuts() []int {
	s.SortByStart()
	var cuts []int
	var maxEnd int64
	for i := range s.trajs {
		tr := &s.trajs[i]
		if i > 0 && tr.StartTime() > maxEnd {
			cuts = append(cuts, i)
		}
		last := tr.Seq[len(tr.Seq)-1]
		if end := last.T + int64(last.TT); end > maxEnd {
			maxEnd = end
		}
	}
	return cuts
}

// MedianStart returns the median trajectory start time, used to derive the
// query set ("a random 1% sample of all trajectories ... after the median of
// the timestamps", Section 6).
func (s *Store) MedianStart() int64 {
	if len(s.trajs) == 0 {
		return 0
	}
	ts := make([]int64, len(s.trajs))
	for i := range s.trajs {
		ts[i] = s.trajs[i].StartTime()
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	return ts[len(ts)/2]
}

// TimeRange returns the earliest start and the latest segment exit time over
// all trajectories, the [0, tmax) bounds for fixed-interval fallbacks.
func (s *Store) TimeRange() (min, max int64) {
	if len(s.trajs) == 0 {
		return 0, 0
	}
	min = s.trajs[0].StartTime()
	for i := range s.trajs {
		tr := &s.trajs[i]
		if st := tr.StartTime(); st < min {
			min = st
		}
		last := tr.Seq[len(tr.Seq)-1]
		if end := last.T + int64(last.TT); end > max {
			max = end
		}
	}
	return min, max
}
