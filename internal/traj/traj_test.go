package traj

import (
	"bytes"
	"testing"
	"testing/quick"

	"pathhist/internal/network"
)

// paperTrajectories builds the example trajectory set of Section 2.2:
//
//	tr0: (0,u1) -> <(A,0,3),(B,3,4),(E,7,4)>
//	tr1: (1,u2) -> <(A,2,4),(C,6,2),(D,8,4),(E,12,5)>
//	tr2: (2,u2) -> <(A,4,3),(B,7,3),(F,10,6)>
//	tr3: (3,u1) -> <(A,6,3),(B,9,3),(E,12,4)>
func paperTrajectories(t testing.TB) (*Store, map[string]network.EdgeID) {
	t.Helper()
	_, ids := network.PaperExample()
	s := NewStore()
	add := func(user UserID, entries ...Entry) {
		s.Add(user, entries)
	}
	e := func(name string, t int64, tt int32) Entry {
		return Entry{Edge: ids[name], T: t, TT: tt}
	}
	add(1, e("A", 0, 3), e("B", 3, 4), e("E", 7, 4))
	add(2, e("A", 2, 4), e("C", 6, 2), e("D", 8, 4), e("E", 12, 5))
	add(2, e("A", 4, 3), e("B", 7, 3), e("F", 10, 6))
	add(1, e("A", 6, 3), e("B", 9, 3), e("E", 12, 4))
	return s, ids
}

func TestPaperDurExamples(t *testing.T) {
	s, ids := paperTrajectories(t)
	p := network.Path{ids["A"], ids["B"], ids["E"]}
	d0, err := s.Get(0).Dur(p)
	if err != nil || d0 != 11 {
		t.Errorf("Dur(tr0, <A,B,E>) = %d, %v; want 11", d0, err)
	}
	d3, err := s.Get(3).Dur(p)
	if err != nil || d3 != 10 {
		t.Errorf("Dur(tr3, <A,B,E>) = %d, %v; want 10", d3, err)
	}
	// tr1 does not traverse <A,B,E>.
	if _, err := s.Get(1).Dur(p); err != ErrNoSubPath {
		t.Errorf("Dur(tr1, <A,B,E>) err = %v, want ErrNoSubPath", err)
	}
	// Sub-path of tr1.
	d1, err := s.Get(1).Dur(network.Path{ids["C"], ids["D"]})
	if err != nil || d1 != 6 {
		t.Errorf("Dur(tr1, <C,D>) = %d, %v; want 6", d1, err)
	}
	// Empty path is undefined.
	if _, err := s.Get(0).Dur(nil); err != ErrNoSubPath {
		t.Errorf("Dur(tr0, <>) should be undefined")
	}
	// Path longer than the trajectory.
	long := network.Path{ids["A"], ids["B"], ids["E"], ids["F"], ids["A"]}
	if _, err := s.Get(0).Dur(long); err != ErrNoSubPath {
		t.Errorf("overlong path should be undefined")
	}
}

func TestValidate(t *testing.T) {
	s, ids := paperTrajectories(t)
	for _, tr := range s.All() {
		if err := tr.Validate(); err != nil {
			t.Errorf("paper trajectory invalid: %v", err)
		}
	}
	bad := Trajectory{Seq: []Entry{{Edge: ids["A"], T: 0, TT: 0}}}
	if bad.Validate() == nil {
		t.Error("zero TT should be invalid")
	}
	bad2 := Trajectory{Seq: []Entry{
		{Edge: ids["A"], T: 5, TT: 1}, {Edge: ids["B"], T: 5, TT: 1},
	}}
	if bad2.Validate() == nil {
		t.Error("non-increasing timestamps should be invalid")
	}
}

func TestStoreBasics(t *testing.T) {
	s, _ := paperTrajectories(t)
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.NumUsers() != 2 {
		t.Errorf("NumUsers = %d, want 2", s.NumUsers())
	}
	if s.NumTraversals() != 13 {
		t.Errorf("NumTraversals = %d, want 13", s.NumTraversals())
	}
	min, max := s.TimeRange()
	if min != 0 || max != 17 {
		t.Errorf("TimeRange = [%d, %d), want [0, 17)", min, max)
	}
	if s.MedianStart() != 4 {
		t.Errorf("MedianStart = %d, want 4", s.MedianStart())
	}
	if got := s.Get(0).TotalDuration(); got != 11 {
		t.Errorf("TotalDuration(tr0) = %d", got)
	}
	if p := s.Get(1).Path(); len(p) != 4 {
		t.Errorf("Path(tr1) = %v", p)
	}
}

func TestSortByStart(t *testing.T) {
	s := NewStore()
	s.Add(1, []Entry{{Edge: 0, T: 100, TT: 5}})
	s.Add(1, []Entry{{Edge: 0, T: 50, TT: 5}})
	s.Add(2, []Entry{{Edge: 0, T: 75, TT: 5}})
	s.SortByStart()
	var prev int64 = -1
	for i, tr := range s.All() {
		if tr.ID != ID(i) {
			t.Errorf("id %d at position %d", tr.ID, i)
		}
		if tr.StartTime() < prev {
			t.Errorf("not sorted at %d", i)
		}
		prev = tr.StartTime()
	}
}

func TestSplitGaps(t *testing.T) {
	seq := []Entry{
		{Edge: 0, T: 0, TT: 10},
		{Edge: 1, T: 10, TT: 10},   // contiguous
		{Edge: 2, T: 150, TT: 10},  // 130 s idle: within MaxGap
		{Edge: 3, T: 400, TT: 10},  // 240 s idle: split
		{Edge: 4, T: 411, TT: 10},  // contiguous-ish
		{Edge: 5, T: 7000, TT: 10}, // split again
	}
	parts := SplitGaps(seq, MaxGap)
	if len(parts) != 3 {
		t.Fatalf("parts = %d, want 3 (%v)", len(parts), parts)
	}
	if len(parts[0]) != 3 || len(parts[1]) != 2 || len(parts[2]) != 1 {
		t.Errorf("part sizes = %d,%d,%d", len(parts[0]), len(parts[1]), len(parts[2]))
	}
	if SplitGaps(nil, MaxGap) != nil {
		t.Error("empty input should return nil")
	}
	one := SplitGaps(seq[:1], MaxGap)
	if len(one) != 1 || len(one[0]) != 1 {
		t.Error("single entry should be one part")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	s, _ := paperTrajectories(t)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := ReadStore(&buf)
	if err != nil {
		t.Fatalf("ReadStore: %v", err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("round trip lost trajectories: %d vs %d", got.Len(), s.Len())
	}
	for i := 0; i < s.Len(); i++ {
		a, b := s.Get(ID(i)), got.Get(ID(i))
		if a.User != b.User || len(a.Seq) != len(b.Seq) {
			t.Fatalf("trajectory %d differs", i)
		}
		for j := range a.Seq {
			if a.Seq[j] != b.Seq[j] {
				t.Fatalf("entry %d/%d differs: %+v vs %+v", i, j, a.Seq[j], b.Seq[j])
			}
		}
	}
}

func TestReadStoreErrors(t *testing.T) {
	if _, err := ReadStore(bytes.NewReader([]byte("BAD!xxxx"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadStore(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Truncated payload.
	s, _ := paperTrajectories(t)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, err := ReadStore(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated input accepted")
	}
	// Hostile length prefixes (the format is accepted over HTTP via
	// /extend): a huge per-trajectory length must fail with a read error,
	// not a multi-GiB up-front allocation, and a zero length is invalid.
	hostile := []byte{'N', 'C', 'T', '1', 1, 0, 0, 0 /* count=1 */, 0, 0, 0, 0 /* user */, 0xFF, 0xFF, 0xFF, 0xFF /* l */}
	if _, err := ReadStore(bytes.NewReader(hostile)); err == nil {
		t.Error("huge length prefix accepted")
	}
	empty := []byte{'N', 'C', 'T', '1', 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0 /* l=0 */}
	if _, err := ReadStore(bytes.NewReader(empty)); err == nil {
		t.Error("zero-length trajectory accepted")
	}
}

// Property: SplitGaps never loses or reorders entries and every split point
// is a real gap.
func TestSplitGapsProperty(t *testing.T) {
	f := func(deltas []uint16, tts []uint8) bool {
		n := len(deltas)
		if len(tts) < n {
			n = len(tts)
		}
		if n == 0 {
			return true
		}
		seq := make([]Entry, n)
		var tcur int64
		for i := 0; i < n; i++ {
			tcur += int64(deltas[i]%400) + 1
			seq[i] = Entry{Edge: network.EdgeID(i), T: tcur, TT: int32(tts[i]%50) + 1}
			tcur = seq[i].T
		}
		parts := SplitGaps(seq, MaxGap)
		total := 0
		for pi, p := range parts {
			total += len(p)
			for i := 1; i < len(p); i++ {
				if p[i].T > p[i-1].T+int64(p[i-1].TT)+MaxGap {
					return false // gap inside a part
				}
			}
			if pi > 0 {
				prev := parts[pi-1]
				last := prev[len(prev)-1]
				if p[0].T <= last.T+int64(last.TT)+MaxGap {
					return false // split without a gap
				}
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
