package suffix

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// naiveSA is the reference implementation: sort suffixes lexicographically.
func naiveSA(text []int32) []int32 {
	sa := make([]int32, len(text))
	for i := range sa {
		sa[i] = int32(i)
	}
	sort.Slice(sa, func(a, b int) bool {
		i, j := sa[a], sa[b]
		for int(i) < len(text) && int(j) < len(text) {
			if text[i] != text[j] {
				return text[i] < text[j]
			}
			i++
			j++
		}
		return int(i) == len(text) && int(j) != len(text)
	})
	return sa
}

func symbols(s string) []int32 {
	// '$' -> 1, 'A' -> 2, 'B' -> 3, ...
	out := make([]int32, len(s))
	for i, c := range s {
		if c == '$' {
			out[i] = 1
		} else {
			out[i] = int32(c-'A') + 2
		}
	}
	return out
}

func TestPaperTrajectoryString(t *testing.T) {
	// T = ABE$ACDE$ABF$ABE$ (Section 4.1.1).
	text := symbols("ABE$ACDE$ABF$ABE$")
	k := 2 + 6 // sentinel+terminator plus A..F
	sa := Array(text, k)
	want := naiveSA(text)
	for i := range sa {
		if sa[i] != want[i] {
			t.Fatalf("SA[%d] = %d, want %d (full: %v vs %v)", i, sa[i], want[i], sa, want)
		}
	}
	// The paper: the ISA range of <A> is [4, 8) — suffixes 4..7 start
	// with A (4 trajectories, ranked after the four $-suffixes).
	isa := Inverse(sa)
	countA := 0
	for i, c := range text {
		if c == symbols("A")[0] {
			if isa[i] < 4 || isa[i] >= 8 {
				t.Errorf("suffix %d starting with A has rank %d, outside [4,8)", i, isa[i])
			}
			countA++
		}
	}
	if countA != 4 {
		t.Fatalf("expected 4 occurrences of A, got %d", countA)
	}
	// BWT sanity: it is a permutation of T.
	bwt := BWT(text, sa)
	var ct, cb [16]int
	for i := range text {
		ct[text[i]]++
		cb[bwt[i]]++
	}
	if ct != cb {
		t.Errorf("BWT not a permutation: %v vs %v", ct, cb)
	}
}

func TestArrayEdgeCases(t *testing.T) {
	if got := Array(nil, 4); len(got) != 0 {
		t.Errorf("empty text: %v", got)
	}
	if got := Array([]int32{3}, 4); len(got) != 1 || got[0] != 0 {
		t.Errorf("single symbol: %v", got)
	}
	// All-equal symbols: suffixes sort by length ascending from the end.
	got := Array([]int32{2, 2, 2, 2}, 3)
	want := []int32{3, 2, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("all-equal: %v, want %v", got, want)
		}
	}
}

func TestInverse(t *testing.T) {
	text := symbols("BANANA$")
	sa := Array(text, 32)
	isa := Inverse(sa)
	for j, i := range sa {
		if isa[i] != int32(j) {
			t.Fatalf("ISA[SA[%d]] = %d", j, isa[i])
		}
	}
}

func TestAgainstNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(120)
		k := 2 + rng.Intn(6)
		text := make([]int32, n)
		for i := range text {
			text[i] = int32(1 + rng.Intn(k-1))
		}
		got := Array(text, k)
		want := naiveSA(text)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (n=%d k=%d): SA mismatch at %d\ntext=%v\ngot =%v\nwant=%v",
					trial, n, k, i, text, got, want)
			}
		}
	}
}

func TestAgainstNaiveQuick(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		text := make([]int32, len(raw))
		for i, b := range raw {
			text[i] = int32(b%7) + 1
		}
		got := Array(text, 9)
		want := naiveSA(text)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestLargeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 200000
	text := make([]int32, n)
	for i := range text {
		text[i] = int32(1 + rng.Intn(500))
	}
	sa := Array(text, 502)
	// Spot-check sortedness at random adjacent pairs.
	less := func(i, j int32) bool {
		for int(i) < n && int(j) < n {
			if text[i] != text[j] {
				return text[i] < text[j]
			}
			i++
			j++
		}
		return int(i) == n
	}
	for trial := 0; trial < 2000; trial++ {
		p := rng.Intn(n - 1)
		if less(sa[p+1], sa[p]) {
			t.Fatalf("SA not sorted at %d", p)
		}
	}
}
