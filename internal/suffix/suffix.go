// Package suffix builds suffix arrays with the SA-IS induced-sorting
// algorithm (the role played by Yuta Mori's sais-lite in the paper, Section
// 6.2), plus the derived structures the SNT-index needs: the inverse suffix
// array ISA and the Burrows-Wheeler transform Tbwt (Section 4.1.1).
package suffix

// Array returns the suffix array of text, where each symbol lies in [1, k)
// (symbol 0 is reserved for the internal sentinel). Suffix order follows the
// usual convention that a proper prefix sorts before the longer string.
// An empty text yields an empty array.
func Array(text []int32, k int) []int32 {
	n := len(text)
	if n == 0 {
		return []int32{}
	}
	// Append the unique smallest sentinel 0, run SA-IS, then drop the
	// sentinel suffix (always rank 0).
	s := make([]int32, n+1)
	copy(s, text)
	s[n] = 0
	sa := make([]int32, n+1)
	sais(s, sa, k)
	return sa[1:]
}

// BuildAll returns the suffix array, inverse suffix array and
// Burrows-Wheeler transform of text in one call — the triple every
// partition (re)build needs (snt.Build, Index.Extend and Index.Compact all
// derive an FM-index and per-record ISA positions from the same text).
func BuildAll(text []int32, k int) (sa, isa, bwt []int32) {
	sa = Array(text, k)
	return sa, Inverse(sa), BWT(text, sa)
}

// Inverse returns ISA where ISA[SA[j]] = j.
func Inverse(sa []int32) []int32 {
	isa := make([]int32, len(sa))
	for j, i := range sa {
		isa[i] = int32(j)
	}
	return isa
}

// BWT returns the Burrows-Wheeler transform Tbwt[i] = T[SA[i]-1], with the
// conventional cyclic wrap Tbwt[i] = T[n-1] when SA[i] = 0. In the paper's
// setting T ends in '$', so the wrapped symbol is a trajectory terminator
// and never an edge; Procedure 2's edge-symbol ranks are unaffected.
func BWT(text []int32, sa []int32) []int32 {
	n := len(text)
	bwt := make([]int32, n)
	for i, p := range sa {
		if p == 0 {
			bwt[i] = text[n-1]
		} else {
			bwt[i] = text[p-1]
		}
	}
	return bwt
}

// sais computes the suffix array of s into sa. s must end with a unique
// smallest sentinel. k is an exclusive upper bound on symbol values.
func sais(s []int32, sa []int32, k int) {
	n := len(s)
	if n == 1 {
		sa[0] = 0
		return
	}
	if n == 2 {
		sa[0], sa[1] = 1, 0
		return
	}
	// Classify suffix types: true = S-type, false = L-type.
	isS := make([]bool, n)
	isS[n-1] = true
	for i := n - 2; i >= 0; i-- {
		isS[i] = s[i] < s[i+1] || (s[i] == s[i+1] && isS[i+1])
	}
	isLMS := func(i int) bool { return i > 0 && isS[i] && !isS[i-1] }

	// Bucket sizes.
	bkt := make([]int32, k+1)
	counts := make([]int32, k)
	for _, c := range s {
		counts[c]++
	}
	bktEnds := func() {
		var sum int32
		for c := 0; c < k; c++ {
			sum += counts[c]
			bkt[c] = sum // end (exclusive) of bucket c
		}
	}
	bktStarts := func() {
		var sum int32
		for c := 0; c < k; c++ {
			bkt[c] = sum // start of bucket c
			sum += counts[c]
		}
	}

	induce := func() {
		// Induce L-type from left to right.
		bktStarts()
		for i := 0; i < n; i++ {
			j := sa[i] - 1
			if sa[i] > 0 && !isS[j] {
				sa[bkt[s[j]]] = j
				bkt[s[j]]++
			}
		}
		// Induce S-type from right to left.
		bktEnds()
		for i := n - 1; i >= 0; i-- {
			j := sa[i] - 1
			if sa[i] > 0 && isS[j] {
				bkt[s[j]]--
				sa[bkt[s[j]]] = j
			}
		}
	}

	// Step 1: place LMS suffixes at bucket ends, then induce.
	for i := range sa {
		sa[i] = -1
	}
	bktEnds()
	for i := n - 1; i >= 0; i-- {
		if isLMS(i) {
			bkt[s[i]]--
			sa[bkt[s[i]]] = int32(i)
		}
	}
	// The sentinel suffix is both LMS and the minimum; it is placed above.
	induce()

	// Step 2: compact sorted LMS substrings and name them.
	nLMS := 0
	for i := 0; i < n; i++ {
		if isLMS(int(sa[i])) {
			sa[nLMS] = sa[i]
			nLMS++
		}
	}
	names := sa[nLMS:]
	for i := range names {
		names[i] = -1
	}
	lmsEqual := func(a, b int32) bool {
		if a == int32(n-1) || b == int32(n-1) {
			return a == b
		}
		i := int32(0)
		for {
			ai, bi := a+i, b+i
			if s[ai] != s[bi] || isS[ai] != isS[bi] {
				return false
			}
			if i > 0 && (isLMS(int(ai)) || isLMS(int(bi))) {
				return isLMS(int(ai)) && isLMS(int(bi))
			}
			i++
		}
	}
	var name int32 = -1
	var prev int32 = -1
	for i := 0; i < nLMS; i++ {
		pos := sa[i]
		if prev == -1 || !lmsEqual(prev, pos) {
			name++
			prev = pos
		}
		names[pos/2] = name
	}
	// Compact names in LMS order of appearance.
	reduced := make([]int32, 0, nLMS)
	lmsPos := make([]int32, 0, nLMS)
	for i := 0; i < n; i++ {
		if isLMS(i) {
			lmsPos = append(lmsPos, int32(i))
			reduced = append(reduced, names[i/2])
		}
	}

	// Step 3: sort the reduced problem.
	sortedLMS := make([]int32, nLMS)
	if int(name)+1 == nLMS {
		// All names unique: order is directly known.
		for i, nm := range reduced {
			sortedLMS[nm] = int32(i)
		}
	} else {
		sub := make([]int32, nLMS)
		sais(reduced, sub, int(name)+1)
		copy(sortedLMS, sub)
	}

	// Step 4: final induced sort with LMS suffixes in sorted order.
	for i := range sa {
		sa[i] = -1
	}
	bktEnds()
	for i := nLMS - 1; i >= 0; i-- {
		j := lmsPos[sortedLMS[i]]
		bkt[s[j]]--
		sa[bkt[s[j]]] = j
	}
	induce()
}
