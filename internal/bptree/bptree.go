// Package bptree provides an in-memory B+-tree multimap keyed by int64
// timestamps, the temporal-index tree of the original SNT-index (Section
// 4.1.2). It plays the role of Google's cpp-btree btree_multimap in the
// paper's evaluation (Section 6.3). Leaves are chained for range scans in
// both directions.
package bptree

import "sort"

// maxKeys is the node capacity. 32 keys keeps nodes around two cache lines
// of keys, comparable to the paper's in-memory B+-tree.
const maxKeys = 32

type node[V any] struct {
	keys     []int64
	children []*node[V] // nil for leaves
	vals     []V        // leaves only
	next     *node[V]   // leaf chain
	prev     *node[V]
}

func (n *node[V]) leaf() bool { return n.children == nil }

// Tree is a B+-tree multimap from int64 keys to values of type V. Duplicate
// keys are allowed; values with equal keys are kept in insertion order.
type Tree[V any] struct {
	root  *node[V]
	size  int
	first *node[V] // leftmost leaf
	last  *node[V] // rightmost leaf
}

// New returns an empty tree.
func New[V any]() *Tree[V] {
	l := &node[V]{}
	return &Tree[V]{root: l, first: l, last: l}
}

// Len returns the number of stored entries.
func (t *Tree[V]) Len() int { return t.size }

// upperBound returns the first index in keys with keys[i] > k.
func upperBound(keys []int64, k int64) int {
	return sort.Search(len(keys), func(i int) bool { return keys[i] > k })
}

// lowerBound returns the first index in keys with keys[i] >= k.
func lowerBound(keys []int64, k int64) int {
	return sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
}

// Insert adds (key, v). Equal keys append after existing ones.
func (t *Tree[V]) Insert(key int64, v V) {
	t.size++
	nk, nn := t.insert(t.root, key, v)
	if nn != nil {
		t.root = &node[V]{
			keys:     []int64{nk},
			children: []*node[V]{t.root, nn},
		}
	}
}

// insert descends into n; on child split it returns the separator key and
// the new right sibling.
func (t *Tree[V]) insert(n *node[V], key int64, v V) (int64, *node[V]) {
	if n.leaf() {
		i := upperBound(n.keys, key)
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		var zero V
		n.vals = append(n.vals, zero)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = v
		if len(n.keys) > maxKeys {
			return t.splitLeaf(n)
		}
		return 0, nil
	}
	ci := upperBound(n.keys, key)
	sk, sn := t.insert(n.children[ci], key, v)
	if sn == nil {
		return 0, nil
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = sk
	n.children = append(n.children, nil)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = sn
	if len(n.children) > maxKeys {
		return t.splitInner(n)
	}
	return 0, nil
}

func (t *Tree[V]) splitLeaf(n *node[V]) (int64, *node[V]) {
	mid := len(n.keys) / 2
	right := &node[V]{
		keys: append([]int64(nil), n.keys[mid:]...),
		vals: append([]V(nil), n.vals[mid:]...),
		next: n.next,
		prev: n,
	}
	n.keys = n.keys[:mid:mid]
	n.vals = n.vals[:mid:mid]
	if right.next != nil {
		right.next.prev = right
	} else {
		t.last = right
	}
	n.next = right
	return right.keys[0], right
}

func (t *Tree[V]) splitInner(n *node[V]) (int64, *node[V]) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := &node[V]{
		keys:     append([]int64(nil), n.keys[mid+1:]...),
		children: append([]*node[V](nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return sep, right
}

// findLeaf returns the leaf that would contain the first entry >= key.
func (t *Tree[V]) findLeaf(key int64) *node[V] {
	n := t.root
	for !n.leaf() {
		n = n.children[lowerBound(n.keys, key)]
	}
	return n
}

// AscendRange calls fn for each entry with lo <= key < hi in ascending key
// order; fn returning false stops the scan.
func (t *Tree[V]) AscendRange(lo, hi int64, fn func(key int64, v V) bool) {
	n := t.findLeaf(lo)
	// The separator convention (children[lowerBound]) can land one leaf
	// early when lo equals a separator; step forward over empty prefixes.
	for n != nil {
		i := lowerBound(n.keys, lo)
		for ; i < len(n.keys); i++ {
			if n.keys[i] >= hi {
				return
			}
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
		if n != nil && len(n.keys) > 0 && n.keys[0] >= hi {
			return
		}
		lo = minInt64
	}
}

// DescendRange calls fn for each entry with lo <= key < hi in descending key
// order; fn returning false stops the scan.
func (t *Tree[V]) DescendRange(lo, hi int64, fn func(key int64, v V) bool) {
	if hi <= lo {
		return
	}
	n := t.findLeaf(hi)
	// Entries with key == hi are excluded; the first candidate is the last
	// entry with key < hi, possibly in a previous leaf.
	for n != nil {
		i := lowerBound(n.keys, hi) - 1
		for ; i >= 0; i-- {
			if n.keys[i] < lo {
				return
			}
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.prev
		hi = maxInt64
	}
}

const (
	minInt64 = -1 << 63
	maxInt64 = 1<<63 - 1
)

// MinKey returns the smallest key (ok=false when empty).
func (t *Tree[V]) MinKey() (int64, bool) {
	n := t.first
	for n != nil && len(n.keys) == 0 {
		n = n.next
	}
	if n == nil {
		return 0, false
	}
	return n.keys[0], true
}

// MaxKey returns the largest key (ok=false when empty).
func (t *Tree[V]) MaxKey() (int64, bool) {
	n := t.last
	for n != nil && len(n.keys) == 0 {
		n = n.prev
	}
	if n == nil {
		return 0, false
	}
	return n.keys[len(n.keys)-1], true
}

// CountRange returns the number of entries with lo <= key < hi. For the
// B+-tree this walks the leaves (the CSS-tree does it in O(log n); that
// asymmetry is why the CSS estimator modes are exact, Section 4.4). Frozen
// (post-Build) callers should use the columnar index's O(log n) offset
// subtraction instead; this path remains for pre-freeze use only.
func (t *Tree[V]) CountRange(lo, hi int64) int {
	c := 0
	t.AscendRange(lo, hi, func(int64, V) bool { c++; return true })
	return c
}

// Export appends every entry to keys and vals in ascending key order and
// returns the extended slices — the freeze export: one linear walk of the
// leaf chain, instead of per-entry tree descents, to turn the tree into the
// sorted arrays a frozen columnar index is built from.
func (t *Tree[V]) Export(keys []int64, vals []V) ([]int64, []V) {
	if cap(keys)-len(keys) < t.size {
		grown := make([]int64, len(keys), len(keys)+t.size)
		copy(grown, keys)
		keys = grown
	}
	if cap(vals)-len(vals) < t.size {
		grown := make([]V, len(vals), len(vals)+t.size)
		copy(grown, vals)
		vals = grown
	}
	for n := t.first; n != nil; n = n.next {
		keys = append(keys, n.keys...)
		vals = append(vals, n.vals...)
	}
	return keys, vals
}

// Stats describes the tree's shape for the memory model.
type Stats struct {
	Leaves, Inners int
	LeafSlots      int // total allocated leaf capacity
	InnerSlots     int
}

// CollectStats walks the tree.
func (t *Tree[V]) CollectStats() Stats {
	var s Stats
	var walk func(n *node[V])
	walk = func(n *node[V]) {
		if n.leaf() {
			s.Leaves++
			s.LeafSlots += cap(n.keys)
			return
		}
		s.Inners++
		s.InnerSlots += cap(n.children)
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return s
}

// SizeBytes models the memory footprint given the per-entry payload size:
// keys, payload slots at allocated capacity, child pointers, and per-node
// header overhead (the pointer-chasing overhead CSS-trees avoid).
func (t *Tree[V]) SizeBytes(payloadBytes int) int {
	const nodeOverhead = 64
	s := t.CollectStats()
	return s.Leaves*nodeOverhead + s.LeafSlots*(8+payloadBytes) +
		s.Inners*nodeOverhead + s.InnerSlots*(8+8)
}
