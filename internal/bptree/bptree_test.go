package bptree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New[int]()
	if tr.Len() != 0 {
		t.Error("Len != 0")
	}
	if _, ok := tr.MinKey(); ok {
		t.Error("MinKey on empty")
	}
	if _, ok := tr.MaxKey(); ok {
		t.Error("MaxKey on empty")
	}
	called := false
	tr.AscendRange(0, 100, func(int64, int) bool { called = true; return true })
	tr.DescendRange(0, 100, func(int64, int) bool { called = true; return true })
	if called {
		t.Error("scan on empty tree called fn")
	}
}

func TestInsertAndScan(t *testing.T) {
	tr := New[string]()
	tr.Insert(5, "a")
	tr.Insert(3, "b")
	tr.Insert(7, "c")
	tr.Insert(5, "d") // duplicate key, insertion order preserved
	tr.Insert(1, "e")
	if tr.Len() != 5 {
		t.Fatalf("Len = %d", tr.Len())
	}
	var keys []int64
	var vals []string
	tr.AscendRange(minInt64, maxInt64, func(k int64, v string) bool {
		keys = append(keys, k)
		vals = append(vals, v)
		return true
	})
	wantK := []int64{1, 3, 5, 5, 7}
	wantV := []string{"e", "b", "a", "d", "c"}
	for i := range wantK {
		if keys[i] != wantK[i] || vals[i] != wantV[i] {
			t.Fatalf("ascend = %v %v", keys, vals)
		}
	}
	if k, _ := tr.MinKey(); k != 1 {
		t.Errorf("MinKey = %d", k)
	}
	if k, _ := tr.MaxKey(); k != 7 {
		t.Errorf("MaxKey = %d", k)
	}
	if c := tr.CountRange(3, 6); c != 3 {
		t.Errorf("CountRange(3,6) = %d, want 3", c)
	}
}

func TestEarlyStop(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 100; i++ {
		tr.Insert(int64(i), i)
	}
	n := 0
	tr.AscendRange(0, 100, func(int64, int) bool { n++; return n < 5 })
	if n != 5 {
		t.Errorf("ascend early stop visited %d", n)
	}
	n = 0
	tr.DescendRange(0, 100, func(int64, int) bool { n++; return n < 7 })
	if n != 7 {
		t.Errorf("descend early stop visited %d", n)
	}
}

// reference model for property tests
type entry struct {
	k int64
	v int
}

func checkAgainstModel(t *testing.T, model []entry, tr *Tree[int], lo, hi int64) {
	t.Helper()
	var want []entry
	for _, e := range model {
		if e.k >= lo && e.k < hi {
			want = append(want, e)
		}
	}
	sort.SliceStable(want, func(i, j int) bool { return want[i].k < want[j].k })
	var got []entry
	tr.AscendRange(lo, hi, func(k int64, v int) bool {
		got = append(got, entry{k, v})
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("ascend [%d,%d): got %d entries, want %d", lo, hi, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ascend [%d,%d) mismatch at %d: %v vs %v", lo, hi, i, got[i], want[i])
		}
	}
	// Descend must be the exact reverse (stable within equal keys is not
	// required by the API, so compare keys only).
	var gotDesc []int64
	tr.DescendRange(lo, hi, func(k int64, v int) bool {
		gotDesc = append(gotDesc, k)
		return true
	})
	if len(gotDesc) != len(want) {
		t.Fatalf("descend [%d,%d): got %d entries, want %d", lo, hi, len(gotDesc), len(want))
	}
	for i := range gotDesc {
		if gotDesc[i] != want[len(want)-1-i].k {
			t.Fatalf("descend [%d,%d) key mismatch at %d", lo, hi, i)
		}
	}
}

func TestRandomizedAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		tr := New[int]()
		var model []entry
		n := 1 + rng.Intn(2000)
		maxKey := int64(1 + rng.Intn(300)) // force duplicates
		for i := 0; i < n; i++ {
			k := int64(rng.Intn(int(maxKey)))
			tr.Insert(k, i)
			model = append(model, entry{k, i})
		}
		if tr.Len() != n {
			t.Fatalf("Len = %d, want %d", tr.Len(), n)
		}
		for q := 0; q < 20; q++ {
			lo := int64(rng.Intn(int(maxKey)+10)) - 5
			hi := lo + int64(rng.Intn(int(maxKey)))
			checkAgainstModel(t, model, tr, lo, hi)
		}
		// Full range too.
		checkAgainstModel(t, model, tr, minInt64, maxInt64)
	}
}

func TestQuickProperty(t *testing.T) {
	f := func(keys []int16, loRaw, spanRaw uint8) bool {
		tr := New[int]()
		for i, k := range keys {
			tr.Insert(int64(k), i)
		}
		lo := int64(loRaw) - 128
		hi := lo + int64(spanRaw)
		count := 0
		for _, k := range keys {
			if int64(k) >= lo && int64(k) < hi {
				count++
			}
		}
		return tr.CountRange(lo, hi) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStatsAndSize(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 10000; i++ {
		tr.Insert(int64(i%500), i)
	}
	s := tr.CollectStats()
	if s.Leaves < 10000/maxKeys {
		t.Errorf("too few leaves: %+v", s)
	}
	if s.Inners == 0 {
		t.Errorf("expected inner nodes: %+v", s)
	}
	if tr.SizeBytes(24) <= 10000*8 {
		t.Errorf("SizeBytes = %d implausibly small", tr.SizeBytes(24))
	}
}

func TestDuplicateKeySpanningLeaves(t *testing.T) {
	// Many identical keys force duplicates across leaf splits.
	tr := New[int]()
	for i := 0; i < 500; i++ {
		tr.Insert(42, i)
	}
	tr.Insert(41, -1)
	tr.Insert(43, -2)
	if c := tr.CountRange(42, 43); c != 500 {
		t.Errorf("CountRange(42,43) = %d, want 500", c)
	}
	// Insertion order must be preserved for equal keys.
	prev := -10
	tr.AscendRange(42, 43, func(k int64, v int) bool {
		if v <= prev {
			t.Fatalf("insertion order violated: %d after %d", v, prev)
		}
		prev = v
		return true
	})
	if c := tr.CountRange(43, 100); c != 1 {
		t.Errorf("CountRange(43,100) = %d, want 1", c)
	}
	// Descend excludes hi.
	n := 0
	tr.DescendRange(41, 42, func(k int64, v int) bool {
		if k != 41 {
			t.Fatalf("descend leaked key %d", k)
		}
		n++
		return true
	})
	if n != 1 {
		t.Errorf("descend [41,42) visited %d", n)
	}
}

func TestExport(t *testing.T) {
	// Random inserts (with duplicate keys) export in exactly ascending scan
	// order — the freeze contract.
	tr := New[int]()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		tr.Insert(int64(rng.Intn(300)), i)
	}
	var wantK []int64
	var wantV []int
	tr.AscendRange(minInt64, maxInt64, func(k int64, v int) bool {
		wantK = append(wantK, k)
		wantV = append(wantV, v)
		return true
	})
	keys, vals := tr.Export(nil, nil)
	if len(keys) != tr.Len() || len(vals) != tr.Len() {
		t.Fatalf("Export sizes %d/%d, want %d", len(keys), len(vals), tr.Len())
	}
	for i := range keys {
		if keys[i] != wantK[i] || vals[i] != wantV[i] {
			t.Fatalf("Export[%d] = (%d,%d), want (%d,%d)", i, keys[i], vals[i], wantK[i], wantV[i])
		}
	}
	// Export appends after an existing prefix.
	keys2, vals2 := tr.Export([]int64{-7}, []int{-7})
	if len(keys2) != tr.Len()+1 || keys2[0] != -7 || vals2[0] != -7 || keys2[1] != wantK[0] {
		t.Fatalf("Export with prefix: %d entries, head %d/%d", len(keys2), keys2[0], vals2[0])
	}
	// Empty tree exports nothing.
	if k, _ := New[int]().Export(nil, nil); len(k) != 0 {
		t.Fatalf("empty Export = %d entries", len(k))
	}
}
