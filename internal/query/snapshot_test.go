package query

import (
	"bytes"
	"testing"

	"pathhist/internal/hist"
	"pathhist/internal/snt"
	"pathhist/internal/traj"
	"pathhist/internal/workload"
)

// TestEngineSnapshotRestoresEpoch pins the epoch semantics of restart
// persistence: a restored engine republishes the epoch the snapshot was
// written at, serves bit-identical results, and its next publication
// continues the epoch sequence instead of restarting at 1.
func TestEngineSnapshotRestoresEpoch(t *testing.T) {
	cfg := workload.SmallConfig()
	ds := workload.BuildDataset(cfg)
	base, batch, ok := splitQuiescent(ds.Store, 0.5)
	if !ok {
		t.Fatal("dataset has no quiescent split point")
	}
	// Split the batch half again so one extend remains to replay after the
	// restore.
	batch1, batch2, ok := splitQuiescent(batch, 0.5)
	if !ok {
		t.Fatal("batch has no quiescent split point")
	}

	ix := snt.Build(ds.G, base, snt.Options{})
	eng := NewEngine(ix, Config{Partitioner: Partitioner{Kind: ZoneKind}, BucketWidth: 10})
	if _, err := eng.Extend(batch1); err != nil {
		t.Fatal(err)
	}
	if eng.Epoch() != 1 {
		t.Fatalf("epoch after extend = %d", eng.Epoch())
	}

	// Snapshot the published pair, restore, and compare.
	six, sepoch := eng.Snapshot()
	var buf bytes.Buffer
	if _, err := six.WriteSnapshot(&buf, sepoch); err != nil {
		t.Fatal(err)
	}
	lix, lepoch, err := snt.ReadSnapshot(ds.G, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	restored := NewEngineAt(lix, Config{Partitioner: Partitioner{Kind: ZoneKind}, BucketWidth: 10}, lepoch)
	if restored.Epoch() != 1 {
		t.Fatalf("restored epoch = %d, want 1", restored.Epoch())
	}

	qs := ds.MakeQueries(0.05, 5, cfg.Seed+1)
	if len(qs) == 0 {
		t.Fatal("no queries")
	}
	for _, q := range qs[:min(20, len(qs))] {
		spq := SPQ{Path: q.Path, Interval: snt.PeriodicAround(q.T0, 900), Filter: snt.NoFilter, Beta: 20}
		a, b := eng.TripQuery(spq), restored.TripQuery(spq)
		if a.Epoch != 1 || b.Epoch != 1 {
			t.Fatalf("epochs = %d/%d, want 1/1", a.Epoch, b.Epoch)
		}
		if !histEqual(a.Hist, b.Hist) || len(a.Subs) != len(b.Subs) {
			t.Fatalf("restored engine disagrees on %v", q.Path)
		}
	}

	// The restored engine keeps ingesting; its next publication continues
	// the sequence at epoch 2, exactly like the writer's would.
	st, err := restored.Extend(batch2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 2 || restored.Epoch() != 2 {
		t.Fatalf("epoch after restored extend = %d (stats %d), want 2", restored.Epoch(), st.Epoch)
	}
	if _, err := eng.Extend(cloneStore(batch2)); err != nil {
		t.Fatal(err)
	}
	for _, q := range qs[:min(10, len(qs))] {
		spq := SPQ{Path: q.Path, Interval: snt.PeriodicAround(q.T0, 900), Filter: snt.NoFilter, Beta: 20}
		a, b := eng.TripQuery(spq), restored.TripQuery(spq)
		if !histEqual(a.Hist, b.Hist) {
			t.Fatalf("post-restore extend disagrees on %v", q.Path)
		}
	}
}

func cloneStore(s *traj.Store) *traj.Store {
	out := traj.NewStore()
	for i := 0; i < s.Len(); i++ {
		tr := s.Get(traj.ID(i))
		out.Add(tr.User, append([]traj.Entry(nil), tr.Seq...))
	}
	return out
}

func histEqual(a, b *hist.Histogram) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Total() != b.Total() || a.Min() != b.Min() || a.Max() != b.Max() || a.BucketWidth() != b.BucketWidth() {
		return false
	}
	for x := a.Min(); x <= a.Max(); x += a.BucketWidth() {
		if a.Count(x) != b.Count(x) {
			return false
		}
	}
	return true
}
