package query

import (
	"testing"

	"pathhist/internal/network"
	"pathhist/internal/snt"
	"pathhist/internal/traj"
	"pathhist/internal/workload"
)

// splitQuiescent splits a store at a trajectory boundary where the batch
// half starts strictly after every earlier trajectory has ended — the
// precondition of snt.Index.Extend — at or after the requested fraction.
// ok is false when the dataset has no such boundary late enough.
func splitQuiescent(s *traj.Store, frac float64) (base, batch *traj.Store, ok bool) {
	s.SortByStart()
	target := int(frac * float64(s.Len()))
	var maxEnd int64
	cut := -1
	for i := 0; i < s.Len(); i++ {
		tr := s.Get(traj.ID(i))
		if i >= target && i > 0 && tr.StartTime() > maxEnd {
			cut = i
			break
		}
		last := tr.Seq[len(tr.Seq)-1]
		if end := last.T + int64(last.TT); end > maxEnd {
			maxEnd = end
		}
	}
	if cut < 0 {
		return nil, nil, false
	}
	base, batch = traj.NewStore(), traj.NewStore()
	for i := 0; i < s.Len(); i++ {
		tr := s.Get(traj.ID(i))
		seq := append([]traj.Entry(nil), tr.Seq...)
		if i < cut {
			base.Add(tr.User, seq)
		} else {
			batch.Add(tr.User, seq)
		}
	}
	return base, batch, true
}

// TestEngineExtendPublishesNewEpoch is the engine-level epoch contract:
// Extend publishes the extended index as a new epoch without rebuilding the
// engine, post-extend queries see the new batch's samples, and no cache
// entry — full result or sub-result — crosses the epoch boundary.
func TestEngineExtendPublishesNewEpoch(t *testing.T) {
	cfg := workload.SmallConfig()
	ds := workload.BuildDataset(cfg)
	base, batch, ok := splitQuiescent(ds.Store, 0.6)
	if !ok {
		t.Fatal("dataset has no quiescent split point")
	}
	ix := snt.Build(ds.G, base, snt.Options{})
	eng := NewEngine(ix, Config{Partitioner: Partitioner{Kind: ZoneKind}, BucketWidth: 10})
	if eng.Epoch() != 0 {
		t.Fatalf("fresh engine epoch = %d", eng.Epoch())
	}

	// Fixed-interval queries over paths from the base half; the explicit
	// huge upper bound keeps the cache key identical across epochs. The
	// first query targets the batch's most-traversed segment with β = 0
	// (exhaustive fixed-interval scan), so its post-extend sample mass must
	// strictly grow — direct evidence the new batch is being served.
	const until = int64(1) << 40
	counts := map[int]int{}
	for i := 0; i < batch.Len(); i++ {
		for _, en := range batch.Get(traj.ID(i)).Seq {
			counts[int(en.Edge)]++
		}
	}
	hot, hotN := -1, 0
	for e, n := range counts {
		if n > hotN {
			hot, hotN = e, n
		}
	}
	queries := []SPQ{{
		Path:     network.Path{network.EdgeID(hot)},
		Interval: snt.NewFixed(0, until),
		Filter:   snt.NoFilter,
		Beta:     0,
	}}
	for i := 0; i < base.Len() && len(queries) < 6; i += 7 {
		tr := base.Get(traj.ID(i))
		if tr.Len() < 3 {
			continue
		}
		queries = append(queries, SPQ{
			Path:     tr.Path(),
			Interval: snt.NewFixed(0, until),
			Filter:   snt.NoFilter,
			Beta:     20,
		})
	}

	cold := make([]Result, len(queries))
	for i, q := range queries {
		cold[i] = eng.TripQuery(q)
		if warm := eng.TripQuery(q); !warm.FullCacheHit {
			t.Fatalf("query %d: warm pre-extend run missed the full-result cache", i)
		}
	}

	if _, err := eng.Extend(batch); err != nil {
		t.Fatalf("Extend: %v", err)
	}
	if eng.Epoch() != 1 {
		t.Fatalf("post-extend epoch = %d, want 1", eng.Epoch())
	}
	if eng.Index() == ix {
		t.Fatal("Extend did not publish a new index snapshot")
	}
	if got, want := eng.Index().Stats().Trajs, base.Len()+batch.Len(); got != want {
		t.Fatalf("published index holds %d trajectories, want %d", got, want)
	}

	// A reference engine built from scratch over the union: post-extend
	// answers must match it exactly — stale cached facts about the old
	// epoch must never leak into them.
	all := traj.NewStore()
	for _, src := range []*traj.Store{base, batch} {
		for i := 0; i < src.Len(); i++ {
			tr := src.Get(traj.ID(i))
			all.Add(tr.User, append([]traj.Entry(nil), tr.Seq...))
		}
	}
	ref := NewEngine(snt.Build(ds.G, all, snt.Options{}),
		Config{Partitioner: Partitioner{Kind: ZoneKind}, BucketWidth: 10,
			Workers: 1, DisableCache: true, DisableFullResultCache: true})

	invalidations := 0
	for i, q := range queries {
		post := eng.TripQuery(q)
		if post.FullCacheHit {
			t.Fatalf("query %d: pre-extend full result served across the epoch boundary", i)
		}
		invalidations += post.CacheInvalidations
		want := ref.TripQuery(q)
		if err := sameResult(&want, &post); err != nil {
			t.Fatalf("query %d: post-extend result diverges from rebuilt reference: %v", i, err)
		}
		if i == 0 && post.Hist.Total() < cold[0].Hist.Total()+float64(hotN) {
			t.Fatalf("hot-segment mass %v after extend, want >= %v+%d: batch samples not served",
				post.Hist.Total(), cold[0].Hist.Total(), hotN)
		}
	}
	// The publication swept the caches eagerly: every pre-extend entry was
	// stamped with epoch 0 and must be gone (counted as purges), so the
	// post-extend queries above found no stale facts to drop lazily.
	cs, fs := eng.Cache(), eng.FullCache()
	if cs.Purges == 0 || fs.Purges == 0 {
		t.Fatalf("epoch publication purged nothing: sub %+v full %+v", cs, fs)
	}
	if invalidations != 0 {
		t.Fatalf("%d lazy invalidations despite the eager sweep (entries survived the purge)", invalidations)
	}

	// Rejected batches leave the published epoch untouched.
	if _, err := eng.Extend(base); err == nil {
		t.Fatal("overlapping batch accepted")
	}
	if eng.Epoch() != 1 {
		t.Fatalf("failed Extend moved the epoch to %d", eng.Epoch())
	}
	// And the engine remains extendable afterwards (empty batch is a no-op).
	if _, err := eng.Extend(traj.NewStore()); err != nil || eng.Epoch() != 1 {
		t.Fatalf("empty batch: err=%v epoch=%d", err, eng.Epoch())
	}
}
