package query

import (
	"fmt"
	"sync"
	"testing"

	"pathhist/internal/snt"
	"pathhist/internal/traj"
	"pathhist/internal/workload"
)

// The tests in this file pin down the tentpole contract of the parallel
// query path: speculative parallel execution, with or without the
// sub-result cache, must produce exactly the sequential Procedure 6 result.

var (
	parEnvOnce sync.Once
	parIx      *snt.Index
	parQueries []SPQ
)

// parEnv builds a shared small synthetic dataset with a mixed query set:
// periodic, user-filtered periodic, and fixed-interval queries.
func parEnv(t testing.TB) (*snt.Index, []SPQ) {
	t.Helper()
	parEnvOnce.Do(func() {
		cfg := workload.SmallConfig()
		cfg.TargetTrips = 1500
		cfg.Days = 45
		ds := workload.BuildDataset(cfg)
		parIx = snt.Build(ds.G, ds.Store, snt.Options{})
		for i, q := range ds.MakeQueries(0.05, 5, cfg.Seed+1) {
			f := snt.Filter{User: traj.NoUser, ExcludeTraj: q.Traj}
			var iv snt.Interval
			switch i % 3 {
			case 0:
				iv = snt.PeriodicAround(q.T0, DefaultAlphas[0])
			case 1:
				iv = snt.PeriodicAround(q.T0, DefaultAlphas[0])
				f.User = q.User
			default:
				iv = snt.NewFixed(0, q.T0)
			}
			parQueries = append(parQueries, SPQ{Path: q.Path, Interval: iv, Filter: f, Beta: 20})
		}
	})
	if len(parQueries) == 0 {
		t.Fatal("no queries in parallel test env")
	}
	return parIx, parQueries
}

// sameHist compares two histograms bucket by bucket.
func sameHist(a, b interface {
	Min() int
	Max() int
	Total() float64
	BucketWidth() int
	Count(int) float64
}) error {
	if a.Min() != b.Min() || a.Max() != b.Max() || a.Total() != b.Total() || a.BucketWidth() != b.BucketWidth() {
		return fmt.Errorf("shape: min %d/%d max %d/%d total %v/%v",
			a.Min(), b.Min(), a.Max(), b.Max(), a.Total(), b.Total())
	}
	for x := a.Min(); x <= a.Max(); x += a.BucketWidth() {
		if a.Count(x) != b.Count(x) {
			return fmt.Errorf("bucket at %d: %v vs %v", x, a.Count(x), b.Count(x))
		}
	}
	return nil
}

// sameResult compares the semantically defined parts of two results: the
// final sub-queries (paths, effective intervals, filters, samples,
// fallback flags) and the convolved histogram.
func sameResult(a, b *Result) error {
	if len(a.Subs) != len(b.Subs) {
		return fmt.Errorf("sub count %d vs %d", len(a.Subs), len(b.Subs))
	}
	for i := range a.Subs {
		sa, sb := &a.Subs[i], &b.Subs[i]
		if len(sa.Path) != len(sb.Path) {
			return fmt.Errorf("sub %d path len %d vs %d", i, len(sa.Path), len(sb.Path))
		}
		for j := range sa.Path {
			if sa.Path[j] != sb.Path[j] {
				return fmt.Errorf("sub %d path[%d] %d vs %d", i, j, sa.Path[j], sb.Path[j])
			}
		}
		if sa.Interval != sb.Interval {
			return fmt.Errorf("sub %d interval %v vs %v", i, sa.Interval, sb.Interval)
		}
		if sa.Filter != sb.Filter || sa.Fallback != sb.Fallback {
			return fmt.Errorf("sub %d filter/fallback mismatch", i)
		}
		if len(sa.X) != len(sb.X) {
			return fmt.Errorf("sub %d samples %d vs %d", i, len(sa.X), len(sb.X))
		}
		for j := range sa.X {
			if sa.X[j] != sb.X[j] {
				return fmt.Errorf("sub %d X[%d] %d vs %d", i, j, sa.X[j], sb.X[j])
			}
		}
	}
	if (a.Hist == nil) != (b.Hist == nil) {
		return fmt.Errorf("hist nil mismatch")
	}
	if a.Hist != nil {
		if err := sameHist(a.Hist, b.Hist); err != nil {
			return fmt.Errorf("hist: %w", err)
		}
	}
	return nil
}

// TestParallelMatchesSequential is the reconciliation correctness test: for
// every query in the workload, speculative parallel execution (with and
// without the cache, cold and warm) reproduces the sequential result
// exactly, and without the cache even the effort counters agree.
func TestParallelMatchesSequential(t *testing.T) {
	ix, qs := parEnv(t)
	// The full-result cache is disabled throughout: this test pins down the
	// sub-result cache and the effort counters of actual processing, which
	// a whole-result hit would short-circuit (see fullcache_test.go).
	base := Config{Partitioner: Partitioner{Kind: ZoneKind}, BucketWidth: 10,
		DisableFullResultCache: true}

	seqCfg := base
	seqCfg.Workers = 1
	seqCfg.DisableCache = true
	seq := NewEngine(ix, seqCfg)

	parCfg := base
	parCfg.Workers = 4
	parCfg.DisableCache = true
	par := NewEngine(ix, parCfg)

	cachedCfg := base
	cachedCfg.Workers = 4
	cached := NewEngine(ix, cachedCfg)

	for i, q := range qs {
		want := seq.TripQuery(q)
		got := par.TripQuery(q)
		if err := sameResult(&want, &got); err != nil {
			t.Fatalf("query %d parallel/no-cache: %v", i, err)
		}
		if want.IndexScans != got.IndexScans || want.EstimatorSkips != got.EstimatorSkips {
			t.Fatalf("query %d counters: scans %d vs %d, skips %d vs %d",
				i, want.IndexScans, got.IndexScans, want.EstimatorSkips, got.EstimatorSkips)
		}
		cold := cached.TripQuery(q)
		if err := sameResult(&want, &cold); err != nil {
			t.Fatalf("query %d parallel/cache cold: %v", i, err)
		}
		warm := cached.TripQuery(q)
		if err := sameResult(&want, &warm); err != nil {
			t.Fatalf("query %d parallel/cache warm: %v", i, err)
		}
		if warm.CacheHits == 0 {
			t.Fatalf("query %d: warm re-run had no cache hits (%d misses)", i, warm.CacheMisses)
		}
	}
	if st := cached.Cache(); st.Hits == 0 || st.Entries == 0 {
		t.Fatalf("cache stats not recorded: %+v", st)
	}
}

// TestConcurrentTripQuery hammers one shared engine from many goroutines
// with mixed periodic/fixed queries under -race, asserting every result is
// identical to the sequential reference.
func TestConcurrentTripQuery(t *testing.T) {
	ix, qs := parEnv(t)
	base := Config{Partitioner: Partitioner{Kind: ZoneKind}, BucketWidth: 10}

	seqCfg := base
	seqCfg.Workers = 1
	seqCfg.DisableCache = true
	seq := NewEngine(ix, seqCfg)
	want := make([]Result, len(qs))
	for i, q := range qs {
		want[i] = seq.TripQuery(q)
	}

	sharedCfg := base
	sharedCfg.Workers = 4
	shared := NewEngine(ix, sharedCfg)
	const goroutines = 8
	const rounds = 3
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i := range qs {
					j := (i + g) % len(qs)
					got := shared.TripQuery(qs[j])
					if err := sameResult(&want[j], &got); err != nil {
						errs <- fmt.Errorf("goroutine %d round %d query %d: %w", g, r, j, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
