package query

import (
	"sync"
	"testing"

	"pathhist/internal/snt"
	"pathhist/internal/traj"
	"pathhist/internal/workload"
)

// chunkStores cuts the batch half of a quiescently-split dataset into n
// strictly-newer sub-batches at quiescent boundaries where possible; the
// simple equal split works because splitQuiescent already guarantees the
// batch half starts after the base half ends, and within the batch half we
// re-split quiescently.
func chunkQuiescent(batch *traj.Store, n int) []*traj.Store {
	out := []*traj.Store{batch}
	for len(out) < n {
		last := out[len(out)-1]
		a, b, ok := splitQuiescent(last, 0.5)
		if !ok || a.Len() == 0 || b.Len() == 0 {
			break
		}
		out = append(out[:len(out)-1], a, b)
	}
	return out
}

// TestEngineCompactPublishesEquivalentEpoch: a manual Compact publishes a
// new epoch whose answers are identical to a from-scratch rebuild, while
// concurrent queries keep running against whatever snapshot they pinned.
// Run with -race to exercise the publication edges.
func TestEngineCompactPublishesEquivalentEpoch(t *testing.T) {
	cfg := workload.SmallConfig()
	ds := workload.BuildDataset(cfg)
	base, batch, ok := splitQuiescent(ds.Store, 0.5)
	if !ok {
		t.Fatal("dataset has no quiescent split point")
	}
	chunks := chunkQuiescent(batch, 4)
	if len(chunks) < 2 {
		t.Fatal("could not chunk the batch half")
	}
	eng := NewEngine(snt.Build(ds.G, base, snt.Options{}),
		Config{Partitioner: Partitioner{Kind: ZoneKind}, BucketWidth: 10})

	var queries []SPQ
	for i := 0; i < base.Len() && len(queries) < 8; i += 5 {
		tr := base.Get(traj.ID(i))
		if tr.Len() < 3 {
			continue
		}
		queries = append(queries, SPQ{
			Path:     tr.Path(),
			Interval: snt.NewFixed(0, int64(1)<<40),
			Filter:   snt.NoFilter,
			Beta:     20,
		})
	}

	// Background query load across the extend/compact churn.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_ = eng.TripQuery(queries[i%len(queries)])
			}
		}(w)
	}

	for _, ch := range chunks {
		if _, err := eng.Extend(ch); err != nil {
			t.Fatal(err)
		}
	}
	fragParts := eng.Index().NumPartitions()
	if fragParts != len(chunks)+1 {
		t.Fatalf("partitions = %d, want %d", fragParts, len(chunks)+1)
	}
	epochBefore := eng.Epoch()
	stats, err := eng.Compact()
	if err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	if stats.PartitionsBefore != fragParts || stats.PartitionsAfter != 1 {
		t.Fatalf("compaction stats: %+v", stats)
	}
	if eng.Epoch() != epochBefore+1 {
		t.Fatalf("epoch after compaction = %d, want %d", eng.Epoch(), epochBefore+1)
	}
	if n, last := eng.CompactionInfo(); n != 1 || last.PartitionsAfter != 1 {
		t.Fatalf("CompactionInfo = %d, %+v", n, last)
	}
	if eng.Index().NumPartitions() != 1 || eng.Index().CompactedFrom() != fragParts {
		t.Fatalf("published index: %v", eng.Index())
	}

	// Equivalence against a from-scratch rebuild over the union.
	all := traj.NewStore()
	for _, src := range append([]*traj.Store{base}, chunks...) {
		for i := 0; i < src.Len(); i++ {
			tr := src.Get(traj.ID(i))
			all.Add(tr.User, append([]traj.Entry(nil), tr.Seq...))
		}
	}
	ref := NewEngine(snt.Build(ds.G, all, snt.Options{}),
		Config{Partitioner: Partitioner{Kind: ZoneKind}, BucketWidth: 10,
			Workers: 1, DisableCache: true, DisableFullResultCache: true})
	for i, q := range queries {
		got := eng.TripQuery(q)
		want := ref.TripQuery(q)
		if err := sameResult(&want, &got); err != nil {
			t.Fatalf("query %d: post-compaction result diverges from rebuild: %v", i, err)
		}
	}

	// A second manual Compact finds nothing and publishes nothing.
	st2, err := eng.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st2.PartitionsBefore != st2.PartitionsAfter || eng.Epoch() != epochBefore+1 {
		t.Fatalf("no-op compaction published: %+v epoch=%d", st2, eng.Epoch())
	}
}

// TestEngineAutoCompaction: with a trigger configured, Extend keeps the
// partition count bounded by compacting behind the ingest publication.
func TestEngineAutoCompaction(t *testing.T) {
	cfg := workload.SmallConfig()
	ds := workload.BuildDataset(cfg)
	base, batch, ok := splitQuiescent(ds.Store, 0.4)
	if !ok {
		t.Fatal("dataset has no quiescent split point")
	}
	chunks := chunkQuiescent(batch, 6)
	if len(chunks) < 3 {
		t.Skip("dataset has too few quiescent boundaries")
	}
	const trigger = 3
	eng := NewEngine(snt.Build(ds.G, base, snt.Options{}),
		Config{Partitioner: Partitioner{Kind: ZoneKind}, BucketWidth: 10,
			Compaction: snt.CompactionPolicy{TriggerPartitions: trigger}})
	for bi, ch := range chunks {
		st, err := eng.Extend(ch)
		if err != nil {
			t.Fatalf("extend %d: %v", bi, err)
		}
		if got := eng.Index().NumPartitions(); got >= trigger+1 {
			t.Fatalf("extend %d: auto-compaction left %d partitions (trigger %d)", bi, got, trigger)
		}
		// Each triggering extend publishes two epochs: ingest + compaction.
		if eng.Epoch() < st.Epoch {
			t.Fatalf("extend %d: published epoch went backwards", bi)
		}
	}
	if n, _ := eng.CompactionInfo(); n == 0 {
		t.Fatal("auto-compaction never ran")
	}
	if got, want := eng.Index().Stats().Trajs, base.Len()+batch.Len(); got != want {
		t.Fatalf("trajectories after auto-compaction = %d, want %d", got, want)
	}
}

// TestCachePurgeOnPublication: epoch publication eagerly empties both
// caches of old-epoch entries and counts them as purges.
func TestCachePurgeOnPublication(t *testing.T) {
	cfg := workload.SmallConfig()
	ds := workload.BuildDataset(cfg)
	base, batch, ok := splitQuiescent(ds.Store, 0.6)
	if !ok {
		t.Fatal("dataset has no quiescent split point")
	}
	eng := NewEngine(snt.Build(ds.G, base, snt.Options{}),
		Config{Partitioner: Partitioner{Kind: ZoneKind}, BucketWidth: 10})
	var queries []SPQ
	for i := 0; i < base.Len() && len(queries) < 10; i += 3 {
		tr := base.Get(traj.ID(i))
		if tr.Len() < 2 {
			continue
		}
		queries = append(queries, SPQ{Path: tr.Path(), Interval: snt.NewFixed(0, int64(1)<<40), Filter: snt.NoFilter, Beta: 20})
	}
	for _, q := range queries {
		_ = eng.TripQuery(q)
	}
	subBefore, fullBefore := eng.Cache(), eng.FullCache()
	if subBefore.Entries == 0 || fullBefore.Entries == 0 {
		t.Fatalf("caches not warmed: %+v %+v", subBefore, fullBefore)
	}
	if _, err := eng.Extend(batch); err != nil {
		t.Fatal(err)
	}
	sub, full := eng.Cache(), eng.FullCache()
	if sub.Entries != 0 || full.Entries != 0 {
		t.Fatalf("stale entries survived the publication sweep: %+v %+v", sub, full)
	}
	if sub.Purges != int64(subBefore.Entries) || full.Purges != int64(fullBefore.Entries) {
		t.Fatalf("purge counters: sub %d want %d, full %d want %d",
			sub.Purges, subBefore.Entries, full.Purges, fullBefore.Entries)
	}
}
