package query

import (
	"testing"
	"time"

	"pathhist/internal/failpoint"
	"pathhist/internal/snt"
	"pathhist/internal/workload"
)

// TestCloseAbandonsBackgroundPrepare: Close during a background preparation
// must not wait the whole merge out. Each run's rebuild is held open by the
// failpoint; Close closes the compactor's stop channel, the preparation
// abandons at the next chunk boundary (snt.ErrCompactionAborted), and the
// abort is shutdown, not a failure — the backlog simply stays unmerged.
func TestCloseAbandonsBackgroundPrepare(t *testing.T) {
	ds := workload.BuildDataset(workload.SmallConfig())
	base, batches := ingestBatches(ds.Store.Slice(0, ds.Store.Len()))
	if len(batches) < 4 {
		t.Skipf("dataset yields only %d quiescent batches", len(batches))
	}
	// Cap merged runs at ~a third of the records so the plan has several
	// runs — the multi-run merge whose chunk boundaries Close relies on.
	probe := snt.Build(ds.G, ds.Store.Slice(0, ds.Store.Len()), snt.Options{})
	capRecords := probe.Stats().Records/3 + 1
	eng := NewEngine(snt.Build(ds.G, base, snt.Options{}), Config{
		Partitioner: Partitioner{Kind: ZoneKind},
		BucketWidth: 10,
		Compaction: snt.CompactionPolicy{
			TriggerPartitions: len(batches) + 1,
			MaxMergedRecords:  capRecords,
		},
		CompactInBackground: true,
	})
	defer eng.Close()

	const runDelay = 400 * time.Millisecond
	for b, batch := range batches {
		if b == len(batches)-1 {
			// The last Extend crosses the trigger and kicks the compactor;
			// from here every run rebuild stalls in the failpoint.
			failpoint.Enable(snt.FailpointPrepareRun, failpoint.Injection{Delay: runDelay})
			defer failpoint.Disable(snt.FailpointPrepareRun)
		}
		if _, err := eng.Extend(batch); err != nil {
			t.Fatalf("extend %d: %v", b, err)
		}
	}
	// Let the cycle reach the first run's stalled rebuild, then close.
	time.Sleep(runDelay / 8)
	started := time.Now()
	eng.Close()
	elapsed := time.Since(started)
	// An abandoned prepare costs at most the run in flight (~runDelay); a
	// full one would cost every planned run plus the apply.
	if elapsed >= 2*runDelay {
		t.Fatalf("Close took %v — it waited out the whole preparation", elapsed)
	}
	if f := eng.CompactionFailures(); f != 0 {
		t.Fatalf("shutdown abort was counted as %d compaction failures", f)
	}
	// The backlog stays for a later cycle; the engine still serves.
	if eng.Index().NumPartitions() < 2 {
		t.Fatalf("partitions = %d; the abandoned merge should have left the backlog", eng.Index().NumPartitions())
	}
}
