package query

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"pathhist/internal/traj"
)

// The tests in this file pin down the cancellation contract of
// TripQueryCtx: a canceled query returns ctx.Err() and nothing else — no
// partial Result, no poisoned cache entry, no leaked goroutine — and a
// query that wins the race against its own cancellation returns exactly
// the uncanceled result.

func TestTripQueryCtxAlreadyCanceled(t *testing.T) {
	ix, qs := parEnv(t)
	e := NewEngine(ix, Config{Partitioner: Partitioner{Kind: ZoneKind}, BucketWidth: 10, Workers: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := e.TripQueryCtx(ctx, qs[0])
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled query returned %v, want context.Canceled", err)
	}
	if res.Hist != nil || len(res.Subs) != 0 {
		t.Fatal("canceled query returned a partial result")
	}
	// The engine keeps serving afterwards.
	if _, err := e.TripQueryCtx(context.Background(), qs[0]); err != nil {
		t.Fatalf("query after a canceled one: %v", err)
	}
}

func TestTripQueryCtxExpiredDeadline(t *testing.T) {
	ix, qs := parEnv(t)
	e := NewEngine(ix, Config{Partitioner: Partitioner{Kind: ZoneKind}, BucketWidth: 10})
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := e.TripQueryCtx(ctx, qs[0]); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired-deadline query returned %v, want context.DeadlineExceeded", err)
	}
}

// TestTripQueryCtxRacingCancelNeverCorrupts fires the cancel concurrently
// with the query, so over the workload the cancellation lands at every
// possible point — before the snapshot load, mid-speculation, mid-scan,
// after completion. Whatever the interleaving: an error means a zero
// Result, success means the exact uncanceled result, and the very next
// uncanceled run of the same query must match the sequential reference
// bit for bit (i.e. no partial scan ever reached the caches).
func TestTripQueryCtxRacingCancelNeverCorrupts(t *testing.T) {
	ix, qs := parEnv(t)

	seqCfg := Config{Partitioner: Partitioner{Kind: ZoneKind}, BucketWidth: 10,
		Workers: 1, DisableCache: true, DisableFullResultCache: true}
	seq := NewEngine(ix, seqCfg)
	want := make([]Result, len(qs))
	for i, q := range qs {
		want[i] = seq.TripQuery(q)
	}

	// Both caches enabled and speculation on: the configuration with the
	// most state a partial scan could corrupt.
	e := NewEngine(ix, Config{Partitioner: Partitioner{Kind: ZoneKind}, BucketWidth: 10, Workers: 4})
	for round := 0; round < 3; round++ {
		for i, q := range qs {
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				runtime.Gosched()
				cancel()
			}()
			res, err := e.TripQueryCtx(ctx, q)
			cancel()
			if err != nil {
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("round %d query %d: err = %v, want context.Canceled", round, i, err)
				}
				if res.Hist != nil || len(res.Subs) != 0 {
					t.Fatalf("round %d query %d: partial result alongside the error", round, i)
				}
			} else if cmpErr := sameResult(&want[i], &res); cmpErr != nil {
				t.Fatalf("round %d query %d survived its cancel but differs: %v", round, i, cmpErr)
			}
			got, err := e.TripQueryCtx(context.Background(), q)
			if err != nil {
				t.Fatalf("round %d query %d re-run: %v", round, i, err)
			}
			if cmpErr := sameResult(&want[i], &got); cmpErr != nil {
				t.Fatalf("round %d query %d after canceled attempt: %v", round, i, cmpErr)
			}
		}
	}
}

// TestTripQueryCtxNoGoroutineLeak cancels many speculative queries and
// asserts the worker pool always drains: the goroutine count settles back
// to its starting level.
func TestTripQueryCtxNoGoroutineLeak(t *testing.T) {
	ix, qs := parEnv(t)
	e := NewEngine(ix, Config{Partitioner: Partitioner{Kind: ZoneKind}, BucketWidth: 10,
		Workers: 4, DisableCache: true, DisableFullResultCache: true})
	before := runtime.NumGoroutine()
	for round := 0; round < 5; round++ {
		for _, q := range qs {
			ctx, cancel := context.WithCancel(context.Background())
			go cancel()
			_, _ = e.TripQueryCtx(ctx, q)
			cancel()
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after canceled queries", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestExtendCtxAlreadyCanceled(t *testing.T) {
	ix, _ := parEnv(t)
	e := NewEngine(ix, Config{Partitioner: Partitioner{Kind: ZoneKind}, BucketWidth: 10})
	epoch := e.Epoch()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.ExtendCtx(ctx, traj.NewStore()); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled extend returned %v, want context.Canceled", err)
	}
	if e.Epoch() != epoch {
		t.Fatal("canceled extend published an epoch")
	}
}
