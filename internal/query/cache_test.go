package query

import (
	"sync"
	"testing"

	"pathhist/internal/hist"
	"pathhist/internal/network"
	"pathhist/internal/snt"
)

func testKey(i int) (network.Path, snt.Interval, snt.Filter, int) {
	return network.Path{network.EdgeID(i), network.EdgeID(i + 1)},
		snt.NewPeriodic(int64(i)*60, 900), snt.NoFilter, 20
}

func TestCacheGetPut(t *testing.T) {
	c := newSubCache(64)
	p, iv, f, beta := testKey(1)
	if _, ok, _ := c.get(p, iv, f, beta, 0); ok {
		t.Fatal("hit on empty cache")
	}
	xs := []int{100, 110, 120}
	hg := hist.FromSamples(xs, 10)
	c.put(p, iv, f, beta, 0, subValue{xs: xs, hist: hg})
	v, ok, _ := c.get(p, iv, f, beta, 0)
	if !ok || v.fallback || v.hist != hg || len(v.xs) != 3 {
		t.Fatalf("get = %+v %v", v, ok)
	}
	// Key sensitivity: every component participates.
	if _, ok, _ := c.get(p[:1], iv, f, beta, 0); ok {
		t.Error("hit with different path")
	}
	if _, ok, _ := c.get(p, iv.Resize(1800), f, beta, 0); ok {
		t.Error("hit with different interval")
	}
	if _, ok, _ := c.get(p, iv, snt.Filter{User: 3, ExcludeTraj: -1}, beta, 0); ok {
		t.Error("hit with different filter")
	}
	if _, ok, _ := c.get(p, iv, f, beta+1, 0); ok {
		t.Error("hit with different beta")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCacheEpochInvalidation: an entry stamped with one epoch is never
// served at another; the mismatching lookup drops it lazily and counts an
// invalidation.
func TestCacheEpochInvalidation(t *testing.T) {
	c := newSubCache(64)
	p, iv, f, beta := testKey(1)
	c.put(p, iv, f, beta, 3, subValue{xs: []int{7}, hist: hist.FromSamples([]int{7}, 10)})
	if _, ok, stale := c.get(p, iv, f, beta, 4); ok || !stale {
		t.Fatalf("cross-epoch lookup: ok=%v stale=%v, want miss+stale", ok, stale)
	}
	// The stale entry is gone: the same lookup is now a clean miss.
	if _, ok, stale := c.get(p, iv, f, beta, 4); ok || stale {
		t.Fatalf("second lookup: ok=%v stale=%v, want clean miss", ok, stale)
	}
	// Re-populated under the new epoch it serves hits again.
	c.put(p, iv, f, beta, 4, subValue{xs: []int{9}, hist: hist.FromSamples([]int{9}, 10)})
	if v, ok, _ := c.get(p, iv, f, beta, 4); !ok || v.xs[0] != 9 {
		t.Fatalf("post-invalidation hit = %+v %v", v, ok)
	}
	// An old-epoch reader must not see the new-epoch entry either.
	if _, ok, stale := c.get(p, iv, f, beta, 3); ok || !stale {
		t.Fatal("new-epoch entry served to an old-epoch reader")
	}
	st := c.Stats()
	if st.Invalidations != 2 {
		t.Fatalf("invalidations = %d, want 2", st.Invalidations)
	}
}

func TestCacheEviction(t *testing.T) {
	c := newSubCache(cacheShards) // one entry per shard
	var paths []network.Path
	for i := 0; i < cacheShards*4; i++ {
		p, iv, f, beta := testKey(i)
		paths = append(paths, p)
		c.put(p, iv, f, beta, 0, subValue{xs: []int{i}, hist: hist.FromSamples([]int{i + 1}, 10)})
	}
	if n := c.Len(); n > cacheShards {
		t.Fatalf("cache holds %d entries, capacity %d", n, cacheShards)
	}
	// The survivors must still be retrievable and correct.
	found := 0
	for i, p := range paths {
		_, iv, f, beta := testKey(i)
		if v, ok, _ := c.get(p, iv, f, beta, 0); ok {
			found++
			if len(v.xs) != 1 || v.xs[0] != i {
				t.Fatalf("entry %d corrupted: %v", i, v.xs)
			}
		}
	}
	if found == 0 {
		t.Fatal("eviction removed everything")
	}
}

func TestCacheLRUOrder(t *testing.T) {
	c := newSubCache(cacheShards * 2) // two entries per shard
	// Three keys that land in the same shard would be needed for a strict
	// LRU assertion; instead verify the weaker invariant directly per
	// shard: a re-accessed entry survives a subsequent insert that evicts.
	p0, iv, f, beta := testKey(0)
	c.put(p0, iv, f, beta, 0, subValue{xs: []int{0}, hist: hist.FromSamples([]int{1}, 10)})
	sh := c.shard(cacheHash(p0, iv, f, beta))
	// Fill the same shard with synthetic entries until eviction happens,
	// touching p0 before each insert so it stays most recently used.
	for i := 1; i < 64; i++ {
		p, piv, pf, pbeta := testKey(i)
		if c.shard(cacheHash(p, piv, pf, pbeta)) != sh {
			continue
		}
		c.get(p0, iv, f, beta, 0)
		c.put(p, piv, pf, pbeta, 0, subValue{xs: []int{i}, hist: hist.FromSamples([]int{i}, 10)})
	}
	if _, ok, _ := c.get(p0, iv, f, beta, 0); !ok {
		t.Fatal("most-recently-used entry was evicted")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := newSubCache(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				p, iv, f, beta := testKey(i % 100)
				if v, ok, _ := c.get(p, iv, f, beta, 0); ok {
					if len(v.xs) != 1 || v.xs[0] != i%100 {
						t.Errorf("corrupt entry for key %d: %v", i%100, v.xs)
						return
					}
					continue
				}
				c.put(p, iv, f, beta, 0, subValue{xs: []int{i % 100}, hist: hist.FromSamples([]int{i%100 + 1}, 10)})
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatalf("no lookups recorded: %+v", st)
	}
}
