package query

import (
	"sync"
	"sync/atomic"

	"pathhist/internal/hist"
	"pathhist/internal/network"
	"pathhist/internal/snt"
)

// Result caching. Two caches share one sharded-LRU implementation, both
// keyed by the strict-path-query tuple (path, interval, filter, β):
//
//   - the sub-result cache memoises completed sub-query scans (PR 1): entry
//     values are the retrieved travel times and their histogram, including
//     empty "negative" results — a periodic sub-query that fails its β
//     requirement fails deterministically, and the Procedure 1 relaxation
//     chain re-issues the same failing scans on every repeat of a query;
//   - the full-result cache memoises the final convolved histogram and
//     final sub-queries of a whole TripQuery, so a repeated trip skips
//     partitioning, scanning and convolution entirely.
//
// A cache entry is a proven fact about one index epoch — the immutable
// snapshot the scan ran against — so every entry is stamped with that epoch
// at insertion. Entries never expire within their epoch and are evicted for
// capacity (LRU); after an Extend publishes a new epoch, entries from older
// epochs are invalid facts and are dropped lazily: a lookup that finds an
// entry from a different epoch removes it, counts an invalidation, and
// reports a miss, so no cached result ever crosses an epoch boundary and a
// batch ingest costs no stop-the-world cache sweep. Each cache is sharded
// by key hash to keep lock contention negligible under concurrent query
// traffic, and each shard maintains its own LRU list.
//
// β is part of the key even though the shorthand is (path, interval,
// filter): Procedure 5 stops scanning after β matches and rejects periodic
// intervals with fewer than β matches, so the same (P, I, f) can yield
// different sample sets under different β.

// cacheShards must be a power of two.
const cacheShards = 16

// DefaultCacheCapacity is the default total number of cached sub-results.
const DefaultCacheCapacity = 4096

// DefaultFullCacheCapacity is the default total number of cached full
// results.
const DefaultFullCacheCapacity = 1024

// subValue is the payload of one cached sub-result. The xs slice and
// histogram are shared by every Result that hits the entry and must be
// treated as immutable by all readers. A nil xs is a negative entry: the
// scan completed and found nothing.
type subValue struct {
	xs       []int
	hist     *hist.Histogram
	fallback bool
}

// fullValue is the payload of one cached full result: the convolved
// histogram and the final sub-queries of a completed TripQuery. Both are
// shared with every Result that hits the entry and must be treated as
// immutable.
type fullValue struct {
	hist *hist.Histogram
	subs []SubResult
}

// cacheEntry is one cached result plus its LRU linkage.
type cacheEntry[V any] struct {
	hash  uint64
	path  network.Path // private copy, never aliased to caller memory
	iv    snt.Interval
	f     snt.Filter
	beta  int
	epoch uint64 // index epoch the value was computed against
	val   V

	prev, next *cacheEntry[V]
}

func (en *cacheEntry[V]) matches(p network.Path, iv snt.Interval, f snt.Filter, beta int) bool {
	if en.iv != iv || en.f != f || en.beta != beta || len(en.path) != len(p) {
		return false
	}
	for i, e := range p {
		if en.path[i] != e {
			return false
		}
	}
	return true
}

// cacheShard is one lock domain: a hash map for lookup plus an intrusive
// doubly-linked LRU list (head = most recent).
type cacheShard[V any] struct {
	mu         sync.Mutex
	m          map[uint64]*cacheEntry[V]
	head, tail *cacheEntry[V]
	capacity   int
}

func (s *cacheShard[V]) unlink(en *cacheEntry[V]) {
	if en.prev != nil {
		en.prev.next = en.next
	} else {
		s.head = en.next
	}
	if en.next != nil {
		en.next.prev = en.prev
	} else {
		s.tail = en.prev
	}
	en.prev, en.next = nil, nil
}

func (s *cacheShard[V]) pushFront(en *cacheEntry[V]) {
	en.next = s.head
	if s.head != nil {
		s.head.prev = en
	}
	s.head = en
	if s.tail == nil {
		s.tail = en
	}
}

// spqCache is a sharded LRU cache keyed by the strict-path-query tuple,
// shared by all queries of one Engine.
type spqCache[V any] struct {
	shards [cacheShards]cacheShard[V]
	hits   atomic.Int64
	misses atomic.Int64
	stale  atomic.Int64 // cross-epoch entries dropped lazily on lookup
	purges atomic.Int64 // stale entries removed eagerly on epoch publication
}

// newSPQCache returns a cache holding up to capacity entries in total.
func newSPQCache[V any](capacity, defaultCapacity int) *spqCache[V] {
	if capacity <= 0 {
		capacity = defaultCapacity
	}
	per := (capacity + cacheShards - 1) / cacheShards
	c := &spqCache[V]{}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]*cacheEntry[V])
		c.shards[i].capacity = per
	}
	return c
}

func newSubCache(capacity int) *spqCache[subValue] {
	return newSPQCache[subValue](capacity, DefaultCacheCapacity)
}

func newFullCache(capacity int) *spqCache[fullValue] {
	return newSPQCache[fullValue](capacity, DefaultFullCacheCapacity)
}

// cacheHash is FNV-1a over the full query key.
func cacheHash(p network.Path, iv snt.Interval, f snt.Filter, beta int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for _, e := range p {
		mix(uint64(uint32(e)))
	}
	mix(uint64(iv.Kind))
	mix(uint64(iv.Start))
	mix(uint64(iv.End))
	mix(uint64(iv.TodStart))
	mix(uint64(iv.Width))
	mix(uint64(uint32(f.User)))
	mix(uint64(uint32(f.ExcludeTraj)))
	mix(uint64(beta))
	return h
}

func (c *spqCache[V]) shard(hash uint64) *cacheShard[V] {
	return &c.shards[hash&(cacheShards-1)]
}

// get returns the cached value for the key, marking the entry most recently
// used. The returned value's contents are shared and immutable. An entry
// whose key matches but whose epoch differs is a stale fact about an older
// (or, for a reader still on a pre-extend snapshot, a newer) index state:
// it is removed, reported through stale (and the Stale counter), and the
// lookup is a miss — a cached value never crosses an epoch boundary.
func (c *spqCache[V]) get(p network.Path, iv snt.Interval, f snt.Filter, beta int, epoch uint64) (val V, ok, stale bool) {
	hash := cacheHash(p, iv, f, beta)
	s := c.shard(hash)
	s.mu.Lock()
	en := s.m[hash]
	if en != nil && en.matches(p, iv, f, beta) {
		if en.epoch == epoch {
			if s.head != en {
				s.unlink(en)
				s.pushFront(en)
			}
			val = en.val
			ok = true
		} else {
			s.unlink(en)
			delete(s.m, hash)
			stale = true
		}
	}
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
		if stale {
			c.stale.Add(1)
		}
	}
	return
}

// put stores a completed result computed against the given index epoch. The
// path is copied; the value is retained as-is (and shared with the Result
// that produced it), so its contents must never be mutated or recycled.
func (c *spqCache[V]) put(p network.Path, iv snt.Interval, f snt.Filter, beta int, epoch uint64, val V) {
	hash := cacheHash(p, iv, f, beta)
	en := &cacheEntry[V]{
		hash:  hash,
		path:  append(network.Path(nil), p...),
		iv:    iv,
		f:     f,
		beta:  beta,
		epoch: epoch,
		val:   val,
	}
	s := c.shard(hash)
	s.mu.Lock()
	if old := s.m[hash]; old != nil {
		s.unlink(old)
	}
	s.m[hash] = en
	s.pushFront(en)
	if len(s.m) > s.capacity {
		victim := s.tail
		s.unlink(victim)
		if s.m[victim.hash] == victim {
			delete(s.m, victim.hash)
		}
	}
	s.mu.Unlock()
}

// purgeStale eagerly removes every entry not stamped with the given epoch —
// the sweep an epoch publication (Extend, Compact) runs so stale entries
// release their memory immediately instead of waiting for LRU aging or a
// lazy same-key lookup. Queries racing the publication may still write (or
// read) entries of the epoch they pinned at entry; those are dropped lazily
// by the usual cross-epoch check, so the sweep is a best-effort pressure
// release, not a correctness mechanism. Returns the number of purged
// entries (also accumulated in CacheStats.Purges).
func (c *spqCache[V]) purgeStale(epoch uint64) int {
	if c == nil {
		return 0
	}
	purged := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for hash, en := range s.m {
			if en.epoch != epoch {
				s.unlink(en)
				delete(s.m, hash)
				purged++
			}
		}
		s.mu.Unlock()
	}
	if purged > 0 {
		c.purges.Add(int64(purged))
	}
	return purged
}

// Len returns the number of cached entries.
func (c *spqCache[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// CacheStats reports cumulative lookup traffic across all queries. The
// counters measure the cache (every get, including speculative attempts
// whose outcome reconciliation later discards), so the hit ratio can read
// higher than the per-Result CacheHits/CacheMisses, which book only
// adopted outcomes. Invalidations counts cross-epoch entries dropped
// lazily on lookup after an Extend (each is also a miss); Purges counts
// stale-epoch entries removed eagerly by the sweep an epoch publication
// triggers (those never surface as lookup traffic).
type CacheStats struct {
	Hits          int64
	Misses        int64
	Invalidations int64
	Purges        int64
	Entries       int
}

// Stats snapshots the cache counters.
func (c *spqCache[V]) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Invalidations: c.stale.Load(),
		Purges:        c.purges.Load(),
		Entries:       c.Len(),
	}
}
