// Package query implements the paper's online query processing (Section 3):
// a travel-time query over a full trip path is partitioned into strict path
// sub-queries (Section 3.2), each sub-query is processed against the
// SNT-index, failing sub-queries are greedily relaxed by the splitting
// function σ (Section 3.3, Procedure 1), and the per-sub-path histograms are
// convolved into the full-path travel-time histogram (Procedure 6), with
// periodic intervals adapted by shift-and-enlarge.
package query

import (
	"fmt"

	"pathhist/internal/network"
	"pathhist/internal/snt"
)

// PartitionKind enumerates the initial partitioning methods π of Section 3.2.
type PartitionKind int

// The partitioning methods. Regular needs P set; MDM behaves like Category
// but applies user predicates only on main roads (Section 6.1).
const (
	Regular      PartitionKind = iota // πp
	Category                          // πC
	ZoneKind                          // πZ
	ZoneCategory                      // πZC
	None                              // πN
	MDM                               // πMDM
)

// Partitioner is a configured partitioning method.
type Partitioner struct {
	Kind PartitionKind
	P    int // sub-path length for Regular
}

// Pi returns the paper's name for the partitioner (π1, πC, ...).
func (pt Partitioner) String() string {
	switch pt.Kind {
	case Regular:
		return fmt.Sprintf("pi%d", pt.P)
	case Category:
		return "piC"
	case ZoneKind:
		return "piZ"
	case ZoneCategory:
		return "piZC"
	case None:
		return "piN"
	case MDM:
		return "piMDM"
	}
	return "pi?"
}

// SPQ is the strict path query Q = spq(P, I, f, β) of Section 2.3.
type SPQ struct {
	Path     network.Path
	Interval snt.Interval
	Filter   snt.Filter
	Beta     int
}

// Partition applies π to the query, yielding the initial sub-query paths in
// path order. Every sub-query inherits the query's interval (the paper sets
// all initial periodic intervals to size αmin; the caller constructs the
// query's interval at that size), filter and β; πMDM drops user predicates
// on sub-paths that are not main roads.
func (pt Partitioner) Partition(g *network.Graph, q SPQ) []SPQ {
	var cuts []int // indexes where a new sub-path starts
	l := len(q.Path)
	switch pt.Kind {
	case Regular:
		p := pt.P
		if p < 1 {
			p = 1
		}
		for i := p; i < l; i += p {
			cuts = append(cuts, i)
		}
	case None:
		// no cuts
	case Category, MDM:
		for i := 1; i < l; i++ {
			if g.Edge(q.Path[i-1]).Cat != g.Edge(q.Path[i]).Cat {
				cuts = append(cuts, i)
			}
		}
	case ZoneKind:
		for i := 1; i < l; i++ {
			if g.Edge(q.Path[i-1]).Zone != g.Edge(q.Path[i]).Zone {
				cuts = append(cuts, i)
			}
		}
	case ZoneCategory:
		for i := 1; i < l; i++ {
			a, b := g.Edge(q.Path[i-1]), g.Edge(q.Path[i])
			if a.Zone != b.Zone || a.Cat != b.Cat {
				cuts = append(cuts, i)
			}
		}
	}
	var out []SPQ
	start := 0
	emit := func(end int) {
		sub := SPQ{
			Path:     q.Path[start:end],
			Interval: q.Interval,
			Filter:   q.Filter,
			Beta:     q.Beta,
		}
		if pt.Kind == MDM && !g.Edge(sub.Path[0]).Cat.IsMainRoad() {
			// πMDM: custom (user) predicates only on main roads.
			sub.Filter = sub.Filter.DropPredicates()
		}
		out = append(out, sub)
		start = end
	}
	for _, c := range cuts {
		emit(c)
	}
	emit(l)
	return out
}
