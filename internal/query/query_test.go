package query

import (
	"sort"
	"testing"

	"pathhist/internal/card"
	"pathhist/internal/network"
	"pathhist/internal/snt"
	"pathhist/internal/traj"
)

// paperStore builds the Section 2.2 trajectory set; dropTr2 removes the
// only trajectory traversing F (to exercise the estimateTT fallback).
func paperStore(t testing.TB, dropTr2 bool) (*network.Graph, map[string]network.EdgeID, *traj.Store) {
	t.Helper()
	g, ids := network.PaperExample()
	s := traj.NewStore()
	e := func(name string, tt int64, d int32) traj.Entry {
		return traj.Entry{Edge: ids[name], T: tt, TT: d}
	}
	s.Add(1, []traj.Entry{e("A", 0, 3), e("B", 3, 4), e("E", 7, 4)})
	s.Add(2, []traj.Entry{e("A", 2, 4), e("C", 6, 2), e("D", 8, 4), e("E", 12, 5)})
	if !dropTr2 {
		s.Add(2, []traj.Entry{e("A", 4, 3), e("B", 7, 3), e("F", 10, 6)})
	}
	s.Add(1, []traj.Entry{e("A", 6, 3), e("B", 9, 3), e("E", 12, 4)})
	return g, ids, s
}

func path(ids map[string]network.EdgeID, names ...string) network.Path {
	var p network.Path
	for _, n := range names {
		p = append(p, ids[n])
	}
	return p
}

func pathNames(ids map[string]network.EdgeID, p network.Path) string {
	rev := map[network.EdgeID]string{}
	for n, id := range ids {
		rev[id] = n
	}
	out := ""
	for _, e := range p {
		out += rev[e]
	}
	return out
}

func subPathNames(ids map[string]network.EdgeID, subs []SPQ) []string {
	var out []string
	for _, s := range subs {
		out = append(out, pathNames(ids, s.Path))
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPartitioningSection32 checks every example of Section 3.2 on the path
// <A,C,D,E>.
func TestPartitioningSection32(t *testing.T) {
	g, ids := network.PaperExample()
	q := SPQ{Path: path(ids, "A", "C", "D", "E"), Interval: snt.NewPeriodic(0, 900), Filter: snt.NoFilter, Beta: 2}
	cases := []struct {
		pt   Partitioner
		want []string
	}{
		{Partitioner{Kind: Regular, P: 1}, []string{"A", "C", "D", "E"}},
		{Partitioner{Kind: Regular, P: 2}, []string{"AC", "DE"}},
		{Partitioner{Kind: Regular, P: 3}, []string{"ACD", "E"}},
		{Partitioner{Kind: Category}, []string{"A", "CD", "E"}},
		{Partitioner{Kind: ZoneKind}, []string{"A", "CDE"}},
		{Partitioner{Kind: ZoneCategory}, []string{"A", "CD", "E"}},
		{Partitioner{Kind: None}, []string{"ACDE"}},
	}
	for _, c := range cases {
		got := subPathNames(ids, c.pt.Partition(g, q))
		if !equalStrings(got, c.want) {
			t.Errorf("%v: %v, want %v", c.pt, got, c.want)
		}
	}
}

func TestPartitionerNames(t *testing.T) {
	names := map[string]Partitioner{
		"pi1": {Kind: Regular, P: 1}, "pi3": {Kind: Regular, P: 3},
		"piC": {Kind: Category}, "piZ": {Kind: ZoneKind},
		"piZC": {Kind: ZoneCategory}, "piN": {Kind: None}, "piMDM": {Kind: MDM},
	}
	for want, pt := range names {
		if pt.String() != want {
			t.Errorf("%v != %s", pt, want)
		}
	}
	if SigmaR.String() != "sigmaR" || SigmaL.String() != "sigmaL" {
		t.Error("splitter names")
	}
}

func TestMDMFilterSelectivity(t *testing.T) {
	g, ids := network.PaperExample()
	q := SPQ{
		Path:     path(ids, "A", "C", "D", "E"),
		Interval: snt.NewPeriodic(0, 900),
		Filter:   snt.Filter{User: 7, ExcludeTraj: -1},
		Beta:     2,
	}
	subs := Partitioner{Kind: MDM}.Partition(g, q)
	// A (motorway) and E (primary) are main roads and keep the user
	// filter; C,D (secondary) drop it.
	if !subs[0].Filter.HasPredicate() {
		t.Error("motorway sub-query lost its user filter")
	}
	if subs[1].Filter.HasPredicate() {
		t.Error("secondary sub-query kept its user filter")
	}
	if !subs[2].Filter.HasPredicate() {
		t.Error("primary sub-query lost its user filter")
	}
	// ExcludeTraj survives the drop.
	if subs[1].Filter.ExcludeTraj != -1 {
		t.Error("ExcludeTraj mangled")
	}
}

func engine(t testing.TB, g *network.Graph, s *traj.Store, cfg Config) (*Engine, *snt.Index) {
	t.Helper()
	ix := snt.Build(g, s, snt.Options{})
	if cfg.BucketWidth == 0 {
		cfg.BucketWidth = 1
	}
	return NewEngine(ix, cfg), ix
}

func TestTripQueryPaperExample(t *testing.T) {
	g, ids, s := paperStore(t, false)
	e, _ := engine(t, g, s, Config{Partitioner: Partitioner{Kind: None}})
	res := e.TripQuery(SPQ{
		Path:     path(ids, "A", "B", "E"),
		Interval: snt.NewFixed(0, 15),
		Filter:   snt.Filter{User: 1, ExcludeTraj: -1},
		Beta:     2,
	})
	if len(res.Subs) != 1 {
		t.Fatalf("subs = %d", len(res.Subs))
	}
	xs := append([]int(nil), res.Subs[0].X...)
	sort.Ints(xs)
	if len(xs) != 2 || xs[0] != 10 || xs[1] != 11 {
		t.Fatalf("X = %v", xs)
	}
	// H = {[10,11): 1; [11,12): 1}.
	if res.Hist.Count(10) != 1 || res.Hist.Count(11) != 1 {
		t.Errorf("histogram wrong: %v %v", res.Hist.Count(10), res.Hist.Count(11))
	}
	if res.PredictedMean() != 10.5 {
		t.Errorf("PredictedMean = %v", res.PredictedMean())
	}
	if res.IndexScans != 1 || res.EstimatorSkips != 0 {
		t.Errorf("counters: %d scans, %d skips", res.IndexScans, res.EstimatorSkips)
	}
	if res.Elapsed <= 0 {
		t.Error("Elapsed not measured")
	}
}

func TestTripQuerySplitConvolution(t *testing.T) {
	// The Section 2.3 split: Q1 = spq(<A,B>, ...) and Q2 = spq(<E>, ...)
	// yield H = H1 * H2 = {[10,11):4; [11,12):4; [12,13):1}.
	g, ids, s := paperStore(t, false)
	e, _ := engine(t, g, s, Config{Partitioner: Partitioner{Kind: Regular, P: 2}})
	res := e.TripQuery(SPQ{
		Path:     path(ids, "A", "B", "E"),
		Interval: snt.NewFixed(0, 15),
		Filter:   snt.NoFilter,
		Beta:     3,
	})
	if len(res.Subs) != 2 {
		t.Fatalf("subs = %d", len(res.Subs))
	}
	if got := res.Hist.Count(10); got != 4 {
		t.Errorf("H[10,11) = %v, want 4", got)
	}
	if got := res.Hist.Count(11); got != 4 {
		t.Errorf("H[11,12) = %v, want 4", got)
	}
	if got := res.Hist.Count(12); got != 1 {
		t.Errorf("H[12,13) = %v, want 1", got)
	}
	if got := res.AvgSubPathLen(); got != 1.5 {
		t.Errorf("AvgSubPathLen = %v", got)
	}
}

func TestRelaxationSplitsToSegments(t *testing.T) {
	// Periodic query over <A,B,E> with β=3: only 2 trajectories traverse
	// the full path, so the engine widens through A and then splits down
	// to single segments, each satisfying β=3.
	g, ids, s := paperStore(t, false)
	e, _ := engine(t, g, s, Config{Partitioner: Partitioner{Kind: None}})
	res := e.TripQuery(SPQ{
		Path:     path(ids, "A", "B", "E"),
		Interval: snt.PeriodicAround(0, 15*60),
		Filter:   snt.NoFilter,
		Beta:     3,
	})
	var names []string
	for _, sub := range res.Subs {
		names = append(names, pathNames(ids, sub.Path))
		if len(sub.X) < 3 {
			t.Errorf("sub %s has only %d samples", pathNames(ids, sub.Path), len(sub.X))
		}
	}
	if !equalStrings(names, []string{"A", "B", "E"}) {
		t.Fatalf("final subs = %v", names)
	}
	// The sub-paths always partition the query path in order.
	if res.AvgSubPathLen() != 1 {
		t.Errorf("AvgSubPathLen = %v", res.AvgSubPathLen())
	}
}

func TestEstimateFallbackTerminal(t *testing.T) {
	// With tr2 dropped, F has no data at all: the engine must end in the
	// terminal fixed-interval sub-query and return estimateTT(F) = 36 s.
	g, ids, s := paperStore(t, true)
	e, _ := engine(t, g, s, Config{Partitioner: Partitioner{Kind: None}})
	res := e.TripQuery(SPQ{
		Path:     path(ids, "A", "B", "F"),
		Interval: snt.PeriodicAround(0, 15*60),
		Filter:   snt.NoFilter,
		Beta:     2,
	})
	last := res.Subs[len(res.Subs)-1]
	if pathNames(ids, last.Path) != "F" {
		t.Fatalf("last sub = %s", pathNames(ids, last.Path))
	}
	if !last.Fallback {
		t.Error("expected fallback flag")
	}
	if len(last.X) != 1 || last.X[0] != 36 {
		t.Errorf("fallback X = %v, want {36}", last.X)
	}
	// A segment with an empty ISA range falls back at the FM-index check
	// (Procedure 5 line 2-4 + the estimateTT intent), so no terminal
	// fixed-interval relaxation round is needed: the FM-index saves the
	// futile temporal scans (Section 4.1).
}

func TestTerminalFixedIntervalReached(t *testing.T) {
	// F has data (tr2 kept) but a user filter for a driver who never
	// drove it; relaxation must drop the predicate and still answer.
	g, ids, s := paperStore(t, false)
	e, _ := engine(t, g, s, Config{Partitioner: Partitioner{Kind: None}})
	res := e.TripQuery(SPQ{
		Path:     path(ids, "F"),
		Interval: snt.PeriodicAround(10, 15*60),
		Filter:   snt.Filter{User: 1, ExcludeTraj: -1}, // F was driven by user 2 only
		Beta:     1,
	})
	if len(res.Subs) != 1 {
		t.Fatalf("subs = %d", len(res.Subs))
	}
	sub := res.Subs[0]
	if sub.Filter.HasPredicate() {
		t.Error("user predicate should have been dropped")
	}
	if len(sub.X) != 1 || sub.X[0] != 6 || sub.Fallback {
		t.Errorf("X = %v fallback=%v, want tr2's 6 s traversal", sub.X, sub.Fallback)
	}
}

func TestSigmaLvsSigmaR(t *testing.T) {
	// Splitting <A,B,F> with β=3: σL keeps the longest prefix <A,B>
	// (3 matches); σR cuts in half after <A>.
	g, ids, s := paperStore(t, false)
	for _, sp := range []Splitter{SigmaR, SigmaL} {
		e, _ := engine(t, g, s, Config{Partitioner: Partitioner{Kind: None}, Splitter: sp})
		res := e.TripQuery(SPQ{
			Path:     path(ids, "A", "B", "F"),
			Interval: snt.PeriodicAround(0, 15*60),
			Filter:   snt.NoFilter,
			Beta:     3,
		})
		var names []string
		for _, sub := range res.Subs {
			names = append(names, pathNames(ids, sub.Path))
		}
		if sp == SigmaL {
			if names[0] != "AB" {
				t.Errorf("sigmaL first sub = %v", names)
			}
		} else {
			if names[0] != "A" {
				t.Errorf("sigmaR first sub = %v", names)
			}
		}
		// F always ends as its own sub-query (only 1 trajectory).
		if names[len(names)-1] != "F" {
			t.Errorf("%v: last sub = %v", sp, names)
		}
	}
}

func TestShiftAndEnlarge(t *testing.T) {
	g, ids, s := paperStore(t, false)
	e, _ := engine(t, g, s, Config{Partitioner: Partitioner{Kind: Regular, P: 1}})
	res := e.TripQuery(SPQ{
		Path:     path(ids, "A", "B"),
		Interval: snt.PeriodicAround(0, 15*60),
		Filter:   snt.NoFilter,
		Beta:     2,
	})
	if len(res.Subs) != 2 {
		t.Fatalf("subs = %d", len(res.Subs))
	}
	first, second := res.Subs[0], res.Subs[1]
	// The second interval starts Σ H^min later and is Σ (H^max - H^min)
	// wider than the base interval.
	wantShift := int64(first.Hist.Min())
	wantGrow := int64(first.Hist.Max() - first.Hist.Min())
	base := snt.PeriodicAround(0, 15*60)
	if second.Interval.TodStart != snt.NewPeriodic(base.TodStart+wantShift, base.Width).TodStart {
		t.Errorf("second TodStart = %d, want base+%d", second.Interval.TodStart, wantShift)
	}
	if second.Interval.Width != base.Width+wantGrow {
		t.Errorf("second width = %d, want %d", second.Interval.Width, base.Width+wantGrow)
	}
}

func TestEstimatorSkipsScans(t *testing.T) {
	g, ids, s := paperStore(t, true) // F has no data
	ix := snt.Build(g, s, snt.Options{})
	plain := NewEngine(ix, Config{Partitioner: Partitioner{Kind: None}, BucketWidth: 1})
	est := NewEngine(ix, Config{
		Partitioner: Partitioner{Kind: None},
		BucketWidth: 1,
		Estimator:   card.New(ix, card.ISA),
	})
	q := SPQ{
		Path:     path(ids, "A", "B", "F"),
		Interval: snt.PeriodicAround(0, 15*60),
		Filter:   snt.NoFilter,
		Beta:     2,
	}
	rp := plain.TripQuery(q)
	re := est.TripQuery(q)
	if re.EstimatorSkips == 0 {
		t.Error("ISA estimator should skip zero-count sub-queries")
	}
	if re.IndexScans >= rp.IndexScans {
		t.Errorf("estimator should reduce scans: %d vs %d", re.IndexScans, rp.IndexScans)
	}
	// Same final answer.
	if rp.PredictedMean() != re.PredictedMean() {
		t.Errorf("estimator changed the result: %v vs %v", rp.PredictedMean(), re.PredictedMean())
	}
}

func TestFixedIntervalQueryAcceptsUnderBeta(t *testing.T) {
	// SPQ-only queries accept non-empty result sets below β without
	// splitting (Section 4.2 / Figure 7c).
	g, ids, s := paperStore(t, false)
	e, _ := engine(t, g, s, Config{Partitioner: Partitioner{Kind: None}})
	res := e.TripQuery(SPQ{
		Path:     path(ids, "A", "B", "E"),
		Interval: snt.NewFixed(0, 20),
		Filter:   snt.NoFilter,
		Beta:     50,
	})
	if len(res.Subs) != 1 || len(res.Subs[0].X) != 2 {
		t.Fatalf("fixed under-beta: %d subs, X=%v", len(res.Subs), res.Subs[0].X)
	}
}

func TestSubPathsPartitionQueryPath(t *testing.T) {
	// Invariant: final sub-paths concatenate to the query path for every
	// partitioner and splitter combination.
	g, ids, s := paperStore(t, false)
	full := path(ids, "A", "C", "D", "E")
	for _, pk := range []Partitioner{
		{Kind: Regular, P: 1}, {Kind: Regular, P: 2}, {Kind: Regular, P: 3},
		{Kind: Category}, {Kind: ZoneKind}, {Kind: ZoneCategory}, {Kind: None}, {Kind: MDM},
	} {
		for _, sp := range []Splitter{SigmaR, SigmaL} {
			e, _ := engine(t, g, s, Config{Partitioner: pk, Splitter: sp})
			res := e.TripQuery(SPQ{
				Path:     full,
				Interval: snt.PeriodicAround(2, 15*60),
				Filter:   snt.NoFilter,
				Beta:     4,
			})
			var concat network.Path
			for _, sub := range res.Subs {
				concat = append(concat, sub.Path...)
			}
			if len(concat) != len(full) {
				t.Fatalf("%v/%v: concat %d segs, want %d", pk, sp, len(concat), len(full))
			}
			for i := range full {
				if concat[i] != full[i] {
					t.Fatalf("%v/%v: sub-paths do not partition the query path", pk, sp)
				}
			}
			if res.Hist == nil || res.Hist.Total() == 0 {
				t.Fatalf("%v/%v: empty final histogram", pk, sp)
			}
		}
	}
}

func TestZoneBetas(t *testing.T) {
	// Rural zone (segment A) gets a lax requirement of 1 while city
	// segments keep β=4: the rural sub-query stays whole at β=1 (4
	// matches needed otherwise would also pass... so invert: rural gets
	// β=1 and city gets an unreachable β; zone-specific values must be
	// observable in the amount of splitting).
	g, ids, s := paperStore(t, false)
	ix := snt.Build(g, s, snt.Options{})
	base := SPQ{
		Path:     path(ids, "A", "C", "D", "E"),
		Interval: snt.PeriodicAround(2, 15*60),
		Filter:   snt.NoFilter,
		Beta:     3,
	}
	// Without zone overrides: <C,D> has only one strict traversal (tr1),
	// so πZC splits it down to <C>, <D> each with a single sample after
	// predicate relaxation.
	plain := NewEngine(ix, Config{Partitioner: Partitioner{Kind: ZoneCategory}, BucketWidth: 1})
	rp := plain.TripQuery(base)
	// With a relaxed city requirement of 1, <C,D> succeeds directly.
	zoned := NewEngine(ix, Config{
		Partitioner: Partitioner{Kind: ZoneCategory},
		BucketWidth: 1,
		ZoneBetas: map[network.Zone]int{
			network.ZoneCity: 1,
		},
	})
	rz := zoned.TripQuery(base)
	if len(rz.Subs) >= len(rp.Subs) {
		t.Fatalf("zone β=1 should reduce splitting: %d vs %d subs", len(rz.Subs), len(rp.Subs))
	}
	var names []string
	for _, sub := range rz.Subs {
		names = append(names, pathNames(ids, sub.Path))
	}
	if !equalStrings(names, []string{"A", "CD", "E"}) {
		t.Fatalf("zoned subs = %v", names)
	}
}

func TestDisableShiftEnlarge(t *testing.T) {
	g, ids, s := paperStore(t, false)
	ix := snt.Build(g, s, snt.Options{})
	mk := func(disable bool) Result {
		eng := NewEngine(ix, Config{
			Partitioner:         Partitioner{Kind: Regular, P: 1},
			BucketWidth:         1,
			DisableShiftEnlarge: disable,
		})
		return eng.TripQuery(SPQ{
			Path:     path(ids, "A", "B"),
			Interval: snt.PeriodicAround(0, 15*60),
			Filter:   snt.NoFilter,
			Beta:     2,
		})
	}
	withShift := mk(false)
	without := mk(true)
	baseIv := snt.PeriodicAround(0, 15*60)
	if without.Subs[1].Interval != baseIv {
		t.Errorf("disabled shift still adapted the interval: %+v", without.Subs[1].Interval)
	}
	if withShift.Subs[1].Interval == baseIv {
		t.Errorf("enabled shift did not adapt the interval")
	}
}
