package query

import (
	"sync"
	"testing"
	"time"

	"pathhist/internal/snt"
	"pathhist/internal/traj"
	"pathhist/internal/workload"
)

// ingestBatches cuts a store into a base plus as many quiescent Extend
// batches as the dataset allows.
func ingestBatches(s *traj.Store) (*traj.Store, []*traj.Store) {
	cuts := s.QuiescentCuts()
	if len(cuts) < 2 {
		return s, nil
	}
	base := s.Slice(0, cuts[0])
	batches := make([]*traj.Store, 0, len(cuts))
	for b := range cuts {
		hi := s.Len()
		if b+1 < len(cuts) {
			hi = cuts[b+1]
		}
		batches = append(batches, s.Slice(cuts[b], hi))
	}
	return base, batches
}

// TestBackgroundCompaction is the engine-level contract for the off-lock
// merge path: with CompactInBackground set, triggering Extends return
// without merging, the background goroutine publishes compacted epochs on
// its own, queries run concurrently throughout (under -race this is the
// reader/preparer/applier interleaving proof), and once the dust settles
// results are bit-identical to a from-scratch rebuild over the same data.
func TestBackgroundCompaction(t *testing.T) {
	ds := workload.BuildDataset(workload.SmallConfig())
	base, batches := ingestBatches(ds.Store.Slice(0, ds.Store.Len()))
	if len(batches) < 4 {
		t.Skipf("dataset yields only %d quiescent batches", len(batches))
	}
	eng := NewEngine(snt.Build(ds.G, base, snt.Options{}), Config{
		Partitioner:         Partitioner{Kind: ZoneKind},
		BucketWidth:         10,
		Compaction:          snt.CompactionPolicy{TriggerPartitions: 3},
		CompactInBackground: true,
	})
	defer eng.Close()

	// Concurrent query load across the whole ingest: every query must see a
	// consistent snapshot regardless of which merges publish when.
	const until = int64(1) << 40
	queries := make([]SPQ, 0, 6)
	for i := 0; i < base.Len() && len(queries) < 6; i += 5 {
		tr := base.Get(traj.ID(i))
		if tr.Len() < 2 {
			continue
		}
		queries = append(queries, SPQ{
			Path:     tr.Path(),
			Interval: snt.NewFixed(0, until),
			Filter:   snt.NoFilter,
			Beta:     10,
		})
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				eng.TripQuery(queries[(i+w)%len(queries)])
			}
		}(w)
	}

	total := base.Len()
	for b, batch := range batches {
		st, err := eng.Extend(batch)
		if err != nil {
			t.Fatalf("extend %d: %v", b, err)
		}
		total += batch.Len()
		if st.TotalTrajectories != total {
			t.Fatalf("extend %d: total %d, want %d", b, st.TotalTrajectories, total)
		}
	}
	// The merges are asynchronous: wait for the backlog to drain below the
	// trigger (each publication is observable through CompactionInfo).
	deadline := time.Now().Add(30 * time.Second)
	for {
		if eng.Index().NumPartitions() < 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background compaction never drained: %d partitions, %d compactions, %d failures",
				eng.Index().NumPartitions(), func() int64 { n, _ := eng.CompactionInfo(); return n }(),
				eng.CompactionFailures())
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if n, last := eng.CompactionInfo(); n == 0 || last.Epoch == 0 {
		t.Fatalf("no background compaction published: n=%d last=%+v", n, last)
	}
	if f := eng.CompactionFailures(); f != 0 {
		t.Fatalf("%d background compaction failures", f)
	}
	if got := eng.Index().Stats().Trajs; got != total {
		t.Fatalf("post-compaction index holds %d trajectories, want %d", got, total)
	}

	// Differential: bit-identical to a from-scratch single-shot build.
	ref := NewEngine(snt.Build(ds.G, ds.Store.Slice(0, ds.Store.Len()), snt.Options{}), Config{
		Partitioner: Partitioner{Kind: ZoneKind}, BucketWidth: 10,
		Workers: 1, DisableCache: true, DisableFullResultCache: true,
	})
	for i, q := range queries {
		got := eng.TripQuery(q)
		want := ref.TripQuery(q)
		if err := sameResult(&want, &got); err != nil {
			t.Fatalf("query %d diverges from rebuilt reference: %v", i, err)
		}
	}

	// Close is idempotent and leaves the engine serving.
	eng.Close()
	eng.Close()
	if r := eng.TripQuery(queries[0]); r.Hist == nil {
		t.Fatal("engine stopped serving after Close")
	}
	// Post-Close triggering Extends must not panic or leak (kick is a no-op).
	if _, err := eng.Extend(traj.NewStore()); err != nil {
		t.Fatalf("post-Close empty extend: %v", err)
	}
}

// TestBackgroundCompactionRebase pins the stale-preparation path: a manual
// Compact racing the background goroutine forces ErrCompactionStale inside
// the cycle, which must re-base and still converge with zero failures.
func TestBackgroundCompactionRebase(t *testing.T) {
	ds := workload.BuildDataset(workload.SmallConfig())
	base, batches := ingestBatches(ds.Store.Slice(0, ds.Store.Len()))
	if len(batches) < 4 {
		t.Skipf("dataset yields only %d quiescent batches", len(batches))
	}
	eng := NewEngine(snt.Build(ds.G, base, snt.Options{}), Config{
		Partitioner:         Partitioner{Kind: ZoneKind},
		BucketWidth:         10,
		Compaction:          snt.CompactionPolicy{TriggerPartitions: 2, MinRun: 2},
		CompactInBackground: true,
	})
	defer eng.Close()
	if len(batches) > 8 {
		batches = batches[:8] // the race needs a handful of cycles, not the whole feed
	}
	for b, batch := range batches {
		if _, err := eng.Extend(batch); err != nil {
			t.Fatalf("extend %d: %v", b, err)
		}
		// Race a manual (synchronous, in-lock) compaction against the
		// background cycle the Extend just kicked.
		if _, err := eng.Compact(); err != nil {
			t.Fatalf("manual compact %d: %v", b, err)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for eng.Index().NumPartitions() >= 2 {
		if time.Now().After(deadline) {
			t.Fatalf("compaction never converged: %d partitions", eng.Index().NumPartitions())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if f := eng.CompactionFailures(); f != 0 {
		t.Fatalf("%d compaction failures (stale preparations must re-base, not fail)", f)
	}
	want := base.Len()
	for _, b := range batches {
		want += b.Len()
	}
	if got := eng.Index().Stats().Trajs; got != want {
		t.Fatalf("index holds %d trajectories, want %d", got, want)
	}
}
