package query

import (
	"sync"
	"testing"
)

// TestFullResultCacheHit: a repeated query is served whole from the
// full-result cache — semantically identical to recomputation, marked as a
// full hit, with no processing effort booked.
func TestFullResultCacheHit(t *testing.T) {
	ix, qs := parEnv(t)
	eng := NewEngine(ix, Config{Partitioner: Partitioner{Kind: ZoneKind}, BucketWidth: 10})
	for i, q := range qs {
		cold := eng.TripQuery(q)
		if cold.FullCacheHit {
			t.Fatalf("query %d: cold run reported a full-cache hit", i)
		}
		warm := eng.TripQuery(q)
		if !warm.FullCacheHit {
			t.Fatalf("query %d: warm re-run missed the full-result cache", i)
		}
		if err := sameResult(&cold, &warm); err != nil {
			t.Fatalf("query %d: full-cache hit differs from computation: %v", i, err)
		}
		if warm.IndexScans != 0 || warm.CacheHits != 0 || warm.CacheMisses != 0 || warm.EstimatorSkips != 0 {
			t.Fatalf("query %d: full-cache hit booked effort: %+v", i, warm)
		}
	}
	st := eng.FullCache()
	if st.Hits != int64(len(qs)) || st.Entries == 0 {
		t.Fatalf("full-cache stats = %+v, want %d hits", st, len(qs))
	}
}

// TestFullResultCacheKey: β participates in the key (Procedure 5 truncates
// at β), so the same trip under a different β is a miss.
func TestFullResultCacheKey(t *testing.T) {
	ix, qs := parEnv(t)
	eng := NewEngine(ix, Config{Partitioner: Partitioner{Kind: ZoneKind}, BucketWidth: 10})
	q := qs[0]
	_ = eng.TripQuery(q)
	q2 := q
	q2.Beta = q.Beta + 5
	if res := eng.TripQuery(q2); res.FullCacheHit {
		t.Fatal("different β must not hit the full-result cache")
	}
}

// TestFullResultCacheDisabled: the escape hatch keeps every run a full
// computation.
func TestFullResultCacheDisabled(t *testing.T) {
	ix, qs := parEnv(t)
	eng := NewEngine(ix, Config{Partitioner: Partitioner{Kind: ZoneKind}, BucketWidth: 10,
		DisableFullResultCache: true})
	q := qs[0]
	_ = eng.TripQuery(q)
	warm := eng.TripQuery(q)
	if warm.FullCacheHit {
		t.Fatal("full-result cache served a hit while disabled")
	}
	if st := eng.FullCache(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("disabled full cache recorded traffic: %+v", st)
	}
}

// TestFullResultCacheConcurrent hammers one engine with repeated identical
// queries from many goroutines under -race: every result, hit or miss, must
// match the sequential reference.
func TestFullResultCacheConcurrent(t *testing.T) {
	ix, qs := parEnv(t)
	ref := NewEngine(ix, Config{Partitioner: Partitioner{Kind: ZoneKind}, BucketWidth: 10,
		Workers: 1, DisableCache: true, DisableFullResultCache: true})
	want := make([]Result, len(qs))
	for i, q := range qs {
		want[i] = ref.TripQuery(q)
	}
	eng := NewEngine(ix, Config{Partitioner: Partitioner{Kind: ZoneKind}, BucketWidth: 10})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 3; r++ {
				for i := range qs {
					j := (i + g) % len(qs)
					got := eng.TripQuery(qs[j])
					if err := sameResult(&want[j], &got); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := eng.FullCache(); st.Hits == 0 {
		t.Fatalf("no full-cache hits under concurrent repeats: %+v", st)
	}
}
