package query

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pathhist/internal/card"
	"pathhist/internal/hist"
	"pathhist/internal/metrics"
	"pathhist/internal/network"
	"pathhist/internal/snt"
	"pathhist/internal/traj"
)

// Splitter selects the path splitting method σ of Section 3.3.
type Splitter int

// The two splitting methods.
const (
	SigmaR Splitter = iota // regular: cut in half
	SigmaL                 // longest prefix with |T^P1| >= β
)

func (s Splitter) String() string {
	if s == SigmaR {
		return "sigmaR"
	}
	return "sigmaL"
}

// DefaultAlphas is the interval-size list A of Section 5.2: 15, 30, 45, 60,
// 90 and 120 minutes.
var DefaultAlphas = []int64{15 * 60, 30 * 60, 45 * 60, 60 * 60, 90 * 60, 120 * 60}

// Config parameterises the query engine.
type Config struct {
	Partitioner Partitioner
	Splitter    Splitter
	// Alphas is the ascending list A of periodic interval sizes; Alphas[0]
	// is αmin and the last element αmax.
	Alphas []int64
	// BucketWidth is the travel-time histogram bucket width h in seconds.
	BucketWidth int
	// Estimator optionally pre-screens sub-queries (Section 4.4); nil or
	// mode Off disables estimation.
	Estimator *card.Estimator
	// ZoneBetas overrides the cardinality requirement β per initial
	// sub-query, keyed by the zone of the sub-path's first segment — the
	// extension named in the paper's outlook ("smaller sample size
	// requirements in rural zones"). Split children inherit their
	// parent's β.
	ZoneBetas map[network.Zone]int
	// DisableShiftEnlarge turns off the Dai-et-al periodic interval
	// adaptation of Section 4.2 (ablation support).
	DisableShiftEnlarge bool
	// Workers bounds the worker pool of the speculative parallel first
	// pass of TripQuery: 0 uses GOMAXPROCS, 1 forces the purely
	// sequential Procedure 6, larger values cap the pool. The result is
	// identical either way (see TripQuery).
	Workers int
	// DisableCache turns off the shared sub-result cache.
	DisableCache bool
	// CacheCapacity is the total number of cached sub-results
	// (DefaultCacheCapacity when 0).
	CacheCapacity int
	// DisableFullResultCache turns off the shared full-result cache, which
	// memoises the final convolved histogram per (path, interval, filter,
	// β) so repeated trips skip partitioning, scans and convolution.
	DisableFullResultCache bool
	// FullResultCacheCapacity is the total number of cached full results
	// (DefaultFullCacheCapacity when 0).
	FullResultCacheCapacity int
	// Compaction is the partition compaction policy. Auto-compaction runs
	// inside Extend — after the ingest epoch is published — whenever
	// Compaction.TriggerPartitions > 0 and the partition count reaches it;
	// the zero value disables auto-compaction (Engine.Compact can still be
	// called manually, ignoring the trigger).
	Compaction snt.CompactionPolicy
	// CompactInBackground moves auto-compaction off the ingest path: a
	// triggering Extend returns as soon as its batch is published and a
	// background goroutine runs the merge — the heavy preparation entirely
	// off the write lock (concurrent Extends proceed), only the cheap
	// apply-and-publish under it. A competing compaction (manual Compact)
	// stales the preparation, which re-bases against the newest snapshot.
	// The goroutine starts lazily on the first triggering Extend; Close
	// stops it.
	CompactInBackground bool
}

// snapshot is one published index state: the immutable index, the
// cardinality estimator built against it, and the epoch number that stamps
// every cache entry derived from it. A query loads one snapshot at entry
// and uses it throughout, so in-flight queries always see a consistent
// index even while Extend publishes a successor.
type snapshot struct {
	ix    *snt.Index
	est   *card.Estimator
	epoch uint64
}

// Engine processes travel-time queries against an SNT-index. An Engine is
// safe for concurrent use: the published index snapshot is immutable, all
// per-query scan state lives in pooled snt.Scratch buffers, and the shared
// caches are internally synchronised. Extend ingests a batch of newer
// trajectories without blocking readers: it builds a copy-on-write index
// snapshot and publishes it with an atomic pointer swap; queries already
// running finish against the epoch they started on, and epoch-stamped
// cache entries from older snapshots are dropped lazily on lookup.
type Engine struct {
	cfg Config
	// snap is the publication cell. It is a pointer so replica engines
	// (NewFollower) can share the primary's cell: every replica then
	// serves the exact snapshot the primary publishes, with zero epoch
	// skew — the property that makes replica answers bit-identical.
	snap  *atomic.Pointer[snapshot]
	extMu sync.Mutex // serialises the writers (Extend, Compact)
	cache *spqCache[subValue]
	full  *spqCache[fullValue]

	// follower marks a read-only replica sharing another engine's snap
	// cell: Extend and Compact refuse (ErrFollower), and no background
	// compactor ever starts. Caches are the replica's own.
	follower bool

	compactions     atomic.Int64
	compactFailures atomic.Int64
	lastCompaction  atomic.Pointer[snt.CompactionStats]

	bgMu   sync.Mutex // guards bg and closed
	bg     *compactor
	closed bool
}

// compactor is the background-compaction goroutine's handle: a kick channel
// (buffered 1, so a burst of triggering Extends coalesces into one wake-up),
// a stop signal, and a done ack for Close.
type compactor struct {
	kick chan struct{}
	stop chan struct{}
	done chan struct{}
}

// NewEngine returns an engine. Zero-value config fields get defaults
// (σR, πZ is NOT defaulted — the partitioner must be chosen consciously;
// Alphas default to the paper's list; bucket width defaults to 10 s).
func NewEngine(ix *snt.Index, cfg Config) *Engine {
	return NewEngineAt(ix, cfg, 0)
}

// NewEngineAt is NewEngine for a restored index: the first published
// snapshot carries the given epoch instead of 0, so an engine rebuilt from
// an on-disk snapshot republishes the exact epoch the snapshot was written
// at. Epoch-stamped cache semantics then survive the restart — the caches
// start empty either way, but the epoch counter keeps advancing from where
// the writing engine left it, so epochs stay monotonic across process
// generations and clients correlating /statsz epochs never see the counter
// jump backwards.
func NewEngineAt(ix *snt.Index, cfg Config, epoch uint64) *Engine {
	if len(cfg.Alphas) == 0 {
		cfg.Alphas = DefaultAlphas
	}
	if cfg.BucketWidth <= 0 {
		cfg.BucketWidth = 10
	}
	e := &Engine{cfg: cfg, snap: new(atomic.Pointer[snapshot])}
	e.snap.Store(&snapshot{ix: ix, est: cfg.Estimator, epoch: epoch})
	if !cfg.DisableCache {
		e.cache = newSubCache(cfg.CacheCapacity)
	}
	if !cfg.DisableFullResultCache {
		e.full = newFullCache(cfg.FullResultCacheCapacity)
	}
	return e
}

// ErrFollower is returned by the write paths of a follower engine.
var ErrFollower = errors.New("query: follower engine is read-only; write through the primary")

// NewFollower returns a read-only replica of primary: it shares primary's
// publication cell — every snapshot (and epoch) the primary publishes is
// visible to the follower at the same instant, so the two answer queries
// bit-identically at all times — but owns its caches, so concurrent read
// load spreads over per-replica cache locks instead of contending on one.
// Replicas over a snapshot mapping cost no index memory at all: the columns
// live once, in the shared mapping (or heap). Extend and Compact on a
// follower fail with ErrFollower; Close is safe and only ever stops state
// the follower owns (it has no background compactor).
func NewFollower(primary *Engine) *Engine {
	cfg := primary.cfg
	e := &Engine{cfg: cfg, snap: primary.snap, follower: true}
	if !cfg.DisableCache {
		e.cache = newSubCache(cfg.CacheCapacity)
	}
	if !cfg.DisableFullResultCache {
		e.full = newFullCache(cfg.FullResultCacheCapacity)
	}
	return e
}

// Follower reports whether the engine is a read-only replica.
func (e *Engine) Follower() bool { return e.follower }

// Snapshot returns the currently published (index, epoch) pair as one
// consistent unit — what a persistence layer must capture together so the
// restored engine serves the same index at the same epoch. The index is
// immutable; the pair stays valid (and snapshot-able) even while later
// Extends publish successors.
func (e *Engine) Snapshot() (*snt.Index, uint64) {
	sn := e.snap.Load()
	return sn.ix, sn.epoch
}

// Index returns the currently published index snapshot.
func (e *Engine) Index() *snt.Index { return e.snap.Load().ix }

// Epoch returns the current index epoch: 0 after NewEngine, incremented by
// every publication — each successful non-empty Extend and each effective
// Compact (so a triggering auto-compacted ingest advances it by two).
func (e *Engine) Epoch() uint64 { return e.snap.Load().epoch }

// IngestStats describes the snapshot one Extend published. The values come
// from that publication, not from re-reading shared engine state, so they
// stay attributable to the batch even when further Extends race in right
// after.
type IngestStats struct {
	// Epoch the batch was published as (unchanged for an empty batch).
	Epoch uint64
	// Trajectories in the ingested batch.
	Trajectories int
	// TotalTrajectories indexed after this publication.
	TotalTrajectories int
}

// Extend ingests a batch of newer trajectories (snt.Index.Extend semantics:
// every trajectory must start after the indexed data ends). Readers never
// block: the extended index is built copy-on-write next to the serving one
// and published atomically as a new epoch, together with a refreshed
// cardinality estimator. Queries in flight complete against the snapshot
// they loaded at entry; the epoch stamp keeps their cache writes from ever
// being served against the new index (and vice versa). Concurrent Extend
// calls are serialised internally; a failed or empty batch leaves the
// published snapshot unchanged.
func (e *Engine) Extend(add *traj.Store) (IngestStats, error) {
	return e.ExtendCtx(context.Background(), add)
}

// ExtendCtx is Extend honouring a context deadline at its two cheap
// abort points: before taking the writer lock and after acquiring it (the
// wait for a slow competing writer may have consumed the whole deadline).
// The index build itself is not interruptible — once it starts, the batch
// is published; a context canceled mid-build still publishes, exactly like
// Extend, so callers never see a batch both acknowledged and absent.
func (e *Engine) ExtendCtx(ctx context.Context, add *traj.Store) (IngestStats, error) {
	if e.follower {
		return IngestStats{}, ErrFollower
	}
	if err := ctx.Err(); err != nil {
		return IngestStats{}, err
	}
	e.extMu.Lock()
	defer e.extMu.Unlock()
	if err := ctx.Err(); err != nil {
		return IngestStats{}, err
	}
	sn := e.snap.Load()
	nix, err := sn.ix.Extend(add)
	if err != nil {
		return IngestStats{}, err
	}
	if nix == sn.ix {
		// Empty batch: nothing new to publish.
		return IngestStats{Epoch: sn.epoch, TotalTrajectories: nix.Stats().Trajs}, nil
	}
	next := e.publishLocked(sn, nix)
	st := IngestStats{
		Epoch:             next.epoch,
		Trajectories:      add.Len(),
		TotalTrajectories: nix.Stats().Trajs,
	}
	// Auto-compaction rides behind the ingest publication: the batch is
	// already being served when the merge starts, and the compacted snapshot
	// is published as its own epoch. Queries never block either way. A
	// compaction failure is NOT an ingest failure — the batch is already
	// published and served, so reporting an error here would make callers
	// (and the /extend handler's reject counters) believe a served batch
	// was rejected; the fragmented layout simply lives on, counted in
	// CompactionFailures.
	if tp := e.cfg.Compaction.TriggerPartitions; tp > 0 && nix.NumPartitions() >= tp {
		if e.cfg.CompactInBackground {
			// Background mode: the ingest returns now; the merge runs off
			// the lock and publishes its own epoch when ready.
			e.kickCompactor()
		} else if _, err := e.compactLocked(e.cfg.Compaction); err != nil {
			e.compactFailures.Add(1)
		}
	}
	return st, nil
}

// kickCompactor wakes (lazily starting) the background compactor. The kick
// is non-blocking: if one is already pending, the running cycle will see the
// newest snapshot anyway.
func (e *Engine) kickCompactor() {
	e.bgMu.Lock()
	if e.closed {
		e.bgMu.Unlock()
		return
	}
	if e.bg == nil {
		e.bg = &compactor{
			kick: make(chan struct{}, 1),
			stop: make(chan struct{}),
			done: make(chan struct{}),
		}
		go e.compactorLoop(e.bg)
	}
	c := e.bg
	e.bgMu.Unlock()
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// Close stops the background compactor (if one ever started) and waits for
// it to exit; a merge already applying finishes publishing first. Close is
// idempotent, and the engine keeps serving queries afterwards — only
// background compaction stops. Callers that enabled CompactInBackground
// must Close the engine to avoid leaking its goroutine.
func (e *Engine) Close() {
	e.bgMu.Lock()
	c := e.bg
	e.bg = nil
	e.closed = true
	e.bgMu.Unlock()
	if c != nil {
		close(c.stop)
		<-c.done
	}
}

// compactorLoop serves kicks until Close.
func (e *Engine) compactorLoop(c *compactor) {
	defer close(c.done)
	for {
		select {
		case <-c.stop:
			return
		case <-c.kick:
		}
		e.backgroundCycle(c)
	}
}

// backgroundCycle drains the merge backlog: prepare the next chunk of work
// off the write lock — ingest and queries proceed — then apply and publish
// it under the lock (cheap: column remap and pointer swap). A preparation
// staled by a competing compaction is re-based by preparing again against
// the newest snapshot; concurrent Extends never stale it (they only append
// partitions, which the apply remaps on the fly). The cycle ends when the
// policy plans nothing — with MaxRuns set, each iteration merges one
// bounded chunk, so the lock is never held for a multi-merge stall.
func (e *Engine) backgroundCycle(c *compactor) {
	for {
		select {
		case <-c.stop:
			return
		default:
		}
		sn := e.snap.Load()
		// The stop channel rides into the preparation so a Close during a
		// giant merge abandons it at the next chunk boundary instead of
		// building every remaining run first.
		prepared, err := sn.ix.PrepareCompactionStop(e.cfg.Compaction, c.stop)
		if err != nil {
			if errors.Is(err, snt.ErrCompactionAborted) {
				// Shutdown/drain, not a failure: the merge backlog simply
				// stays for the next process to pick up.
				return
			}
			e.compactFailures.Add(1)
			return
		}
		if prepared == nil {
			return
		}
		e.extMu.Lock()
		// The plan above ran against a possibly-stale snapshot; under extMu
		// the apply must re-base onto the latest publication, so this second
		// load is the point, not an accident.
		//lint:ignore snappin deliberate re-read under extMu: compaction plans lock-free and re-bases on the current snapshot before publishing
		cur := e.snap.Load()
		nix, stats, err := cur.ix.ApplyCompaction(prepared)
		if err != nil {
			e.extMu.Unlock()
			if errors.Is(err, snt.ErrCompactionStale) {
				continue // a competing compaction landed: re-base
			}
			e.compactFailures.Add(1)
			return
		}
		if nix != cur.ix {
			next := e.publishLocked(cur, nix)
			stats.Epoch = next.epoch
			e.compactions.Add(1)
			e.lastCompaction.Store(&stats)
		}
		e.extMu.Unlock()
	}
}

// publishLocked builds the snapshot for a new index (refreshing the
// estimator against it), publishes it as the next epoch and eagerly purges
// both caches of entries from other epochs. Callers hold extMu.
func (e *Engine) publishLocked(sn *snapshot, nix *snt.Index) *snapshot {
	est := sn.est
	if est.Enabled() {
		// The estimator reads the index it was built against; refresh it so
		// selectivities cover the new layout.
		est = card.New(nix, est.Mode())
	}
	next := &snapshot{ix: nix, est: est, epoch: sn.epoch + 1}
	e.snap.Store(next)
	// Entries stamped with older epochs can never be served again (the
	// lazy cross-epoch check would drop them one by one); sweep them now so
	// the memory is released immediately and post-publication queries find
	// room for fresh results instead of a cache full of dead facts.
	e.cache.purgeStale(next.epoch)
	e.full.purgeStale(next.epoch)
	return next
}

// Compact merges temporal partitions per the configured policy, ignoring
// its partition-count trigger (a manual call is the trigger), and publishes
// the compacted index as a new epoch. Readers never block: compaction runs
// entirely off the serving path against the current snapshot, exactly like
// Extend, and queries in flight finish on the epoch they pinned. The
// returned stats report the merge; PartitionsBefore == PartitionsAfter
// means the policy found nothing to merge (no epoch was published).
func (e *Engine) Compact() (snt.CompactionStats, error) {
	if e.follower {
		return snt.CompactionStats{}, ErrFollower
	}
	e.extMu.Lock()
	defer e.extMu.Unlock()
	pol := e.cfg.Compaction
	pol.TriggerPartitions = -1
	return e.compactLocked(pol)
}

// compactLocked runs one compaction and publishes the result if anything
// merged. The returned stats carry the epoch of their own publication
// (IngestStats-style attribution: a racing writer cannot skew them), or
// the current epoch when nothing merged. Callers hold extMu.
func (e *Engine) compactLocked(pol snt.CompactionPolicy) (snt.CompactionStats, error) {
	sn := e.snap.Load()
	nix, stats, err := sn.ix.Compact(pol)
	if err != nil {
		return stats, err
	}
	if nix == sn.ix {
		stats.Epoch = sn.epoch
		return stats, nil
	}
	next := e.publishLocked(sn, nix)
	stats.Epoch = next.epoch
	e.compactions.Add(1)
	e.lastCompaction.Store(&stats)
	return stats, nil
}

// CompactionInfo reports how many compactions the engine has published and
// the stats of the most recent one (zero value when none ran yet).
func (e *Engine) CompactionInfo() (int64, snt.CompactionStats) {
	n := e.compactions.Load()
	if st := e.lastCompaction.Load(); st != nil {
		return n, *st
	}
	return n, snt.CompactionStats{}
}

// CompactionFailures counts auto-compactions that failed after their
// triggering ingest had already been published (the ingest itself
// succeeded; the fragmented layout lives on until the next trigger or a
// manual Compact).
func (e *Engine) CompactionFailures() int64 { return e.compactFailures.Load() }

// Cache reports the cumulative sub-result cache statistics.
func (e *Engine) Cache() CacheStats { return e.cache.Stats() }

// FullCache reports the cumulative full-result cache statistics.
func (e *Engine) FullCache() CacheStats { return e.full.Stats() }

// SubResult is one completed sub-query with its retrieved travel times.
// X and Hist may be shared with the engine's sub-result cache and with
// other Results; treat both as immutable.
type SubResult struct {
	Path     network.Path
	Interval snt.Interval // effective (shifted) interval that produced X
	Filter   snt.Filter
	X        []int
	Hist     *hist.Histogram
	Fallback bool // speed-limit estimate (no data at all)
}

// MeanX returns the exact sample mean X̄ of the sub-query (Section 5.3.1).
func (s *SubResult) MeanX() float64 { return metrics.MeanInt(s.X) }

// Result is the outcome of a travel-time query.
type Result struct {
	// Hist is the convolved travel-time histogram H = H1 * ... * Hk.
	Hist *hist.Histogram
	// Subs are the final sub-queries in path order (they partition the
	// query path).
	Subs []SubResult
	// IndexScans counts getTravelTimes invocations that reached the index.
	IndexScans int
	// EstimatorSkips counts sub-queries relaxed on the estimate alone.
	EstimatorSkips int
	// CacheHits and CacheMisses count sub-query scans served by the
	// sub-result cache versus scans that had to reach the index (both
	// stay zero with the cache disabled; a cache hit does not count as an
	// index scan).
	CacheHits   int
	CacheMisses int
	// CacheInvalidations counts cached entries (sub-results or the full
	// result) this query found stamped with a different index epoch and
	// dropped — the lazy invalidation an Engine.Extend leaves behind.
	CacheInvalidations int
	// FullCacheHit marks a result served whole from the full-result cache:
	// Hist and Subs are the memoised outcome of an earlier identical query
	// and every other effort counter is zero.
	FullCacheHit bool
	// Epoch is the index epoch the query ran against (the snapshot loaded
	// at TripQuery entry).
	Epoch uint64
	// Elapsed is the wall-clock processing time.
	Elapsed time.Duration
}

// AvgSubPathLen returns the average final sub-query path length (Figure 7).
func (r *Result) AvgSubPathLen() float64 {
	if len(r.Subs) == 0 {
		return 0
	}
	n := 0
	for i := range r.Subs {
		n += len(r.Subs[i].Path)
	}
	return float64(n) / float64(len(r.Subs))
}

// PredictedMean returns Σ X̄_j, the paper's point prediction for the full
// path (Section 5.3.1).
func (r *Result) PredictedMean() float64 {
	var s float64
	for i := range r.Subs {
		s += r.Subs[i].MeanX()
	}
	return s
}

// subQ is a pending sub-query in the processing queue. base is the
// un-shifted interval; the effective interval applied to the index adds the
// shift-and-enlarge offsets accumulated from completed predecessors at
// processing time (applying the shift lazily avoids double-shifting when a
// sub-query is widened and re-processed; DESIGN.md §4, decision 3).
type subQ struct {
	path     network.Path
	base     snt.Interval
	filter   snt.Filter
	beta     int
	widenIdx int  // position of base.Width in cfg.Alphas (periodic only)
	terminal bool // the Procedure 1 line 12 fallback: fixed [0,tmax), no β
}

// outcome is the result of one attempt at a sub-query: an estimator skip, a
// scan (or cache hit) that succeeded, or one that came back empty.
type outcome struct {
	xs       []int // owned by the outcome (or shared immutably via cache)
	hist     *hist.Histogram
	fallback bool
	skipped  bool // estimator said β̂ < β; no scan was issued
	cached   bool // served from the sub-result cache; no scan was issued
	stale    bool // the lookup dropped a cross-epoch entry before scanning
}

func (o *outcome) success() bool { return !o.skipped && len(o.xs) > 0 }

// attempt runs one sub-query attempt at the given effective interval
// against one index snapshot: cardinality estimation first (Procedure 6
// semantics — never for terminal sub-queries, which have no β), then the
// sub-result cache (epoch-checked), then the Procedure 3-5 index scan.
// Attempts are deterministic given the snapshot and cache state; with the
// cache disabled they are fully deterministic, which is what makes
// speculative execution exact (see TripQuery).
func (e *Engine) attempt(sn *snapshot, sub *subQ, iv snt.Interval, sc *snt.Scratch) outcome {
	if sub.beta > 0 && sn.est.Enabled() {
		if bhat, ok := sn.est.Estimate(sub.path, iv, sub.filter); ok && bhat < float64(sub.beta) {
			return outcome{skipped: true}
		}
	}
	stale := false
	if e.cache != nil {
		v, ok, st := e.cache.get(sub.path, iv, sub.filter, sub.beta, sn.epoch)
		if ok {
			return outcome{xs: v.xs, hist: v.hist, fallback: v.fallback, cached: true}
		}
		stale = st
	}
	view, fallback := sn.ix.GetTravelTimesWith(sc, sub.path, iv, sub.filter, sub.beta)
	if sc.Canceled() {
		// The scan may have been aborted mid-sweep (TripQueryCtx deadline):
		// the view is partial and must not be cached or trusted — the caller
		// is aborting the whole query, so return an inert outcome.
		return outcome{stale: stale}
	}
	if len(view) == 0 {
		if e.cache != nil {
			e.cache.put(sub.path, iv, sub.filter, sub.beta, sn.epoch, subValue{})
		}
		return outcome{stale: stale}
	}
	xs := make([]int, len(view))
	copy(xs, view)
	hg := hist.FromSamples(xs, e.cfg.BucketWidth)
	if e.cache != nil {
		e.cache.put(sub.path, iv, sub.filter, sub.beta, sn.epoch, subValue{xs: xs, hist: hg, fallback: fallback})
	}
	return outcome{xs: xs, hist: hg, fallback: fallback, stale: stale}
}

// count books an attempt's effort into the result counters.
func (e *Engine) count(r *Result, o *outcome) {
	if o.stale {
		r.CacheInvalidations++
	}
	switch {
	case o.skipped:
		r.EstimatorSkips++
	case o.cached:
		r.CacheHits++
	default:
		r.IndexScans++
		if e.cache != nil {
			r.CacheMisses++
		}
	}
}

// accept appends a successful outcome as a completed sub-query and folds
// its extremes into the shift-and-enlarge accumulators (Section 4.2):
// S = Σ H_j^min, R = Σ (H_j^max - H_j^min).
func (r *Result) accept(sub *subQ, iv snt.Interval, o *outcome, shiftS, shiftR *int64) {
	r.Subs = append(r.Subs, SubResult{
		Path:     sub.path,
		Interval: iv,
		Filter:   sub.filter,
		X:        o.xs,
		Hist:     o.hist,
		Fallback: o.fallback,
	})
	*shiftS += int64(o.hist.Min())
	*shiftR += int64(o.hist.Max() - o.hist.Min())
}

// effective applies the lazy shift-and-enlarge adaptation to a sub-query's
// base interval given the completed predecessors.
func (e *Engine) effective(base snt.Interval, done int, shiftS, shiftR int64) snt.Interval {
	if base.IsPeriodic() && done > 0 && !e.cfg.DisableShiftEnlarge {
		return base.ShiftEnlarge(shiftS, shiftR)
	}
	return base
}

// TripQuery is Procedure 6: partition, process with relaxation, convolve.
//
// A full-result cache sits above everything (unless disabled): repeated
// queries for the same (path, interval, filter, β) return the memoised
// convolved histogram and sub-queries directly, marked by Result.
// FullCacheHit. Entries are deterministic functions of the immutable
// index, so a hit is bit-identical to recomputation.
//
// Processing runs in two passes. A speculative parallel first pass issues
// every initial sub-query concurrently on a bounded worker pool, scanning
// with the un-shifted base interval (the shift-and-enlarge offsets of
// Section 4.2 depend on the preceding sub-queries' results and are unknown
// at that point). A sequential reconciliation pass then walks the initial
// sub-queries in path order, maintaining the exact shift accumulators of
// the sequential algorithm: a speculative result is accepted verbatim when
// its interval equals the shift-adjusted interval the sequential pass would
// have used (always true for the first sub-query, and for every sub-query
// of fixed-interval or shift-disabled queries); otherwise the sub-query is
// re-processed sequentially, including the full Procedure 1 relaxation
// chain. Failed attempts relax sequentially in both modes, so the produced
// Subs and Hist are identical to the purely sequential execution. With the
// cache disabled, attempts are fully deterministic and IndexScans and
// EstimatorSkips are identical too; with it enabled, scan and hit/miss
// counts can vary run to run, because concurrent attempts race on shared
// cache entries (the retrieved values never differ — every entry is a
// deterministic function of the immutable index).
//
// Speculation trades CPU for latency: on a periodic query with
// shift-and-enlarge active, every accepted sub-query after the first
// shifts its successors' windows, so their speculative base-interval
// outcomes are discarded and re-scanned — extra parallel work, but the
// sequential replay bounds wall-clock at the purely sequential cost, and
// on warm repeats the speculative attempts resolve as cache hits. For
// fixed intervals or DisableShiftEnlarge every speculative outcome
// reconciles, and the pass is pure speedup.
func (e *Engine) TripQuery(q SPQ) Result {
	res, _ := e.TripQueryCtx(context.Background(), q)
	return res
}

// TripQueryCtx is TripQuery honouring context cancellation. The deadline is
// checked at every sub-query boundary and, inside the index scans, every
// few thousand records (snt.Scratch cancellation), so a pathological query
// stops within microseconds of its deadline instead of finishing a
// multi-second scan. A canceled query returns the zero Result and ctx.Err();
// nothing partial is ever written to the sub-result or full-result caches.
// With a background (non-cancelable) context the behaviour — including the
// produced Result, bit for bit — is exactly TripQuery's.
func (e *Engine) TripQueryCtx(ctx context.Context, q SPQ) (Result, error) {
	start := time.Now()
	done := ctx.Done()
	if done != nil {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
	}
	// One snapshot per query: everything below — estimator, scans, cache
	// stamps — reads this snapshot, so a concurrent Extend cannot shear a
	// query across epochs.
	sn := e.snap.Load()
	staleFull := false
	// The full-result cache short-circuits everything: a whole trip's final
	// histogram and sub-queries are a deterministic function of the
	// snapshot's immutable index and the query key, so an (epoch-matched)
	// hit returns the memoised (shared, immutable) outcome with no
	// partitioning, scans or convolution.
	if e.full != nil {
		v, ok, stale := e.full.get(q.Path, q.Interval, q.Filter, q.Beta, sn.epoch)
		if ok {
			return Result{Hist: v.hist, Subs: v.subs, FullCacheHit: true, Epoch: sn.epoch, Elapsed: time.Since(start)}, nil
		}
		staleFull = stale
		// The final Subs hold sub-paths sliced out of q.Path and are about
		// to be retained engine-lifetime in the cache: rebind the query to
		// a private copy so no cached result ever aliases caller memory.
		q.Path = append(network.Path(nil), q.Path...)
	}
	res := Result{Epoch: sn.epoch}
	if staleFull {
		res.CacheInvalidations++
	}
	initial := e.initialSubs(sn, q)
	var spec []outcome
	if w := e.workers(); w > 1 && len(initial) > 1 {
		spec = e.speculate(sn, initial, w, done)
		if done != nil {
			if err := ctx.Err(); err != nil {
				// Workers canceled mid-scan leave partial outcomes behind;
				// none of them were cached, so dropping the slice is enough.
				return Result{}, err
			}
		}
	}
	sc := snt.AcquireScratch()
	defer snt.ReleaseScratch(sc) // also disarms the cancel channel
	sc.SetCancel(done)
	var shiftS, shiftR int64
	for i := range initial {
		sub := initial[i]
		iv := e.effective(sub.base, len(res.Subs), shiftS, shiftR)
		if spec != nil && iv == sub.base {
			// The speculative attempt used exactly this interval, and
			// attempts are deterministic: adopt its outcome instead of
			// re-scanning.
			o := spec[i]
			e.count(&res, &o)
			if o.success() {
				res.accept(&sub, iv, &o, &shiftS, &shiftR)
				continue
			}
			if !e.drain(sn, e.relax(sn, sub, iv, sc), &res, &shiftS, &shiftR, sc) {
				return Result{}, ctx.Err()
			}
			continue
		}
		if !e.drain(sn, []subQ{sub}, &res, &shiftS, &shiftR, sc) {
			return Result{}, ctx.Err()
		}
	}
	res.Hist = convolveSubs(res.Subs)
	if e.full != nil && !sc.Canceled() {
		// Hist and Subs become shared with future hits; both are immutable
		// from here on (the final histogram is never recycled, and Subs'
		// samples/histograms are already shared through the sub-result
		// cache contract). A query that raced its own cancellation to the
		// finish line is complete and correct, but its last scan may have
		// been clipped — skip the memoisation rather than trust it.
		e.full.put(q.Path, q.Interval, q.Filter, q.Beta, sn.epoch, fullValue{hist: res.Hist, subs: res.Subs})
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// initialSubs partitions the query and applies the per-zone β overrides.
func (e *Engine) initialSubs(sn *snapshot, q SPQ) []subQ {
	parts := e.cfg.Partitioner.Partition(sn.ix.Graph(), q)
	subs := make([]subQ, 0, len(parts))
	for _, s := range parts {
		beta := s.Beta
		if e.cfg.ZoneBetas != nil && beta > 0 {
			if zb, ok := e.cfg.ZoneBetas[sn.ix.Graph().Edge(s.Path[0]).Zone]; ok {
				beta = zb
			}
		}
		subs = append(subs, subQ{
			path:     s.Path,
			base:     s.Interval,
			filter:   s.Filter,
			beta:     beta,
			widenIdx: e.widenIndexOf(s.Interval),
		})
	}
	return subs
}

// workers resolves the speculative pool bound.
func (e *Engine) workers() int {
	if e.cfg.Workers > 0 {
		return e.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// speculate is the parallel first pass: attempt every initial sub-query
// concurrently with its un-shifted base interval. Each worker holds one
// scratch for its whole batch, armed with the query's cancel channel: on
// cancellation the workers stop claiming sub-queries and abort their scans
// at the next poll, so the pool drains promptly and no goroutine outlives
// the deadline by more than one scan stride. The caller must discard the
// outcomes when the context was canceled — they may be partial.
func (e *Engine) speculate(sn *snapshot, initial []subQ, workers int, done <-chan struct{}) []outcome {
	if workers > len(initial) {
		workers = len(initial)
	}
	out := make([]outcome, len(initial))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := snt.AcquireScratch()
			defer snt.ReleaseScratch(sc)
			sc.SetCancel(done)
			for {
				if sc.Canceled() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(initial) {
					return
				}
				out[i] = e.attempt(sn, &initial[i], initial[i].base, sc)
			}
		}()
	}
	wg.Wait()
	return out
}

// drain runs the sequential Procedure 6 loop over a queue seeded with one
// (possibly already-relaxed) sub-query, prepending Procedure 1 relaxations
// until the queue is empty. It reports whether the queue drained to
// completion: false means the scratch's cancel channel fired — the attempt
// that observed it returned untrustworthy (possibly clipped) output, so the
// caller must abort the whole query rather than keep the partial Result.
func (e *Engine) drain(sn *snapshot, queue []subQ, res *Result, shiftS, shiftR *int64, sc *snt.Scratch) bool {
	for len(queue) > 0 {
		sub := queue[0]
		queue = queue[1:]
		iv := e.effective(sub.base, len(res.Subs), *shiftS, *shiftR)
		o := e.attempt(sn, &sub, iv, sc)
		if sc.Canceled() {
			return false
		}
		e.count(res, &o)
		if !o.success() {
			queue = append(e.relax(sn, sub, iv, sc), queue...)
			continue
		}
		res.accept(&sub, iv, &o, shiftS, shiftR)
	}
	return true
}

// convolveSubs folds the sub-query histograms in path order, recycling the
// intermediate convolution results (which nothing else can reach; the
// operands and the returned final histogram stay live).
func convolveSubs(subs []SubResult) *hist.Histogram {
	var conv *hist.Histogram
	owned := false
	for i := range subs {
		next := conv.Convolve(subs[i].Hist)
		if owned && next != conv {
			conv.Recycle()
		}
		// next is a fresh intermediate only when both operands existed;
		// otherwise Convolve returned an operand we must not recycle.
		owned = conv != nil && subs[i].Hist != nil
		conv = next
	}
	return conv
}

// widenIndexOf locates the interval's width in A (the largest index whose
// α does not exceed the width, so foreign widths still widen correctly).
func (e *Engine) widenIndexOf(iv snt.Interval) int {
	if !iv.IsPeriodic() {
		return 0
	}
	idx := 0
	for i, a := range e.cfg.Alphas {
		if iv.Width >= a {
			idx = i
		}
	}
	return idx
}

// relax is Procedure 1 (σ): widen the periodic interval to the next size in
// A; once A is exhausted split the path (σR or σL) and reset children to
// αmin; then drop non-temporal predicates; finally fall back to all data in
// the fixed interval [0, tmax) with no β. The returned sub-queries replace
// the failed one at the front of the queue, preserving path order.
func (e *Engine) relax(sn *snapshot, sub subQ, effective snt.Interval, sc *snt.Scratch) []subQ {
	alphas := e.cfg.Alphas
	if sub.base.IsPeriodic() && sub.widenIdx+1 < len(alphas) {
		sub.widenIdx++
		sub.base = sub.base.Resize(alphas[sub.widenIdx])
		return []subQ{sub}
	}
	if len(sub.path) > 1 {
		m := e.splitPoint(sn, sub, effective, sc)
		mk := func(p network.Path) subQ {
			child := subQ{path: p, base: sub.base, filter: sub.filter, beta: sub.beta}
			if child.base.IsPeriodic() {
				child.base = child.base.Resize(alphas[0])
			}
			return child
		}
		return []subQ{mk(sub.path[:m]), mk(sub.path[m:])}
	}
	if sub.filter.HasPredicate() {
		sub.filter = sub.filter.DropPredicates()
		return []subQ{sub}
	}
	if sub.terminal {
		// Cannot happen: the terminal query always yields at least the
		// speed-limit estimate for a single segment. Guard anyway.
		return nil
	}
	_, tmax := sn.ix.TimeRange()
	return []subQ{{
		path:     sub.path,
		base:     snt.NewFixed(0, tmax+1),
		filter:   sub.filter,
		beta:     0,
		terminal: true,
	}}
}

// splitPoint returns m so the path splits into P[0,m) and P[m,l). The
// counting scans run on the caller's scratch so they honour its cancel
// channel; a canceled count returns a wrong split point, which is harmless
// because the caller aborts the query before using it (drain re-checks
// Canceled after the next attempt).
func (e *Engine) splitPoint(sn *snapshot, sub subQ, effective snt.Interval, sc *snt.Scratch) int {
	l := len(sub.path)
	if e.cfg.Splitter == SigmaR || sub.beta <= 0 {
		return l / 2
	}
	// σL: the largest m in [1, l-1] with |T^{P[0,m)}| >= β. Cardinality is
	// non-increasing in m, so binary search with exact counting scans
	// (capped at β) — this is the expense Figure 9 charges to σL.
	lo, hi := 1, l-1 // invariant: count(lo) >= β assumed, answer in [lo, hi]
	if sn.ix.CountMatchesWith(sc, sub.path[:1], effective, sub.filter, sub.beta) < sub.beta {
		return 1 // even a single segment falls short; minimal prefix
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if sn.ix.CountMatchesWith(sc, sub.path[:mid], effective, sub.filter, sub.beta) >= sub.beta {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}
