package query

import (
	"time"

	"pathhist/internal/card"
	"pathhist/internal/hist"
	"pathhist/internal/metrics"
	"pathhist/internal/network"
	"pathhist/internal/snt"
)

// Splitter selects the path splitting method σ of Section 3.3.
type Splitter int

// The two splitting methods.
const (
	SigmaR Splitter = iota // regular: cut in half
	SigmaL                 // longest prefix with |T^P1| >= β
)

func (s Splitter) String() string {
	if s == SigmaR {
		return "sigmaR"
	}
	return "sigmaL"
}

// DefaultAlphas is the interval-size list A of Section 5.2: 15, 30, 45, 60,
// 90 and 120 minutes.
var DefaultAlphas = []int64{15 * 60, 30 * 60, 45 * 60, 60 * 60, 90 * 60, 120 * 60}

// Config parameterises the query engine.
type Config struct {
	Partitioner Partitioner
	Splitter    Splitter
	// Alphas is the ascending list A of periodic interval sizes; Alphas[0]
	// is αmin and the last element αmax.
	Alphas []int64
	// BucketWidth is the travel-time histogram bucket width h in seconds.
	BucketWidth int
	// Estimator optionally pre-screens sub-queries (Section 4.4); nil or
	// mode Off disables estimation.
	Estimator *card.Estimator
	// ZoneBetas overrides the cardinality requirement β per initial
	// sub-query, keyed by the zone of the sub-path's first segment — the
	// extension named in the paper's outlook ("smaller sample size
	// requirements in rural zones"). Split children inherit their
	// parent's β.
	ZoneBetas map[network.Zone]int
	// DisableShiftEnlarge turns off the Dai-et-al periodic interval
	// adaptation of Section 4.2 (ablation support).
	DisableShiftEnlarge bool
}

// Engine processes travel-time queries against an SNT-index.
type Engine struct {
	ix  *snt.Index
	cfg Config
}

// NewEngine returns an engine. Zero-value config fields get defaults
// (σR, πZ is NOT defaulted — the partitioner must be chosen consciously;
// Alphas default to the paper's list; bucket width defaults to 10 s).
func NewEngine(ix *snt.Index, cfg Config) *Engine {
	if len(cfg.Alphas) == 0 {
		cfg.Alphas = DefaultAlphas
	}
	if cfg.BucketWidth <= 0 {
		cfg.BucketWidth = 10
	}
	return &Engine{ix: ix, cfg: cfg}
}

// SubResult is one completed sub-query with its retrieved travel times.
type SubResult struct {
	Path     network.Path
	Interval snt.Interval // effective (shifted) interval that produced X
	Filter   snt.Filter
	X        []int
	Hist     *hist.Histogram
	Fallback bool // speed-limit estimate (no data at all)
}

// MeanX returns the exact sample mean X̄ of the sub-query (Section 5.3.1).
func (s *SubResult) MeanX() float64 { return metrics.MeanInt(s.X) }

// Result is the outcome of a travel-time query.
type Result struct {
	// Hist is the convolved travel-time histogram H = H1 * ... * Hk.
	Hist *hist.Histogram
	// Subs are the final sub-queries in path order (they partition the
	// query path).
	Subs []SubResult
	// IndexScans counts getTravelTimes invocations that reached the index.
	IndexScans int
	// EstimatorSkips counts sub-queries relaxed on the estimate alone.
	EstimatorSkips int
	// Elapsed is the wall-clock processing time.
	Elapsed time.Duration
}

// AvgSubPathLen returns the average final sub-query path length (Figure 7).
func (r *Result) AvgSubPathLen() float64 {
	if len(r.Subs) == 0 {
		return 0
	}
	n := 0
	for i := range r.Subs {
		n += len(r.Subs[i].Path)
	}
	return float64(n) / float64(len(r.Subs))
}

// PredictedMean returns Σ X̄_j, the paper's point prediction for the full
// path (Section 5.3.1).
func (r *Result) PredictedMean() float64 {
	var s float64
	for i := range r.Subs {
		s += r.Subs[i].MeanX()
	}
	return s
}

// subQ is a pending sub-query in the processing queue. base is the
// un-shifted interval; the effective interval applied to the index adds the
// shift-and-enlarge offsets accumulated from completed predecessors at
// processing time (applying the shift lazily avoids double-shifting when a
// sub-query is widened and re-processed; DESIGN.md §4, decision 3).
type subQ struct {
	path     network.Path
	base     snt.Interval
	filter   snt.Filter
	beta     int
	widenIdx int  // position of base.Width in cfg.Alphas (periodic only)
	terminal bool // the Procedure 1 line 12 fallback: fixed [0,tmax), no β
}

// TripQuery is Procedure 6: partition, process with relaxation, convolve.
func (e *Engine) TripQuery(q SPQ) Result {
	start := time.Now()
	var res Result
	initial := e.cfg.Partitioner.Partition(e.ix.Graph(), q)
	queue := make([]subQ, 0, len(initial)*2)
	for _, s := range initial {
		beta := s.Beta
		if e.cfg.ZoneBetas != nil && beta > 0 {
			if zb, ok := e.cfg.ZoneBetas[e.ix.Graph().Edge(s.Path[0]).Zone]; ok {
				beta = zb
			}
		}
		queue = append(queue, subQ{
			path:     s.Path,
			base:     s.Interval,
			filter:   s.Filter,
			beta:     beta,
			widenIdx: e.widenIndexOf(s.Interval),
		})
	}
	// Shift-and-enlarge accumulators over completed sub-queries (Section
	// 4.2): S = Σ H_j^min, R = Σ (H_j^max - H_j^min).
	var shiftS, shiftR int64
	for len(queue) > 0 {
		sub := queue[0]
		queue = queue[1:]
		iv := sub.base
		if iv.IsPeriodic() && len(res.Subs) > 0 && !e.cfg.DisableShiftEnlarge {
			iv = iv.ShiftEnlarge(shiftS, shiftR)
		}
		// Cardinality estimation: skip the scan when β̂ < β (never for
		// terminal sub-queries, which have no β).
		if sub.beta > 0 && e.cfg.Estimator.Enabled() {
			if bhat, ok := e.cfg.Estimator.Estimate(sub.path, iv, sub.filter); ok && bhat < float64(sub.beta) {
				res.EstimatorSkips++
				queue = append(e.relax(sub, iv), queue...)
				continue
			}
		}
		res.IndexScans++
		xs, fallback := e.ix.GetTravelTimes(sub.path, iv, sub.filter, sub.beta)
		if len(xs) == 0 {
			queue = append(e.relax(sub, iv), queue...)
			continue
		}
		h := hist.FromSamples(xs, e.cfg.BucketWidth)
		res.Subs = append(res.Subs, SubResult{
			Path:     sub.path,
			Interval: iv,
			Filter:   sub.filter,
			X:        xs,
			Hist:     h,
			Fallback: fallback,
		})
		shiftS += int64(h.Min())
		shiftR += int64(h.Max() - h.Min())
	}
	// Convolve in path order.
	var conv *hist.Histogram
	for i := range res.Subs {
		conv = conv.Convolve(res.Subs[i].Hist)
	}
	res.Hist = conv
	res.Elapsed = time.Since(start)
	return res
}

// widenIndexOf locates the interval's width in A (the largest index whose
// α does not exceed the width, so foreign widths still widen correctly).
func (e *Engine) widenIndexOf(iv snt.Interval) int {
	if !iv.IsPeriodic() {
		return 0
	}
	idx := 0
	for i, a := range e.cfg.Alphas {
		if iv.Width >= a {
			idx = i
		}
	}
	return idx
}

// relax is Procedure 1 (σ): widen the periodic interval to the next size in
// A; once A is exhausted split the path (σR or σL) and reset children to
// αmin; then drop non-temporal predicates; finally fall back to all data in
// the fixed interval [0, tmax) with no β. The returned sub-queries replace
// the failed one at the front of the queue, preserving path order.
func (e *Engine) relax(sub subQ, effective snt.Interval) []subQ {
	alphas := e.cfg.Alphas
	if sub.base.IsPeriodic() && sub.widenIdx+1 < len(alphas) {
		sub.widenIdx++
		sub.base = sub.base.Resize(alphas[sub.widenIdx])
		return []subQ{sub}
	}
	if len(sub.path) > 1 {
		m := e.splitPoint(sub, effective)
		mk := func(p network.Path) subQ {
			child := subQ{path: p, base: sub.base, filter: sub.filter, beta: sub.beta}
			if child.base.IsPeriodic() {
				child.base = child.base.Resize(alphas[0])
			}
			return child
		}
		return []subQ{mk(sub.path[:m]), mk(sub.path[m:])}
	}
	if sub.filter.HasPredicate() {
		sub.filter = sub.filter.DropPredicates()
		return []subQ{sub}
	}
	if sub.terminal {
		// Cannot happen: the terminal query always yields at least the
		// speed-limit estimate for a single segment. Guard anyway.
		return nil
	}
	_, tmax := e.ix.TimeRange()
	return []subQ{{
		path:     sub.path,
		base:     snt.NewFixed(0, tmax+1),
		filter:   sub.filter,
		beta:     0,
		terminal: true,
	}}
}

// splitPoint returns m so the path splits into P[0,m) and P[m,l).
func (e *Engine) splitPoint(sub subQ, effective snt.Interval) int {
	l := len(sub.path)
	if e.cfg.Splitter == SigmaR || sub.beta <= 0 {
		return l / 2
	}
	// σL: the largest m in [1, l-1] with |T^{P[0,m)}| >= β. Cardinality is
	// non-increasing in m, so binary search with exact counting scans
	// (capped at β) — this is the expense Figure 9 charges to σL.
	lo, hi := 1, l-1 // invariant: count(lo) >= β assumed, answer in [lo, hi]
	if e.ix.CountMatches(sub.path[:1], effective, sub.filter, sub.beta) < sub.beta {
		return 1 // even a single segment falls short; minimal prefix
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if e.ix.CountMatches(sub.path[:mid], effective, sub.filter, sub.beta) >= sub.beta {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}
