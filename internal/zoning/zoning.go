// Package zoning implements the zone dataset of Section 5.1.2: a set of zone
// geometries, each assigning a zone category (city, rural, summer house) to
// an area, and the spatial join that annotates every network segment with a
// zone type. Segments touching more than one zone type get the derived
// "ambiguous" type. Points covered by no polygon are rural, mirroring the
// Danish zoning map where rural is the default land use.
package zoning

import "pathhist/internal/network"

// Point is a planar point in world meters.
type Point struct {
	X, Y float64
}

// Polygon is a simple (non-self-intersecting) polygon with a zone category.
type Polygon struct {
	Pts  []Point
	Type network.Zone
}

// Contains reports whether p lies inside the polygon, using the even-odd
// ray-casting rule. Points exactly on an edge may be classified either way;
// the join samples multiple points per segment so this does not matter.
func (pg *Polygon) Contains(p Point) bool {
	in := false
	n := len(pg.Pts)
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		a, b := pg.Pts[i], pg.Pts[j]
		if (a.Y > p.Y) != (b.Y > p.Y) {
			xInt := a.X + (p.Y-a.Y)/(b.Y-a.Y)*(b.X-a.X)
			if p.X < xInt {
				in = !in
			}
		}
	}
	return in
}

// Map is a collection of zone polygons.
type Map struct {
	polys []Polygon
}

// NewMap returns a Map over the given polygons.
func NewMap(polys []Polygon) *Map { return &Map{polys: polys} }

// NumPolygons returns the number of zone geometries.
func (m *Map) NumPolygons() int { return len(m.polys) }

// TypeAt returns the zone type at a single point: the type of the covering
// polygon(s) if they agree, ambiguous if they disagree, rural if none cover.
func (m *Map) TypeAt(p Point) network.Zone {
	found := false
	var t network.Zone
	for i := range m.polys {
		if m.polys[i].Contains(p) {
			if found && m.polys[i].Type != t {
				return network.ZoneAmbiguous
			}
			found, t = true, m.polys[i].Type
		}
	}
	if !found {
		return network.ZoneRural
	}
	return t
}

// Assign performs the spatial join of Section 5.1.2: every edge of g is
// assigned the zone type covering it, sampling both endpoints and the
// midpoint; edges located in more than one zone type become ambiguous.
func (m *Map) Assign(g *network.Graph) {
	for i := 0; i < g.NumEdges(); i++ {
		id := network.EdgeID(i)
		e := g.Edge(id)
		a := g.Vertex(e.From)
		b := g.Vertex(e.To)
		samples := [3]Point{
			{a.X, a.Y},
			{(a.X + b.X) / 2, (a.Y + b.Y) / 2},
			{b.X, b.Y},
		}
		z := m.TypeAt(samples[0])
		for _, p := range samples[1:] {
			if t := m.TypeAt(p); t != z {
				z = network.ZoneAmbiguous
				break
			}
		}
		g.SetZone(id, z)
	}
}

// rectPolygon converts a rectangle to a 4-vertex polygon.
func rectPolygon(r network.Rect, t network.Zone) Polygon {
	return Polygon{
		Pts: []Point{
			{r.MinX, r.MinY}, {r.MaxX, r.MinY}, {r.MaxX, r.MaxY}, {r.MinX, r.MaxY},
		},
		Type: t,
	}
}

// FromGenResult builds a zoning map from the built-up footprints of the
// synthetic network generator. City polygons are inset by cityInset meters so
// that the outermost ring of each city grid straddles the city boundary,
// yielding a realistic share of ambiguous segments (as the overlap of zone
// geometries does in the Danish dataset).
func FromGenResult(res *network.GenResult, cityInset float64) *Map {
	var polys []Polygon
	for _, r := range res.CityRects {
		polys = append(polys, rectPolygon(r.Expand(-cityInset), network.ZoneCity))
	}
	for _, r := range res.SummerRects {
		polys = append(polys, rectPolygon(r, network.ZoneSummerHouse))
	}
	return NewMap(polys)
}
