package zoning

import (
	"testing"

	"pathhist/internal/network"
)

func square(x0, y0, x1, y1 float64, t network.Zone) Polygon {
	return Polygon{
		Pts:  []Point{{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}},
		Type: t,
	}
}

func TestPolygonContains(t *testing.T) {
	sq := square(0, 0, 10, 10, network.ZoneCity)
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{5, 5}, true},
		{Point{-1, 5}, false},
		{Point{11, 5}, false},
		{Point{5, -1}, false},
		{Point{5, 11}, false},
		{Point{0.001, 0.001}, true},
		{Point{9.999, 9.999}, true},
	}
	for _, c := range cases {
		if got := sq.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPolygonContainsConcave(t *testing.T) {
	// L-shape: big square with the top-right quadrant removed.
	l := Polygon{
		Pts: []Point{
			{0, 0}, {10, 0}, {10, 5}, {5, 5}, {5, 10}, {0, 10},
		},
		Type: network.ZoneCity,
	}
	if !l.Contains(Point{2, 8}) {
		t.Error("point in upper-left arm should be inside")
	}
	if l.Contains(Point{8, 8}) {
		t.Error("point in removed quadrant should be outside")
	}
	if !l.Contains(Point{8, 2}) {
		t.Error("point in lower-right arm should be inside")
	}
}

func TestTypeAt(t *testing.T) {
	m := NewMap([]Polygon{
		square(0, 0, 10, 10, network.ZoneCity),
		square(8, 8, 20, 20, network.ZoneSummerHouse),
		square(30, 30, 40, 40, network.ZoneCity),
		square(32, 32, 38, 38, network.ZoneCity), // same-type overlap: not ambiguous
	})
	cases := []struct {
		p    Point
		want network.Zone
	}{
		{Point{5, 5}, network.ZoneCity},
		{Point{15, 15}, network.ZoneSummerHouse},
		{Point{9, 9}, network.ZoneAmbiguous}, // city ∩ summer house
		{Point{100, 100}, network.ZoneRural}, // uncovered
		{Point{35, 35}, network.ZoneCity},    // overlapping same type
	}
	for _, c := range cases {
		if got := m.TypeAt(c.p); got != c.want {
			t.Errorf("TypeAt(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestAssign(t *testing.T) {
	g := network.New()
	v0 := g.AddVertex(1, 5)  // inside city square
	v1 := g.AddVertex(9, 5)  // inside city square
	v2 := g.AddVertex(25, 5) // outside
	v3 := g.AddVertex(40, 5) // outside
	eCity := g.AddEdge(network.Edge{From: v0, To: v1, Cat: network.Residential, SpeedLimit: 30})
	eCross := g.AddEdge(network.Edge{From: v1, To: v2, Cat: network.Primary, SpeedLimit: 50})
	eRural := g.AddEdge(network.Edge{From: v2, To: v3, Cat: network.Primary, SpeedLimit: 80})
	m := NewMap([]Polygon{square(0, 0, 10, 10, network.ZoneCity)})
	m.Assign(g)
	if got := g.Edge(eCity).Zone; got != network.ZoneCity {
		t.Errorf("city edge zone = %v", got)
	}
	if got := g.Edge(eCross).Zone; got != network.ZoneAmbiguous {
		t.Errorf("crossing edge zone = %v", got)
	}
	if got := g.Edge(eRural).Zone; got != network.ZoneRural {
		t.Errorf("rural edge zone = %v", got)
	}
}

func TestFromGenResultZonesMix(t *testing.T) {
	cfg := network.DefaultGenConfig()
	cfg.Cities = 4
	cfg.GridSize = 7
	res := network.Generate(cfg)
	m := FromGenResult(res, cfg.GridSpacing*0.9)
	m.Assign(res.Graph)
	counts := map[network.Zone]int{}
	for i := 0; i < res.Graph.NumEdges(); i++ {
		counts[res.Graph.Edge(network.EdgeID(i)).Zone]++
	}
	for _, z := range []network.Zone{network.ZoneCity, network.ZoneRural,
		network.ZoneSummerHouse, network.ZoneAmbiguous} {
		if counts[z] == 0 {
			t.Errorf("zone %v absent after join (counts=%v)", z, counts)
		}
	}
	if counts[network.ZoneCity] < counts[network.ZoneSummerHouse] {
		t.Errorf("expected more city than summer-house edges: %v", counts)
	}
}
