package snt

import (
	"math/rand"
	"testing"

	"pathhist/internal/network"
	"pathhist/internal/temporal"
	"pathhist/internal/traj"
	"pathhist/internal/workload"
)

// referenceTravelTimes is the brute-force oracle for GetTravelTimes with
// unlimited beta: scan every trajectory, find every contiguous occurrence
// of the path whose first-segment entry time satisfies the interval and
// whose trajectory passes the filter, and emit the summed durations.
func referenceTravelTimes(s *traj.Store, p network.Path, iv Interval, f Filter) []int {
	var out []int
	for i := 0; i < s.Len(); i++ {
		tr := s.Get(traj.ID(i))
		if tr.ID == f.ExcludeTraj {
			continue
		}
		if f.User != traj.NoUser && tr.User != f.User {
			continue
		}
		tp := tr.Path()
	occ:
		for off := 0; off+len(p) <= len(tp); off++ {
			for j := range p {
				if tp[off+j] != p[j] {
					continue occ
				}
			}
			if !iv.Contains(tr.Seq[off].T) {
				continue
			}
			sum := 0
			for j := range p {
				sum += int(tr.Seq[off+j].TT)
			}
			out = append(out, sum)
		}
	}
	return out
}

// TestRandomQueriesAgainstBruteForce cross-checks the full index stack
// (FM-index ranges, temporal scans, partitioning, probe join) against the
// oracle on a realistic generated workload.
func TestRandomQueriesAgainstBruteForce(t *testing.T) {
	cfg := workload.SmallConfig()
	cfg.Net.Cities = 3
	cfg.Net.GridSize = 5
	cfg.Drivers = 15
	cfg.Days = 30
	cfg.TargetTrips = 500
	ds := workload.BuildDataset(cfg)
	rng := rand.New(rand.NewSource(99))

	for _, opts := range []Options{
		{Tree: temporal.CSS},
		{Tree: temporal.BPlus, PartitionDays: 7},
		{Tree: temporal.CSS, PartitionDays: 3, OldestFirst: true},
	} {
		ix := Build(ds.G, ds.Store, opts)
		tmin, tmax := ix.TimeRange()
		for trial := 0; trial < 120; trial++ {
			// Random sub-path of a random trajectory (guaranteed to exist
			// at least once) — occasionally perturbed to a likely-absent
			// path.
			tr := ds.Store.Get(traj.ID(rng.Intn(ds.Store.Len())))
			tp := tr.Path()
			plen := 1 + rng.Intn(6)
			if plen > len(tp) {
				plen = len(tp)
			}
			off := rng.Intn(len(tp) - plen + 1)
			p := append(network.Path(nil), tp[off:off+plen]...)
			if rng.Intn(8) == 0 {
				p[rng.Intn(len(p))] = network.EdgeID(rng.Intn(ds.G.NumEdges()))
			}

			var iv Interval
			switch rng.Intn(3) {
			case 0:
				lo := tmin + rng.Int63n(tmax-tmin)
				iv = NewFixed(lo, lo+rng.Int63n(tmax-lo)+1)
			case 1:
				iv = PeriodicAround(tmin+rng.Int63n(tmax-tmin), 900+rng.Int63n(7200))
			default:
				iv = NewPeriodic(rng.Int63n(DaySeconds), 900) // may wrap
			}
			f := NoFilter
			if rng.Intn(3) == 0 {
				f.User = traj.UserID(rng.Intn(cfg.Drivers))
			}
			if rng.Intn(4) == 0 {
				f.ExcludeTraj = tr.ID
			}

			got, fallback := ix.GetTravelTimes(p, iv, f, 0)
			want := referenceTravelTimes(ds.Store, p, iv, f)
			if fallback {
				// Fallback only fires when the path is a single segment
				// nobody ever traversed.
				if len(want) != 0 || len(p) != 1 {
					t.Fatalf("opts %+v trial %d: spurious fallback (want %d matches)", opts, trial, len(want))
				}
				continue
			}
			if !equalInts(sortedCopy(got), sortedCopy(want)) {
				t.Fatalf("opts %+v trial %d: path %v iv %v filter %+v: index %v vs oracle %v",
					opts, trial, p, iv, f, sortedCopy(got), sortedCopy(want))
			}
			// CountMatches agrees with the oracle's distinct-occurrence
			// count.
			if c := ix.CountMatches(p, iv, f, 0); c != len(want) {
				t.Fatalf("opts %+v trial %d: CountMatches %d vs oracle %d", opts, trial, c, len(want))
			}
		}
	}
}

// TestBetaSubsetProperty: with a beta limit, results are always a subset of
// the unlimited result multiset and respect the limit for periodic
// intervals.
func TestBetaSubsetProperty(t *testing.T) {
	cfg := workload.SmallConfig()
	cfg.Net.Cities = 3
	cfg.Net.GridSize = 5
	cfg.Drivers = 10
	cfg.Days = 20
	cfg.TargetTrips = 400
	ds := workload.BuildDataset(cfg)
	ix := Build(ds.G, ds.Store, Options{})
	rng := rand.New(rand.NewSource(5))
	tmin, tmax := ix.TimeRange()
	for trial := 0; trial < 80; trial++ {
		tr := ds.Store.Get(traj.ID(rng.Intn(ds.Store.Len())))
		tp := tr.Path()
		plen := 1 + rng.Intn(3)
		if plen > len(tp) {
			plen = len(tp)
		}
		p := tp[:plen]
		iv := NewFixed(tmin, tmax+1)
		beta := 1 + rng.Intn(5)
		all, _ := ix.GetTravelTimes(p, iv, NoFilter, 0)
		limited, _ := ix.GetTravelTimes(p, iv, NoFilter, beta)
		if len(limited) > len(all) {
			t.Fatalf("beta result larger than unlimited")
		}
		if len(all) >= beta && len(limited) < beta {
			t.Fatalf("beta=%d got %d despite %d available", beta, len(limited), len(all))
		}
		// Multiset subset check.
		counts := map[int]int{}
		for _, x := range all {
			counts[x]++
		}
		for _, x := range limited {
			counts[x]--
			if counts[x] < 0 {
				t.Fatalf("beta result %d not in unlimited multiset", x)
			}
		}
	}
}
