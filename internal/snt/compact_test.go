package snt

import (
	"strings"
	"testing"

	"pathhist/internal/network"
	"pathhist/internal/temporal"
	"pathhist/internal/traj"
)

// sliceStore cuts [lo, hi) of a sorted store into a fresh store.
func sliceStore(s *traj.Store, lo, hi int) *traj.Store {
	out := traj.NewStore()
	for i := lo; i < hi; i++ {
		tr := s.Get(traj.ID(i))
		out.Add(tr.User, append([]traj.Entry(nil), tr.Seq...))
	}
	return out
}

// fragmentedIndex builds an index over the first chunk of the store and
// extends it with the rest in nBatches batches, yielding nBatches+1
// partitions over exactly the store's trajectories.
func fragmentedIndex(t testing.TB, g *network.Graph, s *traj.Store, nBatches int, opts Options) *Index {
	t.Helper()
	s.SortByStart()
	n := s.Len()
	chunk := n / (nBatches + 1)
	ix := Build(g, sliceStore(s, 0, chunk), opts)
	for b := 0; b < nBatches; b++ {
		lo := chunk * (b + 1)
		hi := chunk * (b + 2)
		if b == nBatches-1 {
			hi = n
		}
		next, err := ix.Extend(sliceStore(s, lo, hi))
		if err != nil {
			t.Fatalf("extend batch %d: %v", b, err)
		}
		ix = next
	}
	return ix
}

// queryGrid exercises paths × intervals × filters with exact-order
// comparison between two indexes.
func assertSameResults(t *testing.T, ids map[string]network.EdgeID, a, b *Index, label string) {
	t.Helper()
	paths := []network.Path{
		path(ids, "A"), path(ids, "A", "B"), path(ids, "A", "B", "E"),
		path(ids, "A", "C", "D", "E"), path(ids, "B", "E"), path(ids, "C", "D"),
	}
	intervals := []Interval{
		NewFixed(0, 40*DaySeconds),
		NewFixed(5*DaySeconds, 12*DaySeconds),
		PeriodicAround(10*3600, 3600),
		NewPeriodic(23*3600, 7200),
	}
	filters := []Filter{NoFilter, {User: 2, ExcludeTraj: -1}, {User: traj.NoUser, ExcludeTraj: 7}}
	for _, p := range paths {
		for _, iv := range intervals {
			for _, f := range filters {
				for _, beta := range []int{0, 5, 20} {
					xa, fba := a.GetTravelTimes(p, iv, f, beta)
					xb, fbb := b.GetTravelTimes(p, iv, f, beta)
					// Exact sample order: the temporal scan order is
					// partition-layout invariant, so the sequences must be
					// identical, not just equal as sets.
					if fba != fbb || !equalInts(xa, xb) {
						t.Fatalf("%s: %v %v f=%v beta=%d: %v/%v vs %v/%v",
							label, p, iv, f, beta, xa, fba, xb, fbb)
					}
				}
			}
		}
	}
	for _, p := range paths {
		if a.PathCount(p) != b.PathCount(p) {
			t.Fatalf("%s: PathCount differs on %v", label, p)
		}
		ra, rb := a.ISARanges(p), b.ISARanges(p)
		if len(ra) == len(rb) {
			for i := range ra {
				if ra[i] != rb[i] {
					t.Fatalf("%s: ISA range %d differs on %v: %v vs %v", label, i, p, ra[i], rb[i])
				}
			}
		}
	}
}

// TestCompactMatchesFullBuild is the central differential: an index
// fragmented by many Extends and then fully compacted must be structurally
// identical to a from-scratch single-partition Build over the same
// trajectories — same sample order, same ISA ranges, same ToD histograms,
// same memory model.
func TestCompactMatchesFullBuild(t *testing.T) {
	for _, oldest := range []bool{false, true} {
		opts := Options{Tree: temporal.CSS, TodBucketSeconds: 900, OldestFirst: oldest}
		g, ids, s := synthStore(t, 20, 15)
		frag := fragmentedIndex(t, g, s, 7, opts)
		if frag.NumPartitions() != 8 {
			t.Fatalf("fragmented partitions = %d", frag.NumPartitions())
		}

		compacted, stats, err := frag.Compact(CompactionPolicy{})
		if err != nil {
			t.Fatal(err)
		}
		if compacted.NumPartitions() != 1 || stats.PartitionsBefore != 8 || stats.PartitionsAfter != 1 || stats.Runs != 1 {
			t.Fatalf("compaction stats: %+v", stats)
		}
		if stats.TrajsRebuilt != s.Len() {
			t.Fatalf("TrajsRebuilt = %d, want %d", stats.TrajsRebuilt, s.Len())
		}
		if compacted.CompactedFrom() != 8 || !strings.Contains(compacted.String(), "1 partitions (compacted from 8)") {
			t.Fatalf("String() = %q", compacted.String())
		}

		_, _, s2 := synthStore(t, 20, 15)
		scratch := Build(g, s2, opts)
		assertSameResults(t, ids, scratch, compacted, "compacted vs from-scratch")

		// The frozen columns are bit-identical to the from-scratch build's:
		// same timestamps and payloads, rewritten ISA positions, and the
		// partition column elided (single-partition layout).
		scratch.Frozen().Each(func(e network.EdgeID, want *temporal.FrozenIndex) {
			got := compacted.Frozen().Get(e)
			if got == nil || got.Len() != want.Len() {
				t.Fatalf("edge %d: column length mismatch", e)
			}
			if got.W != nil {
				t.Fatalf("edge %d: partition column not elided after full compaction", e)
			}
			for i := range want.Ts {
				if got.Ts[i] != want.Ts[i] || got.Traj[i] != want.Traj[i] ||
					got.Seq[i] != want.Seq[i] || got.ISA[i] != want.ISA[i] ||
					got.A[i] != want.A[i] || got.TT[i] != want.TT[i] {
					t.Fatalf("edge %d record %d: %+v vs scratch", e, i, got)
				}
			}
		})

		// Memory model: identical FM-index and forest footprints (the many
		// small wavelet trees and C arrays are gone).
		mc, ms := compacted.Memory(), scratch.Memory()
		if mc != ms {
			t.Fatalf("memory model differs: %+v vs %+v", mc, ms)
		}
		fragMem := frag.Memory()
		if mc.CBytes >= fragMem.CBytes || mc.Total() >= fragMem.Total() {
			t.Fatalf("compaction did not shrink the index: %+v vs fragmented %+v", mc, fragMem)
		}

		// ToD selectivities match the from-scratch build exactly.
		for _, name := range []string{"A", "B", "E"} {
			sa, oka := scratch.TodSelectivity(ids[name], NewPeriodic(7*3600, 7200))
			sb, okb := compacted.TodSelectivity(ids[name], NewPeriodic(7*3600, 7200))
			if oka != okb || sa != sb {
				t.Fatalf("ToD selectivity differs on %s: %v/%v vs %v/%v", name, sa, oka, sb, okb)
			}
		}
	}
}

// TestCompactSupersedesSource pins the linear-chain contract: compaction
// supersedes the receiver like Extend does, the receiver stays queryable,
// and the compacted snapshot remains extendable.
func TestCompactSupersedesSource(t *testing.T) {
	g, ids, s := synthStore(t, 20, 10)
	frag := fragmentedIndex(t, g, s, 7, Options{})
	compacted, _, err := frag.Compact(CompactionPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	// Source refuses further mutation but still answers queries.
	if _, _, err := frag.Compact(CompactionPolicy{}); err != ErrSuperseded {
		t.Fatalf("second Compact on superseded snapshot: %v", err)
	}
	far := traj.NewStore()
	far.Add(0, []traj.Entry{{Edge: ids["A"], T: 1 << 40, TT: 5}})
	if _, err := frag.Extend(far); err != ErrSuperseded {
		t.Fatalf("Extend on superseded snapshot: %v", err)
	}
	if xs, _ := frag.GetTravelTimes(path(ids, "A", "B"), NewFixed(0, 1<<60), NoFilter, 0); len(xs) == 0 {
		t.Fatal("superseded source stopped answering queries")
	}
	// The compacted snapshot continues the chain.
	ext, err := compacted.Extend(far)
	if err != nil {
		t.Fatal(err)
	}
	if ext.NumPartitions() != 2 {
		t.Fatalf("partitions after compact+extend = %d", ext.NumPartitions())
	}
	if xs, _ := ext.GetTravelTimes(path(ids, "A"), NewFixed(1<<40, 1<<60), NoFilter, 0); len(xs) != 1 {
		t.Fatalf("post-compaction extend lost the new batch: %v", xs)
	}
}

// TestCompactPolicyTiers pins the size-tiered planner: large partitions
// survive, runs are cut at the record cap, and the trigger gates planning.
func TestCompactPolicyTiers(t *testing.T) {
	g, ids, s := synthStore(t, 24, 12)
	frag := fragmentedIndex(t, g, s, 11, Options{TodBucketSeconds: 900})
	if frag.NumPartitions() != 12 {
		t.Fatalf("partitions = %d", frag.NumPartitions())
	}
	perPart := frag.parts[1].records

	// Below the trigger: no-op, receiver returned un-superseded.
	same, stats, err := frag.Compact(CompactionPolicy{TriggerPartitions: 64})
	if err != nil || same != frag || stats.PartitionsAfter != stats.PartitionsBefore {
		t.Fatalf("trigger gate failed: %v %+v", err, stats)
	}
	if frag.superseded.Load() {
		t.Fatal("no-op compaction superseded the snapshot")
	}

	// A record cap of ~3 partitions' worth produces several merged tiers.
	capRecords := perPart*3 + 1
	tiered, stats, err := frag.Compact(CompactionPolicy{MaxMergedRecords: capRecords})
	if err != nil {
		t.Fatal(err)
	}
	if tiered.NumPartitions() >= 12 || stats.Runs < 2 {
		t.Fatalf("tiered compaction ineffective: %d partitions, %+v", tiered.NumPartitions(), stats)
	}
	total := 0
	for _, pt := range tiered.parts {
		total += pt.records
		if pt.records > capRecords && pt.records > frag.parts[0].records {
			t.Fatalf("merged partition exceeds cap: %d > %d", pt.records, capRecords)
		}
	}
	if total != frag.Stats().Records {
		t.Fatalf("records lost: %d vs %d", total, frag.Stats().Records)
	}
	// Partial layouts answer identically to the fragmented source.
	assertSameResults(t, ids, frag, tiered, "tiered vs fragmented")
}

// TestCompactSurvivorsAndRemap builds a big/small/big/small layout so that
// merged runs sit next to surviving large partitions: the survivors' records
// must get remapped partition ids while sharing everything else, and the
// merged runs must collapse around them.
func TestCompactSurvivorsAndRemap(t *testing.T) {
	g, ids, s := synthStore(t, 32, 12)
	s.SortByStart()
	n := s.Len()
	// Partition layout by trajectory count: one big half, three small
	// sixteenths, one big quarter, then the remainder in three small cuts.
	cuts := []int{0, n / 2}
	for k := 0; k < 3; k++ {
		cuts = append(cuts, cuts[len(cuts)-1]+n/16)
	}
	cuts = append(cuts, cuts[len(cuts)-1]+n/4)
	rest := n - cuts[len(cuts)-1]
	for k := 0; k < 2; k++ {
		cuts = append(cuts, cuts[len(cuts)-1]+rest/3)
	}
	cuts = append(cuts, n)
	ix := Build(g, sliceStore(s, cuts[0], cuts[1]), Options{TodBucketSeconds: 900})
	for c := 1; c+1 < len(cuts); c++ {
		next, err := ix.Extend(sliceStore(s, cuts[c], cuts[c+1]))
		if err != nil {
			t.Fatal(err)
		}
		ix = next
	}
	if ix.NumPartitions() != 8 {
		t.Fatalf("partitions = %d", ix.NumPartitions())
	}
	// Cap below the big partitions, above each small run's sum.
	bigMin := ix.parts[0].records
	if r := ix.parts[4].records; r < bigMin {
		bigMin = r
	}
	smallSum := 0
	for _, w := range []int{1, 2, 3} {
		smallSum += ix.parts[w].records
	}
	if smallSum >= bigMin {
		t.Fatalf("layout precondition broken: small run %d >= big %d", smallSum, bigMin)
	}
	compacted, stats, err := ix.Compact(CompactionPolicy{TriggerPartitions: -1, MaxMergedRecords: bigMin})
	if err != nil {
		t.Fatal(err)
	}
	// Expected layout: [big][merged smalls][big][merged smalls] = 4.
	if stats.PartitionsAfter != 4 || stats.Runs != 2 {
		t.Fatalf("stats: %+v", stats)
	}
	if compacted.parts[0].records != ix.parts[0].records || compacted.parts[2].records != ix.parts[4].records {
		t.Fatal("surviving partitions changed size")
	}
	// Survivors share their FM-index with the source (no rebuild).
	if compacted.parts[0].fm != ix.parts[0].fm || compacted.parts[2].fm != ix.parts[4].fm {
		t.Fatal("surviving partitions were rebuilt")
	}
	assertSameResults(t, ids, ix, compacted, "survivors")
	for _, name := range []string{"A", "E"} {
		sa, oka := ix.TodSelectivity(ids[name], NewPeriodic(8*3600, 3600))
		sb, okb := compacted.TodSelectivity(ids[name], NewPeriodic(8*3600, 3600))
		if oka != okb || !approxEq(sa, sb) {
			t.Fatalf("ToD selectivity differs on %s: %v vs %v", name, sa, sb)
		}
	}
}

func approxEq(a, b float64) bool {
	d := a - b
	return d < 1e-12 && d > -1e-12
}

// TestCompactEmptyPartitions: PartitionDays layouts can contain partitions
// with no trajectories at all; compaction must carry them through a merge.
func TestCompactEmptyPartitions(t *testing.T) {
	g, ids := network.PaperExample()
	s := traj.NewStore()
	// Day 0 and day 9 only: Build with 1-day partitions makes 10 partitions,
	// 8 of them empty.
	for d := range []int{0, 9} {
		day := int64([]int{0, 9}[d])
		for k := 0; k < 5; k++ {
			t0 := day*DaySeconds + int64(8*3600+60*k)
			s.Add(traj.UserID(k), []traj.Entry{
				{Edge: ids["A"], T: t0, TT: 10},
				{Edge: ids["B"], T: t0 + 10, TT: 12},
			})
		}
	}
	ix := Build(g, s, Options{PartitionDays: 1})
	if ix.NumPartitions() != 10 {
		t.Fatalf("partitions = %d", ix.NumPartitions())
	}
	compacted, stats, err := ix.Compact(CompactionPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if compacted.NumPartitions() != 1 || stats.TrajsRebuilt != 10 {
		t.Fatalf("stats: %+v", stats)
	}
	a, _ := ix.GetTravelTimes(path(ids, "A", "B"), NewFixed(0, 1<<60), NoFilter, 0)
	b, _ := compacted.GetTravelTimes(path(ids, "A", "B"), NewFixed(0, 1<<60), NoFilter, 0)
	if len(a) != 10 || !equalInts(a, b) {
		t.Fatalf("empty-partition merge broke retrieval: %v vs %v", a, b)
	}
}
