package snt

import (
	"testing"
)

// FuzzReadSnapshotBytes drives the snapshot loader with arbitrary file
// images. The loader's contract is fail-closed: truncations, bit flips,
// hostile section lengths and cross-section disagreements must all come
// back as errors — never a panic, never a huge allocation, and never a
// half-populated index. Anything it does accept must serve a query and
// re-snapshot without crashing.
func FuzzReadSnapshotBytes(f *testing.F) {
	g, _, ix := snapshotFixture(f)
	seed := snapshotBytes(f, ix, 42)
	f.Add(seed)
	f.Add(seed[:len(seed)/2]) // truncated mid-section
	f.Add(seed[:8])           // not even a full header
	f.Add([]byte{})
	corrupt := append([]byte(nil), seed...)
	corrupt[len(corrupt)/3] ^= 0x40 // checksum-breaking bit flip
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		re, epoch, err := ReadSnapshotBytes(g, data)
		if err != nil {
			return
		}
		// An accepted snapshot is a live index: it answers the basic scan
		// and writes itself back out at the same epoch.
		st := re.Stats()
		if st.Trajs < 0 || st.Records < 0 {
			t.Fatalf("accepted snapshot with negative stats: %+v", st)
		}
		_ = snapshotBytes(t, re, epoch)
	})
}
