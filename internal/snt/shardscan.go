package snt

import (
	"pathhist/internal/network"
	"pathhist/internal/traj"
)

// Sharded scatter-gather support (DESIGN.md §14). A sharded deployment
// splits the trajectory store into contiguous-id stripes, builds one Index
// per stripe, and answers a sub-query by merging the per-shard scans. The
// merge must reproduce the single-index scan order bit for bit, so a shard
// cannot return its travel-time samples alone: sample order erases the
// (timestamp, trajectory) identity the global β cutoff is defined over.
// ScanCandidates therefore returns the admitted first-segment records
// themselves — in the shard's scan order, β-bounded — and the router
// re-establishes the global order by k-way merge before applying β.

// Cand is one admitted first-segment candidate of a sharded scan: the
// Procedure 3 record identity (entry timestamp, shard-local trajectory id,
// sequence position) plus the sub-query's travel-time sample for the
// candidate, when one exists. For single-segment paths the sample is the
// record's own traversal time and HasX is always true; for longer paths it
// is the Procedure 4 probe-join result a_{l-1} - (a_0 - TT_0), and HasX is
// false when the trajectory left the path before its last segment.
type Cand struct {
	Ts   int64
	Traj traj.ID // shard-local id; the router ranks by (Ts, shard, Traj, Seq)
	Seq  int32
	X    int32
	HasX bool
}

// ScanCandidates runs Procedures 2-4 over this index for one sub-query and
// returns the admitted first-segment candidates in scan order, stopping
// after beta admissions (beta <= 0 scans exhaustively). anyData reports
// whether the path occurs in the trajectory string at all (the fallback
// trigger of Procedure 5 — a sharded caller must OR it across shards before
// falling back to the speed-limit estimate).
//
// The probe join is exact for every candidate the global merge can retain:
// a candidate admitted here bounds the shard's [minT, maxT] sweep window,
// and its unique matching last-segment record enters within maxTrajDur of
// the candidate's own timestamp, so the match lies inside the shard's
// restricted Procedure 4 window whenever it exists. Candidates beyond the
// global β cutoff are simply dropped by the router, samples and all.
//
// len(cands) is the shard's β-capped admitted count. Because per-shard
// counts are capped at the same beta the merged check uses,
// Σ_s min(count_s, β) ≥ β exactly when Σ_s count_s ≥ β, so the router can
// apply Procedure 5's "at least β matches" rule to the capped sum.
//
// The returned slice is freshly allocated and owned by the caller. If the
// scratch's cancel channel fires mid-scan the output is partial; callers
// must check sc.Canceled() and discard it, as with GetTravelTimesWith.
func (ix *Index) ScanCandidates(sc *Scratch, p network.Path, iv Interval, f Filter, beta int) (cands []Cand, anyData bool) {
	if len(p) == 0 {
		return nil, false
	}
	ranges, total := ix.isaRanges(sc, p)
	if total == 0 {
		return nil, false
	}
	if len(p) == 1 {
		return ix.scanCandsSingle(sc, p[0], ranges, iv, f, beta), true
	}
	return ix.scanCandsMulti(sc, p, ranges, iv, f, beta), true
}

// scanCandsSingle mirrors scanSingle: with l = 1 the candidate is its own
// probe match, so every admitted record carries its traversal time.
func (ix *Index) scanCandsSingle(sc *Scratch, e network.EdgeID, ranges []Range, iv Interval, f Filter, beta int) []Cand {
	fx := ix.frozen.Get(e)
	if fx == nil || fx.Len() == 0 {
		return nil
	}
	var cands []Cand
	if beta > 0 {
		cands = make([]Cand, 0, beta)
	}
	s := newFrozenScan(ix, fx, ranges, f, beta)
	descending := !ix.opts.OldestFirst
	forEachWindow(fx.Ts, iv, descending, func(st, en int) bool {
		if sc.Canceled() {
			return false
		}
		i, step := st, 1
		if descending {
			i, step = en-1, -1
		}
		for n := en - st; n > 0; n, i = n-1, i+step {
			if n&(cancelStride-1) == 0 && sc.Canceled() {
				return false
			}
			if !s.admit(i) {
				continue
			}
			cands = append(cands, Cand{Ts: fx.Ts[i], Traj: fx.Traj[i], Seq: fx.Seq[i], X: fx.TT[i], HasX: true})
			if beta > 0 && len(cands) >= beta {
				return false
			}
		}
		return true
	})
	return cands
}

// scanCandsMulti is buildMap + probeMap with candidate identity kept: the
// probe table maps (d, seq) to the candidate's index in the result slice,
// and the Procedure 4 sweep fills in X for the candidates it matches.
func (ix *Index) scanCandsMulti(sc *Scratch, p network.Path, ranges []Range, iv Interval, f Filter, beta int) []Cand {
	fx := ix.frozen.Get(p[0])
	if fx == nil || fx.Len() == 0 {
		return nil
	}
	ts := fx.Ts
	descending := !ix.opts.OldestFirst
	hint := beta
	if beta <= 0 {
		// Mirror buildMap's capped exhaustive-scan pre-size.
		const maxPresizeHint = 1 << 15
		hint = len(ts)
		if hint > maxPresizeHint {
			hint = maxPresizeHint
		}
	}
	sc.resetTable(hint)
	var (
		cands []Cand
		diffs []int32 // a_0 - TT_0 per candidate, consumed by the probe join
	)
	if beta > 0 {
		cands = make([]Cand, 0, beta)
		diffs = make([]int32, 0, beta)
	}
	s := newFrozenScan(ix, fx, ranges, f, beta)
	var minT, maxT int64
	forEachWindow(ts, iv, descending, func(st, en int) bool {
		if sc.Canceled() {
			return false
		}
		i, step := st, 1
		if descending {
			i, step = en-1, -1
		}
		for n := en - st; n > 0; n, i = n-1, i+step {
			if n&(cancelStride-1) == 0 && sc.Canceled() {
				return false
			}
			if !s.admit(i) {
				continue
			}
			t := fx.Ts[i]
			if len(cands) == 0 || t < minT {
				minT = t
			}
			if len(cands) == 0 || t > maxT {
				maxT = t
			}
			sc.insert(packKey(int32(fx.Traj[i]), fx.Seq[i]), int32(len(cands)))
			cands = append(cands, Cand{Ts: t, Traj: fx.Traj[i], Seq: fx.Seq[i]})
			diffs = append(diffs, fx.A[i]-fx.TT[i])
			if beta > 0 && len(cands) >= beta {
				return false
			}
		}
		return true
	})
	if len(cands) == 0 {
		return nil
	}
	last := ix.frozen.Get(p[len(p)-1])
	if last == nil {
		return cands
	}
	lts := last.Ts
	en := lowerBound(lts, maxT+ix.maxTrajDur+1)
	st := lowerBound(lts[:en], minT)
	seqShift := 1 - int32(len(p))
	for i := st; i < en; i++ {
		if (i-st)&(cancelStride-1) == cancelStride-1 && sc.Canceled() {
			break
		}
		if idx, ok := sc.lookup(packKey(int32(last.Traj[i]), last.Seq[i]+seqShift)); ok {
			c := &cands[idx]
			c.X = last.A[i] - diffs[idx]
			c.HasX = true
		}
	}
	return cands
}
