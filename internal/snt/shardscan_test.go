package snt

import (
	"math/rand"
	"testing"

	"pathhist/internal/network"
	"pathhist/internal/temporal"
	"pathhist/internal/traj"
	"pathhist/internal/workload"
)

// reconstructFromCands replays the Procedure 5 decision ladder over a
// candidate scan — the single-shard degenerate case of the sharded router's
// merge, where the merged order is exactly the shard's scan order. It must
// reproduce GetTravelTimes bit for bit.
func reconstructFromCands(ix *Index, p network.Path, cands []Cand, anyData bool, iv Interval, beta int, oldestFirst bool) (xs []int, fallback bool) {
	if !anyData {
		if len(p) == 1 {
			return []int{ix.g.EstimateTTSeconds(p[0])}, true
		}
		return nil, false
	}
	if len(cands) < beta && iv.IsPeriodic() {
		return nil, false
	}
	if len(p) == 1 {
		// scanSingle emits samples in ascending time order: the reverse of
		// a descending scan's candidate order, the same order otherwise.
		if len(cands) == 0 {
			return []int{ix.g.EstimateTTSeconds(p[0])}, true
		}
		if oldestFirst {
			for _, c := range cands {
				xs = append(xs, int(c.X))
			}
		} else {
			for i := len(cands) - 1; i >= 0; i-- {
				xs = append(xs, int(cands[i].X))
			}
		}
		return xs, false
	}
	for _, c := range cands {
		if c.HasX {
			xs = append(xs, int(c.X))
		}
	}
	return xs, false
}

func TestScanCandidatesMatchesGetTravelTimes(t *testing.T) {
	cfg := workload.SmallConfig()
	cfg.Net.Cities = 3
	cfg.Net.GridSize = 5
	cfg.Drivers = 15
	cfg.Days = 30
	cfg.TargetTrips = 500
	ds := workload.BuildDataset(cfg)
	rng := rand.New(rand.NewSource(1234))

	for _, opts := range []Options{
		{Tree: temporal.CSS},
		{Tree: temporal.CSS, PartitionDays: 3},
		{Tree: temporal.CSS, PartitionDays: 7, OldestFirst: true},
	} {
		ix := Build(ds.G, ds.Store, opts)
		tmin, tmax := ix.TimeRange()
		sc := AcquireScratch()
		for trial := 0; trial < 200; trial++ {
			tr := ds.Store.Get(traj.ID(rng.Intn(ds.Store.Len())))
			tp := tr.Path()
			plen := 1 + rng.Intn(6)
			if plen > len(tp) {
				plen = len(tp)
			}
			off := rng.Intn(len(tp) - plen + 1)
			p := append(network.Path(nil), tp[off:off+plen]...)
			if rng.Intn(8) == 0 {
				p[rng.Intn(len(p))] = network.EdgeID(rng.Intn(ds.G.NumEdges()))
			}
			var iv Interval
			switch rng.Intn(3) {
			case 0:
				lo := tmin + rng.Int63n(tmax-tmin)
				iv = NewFixed(lo, lo+rng.Int63n(tmax-lo)+1)
			case 1:
				iv = PeriodicAround(tmin+rng.Int63n(tmax-tmin), 900+rng.Int63n(7200))
			default:
				iv = NewPeriodic(rng.Int63n(DaySeconds), 900)
			}
			f := NoFilter
			if rng.Intn(3) == 0 {
				f.User = traj.UserID(rng.Intn(cfg.Drivers))
			}
			beta := 0
			if rng.Intn(4) != 0 {
				beta = 1 + rng.Intn(30)
			}

			want, wantFall := ix.GetTravelTimes(p, iv, f, beta)
			cands, anyData := ix.ScanCandidates(sc, p, iv, f, beta)
			got, gotFall := reconstructFromCands(ix, p, cands, anyData, iv, beta, opts.OldestFirst)
			if gotFall != wantFall {
				t.Fatalf("opts %+v trial %d: fallback %v vs %v (path %v iv %v beta %d)",
					opts, trial, gotFall, wantFall, p, iv, beta)
			}
			if len(p) == 1 {
				// The single-segment reconstruction must match the emission
				// sequence exactly — it is the order the merge preserves.
				if !equalInts(got, want) {
					t.Fatalf("opts %+v trial %d: single-seg sequence %v vs %v (path %v iv %v beta %d)",
						opts, trial, got, want, p, iv, beta)
				}
			} else if !equalInts(sortedCopy(got), sortedCopy(want)) {
				t.Fatalf("opts %+v trial %d: multiset %v vs %v (path %v iv %v filter %+v beta %d)",
					opts, trial, sortedCopy(got), sortedCopy(want), p, iv, f, beta)
			}
			// The candidate count is the β-capped admitted count the merged
			// Procedure 5 check and the σL splitter sum across shards.
			if anyData {
				if c := ix.CountMatchesWith(sc, p, iv, f, beta); c != len(cands) {
					t.Fatalf("opts %+v trial %d: count %d vs %d candidates", opts, trial, c, len(cands))
				}
			}
		}
		ReleaseScratch(sc)
	}
}
