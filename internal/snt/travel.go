package snt

import (
	"pathhist/internal/fmindex"
	"pathhist/internal/network"
	"pathhist/internal/traj"
)

// Filter is the non-temporal trajectory predicate f of Section 2.3. The
// evaluated predicate is user equality (the one the paper's evaluation
// uses); ExcludeTraj additionally hides one trajectory id from results so
// that queries derived from indexed trajectories do not retrieve themselves
// (DESIGN.md §4, decision 5) — it is an evaluation artifact, not part of f,
// and survives predicate dropping.
type Filter struct {
	User        traj.UserID // traj.NoUser disables the user predicate
	ExcludeTraj traj.ID     // -1 disables self-exclusion
}

// NoFilter matches everything.
var NoFilter = Filter{User: traj.NoUser, ExcludeTraj: -1}

// HasPredicate reports whether a droppable non-temporal predicate is set
// (Procedure 1 line 9: "if f != ∅").
func (f Filter) HasPredicate() bool { return f.User != traj.NoUser }

// DropPredicates returns the filter with user predicates removed but
// self-exclusion kept.
func (f Filter) DropPredicates() Filter {
	return Filter{User: traj.NoUser, ExcludeTraj: f.ExcludeTraj}
}

// isaRanges is Procedure 2 over the scratch buffers: it fills sc.ranges
// with the per-partition ISA ranges of p and returns them with the summed
// range size c_P.
func (ix *Index) isaRanges(sc *Scratch, p network.Path) ([]Range, int64) {
	if cap(sc.syms) < len(p) {
		sc.syms = make([]int32, len(p))
	}
	syms := sc.syms[:len(p)]
	for i, e := range p {
		syms[i] = int32(e) + fmindex.MinEdgeSymbol
	}
	if cap(sc.ranges) < len(ix.parts) {
		sc.ranges = make([]Range, len(ix.parts))
	}
	ranges := sc.ranges[:len(ix.parts)]
	total := int64(0)
	for w := range ix.parts {
		st, ed := ix.parts[w].fm.GetISARange(syms)
		ranges[w] = Range{St: st, Ed: ed}
		total += ed - st
	}
	return ranges, total
}

// GetTravelTimes is Procedure 5: retrieve the travel times of up to beta
// trajectories that traversed path p within interval iv and satisfy f. The
// fallback flag is set when the speed-limit estimate was returned because a
// single segment has no data at all (Section 2.2's estimateTT fallback).
//
// Semantics per the paper:
//   - empty ISA range in every partition: no trajectory ever traversed p;
//     single segments fall back to estimateTT, longer paths return nil;
//   - periodic intervals require at least beta matches, otherwise nil
//     (Procedure 5 line 7-8) so that the caller relaxes the sub-query;
//   - fixed intervals accept any non-empty match set regardless of beta.
//
// The returned slice is freshly allocated and owned by the caller. Hot
// paths that issue many scans should use GetTravelTimesWith with a held
// Scratch instead.
func (ix *Index) GetTravelTimes(p network.Path, iv Interval, f Filter, beta int) (xs []int, fallback bool) {
	sc := AcquireScratch()
	defer ReleaseScratch(sc)
	view, fallback := ix.GetTravelTimesWith(sc, p, iv, f, beta)
	if view == nil {
		return nil, fallback
	}
	xs = make([]int, len(view))
	copy(xs, view)
	return xs, fallback
}

// GetTravelTimesWith is GetTravelTimes over caller-held scratch state. The
// returned slice aliases the scratch sample buffer and is only valid until
// the next *With call on the same Scratch; callers that retain the samples
// must copy them out.
func (ix *Index) GetTravelTimesWith(sc *Scratch, p network.Path, iv Interval, f Filter, beta int) (xs []int, fallback bool) {
	if len(p) == 0 {
		return nil, false
	}
	ranges, total := ix.isaRanges(sc, p)
	if total == 0 {
		if len(p) == 1 {
			sc.xs = append(sc.xs[:0], ix.g.EstimateTTSeconds(p[0]))
			return sc.xs, true
		}
		return nil, false
	}
	if len(p) == 1 {
		// Single-segment fast path: no probe table, no Procedure 4 re-scan.
		xs, n := ix.scanSingle(sc, p[0], ranges, iv, f, beta)
		if n < beta && iv.IsPeriodic() {
			return nil, false
		}
		if len(xs) == 0 {
			sc.xs = append(sc.xs[:0], ix.g.EstimateTTSeconds(p[0]))
			return sc.xs, true
		}
		return xs, false
	}
	minT, maxT := ix.buildMap(sc, p[0], ranges, iv, f, beta)
	if sc.n < beta && iv.IsPeriodic() {
		return nil, false
	}
	xs = ix.probeMap(sc, p[len(p)-1], len(p), minT, maxT)
	return xs, false
}

// CountMatches returns |T^P| for the sub-query, scanning at most limit
// matches (0 = exhaustive). It powers the longest-prefix splitter σL, whose
// binary search needs exact cardinality tests (Section 3.3), and exact
// q-error evaluation (Section 5.3.4).
func (ix *Index) CountMatches(p network.Path, iv Interval, f Filter, limit int) int {
	sc := AcquireScratch()
	defer ReleaseScratch(sc)
	return ix.CountMatchesWith(sc, p, iv, f, limit)
}

// CountMatchesWith is CountMatches over caller-held scratch state.
func (ix *Index) CountMatchesWith(sc *Scratch, p network.Path, iv Interval, f Filter, limit int) int {
	if len(p) == 0 {
		return 0
	}
	ranges, total := ix.isaRanges(sc, p)
	if total == 0 {
		return 0
	}
	ix.buildMap(sc, p[0], ranges, iv, f, limit)
	return sc.n
}
