package snt

import (
	"pathhist/internal/network"
	"pathhist/internal/temporal"
	"pathhist/internal/traj"
)

// Filter is the non-temporal trajectory predicate f of Section 2.3. The
// evaluated predicate is user equality (the one the paper's evaluation
// uses); ExcludeTraj additionally hides one trajectory id from results so
// that queries derived from indexed trajectories do not retrieve themselves
// (DESIGN.md §4, decision 5) — it is an evaluation artifact, not part of f,
// and survives predicate dropping.
type Filter struct {
	User        traj.UserID // traj.NoUser disables the user predicate
	ExcludeTraj traj.ID     // -1 disables self-exclusion
}

// NoFilter matches everything.
var NoFilter = Filter{User: traj.NoUser, ExcludeTraj: -1}

// HasPredicate reports whether a droppable non-temporal predicate is set
// (Procedure 1 line 9: "if f != ∅").
func (f Filter) HasPredicate() bool { return f.User != traj.NoUser }

// DropPredicates returns the filter with user predicates removed but
// self-exclusion kept.
func (f Filter) DropPredicates() Filter {
	return Filter{User: traj.NoUser, ExcludeTraj: f.ExcludeTraj}
}

func (ix *Index) admit(f Filter, r *temporal.Record) bool {
	if r.Traj == f.ExcludeTraj {
		return false
	}
	if f.User != traj.NoUser && ix.users[r.Traj] != f.User {
		return false
	}
	return true
}

// mapKey identifies one traversal occurrence: trajectory id plus the
// sequence number of the occurrence's first segment. The sequence number
// guards against trajectories with circular paths (Section 4.1.3).
type mapKey struct {
	d   traj.ID
	seq int32
}

// probeTable is the output of Procedure 3: the mapping (d, seq) -> a0 - TT0
// plus the scan bounds needed to restrict the Procedure 4 scan.
type probeTable struct {
	m          map[mapKey]int32
	minT, maxT int64
}

// BuildMap is Procedure 3: scan the temporal index of the path's first
// segment, keep records whose entry time satisfies the interval, whose ISA
// index falls in the partition's range, and which pass the filter, and map
// (d, seq) to the antecedent aggregate a - TT. The scan stops once beta
// trajectories are found (beta <= 0 scans exhaustively).
func (ix *Index) BuildMap(e network.EdgeID, ranges []Range, iv Interval, f Filter, beta int) probeTable {
	pt := probeTable{m: make(map[mapKey]int32)}
	phi := ix.forest.Get(e)
	if phi == nil {
		return pt
	}
	visit := func(t int64, r temporal.Record) bool {
		rg := ranges[r.W]
		if int64(r.ISA) < rg.St || int64(r.ISA) >= rg.Ed {
			return true
		}
		if !ix.admit(f, &r) {
			return true
		}
		if len(pt.m) == 0 || t < pt.minT {
			pt.minT = t
		}
		if len(pt.m) == 0 || t > pt.maxT {
			pt.maxT = t
		}
		pt.m[mapKey{d: r.Traj, seq: r.Seq}] = r.A - r.TT
		return beta <= 0 || len(pt.m) < beta
	}
	iv.EachRange(ix.tmin, ix.tmax, !ix.opts.OldestFirst, func(lo, hi int64) bool {
		done := false
		scan := func(t int64, r temporal.Record) bool {
			cont := visit(t, r)
			if !cont {
				done = true
			}
			return cont
		}
		if ix.opts.OldestFirst {
			phi.Ascend(lo, hi, scan)
		} else {
			phi.Descend(lo, hi, scan)
		}
		return !done
	})
	return pt
}

// ProbeMap is Procedure 4: scan the temporal index of the path's last
// segment and, for every record whose (d, seq+1-l) key is present in the
// probe table, emit the path travel time a_{l-1} - (a_0 - TT_0). The scan is
// restricted to the only timestamps a matching record can have: within
// [minT, maxT + maxTrajectoryDuration] of the matched first segments.
func (ix *Index) ProbeMap(e network.EdgeID, l int, pt probeTable) []int {
	if len(pt.m) == 0 {
		return nil
	}
	phi := ix.forest.Get(e)
	if phi == nil {
		return nil
	}
	var xs []int
	phi.Ascend(pt.minT, pt.maxT+ix.maxTrajDur+1, func(t int64, r temporal.Record) bool {
		if diff, ok := pt.m[mapKey{d: r.Traj, seq: r.Seq + 1 - int32(l)}]; ok {
			xs = append(xs, int(r.A-diff))
		}
		return true
	})
	return xs
}

// GetTravelTimes is Procedure 5: retrieve the travel times of up to beta
// trajectories that traversed path p within interval iv and satisfy f. The
// fallback flag is set when the speed-limit estimate was returned because a
// single segment has no data at all (Section 2.2's estimateTT fallback).
//
// Semantics per the paper:
//   - empty ISA range in every partition: no trajectory ever traversed p;
//     single segments fall back to estimateTT, longer paths return nil;
//   - periodic intervals require at least beta matches, otherwise nil
//     (Procedure 5 line 7-8) so that the caller relaxes the sub-query;
//   - fixed intervals accept any non-empty match set regardless of beta.
func (ix *Index) GetTravelTimes(p network.Path, iv Interval, f Filter, beta int) (xs []int, fallback bool) {
	if len(p) == 0 {
		return nil, false
	}
	ranges := ix.ISARanges(p)
	total := int64(0)
	for _, r := range ranges {
		total += r.Ed - r.St
	}
	if total == 0 {
		if len(p) == 1 {
			return []int{ix.g.EstimateTTSeconds(p[0])}, true
		}
		return nil, false
	}
	pt := ix.BuildMap(p[0], ranges, iv, f, beta)
	if len(pt.m) < beta && iv.IsPeriodic() {
		return nil, false
	}
	xs = ix.ProbeMap(p[len(p)-1], len(p), pt)
	if len(xs) == 0 && len(p) == 1 {
		return []int{ix.g.EstimateTTSeconds(p[0])}, true
	}
	return xs, false
}

// CountMatches returns |T^P| for the sub-query, scanning at most limit
// matches (0 = exhaustive). It powers the longest-prefix splitter σL, whose
// binary search needs exact cardinality tests (Section 3.3), and exact
// q-error evaluation (Section 5.3.4).
func (ix *Index) CountMatches(p network.Path, iv Interval, f Filter, limit int) int {
	if len(p) == 0 {
		return 0
	}
	ranges := ix.ISARanges(p)
	total := int64(0)
	for _, r := range ranges {
		total += r.Ed - r.St
	}
	if total == 0 {
		return 0
	}
	pt := ix.BuildMap(p[0], ranges, iv, f, limit)
	return len(pt.m)
}
