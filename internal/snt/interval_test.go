package snt

import "testing"

func TestFixedInterval(t *testing.T) {
	iv := NewFixed(100, 200)
	if iv.IsPeriodic() {
		t.Error("fixed is not periodic")
	}
	if iv.Alpha() != 100 {
		t.Errorf("Alpha = %d", iv.Alpha())
	}
	if !iv.Contains(100) || iv.Contains(200) || iv.Contains(99) {
		t.Error("Contains bounds wrong")
	}
	var ranges [][2]int64
	iv.EachRange(0, 1000, true, func(lo, hi int64) bool {
		ranges = append(ranges, [2]int64{lo, hi})
		return true
	})
	if len(ranges) != 1 || ranges[0] != [2]int64{100, 200} {
		t.Errorf("EachRange = %v", ranges)
	}
	// Clipping to the data range.
	ranges = nil
	iv.EachRange(150, 170, true, func(lo, hi int64) bool {
		ranges = append(ranges, [2]int64{lo, hi})
		return true
	})
	if len(ranges) != 1 || ranges[0] != [2]int64{150, 171} {
		t.Errorf("clipped EachRange = %v", ranges)
	}
}

func TestPeriodicContainsAndWrap(t *testing.T) {
	// 08:00-08:30 daily.
	iv := NewPeriodic(8*3600, 1800)
	if !iv.IsPeriodic() || iv.Alpha() != 1800 {
		t.Fatal("periodic basics")
	}
	day := int64(5 * DaySeconds)
	if !iv.Contains(day + 8*3600) {
		t.Error("inside window")
	}
	if !iv.Contains(day + 8*3600 + 1799) {
		t.Error("end of window")
	}
	if iv.Contains(day + 8*3600 + 1800) {
		t.Error("past window")
	}
	if iv.Contains(day + 7*3600) {
		t.Error("before window")
	}
	// Wrapping window 23:45-00:15.
	w := NewPeriodic(23*3600+45*60, 1800)
	if !w.Contains(day) || !w.Contains(day+14*60) || !w.Contains(day-10*60) {
		t.Error("wrapped window misses")
	}
	if w.Contains(day + 16*60) {
		t.Error("wrapped window leaks")
	}
	// Negative TodStart is normalised.
	n := NewPeriodic(-900, 1800)
	if n.TodStart != DaySeconds-900 {
		t.Errorf("normalised TodStart = %d", n.TodStart)
	}
	if !n.Contains(day+1) || !n.Contains(day-1) {
		t.Error("normalised window wrong")
	}
}

func TestPeriodicAroundCentres(t *testing.T) {
	// 10:00 with width 15 min -> [09:52:30, 10:07:30).
	base := int64(12*DaySeconds + 10*3600)
	iv := PeriodicAround(base, 900)
	if iv.TodStart != 10*3600-450 {
		t.Errorf("TodStart = %d", iv.TodStart)
	}
	if !iv.Contains(base) || !iv.Contains(base+449) || iv.Contains(base+450) {
		t.Error("centred window wrong")
	}
}

func TestResizePreservesCentre(t *testing.T) {
	iv := PeriodicAround(10*3600, 900)
	wide := iv.Resize(3600)
	if wide.Width != 3600 {
		t.Errorf("Width = %d", wide.Width)
	}
	if wide.TodStart != 10*3600-1800 {
		t.Errorf("widened TodStart = %d", wide.TodStart)
	}
	// Widen then shrink returns the original window.
	back := wide.Resize(900)
	if back.TodStart != iv.TodStart || back.Width != iv.Width {
		t.Errorf("resize round-trip: %+v vs %+v", back, iv)
	}
	// Resizing across midnight keeps the centre.
	mid := PeriodicAround(10, 900) // centred on 00:00:10
	w2 := mid.Resize(7200)
	if !w2.Contains(3*DaySeconds + 10) {
		t.Error("midnight-centred resize lost its centre")
	}
	// Width is capped at a day.
	huge := iv.Resize(10 * DaySeconds)
	if huge.Width != DaySeconds {
		t.Errorf("capped width = %d", huge.Width)
	}
}

func TestResizeFixedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Resize on fixed interval should panic")
		}
	}()
	NewFixed(0, 10).Resize(100)
}

func TestShiftEnlarge(t *testing.T) {
	iv := NewPeriodic(8*3600, 900)
	sh := iv.ShiftEnlarge(600, 300)
	if sh.TodStart != 8*3600+600 || sh.Width != 1200 {
		t.Errorf("ShiftEnlarge = %+v", sh)
	}
	// Fixed intervals pass through unchanged.
	fx := NewFixed(0, 100).ShiftEnlarge(10, 10)
	if fx.Start != 0 || fx.End != 100 {
		t.Error("fixed ShiftEnlarge should be identity")
	}
}

func TestEachRangePeriodic(t *testing.T) {
	iv := NewPeriodic(8*3600, 1800)
	tmin := int64(2*DaySeconds + 3600)
	tmax := int64(5*DaySeconds + 23*3600)
	var ranges [][2]int64
	iv.EachRange(tmin, tmax, false, func(lo, hi int64) bool {
		ranges = append(ranges, [2]int64{lo, hi})
		return true
	})
	if len(ranges) != 4 { // days 2..5
		t.Fatalf("ranges = %v", ranges)
	}
	for i, r := range ranges {
		d := int64(2 + i)
		if r[0] != d*DaySeconds+8*3600 || r[1] != d*DaySeconds+8*3600+1800 {
			t.Errorf("day %d range = %v", d, r)
		}
	}
	// Newest first reverses the order.
	var rev [][2]int64
	iv.EachRange(tmin, tmax, true, func(lo, hi int64) bool {
		rev = append(rev, [2]int64{lo, hi})
		return true
	})
	for i := range rev {
		if rev[i] != ranges[len(ranges)-1-i] {
			t.Fatal("newest-first is not the reverse")
		}
	}
	// Early stop.
	n := 0
	iv.EachRange(tmin, tmax, true, func(lo, hi int64) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
	// A wrapped window from the day before tmin still reaches into the
	// data range.
	w := NewPeriodic(23*3600+1800, 7200) // 23:30-01:30
	var first [2]int64
	got := false
	w.EachRange(3*DaySeconds, 3*DaySeconds+3600, false, func(lo, hi int64) bool {
		if !got {
			first = [2]int64{lo, hi}
			got = true
		}
		return true
	})
	if !got || first[0] != 3*DaySeconds {
		t.Errorf("wrapped window not clipped into range: %v (got=%v)", first, got)
	}
}

func TestIntervalString(t *testing.T) {
	if NewFixed(1, 2).String() == "" || NewPeriodic(8*3600, 900).String() == "" {
		t.Error("String should be non-empty")
	}
}
