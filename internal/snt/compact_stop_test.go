package snt

import (
	"errors"
	"testing"
	"time"

	"pathhist/internal/failpoint"
)

// TestPrepareCompactionStopAborts pins the chunked-preparation contract: the
// stop channel is honoured before the run loop and between per-run rebuilds,
// an abort supersedes nothing, and the same index still compacts normally
// afterwards.
func TestPrepareCompactionStopAborts(t *testing.T) {
	g, _, s := synthStore(t, 24, 12)
	frag := fragmentedIndex(t, g, s, 11, Options{})
	if frag.NumPartitions() != 12 {
		t.Fatalf("partitions = %d", frag.NumPartitions())
	}
	// A record cap of ~3 partitions' worth yields a multi-run plan — the
	// "giant merge" whose chunk boundaries the stop channel is checked at.
	policy := CompactionPolicy{TriggerPartitions: -1, MaxMergedRecords: frag.parts[1].records*3 + 1}
	runs := policy.withDefaults().plan(frag.parts)
	if len(runs) < 3 {
		t.Fatalf("plan yields %d runs; the test needs a multi-run merge", len(runs))
	}

	// A stop that is already closed aborts before any run is built.
	closed := make(chan struct{})
	close(closed)
	if p, err := frag.PrepareCompactionStop(policy, closed); !errors.Is(err, ErrCompactionAborted) || p != nil {
		t.Fatalf("pre-closed stop: got (%v, %v), want ErrCompactionAborted", p, err)
	}

	// Mid-flight: each run's rebuild is held open by the failpoint; closing
	// the stop during the first run must abandon the preparation at the next
	// run boundary instead of building all of them.
	const runDelay = 150 * time.Millisecond
	failpoint.Enable(FailpointPrepareRun, failpoint.Injection{Delay: runDelay})
	defer failpoint.Disable(FailpointPrepareRun)
	stop := make(chan struct{})
	go func() {
		time.Sleep(runDelay / 3)
		close(stop)
	}()
	started := time.Now()
	p, err := frag.PrepareCompactionStop(policy, stop)
	elapsed := time.Since(started)
	if !errors.Is(err, ErrCompactionAborted) || p != nil {
		t.Fatalf("mid-flight stop: got (%v, %v), want ErrCompactionAborted", p, err)
	}
	if full := time.Duration(len(runs)) * runDelay; elapsed >= full-runDelay {
		t.Fatalf("abort took %v — it waited out the full %d-run merge (~%v)", elapsed, len(runs), full)
	}
	failpoint.Disable(FailpointPrepareRun)

	// Aborted preparations supersede nothing: the receiver compacts fine.
	compacted, stats, err := frag.Compact(policy)
	if err != nil {
		t.Fatalf("compact after aborts: %v", err)
	}
	if stats.Runs != len(runs) || compacted.NumPartitions() >= frag.NumPartitions() {
		t.Fatalf("compaction after aborts: %+v, %d partitions", stats, compacted.NumPartitions())
	}
}
