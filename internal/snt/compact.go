package snt

import (
	"errors"
	"fmt"
	"time"

	"pathhist/internal/failpoint"
	"pathhist/internal/fmindex"
	"pathhist/internal/hist"
	"pathhist/internal/network"
	"pathhist/internal/suffix"
	"pathhist/internal/temporal"
)

// ErrCompactionStale is returned by ApplyCompaction when the partitions the
// prepared merge was planned over are no longer a prefix of the target
// snapshot — i.e. another compaction landed in between. The caller re-bases
// by preparing again against the newest snapshot. (Concurrent Extends do
// NOT stale a preparation: they only append partitions, and the old ones
// are immutable.)
var ErrCompactionStale = errors.New("snt: prepared compaction is stale; re-prepare against the newest snapshot")

// ErrCompactionAborted is returned by PrepareCompactionStop when the stop
// channel closed: the preparation was abandoned at a chunk boundary, nothing
// was superseded, and no partial state escapes (the half-built preparation
// is garbage). The caller simply does not apply anything.
var ErrCompactionAborted = errors.New("snt: compaction preparation aborted at a chunk boundary")

// FailpointPrepareRun fires before each merged run's suffix/FM rebuild — the
// chunk whose boundaries PrepareCompactionStop checks the stop channel at. A
// Delay injection simulates a giant merge so tests can prove an abandon (or
// an Engine.Close) does not wait out the whole preparation.
const FailpointPrepareRun = "compact.prepare.run"

// Partition compaction. Every Extend adds one temporal partition, and
// Procedure 2 runs a backward search in every partition, so query cost
// degrades linearly with ingest count. Compact is the cure: it merges runs
// of adjacent partitions back into single large ones, rebuilding everything
// a partition owns — trajectory string, suffix array, FM-index (wavelet
// tree + segment counters), per-partition time-of-day histograms, and the
// per-record partition ids and ISA positions in the frozen temporal
// columns — so the result is indistinguishable from an index built from
// scratch with the merged layout.
//
// The merged trajectory strings are reconstructed from the frozen columns
// alone (no trajectory store needed): every record carries (Traj, Seq) and
// its segment id, partitions cover contiguous trajectory-id ranges in
// partition order, and trajectory ids are assigned in start-time order, so
// concatenating each trajectory's segments in (id, seq) order reproduces
// exactly the string a from-scratch Build would have produced.
//
// Like Extend, Compact is copy-on-write: the receiver remains a fully
// consistent snapshot for concurrent readers, untouched state (FM-indexes
// of unmerged partitions, frozen columns of unaffected segments) is shared
// between the snapshots, and the receiver is superseded so snapshot chains
// stay linear. Publication to concurrent readers goes through an atomic
// pointer swap (query.Engine.Compact) — compaction runs entirely off the
// serving path and readers never block.

// DefaultCompactionTrigger is the partition count at which the default
// policy starts planning merges.
const DefaultCompactionTrigger = 8

// CompactionPolicy is a size-tiered merge policy over adjacent partitions.
// The zero value compacts everything into a single partition once the index
// holds DefaultCompactionTrigger partitions.
type CompactionPolicy struct {
	// TriggerPartitions gates planning: with fewer partitions Compact is a
	// no-op. 0 applies DefaultCompactionTrigger; negative values disable
	// the gate (compact whenever a merge is possible — the manual-trigger
	// setting).
	TriggerPartitions int
	// MaxMergedRecords caps one merged partition's record count, which is
	// what makes the policy size-tiered: a partition already at or above
	// the cap is "large" and left alone, and a run of small partitions is
	// cut when absorbing the next one would exceed the cap. 0 means
	// unbounded — all adjacent partitions merge into one.
	MaxMergedRecords int
	// MinRun is the smallest run worth merging (default 2; merging a
	// single partition with itself would only churn memory).
	MinRun int
	// MaxRuns caps how many runs one compaction merges, which is what makes
	// background compaction incremental: a bounded chunk of work per cycle
	// instead of one giant merge, with later cycles picking up the rest.
	// 0 means unbounded.
	MaxRuns int
}

// withDefaults resolves zero fields.
func (p CompactionPolicy) withDefaults() CompactionPolicy {
	if p.TriggerPartitions == 0 {
		p.TriggerPartitions = DefaultCompactionTrigger
	}
	if p.MinRun < 2 {
		p.MinRun = 2
	}
	return p
}

// run is a half-open partition-id range [lo, hi) selected for merging.
type mergeRun struct{ lo, hi int }

// frozenPartW reads a record's partition id, treating an elided partition
// column as all-zeros.
func frozenPartW(fx *temporal.FrozenIndex, i int) int32 {
	if fx.W == nil {
		return 0
	}
	return fx.W[i]
}

// plan selects the runs of adjacent partitions to merge. parts carries the
// per-partition record counts Build/Extend maintain.
func (p CompactionPolicy) plan(parts []partition) []mergeRun {
	if p.TriggerPartitions > 0 && len(parts) < p.TriggerPartitions {
		return nil
	}
	var runs []mergeRun
	lo, recs := 0, 0
	flush := func(hi int) {
		if hi-lo >= p.MinRun {
			runs = append(runs, mergeRun{lo: lo, hi: hi})
		}
	}
	for w := range parts {
		r := parts[w].records
		if p.MaxMergedRecords > 0 && r >= p.MaxMergedRecords {
			// Large partition: never merged, cuts the current run.
			flush(w)
			lo, recs = w+1, 0
			continue
		}
		if p.MaxMergedRecords > 0 && recs+r > p.MaxMergedRecords && w > lo {
			flush(w)
			lo, recs = w, 0
		}
		recs += r
	}
	flush(len(parts))
	if p.MaxRuns > 0 && len(runs) > p.MaxRuns {
		runs = runs[:p.MaxRuns]
	}
	return runs
}

// CompactionStats reports what one Compact did.
type CompactionStats struct {
	// PartitionsBefore and PartitionsAfter frame the merge; equal values
	// mean the policy planned nothing (the returned index is the receiver).
	PartitionsBefore, PartitionsAfter int
	// Runs is the number of merged partition runs.
	Runs int
	// TrajsRebuilt and RecordsRebuilt count the trajectories and traversal
	// records whose partition state was rebuilt.
	TrajsRebuilt, RecordsRebuilt int
	// Elapsed is the wall-clock compaction time and CompletedUnix the wall
	// clock at completion (0 when nothing merged).
	Elapsed       time.Duration
	CompletedUnix int64
	// Epoch is filled in by the serving layer (query.Engine) with the
	// epoch the compacted snapshot was published as — the same
	// own-publication attribution IngestStats gives a batch. It stays 0
	// at the snt level and for unpublished compactions.
	Epoch uint64
}

// PreparedCompaction is the heavy, read-only half of a compaction: merged
// trajectory strings reconstructed, suffix structures and FM-indexes built,
// time-of-day histograms merged — everything except the cheap final
// assembly that ApplyCompaction performs. Because all of it is derived from
// partitions that are immutable once published (Extend only ever appends
// new partitions), a preparation stays valid while ingestion continues: it
// can be built off the write lock against one snapshot and applied later to
// a newer one. Only another compaction invalidates it (ErrCompactionStale).
type PreparedCompaction struct {
	old       int              // partition count the plan covered
	baseFM    []*fmindex.Index // identity of those partitions, for staleness detection
	runs      []mergeRun
	runOf     []int
	newW      []int32
	numNew    int // partitions the first old partitions collapse into
	runBase   []int
	runLens   [][]int32
	runStarts [][]int32
	runISA    [][]int32
	runFM     []*fmindex.Index
	filled    []int
	todMerged [][]*hist.TodHistogram // per-run, nil when the index has no tod
	trajs     int
	records   int
	prepared  time.Duration
}

// Runs returns how many partition runs the preparation merges.
func (p *PreparedCompaction) Runs() int { return len(p.runs) }

// PrepareCompaction plans and precomputes a compaction of the receiver per
// the policy, without superseding anything: the receiver stays extendable
// and the preparation can run concurrently with reads and with Extends of
// newer snapshots. A nil preparation (with a nil error) means the policy
// planned no merge.
func (ix *Index) PrepareCompaction(policy CompactionPolicy) (*PreparedCompaction, error) {
	return ix.PrepareCompactionStop(policy, nil)
}

// PrepareCompactionStop is PrepareCompaction with an abandon signal: when
// stop closes, the preparation returns ErrCompactionAborted at the next
// chunk boundary instead of finishing the whole merge. The heavy work — one
// suffix-array + FM-index rebuild per merged run — is chunked per run, so a
// shutdown or drain abandons a giant multi-run merge after at most one
// run's build rather than all of them. A nil stop never aborts.
func (ix *Index) PrepareCompactionStop(policy CompactionPolicy, stop <-chan struct{}) (*PreparedCompaction, error) {
	startedAt := time.Now()
	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}
	runs := policy.withDefaults().plan(ix.parts)
	if len(runs) == 0 {
		return nil, nil
	}
	if stopped() {
		return nil, ErrCompactionAborted
	}

	// Partition-id remapping and per-run trajectory-id bases. Partitions
	// cover contiguous id ranges in partition order, so the run [lo, hi)
	// owns ids [trajStart[lo], trajStart[hi]).
	old := len(ix.parts)
	trajStart := make([]int, old+1)
	for w := range ix.parts {
		trajStart[w+1] = trajStart[w] + ix.parts[w].trajs
	}
	runOf := make([]int, old) // run index per old partition, -1 = unmerged
	for w := range runOf {
		runOf[w] = -1
	}
	newW := make([]int32, old) // old partition id -> new partition id
	next := 0
	for w := 0; w < old; {
		r := -1
		for i := range runs {
			if runs[i].lo == w {
				r = i
				break
			}
		}
		if r >= 0 {
			for v := runs[r].lo; v < runs[r].hi; v++ {
				runOf[v] = r
				newW[v] = int32(next)
			}
			w = runs[r].hi
		} else {
			newW[w] = int32(next)
			w++
		}
		next++
	}
	numNew := next

	// Reconstruct the merged runs' trajectory strings from the frozen
	// columns. Pass 1 sizes each trajectory (its segment count is its
	// maximum sequence number + 1); pass 2 scatters the segment symbols
	// into place.
	runBase := make([]int, len(runs))
	runLens := make([][]int32, len(runs))
	for r, ru := range runs {
		runBase[r] = trajStart[ru.lo]
		runLens[r] = make([]int32, trajStart[ru.hi]-trajStart[ru.lo])
	}
	ix.frozen.Each(func(_ network.EdgeID, fx *temporal.FrozenIndex) {
		for i, n := 0, fx.Len(); i < n; i++ {
			r := runOf[frozenPartW(fx, i)]
			if r < 0 {
				continue
			}
			d := int(fx.Traj[i]) - runBase[r]
			if s := fx.Seq[i] + 1; s > runLens[r][d] {
				runLens[r][d] = s
			}
		}
	})
	texts := make([][]int32, len(runs))
	runStarts := make([][]int32, len(runs))
	for r := range runs {
		lens := runLens[r]
		starts := make([]int32, len(lens))
		total := int32(0)
		for d, l := range lens {
			if l == 0 {
				return nil, fmt.Errorf("snt: compaction found no records for trajectory %d", runBase[r]+d)
			}
			starts[d] = total
			total += l + 1 // trailing terminator
		}
		text := make([]int32, total)
		for d, l := range lens {
			text[starts[d]+l] = fmindex.Terminator
		}
		texts[r], runStarts[r] = text, starts
	}
	filled := make([]int, len(runs))
	ix.frozen.Each(func(e network.EdgeID, fx *temporal.FrozenIndex) {
		sym := int32(e) + fmindex.MinEdgeSymbol
		for i, n := 0, fx.Len(); i < n; i++ {
			r := runOf[frozenPartW(fx, i)]
			if r < 0 {
				continue
			}
			d := int(fx.Traj[i]) - runBase[r]
			texts[r][runStarts[r][d]+fx.Seq[i]] = sym
			filled[r]++
		}
	})
	trajsRebuilt, recordsRebuilt := 0, 0
	for r := range runs {
		if want := len(texts[r]) - len(runLens[r]); filled[r] != want {
			return nil, fmt.Errorf("snt: compaction rebuilt %d of %d records in run %d", filled[r], want, r)
		}
		recordsRebuilt += filled[r]
		trajsRebuilt += len(runLens[r])
	}

	// Rebuild each run's suffix structures and FM-index; keep the ISA for
	// the column rewrite. One run's rebuild is the unit of abandonable work:
	// the stop channel is checked before each, so a multi-run merge gives up
	// after at most the run in flight.
	runISA := make([][]int32, len(runs))
	runFM := make([]*fmindex.Index, len(runs))
	for r := range runs {
		if stopped() {
			return nil, ErrCompactionAborted
		}
		if err := failpoint.Inject(FailpointPrepareRun); err != nil {
			return nil, err
		}
		_, isa, bwt := suffix.BuildAll(texts[r], ix.alphabet)
		runISA[r] = isa
		runFM[r] = fmindex.FromBWT(bwt, ix.alphabet)
	}

	// Merge each run's per-partition time-of-day histograms now (integer
	// bucket counts merge exactly, so the result equals a from-scratch
	// build's); the full per-partition list is assembled at apply time,
	// when the final layout is known.
	var todMerged [][]*hist.TodHistogram
	if ix.tod != nil {
		todMerged = make([][]*hist.TodHistogram, len(runs))
		for r := range runs {
			merged := make([]*hist.TodHistogram, ix.g.NumEdges())
			for v := runs[r].lo; v < runs[r].hi; v++ {
				for e, h := range ix.tod[v] {
					if h == nil {
						continue
					}
					if merged[e] == nil {
						merged[e] = h.Clone()
					} else {
						merged[e].AddAll(h)
					}
				}
			}
			todMerged[r] = merged
		}
	}

	baseFM := make([]*fmindex.Index, old)
	for w := range ix.parts {
		baseFM[w] = ix.parts[w].fm
	}
	return &PreparedCompaction{
		old:       old,
		baseFM:    baseFM,
		runs:      runs,
		runOf:     runOf,
		newW:      newW,
		numNew:    numNew,
		runBase:   runBase,
		runLens:   runLens,
		runStarts: runStarts,
		runISA:    runISA,
		runFM:     runFM,
		filled:    filled,
		todMerged: todMerged,
		trajs:     trajsRebuilt,
		records:   recordsRebuilt,
		prepared:  time.Since(startedAt),
	}, nil
}

// ApplyCompaction applies a preparation to the receiver — the NEWEST
// snapshot, which may have been extended any number of times since the
// preparation was built (those partitions carry over unchanged, their ids
// shifted down by the merge's net reduction). If another compaction landed
// in between, the prepared partitions are no longer a prefix of the
// receiver and ApplyCompaction returns ErrCompactionStale; the caller
// re-prepares against the newest snapshot. On success the receiver is
// superseded exactly like Extend supersedes it, and query results from the
// returned snapshot are bit-identical to the receiver's. A nil preparation
// returns the receiver unchanged (the no-merge case).
func (ix *Index) ApplyCompaction(p *PreparedCompaction) (*Index, CompactionStats, error) {
	startedAt := time.Now()
	stats := CompactionStats{PartitionsBefore: len(ix.parts), PartitionsAfter: len(ix.parts)}
	if p == nil {
		return ix, stats, nil
	}
	if len(ix.parts) < p.old {
		return nil, stats, ErrCompactionStale
	}
	for w := 0; w < p.old; w++ {
		if ix.parts[w].fm != p.baseFM[w] {
			return nil, stats, ErrCompactionStale
		}
	}
	if ix.superseded.Swap(true) {
		return nil, stats, ErrSuperseded
	}
	committed := false
	defer func() {
		if !committed {
			ix.superseded.Store(false)
		}
	}()

	old := p.old
	numNew := p.numNew + (len(ix.parts) - old)
	runs, runOf, newW := p.runs, p.runOf, p.newW
	runBase, runStarts, runISA := p.runBase, p.runStarts, p.runISA

	// mapW maps an old partition id to its new one: prepared partitions via
	// the planned remap, later-ingested partitions shift down by the
	// merge's net partition reduction.
	shift := int32(old - p.numNew)
	mapW := func(w int32) int32 {
		if int(w) < old {
			return newW[w]
		}
		return w - shift
	}

	// Assemble the new partition list: merged runs collapse to one entry,
	// unmerged partitions carry over (their FM-indexes are shared), and
	// partitions ingested since the preparation are appended unchanged.
	parts := make([]partition, 0, numNew)
	for w := 0; w < old; {
		if r := runOf[w]; r >= 0 {
			parts = append(parts, partition{
				fm:      p.runFM[r],
				trajs:   len(p.runLens[r]),
				records: p.filled[r],
			})
			w = runs[r].hi
			continue
		}
		parts = append(parts, ix.parts[w])
		w++
	}
	parts = append(parts, ix.parts[old:]...)

	// Rewrite the frozen columns: merged records get their new ISA
	// position, every record gets its new partition id, and the partition
	// column is elided when it would be all zeros (always true after full
	// compaction — the single-partition layout of the paper). Segments
	// whose records need no change share their index with the receiver.
	// Records ingested since the preparation (partition id >= old) only
	// have their partition id remapped — their ISA is already final.
	frozen := ix.frozen.Rewrite(func(_ network.EdgeID, fx *temporal.FrozenIndex) *temporal.FrozenIndex {
		n := fx.Len()
		dirty := false
		for i := 0; i < n; i++ {
			w := frozenPartW(fx, i)
			if (int(w) < old && runOf[w] >= 0) || mapW(w) != w {
				dirty = true
				break
			}
		}
		if !dirty {
			return fx
		}
		nISA := make([]int32, n)
		copy(nISA, fx.ISA)
		var nW []int32
		if numNew > 1 {
			nW = make([]int32, n)
		}
		hasW := false
		for i := 0; i < n; i++ {
			w := frozenPartW(fx, i)
			if int(w) < old {
				if r := runOf[w]; r >= 0 {
					d := int(fx.Traj[i]) - runBase[r]
					nISA[i] = runISA[r][runStarts[r][d]+fx.Seq[i]]
				}
			}
			if nW != nil {
				m := mapW(w)
				nW[i] = m
				if m != 0 {
					hasW = true
				}
			}
		}
		if !hasW {
			nW = nil
		}
		// Ts/Traj/A/TT are shared with fx, which may view a read-only
		// mapping — the flag must travel with the columns so a later
		// Extend still detaches them.
		return &temporal.FrozenIndex{
			Ts: fx.Ts, Traj: fx.Traj, Seq: fx.Seq,
			W: nW, ISA: nISA, A: fx.A, TT: fx.TT,
			Mapped: fx.Mapped,
		}
	})

	// Assemble the time-of-day histogram list from the pre-merged runs.
	var tod [][]*hist.TodHistogram
	if ix.tod != nil {
		tod = make([][]*hist.TodHistogram, 0, numNew)
		for w := 0; w < old; {
			if r := runOf[w]; r >= 0 {
				tod = append(tod, p.todMerged[r])
				w = runs[r].hi
				continue
			}
			tod = append(tod, ix.tod[w])
			w++
		}
		tod = append(tod, ix.tod[old:]...)
	}

	nix := &Index{
		g:             ix.g,
		opts:          ix.opts,
		parts:         parts,
		frozen:        frozen,
		users:         ix.users,
		tod:           tod,
		tmin:          ix.tmin,
		tmax:          ix.tmax,
		maxTrajDur:    ix.maxTrajDur,
		alphabet:      ix.alphabet,
		stats:         ix.stats,
		compactedFrom: len(ix.parts),
	}
	nix.stats.Partitions = numNew
	stats.PartitionsAfter = numNew
	stats.Runs = len(runs)
	stats.TrajsRebuilt = p.trajs
	stats.RecordsRebuilt = p.records
	stats.Elapsed = p.prepared + time.Since(startedAt)
	stats.CompletedUnix = time.Now().Unix()
	committed = true
	return nix, stats, nil
}

// Compact merges runs of adjacent partitions per the policy and returns the
// compacted snapshot — PrepareCompaction and ApplyCompaction back to back
// on one snapshot, the synchronous path used by manual /compact and by
// in-lock auto-compaction. When the policy plans no merge the receiver
// itself is returned (not superseded, still extendable). Otherwise the
// receiver is superseded exactly like Extend supersedes it: only the
// returned snapshot may be extended or compacted further. Query results
// from the compacted snapshot are bit-identical to the receiver's — and to
// a from-scratch Build over the same trajectories with the merged layout.
func (ix *Index) Compact(policy CompactionPolicy) (*Index, CompactionStats, error) {
	p, err := ix.PrepareCompaction(policy)
	if err != nil {
		return nil, CompactionStats{PartitionsBefore: len(ix.parts), PartitionsAfter: len(ix.parts)}, err
	}
	return ix.ApplyCompaction(p)
}

// CompactedFrom returns the partition count before the Compact call that
// produced this snapshot, or 0 when it was never compacted.
func (ix *Index) CompactedFrom() int { return ix.compactedFrom }
