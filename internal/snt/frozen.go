package snt

import (
	"pathhist/internal/network"
	"pathhist/internal/temporal"
	"pathhist/internal/traj"
)

// Fused multi-range scans over the frozen columnar temporal forest.
//
// The Procedure 3/4 scans of the original implementation descended the
// per-segment tree once per day of the interval and invoked a closure per
// record. Over the frozen layout each (lo, hi) time window resolves to a
// column offset pair with binary searches into one contiguous timestamp
// column, and the records are visited in a tight, callback-free loop over
// sequential memory. Periodic intervals enumerate their per-day windows
// directly on the column: every searched region shrinks monotonically in
// scan direction, empty days are skipped in one jump (the timestamp of the
// nearest unprocessed record names the next candidate day), adjacent-day
// searches gallop from the previous window's edge, and the enumeration
// stops as soon as the β requirement is met or the records run out. Record
// visit order is exactly the tree scan order (windows newest-first with
// records descending inside each, or the oldest-first mirror), keeping
// results bit-identical to the sequential Procedure 6 path.

// lowerBound is temporal.LowerBoundTs (first index with ts[i] >= t) under
// a local name; the wrapper inlines away.
func lowerBound(ts []int64, t int64) int { return temporal.LowerBoundTs(ts, t) }

// floorDiv is floored int64 division for positive divisors.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && a < 0 {
		q--
	}
	return q
}

// gallopBack returns lowerBound(ts[:en], lo) assuming the answer lies near
// en — the window-start search of a descending periodic scan, whose answer
// is at most one day window below the window's end. Exponential backoff
// finds a bound below the answer in O(log distance), then a binary search
// pins it.
func gallopBack(ts []int64, en int, lo int64) int {
	if en == 0 || ts[en-1] < lo {
		return en
	}
	j, step := en-1, 1
	for j >= 0 && ts[j] >= lo {
		j -= step
		step <<= 1
	}
	if j < 0 {
		j = -1
	}
	base := j + 1
	return base + lowerBound(ts[base:en], lo)
}

// gallopFwd returns lowerBound(ts, hi) within [st, len(ts)] assuming the
// answer lies near st — the window-end search of an ascending periodic scan.
func gallopFwd(ts []int64, st int, hi int64) int {
	n := len(ts)
	if st >= n || ts[st] >= hi {
		return st
	}
	j, step := st, 1
	for j < n && ts[j] < hi {
		j += step
		step <<= 1
	}
	if j > n {
		j = n
	}
	return st + lowerBound(ts[st:j], hi)
}

// forEachWindow resolves the interval's time windows to column offset pairs
// [st, en) over ts, in scan order (newest window first when descending),
// and calls fn for every window that holds records; fn returning false
// stops the enumeration. fn must not be stored (it is stack-allocated at
// every call site to keep the scan path allocation-free).
func forEachWindow(ts []int64, iv Interval, descending bool, fn func(st, en int) bool) {
	if len(ts) == 0 {
		return
	}
	if iv.Kind == Fixed || iv.Width >= DaySeconds {
		// One contiguous window. A periodic interval covering the whole day
		// tiles the timeline, so its day windows concatenate into the same
		// contiguous sweep in the same order.
		st, en := 0, len(ts)
		if iv.Kind == Fixed {
			en = lowerBound(ts, iv.End)
			st = lowerBound(ts[:en], iv.Start)
		}
		if st < en {
			fn(st, en)
		}
		return
	}
	tod, width, day := iv.TodStart, iv.Width, int64(DaySeconds)
	if descending {
		// cur is the exclusive upper bound of the unprocessed column
		// region; d the candidate day, seeded from the newest record and
		// re-derived from the newest remaining record after every window,
		// which jumps over days whose windows cannot hold records.
		cur := len(ts)
		d := floorDiv(ts[cur-1]-tod, day)
		for cur > 0 {
			lo := d*day + tod
			en := cur
			if ts[cur-1] >= lo+width {
				// The newest remaining record sits in the gap above this
				// window (rare after a day jump).
				en = lowerBound(ts[:cur], lo+width)
				if en == 0 {
					return // nothing older than this window
				}
			}
			st := gallopBack(ts, en, lo)
			if st < en && !fn(st, en) {
				return
			}
			cur = st
			if cur > 0 {
				d = floorDiv(ts[cur-1]-tod, day)
			}
		}
		return
	}
	// Oldest-first mirror: cur is the inclusive lower bound of the
	// unprocessed region; the candidate day is the earliest whose window
	// ends after the oldest remaining record.
	cur := 0
	d := floorDiv(ts[0]-tod-width, day) + 1
	for cur < len(ts) {
		lo := d*day + tod
		st := cur
		if ts[cur] < lo {
			// The oldest remaining record sits in the gap below this window.
			st = cur + lowerBound(ts[cur:], lo)
			if st == len(ts) {
				return // nothing newer than this window
			}
		}
		en := gallopFwd(ts, st, lo+width)
		if st < en && !fn(st, en) {
			return
		}
		cur = en
		if cur < len(ts) {
			d = floorDiv(ts[cur]-tod-width, day) + 1
		}
	}
}

// frozenScan is the per-call state of one Procedure 3 scan, kept in one
// stack frame so the per-window sweeps share it without per-record closures.
type frozenScan struct {
	fx     *temporal.FrozenIndex
	ws     []int32 // fx.W (nil = all partition 0)
	users  []traj.UserID
	ranges []Range
	rg0    Range // ranges[0], hoisted for the nil-W fast path
	f      Filter
	beta   int
	minT   int64
	maxT   int64
}

func newFrozenScan(ix *Index, fx *temporal.FrozenIndex, ranges []Range, f Filter, beta int) frozenScan {
	return frozenScan{fx: fx, ws: fx.W, users: ix.users, ranges: ranges, rg0: ranges[0], f: f, beta: beta}
}

// admit is the Procedure 3 acceptance test, shared by the probe-table sweep
// and the single-segment fast path: record i must fall in its partition's
// ISA range and pass the filter.
func (s *frozenScan) admit(i int) bool {
	rg := s.rg0
	if s.ws != nil {
		rg = s.ranges[s.ws[i]]
	}
	if isa := int64(s.fx.ISA[i]); isa < rg.St || isa >= rg.Ed {
		return false
	}
	d := s.fx.Traj[i]
	if d == s.f.ExcludeTraj {
		return false
	}
	if s.f.User != traj.NoUser && s.users[d] != s.f.User {
		return false
	}
	return true
}

// sweep visits records [st, en) of one window — descending when descending
// is set, ascending otherwise — inserting every admitted record into the
// probe table. It reports whether the β requirement was met and the scan
// must stop.
func (s *frozenScan) sweep(sc *Scratch, st, en int, descending bool) bool {
	fx := s.fx
	i, step := st, 1
	if descending {
		i, step = en-1, -1
	}
	for n := en - st; n > 0; n, i = n-1, i+step {
		if n&(cancelStride-1) == 0 && sc.Canceled() {
			// Abort mid-window: report "stop scanning" so the enumeration
			// ends; the caller sees Canceled() and discards the partial map.
			return true
		}
		if !s.admit(i) {
			continue
		}
		t := fx.Ts[i]
		if sc.n == 0 || t < s.minT {
			s.minT = t
		}
		if sc.n == 0 || t > s.maxT {
			s.maxT = t
		}
		sc.insert(packKey(int32(fx.Traj[i]), fx.Seq[i]), fx.A[i]-fx.TT[i])
		if s.beta > 0 && sc.n >= s.beta {
			return true
		}
	}
	return false
}

// buildMap is Procedure 3 over the frozen columns: visit the first segment's
// records in scan order across the interval's windows, keep those whose ISA
// index falls in the partition's range and which pass the filter, and map
// (d, seq) to the antecedent aggregate a - TT in the scratch probe table.
// The sequence number in the key guards against trajectories with circular
// paths (Section 4.1.3). The scan stops once beta trajectories are found
// (beta <= 0 scans exhaustively). It returns the scan bounds needed to
// restrict the Procedure 4 scan.
func (ix *Index) buildMap(sc *Scratch, e network.EdgeID, ranges []Range, iv Interval, f Filter, beta int) (minT, maxT int64) {
	fx := ix.frozen.Get(e)
	if fx == nil || fx.Len() == 0 {
		sc.resetTable(beta)
		return 0, 0
	}
	ts := fx.Ts
	descending := !ix.opts.OldestFirst
	if iv.Kind == Fixed || iv.Width >= DaySeconds {
		// One contiguous window (forEachWindow's Fixed/tiling case),
		// resolved here directly so its bounds also serve as the probe
		// table pre-size: exhaustive scans size the table to the window's
		// record count up front, avoiding the grow-and-rehash ladder the
		// tree scans paid. The hint is capped — filters typically admit a
		// fraction of a huge window, and pooled Scratch tables retain
		// their capacity forever, so beyond the cap growing on demand is
		// the better trade.
		const maxPresizeHint = 1 << 15
		st, en := 0, len(ts)
		if iv.Kind == Fixed {
			en = lowerBound(ts, iv.End)
			st = lowerBound(ts[:en], iv.Start)
		}
		hint := beta
		if beta <= 0 {
			hint = en - st
			if hint > maxPresizeHint {
				hint = maxPresizeHint
			}
		}
		sc.resetTable(hint)
		s := newFrozenScan(ix, fx, ranges, f, beta)
		if st < en {
			s.sweep(sc, st, en, descending)
		}
		return s.minT, s.maxT
	}
	sc.resetTable(beta)
	s := newFrozenScan(ix, fx, ranges, f, beta)
	forEachWindow(ts, iv, descending, func(st, en int) bool {
		if sc.Canceled() {
			return false
		}
		return !s.sweep(sc, st, en, descending)
	})
	return s.minT, s.maxT
}

// scanSingle fuses Procedures 3-5 for single-segment paths: with l = 1 a
// record can only match itself in the probe join, so the probe table and
// the Procedure 4 re-scan collapse. Accepted records are collected in scan
// order (respecting β early exit) and their traversal times emitted in
// ascending time order — exactly the sample sequence the probe join would
// have produced. It returns the samples (aliasing the scratch buffer, nil
// when nothing matched) and the number of accepted records.
func (ix *Index) scanSingle(sc *Scratch, e network.EdgeID, ranges []Range, iv Interval, f Filter, beta int) ([]int, int) {
	sc.xs = sc.xs[:0]
	sc.hits = sc.hits[:0]
	fx := ix.frozen.Get(e)
	if fx == nil || fx.Len() == 0 {
		return nil, 0
	}
	s := newFrozenScan(ix, fx, ranges, f, beta)
	descending := !ix.opts.OldestFirst
	forEachWindow(fx.Ts, iv, descending, func(st, en int) bool {
		if sc.Canceled() {
			return false
		}
		i, step := st, 1
		if descending {
			i, step = en-1, -1
		}
		for n := en - st; n > 0; n, i = n-1, i+step {
			if n&(cancelStride-1) == 0 && sc.Canceled() {
				return false
			}
			if !s.admit(i) {
				continue
			}
			sc.hits = append(sc.hits, int32(i))
			if beta > 0 && len(sc.hits) >= beta {
				return false
			}
		}
		return true
	})
	if len(sc.hits) == 0 {
		return nil, 0
	}
	// The emission sweep is bounded by the accepted hits, but β-free queries
	// can accept the whole column — poll at the same stride as the admit
	// loop. A cancelled emission returns the partial samples; the caller
	// observes sc.Canceled() and discards them with a deadline error.
	if descending {
		for k := len(sc.hits) - 1; k >= 0; k-- {
			if k&(cancelStride-1) == 0 && sc.Canceled() {
				break
			}
			sc.xs = append(sc.xs, int(fx.TT[sc.hits[k]]))
		}
	} else {
		for n, i := range sc.hits {
			if n&(cancelStride-1) == 0 && sc.Canceled() {
				break
			}
			sc.xs = append(sc.xs, int(fx.TT[i]))
		}
	}
	return sc.xs, len(sc.hits)
}

// probeMap is Procedure 4 over the frozen columns: sweep the last segment's
// records in ascending time order and, for every record whose (d, seq+1-l)
// key is present in the probe table, emit the path travel time
// a_{l-1} - (a_0 - TT_0). The sweep is restricted to the only timestamps a
// matching record can have: within [minT, maxT + maxTrajectoryDuration] of
// the matched first segments. The samples are appended to the scratch
// buffer, which is returned.
func (ix *Index) probeMap(sc *Scratch, e network.EdgeID, l int, minT, maxT int64) []int {
	sc.xs = sc.xs[:0]
	if sc.n == 0 {
		return nil
	}
	fx := ix.frozen.Get(e)
	if fx == nil {
		return nil
	}
	ts := fx.Ts
	en := lowerBound(ts, maxT+ix.maxTrajDur+1)
	st := lowerBound(ts[:en], minT)
	seqShift := 1 - int32(l)
	for i := st; i < en; i++ {
		if (i-st)&(cancelStride-1) == cancelStride-1 && sc.Canceled() {
			break
		}
		if diff, ok := sc.lookup(packKey(int32(fx.Traj[i]), fx.Seq[i]+seqShift)); ok {
			sc.xs = append(sc.xs, int(fx.A[i]-diff))
		}
	}
	return sc.xs
}
