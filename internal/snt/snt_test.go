package snt

import (
	"math/rand"
	"sort"
	"testing"

	"pathhist/internal/network"
	"pathhist/internal/temporal"
	"pathhist/internal/traj"
)

// buildPaperIndex indexes the Section 2.2 trajectory set.
func buildPaperIndex(t testing.TB, opts Options) (*Index, map[string]network.EdgeID) {
	t.Helper()
	g, ids := network.PaperExample()
	s := traj.NewStore()
	e := func(name string, tt int64, d int32) traj.Entry {
		return traj.Entry{Edge: ids[name], T: tt, TT: d}
	}
	s.Add(1, []traj.Entry{e("A", 0, 3), e("B", 3, 4), e("E", 7, 4)})
	s.Add(2, []traj.Entry{e("A", 2, 4), e("C", 6, 2), e("D", 8, 4), e("E", 12, 5)})
	s.Add(2, []traj.Entry{e("A", 4, 3), e("B", 7, 3), e("F", 10, 6)})
	s.Add(1, []traj.Entry{e("A", 6, 3), e("B", 9, 3), e("E", 12, 4)})
	return Build(g, s, opts), ids
}

func path(ids map[string]network.EdgeID, names ...string) network.Path {
	var p network.Path
	for _, n := range names {
		p = append(p, ids[n])
	}
	return p
}

func sortedCopy(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPaperSection23Query(t *testing.T) {
	ix, ids := buildPaperIndex(t, Options{})
	// Q = spq(<A,B,E>, [0,15), u=u1, 2) returns {tr0, tr3} with durations
	// {11, 10}.
	xs, fb := ix.GetTravelTimes(path(ids, "A", "B", "E"), NewFixed(0, 15), Filter{User: 1, ExcludeTraj: -1}, 2)
	if fb {
		t.Fatal("unexpected fallback")
	}
	if !equalInts(sortedCopy(xs), []int{10, 11}) {
		t.Fatalf("X = %v, want {10, 11}", xs)
	}
	// Q1 = spq(<A,B>, [0,15), ∅, 3) yields H1 = {[6,7):2; [7,8):1}.
	xs, _ = ix.GetTravelTimes(path(ids, "A", "B"), NewFixed(0, 15), NoFilter, 3)
	if !equalInts(sortedCopy(xs), []int{6, 6, 7}) {
		t.Fatalf("X(A,B) = %v, want {6,6,7}", xs)
	}
	// Q2 = spq(<E>, [0,15), ∅, 3) yields H2 = {[4,5):2; [5,6):1}.
	xs, _ = ix.GetTravelTimes(path(ids, "E"), NewFixed(0, 15), NoFilter, 3)
	if !equalInts(sortedCopy(xs), []int{4, 4, 5}) {
		t.Fatalf("X(E) = %v, want {4,4,5}", xs)
	}
}

func TestPaperISARange(t *testing.T) {
	ix, ids := buildPaperIndex(t, Options{})
	r := ix.ISARanges(path(ids, "A"))
	if len(r) != 1 || r[0].St != 4 || r[0].Ed != 8 {
		t.Errorf("R(<A>) = %+v, want [4,8)", r)
	}
	r = ix.ISARanges(path(ids, "A", "B"))
	if r[0].St != 4 || r[0].Ed != 7 {
		t.Errorf("R(<A,B>) = %+v, want [4,7)", r)
	}
	if c := ix.PathCount(path(ids, "A", "B", "E")); c != 2 {
		t.Errorf("c_P(<A,B,E>) = %d", c)
	}
}

func TestStrictness(t *testing.T) {
	// <A,E> is not traversed contiguously by anyone (tr0 goes A,B,E).
	ix, ids := buildPaperIndex(t, Options{})
	xs, fb := ix.GetTravelTimes(path(ids, "A", "E"), NewFixed(0, 100), NoFilter, 0)
	if len(xs) != 0 || fb {
		t.Fatalf("non-contiguous path returned %v", xs)
	}
}

func TestUserFilter(t *testing.T) {
	ix, ids := buildPaperIndex(t, Options{})
	xs, _ := ix.GetTravelTimes(path(ids, "A", "B"), NewFixed(0, 15), Filter{User: 2, ExcludeTraj: -1}, 0)
	if !equalInts(sortedCopy(xs), []int{6}) { // only tr2
		t.Fatalf("user-2 X = %v", xs)
	}
}

func TestExcludeTraj(t *testing.T) {
	ix, ids := buildPaperIndex(t, Options{})
	xs, _ := ix.GetTravelTimes(path(ids, "A", "B", "E"), NewFixed(0, 15), Filter{User: traj.NoUser, ExcludeTraj: 0}, 0)
	if !equalInts(sortedCopy(xs), []int{10}) { // tr0 excluded, tr3 stays
		t.Fatalf("excluded X = %v", xs)
	}
}

func TestTemporalPredicate(t *testing.T) {
	ix, ids := buildPaperIndex(t, Options{})
	// Only trajectories entering A in [0, 3): tr0 (t=0) and tr1 (t=2).
	xs, _ := ix.GetTravelTimes(path(ids, "A"), NewFixed(0, 3), NoFilter, 0)
	if !equalInts(sortedCopy(xs), []int{3, 4}) {
		t.Fatalf("X = %v, want {3,4}", xs)
	}
}

func TestBetaEarlyExit(t *testing.T) {
	ix, ids := buildPaperIndex(t, Options{})
	xs, _ := ix.GetTravelTimes(path(ids, "A"), NewFixed(0, 100), NoFilter, 2)
	if len(xs) != 2 {
		t.Fatalf("beta=2 returned %d results", len(xs))
	}
}

func TestPeriodicRequiresBeta(t *testing.T) {
	ix, ids := buildPaperIndex(t, Options{})
	// All four trajectories traverse A within seconds of midnight; a
	// periodic window around that time matches all of them.
	iv := PeriodicAround(0, 900)
	xs, _ := ix.GetTravelTimes(path(ids, "A"), iv, NoFilter, 4)
	if len(xs) != 4 {
		t.Fatalf("periodic X = %v", xs)
	}
	// Requiring more matches than exist must return nil (Procedure 5
	// line 7), triggering relaxation upstream.
	xs, fb := ix.GetTravelTimes(path(ids, "A"), iv, NoFilter, 5)
	if xs != nil || fb {
		t.Fatalf("periodic under-beta should be nil, got %v", xs)
	}
	// A fixed interval accepts fewer than beta matches.
	xs, _ = ix.GetTravelTimes(path(ids, "A"), NewFixed(0, 100), NoFilter, 5)
	if len(xs) != 4 {
		t.Fatalf("fixed under-beta X = %v", xs)
	}
}

func TestEstimateFallback(t *testing.T) {
	ix, ids := buildPaperIndex(t, Options{})
	g := ix.Graph()
	// A segment no trajectory ever traversed: add a fresh edge... the
	// graph is shared, so instead query a segment with data but an
	// interval with none — a multi-segment path returns nil, a single
	// segment <F> outside its data window still has data in [0,tmax),
	// so craft the no-data case via user filter on fixed interval:
	xs, fb := ix.GetTravelTimes(path(ids, "F"), NewFixed(0, 5), NoFilter, 0)
	if fb || len(xs) != 0 {
		// F is entered at t=10 only; [0,5) has no match, path len 1 ->
		// estimate fallback fires.
		if !fb {
			t.Fatalf("expected fallback, got %v", xs)
		}
		if len(xs) != 1 || xs[0] != g.EstimateTTSeconds(ids["F"]) {
			t.Fatalf("fallback X = %v", xs)
		}
	} else {
		t.Fatal("expected fallback or empty")
	}
	// Multi-segment path with no matching interval: nil, no fallback.
	xs, fb = ix.GetTravelTimes(path(ids, "A", "B"), NewFixed(100, 200), NoFilter, 0)
	if len(xs) != 0 || fb {
		t.Fatalf("multi-segment empty interval: %v fb=%v", xs, fb)
	}
}

func TestCountMatches(t *testing.T) {
	ix, ids := buildPaperIndex(t, Options{})
	if c := ix.CountMatches(path(ids, "A", "B"), NewFixed(0, 15), NoFilter, 0); c != 3 {
		t.Errorf("CountMatches(<A,B>) = %d, want 3", c)
	}
	if c := ix.CountMatches(path(ids, "A", "B"), NewFixed(0, 15), NoFilter, 2); c != 2 {
		t.Errorf("limited CountMatches = %d, want 2", c)
	}
	if c := ix.CountMatches(path(ids, "A", "E"), NewFixed(0, 15), NoFilter, 0); c != 0 {
		t.Errorf("CountMatches(<A,E>) = %d, want 0", c)
	}
	if c := ix.CountMatches(nil, NewFixed(0, 15), NoFilter, 0); c != 0 {
		t.Errorf("CountMatches(empty) = %d", c)
	}
}

func TestScanOrderOptions(t *testing.T) {
	for _, oldest := range []bool{false, true} {
		ix, ids := buildPaperIndex(t, Options{OldestFirst: oldest})
		xs, _ := ix.GetTravelTimes(path(ids, "A"), NewFixed(0, 100), NoFilter, 0)
		if !equalInts(sortedCopy(xs), []int{3, 3, 3, 4}) {
			t.Fatalf("oldest=%v: X = %v", oldest, xs)
		}
		// With beta=1 the two orders pick opposite ends.
		xs, _ = ix.GetTravelTimes(path(ids, "A"), NewFixed(0, 100), NoFilter, 1)
		if len(xs) != 1 {
			t.Fatalf("beta=1 X = %v", xs)
		}
		if oldest && xs[0] != 3 { // tr0's A traversal takes 3
			t.Errorf("oldest-first picked %d", xs[0])
		}
		if !oldest && xs[0] != 3 { // tr3's A traversal also takes 3
			t.Errorf("newest-first picked %d", xs[0])
		}
	}
}

func TestBothTreesAgree(t *testing.T) {
	ixCSS, ids := buildPaperIndex(t, Options{Tree: temporal.CSS})
	ixBT, _ := buildPaperIndex(t, Options{Tree: temporal.BPlus})
	paths := []network.Path{
		path(ids, "A"), path(ids, "A", "B"), path(ids, "A", "B", "E"),
		path(ids, "A", "C", "D", "E"), path(ids, "E"),
	}
	for _, p := range paths {
		a, _ := ixCSS.GetTravelTimes(p, NewFixed(0, 100), NoFilter, 0)
		b, _ := ixBT.GetTravelTimes(p, NewFixed(0, 100), NoFilter, 0)
		if !equalInts(sortedCopy(a), sortedCopy(b)) {
			t.Fatalf("trees disagree on %v: %v vs %v", p, a, b)
		}
	}
}

// synthStore builds a deterministic multi-day store on the paper network
// for partitioning tests.
func synthStore(t testing.TB, days int, perDay int) (*network.Graph, map[string]network.EdgeID, *traj.Store) {
	t.Helper()
	g, ids := network.PaperExample()
	rng := rand.New(rand.NewSource(77))
	s := traj.NewStore()
	routes := [][]string{{"A", "B", "E"}, {"A", "C", "D", "E"}, {"A", "B", "F"}}
	for d := 0; d < days; d++ {
		for k := 0; k < perDay; k++ {
			route := routes[rng.Intn(len(routes))]
			t0 := int64(d)*DaySeconds + int64(6*3600+rng.Intn(12*3600))
			var seq []traj.Entry
			tcur := t0
			for _, name := range route {
				tt := int32(3 + rng.Intn(10))
				seq = append(seq, traj.Entry{Edge: ids[name], T: tcur, TT: tt})
				tcur += int64(tt)
			}
			s.Add(traj.UserID(rng.Intn(5)), seq)
		}
	}
	return g, ids, s
}

func TestPartitionedEquivalence(t *testing.T) {
	g, ids, s1 := synthStore(t, 30, 20)
	full := Build(g, s1, Options{})
	_, _, s2 := synthStore(t, 30, 20)
	weekly := Build(g, s2, Options{PartitionDays: 7})
	if weekly.NumPartitions() < 4 {
		t.Fatalf("expected >=4 partitions, got %d", weekly.NumPartitions())
	}
	paths := []network.Path{
		path(ids, "A"), path(ids, "A", "B"), path(ids, "A", "B", "E"),
		path(ids, "A", "C", "D", "E"), path(ids, "B", "E"), path(ids, "C", "D"),
	}
	intervals := []Interval{
		NewFixed(0, 40*DaySeconds),
		NewFixed(5*DaySeconds, 12*DaySeconds),
		PeriodicAround(10*3600, 3600),
		NewPeriodic(23*3600, 7200),
	}
	for _, p := range paths {
		for _, iv := range intervals {
			a, _ := full.GetTravelTimes(p, iv, NoFilter, 0)
			b, _ := weekly.GetTravelTimes(p, iv, NoFilter, 0)
			if !equalInts(sortedCopy(a), sortedCopy(b)) {
				t.Fatalf("partitioned index disagrees on %v %v: %d vs %d results",
					p, iv, len(a), len(b))
			}
		}
	}
}

func TestGroundTruthAgainstDur(t *testing.T) {
	// Every travel time the index returns must equal Dur(tr, P) of some
	// trajectory matching the predicates — and all matching trajectories
	// must be returned when beta is unlimited.
	g, ids, s := synthStore(t, 10, 30)
	ix := Build(g, s, Options{PartitionDays: 3})
	paths := []network.Path{
		path(ids, "A", "B"), path(ids, "A", "B", "E"), path(ids, "C", "D", "E"),
	}
	iv := NewFixed(2*DaySeconds, 8*DaySeconds)
	for _, p := range paths {
		xs, fb := ix.GetTravelTimes(p, iv, NoFilter, 0)
		if fb {
			t.Fatal("unexpected fallback")
		}
		var want []int
		for i := 0; i < s.Len(); i++ {
			tr := s.Get(traj.ID(i))
			// Strict match with entry time of the first matched segment
			// in the interval.
			tp := tr.Path()
		occ:
			for off := 0; off+len(p) <= len(tp); off++ {
				for j := range p {
					if tp[off+j] != p[j] {
						continue occ
					}
				}
				if ts := tr.Seq[off].T; ts >= iv.Start && ts < iv.End {
					var sum int
					for j := range p {
						sum += int(tr.Seq[off+j].TT)
					}
					want = append(want, sum)
				}
			}
		}
		if !equalInts(sortedCopy(xs), sortedCopy(want)) {
			t.Fatalf("path %v: index %v vs ground truth %v", p, sortedCopy(xs), sortedCopy(want))
		}
	}
}

func TestTodSelectivity(t *testing.T) {
	g, ids, s := synthStore(t, 20, 20)
	ix := Build(g, s, Options{TodBucketSeconds: 900, PartitionDays: 7})
	// All trips start 06:00-18:00, so a full-day window has selectivity 1
	// and a night window 0.
	sel, ok := ix.TodSelectivity(ids["A"], NewPeriodic(0, DaySeconds))
	if !ok || sel < 0.999 {
		t.Errorf("full-day selectivity = %v ok=%v", sel, ok)
	}
	sel, ok = ix.TodSelectivity(ids["A"], NewPeriodic(1*3600, 3600))
	if !ok || sel != 0 {
		t.Errorf("night selectivity = %v", sel)
	}
	day, ok := ix.TodSelectivity(ids["A"], NewPeriodic(6*3600, 12*3600))
	if !ok || day < 0.9 {
		t.Errorf("day selectivity = %v", day)
	}
	// Disabled histograms report !ok.
	plain := Build(g, s, Options{})
	if _, ok := plain.TodSelectivity(ids["A"], NewPeriodic(0, 3600)); ok {
		t.Error("selectivity should be unavailable without ToD histograms")
	}
	// Fixed intervals report !ok.
	if _, ok := ix.TodSelectivity(ids["A"], NewFixed(0, 10)); ok {
		t.Error("fixed interval has no ToD selectivity")
	}
}

func TestMemoryModel(t *testing.T) {
	g, _, s := synthStore(t, 60, 10)
	full := Build(g, s, Options{TodBucketSeconds: 600})
	_, _, s2 := synthStore(t, 60, 10)
	weekly := Build(g, s2, Options{PartitionDays: 7, TodBucketSeconds: 600})
	mf, mw := full.Memory(), weekly.Memory()
	if mw.CBytes <= mf.CBytes {
		t.Errorf("C should grow with partitions: %d vs %d", mw.CBytes, mf.CBytes)
	}
	if mw.CBytes != weekly.NumPartitions()*mf.CBytes {
		t.Errorf("C should grow linearly: %d vs %d x %d", mw.CBytes, weekly.NumPartitions(), mf.CBytes)
	}
	if mw.WTBytes <= mf.WTBytes {
		t.Errorf("WT overhead should grow with partitions: %d vs %d", mw.WTBytes, mf.WTBytes)
	}
	if mf.UserBytes != mw.UserBytes {
		t.Error("user container unaffected by partitioning")
	}
	if mw.ForestBytes <= mf.ForestBytes {
		t.Errorf("partition field should grow leaves: %d vs %d", mw.ForestBytes, mf.ForestBytes)
	}
	if mw.TodBytes <= mf.TodBytes {
		t.Errorf("per-partition ToD histograms should cost more: %d vs %d", mw.TodBytes, mf.TodBytes)
	}
	if mf.Total() <= 0 {
		t.Error("total")
	}
	if full.Stats().SetupTime <= 0 || full.Stats().Records != s.NumTraversals() {
		t.Errorf("stats = %+v", full.Stats())
	}
	if full.String() == "" {
		t.Error("String")
	}
}

func TestUserAccessor(t *testing.T) {
	ix, _ := buildPaperIndex(t, Options{})
	if ix.User(0) != 1 || ix.User(1) != 2 {
		t.Errorf("User mapping wrong: %d %d", ix.User(0), ix.User(1))
	}
	tmin, tmax := ix.TimeRange()
	if tmin != 0 || tmax != 17 {
		t.Errorf("TimeRange = %d %d", tmin, tmax)
	}
}
