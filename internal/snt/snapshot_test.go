package snt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"pathhist/internal/network"
	"pathhist/internal/snapio"
	"pathhist/internal/temporal"
	"pathhist/internal/traj"
)

// snapshotFixture builds the lifecycle the tentpole promises to preserve:
// build, extend twice, compact — then the index is snapshotted. ToD
// histograms are enabled so every section kind appears in the file.
func snapshotFixture(t testing.TB) (*network.Graph, map[string]network.EdgeID, *Index) {
	t.Helper()
	opts := Options{Tree: temporal.CSS, TodBucketSeconds: 900}
	g, ids, s := synthStore(t, 20, 15)
	s.SortByStart()
	n := s.Len()
	ix := Build(g, sliceStore(s, 0, n/2), opts)
	for _, cut := range [][2]int{{n / 2, 3 * n / 4}, {3 * n / 4, n}} {
		next, err := ix.Extend(sliceStore(s, cut[0], cut[1]))
		if err != nil {
			t.Fatal(err)
		}
		ix = next
	}
	compacted, _, err := ix.Compact(CompactionPolicy{TriggerPartitions: -1, MaxMergedRecords: ix.stats.Records/2 + 1})
	if err != nil {
		t.Fatal(err)
	}
	return g, ids, compacted
}

func snapshotBytes(t testing.TB, ix *Index, epoch uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := ix.WriteSnapshot(&buf, epoch)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteSnapshot reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.Bytes()
}

// TestSnapshotRoundTrip is the central differential: a loaded snapshot must
// be query-identical and structurally identical to the index that wrote it.
func TestSnapshotRoundTrip(t *testing.T) {
	g, ids, ix := snapshotFixture(t)
	data := snapshotBytes(t, ix, 3)

	loaded, epoch, err := ReadSnapshot(g, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 3 {
		t.Fatalf("epoch = %d, want 3", epoch)
	}

	// Exact sample order, ISA ranges and path counts across the query grid.
	assertSameResults(t, ids, ix, loaded, "loaded vs writer")

	// Scalar state.
	if loaded.NumPartitions() != ix.NumPartitions() {
		t.Fatalf("partitions = %d, want %d", loaded.NumPartitions(), ix.NumPartitions())
	}
	lmin, lmax := loaded.TimeRange()
	wmin, wmax := ix.TimeRange()
	if lmin != wmin || lmax != wmax {
		t.Fatalf("time range = [%d,%d], want [%d,%d]", lmin, lmax, wmin, wmax)
	}
	if loaded.Stats() != ix.Stats() {
		t.Fatalf("stats = %+v, want %+v", loaded.Stats(), ix.Stats())
	}
	if loaded.CompactedFrom() != ix.CompactedFrom() || loaded.String() != ix.String() {
		t.Fatalf("String() = %q, want %q", loaded.String(), ix.String())
	}
	if loaded.maxTrajDur != ix.maxTrajDur || loaded.alphabet != ix.alphabet || loaded.opts != ix.opts {
		t.Fatalf("restored internals differ: %+v vs %+v", loaded.opts, ix.opts)
	}

	// The memory model is a pure function of the structures; equality means
	// every column and directory came back at its exact size.
	if loaded.Memory() != ix.Memory() {
		t.Fatalf("Memory() = %+v, want %+v", loaded.Memory(), ix.Memory())
	}

	// Users container.
	if len(loaded.users) != len(ix.users) {
		t.Fatalf("users = %d, want %d", len(loaded.users), len(ix.users))
	}
	for d := range ix.users {
		if loaded.users[d] != ix.users[d] {
			t.Fatalf("user of trajectory %d = %d, want %d", d, loaded.users[d], ix.users[d])
		}
	}

	// Frozen columns, bit for bit (including W elision state).
	ix.frozen.Each(func(e network.EdgeID, want *temporal.FrozenIndex) {
		got := loaded.frozen.Get(e)
		if got == nil || got.Len() != want.Len() {
			t.Fatalf("segment %d: missing or wrong length", e)
		}
		if (got.W == nil) != (want.W == nil) {
			t.Fatalf("segment %d: W elision differs", e)
		}
		for i := 0; i < want.Len(); i++ {
			if got.Ts[i] != want.Ts[i] || got.Traj[i] != want.Traj[i] || got.Seq[i] != want.Seq[i] ||
				got.ISA[i] != want.ISA[i] || got.A[i] != want.A[i] || got.TT[i] != want.TT[i] ||
				(want.W != nil && got.W[i] != want.W[i]) {
				t.Fatalf("segment %d record %d differs", e, i)
			}
		}
	})

	// ToD histograms: same mass in every bucket of every partition.
	if len(loaded.tod) != len(ix.tod) {
		t.Fatalf("tod partitions = %d, want %d", len(loaded.tod), len(ix.tod))
	}
	for w := range ix.tod {
		for e := range ix.tod[w] {
			want, got := ix.tod[w][e], loaded.tod[w][e]
			if (want == nil) != (got == nil) {
				t.Fatalf("tod[%d][%d] presence differs", w, e)
			}
			if want == nil {
				continue
			}
			if got.Total() != want.Total() || got.Width() != want.Width() {
				t.Fatalf("tod[%d][%d] = total %d width %d, want %d/%d",
					w, e, got.Total(), got.Width(), want.Total(), want.Width())
			}
			for b := int64(0); b < DaySeconds; b += int64(want.Width()) {
				if got.MassRange(b, b+int64(want.Width())) != want.MassRange(b, b+int64(want.Width())) {
					t.Fatalf("tod[%d][%d] bucket at %d differs", w, e, b)
				}
			}
		}
	}

	// TodSelectivity feeds the Acc estimators; spot-check it end to end.
	iv := PeriodicAround(10*3600, 3600)
	for name, e := range ids {
		sw, okW := ix.TodSelectivity(e, iv)
		sl, okL := loaded.TodSelectivity(e, iv)
		if okW != okL || sw != sl {
			t.Fatalf("TodSelectivity(%s) = %v/%v, want %v/%v", name, sl, okL, sw, okW)
		}
	}

	// Determinism: the same index snapshots to the same bytes, and the
	// loaded index re-snapshots identically (columns carry no incidental
	// state like map order or spare capacity).
	if !bytes.Equal(data, snapshotBytes(t, ix, 3)) {
		t.Fatal("snapshotting the same index twice produced different bytes")
	}
	if !bytes.Equal(data, snapshotBytes(t, loaded, 3)) {
		t.Fatal("re-snapshotting the loaded index produced different bytes")
	}
}

// TestSnapshotLoadedIndexIsLive: the restored snapshot is a first-class
// index — extending it must behave exactly like extending the writer.
func TestSnapshotLoadedIndexIsLive(t *testing.T) {
	g, ids, ix := snapshotFixture(t)
	data := snapshotBytes(t, ix, 1)
	loaded, _, err := ReadSnapshot(g, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}

	_, tmax := ix.TimeRange()
	batch := func() *Index {
		s := sliceStoreShifted(t, ids, tmax+DaySeconds)
		next, err := loaded.Extend(s)
		if err != nil {
			t.Fatal(err)
		}
		return next
	}
	extLoaded := batch()
	extWriter, err := ix.Extend(sliceStoreShifted(t, ids, tmax+DaySeconds))
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, ids, extWriter, extLoaded, "extended loaded vs extended writer")
}

// sliceStoreShifted builds a small deterministic batch starting at t0.
func sliceStoreShifted(t testing.TB, ids map[string]network.EdgeID, t0 int64) *traj.Store {
	t.Helper()
	s := traj.NewStore()
	tcur := t0
	for k := 0; k < 5; k++ {
		seq := []traj.Entry{
			{Edge: ids["A"], T: tcur, TT: 4},
			{Edge: ids["B"], T: tcur + 4, TT: 6},
			{Edge: ids["E"], T: tcur + 10, TT: 5},
		}
		s.Add(traj.UserID(k%3), seq)
		tcur += 120
	}
	return s
}

// corrupt flips one byte at the given offset.
func corrupt(data []byte, off int) []byte {
	out := append([]byte(nil), data...)
	out[off] ^= 0x40
	return out
}

// sections walks the section framing and returns each section's full byte
// range [start, end) — header, payload and padding — in file order.
func sections(t testing.TB, data []byte) [][2]int {
	t.Helper()
	const headerSize, sectionHdrSize = 40, 24
	var out [][2]int
	off := headerSize
	for off < len(data) {
		length := int(binary.LittleEndian.Uint64(data[off+8:]))
		end := off + sectionHdrSize + length + (8-length%8)%8
		out = append(out, [2]int{off, end})
		off = end
	}
	return out
}

// sectionPayloadOffsets returns the file offset of the first payload byte
// of each section, in file order.
func sectionPayloadOffsets(t *testing.T, data []byte) []int {
	t.Helper()
	const sectionHdrSize = 24
	var offs []int
	for _, s := range sections(t, data) {
		offs = append(offs, s[0]+sectionHdrSize)
	}
	return offs
}

// TestSnapshotFailClosed is the corruption table: every damaged byte class
// must surface its distinct wrapped error, never a served index.
func TestSnapshotFailClosed(t *testing.T) {
	g, _, ix := snapshotFixture(t)
	data := snapshotBytes(t, ix, 5)
	offs := sectionPayloadOffsets(t, data)
	if len(offs) != 2+ix.NumPartitions()+1+1 {
		t.Fatalf("unexpected section count %d", len(offs))
	}

	load := func(b []byte) error {
		_, _, err := ReadSnapshot(g, bytes.NewReader(b))
		return err
	}

	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{10, 39, 64, len(data) / 2, len(data) - 1} {
			if err := load(data[:cut]); !errors.Is(err, snapio.ErrTruncated) {
				t.Fatalf("cut at %d: err = %v, want ErrTruncated", cut, err)
			}
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		if err := load(corrupt(data, 0)); !errors.Is(err, snapio.ErrBadMagic) {
			t.Fatalf("err = %v, want ErrBadMagic", err)
		}
	})
	t.Run("wrong version", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		binary.LittleEndian.PutUint32(bad[8:], snapio.Version+9)
		if err := load(bad); !errors.Is(err, snapio.ErrVersion) {
			t.Fatalf("err = %v, want ErrVersion", err)
		}
	})
	t.Run("bit flip per section", func(t *testing.T) {
		// One flipped payload byte in every section must fail the CRC.
		for i, off := range offs {
			if err := load(corrupt(data, off)); !errors.Is(err, snapio.ErrChecksum) {
				t.Fatalf("section %d: err = %v, want ErrChecksum", i, err)
			}
		}
	})
	t.Run("header partition count disagreement", func(t *testing.T) {
		// Rewrite the header's partition count (and its CRC, so the
		// corruption is semantic, not a checksum failure): the meta section
		// still names the real count, and the loader must notice.
		bad := append([]byte(nil), data...)
		binary.LittleEndian.PutUint32(bad[24:], uint32(ix.NumPartitions()+1))
		rewriteHeaderCRC(bad)
		if err := load(bad); !errors.Is(err, ErrSnapshotMismatch) {
			t.Fatalf("err = %v, want ErrSnapshotMismatch", err)
		}
	})
	t.Run("header epoch disagreement", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		binary.LittleEndian.PutUint64(bad[16:], 99)
		rewriteHeaderCRC(bad)
		if err := load(bad); !errors.Is(err, ErrSnapshotMismatch) {
			t.Fatalf("err = %v, want ErrSnapshotMismatch", err)
		}
	})
	t.Run("spliced forest section", func(t *testing.T) {
		// The nastiest corruption: a forest section copied whole from a
		// DIFFERENT valid snapshot of the same network. Every per-section
		// CRC checks out, the segment set matches (same routes), but the
		// donor's trajectory ids and ISA positions index structures the
		// host snapshot does not have — serving it would panic (or silently
		// mis-answer) at query time, so the loader must refuse it.
		opts := Options{Tree: temporal.CSS, TodBucketSeconds: 900}
		g2, _, bigStore := synthStore(t, 40, 25) // more trajs than the fixture's
		donor := snapshotBytes(t, Build(g2, bigStore, opts), 5)
		host := append([]byte(nil), data...)
		hs, ds := sections(t, host), sections(t, donor)
		forestIdx := len(hs) - 2 // meta, users, partitions..., forest, tod
		spliced := append([]byte(nil), host[:hs[forestIdx][0]]...)
		spliced = append(spliced, donor[ds[len(ds)-2][0]:ds[len(ds)-2][1]]...)
		spliced = append(spliced, host[hs[forestIdx][1]:]...)
		err := load(spliced)
		if !errors.Is(err, ErrSnapshotMismatch) {
			t.Fatalf("err = %v, want ErrSnapshotMismatch", err)
		}
	})
	t.Run("wrong network", func(t *testing.T) {
		other := network.New()
		if err := func() error {
			_, _, err := ReadSnapshot(other, bytes.NewReader(data))
			return err
		}(); !errors.Is(err, ErrSnapshotMismatch) {
			t.Fatalf("err = %v, want ErrSnapshotMismatch", err)
		}
	})
}

func rewriteHeaderCRC(data []byte) {
	binary.LittleEndian.PutUint32(data[32:], crc32.Checksum(data[:32], crc32.MakeTable(crc32.Castagnoli)))
}
