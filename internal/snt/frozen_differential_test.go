package snt

import (
	"math/rand"
	"testing"

	"pathhist/internal/network"
	"pathhist/internal/temporal"
	"pathhist/internal/traj"
	"pathhist/internal/workload"
)

// mirrorForest rebuilds a live temporal tree forest carrying exactly the
// records of the index's frozen columns (ForestBuilder.Finish sorts stably,
// so tie order is preserved) — the pre-freeze data structure the fused scan
// path replaced.
func mirrorForest(ix *Index, kind temporal.TreeKind) *temporal.Forest {
	fb := temporal.NewForestBuilder(kind)
	ix.frozen.Each(func(e network.EdgeID, fx *temporal.FrozenIndex) {
		for i := 0; i < fx.Len(); i++ {
			w := int32(0)
			if fx.W != nil {
				w = fx.W[i]
			}
			fb.Add(e, fx.Ts[i], temporal.Record{
				ISA:  fx.ISA[i],
				Traj: fx.Traj[i],
				TT:   fx.TT[i],
				A:    fx.A[i],
				Seq:  fx.Seq[i],
				W:    w,
			})
		}
	})
	return fb.Finish()
}

// treeTravelTimes is the pre-freeze Procedure 3-5 implementation, verbatim:
// per-day Ascend/Descend tree scans with per-record callbacks building a
// (d, seq) map, then an ascending probe scan. It is the order oracle the
// fused scans must match byte for byte.
func treeTravelTimes(ix *Index, forest *temporal.Forest, p network.Path, iv Interval, f Filter, beta int) (xs []int, fallback bool) {
	sc := AcquireScratch()
	defer ReleaseScratch(sc)
	ranges, total := ix.isaRanges(sc, p)
	if total == 0 {
		if len(p) == 1 {
			return []int{ix.g.EstimateTTSeconds(p[0])}, true
		}
		return nil, false
	}
	type mapKey struct {
		d   traj.ID
		seq int32
	}
	m := map[mapKey]int32{}
	var minT, maxT int64
	if phi := forest.Get(p[0]); phi != nil {
		visit := func(t int64, r temporal.Record) bool {
			rg := ranges[r.W]
			if int64(r.ISA) < rg.St || int64(r.ISA) >= rg.Ed {
				return true
			}
			if r.Traj == f.ExcludeTraj {
				return true
			}
			if f.User != traj.NoUser && ix.users[r.Traj] != f.User {
				return true
			}
			if len(m) == 0 || t < minT {
				minT = t
			}
			if len(m) == 0 || t > maxT {
				maxT = t
			}
			m[mapKey{r.Traj, r.Seq}] = r.A - r.TT
			return beta <= 0 || len(m) < beta
		}
		iv.EachRange(ix.tmin, ix.tmax, !ix.opts.OldestFirst, func(lo, hi int64) bool {
			done := false
			scan := func(t int64, r temporal.Record) bool {
				cont := visit(t, r)
				if !cont {
					done = true
				}
				return cont
			}
			if ix.opts.OldestFirst {
				phi.Ascend(lo, hi, scan)
			} else {
				phi.Descend(lo, hi, scan)
			}
			return !done
		})
	}
	if len(m) < beta && iv.IsPeriodic() {
		return nil, false
	}
	if len(m) > 0 {
		if phi := forest.Get(p[len(p)-1]); phi != nil {
			phi.Ascend(minT, maxT+ix.maxTrajDur+1, func(t int64, r temporal.Record) bool {
				if diff, ok := m[mapKey{r.Traj, r.Seq + 1 - int32(len(p))}]; ok {
					xs = append(xs, int(r.A-diff))
				}
				return true
			})
		}
	}
	if len(xs) == 0 && len(p) == 1 {
		return []int{ix.g.EstimateTTSeconds(p[0])}, true
	}
	return xs, false
}

// TestFusedScansMatchTreeScans is the differential property test of the
// frozen scan path: on a realistic generated workload, for every index
// configuration (tree kind, partitioning, scan order), random sub-paths,
// random fixed/periodic/wrapped intervals, random β cutoffs and random
// filters, the fused GetTravelTimes reproduces the pre-freeze tree-scan
// implementation exactly — same samples in the same order, same fallback
// flag. Run under -race in CI like every concurrency suite.
func TestFusedScansMatchTreeScans(t *testing.T) {
	cfg := workload.SmallConfig()
	cfg.Net.Cities = 3
	cfg.Net.GridSize = 5
	cfg.Drivers = 12
	cfg.Days = 25
	cfg.TargetTrips = 450
	ds := workload.BuildDataset(cfg)
	rng := rand.New(rand.NewSource(1234))

	for _, opts := range []Options{
		{Tree: temporal.CSS},
		{Tree: temporal.CSS, OldestFirst: true},
		{Tree: temporal.BPlus, PartitionDays: 7},
		{Tree: temporal.BPlus, PartitionDays: 5, OldestFirst: true},
	} {
		ix := Build(ds.G, ds.Store, opts)
		forest := mirrorForest(ix, opts.Tree)
		tmin, tmax := ix.TimeRange()
		for trial := 0; trial < 150; trial++ {
			tr := ds.Store.Get(traj.ID(rng.Intn(ds.Store.Len())))
			tp := tr.Path()
			plen := 1 + rng.Intn(5)
			if plen > len(tp) {
				plen = len(tp)
			}
			off := rng.Intn(len(tp) - plen + 1)
			p := append(network.Path(nil), tp[off:off+plen]...)
			if rng.Intn(8) == 0 {
				p[rng.Intn(len(p))] = network.EdgeID(rng.Intn(ds.G.NumEdges()))
			}

			var iv Interval
			switch rng.Intn(4) {
			case 0:
				lo := tmin + rng.Int63n(tmax-tmin)
				iv = NewFixed(lo, lo+rng.Int63n(tmax-lo)+1)
			case 1:
				iv = PeriodicAround(tmin+rng.Int63n(tmax-tmin), 900+rng.Int63n(7200))
			case 2:
				iv = NewPeriodic(rng.Int63n(DaySeconds), 900) // may wrap midnight
			default:
				iv = NewPeriodic(rng.Int63n(DaySeconds), DaySeconds) // full-day tiling
			}
			f := NoFilter
			if rng.Intn(3) == 0 {
				f.User = traj.UserID(rng.Intn(cfg.Drivers))
			}
			if rng.Intn(4) == 0 {
				f.ExcludeTraj = tr.ID
			}
			beta := 0
			if rng.Intn(3) > 0 {
				beta = 1 + rng.Intn(30)
			}

			got, gotFb := ix.GetTravelTimes(p, iv, f, beta)
			want, wantFb := treeTravelTimes(ix, forest, p, iv, f, beta)
			if gotFb != wantFb {
				t.Fatalf("opts %+v trial %d: fallback %v vs %v (path %v iv %v f %+v beta %d)",
					opts, trial, gotFb, wantFb, p, iv, f, beta)
			}
			if len(got) != len(want) {
				t.Fatalf("opts %+v trial %d: %d vs %d samples (path %v iv %v f %+v beta %d)\n got %v\nwant %v",
					opts, trial, len(got), len(want), p, iv, f, beta, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("opts %+v trial %d: sample order diverges at %d (path %v iv %v f %+v beta %d)\n got %v\nwant %v",
						opts, trial, i, p, iv, f, beta, got, want)
				}
			}
			// CountMatches rides the same fused path; every accepted first
			// segment of a strict occurrence has exactly one probe partner,
			// so the exhaustive count equals the sample count.
			if beta == 0 && !gotFb {
				if n := ix.CountMatches(p, iv, f, 0); n != len(want) {
					t.Fatalf("opts %+v trial %d: CountMatches %d vs %d samples", opts, trial, n, len(want))
				}
			}
		}
	}
}
