package snt

import (
	"fmt"

	"pathhist/internal/hist"
)

// DaySeconds is the length of a day in seconds.
const DaySeconds = hist.DaySeconds

// IntervalKind distinguishes the two temporal predicates of Section 2.3.
type IntervalKind uint8

// A temporal predicate either covers a fixed absolute interval or a periodic
// time-of-day interval recurring every 24 hours.
const (
	Fixed IntervalKind = iota
	Periodic
)

// Interval is the temporal predicate I of a strict path query.
type Interval struct {
	Kind IntervalKind
	// Fixed bounds [Start, End) in unix seconds (Kind == Fixed).
	Start, End int64
	// Periodic window [TodStart, TodStart+Width) seconds-of-day, recurring
	// daily (Kind == Periodic). TodStart is normalised to [0, DaySeconds);
	// the window may wrap midnight. Width is capped at DaySeconds.
	TodStart, Width int64
}

// NewFixed returns the fixed interval [start, end).
func NewFixed(start, end int64) Interval {
	return Interval{Kind: Fixed, Start: start, End: end}
}

// NewPeriodic returns the periodic interval [todStart, todStart+width)^R.
func NewPeriodic(todStart, width int64) Interval {
	if width > DaySeconds {
		width = DaySeconds
	}
	if width < 1 {
		width = 1
	}
	return Interval{Kind: Periodic, TodStart: mod(todStart, DaySeconds), Width: width}
}

// PeriodicAround returns the periodic interval of the given width centred on
// the time-of-day of t — the I_tr^R = [t0 - α/2, t0 + α/2)^R of Section 5.2.
func PeriodicAround(t int64, width int64) Interval {
	return NewPeriodic(mod(t, DaySeconds)-width/2, width)
}

func mod(a, m int64) int64 {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// IsPeriodic reports whether the interval is periodic.
func (iv Interval) IsPeriodic() bool { return iv.Kind == Periodic }

// Alpha returns the interval size α = te - ts.
func (iv Interval) Alpha() int64 {
	if iv.Kind == Periodic {
		return iv.Width
	}
	return iv.End - iv.Start
}

// Resize returns the interval with the given width, preserving its centre.
// This implements both widen (Procedure 1 line 3) and shrink (line 7); it
// panics on fixed intervals (never resized by the splitter).
func (iv Interval) Resize(width int64) Interval {
	if iv.Kind != Periodic {
		panic("snt: Resize on fixed interval")
	}
	centre := iv.TodStart + iv.Width/2
	return NewPeriodic(centre-width/2, width)
}

// ShiftEnlarge returns the shift-and-enlarge adaptation of Section 4.2 for
// the i-th sub-query: the window start shifts by s = Σ H_j^min and the width
// grows by r = Σ (H_j^max - H_j^min). (The paper writes [ts+S, te+R); we
// implement the Dai-et-al intent [ts+S, te+S+R) — see DESIGN.md §4.)
func (iv Interval) ShiftEnlarge(s, r int64) Interval {
	if iv.Kind != Periodic {
		return iv
	}
	return NewPeriodic(iv.TodStart+s, iv.Width+r)
}

// Contains reports whether the timestamp satisfies the predicate.
func (iv Interval) Contains(t int64) bool {
	if iv.Kind == Fixed {
		return t >= iv.Start && t < iv.End
	}
	if iv.Width >= DaySeconds {
		return true
	}
	return mod(mod(t, DaySeconds)-iv.TodStart, DaySeconds) < iv.Width
}

// EachRange enumerates the absolute timestamp ranges the interval covers
// within the data range [tmin, tmax], newest first when newestFirst is set.
// fn returning false stops the enumeration. For periodic intervals this
// yields one (clipped) window per day.
func (iv Interval) EachRange(tmin, tmax int64, newestFirst bool, fn func(lo, hi int64) bool) {
	clipCall := func(lo, hi int64) bool {
		if lo < tmin {
			lo = tmin
		}
		if hi > tmax+1 {
			hi = tmax + 1
		}
		if lo >= hi {
			return true
		}
		return fn(lo, hi)
	}
	if iv.Kind == Fixed {
		clipCall(iv.Start, iv.End)
		return
	}
	firstDay := tmin/DaySeconds - 1 // wrapped windows of the previous day may reach tmin
	lastDay := tmax / DaySeconds
	if newestFirst {
		for d := lastDay; d >= firstDay; d-- {
			lo := d*DaySeconds + iv.TodStart
			if !clipCall(lo, lo+iv.Width) {
				return
			}
		}
		return
	}
	for d := firstDay; d <= lastDay; d++ {
		lo := d*DaySeconds + iv.TodStart
		if !clipCall(lo, lo+iv.Width) {
			return
		}
	}
}

// String formats the predicate for logs and error messages.
func (iv Interval) String() string {
	if iv.Kind == Fixed {
		return fmt.Sprintf("[%d, %d)", iv.Start, iv.End)
	}
	hh := iv.TodStart / 3600
	mm := iv.TodStart % 3600 / 60
	return fmt.Sprintf("[%02d:%02d +%dm)^R", hh, mm, iv.Width/60)
}
