package snt

import (
	"math/rand"
	"testing"
)

// TestScratchTableBasic exercises insert/lookup including negative
// sequence numbers (ProbeMap looks up seq+1-l, which can be negative).
func TestScratchTableBasic(t *testing.T) {
	var sc Scratch
	sc.resetTable(4)
	if _, ok := sc.lookup(packKey(1, 2)); ok {
		t.Fatal("lookup on empty table hit")
	}
	if !sc.insert(packKey(1, 2), 42) {
		t.Fatal("first insert not new")
	}
	if sc.insert(packKey(1, 2), 43) {
		t.Fatal("overwrite reported as new")
	}
	if v, ok := sc.lookup(packKey(1, 2)); !ok || v != 43 {
		t.Fatalf("lookup = %d, %v", v, ok)
	}
	if _, ok := sc.lookup(packKey(2, 1)); ok {
		t.Fatal("swapped key hit")
	}
	if _, ok := sc.lookup(packKey(1, -2)); ok {
		t.Fatal("negative seq hit without insert")
	}
	if sc.n != 1 {
		t.Fatalf("n = %d", sc.n)
	}
	// (d=0, seq=0) packs to key 0, which must be storable.
	sc.insert(packKey(0, 0), 7)
	if v, ok := sc.lookup(packKey(0, 0)); !ok || v != 7 {
		t.Fatalf("zero key lookup = %d, %v", v, ok)
	}
}

// TestScratchTableAgainstMap drives the open-addressing table with random
// keys (forcing growth past the initial size) and cross-checks a Go map.
func TestScratchTableAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var sc Scratch
	sc.resetTable(0)
	ref := map[uint64]int32{}
	for i := 0; i < 5000; i++ {
		d := int32(rng.Intn(800))
		seq := int32(rng.Intn(60)) - 30
		v := int32(rng.Intn(1 << 20))
		k := packKey(d, seq)
		wantNew := func() bool { _, ok := ref[k]; return !ok }()
		if gotNew := sc.insert(k, v); gotNew != wantNew {
			t.Fatalf("insert %d: new = %v, want %v", i, gotNew, wantNew)
		}
		ref[k] = v
	}
	if sc.n != len(ref) {
		t.Fatalf("n = %d, want %d", sc.n, len(ref))
	}
	for k, v := range ref {
		if got, ok := sc.lookup(k); !ok || got != v {
			t.Fatalf("lookup %x = %d, %v; want %d", k, got, ok, v)
		}
	}
	for i := 0; i < 1000; i++ {
		k := packKey(int32(rng.Intn(2000)), int32(rng.Intn(120))-60)
		v, ok := sc.lookup(k)
		rv, rok := ref[k]
		if ok != rok || (ok && v != rv) {
			t.Fatalf("lookup %x = %d, %v; want %d, %v", k, v, ok, rv, rok)
		}
	}
	// Reset must empty the table while keeping capacity.
	sc.resetTable(8)
	if sc.n != 0 {
		t.Fatalf("n after reset = %d", sc.n)
	}
	for k := range ref {
		if _, ok := sc.lookup(k); ok {
			t.Fatalf("stale key %x after reset", k)
		}
		break
	}
}

// TestGetTravelTimesWithMatchesAllocating checks that the scratch-based
// path and the allocating wrapper agree, and that scratch reuse across
// differently-shaped scans does not leak state between calls.
func TestGetTravelTimesWithMatchesAllocating(t *testing.T) {
	ix, ids := buildPaperIndex(t, Options{})
	sc := AcquireScratch()
	defer ReleaseScratch(sc)
	paths := [][]string{{"A", "B", "E"}, {"A"}, {"F"}, {"A", "C", "D", "E"}, {"B", "E"}}
	ivs := []Interval{NewFixed(0, 20), NewPeriodic(0, 900), NewFixed(3, 9)}
	for _, names := range paths {
		p := path(ids, names...)
		for _, iv := range ivs {
			for _, beta := range []int{0, 1, 2, 5} {
				want, wantFb := ix.GetTravelTimes(p, iv, NoFilter, beta)
				got, gotFb := ix.GetTravelTimesWith(sc, p, iv, NoFilter, beta)
				if wantFb != gotFb || len(want) != len(got) {
					t.Fatalf("%v %v β=%d: %v/%v vs %v/%v", names, iv, beta, want, wantFb, got, gotFb)
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("%v %v β=%d: sample %d: %d vs %d", names, iv, beta, i, want[i], got[i])
					}
				}
				if n := ix.CountMatches(p, iv, NoFilter, 0); n != ix.CountMatchesWith(sc, p, iv, NoFilter, 0) {
					t.Fatalf("%v %v: CountMatches disagreement (%d)", names, iv, n)
				}
			}
		}
	}
}
