package snt

import "sync"

// Scratch holds the reusable per-scan state of the Procedure 3/4 retrieval
// path: the open-addressing probe table that replaces the (d, seq) map, the
// travel-time sample buffer, and the symbol/range buffers of Procedure 2.
// A Scratch belongs to exactly one goroutine at a time; the index itself is
// immutable after Build, so any number of goroutines may scan concurrently
// as long as each uses its own Scratch (see DESIGN.md §6).
type Scratch struct {
	// Open-addressing table mapping packed (d, seq) keys to a0 - TT0.
	// keys[i] == emptySlot marks a free slot; len(keys) is a power of two.
	keys []uint64
	vals []int32
	n    int // occupied slots

	xs     []int   // travel-time sample buffer (ProbeMap output)
	hits   []int32 // accepted column offsets of the single-segment fast path
	syms   []int32 // trajectory-string symbols of the query path
	ranges []Range // per-partition ISA ranges

	// cancel, when non-nil, is polled by the scan loops at window
	// boundaries and every cancelStride records within a window: a closed
	// channel aborts the scan early (DESIGN.md §12). The aborted scan's
	// output is partial — callers that set a cancel channel must discard
	// the results of any scan during which Canceled() became true.
	cancel <-chan struct{}
}

// cancelStride bounds how many records a scan sweeps between cancellation
// polls: one poll (a non-blocking channel select) per 8k records keeps the
// overhead unmeasurable while bounding post-deadline scan time to
// microseconds.
const cancelStride = 8192

// SetCancel arms (or, with nil, disarms) scan cancellation on this Scratch.
// The query layer passes a context's Done channel; ReleaseScratch disarms
// automatically.
func (sc *Scratch) SetCancel(done <-chan struct{}) { sc.cancel = done }

// Canceled reports whether the armed cancel channel is closed. It is the
// check the scan loops poll, and callers use it after a scan to decide
// whether the output is trustworthy (a scan that observed cancellation
// returns partial data).
func (sc *Scratch) Canceled() bool {
	if sc.cancel == nil {
		return false
	}
	select {
	case <-sc.cancel:
		return true
	default:
		return false
	}
}

// emptySlot is never a valid packed key: trajectory ids are non-negative
// int32s, so the top bit of the packed key's high word is always clear.
const emptySlot = ^uint64(0)

// packKey packs a (trajectory id, sequence number) pair into one probe key.
// Negative sequence numbers (ProbeMap looks up seq+1-l) pack to distinct
// keys via the uint32 conversion.
func packKey(d int32, seq int32) uint64 {
	return uint64(uint32(d))<<32 | uint64(uint32(seq))
}

// hashKey is Fibonacci hashing; the table mask is applied by the caller.
func hashKey(k uint64) uint64 {
	return k * 0x9E3779B97F4A7C15
}

const minTableSize = 64

// resetTable prepares the probe table for up to hint insertions (hint <= 0
// sizes minimally; the table grows on demand).
func (sc *Scratch) resetTable(hint int) {
	size := minTableSize
	for hint > 0 && size*3 < hint*4 { // keep load factor under 3/4
		size <<= 1
	}
	if cap(sc.keys) >= size {
		sc.keys = sc.keys[:size]
		sc.vals = sc.vals[:size]
	} else {
		sc.keys = make([]uint64, size)
		sc.vals = make([]int32, size)
	}
	for i := range sc.keys {
		sc.keys[i] = emptySlot
	}
	sc.n = 0
}

// insert maps key to val, overwriting an existing mapping. It reports
// whether the key was new.
func (sc *Scratch) insert(key uint64, val int32) bool {
	if (sc.n+1)*4 > len(sc.keys)*3 {
		sc.grow()
	}
	mask := uint64(len(sc.keys) - 1)
	i := hashKey(key) & mask
	for {
		switch sc.keys[i] {
		case emptySlot:
			sc.keys[i] = key
			sc.vals[i] = val
			sc.n++
			return true
		case key:
			sc.vals[i] = val
			return false
		}
		i = (i + 1) & mask
	}
}

// lookup returns the value mapped to key.
func (sc *Scratch) lookup(key uint64) (int32, bool) {
	if sc.n == 0 {
		return 0, false
	}
	mask := uint64(len(sc.keys) - 1)
	i := hashKey(key) & mask
	for {
		switch sc.keys[i] {
		case key:
			return sc.vals[i], true
		case emptySlot:
			return 0, false
		}
		i = (i + 1) & mask
	}
}

// grow doubles the table, rehashing the occupied slots.
func (sc *Scratch) grow() {
	oldKeys, oldVals := sc.keys, sc.vals
	size := len(oldKeys) * 2
	sc.keys = make([]uint64, size)
	sc.vals = make([]int32, size)
	for i := range sc.keys {
		sc.keys[i] = emptySlot
	}
	mask := uint64(size - 1)
	for i, k := range oldKeys {
		if k == emptySlot {
			continue
		}
		j := hashKey(k) & mask
		for sc.keys[j] != emptySlot {
			j = (j + 1) & mask
		}
		sc.keys[j] = k
		sc.vals[j] = oldVals[i]
	}
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// AcquireScratch returns a Scratch from the package pool. Callers that
// issue many scans (the query engine's workers) should hold one Scratch for
// their whole batch and release it afterwards.
func AcquireScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// ReleaseScratch returns a Scratch to the pool. The buffers of any result
// returned by a *With call are invalid after release.
func ReleaseScratch(sc *Scratch) {
	sc.cancel = nil // never let a dead query's context leak into the pool
	scratchPool.Put(sc)
}
