package snt

import (
	"testing"

	"pathhist/internal/network"
	"pathhist/internal/temporal"
	"pathhist/internal/traj"
)

// splitStore divides a store into two stores at the median start time.
func splitStore(s *traj.Store) (*traj.Store, *traj.Store) {
	s.SortByStart()
	a, b := traj.NewStore(), traj.NewStore()
	half := s.Len() / 2
	for i := 0; i < s.Len(); i++ {
		tr := s.Get(traj.ID(i))
		seq := append([]traj.Entry(nil), tr.Seq...)
		if i < half {
			a.Add(tr.User, seq)
		} else {
			b.Add(tr.User, seq)
		}
	}
	return a, b
}

func TestExtendMatchesFullBuild(t *testing.T) {
	for _, kind := range []temporal.TreeKind{temporal.CSS, temporal.BPlus} {
		g, ids, s := synthStore(t, 20, 15)
		full := Build(g, s, Options{Tree: kind, TodBucketSeconds: 900})

		_, _, s2 := synthStore(t, 20, 15)
		first, second := splitStore(s2)
		// Trajectory boundaries may interleave around the midpoint; drop
		// overlap by construction: splitStore splits on sorted order, and
		// synthStore trips never span days, so requiring strictly later
		// start works unless two trips share a timestamp. Shift the batch
		// check by rebuilding only when valid.
		base := Build(g, first, Options{Tree: kind, TodBucketSeconds: 900})
		ext, err := base.Extend(second)
		if err != nil {
			t.Fatalf("%v: Extend: %v", kind, err)
		}
		if ext.NumPartitions() != 2 {
			t.Fatalf("partitions = %d", ext.NumPartitions())
		}
		// Copy-on-write: the pre-extend snapshot is untouched.
		if base.NumPartitions() != 1 || base.Stats().Trajs != first.Len() {
			t.Fatalf("%v: Extend mutated the source snapshot", kind)
		}
		// Extension chains are linear: the superseded snapshot refuses a
		// second extension instead of corrupting shared capacity.
		if _, err := base.Extend(second); err == nil {
			t.Fatalf("%v: superseded snapshot accepted a second Extend", kind)
		}

		paths := []network.Path{
			path(ids, "A"), path(ids, "A", "B"), path(ids, "A", "B", "E"),
			path(ids, "A", "C", "D", "E"), path(ids, "C", "D"),
		}
		intervals := []Interval{
			NewFixed(0, 40*DaySeconds),
			PeriodicAround(10*3600, 3600),
		}
		for _, p := range paths {
			for _, iv := range intervals {
				a, _ := full.GetTravelTimes(p, iv, NoFilter, 0)
				b, _ := ext.GetTravelTimes(p, iv, NoFilter, 0)
				if !equalInts(sortedCopy(a), sortedCopy(b)) {
					t.Fatalf("%v: extended index disagrees on %v %v: %d vs %d results",
						kind, p, iv, len(a), len(b))
				}
			}
		}
		// Cardinalities and ToD selectivities agree too.
		for _, p := range paths {
			if full.PathCount(p) != ext.PathCount(p) {
				t.Fatalf("PathCount differs on %v", p)
			}
		}
		sf, okf := full.TodSelectivity(ids["A"], NewPeriodic(7*3600, 7200))
		se, oke := ext.TodSelectivity(ids["A"], NewPeriodic(7*3600, 7200))
		if okf != oke || (okf && (sf-se > 1e-9 || se-sf > 1e-9)) {
			t.Fatalf("ToD selectivity differs: %v/%v vs %v/%v", sf, okf, se, oke)
		}
	}
}

func TestExtendUserMapping(t *testing.T) {
	g, ids, s := synthStore(t, 10, 10)
	first, second := splitStore(s)
	ix := Build(g, first, Options{})
	nBefore := first.Len()
	ix, err := ix.Extend(second)
	if err != nil {
		t.Fatal(err)
	}
	// New trajectory ids continue the id space with correct users.
	for i := 0; i < second.Len(); i++ {
		want := second.Get(traj.ID(i)).User
		if got := ix.User(traj.ID(nBefore + i)); got != want {
			t.Fatalf("user of extended traj %d = %d, want %d", i, got, want)
		}
	}
	// Self-exclusion works across the boundary.
	tr := second.Get(0)
	p := tr.Path()[:1]
	withSelf, _ := ix.GetTravelTimes(p, NewFixed(0, 1<<60), NoFilter, 0)
	excl := Filter{User: traj.NoUser, ExcludeTraj: traj.ID(nBefore)}
	withoutSelf, _ := ix.GetTravelTimes(p, NewFixed(0, 1<<60), excl, 0)
	if len(withoutSelf) != len(withSelf)-1 {
		t.Fatalf("exclusion across batches: %d vs %d", len(withoutSelf), len(withSelf))
	}
	_ = ids
}

func TestExtendRejectsOverlappingBatch(t *testing.T) {
	g, _, s := synthStore(t, 10, 10)
	first, second := splitStore(s)
	ix := Build(g, second, Options{}) // index the LATER half
	if _, err := ix.Extend(first); err == nil {
		t.Fatal("overlapping (earlier) batch accepted")
	}
	// Failed extends leave the index usable, unchanged, and still
	// extendable (the superseded flag is released on rejection).
	if ix.NumPartitions() != 1 || ix.Stats().Trajs != second.Len() {
		t.Fatal("failed Extend mutated the index")
	}
	if ix.superseded.Load() {
		t.Fatal("rejected Extend left the snapshot superseded")
	}
}

// TestExtendRejectsInvalidBatch: Extend is reachable from untrusted input
// through the serving layer, so malformed batches must be rejected up
// front instead of panicking inside suffix-array construction — and the
// rejection must leave the snapshot extendable.
func TestExtendRejectsInvalidBatch(t *testing.T) {
	g, _, s := synthStore(t, 5, 5)
	ix := Build(g, s, Options{})
	far := int64(1) << 40 // safely after the indexed range

	badEdge := traj.NewStore()
	badEdge.Add(0, []traj.Entry{{Edge: network.EdgeID(g.NumEdges() + 7), T: far, TT: 5}})
	if _, err := ix.Extend(badEdge); err == nil {
		t.Fatal("out-of-range edge id accepted")
	}
	badTT := traj.NewStore()
	badTT.Add(0, []traj.Entry{{Edge: 0, T: far, TT: 0}})
	if _, err := ix.Extend(badTT); err == nil {
		t.Fatal("non-positive TT accepted")
	}
	if ix.superseded.Load() {
		t.Fatal("rejected batch left the snapshot superseded")
	}
}

func TestExtendEmptyBatch(t *testing.T) {
	g, _, s := synthStore(t, 5, 5)
	ix := Build(g, s, Options{})
	same, err := ix.Extend(traj.NewStore())
	if err != nil || same != ix {
		t.Fatalf("empty batch: %v (same snapshot: %v)", err, same == ix)
	}
	if same, err = ix.Extend(nil); err != nil || same != ix {
		t.Fatalf("nil batch: %v (same snapshot: %v)", err, same == ix)
	}
	if ix.NumPartitions() != 1 {
		t.Fatal("empty batch changed partitions")
	}
}

func TestExtendRepeatedBatches(t *testing.T) {
	// Three consecutive batches, queried after each extension.
	g, ids, s := synthStore(t, 30, 8)
	s.SortByStart()
	third := s.Len() / 3
	mk := func(lo, hi int) *traj.Store {
		out := traj.NewStore()
		for i := lo; i < hi; i++ {
			tr := s.Get(traj.ID(i))
			out.Add(tr.User, append([]traj.Entry(nil), tr.Seq...))
		}
		return out
	}
	ix := Build(g, mk(0, third), Options{Tree: temporal.CSS})
	ix, err := ix.Extend(mk(third, 2*third))
	if err != nil {
		t.Fatal(err)
	}
	if ix, err = ix.Extend(mk(2*third, s.Len())); err != nil {
		t.Fatal(err)
	}
	if ix.NumPartitions() != 3 {
		t.Fatalf("partitions = %d", ix.NumPartitions())
	}
	_, _, s3 := synthStore(t, 30, 8)
	full := Build(g, s3, Options{})
	p := path(ids, "A", "B")
	a, _ := full.GetTravelTimes(p, NewFixed(0, 1<<60), NoFilter, 0)
	b, _ := ix.GetTravelTimes(p, NewFixed(0, 1<<60), NoFilter, 0)
	if !equalInts(sortedCopy(a), sortedCopy(b)) {
		t.Fatalf("3-batch index disagrees: %d vs %d", len(a), len(b))
	}
	if ix.Stats().Trajs != s.Len() {
		t.Fatalf("stats.Trajs = %d, want %d", ix.Stats().Trajs, s.Len())
	}
}
