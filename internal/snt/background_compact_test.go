package snt

import (
	"errors"
	"testing"

	"pathhist/internal/temporal"
)

// TestPrepareApplyAfterExtend is the differential at the heart of
// background compaction: a preparation built against one snapshot is
// applied to a LATER snapshot (two Extends landed in between), and the
// result must answer every query bit-identically to the uncompacted chain —
// merged prefix, survivors, and the partitions ingested mid-flight all
// correctly remapped.
func TestPrepareApplyAfterExtend(t *testing.T) {
	opts := Options{Tree: temporal.CSS, TodBucketSeconds: 900}
	g, ids, s := synthStore(t, 24, 12)
	s.SortByStart()
	n := s.Len()
	cut := n * 2 / 3

	// 8 partitions over the first two thirds; the last third is held back
	// to ingest while the preparation is outstanding.
	frag := fragmentedIndex(t, g, sliceStore(s, 0, cut), 7, opts)
	old := frag.NumPartitions()
	p, err := frag.PrepareCompaction(CompactionPolicy{TriggerPartitions: -1})
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || p.Runs() != 1 {
		t.Fatalf("prepared runs = %v", p)
	}
	// Preparing supersedes nothing: the chain keeps extending.
	if frag.superseded.Load() {
		t.Fatal("PrepareCompaction superseded the snapshot")
	}
	mid := cut + (n-cut)/2
	ix1, err := frag.Extend(sliceStore(s, cut, mid))
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := ix1.Extend(sliceStore(s, mid, n))
	if err != nil {
		t.Fatal(err)
	}

	applied, stats, err := ix2.ApplyCompaction(p)
	if err != nil {
		t.Fatal(err)
	}
	// Layout: the 8 prepared partitions collapse to 1, the 2 ingested
	// mid-preparation carry over (ids shifted down).
	if applied.NumPartitions() != 3 {
		t.Fatalf("partitions after apply = %d, want 3", applied.NumPartitions())
	}
	if stats.PartitionsBefore != old+2 || stats.PartitionsAfter != 3 || stats.Runs != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	if stats.TrajsRebuilt != cut {
		t.Fatalf("TrajsRebuilt = %d, want %d", stats.TrajsRebuilt, cut)
	}
	// The mid-flight partitions' FM-indexes are shared, not rebuilt.
	if applied.parts[1].fm != ix2.parts[old].fm || applied.parts[2].fm != ix2.parts[old+1].fm {
		t.Fatal("mid-flight partitions were rebuilt")
	}
	// Apply supersedes the target exactly like Extend; the result extends.
	if _, _, err := ix2.Compact(CompactionPolicy{TriggerPartitions: -1}); !errors.Is(err, ErrSuperseded) {
		t.Fatalf("superseded apply target accepted another compaction: %v", err)
	}

	// The differential: identical answers to the uncompacted chain, and to
	// a from-scratch build with compact-then-extend of the same cuts.
	assertSameResults(t, ids, ix2, applied, "apply-after-extend vs uncompacted")
	sync := fragmentedIndex(t, g, sliceStore(s, 0, cut), 7, opts)
	syncC, _, err := sync.Compact(CompactionPolicy{TriggerPartitions: -1})
	if err != nil {
		t.Fatal(err)
	}
	syncC, err = syncC.Extend(sliceStore(s, cut, mid))
	if err != nil {
		t.Fatal(err)
	}
	syncC, err = syncC.Extend(sliceStore(s, mid, n))
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, ids, syncC, applied, "apply-after-extend vs compact-then-extend")
	for _, name := range []string{"A", "B", "E"} {
		sa, oka := syncC.TodSelectivity(ids[name], NewPeriodic(8*3600, 3600))
		sb, okb := applied.TodSelectivity(ids[name], NewPeriodic(8*3600, 3600))
		if oka != okb || !approxEq(sa, sb) {
			t.Fatalf("ToD selectivity differs on %s: %v vs %v", name, sa, sb)
		}
	}
}

// TestApplyCompactionStale pins the re-base contract: a preparation is
// invalidated by a competing compaction (the prepared partitions stop being
// a prefix of the newest snapshot) and by application to a superseded
// snapshot — and a nil preparation is the documented no-op.
func TestApplyCompactionStale(t *testing.T) {
	g, _, s := synthStore(t, 20, 10)
	frag := fragmentedIndex(t, g, s, 7, Options{})

	p, err := frag.PrepareCompaction(CompactionPolicy{TriggerPartitions: -1})
	if err != nil || p == nil {
		t.Fatalf("prepare: %v %v", p, err)
	}
	compacted, _, err := frag.Compact(CompactionPolicy{TriggerPartitions: -1})
	if err != nil {
		t.Fatal(err)
	}
	// The competing compaction changed the partition prefix: stale.
	if _, _, err := compacted.ApplyCompaction(p); !errors.Is(err, ErrCompactionStale) {
		t.Fatalf("apply over competing compaction: %v", err)
	}
	// Applying to the now-superseded original fails like any mutation.
	if _, _, err := frag.ApplyCompaction(p); !errors.Is(err, ErrSuperseded) {
		t.Fatalf("apply to superseded snapshot: %v", err)
	}
	// Re-basing: prepare against the newest snapshot plans nothing (one
	// partition left), and applying the nil preparation is a no-op.
	p2, err := compacted.PrepareCompaction(CompactionPolicy{TriggerPartitions: -1})
	if err != nil || p2 != nil {
		t.Fatalf("re-prepare on compacted: %v %v", p2, err)
	}
	same, stats, err := compacted.ApplyCompaction(nil)
	if err != nil || same != compacted || stats.Runs != 0 {
		t.Fatalf("nil apply: %v %+v", err, stats)
	}
	if compacted.superseded.Load() {
		t.Fatal("nil apply superseded the snapshot")
	}
}

// TestCompactMaxRunsChunks pins incremental compaction: MaxRuns=1 merges
// one run per cycle, repeated cycles converge to the same layout the
// unbounded policy reaches, and every intermediate snapshot answers
// identically.
func TestCompactMaxRunsChunks(t *testing.T) {
	g, ids, s := synthStore(t, 24, 12)
	frag := fragmentedIndex(t, g, s, 11, Options{TodBucketSeconds: 900})
	if frag.NumPartitions() != 12 {
		t.Fatalf("partitions = %d", frag.NumPartitions())
	}
	perPart := frag.parts[1].records
	policy := CompactionPolicy{
		TriggerPartitions: -1,
		MaxMergedRecords:  perPart*3 + 1,
		MaxRuns:           1,
	}
	ix, cycles := frag, 0
	for {
		next, stats, err := ix.Compact(policy)
		if err != nil {
			t.Fatalf("cycle %d: %v", cycles, err)
		}
		if next == ix {
			break // no more runs: converged
		}
		if stats.Runs != 1 {
			t.Fatalf("cycle %d merged %d runs, MaxRuns=1", cycles, stats.Runs)
		}
		ix = next
		if cycles++; cycles > 12 {
			t.Fatal("chunked compaction did not converge")
		}
	}
	if cycles < 2 {
		t.Fatalf("expected multiple chunked cycles, got %d", cycles)
	}
	// Convergence target: what the unbounded-runs policy produces at once.
	full := policy
	full.MaxRuns = 0
	want, _, err := fragmentedIndex(t, g, s, 11, Options{TodBucketSeconds: 900}).Compact(full)
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumPartitions() != want.NumPartitions() {
		t.Fatalf("chunked converged to %d partitions, unbounded to %d",
			ix.NumPartitions(), want.NumPartitions())
	}
	assertSameResults(t, ids, want, ix, "chunked vs unbounded")
	assertSameResults(t, ids, frag, ix, "chunked vs fragmented")
}
