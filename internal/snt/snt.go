// Package snt implements the paper's core contribution: the SNT-index of
// Koide et al. extended for travel-time histogram retrieval (Section 4). It
// combines per-partition spatial FM-indexes over the trajectory string with
// a temporal tree forest whose leaves carry traversal times, aggregate
// times and sequence numbers (Section 4.1.3), so that the traversal times of
// all trajectories following a path can be retrieved with one scan of the
// first segment's index and one scan of the last segment's index
// (Procedures 3-5).
package snt

import (
	"fmt"
	"sync/atomic"
	"time"

	"pathhist/internal/fmindex"
	"pathhist/internal/hist"
	"pathhist/internal/network"
	"pathhist/internal/suffix"
	"pathhist/internal/temporal"
	"pathhist/internal/traj"
)

// Options configures index construction.
type Options struct {
	// Tree selects the temporal forest implementation (CSS by default).
	Tree temporal.TreeKind
	// PartitionDays is the temporal partition size of Section 4.3.2 in
	// days; 0 builds a single partition (FULL).
	PartitionDays int
	// TodBucketSeconds enables per-segment per-partition time-of-day
	// histograms with the given bucket width (needed by the Acc estimator
	// modes and Figure 10b); 0 disables them.
	TodBucketSeconds int
	// OldestFirst scans temporal indexes forward in time instead of the
	// default newest-first order (DESIGN.md §4, decision 4).
	OldestFirst bool
}

// partition is one temporal partition: an FM-index over the trajectory
// string of the trajectories starting within the partition's time range,
// plus the metadata the compaction planner sizes runs with. Partitions
// cover contiguous trajectory-id ranges in partition order (Build assigns
// ids in start-time order and Extend appends the next id block), which is
// what lets Compact reconstruct a merged partition's trajectory string from
// the frozen columns alone.
type partition struct {
	fm      *fmindex.Index
	trajs   int // trajectories whose string lives in this partition
	records int // segment traversals carried by those trajectories
}

// Index is the extended SNT-index.
type Index struct {
	g     *network.Graph
	opts  Options
	parts []partition
	// frozen is F in its immutable columnar layout (see temporal.Freeze);
	// the temporal trees it was built from are dropped after construction.
	// users is the associative container U mapping trajectory ids to user
	// ids (Section 4.1.3).
	frozen *temporal.FrozenForest
	users  []traj.UserID
	// tod[w][e] is the time-of-day histogram of segment e in partition w
	// (nil when the segment has no data in the partition).
	tod [][]*hist.TodHistogram

	tmin, tmax int64
	maxTrajDur int64
	alphabet   int
	stats      BuildStats

	// compactedFrom is the partition count before the Compact call that
	// produced this snapshot (0 when the snapshot was never compacted).
	compactedFrom int

	// superseded flips once this snapshot has been extended or compacted.
	// Both share spare column/slice capacity with the snapshot they return,
	// so snapshot chains must be linear: only the newest snapshot may be
	// extended or compacted again. The flag turns a violation into an error
	// instead of silent corruption.
	superseded atomic.Bool
}

// BuildStats reports what Build did (Figure 10c).
type BuildStats struct {
	SetupTime  time.Duration
	Partitions int
	Records    int
	Trajs      int
	// TreeBytes is the modelled footprint of the construction-time temporal
	// tree forest (per Options.Tree) just before it was frozen and dropped —
	// the Figure 10a per-layout comparison, and the memory freezing releases.
	TreeBytes int
}

// Build constructs the index over the trajectory store. The store is sorted
// by start time as a side effect (id order = temporal order, the partition
// prerequisite of Section 4.3.2).
func Build(g *network.Graph, store *traj.Store, opts Options) *Index {
	startedAt := time.Now()
	store.SortByStart()
	tmin, tmax := store.TimeRange()
	ix := &Index{
		g:        g,
		opts:     opts,
		users:    make([]traj.UserID, store.Len()),
		tmin:     tmin,
		tmax:     tmax,
		alphabet: int(fmindex.MinEdgeSymbol) + g.NumEdges(),
	}
	// Assign trajectories to partitions by start time.
	partOf := func(t int64) int {
		if opts.PartitionDays <= 0 {
			return 0
		}
		return int((t - tmin) / (int64(opts.PartitionDays) * DaySeconds))
	}
	numParts := 0
	if store.Len() > 0 {
		numParts = partOf(store.All()[store.Len()-1].StartTime()) + 1
	}
	if numParts == 0 {
		numParts = 1
	}
	members := make([][]traj.ID, numParts)
	for i := range store.All() {
		tr := &store.All()[i]
		w := partOf(tr.StartTime())
		members[w] = append(members[w], tr.ID)
		ix.users[tr.ID] = tr.User
		if d := tr.TotalDuration(); d > ix.maxTrajDur {
			ix.maxTrajDur = d
		}
	}
	if opts.TodBucketSeconds > 0 {
		ix.tod = make([][]*hist.TodHistogram, numParts)
		for w := range ix.tod {
			ix.tod[w] = make([]*hist.TodHistogram, g.NumEdges())
		}
	}

	fb := temporal.NewForestBuilder(opts.Tree)
	records := 0
	for w := 0; w < numParts; w++ {
		// Build the partition's trajectory string T = P0 $ P1 $ ... $.
		var text []int32
		starts := make([]int, len(members[w]))
		for mi, id := range members[w] {
			starts[mi] = len(text)
			for _, e := range store.Get(id).Seq {
				text = append(text, int32(e.Edge)+fmindex.MinEdgeSymbol)
			}
			text = append(text, fmindex.Terminator)
		}
		_, isa, bwt := suffix.BuildAll(text, ix.alphabet)
		ix.parts = append(ix.parts, partition{
			fm:      fmindex.FromBWT(bwt, ix.alphabet),
			trajs:   len(members[w]),
			records: len(text) - len(members[w]),
		})
		// Temporal records: one per segment traversal, carrying the ISA of
		// the occurrence position, trajectory id, TT, aggregate a, seq, w.
		for mi, id := range members[w] {
			tr := store.Get(id)
			var agg int32
			for seq, e := range tr.Seq {
				agg += e.TT
				pos := starts[mi] + seq
				fb.Add(e.Edge, e.T, temporal.Record{
					ISA:  isa[pos],
					Traj: id,
					TT:   e.TT,
					A:    agg,
					Seq:  int32(seq),
					W:    int32(w),
				})
				if ix.tod != nil {
					h := ix.tod[w][e.Edge]
					if h == nil {
						h = hist.NewTod(opts.TodBucketSeconds)
						ix.tod[w][e.Edge] = h
					}
					h.Add(e.T)
				}
				records++
			}
		}
	}
	// Build the temporal trees (Section 4.1.2/4.3.1), then freeze them into
	// the immutable columnar layout the scan path reads; the trees are only
	// needed during construction and are dropped here.
	forest := fb.Finish()
	payload := temporal.PayloadBytes
	if numParts == 1 {
		payload = temporal.PayloadBytesNoPartition
	}
	treeBytes := forest.SizeBytes(payload)
	ix.frozen = forest.Freeze()
	ix.stats = BuildStats{
		SetupTime:  time.Since(startedAt),
		Partitions: numParts,
		Records:    records,
		Trajs:      store.Len(),
		TreeBytes:  treeBytes,
	}
	return ix
}

// Stats returns the build statistics.
func (ix *Index) Stats() BuildStats { return ix.stats }

// Graph returns the underlying network.
func (ix *Index) Graph() *network.Graph { return ix.g }

// TimeRange returns [tmin, tmax] of the indexed data; the upper bound plus
// one serves as the paper's tmax for the [0, tmax) fallback interval.
func (ix *Index) TimeRange() (int64, int64) { return ix.tmin, ix.tmax }

// NumPartitions returns the number of temporal partitions.
func (ix *Index) NumPartitions() int { return len(ix.parts) }

// User returns the user id of a trajectory (the container U).
func (ix *Index) User(d traj.ID) traj.UserID { return ix.users[d] }

// Frozen exposes the frozen temporal forest (used by the cardinality
// estimator for its O(log n) exact range counts).
func (ix *Index) Frozen() *temporal.FrozenForest { return ix.frozen }

// pathSymbols converts a network path to trajectory-string symbols.
func (ix *Index) pathSymbols(p network.Path) []int32 {
	syms := make([]int32, len(p))
	for i, e := range p {
		syms[i] = int32(e) + fmindex.MinEdgeSymbol
	}
	return syms
}

// Range is one partition's ISA range [St, Ed).
type Range struct{ St, Ed int64 }

// ISARanges runs Procedure 2 in every partition and returns the ranges,
// indexed by partition id. The per-partition backward searches run as one
// batch over a pooled Scratch — the path's symbols are converted once and
// the range buffer is reused — so only the returned slice is allocated.
func (ix *Index) ISARanges(p network.Path) []Range {
	sc := AcquireScratch()
	defer ReleaseScratch(sc)
	ranges, _ := ix.isaRanges(sc, p)
	return append([]Range(nil), ranges...)
}

// PathCount returns c_P: the exact number of times the path occurs in the
// trajectory string(s), summed over partitions — the base input of the
// cardinality estimator (Section 4.4). Allocation-free: the batched
// per-partition searches run over a pooled Scratch.
func (ix *Index) PathCount(p network.Path) int64 {
	sc := AcquireScratch()
	defer ReleaseScratch(sc)
	_, c := ix.isaRanges(sc, p)
	return c
}

// TodSelectivity returns formula (2): the fraction of segment-entry events
// of the path's first segment whose time-of-day falls in the periodic
// window, from the per-partition time-of-day histograms. ok is false when
// histograms are disabled or the segment has no data.
func (ix *Index) TodSelectivity(e network.EdgeID, iv Interval) (float64, bool) {
	if ix.tod == nil || !iv.IsPeriodic() {
		return 0, false
	}
	var in, total float64
	for w := range ix.tod {
		h := ix.tod[w][e]
		if h == nil {
			continue
		}
		in += h.MassRange(iv.TodStart, iv.TodStart+iv.Width)
		total += float64(h.Total())
	}
	if total == 0 {
		return 0, false
	}
	return in / total, true
}

// MemoryStats is the per-component memory model of Figure 10a/10b.
// ForestBytes reports the frozen columnar footprint the index actually
// serves from — smaller than the tree layouts it was built from, because
// the columns carry no node headers, child pointers or slack capacity, and
// the partition column is elided entirely for single-partition indexes.
type MemoryStats struct {
	CBytes      int // segment counters, all partitions
	WTBytes     int // wavelet trees, all partitions
	UserBytes   int // the associative container U
	ForestBytes int // frozen columnar temporal forest
	TodBytes    int // time-of-day histograms (Figure 10b)
}

// Total returns the summed index memory excluding the ToD histograms (the
// paper plots them separately).
func (m MemoryStats) Total() int {
	return m.CBytes + m.WTBytes + m.UserBytes + m.ForestBytes
}

// Memory computes the memory model.
func (ix *Index) Memory() MemoryStats {
	var m MemoryStats
	for _, p := range ix.parts {
		m.CBytes += p.fm.CSizeBytes()
		m.WTBytes += p.fm.WTSizeBytes()
	}
	m.UserBytes = 24 + len(ix.users)*4
	m.ForestBytes = ix.frozen.SizeBytes()
	for _, per := range ix.tod {
		for _, h := range per {
			if h != nil {
				m.TodBytes += h.SizeBytes()
			}
		}
	}
	return m
}

// String summarises the index; a compacted snapshot also reports how many
// partitions the last Compact merged down from.
func (ix *Index) String() string {
	parts := fmt.Sprintf("%d partitions", len(ix.parts))
	if ix.compactedFrom > 0 {
		parts = fmt.Sprintf("%d partitions (compacted from %d)", len(ix.parts), ix.compactedFrom)
	}
	return fmt.Sprintf("snt.Index{%s, %s, %d records, %d trajectories}",
		ix.opts.Tree, parts, ix.stats.Records, ix.stats.Trajs)
}
