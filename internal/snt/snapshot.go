// Restart persistence (DESIGN.md §10). A snapshot captures one published
// index snapshot — every structure the serving path reads — in the
// versioned, checksummed, 8-byte-aligned section format of
// internal/snapio, so a process can restore a serving-ready index with one
// sequential file read instead of replaying the whole build pipeline
// (suffix arrays, BWTs, tree freezing). The build pipeline is untouched:
// WriteSnapshot reads the immutable index, ReadSnapshot constructs an
// equivalent one, and the differential suite asserts the loaded index is
// query-identical (exact sample order, columns, ToD histograms, memory
// model) to the one that wrote it.
//
// Epoch semantics: the index itself is epoch-free — epochs belong to the
// serving layer (query.Engine) — but the snapshot carries the epoch it was
// published as, so a restored engine can republish the same epoch and keep
// epoch-stamped cache semantics consistent across the restart.
package snt

import (
	"errors"
	"fmt"
	"io"
	"time"

	"pathhist/internal/fmindex"
	"pathhist/internal/hist"
	"pathhist/internal/network"
	"pathhist/internal/snapio"
	"pathhist/internal/temporal"
	"pathhist/internal/traj"
)

// Section kinds of the snt snapshot layout, in their mandatory file order:
// one meta, one users, one partition section per temporal partition, one
// forest, and (when ToD histograms are enabled) one tod section.
const (
	secMeta      uint32 = 1
	secUsers     uint32 = 2
	secPartition uint32 = 3
	secForest    uint32 = 4
	secTod       uint32 = 5
)

// ErrSnapshotMismatch marks internal disagreements in a structurally valid
// snapshot — header vs meta-section epoch or partition counts, section
// order, or a snapshot written against a different road network. Fail
// closed: none of these may be served.
var ErrSnapshotMismatch = errors.New("snt: snapshot internal mismatch")

// WriteSnapshot serialises the index (and the serving epoch it was
// published as) to w. The receiver is immutable, so WriteSnapshot is safe
// to run concurrently with queries against the same snapshot; it returns
// the number of bytes written.
func (ix *Index) WriteSnapshot(w io.Writer, epoch uint64) (int64, error) {
	sections := 2 + len(ix.parts) + 1 // meta, users, partitions, forest
	if ix.tod != nil {
		sections++
	}
	sw := snapio.NewWriter(w)
	sw.WriteHeader(snapio.Header{
		Epoch:      epoch,
		Partitions: uint32(len(ix.parts)),
		Sections:   uint32(sections),
	})

	sw.Begin(secMeta)
	sw.U64(epoch) // repeated from the header: lets the loader detect a spliced header
	sw.U64(uint64(len(ix.parts)))
	sw.U64(uint64(ix.opts.Tree))
	sw.I64(int64(ix.opts.PartitionDays))
	sw.I64(int64(ix.opts.TodBucketSeconds))
	sw.Bool(ix.opts.OldestFirst)
	sw.I64(ix.tmin)
	sw.I64(ix.tmax)
	sw.I64(ix.maxTrajDur)
	sw.U64(uint64(ix.alphabet))
	sw.U64(uint64(ix.compactedFrom))
	sw.I64(int64(ix.stats.SetupTime))
	sw.U64(uint64(ix.stats.Partitions))
	sw.U64(uint64(ix.stats.Records))
	sw.U64(uint64(ix.stats.Trajs))
	sw.U64(uint64(ix.stats.TreeBytes))
	sw.U64(uint64(len(ix.users)))
	sw.U64(uint64(ix.g.NumEdges()))
	sw.U64(uint64(ix.frozen.NumIndexes()))
	sw.Bool(ix.tod != nil)
	sw.End()

	sw.Begin(secUsers)
	snapio.WriteI32s(sw, ix.users)
	sw.End()

	for i := range ix.parts {
		p := &ix.parts[i]
		sw.Begin(secPartition)
		sw.U64(uint64(p.trajs))
		sw.U64(uint64(p.records))
		p.fm.EncodeSnap(sw)
		sw.End()
	}

	sw.Begin(secForest)
	ix.frozen.EncodeSnap(sw)
	sw.End()

	if ix.tod != nil {
		sw.Begin(secTod)
		sw.U64(uint64(len(ix.tod)))
		for _, per := range ix.tod {
			n := 0
			for _, h := range per {
				if h != nil {
					n++
				}
			}
			sw.U64(uint64(n))
			for e, h := range per {
				if h != nil {
					sw.U64(uint64(e))
					h.EncodeSnap(sw)
				}
			}
		}
		sw.End()
	}

	if err := sw.Close(); err != nil {
		return sw.Written(), err
	}
	return sw.Written(), nil
}

// snapMeta is the decoded meta section.
type snapMeta struct {
	epoch         uint64
	numParts      int
	opts          Options
	tmin, tmax    int64
	maxTrajDur    int64
	alphabet      int
	compactedFrom int
	stats         BuildStats
	numUsers      int
	numEdges      int
	numForestIdx  int
	hasTod        bool
}

// ReadSnapshot restores an index written by WriteSnapshot against the same
// road network, returning the index and the serving epoch it was written
// at. Loading fails closed: truncation, checksum mismatches and format
// version skew surface as the snapio sentinel errors, and internal
// disagreements — header vs section epoch or partition counts, a snapshot
// of a different network — as ErrSnapshotMismatch. The restored index is a
// fresh snapshot: it can be queried, extended and compacted exactly like
// the index that was written.
func ReadSnapshot(g *network.Graph, r io.Reader) (*Index, uint64, error) {
	// Size-aware sources (bytes.Reader, buffered files) get one exact
	// allocation; io.ReadAll's doubling growth would otherwise memmove the
	// multi-megabyte file several times over.
	var data []byte
	if l, ok := r.(interface{ Len() int }); ok {
		data = make([]byte, l.Len())
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, 0, fmt.Errorf("snt: reading snapshot: %w", err)
		}
	} else {
		var err error
		if data, err = io.ReadAll(r); err != nil {
			return nil, 0, fmt.Errorf("snt: reading snapshot: %w", err)
		}
	}
	return ReadSnapshotBytes(g, data)
}

// ReadSnapshotBytes is ReadSnapshot over an in-memory file image (e.g. an
// os.ReadFile result): sections are decoded straight out of data with no
// intermediate copy of the whole file, and every column is copied onto the
// heap — the index owns its memory.
func ReadSnapshotBytes(g *network.Graph, data []byte) (*Index, uint64, error) {
	sr, err := snapio.NewReader(data)
	if err != nil {
		return nil, 0, err
	}
	return readSnapshot(g, sr, data)
}

// ReadSnapshotMapped is ReadSnapshotBytes in zero-copy mode: data is a
// read-only backing store (normally snapio.Mapping bytes) and the decoded
// columns alias it instead of being copied, so restore cost is dominated by
// CRC verification and the semantic column validation, not by allocation.
// Integrity is checked eagerly, exactly like the copying path — every
// section CRC and validateSnapshotColumns run before the index is returned
// — never lazily at page-fault time. The caller must keep data alive (and
// mapped) for as long as the index or anything derived from it (later
// Extend/Compact epochs share untouched columns) is reachable.
func ReadSnapshotMapped(g *network.Graph, data []byte) (*Index, uint64, error) {
	sr, err := snapio.NewMappedReader(data)
	if err != nil {
		return nil, 0, err
	}
	return readSnapshot(g, sr, data)
}

// readSnapshot decodes the section sequence behind both loaders; whether
// columns are copied or viewed is the reader's mode.
func readSnapshot(g *network.Graph, sr *snapio.Reader, data []byte) (*Index, uint64, error) {
	hdr := sr.Header()

	meta, err := readMeta(sr)
	if err != nil {
		return nil, 0, err
	}
	// Bound the partition count by the file itself before it becomes an
	// allocation capacity: every partition needs its own section, and a
	// section costs at least a 24-byte header — the same
	// hostile-length-never-reaches-the-allocator rule snapio applies to
	// slice columns.
	if meta.numParts > len(data)/24 {
		return nil, 0, fmt.Errorf("%w: %d-byte file cannot hold %d partition sections",
			ErrSnapshotMismatch, len(data), meta.numParts)
	}
	if meta.epoch != hdr.Epoch {
		return nil, 0, fmt.Errorf("%w: header epoch %d, meta section epoch %d",
			ErrSnapshotMismatch, hdr.Epoch, meta.epoch)
	}
	if meta.numParts != int(hdr.Partitions) {
		return nil, 0, fmt.Errorf("%w: header declares %d partitions, meta section %d",
			ErrSnapshotMismatch, hdr.Partitions, meta.numParts)
	}
	if meta.numEdges != g.NumEdges() {
		return nil, 0, fmt.Errorf("%w: snapshot written against a %d-edge network, loading against %d edges",
			ErrSnapshotMismatch, meta.numEdges, g.NumEdges())
	}

	ix := &Index{
		g:             g,
		opts:          meta.opts,
		tmin:          meta.tmin,
		tmax:          meta.tmax,
		maxTrajDur:    meta.maxTrajDur,
		alphabet:      meta.alphabet,
		compactedFrom: meta.compactedFrom,
		stats:         meta.stats,
	}

	// Users section.
	if err := expectSection(sr, secUsers); err != nil {
		return nil, 0, err
	}
	ix.users = snapio.ReadI32s[traj.UserID](sr)
	if err := sr.Err(); err != nil {
		return nil, 0, err
	}
	if len(ix.users) != meta.numUsers {
		return nil, 0, fmt.Errorf("%w: meta declares %d users, section holds %d",
			ErrSnapshotMismatch, meta.numUsers, len(ix.users))
	}

	// Partition sections: the count must match the header exactly — a
	// partition section where the forest is expected (or vice versa) is a
	// disagreement, not a format error.
	ix.parts = make([]partition, 0, meta.numParts)
	for i := 0; i < meta.numParts; i++ {
		kind, err := sr.Next()
		if err != nil {
			return nil, 0, err
		}
		if kind != secPartition {
			return nil, 0, fmt.Errorf("%w: expected partition section %d of %d, found kind %d",
				ErrSnapshotMismatch, i+1, meta.numParts, kind)
		}
		trajs := sr.Int()
		records := sr.Int()
		if err := sr.Err(); err != nil {
			return nil, 0, err
		}
		fm, err := fmindex.DecodeSnap(sr)
		if err != nil {
			return nil, 0, fmt.Errorf("snt: partition %d: %w", i, err)
		}
		if fm.Alphabet() != meta.alphabet {
			return nil, 0, fmt.Errorf("%w: partition %d FM-index alphabet %d, index alphabet %d",
				ErrSnapshotMismatch, i, fm.Alphabet(), meta.alphabet)
		}
		ix.parts = append(ix.parts, partition{fm: fm, trajs: trajs, records: records})
	}

	// Forest section.
	if err := expectSection(sr, secForest); err != nil {
		return nil, 0, err
	}
	frozen, err := temporal.DecodeSnapForest(sr)
	if err != nil {
		return nil, 0, err
	}
	if frozen.NumIndexes() != meta.numForestIdx {
		return nil, 0, fmt.Errorf("%w: meta declares %d segment indexes, forest section holds %d",
			ErrSnapshotMismatch, meta.numForestIdx, frozen.NumIndexes())
	}
	ix.frozen = frozen
	if err := ix.validateSnapshotColumns(); err != nil {
		return nil, 0, err
	}

	// ToD section (presence must match the meta flag).
	if meta.hasTod {
		if err := expectSection(sr, secTod); err != nil {
			return nil, 0, err
		}
		tod, err := readTod(sr, meta.numParts, g.NumEdges())
		if err != nil {
			return nil, 0, err
		}
		ix.tod = tod
	}

	if _, err := sr.Next(); err != io.EOF {
		if err == nil {
			return nil, 0, fmt.Errorf("%w: unexpected extra section", ErrSnapshotMismatch)
		}
		return nil, 0, err
	}
	return ix, hdr.Epoch, nil
}

// validateSnapshotColumns cross-checks every frozen record against the
// structures its fields index at query time: the segment must belong to
// the graph, W selects a partition (the scan path indexes a
// ranges-per-partition slice with it), Traj indexes the users container,
// Seq is a non-negative sequence position, and ISA must lie inside its
// partition's ISA space [0, |T_w|). Per-section CRCs cannot catch a
// forest section spliced in from a *different valid snapshot* — every
// section checksums clean — so this is the semantic check that refuses to
// serve one instead of panicking (or silently mis-answering) at query
// time.
func (ix *Index) validateSnapshotColumns() error {
	numParts := len(ix.parts)
	numUsers := len(ix.users)
	numEdges := ix.g.NumEdges()
	// ISA bounds per partition, hoisted out of the record loop: the loop
	// below runs over every frozen record on every (mapped) load, so it must
	// stay branch-light — an unsigned compare folds each negative and upper
	// bound into one test, and the detailed per-record diagnostic loop runs
	// only after the fast scan has found a violation.
	fmLen := make([]uint32, numParts)
	for w := range ix.parts {
		fmLen[w] = uint32(ix.parts[w].fm.Len())
	}
	var bad error
	ix.frozen.Each(func(e network.EdgeID, fx *temporal.FrozenIndex) {
		if bad != nil {
			return
		}
		if int(e) < 0 || int(e) >= numEdges {
			bad = fmt.Errorf("%w: forest references segment %d of a %d-edge network",
				ErrSnapshotMismatch, e, numEdges)
			return
		}
		if frozenColumnsValid(fx, fmLen, uint32(numUsers)) {
			return
		}
		for i := 0; i < fx.Len(); i++ {
			w := 0
			if fx.W != nil {
				w = int(fx.W[i])
			}
			if w < 0 || w >= numParts {
				bad = fmt.Errorf("%w: segment %d record %d in partition %d of %d",
					ErrSnapshotMismatch, e, i, w, numParts)
				return
			}
			if d := int(fx.Traj[i]); d < 0 || d >= numUsers {
				bad = fmt.Errorf("%w: segment %d record %d names trajectory %d of %d",
					ErrSnapshotMismatch, e, i, d, numUsers)
				return
			}
			if isa := int(fx.ISA[i]); isa < 0 || isa >= ix.parts[w].fm.Len() {
				bad = fmt.Errorf("%w: segment %d record %d ISA %d outside partition %d's %d positions",
					ErrSnapshotMismatch, e, i, isa, w, ix.parts[w].fm.Len())
				return
			}
			if fx.Seq[i] < 0 {
				bad = fmt.Errorf("%w: segment %d record %d has negative sequence position",
					ErrSnapshotMismatch, e, i)
				return
			}
		}
	})
	return bad
}

// frozenColumnsValid is the fast scan behind validateSnapshotColumns: true
// iff every record's W/Traj/ISA/Seq passes the semantic bounds. The unsigned
// casts check "negative or too large" in one compare per field, and the
// W-elided path keeps constant bounds so the loop carries no per-iteration
// loads beyond the columns themselves.
func frozenColumnsValid(fx *temporal.FrozenIndex, fmLen []uint32, numUsers uint32) bool {
	ids := fx.Traj
	n := len(ids)
	if len(fx.Seq) != n || len(fx.ISA) != n || (fx.W != nil && len(fx.W) != n) {
		return false // ragged columns; the diagnostic loop pins the record
	}
	// Equal-length reslices let the compiler drop the per-iteration bounds
	// checks inside the scans below.
	seq, isa := fx.Seq[:n], fx.ISA[:n]
	if fx.W == nil {
		// Single-partition form: every record lives in partition 0.
		if len(fmLen) == 0 {
			return n == 0
		}
		bound := fmLen[0]
		for i := range ids {
			if uint32(ids[i]) >= numUsers || uint32(isa[i]) >= bound || seq[i] < 0 {
				return false
			}
		}
		return true
	}
	ws := fx.W[:n]
	nParts := uint32(len(fmLen))
	for i := range ids {
		w := uint32(ws[i])
		if w >= nParts || uint32(ids[i]) >= numUsers || uint32(isa[i]) >= fmLen[w] || seq[i] < 0 {
			return false
		}
	}
	return true
}

// expectSection advances to the next section and requires the given kind.
func expectSection(sr *snapio.Reader, want uint32) error {
	kind, err := sr.Next()
	if err != nil {
		if err == io.EOF {
			return fmt.Errorf("%w: missing section kind %d", ErrSnapshotMismatch, want)
		}
		return err
	}
	if kind != want {
		return fmt.Errorf("%w: expected section kind %d, found %d", ErrSnapshotMismatch, want, kind)
	}
	return nil
}

func readMeta(sr *snapio.Reader) (snapMeta, error) {
	var m snapMeta
	if err := expectSection(sr, secMeta); err != nil {
		return m, err
	}
	m.epoch = sr.U64()
	m.numParts = sr.Int()
	m.opts.Tree = temporal.TreeKind(sr.Int())
	m.opts.PartitionDays = int(sr.I64())
	m.opts.TodBucketSeconds = int(sr.I64())
	m.opts.OldestFirst = sr.Bool()
	m.tmin = sr.I64()
	m.tmax = sr.I64()
	m.maxTrajDur = sr.I64()
	m.alphabet = sr.Int()
	m.compactedFrom = sr.Int()
	m.stats.SetupTime = time.Duration(sr.I64())
	m.stats.Partitions = sr.Int()
	m.stats.Records = sr.Int()
	m.stats.Trajs = sr.Int()
	m.stats.TreeBytes = sr.Int()
	m.numUsers = sr.Int()
	m.numEdges = sr.Int()
	m.numForestIdx = sr.Int()
	m.hasTod = sr.Bool()
	if err := sr.Err(); err != nil {
		return m, err
	}
	if m.numParts <= 0 {
		return m, fmt.Errorf("%w: meta declares %d partitions", ErrSnapshotMismatch, m.numParts)
	}
	return m, nil
}

// readTod decodes the per-partition per-segment ToD histograms.
func readTod(sr *snapio.Reader, numParts, numEdges int) ([][]*hist.TodHistogram, error) {
	gotParts := sr.Int()
	if err := sr.Err(); err != nil {
		return nil, err
	}
	if gotParts != numParts {
		return nil, fmt.Errorf("%w: tod section holds %d partitions, index has %d",
			ErrSnapshotMismatch, gotParts, numParts)
	}
	tod := make([][]*hist.TodHistogram, numParts)
	for w := range tod {
		tod[w] = make([]*hist.TodHistogram, numEdges)
		n := sr.Int()
		if err := sr.Err(); err != nil {
			return nil, err
		}
		if n > numEdges {
			return nil, fmt.Errorf("%w: tod partition %d declares %d segments of %d",
				ErrSnapshotMismatch, w, n, numEdges)
		}
		for i := 0; i < n; i++ {
			e := sr.Int()
			if err := sr.Err(); err != nil {
				return nil, err
			}
			if e < 0 || e >= numEdges {
				return nil, fmt.Errorf("%w: tod partition %d references edge %d of %d",
					ErrSnapshotMismatch, w, e, numEdges)
			}
			h, err := hist.DecodeSnapTod(sr)
			if err != nil {
				return nil, fmt.Errorf("snt: tod partition %d edge %d: %w", w, e, err)
			}
			if tod[w][e] != nil {
				return nil, fmt.Errorf("%w: tod partition %d edge %d appears twice", ErrSnapshotMismatch, w, e)
			}
			tod[w][e] = h
		}
	}
	return tod, nil
}
