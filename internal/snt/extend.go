package snt

import (
	"errors"
	"fmt"

	"pathhist/internal/fmindex"
	"pathhist/internal/hist"
	"pathhist/internal/suffix"
	"pathhist/internal/temporal"
	"pathhist/internal/traj"
)

// ErrSuperseded is returned by Extend when the receiver has already been
// extended: extension chains are strictly linear (see Extend).
var ErrSuperseded = errors.New("snt: index snapshot already extended; extend the newest snapshot")

// ValidateBatch checks a batch against this snapshot exactly as Extend
// would, without extending anything: every edge id in range, every
// trajectory internally valid, and every trajectory starting after the
// indexed range ends. It exists so the serving layer can establish "Extend
// will accept this batch" BEFORE durably logging it to the write-ahead log
// — a batch that passes here fails Extend only on resource exhaustion, so
// the log never records a batch that replay would then reject. It does not
// mutate the batch (the minimum start is found by scanning, not sorting).
func (ix *Index) ValidateBatch(add *traj.Store) error {
	if add == nil || add.Len() == 0 {
		return nil
	}
	minStart := int64(0)
	for i := range add.All() {
		tr := &add.All()[i]
		for _, e := range tr.Seq {
			if int(e.Edge) < 0 || int(e.Edge) >= ix.g.NumEdges() {
				return fmt.Errorf("snt: batch trajectory %d: edge id %d out of range [0, %d)",
					i, e.Edge, ix.g.NumEdges())
			}
		}
		if err := tr.Validate(); err != nil {
			return fmt.Errorf("snt: batch %w", err)
		}
		if s := tr.StartTime(); i == 0 || s < minStart {
			minStart = s
		}
	}
	if minStart <= ix.tmax {
		return fmt.Errorf("snt: batch starts at %d, inside indexed range ending %d",
			minStart, ix.tmax)
	}
	return nil
}

// Extend returns a new index covering the receiver's trajectories plus a
// batch of newer ones, added as one additional temporal partition — the
// batch-update path that temporal partitioning exists for (Section 4.3.2):
// the FM-index does not support appends, so the batch gets its own
// trajectory string, suffix array and wavelet tree, while the frozen
// temporal columns absorb the new records append-only (like the CSS-tree
// they replace).
//
// Extend is copy-on-write: the receiver is never modified and remains a
// fully consistent, queryable snapshot, so readers that hold it are
// unaffected — publishing the returned index to concurrent readers through
// an atomic pointer swap gives non-blocking batch ingestion (the pattern
// query.Engine.Extend implements). Unchanged state (FM-index partitions,
// per-segment columns without new records) is shared between the snapshots;
// shared slices may also share spare append capacity, which makes extension
// chains strictly linear: only the newest snapshot may be extended, and
// extending an older one fails with ErrSuperseded.
//
// Every trajectory in the batch must start after the currently indexed data
// ends (partitions are ordered by start time); the batch's trajectory ids
// are reassigned to continue the index's id space, and the batch store is
// sorted by start time as a side effect. An empty or nil batch returns the
// receiver itself.
func (ix *Index) Extend(add *traj.Store) (*Index, error) {
	if add == nil || add.Len() == 0 {
		return ix, nil
	}
	// Validate the batch before anything else: Extend is reachable from
	// untrusted input through the serving layer, and an out-of-range edge
	// id would otherwise panic deep inside suffix-array construction.
	if err := ix.ValidateBatch(add); err != nil {
		return nil, err
	}
	// Try-acquire the exclusive right to extend this snapshot. The deferred
	// release covers every non-committed exit — rejected batches and
	// panics alike leave the snapshot extendable (no shared state has been
	// touched before the commit point).
	if ix.superseded.Swap(true) {
		return nil, ErrSuperseded
	}
	committed := false
	defer func() {
		if !committed {
			ix.superseded.Store(false)
		}
	}()
	add.SortByStart()
	if minStart := add.All()[0].StartTime(); minStart <= ix.tmax {
		return nil, fmt.Errorf("snt: batch starts at %d, inside indexed range ending %d",
			minStart, ix.tmax)
	}
	w := len(ix.parts)
	base := traj.ID(len(ix.users))

	// Build the partition's trajectory string and FM-index.
	var text []int32
	starts := make([]int, add.Len())
	for i := range add.All() {
		tr := &add.All()[i]
		starts[i] = len(text)
		for _, e := range tr.Seq {
			text = append(text, int32(e.Edge)+fmindex.MinEdgeSymbol)
		}
		text = append(text, fmindex.Terminator)
	}
	_, isa, bwt := suffix.BuildAll(text, ix.alphabet)

	// Collect the forest batch and the new per-partition ToD histograms.
	fb := temporal.NewForestBuilder(ix.opts.Tree)
	var todNew []*hist.TodHistogram
	if ix.tod != nil {
		todNew = make([]*hist.TodHistogram, ix.g.NumEdges())
	}
	records := 0
	newMax := ix.tmax
	maxDur := ix.maxTrajDur
	for i := range add.All() {
		tr := &add.All()[i]
		var agg int32
		for seq, e := range tr.Seq {
			agg += e.TT
			fb.Add(e.Edge, e.T, temporal.Record{
				ISA:  isa[starts[i]+seq],
				Traj: base + traj.ID(i),
				TT:   e.TT,
				A:    agg,
				Seq:  int32(seq),
				W:    int32(w),
			})
			if todNew != nil {
				h := todNew[e.Edge]
				if h == nil {
					h = hist.NewTod(ix.opts.TodBucketSeconds)
					todNew[e.Edge] = h
				}
				h.Add(e.T)
			}
			if end := e.T + int64(e.TT); end > newMax {
				newMax = end
			}
			records++
		}
		if d := tr.TotalDuration(); d > maxDur {
			maxDur = d
		}
	}
	frozen, err := ix.frozen.Extend(fb)
	if err != nil {
		return nil, err
	}

	// Assemble the new snapshot. parts and tod are copied outright (they are
	// tiny); users grows by plain append — any shared spare capacity is
	// written only beyond the receiver's visible length, which the
	// superseded flag keeps single-writer.
	newPart := partition{
		fm:      fmindex.FromBWT(bwt, ix.alphabet),
		trajs:   add.Len(),
		records: records,
	}
	nix := &Index{
		g:          ix.g,
		opts:       ix.opts,
		parts:      append(ix.parts[:len(ix.parts):len(ix.parts)], newPart),
		frozen:     frozen,
		users:      ix.users,
		tmin:       ix.tmin,
		tmax:       newMax,
		maxTrajDur: maxDur,
		alphabet:   ix.alphabet,
		stats:      ix.stats,
	}
	for i := range add.All() {
		nix.users = append(nix.users, add.All()[i].User)
	}
	if ix.tod != nil {
		nix.tod = append(ix.tod[:len(ix.tod):len(ix.tod)], todNew)
	}
	nix.stats.Partitions = len(nix.parts)
	nix.stats.Records += records
	nix.stats.Trajs += add.Len()
	committed = true
	return nix, nil
}
