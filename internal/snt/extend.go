package snt

import (
	"fmt"

	"pathhist/internal/fmindex"
	"pathhist/internal/hist"
	"pathhist/internal/suffix"
	"pathhist/internal/temporal"
	"pathhist/internal/traj"
)

// Extend appends a batch of newer trajectories to the index as one
// additional temporal partition — the batch-update path that temporal
// partitioning exists for (Section 4.3.2): the FM-index does not support
// appends, so the batch gets its own trajectory string, suffix array and
// wavelet tree, while the frozen temporal columns (append-only, like the
// CSS-tree they replace) absorb the new records in place.
//
// Every trajectory in the batch must start after the currently indexed data
// ends (partitions are ordered by start time); the batch's trajectory ids
// are reassigned to continue the index's id space, and the batch store is
// sorted by start time as a side effect.
func (ix *Index) Extend(add *traj.Store) error {
	if add == nil || add.Len() == 0 {
		return nil
	}
	add.SortByStart()
	if minStart := add.All()[0].StartTime(); minStart <= ix.tmax {
		return fmt.Errorf("snt: batch starts at %d, inside indexed range ending %d",
			minStart, ix.tmax)
	}
	w := len(ix.parts)
	base := traj.ID(len(ix.users))

	// Build the partition's trajectory string and FM-index.
	var text []int32
	starts := make([]int, add.Len())
	for i := range add.All() {
		tr := &add.All()[i]
		starts[i] = len(text)
		for _, e := range tr.Seq {
			text = append(text, int32(e.Edge)+fmindex.MinEdgeSymbol)
		}
		text = append(text, fmindex.Terminator)
	}
	sa := suffix.Array(text, ix.alphabet)
	isa := suffix.Inverse(sa)
	bwt := suffix.BWT(text, sa)

	// Collect the forest batch (and validate it) before committing any
	// index state, so a failed Extend leaves the index untouched.
	fb := temporal.NewForestBuilder(ix.opts.Tree)
	var todNew []*hist.TodHistogram
	if ix.tod != nil {
		todNew = make([]*hist.TodHistogram, ix.g.NumEdges())
	}
	records := 0
	newMax := ix.tmax
	maxDur := ix.maxTrajDur
	for i := range add.All() {
		tr := &add.All()[i]
		var agg int32
		for seq, e := range tr.Seq {
			agg += e.TT
			fb.Add(e.Edge, e.T, temporal.Record{
				ISA:  isa[starts[i]+seq],
				Traj: base + traj.ID(i),
				TT:   e.TT,
				A:    agg,
				Seq:  int32(seq),
				W:    int32(w),
			})
			if todNew != nil {
				h := todNew[e.Edge]
				if h == nil {
					h = hist.NewTod(ix.opts.TodBucketSeconds)
					todNew[e.Edge] = h
				}
				h.Add(e.T)
			}
			if end := e.T + int64(e.TT); end > newMax {
				newMax = end
			}
			records++
		}
		if d := tr.TotalDuration(); d > maxDur {
			maxDur = d
		}
	}
	if err := ix.frozen.Extend(fb); err != nil {
		return err
	}

	// Commit.
	ix.parts = append(ix.parts, partition{fm: fmindex.FromBWT(bwt, ix.alphabet)})
	for i := range add.All() {
		ix.users = append(ix.users, add.All()[i].User)
	}
	if ix.tod != nil {
		ix.tod = append(ix.tod, todNew)
	}
	ix.tmax = newMax
	ix.maxTrajDur = maxDur
	ix.stats.Partitions = len(ix.parts)
	ix.stats.Records += records
	ix.stats.Trajs += add.Len()
	return nil
}
