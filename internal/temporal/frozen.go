// Frozen columnar temporal indexes. After construction the temporal forest
// is read-only (DESIGN.md §6), so the pointer-chasing trees pay for
// flexibility nobody uses: every per-day range scan descends the tree and
// invokes a per-record callback. Freezing converts each Φe into an immutable
// struct-of-arrays layout — one sorted timestamp column plus parallel packed
// record columns — built once from the tree leaves (which are then dropped).
// Range bounds become two binary searches into one contiguous array, range
// sizes become an O(log n) offset subtraction on every tree kind (the
// CSS-tree asymmetry of Section 4.3.1, now universal), and scans become
// tight loops over sequential memory with no callbacks.
package temporal

import (
	"fmt"

	"pathhist/internal/network"
	"pathhist/internal/traj"
)

// FrozenIndex is Φe in frozen columnar form. The exported columns share one
// index space: record i is (Ts[i], Traj[i], Seq[i], W[i], ISA[i], A[i],
// TT[i]), and Ts is sorted ascending with ties in the same stable order the
// source tree stored them. All columns are immutable after freezing — a
// FrozenIndex is never mutated; Extend produces a new snapshot by
// copy-on-write — so any number of goroutines may read one concurrently.
//
// W is nil while every record lives in partition 0 — the single-partition
// layout the paper credits with the memory saving of dropping the partition
// feature. Readers must treat a nil W column as all zeros.
type FrozenIndex struct {
	Ts   []int64
	Traj []traj.ID
	Seq  []int32
	W    []int32
	ISA  []int32
	A    []int32
	TT   []int32

	// Mapped marks columns that alias a read-only snapshot mapping
	// (zero-copy load, DESIGN.md §15) instead of owning heap memory.
	// Reading is unaffected — the layout is identical — but writing
	// through a mapped column faults, so extended detaches the columns to
	// the heap before appending, and every code path that builds a new
	// FrozenIndex sharing these columns (snt compaction's Rewrite) must
	// propagate the flag.
	Mapped bool
}

// freezeIndex builds the columnar layout from sorted (ts, recs).
func freezeIndex(ts []int64, recs []Record) *FrozenIndex {
	n := len(ts)
	fx := &FrozenIndex{
		Ts:   make([]int64, n),
		Traj: make([]traj.ID, n),
		Seq:  make([]int32, n),
		ISA:  make([]int32, n),
		A:    make([]int32, n),
		TT:   make([]int32, n),
	}
	copy(fx.Ts, ts)
	hasW := false
	for i := range recs {
		r := &recs[i]
		fx.Traj[i] = r.Traj
		fx.Seq[i] = r.Seq
		fx.ISA[i] = r.ISA
		fx.A[i] = r.A
		fx.TT[i] = r.TT
		if r.W != 0 {
			hasW = true
		}
	}
	if hasW {
		fx.W = make([]int32, n)
		for i := range recs {
			fx.W[i] = recs[i].W
		}
	}
	return fx
}

// Len returns the number of traversal records.
func (fx *FrozenIndex) Len() int { return len(fx.Ts) }

// MinKey returns the earliest traversal time F[e]min. A FrozenIndex only
// exists for segments with data, so the column is never empty.
func (fx *FrozenIndex) MinKey() int64 { return fx.Ts[0] }

// MaxKey returns the latest traversal time F[e]max.
func (fx *FrozenIndex) MaxKey() int64 { return fx.Ts[len(fx.Ts)-1] }

// LowerBoundTs returns the first index in ts with ts[i] >= t (len(ts) if
// none). Manual binary search — no per-probe closure call, this sits on
// the scan hot paths (also used directly by the fused scans in snt).
func LowerBoundTs(ts []int64, t int64) int {
	lo, hi := 0, len(ts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ts[mid] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// LowerBound returns the first offset whose timestamp is >= t (Len if none).
func (fx *FrozenIndex) LowerBound(t int64) int { return LowerBoundTs(fx.Ts, t) }

// CountRange returns, exactly and in O(log n), the number of records with
// lo <= t < hi — the offset subtraction that replaces the B+-tree's O(n)
// leaf walk once the index is frozen.
func (fx *FrozenIndex) CountRange(lo, hi int64) int {
	if hi <= lo {
		return 0
	}
	return fx.LowerBound(hi) - fx.LowerBound(lo)
}

// SizeBytes is the actual columnar footprint: the timestamp column, the
// record columns that are materialised, and the slice headers. There is no
// per-node overhead and no slack capacity — the saving over the tree
// layouts.
func (fx *FrozenIndex) SizeBytes() int {
	const sliceHeader = 24
	sz := 7*sliceHeader + len(fx.Ts)*8
	sz += (len(fx.Traj) + len(fx.Seq) + len(fx.W) + len(fx.ISA) + len(fx.A) + len(fx.TT)) * 4
	return sz
}

// extended returns a new FrozenIndex whose columns are the receiver's
// followed by the sorted batch. The receiver is not modified: readers
// holding it keep a consistent view forever. Column memory is shared where
// append can reuse spare capacity — the batch's values land beyond the
// receiver's visible length, which readers of the old snapshot never
// index — so the amortised cost is O(batch), not O(history). The sharing
// makes extension chains strictly linear: extending the same snapshot
// twice would write the same spare capacity twice. snt.Index enforces
// linearity with its superseded flag; publication of the new snapshot to
// concurrent readers must happen through an atomic pointer swap (or
// equivalent happens-before edge).
func (fx *FrozenIndex) extended(ts []int64, recs []Record) *FrozenIndex {
	if fx.Mapped {
		// Detach-on-extend: mapped columns are read-only (append into
		// their zero spare capacity would reallocate, but the rule is
		// explicit, not an artifact of cap) — copy them to the heap with
		// room for the batch so the chain grows in owned memory from here
		// on. The mapped snapshot itself stays untouched and shared.
		fx = fx.detached(len(recs))
	}
	nfx := &FrozenIndex{
		Ts:   append(fx.Ts, ts...),
		Traj: fx.Traj,
		Seq:  fx.Seq,
		W:    fx.W,
		ISA:  fx.ISA,
		A:    fx.A,
		TT:   fx.TT,
	}
	needW := fx.W != nil
	if !needW {
		for i := range recs {
			if recs[i].W != 0 {
				needW = true
				break
			}
		}
		if needW {
			// First record outside partition 0: materialise the elided
			// column with an all-zero prefix for the existing records.
			nfx.W = make([]int32, len(fx.Traj), len(fx.Traj)+len(recs))
		}
	}
	for i := range recs {
		r := &recs[i]
		nfx.Traj = append(nfx.Traj, r.Traj)
		nfx.Seq = append(nfx.Seq, r.Seq)
		nfx.ISA = append(nfx.ISA, r.ISA)
		nfx.A = append(nfx.A, r.A)
		nfx.TT = append(nfx.TT, r.TT)
		if needW {
			nfx.W = append(nfx.W, r.W)
		}
	}
	return nfx
}

// detached returns a heap-owned copy of a mapped index with spare capacity
// for extra more records per column, so the extension appends that follow
// land in owned memory. The receiver (and the mapping behind it) is not
// touched.
func (fx *FrozenIndex) detached(extra int) *FrozenIndex {
	n := len(fx.Ts)
	d := &FrozenIndex{
		Ts:   append(make([]int64, 0, n+extra), fx.Ts...),
		Traj: append(make([]traj.ID, 0, n+extra), fx.Traj...),
		Seq:  append(make([]int32, 0, n+extra), fx.Seq...),
		ISA:  append(make([]int32, 0, n+extra), fx.ISA...),
		A:    append(make([]int32, 0, n+extra), fx.A...),
		TT:   append(make([]int32, 0, n+extra), fx.TT...),
	}
	if fx.W != nil {
		d.W = append(make([]int32, 0, n+extra), fx.W...)
	}
	return d
}

// FrozenForest is F frozen: one immutable columnar index per segment with
// data.
type FrozenForest struct {
	idx map[network.EdgeID]*FrozenIndex
}

// Freeze exports every segment tree into its frozen columnar layout. The
// forest (and its trees) can be dropped afterwards — construction is the
// only phase that needs them.
func (f *Forest) Freeze() *FrozenForest {
	ff := &FrozenForest{idx: make(map[network.EdgeID]*FrozenIndex, len(f.idx))}
	for e, x := range f.idx {
		ts, recs := x.Export()
		ff.idx[e] = freezeIndex(ts, recs)
	}
	return ff
}

// Get returns the frozen Φe, or nil when the segment has no data.
func (f *FrozenForest) Get(e network.EdgeID) *FrozenIndex { return f.idx[e] }

// Each calls fn for every segment with data, in unspecified order.
func (f *FrozenForest) Each(fn func(network.EdgeID, *FrozenIndex)) {
	for e, fx := range f.idx {
		fn(e, fx)
	}
}

// NumIndexes returns the number of segments with data.
func (f *FrozenForest) NumIndexes() int { return len(f.idx) }

// NumRecords returns the total number of traversal records.
func (f *FrozenForest) NumRecords() int {
	n := 0
	for _, fx := range f.idx {
		n += fx.Len()
	}
	return n
}

// SizeBytes is the forest's actual columnar footprint.
func (f *FrozenForest) SizeBytes() int {
	const perEntryMapOverhead = 48 // hash bucket + pointer per segment index
	sz := 0
	for _, fx := range f.idx {
		sz += fx.SizeBytes() + perEntryMapOverhead
	}
	return sz
}

// Rewrite returns a new forest in which every segment's index is replaced
// by fn's result; returning the input index unchanged shares it between the
// forests. The receiver is never modified — this is the copy-on-write
// primitive partition compaction uses to republish per-record partition ids
// and ISA positions (snt.Index.Compact) without touching segments whose
// records all lie outside the merged partitions. fn must return a
// non-nil index and must not mutate the input index or its columns.
func (f *FrozenForest) Rewrite(fn func(network.EdgeID, *FrozenIndex) *FrozenIndex) *FrozenForest {
	nf := &FrozenForest{idx: make(map[network.EdgeID]*FrozenIndex, len(f.idx))}
	for e, fx := range f.idx {
		nf.idx[e] = fn(e, fx)
	}
	return nf
}

// Extend returns a new forest holding the receiver's records followed by
// the builder's batch of newer records (the batch-update path of Section
// 4.3.2). The frozen columns are append-only exactly like the CSS-tree:
// per segment, every new record must carry a timestamp at or after the
// segment's current maximum. The whole batch is validated up front, and the
// receiver is never modified — it remains a fully consistent snapshot for
// concurrent readers (copy-on-write publication; see FrozenIndex.extended
// for the column-sharing contract and its linear-chain requirement).
// Untouched segments share their FrozenIndex with the new forest.
func (f *FrozenForest) Extend(b *ForestBuilder) (*FrozenForest, error) {
	batches := b.sortedBatches()
	for _, sb := range batches {
		if fx := f.idx[sb.e]; fx != nil && len(sb.ts) > 0 && sb.ts[0] < fx.MaxKey() {
			return nil, fmt.Errorf("temporal: segment %d batch starts at %d before existing max %d",
				sb.e, sb.ts[0], fx.MaxKey())
		}
	}
	nf := &FrozenForest{idx: make(map[network.EdgeID]*FrozenIndex, len(f.idx)+len(batches))}
	for e, fx := range f.idx {
		nf.idx[e] = fx
	}
	for _, sb := range batches {
		fx := nf.idx[sb.e]
		if fx == nil {
			fx = &FrozenIndex{}
		}
		nf.idx[sb.e] = fx.extended(sb.ts, sb.recs)
	}
	return nf, nil
}
