// Snapshot serialization of the frozen columnar forest (DESIGN.md §10).
// Each segment's FrozenIndex is written as its raw columns — Ts, Traj, Seq,
// optional W, ISA, A, TT — in ascending segment-id order, so snapshots of
// the same forest are byte-identical and loading is a straight column copy
// with no re-sorting or tree rebuilding. The single-partition W elision is
// preserved: a nil W column is written as absent and restored as nil.
package temporal

import (
	"fmt"
	"sort"

	"pathhist/internal/network"
	"pathhist/internal/snapio"
	"pathhist/internal/traj"
)

// EncodeSnap appends the forest to the open snapshot section.
func (f *FrozenForest) EncodeSnap(w *snapio.Writer) {
	edges := make([]network.EdgeID, 0, len(f.idx))
	for e := range f.idx {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
	w.U64(uint64(len(edges)))
	for _, e := range edges {
		fx := f.idx[e]
		w.I64(int64(e))
		w.Bool(fx.W != nil)
		w.I64s(fx.Ts)
		snapio.WriteI32s(w, fx.Traj)
		w.I32s(fx.Seq)
		if fx.W != nil {
			w.I32s(fx.W)
		}
		w.I32s(fx.ISA)
		w.I32s(fx.A)
		w.I32s(fx.TT)
	}
}

// DecodeSnapForest reads a forest written by EncodeSnap, validating that
// every segment's columns agree in length and timestamps are sorted (the
// FrozenIndex invariant every scan relies on).
func DecodeSnapForest(r *snapio.Reader) (*FrozenForest, error) {
	numIdx := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if numIdx > r.Remaining() {
		return nil, fmt.Errorf("temporal: snapshot declares %d segment indexes, %d bytes remain", numIdx, r.Remaining())
	}
	f := &FrozenForest{idx: make(map[network.EdgeID]*FrozenIndex, numIdx)}
	for i := 0; i < numIdx; i++ {
		e := network.EdgeID(r.I64())
		hasW := r.Bool()
		// In zero-copy mode the columns below alias the reader's mapping;
		// Mapped makes extension detach them before appending.
		fx := &FrozenIndex{Mapped: r.ZeroCopy()}
		fx.Ts = r.I64s()
		fx.Traj = snapio.ReadI32s[traj.ID](r)
		fx.Seq = r.I32s()
		if hasW {
			fx.W = r.I32s()
		}
		fx.ISA = r.I32s()
		fx.A = r.I32s()
		fx.TT = r.I32s()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("temporal: segment %d: %w", e, err)
		}
		n := len(fx.Ts)
		if n == 0 || len(fx.Traj) != n || len(fx.Seq) != n || (hasW && len(fx.W) != n) ||
			len(fx.ISA) != n || len(fx.A) != n || len(fx.TT) != n {
			return nil, fmt.Errorf("temporal: segment %d: ragged snapshot columns (n=%d)", e, n)
		}
		for j := 1; j < n; j++ {
			if fx.Ts[j] < fx.Ts[j-1] {
				return nil, fmt.Errorf("temporal: segment %d: snapshot timestamps unsorted at %d", e, j)
			}
		}
		if _, dup := f.idx[e]; dup {
			return nil, fmt.Errorf("temporal: segment %d appears twice in snapshot", e)
		}
		f.idx[e] = fx
	}
	return f, nil
}
