package temporal

import (
	"math/rand"
	"testing"

	"pathhist/internal/network"
	"pathhist/internal/traj"
)

// randomBuilder fills a builder with records over nEdges segments; equal
// timestamps are common (the tie order is part of the frozen contract).
func randomBuilder(rng *rand.Rand, kind TreeKind, nEdges, nRecs int) *ForestBuilder {
	b := NewForestBuilder(kind)
	for i := 0; i < nRecs; i++ {
		e := network.EdgeID(rng.Intn(nEdges))
		t := int64(rng.Intn(nRecs / 2)) // dense keyspace forces duplicates
		b.Add(e, t, Record{
			ISA:  int32(i),
			Traj: traj.ID(i % 97),
			TT:   int32(1 + rng.Intn(300)),
			A:    int32(rng.Intn(10000)),
			Seq:  int32(rng.Intn(40)),
			W:    int32(rng.Intn(3)),
		})
	}
	return b
}

// TestFreezeMatchesTreeScans: for both tree kinds, the frozen columns hold
// exactly the tree's entries in exactly the tree's ascending scan order
// (including ties), and bounds/counts agree on random ranges.
func TestFreezeMatchesTreeScans(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, kind := range []TreeKind{CSS, BPlus} {
		f := randomBuilder(rng, kind, 7, 4000).Finish()
		ff := f.Freeze()
		if ff.NumIndexes() != f.NumIndexes() || ff.NumRecords() != f.NumRecords() {
			t.Fatalf("%v: frozen shape %d/%d vs forest %d/%d", kind,
				ff.NumIndexes(), ff.NumRecords(), f.NumIndexes(), f.NumRecords())
		}
		ff.Each(func(e network.EdgeID, fx *FrozenIndex) {
			x := f.Get(e)
			if x == nil || x.Len() != fx.Len() {
				t.Fatalf("%v edge %d: length mismatch", kind, e)
			}
			// Full ascending enumeration must match the columns pairwise.
			i := 0
			x.Ascend(minInt64, maxInt64, func(ts int64, r Record) bool {
				if fx.Ts[i] != ts || fx.Traj[i] != r.Traj || fx.Seq[i] != r.Seq ||
					fx.ISA[i] != r.ISA || fx.A[i] != r.A || fx.TT[i] != r.TT {
					t.Fatalf("%v edge %d offset %d: column mismatch", kind, e, i)
				}
				w := int32(0)
				if fx.W != nil {
					w = fx.W[i]
				}
				if w != r.W {
					t.Fatalf("%v edge %d offset %d: W %d vs %d", kind, e, i, w, r.W)
				}
				i++
				return true
			})
			if i != fx.Len() {
				t.Fatalf("%v edge %d: enumerated %d of %d", kind, e, i, fx.Len())
			}
			if min, _ := x.MinKey(); min != fx.MinKey() {
				t.Fatalf("%v edge %d: MinKey", kind, e)
			}
			if max, _ := x.MaxKey(); max != fx.MaxKey() {
				t.Fatalf("%v edge %d: MaxKey", kind, e)
			}
			for trial := 0; trial < 50; trial++ {
				lo := int64(rng.Intn(2200)) - 100
				hi := lo + int64(rng.Intn(500))
				if got, want := fx.CountRange(lo, hi), x.CountRange(lo, hi); got != want {
					t.Fatalf("%v edge %d: CountRange(%d,%d) = %d, want %d", kind, e, lo, hi, got, want)
				}
				if got := fx.LowerBound(lo); got < fx.Len() && fx.Ts[got] < lo ||
					got > 0 && fx.Ts[got-1] >= lo {
					t.Fatalf("%v edge %d: LowerBound(%d) = %d", kind, e, lo, got)
				}
			}
		})
	}
}

const (
	minInt64 = -1 << 63
	maxInt64 = 1<<63 - 1
)

// TestFrozenExtendMatchesForestExtend: appending a sorted newer batch to
// the frozen columns yields the same layout as extending the tree forest
// and re-freezing it.
func TestFrozenExtendMatchesForestExtend(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := randomBuilder(rng, CSS, 5, 1000)
	f := base.Finish()
	ff := f.Freeze()

	batch := NewForestBuilder(CSS)
	for i := 0; i < 400; i++ {
		e := network.EdgeID(rng.Intn(5))
		t := int64(3000 + rng.Intn(500)) // strictly after every base key
		batch.Add(e, t, Record{Traj: traj.ID(i), Seq: int32(i % 9), TT: 5, A: 10, W: 3, ISA: int32(i)})
	}
	before := ff.NumRecords()
	ext, err := ff.Extend(batch)
	if err != nil {
		t.Fatal(err)
	}
	if ff.NumRecords() != before {
		t.Fatalf("Extend mutated the source snapshot: %d records, had %d", ff.NumRecords(), before)
	}
	ff = ext
	if err := f.Extend(batch); err != nil {
		t.Fatal(err)
	}
	want := f.Freeze()
	if want.NumRecords() != ff.NumRecords() {
		t.Fatalf("records %d vs %d", ff.NumRecords(), want.NumRecords())
	}
	want.Each(func(e network.EdgeID, wx *FrozenIndex) {
		fx := ff.Get(e)
		if fx == nil || fx.Len() != wx.Len() {
			t.Fatalf("edge %d: length mismatch", e)
		}
		for i := 0; i < wx.Len(); i++ {
			if fx.Ts[i] != wx.Ts[i] || fx.Traj[i] != wx.Traj[i] || fx.Seq[i] != wx.Seq[i] ||
				fx.W[i] != wx.W[i] || fx.A[i] != wx.A[i] || fx.TT[i] != wx.TT[i] {
				t.Fatalf("edge %d offset %d: extended columns diverge", e, i)
			}
		}
	})
}

// TestFrozenExtendRejectsOld: a batch starting before a segment's maximum
// is rejected without mutating anything.
func TestFrozenExtendRejectsOld(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ff := randomBuilder(rng, CSS, 3, 300).Finish().Freeze()
	before := ff.NumRecords()
	bad := NewForestBuilder(CSS)
	bad.Add(0, -1, Record{})
	if ext, err := ff.Extend(bad); err == nil || ext != nil {
		t.Fatal("stale batch accepted")
	}
	if ff.NumRecords() != before {
		t.Fatal("failed Extend mutated the frozen forest")
	}
}

// TestFrozenWColumnElision: single-partition forests drop the W column
// entirely; it materialises as soon as a later partition appears.
func TestFrozenWColumnElision(t *testing.T) {
	b := NewForestBuilder(CSS)
	for i := 0; i < 10; i++ {
		b.Add(1, int64(i), Record{W: 0, Traj: traj.ID(i)})
	}
	ff := b.Finish().Freeze()
	fx := ff.Get(1)
	if fx.W != nil {
		t.Fatal("partition-0-only index materialised a W column")
	}
	withW := ff.SizeBytes()

	batch := NewForestBuilder(CSS)
	batch.Add(1, 100, Record{W: 1})
	ext, err := ff.Extend(batch)
	if err != nil {
		t.Fatal(err)
	}
	if ff.Get(1).W != nil {
		t.Fatal("Extend materialised W on the source snapshot")
	}
	fx = ext.Get(1)
	if len(fx.W) != 11 || fx.W[9] != 0 || fx.W[10] != 1 {
		t.Fatalf("W column after extend = %v", fx.W)
	}
	if ext.SizeBytes() <= withW {
		t.Fatal("materialised W column should grow the footprint")
	}
}

// TestFrozenSmallerThanTrees asserts the memory claim the freeze exists
// for: the columnar footprint undercuts the B+-tree layout (per-node
// headers, child pointers, slack capacity) and does not exceed the CSS
// layout it mirrors.
func TestFrozenSmallerThanTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	bt := randomBuilder(rng, BPlus, 4, 6000).Finish()
	frozen := bt.Freeze().SizeBytes()
	if tree := bt.SizeBytes(PayloadBytes); frozen >= tree {
		t.Fatalf("frozen %d B not smaller than B+-tree model %d B", frozen, tree)
	}
	rng = rand.New(rand.NewSource(9))
	css := randomBuilder(rng, CSS, 4, 6000).Finish()
	if tree := css.SizeBytes(PayloadBytes); frozen > tree {
		t.Fatalf("frozen %d B larger than CSS model %d B", frozen, tree)
	}
}
