// Package temporal implements the temporal indexes F = {Φe | e ∈ E} of the
// SNT-index (Section 4.1.2): per-segment trees keyed by segment entry
// timestamp. Leaves carry the paper's extended record (Section 4.1.3): the
// ISA index, the trajectory id, the traversal time TT, the aggregate travel
// time a from the trajectory's start, the sequence number seq, and the
// temporal partition id w (Section 4.3.2).
//
// Two interchangeable tree implementations back the forest: the in-memory
// B+-tree (Section 4.1.2, "BT") and the append-only cache-sensitive search
// tree (Section 4.3.1, "CSS").
package temporal

import (
	"fmt"
	"sort"

	"pathhist/internal/bptree"
	"pathhist/internal/csstree"
	"pathhist/internal/network"
	"pathhist/internal/traj"
)

// Record is the extended leaf payload (t maps to this tuple).
type Record struct {
	ISA  int32   // ISA index of this occurrence within partition W's FM-index
	Traj traj.ID // trajectory identifier d
	TT   int32   // traversal time of the segment in seconds
	A    int32   // sum of travel times from trajectory start through this segment
	Seq  int32   // sequence number of the segment within the trajectory
	W    int32   // temporal partition identifier
}

// PayloadBytes is the modelled in-leaf payload size with the partition
// field; PayloadBytesNoPartition models the single-partition layout the
// paper mentions saves ~300 MiB ("if the partition feature is removed").
const (
	PayloadBytes            = 24
	PayloadBytesNoPartition = 20
)

// TreeKind selects the forest implementation.
type TreeKind int

// The two temporal tree variants of the paper.
const (
	CSS TreeKind = iota // cache-sensitive search tree (default)
	BPlus
)

func (k TreeKind) String() string {
	if k == CSS {
		return "CSS"
	}
	return "BT"
}

// Index is Φe, the temporal index of one segment.
type Index struct {
	kind TreeKind
	css  *csstree.Tree[Record]
	bt   *bptree.Tree[Record]
}

// build constructs Φe from records sorted by timestamp.
func build(kind TreeKind, ts []int64, recs []Record) *Index {
	x := &Index{kind: kind}
	if kind == CSS {
		x.css = csstree.Build(ts, recs)
		return x
	}
	x.bt = bptree.New[Record]()
	for i, t := range ts {
		x.bt.Insert(t, recs[i])
	}
	return x
}

// Len returns the number of traversal records.
func (x *Index) Len() int {
	if x.kind == CSS {
		return x.css.Len()
	}
	return x.bt.Len()
}

// Ascend scans records with lo <= t < hi in ascending time order.
func (x *Index) Ascend(lo, hi int64, fn func(t int64, r Record) bool) {
	if x.kind == CSS {
		x.css.AscendRange(lo, hi, fn)
		return
	}
	x.bt.AscendRange(lo, hi, fn)
}

// Descend scans records with lo <= t < hi in descending time order.
func (x *Index) Descend(lo, hi int64, fn func(t int64, r Record) bool) {
	if x.kind == CSS {
		x.css.DescendRange(lo, hi, fn)
		return
	}
	x.bt.DescendRange(lo, hi, fn)
}

// MinKey returns the earliest traversal time F[e]min of the segment.
func (x *Index) MinKey() (int64, bool) {
	if x.kind == CSS {
		return x.css.MinKey()
	}
	return x.bt.MinKey()
}

// MaxKey returns the latest traversal time F[e]max of the segment.
func (x *Index) MaxKey() (int64, bool) {
	if x.kind == CSS {
		return x.css.MaxKey()
	}
	return x.bt.MaxKey()
}

// CountRange returns the number of records with lo <= t < hi. For CSS trees
// this is the O(log n) exact range size of Section 4.3.1; for B+-trees it
// walks the range (which is why the paper's fast estimator modes use the
// naive min/max formula (3) on BT).
func (x *Index) CountRange(lo, hi int64) int {
	if x.kind == CSS {
		return x.css.CountRange(lo, hi)
	}
	return x.bt.CountRange(lo, hi)
}

// CountsExactlyInLogTime reports whether CountRange is O(log n) (CSS only;
// frozen columnar indexes count exactly in O(log n) on every tree kind).
func (x *Index) CountsExactlyInLogTime() bool { return x.kind == CSS }

// Export returns the index's entries as sorted parallel (timestamp, record)
// slices — the freeze export. For CSS trees the returned slices alias the
// tree's storage and must be treated as read-only; for B+-trees they are
// freshly built from one leaf-chain walk.
func (x *Index) Export() ([]int64, []Record) {
	if x.kind == CSS {
		return x.css.Export()
	}
	return x.bt.Export(nil, nil)
}

// SizeBytes models the memory footprint given the per-record payload size.
func (x *Index) SizeBytes(payloadBytes int) int {
	if x.kind == CSS {
		return x.css.SizeBytes(payloadBytes)
	}
	return x.bt.SizeBytes(payloadBytes)
}

// Forest is F: one temporal index per segment that has data.
type Forest struct {
	kind TreeKind
	idx  map[network.EdgeID]*Index
}

// ForestBuilder accumulates traversal records and freezes them into a
// Forest. Records may be added in any order; each segment's records are
// sorted by entry timestamp at Finish (the batch build of Section 4.3.1).
type ForestBuilder struct {
	kind TreeKind
	ts   map[network.EdgeID][]int64
	recs map[network.EdgeID][]Record
}

// NewForestBuilder returns an empty builder for the given tree kind.
func NewForestBuilder(kind TreeKind) *ForestBuilder {
	return &ForestBuilder{
		kind: kind,
		ts:   make(map[network.EdgeID][]int64),
		recs: make(map[network.EdgeID][]Record),
	}
}

// Add records one segment traversal.
func (b *ForestBuilder) Add(e network.EdgeID, t int64, r Record) {
	b.ts[e] = append(b.ts[e], t)
	b.recs[e] = append(b.recs[e], r)
}

// Finish builds the forest.
func (b *ForestBuilder) Finish() *Forest {
	f := &Forest{kind: b.kind, idx: make(map[network.EdgeID]*Index, len(b.ts))}
	for _, sb := range b.sortedBatches() {
		f.idx[sb.e] = build(b.kind, sb.ts, sb.recs)
	}
	return f
}

// Kind returns the tree kind backing the forest.
func (f *Forest) Kind() TreeKind { return f.kind }

// sortedBatch is one segment's batch, jointly sorted by timestamp.
type sortedBatch struct {
	e    network.EdgeID
	ts   []int64
	recs []Record
}

// sortedBatches sorts each segment's accumulated (ts, recs) stably by
// timestamp — the shared preparation step of Finish, Forest.Extend and
// FrozenForest.Extend.
func (b *ForestBuilder) sortedBatches() []sortedBatch {
	var batches []sortedBatch
	for e, ts := range b.ts {
		recs := b.recs[e]
		ord := make([]int, len(ts))
		for i := range ord {
			ord[i] = i
		}
		sort.SliceStable(ord, func(i, j int) bool { return ts[ord[i]] < ts[ord[j]] })
		st := make([]int64, len(ts))
		sr := make([]Record, len(recs))
		for i, o := range ord {
			st[i] = ts[o]
			sr[i] = recs[o]
		}
		batches = append(batches, sortedBatch{e: e, ts: st, recs: sr})
	}
	return batches
}

// Extend appends a batch of newer records to the forest (the batch-update
// path enabled by temporal partitioning, Section 4.3.2). Per segment, the
// batch's records are sorted and appended; every new record must carry a
// timestamp at or after the segment's current maximum (CSS trees are
// append-only, Section 4.3.1).
func (f *Forest) Extend(b *ForestBuilder) error {
	if b.kind != f.kind {
		return fmt.Errorf("temporal: extending %v forest with %v batch", f.kind, b.kind)
	}
	// Validate before mutating anything.
	batches := b.sortedBatches()
	for _, sb := range batches {
		if x := f.idx[sb.e]; x != nil && len(sb.ts) > 0 {
			if max, ok := x.MaxKey(); ok && sb.ts[0] < max {
				return fmt.Errorf("temporal: segment %d batch starts at %d before existing max %d",
					sb.e, sb.ts[0], max)
			}
		}
	}
	for _, sb := range batches {
		x := f.idx[sb.e]
		if x == nil {
			x = newEmpty(f.kind)
			f.idx[sb.e] = x
		}
		for i, t := range sb.ts {
			x.append(t, sb.recs[i])
		}
		x.finish()
	}
	return nil
}

func newEmpty(kind TreeKind) *Index {
	x := &Index{kind: kind}
	if kind == CSS {
		x.css = csstree.New[Record]()
	} else {
		x.bt = bptree.New[Record]()
	}
	return x
}

func (x *Index) append(t int64, r Record) {
	if x.kind == CSS {
		x.css.Append(t, r)
		return
	}
	x.bt.Insert(t, r)
}

func (x *Index) finish() {
	if x.kind == CSS {
		x.css.Finish()
	}
}

// Get returns Φe, or nil when the segment has no data.
func (f *Forest) Get(e network.EdgeID) *Index { return f.idx[e] }

// NumIndexes returns the number of segments with data.
func (f *Forest) NumIndexes() int { return len(f.idx) }

// NumRecords returns the total number of traversal records.
func (f *Forest) NumRecords() int {
	n := 0
	for _, x := range f.idx {
		n += x.Len()
	}
	return n
}

// SizeBytes models the forest's memory footprint.
func (f *Forest) SizeBytes(payloadBytes int) int {
	const perEntryMapOverhead = 48 // hash bucket + pointer per segment tree
	sz := 0
	for _, x := range f.idx {
		sz += x.SizeBytes(payloadBytes) + perEntryMapOverhead
	}
	return sz
}
