package temporal

import (
	"math/rand"
	"testing"

	"pathhist/internal/network"
)

func buildBoth(t *testing.T, n int) (*Index, *Index) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	bCSS := NewForestBuilder(CSS)
	bBT := NewForestBuilder(BPlus)
	for i := 0; i < n; i++ {
		ts := int64(rng.Intn(100000))
		r := Record{ISA: int32(i), Traj: 0, TT: 10, A: 10, Seq: 0, W: 0}
		bCSS.Add(1, ts, r)
		bBT.Add(1, ts, r)
	}
	fc := bCSS.Finish()
	fb := bBT.Finish()
	return fc.Get(1), fb.Get(1)
}

func TestKindString(t *testing.T) {
	if CSS.String() != "CSS" || BPlus.String() != "BT" {
		t.Error("kind names")
	}
}

func TestBothKindsAgree(t *testing.T) {
	css, bt := buildBoth(t, 3000)
	if css.Len() != 3000 || bt.Len() != 3000 {
		t.Fatalf("lens: %d %d", css.Len(), bt.Len())
	}
	if !css.CountsExactlyInLogTime() || bt.CountsExactlyInLogTime() {
		t.Error("CountsExactlyInLogTime flags wrong")
	}
	cmin, _ := css.MinKey()
	bmin, _ := bt.MinKey()
	cmax, _ := css.MaxKey()
	bmax, _ := bt.MaxKey()
	if cmin != bmin || cmax != bmax {
		t.Fatalf("min/max disagree: %d/%d vs %d/%d", cmin, cmax, bmin, bmax)
	}
	rng := rand.New(rand.NewSource(5))
	for q := 0; q < 100; q++ {
		lo := int64(rng.Intn(100000))
		hi := lo + int64(rng.Intn(20000))
		if cc, bc := css.CountRange(lo, hi), bt.CountRange(lo, hi); cc != bc {
			t.Fatalf("CountRange(%d,%d): CSS %d vs BT %d", lo, hi, cc, bc)
		}
		var ca, ba []int64
		css.Ascend(lo, hi, func(ts int64, r Record) bool { ca = append(ca, ts); return true })
		bt.Ascend(lo, hi, func(ts int64, r Record) bool { ba = append(ba, ts); return true })
		if len(ca) != len(ba) {
			t.Fatalf("ascend lengths differ: %d vs %d", len(ca), len(ba))
		}
		for i := range ca {
			if ca[i] != ba[i] {
				t.Fatalf("ascend order differs at %d", i)
			}
		}
		var cd []int64
		css.Descend(lo, hi, func(ts int64, r Record) bool { cd = append(cd, ts); return true })
		for i := range cd {
			if cd[i] != ca[len(ca)-1-i] {
				t.Fatalf("descend not reverse of ascend at %d", i)
			}
		}
	}
}

func TestForestBasics(t *testing.T) {
	b := NewForestBuilder(CSS)
	b.Add(5, 100, Record{Traj: 1, Seq: 0, TT: 7, A: 7})
	b.Add(5, 50, Record{Traj: 2, Seq: 0, TT: 9, A: 9})
	b.Add(9, 60, Record{Traj: 1, Seq: 1, TT: 4, A: 11})
	f := b.Finish()
	if f.Kind() != CSS {
		t.Error("kind")
	}
	if f.NumIndexes() != 2 || f.NumRecords() != 3 {
		t.Fatalf("NumIndexes=%d NumRecords=%d", f.NumIndexes(), f.NumRecords())
	}
	if f.Get(network.EdgeID(123)) != nil {
		t.Error("missing segment should be nil")
	}
	// Records come back sorted by time.
	var ts []int64
	f.Get(5).Ascend(0, 1000, func(tt int64, r Record) bool { ts = append(ts, tt); return true })
	if len(ts) != 2 || ts[0] != 50 || ts[1] != 100 {
		t.Fatalf("sorted scan = %v", ts)
	}
	if f.SizeBytes(PayloadBytes) <= 0 {
		t.Error("SizeBytes")
	}
}

func TestEarlyStopScan(t *testing.T) {
	css, bt := buildBoth(t, 500)
	for _, x := range []*Index{css, bt} {
		n := 0
		x.Ascend(0, 1<<40, func(int64, Record) bool { n++; return n < 3 })
		if n != 3 {
			t.Errorf("%v early stop visited %d", x.kind, n)
		}
	}
}

func TestSizeModelOrdering(t *testing.T) {
	css, bt := buildBoth(t, 10000)
	// The paper: "the in-memory B+-tree forest has slightly higher memory
	// requirements than the CSS-forest" (Section 6.3).
	c := css.SizeBytes(PayloadBytes)
	bb := bt.SizeBytes(PayloadBytes)
	if c >= bb {
		t.Errorf("CSS (%d) should be smaller than BT (%d)", c, bb)
	}
	if css.SizeBytes(PayloadBytesNoPartition) >= c {
		t.Error("dropping the partition field should shrink the leaves")
	}
}

func TestForestExtend(t *testing.T) {
	for _, kind := range []TreeKind{CSS, BPlus} {
		b := NewForestBuilder(kind)
		b.Add(1, 100, Record{Traj: 0, TT: 5, A: 5})
		b.Add(1, 200, Record{Traj: 1, TT: 6, A: 6})
		b.Add(2, 150, Record{Traj: 0, Seq: 1, TT: 4, A: 9})
		f := b.Finish()

		// Batch touching an existing segment and a brand-new one, added
		// out of order (Extend sorts per segment).
		nb := NewForestBuilder(kind)
		nb.Add(1, 400, Record{Traj: 2, TT: 7, A: 7, W: 1})
		nb.Add(1, 300, Record{Traj: 3, TT: 8, A: 8, W: 1})
		nb.Add(9, 350, Record{Traj: 2, Seq: 1, TT: 3, A: 10, W: 1})
		if err := f.Extend(nb); err != nil {
			t.Fatalf("%v: Extend: %v", kind, err)
		}
		if f.NumRecords() != 6 || f.NumIndexes() != 3 {
			t.Fatalf("%v: records=%d indexes=%d", kind, f.NumRecords(), f.NumIndexes())
		}
		var ts []int64
		f.Get(1).Ascend(0, 1000, func(tt int64, r Record) bool { ts = append(ts, tt); return true })
		want := []int64{100, 200, 300, 400}
		for i := range want {
			if ts[i] != want[i] {
				t.Fatalf("%v: scan after extend = %v", kind, ts)
			}
		}
		if f.Get(9) == nil || f.Get(9).Len() != 1 {
			t.Fatalf("%v: new segment index missing", kind)
		}

		// A batch older than the existing data is rejected and nothing
		// is mutated.
		bad := NewForestBuilder(kind)
		bad.Add(1, 50, Record{Traj: 4, TT: 1, A: 1})
		if err := f.Extend(bad); err == nil {
			t.Fatalf("%v: stale batch accepted", kind)
		}
		if f.NumRecords() != 6 {
			t.Fatalf("%v: failed extend mutated the forest", kind)
		}
	}
	// Kind mismatch.
	f := NewForestBuilder(CSS).Finish()
	if err := f.Extend(NewForestBuilder(BPlus)); err == nil {
		t.Fatal("kind mismatch accepted")
	}
}

func TestDescendEmptyRange(t *testing.T) {
	css, bt := buildBoth(t, 100)
	for _, x := range []*Index{css, bt} {
		n := 0
		x.Descend(50, 50, func(int64, Record) bool { n++; return true })
		if n != 0 {
			t.Errorf("%v: empty range visited %d", x.kind, n)
		}
	}
}
