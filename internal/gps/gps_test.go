package gps

import (
	"math"
	"math/rand"
	"testing"

	"pathhist/internal/network"
	"pathhist/internal/traj"
)

// A Tuesday: 2013-06-04 00:00:00 UTC.
const tuesday int64 = 1370304000

// A Saturday: 2013-06-08 00:00:00 UTC.
const saturday int64 = 1370649600

func TestWeekdayHelpers(t *testing.T) {
	if Weekday(tuesday) != 2 {
		t.Errorf("Weekday(tuesday) = %d, want 2", Weekday(tuesday))
	}
	if Weekday(saturday) != 6 {
		t.Errorf("Weekday(saturday) = %d, want 6", Weekday(saturday))
	}
	if IsWeekend(tuesday) || !IsWeekend(saturday) {
		t.Error("IsWeekend misclassifies")
	}
	if TimeOfDay(tuesday+8*3600+30) != 8*3600+30 {
		t.Error("TimeOfDay wrong")
	}
	if Weekday(0) != 4 { // epoch was a Thursday
		t.Errorf("Weekday(0) = %d, want 4", Weekday(0))
	}
}

func TestCongestionShape(t *testing.T) {
	cityPeak := CongestionFactor(tuesday+8*3600, network.ZoneCity, network.Secondary)
	cityNight := CongestionFactor(tuesday+3*3600, network.ZoneCity, network.Secondary)
	cityNoon := CongestionFactor(tuesday+12*3600, network.ZoneCity, network.Secondary)
	if !(cityPeak < cityNoon && cityNoon < cityNight) {
		t.Errorf("city congestion ordering: peak=%v noon=%v night=%v", cityPeak, cityNoon, cityNight)
	}
	if cityPeak > 0.70 {
		t.Errorf("city rush factor %v should be well below 0.70", cityPeak)
	}
	mwPeak := CongestionFactor(tuesday+8*3600, network.ZoneRural, network.Motorway)
	if mwPeak <= cityPeak {
		t.Errorf("motorway rush (%v) should be milder than city rush (%v)", mwPeak, cityPeak)
	}
	wkndPeak := CongestionFactor(saturday+8*3600, network.ZoneCity, network.Secondary)
	if wkndPeak <= cityPeak+0.1 {
		t.Errorf("weekend peak (%v) should be much milder than weekday (%v)", wkndPeak, cityPeak)
	}
	// Factor always positive and bounded.
	for h := int64(0); h < 24; h++ {
		f := CongestionFactor(tuesday+h*3600, network.ZoneCity, network.Primary)
		if f < 0.3 || f > 1.1 {
			t.Errorf("factor out of range at %dh: %v", h, f)
		}
	}
}

func TestNewDriversHeterogeneity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ds := NewDrivers(500, rng)
	if len(ds) != 500 {
		t.Fatal("wrong count")
	}
	var cruiseVar, cityVar float64
	for _, d := range ds {
		cruiseVar += (d.CruiseFactor - 1) * (d.CruiseFactor - 1)
		cityVar += (d.CityFactor - 1) * (d.CityFactor - 1)
		if d.CruiseFactor < 0.75 || d.CruiseFactor > 1.25 {
			t.Fatalf("cruise factor out of bounds: %v", d.CruiseFactor)
		}
	}
	if cruiseVar <= cityVar*2 {
		t.Errorf("cruise heterogeneity (%v) should dominate city (%v)", cruiseVar, cityVar)
	}
}

func testPathAndSim(t *testing.T, seed int64) (*Simulator, network.Path) {
	t.Helper()
	g, ids := network.PaperExample()
	s := NewSimulator(g, rand.New(rand.NewSource(seed)))
	return s, network.Path{ids["A"], ids["C"], ids["D"], ids["E"]}
}

func TestSimulateTraversalInvariants(t *testing.T) {
	s, p := testPathAndSim(t, 1)
	d := Driver{ID: 0, CruiseFactor: 1, CityFactor: 1}
	entries := s.SimulateTraversal(p, tuesday+10*3600, &d)
	if len(entries) != len(p) {
		t.Fatalf("entries = %d, want %d", len(entries), len(p))
	}
	tr := traj.Trajectory{Seq: entries}
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid traversal: %v", err)
	}
	for i, e := range entries {
		if e.Edge != p[i] {
			t.Errorf("edge %d = %v, want %v", i, e.Edge, p[i])
		}
	}
	// Entry time of each segment equals previous entry + previous TT
	// (modulo the +1s monotonicity nudge).
	for i := 1; i < len(entries); i++ {
		want := entries[i-1].T + int64(entries[i-1].TT)
		if entries[i].T != want && entries[i].T != entries[i-1].T+1 {
			t.Errorf("entry %d at %d, want %d", i, entries[i].T, want)
		}
	}
}

func TestRushHourSlowerThanNight(t *testing.T) {
	d := Driver{ID: 0, CruiseFactor: 1, CityFactor: 1}
	var rush, night int64
	const reps = 40
	for r := 0; r < reps; r++ {
		s, p := testPathAndSim(t, int64(r))
		e1 := s.SimulateTraversal(p, tuesday+8*3600, &d)
		s2, _ := testPathAndSim(t, int64(r))
		e2 := s2.SimulateTraversal(p, tuesday+3*3600, &d)
		tr1 := traj.Trajectory{Seq: e1}
		tr2 := traj.Trajectory{Seq: e2}
		rush += tr1.TotalDuration()
		night += tr2.TotalDuration()
	}
	if rush <= night {
		t.Errorf("rush-hour avg (%d) should exceed night avg (%d)", rush/reps, night/reps)
	}
}

func TestFastDriverFasterOnMotorway(t *testing.T) {
	g, ids := network.PaperExample()
	p := network.Path{ids["A"]} // motorway segment
	fast := Driver{CruiseFactor: 1.2, CityFactor: 1}
	slow := Driver{CruiseFactor: 0.8, CityFactor: 1}
	var fsum, ssum int64
	for r := 0; r < 30; r++ {
		s := NewSimulator(g, rand.New(rand.NewSource(int64(r))))
		fsum += int64(s.SimulateTraversal(p, tuesday+12*3600, &fast)[0].TT)
		s = NewSimulator(g, rand.New(rand.NewSource(int64(r))))
		ssum += int64(s.SimulateTraversal(p, tuesday+12*3600, &slow)[0].TT)
	}
	if fsum >= ssum {
		t.Errorf("fast driver (%d) should beat slow driver (%d) on motorway", fsum, ssum)
	}
}

func TestTurnDelayChargedOnEntry(t *testing.T) {
	// Build a junction where the same segment is entered straight vs left.
	g := network.New()
	w := g.AddVertex(-200, 0)
	c := g.AddVertex(0, 0)
	sVert := g.AddVertex(0, -200)
	e := g.AddVertex(200, 0)
	in1 := g.AddEdge(network.Edge{From: w, To: c, Cat: network.Residential, SpeedLimit: 50, Zone: network.ZoneCity})
	in2 := g.AddEdge(network.Edge{From: sVert, To: c, Cat: network.Residential, SpeedLimit: 50, Zone: network.ZoneCity})
	out := g.AddEdge(network.Edge{From: c, To: e, Cat: network.Residential, SpeedLimit: 50, Zone: network.ZoneCity})
	d := Driver{CruiseFactor: 1, CityFactor: 1}
	var straight, left int64
	for r := 0; r < 60; r++ {
		sim := NewSimulator(g, rand.New(rand.NewSource(int64(r))))
		sim.SignalProb = 0 // isolate geometric turn cost
		es := sim.SimulateTraversal(network.Path{in1, out}, tuesday+12*3600, &d)
		straight += int64(es[1].TT)
		sim = NewSimulator(g, rand.New(rand.NewSource(int64(r))))
		sim.SignalProb = 0
		el := sim.SimulateTraversal(network.Path{in2, out}, tuesday+12*3600, &d)
		left += int64(el[1].TT)
	}
	if left <= straight {
		t.Errorf("left turns (%d) should be slower than straight (%d)", left, straight)
	}
}

func TestEmitFixes(t *testing.T) {
	s, p := testPathAndSim(t, 3)
	d := Driver{CruiseFactor: 1, CityFactor: 1}
	entries := s.SimulateTraversal(p, tuesday+9*3600, &d)
	fixes := s.EmitFixes(entries, 4)
	tr := traj.Trajectory{Seq: entries}
	wantN := tr.TotalDuration() + 1 // inclusive endpoints at 1 Hz
	if int64(len(fixes)) != wantN {
		t.Fatalf("fixes = %d, want %d", len(fixes), wantN)
	}
	for i := 1; i < len(fixes); i++ {
		if fixes[i].T != fixes[i-1].T+1 {
			t.Fatalf("fixes not 1 Hz at %d", i)
		}
	}
	// First fix near the start vertex of the path.
	g := s.G
	a := g.Vertex(g.Edge(p[0]).From)
	if d := math.Hypot(fixes[0].X-a.X, fixes[0].Y-a.Y); d > 30 {
		t.Errorf("first fix %v m from path start", d)
	}
	if s.EmitFixes(nil, 4) != nil {
		t.Error("EmitFixes(nil) should be nil")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	d := Driver{CruiseFactor: 1.05, CityFactor: 0.97}
	s1, p := testPathAndSim(t, 99)
	s2, _ := testPathAndSim(t, 99)
	e1 := s1.SimulateTraversal(p, tuesday+7*3600, &d)
	e2 := s2.SimulateTraversal(p, tuesday+7*3600, &d)
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("nondeterministic at %d: %+v vs %+v", i, e1[i], e2[i])
		}
	}
}
