// Package gps simulates the vehicle movement data underlying the ITSP
// dataset (Section 5.1.3): trips over the road network with time-of-day
// congestion, per-driver driving style, intersection (turn) delays and
// traffic signals, and — for the map-matching pipeline — 1 Hz GPS fixes with
// Gaussian positional noise.
//
// The statistical structure matters for the reproduction (DESIGN.md §1):
//
//   - congestion is strongest in city zones at commute peaks, so periodic
//     time-of-day intervals carry signal (Figures 5a vs 5c);
//   - driver heterogeneity is concentrated on main roads, so user filters
//     help there and πMDM is the right selective policy (Figure 5b);
//   - turn delays are charged to the segment being entered, so per-segment
//     histograms mix different turning movements and path-based retrieval
//     is more accurate (the paper's core motivation).
package gps

import (
	"math"
	"math/rand"

	"pathhist/internal/network"
	"pathhist/internal/traj"
)

// Day is one day in seconds.
const Day int64 = 86400

// TimeOfDay returns the second-of-day of a unix timestamp.
func TimeOfDay(t int64) int64 {
	tod := t % Day
	if tod < 0 {
		tod += Day
	}
	return tod
}

// Weekday returns 0=Sunday .. 6=Saturday for a unix timestamp (UTC).
func Weekday(t int64) int {
	d := t / Day
	if t < 0 && t%Day != 0 {
		d--
	}
	return int((d + 4) % 7)
}

// IsWeekend reports whether t falls on Saturday or Sunday.
func IsWeekend(t int64) bool {
	wd := Weekday(t)
	return wd == 0 || wd == 6
}

func gauss(x, mu, sigma float64) float64 {
	d := (x - mu) / sigma
	return math.Exp(-0.5 * d * d)
}

// CongestionFactor returns the multiplicative speed factor (<= ~1.05) at
// time-of-day tod seconds on a segment with the given zone and category.
// Weekday commute peaks around 08:00 and 16:30 slow city traffic by up to
// ~45-50% and main-road traffic by up to ~15-20%; weekends are nearly flat.
func CongestionFactor(t int64, zone network.Zone, cat network.Category) float64 {
	tod := float64(TimeOfDay(t))
	const h = 3600.0
	var amMag, pmMag float64
	switch {
	case zone == network.ZoneCity || zone == network.ZoneAmbiguous:
		amMag, pmMag = 0.45, 0.50
	case cat.IsMainRoad():
		amMag, pmMag = 0.15, 0.20
	default:
		amMag, pmMag = 0.10, 0.12
	}
	if IsWeekend(t) {
		amMag *= 0.15
		pmMag *= 0.25
	}
	f := 1.03 - amMag*gauss(tod, 8*h, 0.75*h) - pmMag*gauss(tod, 16.5*h, 1.1*h)
	if f < 0.3 {
		f = 0.3
	}
	return f
}

// Driver is the behavioural profile of one vehicle/driver. CruiseFactor
// scales free-flow speed on main roads (strong heterogeneity), CityFactor on
// all other roads (weak heterogeneity).
type Driver struct {
	ID           traj.UserID
	CruiseFactor float64
	CityFactor   float64
}

// NewDrivers creates n driver profiles with heterogeneity concentrated on
// main roads.
func NewDrivers(n int, rng *rand.Rand) []Driver {
	ds := make([]Driver, n)
	for i := range ds {
		ds[i] = Driver{
			ID:           traj.UserID(i),
			CruiseFactor: clamp(1+rng.NormFloat64()*0.10, 0.75, 1.25),
			CityFactor:   clamp(1+rng.NormFloat64()*0.035, 0.90, 1.10),
		}
	}
	return ds
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Simulator turns routed paths into ground-truth NCT traversals and GPS
// fixes. All randomness flows through the *rand.Rand passed at construction,
// so simulations are reproducible.
type Simulator struct {
	G   *network.Graph
	Rng *rand.Rand
	// NoiseSigma is the per-segment lognormal speed noise (sigma of the
	// underlying normal).
	NoiseSigma float64
	// SignalProb is the probability that entering a signalised city road
	// hits a red phase.
	SignalProb float64
	// MaxRedWait is the maximum red-phase wait in seconds.
	MaxRedWait float64
}

// NewSimulator returns a simulator with the default noise model.
func NewSimulator(g *network.Graph, rng *rand.Rand) *Simulator {
	return &Simulator{G: g, Rng: rng, NoiseSigma: 0.06, SignalProb: 0.25, MaxRedWait: 40}
}

// turnDelay returns the intersection delay in seconds charged when moving
// from prev onto next at time t.
func (s *Simulator) turnDelay(prev, next network.EdgeID, t int64) float64 {
	var base float64
	switch s.G.TurnBetween(prev, next) {
	case TurnStraightConst:
		base = 1.5
	case TurnRightConst:
		base = 4
	case TurnLeftConst:
		base = 8
	default:
		base = 12
	}
	e := s.G.Edge(next)
	zoneScale := 0.5
	if e.Zone == network.ZoneCity || e.Zone == network.ZoneAmbiguous {
		zoneScale = 1.0
	}
	d := base * zoneScale
	// Traffic signals on signalised city roads; red waits lengthen in
	// congested periods.
	if zoneScale == 1.0 && signalised(e.Cat) && s.Rng.Float64() < s.SignalProb {
		cong := CongestionFactor(t, e.Zone, e.Cat)
		d += s.Rng.Float64() * s.MaxRedWait / cong
	}
	return d
}

// Aliases so turnDelay reads naturally without re-exporting network consts.
const (
	TurnStraightConst = network.TurnStraight
	TurnRightConst    = network.TurnRight
	TurnLeftConst     = network.TurnLeft
)

func signalised(c network.Category) bool {
	switch c {
	case network.Primary, network.Secondary, network.Tertiary:
		return true
	}
	return false
}

// SimulateTraversal drives path p departing at time depart (unix seconds)
// and returns the ground-truth traversal sequence. Entry timestamps are
// strictly increasing; durations are whole seconds >= 1.
func (s *Simulator) SimulateTraversal(p network.Path, depart int64, d *Driver) []traj.Entry {
	entries := make([]traj.Entry, 0, len(p))
	tNow := float64(depart)
	for i, eid := range p {
		e := s.G.Edge(eid)
		limit := s.G.SpeedLimitOf(eid)
		cong := CongestionFactor(int64(tNow), e.Zone, e.Cat)
		df := d.CityFactor
		if e.Cat.IsMainRoad() {
			df = d.CruiseFactor
		}
		noise := math.Exp(s.Rng.NormFloat64() * s.NoiseSigma)
		v := limit * cong * df * noise
		v = clamp(v, 4, limit*1.20)
		tt := 3.6 * e.Length / v
		if i > 0 {
			tt += s.turnDelay(p[i-1], eid, int64(tNow))
		}
		ttSec := int32(math.Round(tt))
		if ttSec < 1 {
			ttSec = 1
		}
		entry := traj.Entry{Edge: eid, T: int64(math.Floor(tNow)), TT: ttSec}
		if len(entries) > 0 && entry.T <= entries[len(entries)-1].T {
			entry.T = entries[len(entries)-1].T + 1
		}
		entries = append(entries, entry)
		tNow = float64(entry.T) + float64(ttSec)
	}
	return entries
}

// Fix is one GPS observation: a timestamped planar position.
type Fix struct {
	T    int64
	X, Y float64
}

// EmitFixes samples the vehicle position at 1 Hz along the (straight-line)
// segment geometry of a ground-truth traversal and perturbs it with
// isotropic Gaussian noise of the given standard deviation in meters.
func (s *Simulator) EmitFixes(entries []traj.Entry, noiseMeters float64) []Fix {
	if len(entries) == 0 {
		return nil
	}
	var fixes []Fix
	start := entries[0].T
	last := entries[len(entries)-1]
	end := last.T + int64(last.TT)
	i := 0
	for t := start; t <= end; t++ {
		for i+1 < len(entries) && t >= entries[i].T+int64(entries[i].TT) {
			i++
		}
		e := entries[i]
		frac := float64(t-e.T) / float64(e.TT)
		if frac > 1 {
			frac = 1
		}
		ed := s.G.Edge(e.Edge)
		a, b := s.G.Vertex(ed.From), s.G.Vertex(ed.To)
		x := a.X + frac*(b.X-a.X) + s.Rng.NormFloat64()*noiseMeters
		y := a.Y + frac*(b.Y-a.Y) + s.Rng.NormFloat64()*noiseMeters
		fixes = append(fixes, Fix{T: t, X: x, Y: y})
	}
	return fixes
}
