package experiments

import (
	"context"
	"errors"
	"time"

	"pathhist/internal/query"
	"pathhist/internal/temporal"
)

// DeadlineResult summarises one bounded-latency run: how many queries
// finished inside the deadline, how many were cut off, and how far past the
// deadline the slowest abort came back (the overrun the cancellation
// stride actually delivers — DESIGN.md §12 promises < 2× on the serving
// path).
type DeadlineResult struct {
	Deadline   time.Duration
	Queries    int
	Completed  int
	TimedOut   int
	MaxLatency time.Duration // slowest observed response, completed or not
	MaxOverrun time.Duration // worst (latency - deadline) among timeouts
}

// RunDeadline replays the query set through TripQueryCtx under a per-query
// deadline, the same code path ttserve's -query-timeout exercises. Every
// query must come back — with an answer or with context.DeadlineExceeded —
// and a timed-out query's latency bounds how long a stuck client can hold
// a scratch buffer.
func (env *Env) RunDeadline(deadline time.Duration, beta int) DeadlineResult {
	ix := env.Index(temporal.CSS, 0, 0)
	eng := query.NewEngine(ix, query.Config{
		Partitioner: query.Partitioner{Kind: query.ZoneCategory},
		Splitter:    query.SigmaL,
		BucketWidth: 10,
	})
	out := DeadlineResult{Deadline: deadline, Queries: len(env.Queries)}
	for _, q := range env.Queries {
		ctx, cancel := context.WithTimeout(context.Background(), deadline)
		start := time.Now()
		_, err := eng.TripQueryCtx(ctx, SPQFor(q, TemporalFilters, beta))
		lat := time.Since(start)
		cancel()
		if lat > out.MaxLatency {
			out.MaxLatency = lat
		}
		switch {
		case err == nil:
			out.Completed++
		case errors.Is(err, context.DeadlineExceeded):
			out.TimedOut++
			if over := lat - deadline; over > out.MaxOverrun {
				out.MaxOverrun = over
			}
		}
	}
	return out
}
