package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"pathhist/internal/query"
	"pathhist/internal/snt"
	"pathhist/internal/wal"
)

// Sustained ingestion (PR 6): the same batch stream ingested under the two
// compaction regimes. In-lock compaction merges inside the triggering
// Extend, so every few batches one ingest pays the whole merge — its
// latency tail is the merge time. Background compaction moves the merge to
// a goroutine (prepare off-lock, apply under the extend lock), so extend
// latency stays at indexing cost and the tail collapses. Both runs append
// every batch to a write-ahead log first, pricing the fsync an acknowledged
// batch costs on the durable path.

// SustainedRow is one compaction regime measured over a sustained ingest.
type SustainedRow struct {
	Mode    string
	Batches int
	// Extend latency distribution in milliseconds, over the ingested
	// batches (WAL append + fsync + indexing + publication).
	ExtendP50Ms float64
	ExtendP95Ms float64
	ExtendP99Ms float64
	ExtendMaxMs float64
	// QueriesPerSec is concurrent query throughput sustained during the
	// ingest window (two query goroutines over the experiment query set).
	QueriesPerSec float64
	// Compactions counts merges published during the run; FsyncMsPerBatch
	// is the WAL durability cost each acknowledged batch paid.
	Compactions     int64
	FsyncMsPerBatch float64
	// DrainMs is how long after the last Extend the partition backlog took
	// to merge below the trigger (zero for in-lock: the backlog never
	// outlives the Extend that created it).
	DrainMs float64
}

// percentile returns the q-quantile of sorted (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// RunSustained measures sustained ingestion under in-lock and background
// compaction: up to nBatches quiescent batches are extended through an
// engine under concurrent query load, each batch WAL-appended (fsynced)
// before indexing — the serving layer's durable admission sequence.
func (env *Env) RunSustained(nBatches int) []SustainedRow {
	return []SustainedRow{
		env.RunSustainedMode("in-lock compaction", false, nBatches),
		env.RunSustainedMode("background compaction", true, nBatches),
	}
}

func (env *Env) RunSustainedMode(name string, background bool, nBatches int) SustainedRow {
	s := env.DS.Store.Slice(0, env.DS.Store.Len())
	cuts := IngestionCuts(s, nBatches)
	if cuts == nil {
		return SustainedRow{Mode: name}
	}
	const trigger = 4
	eng := query.NewEngine(snt.Build(env.DS.G, s.Slice(0, cuts[0]), snt.Options{}), query.Config{
		Partitioner:         query.Partitioner{Kind: query.ZoneKind},
		BucketWidth:         10,
		Compaction:          snt.CompactionPolicy{TriggerPartitions: trigger},
		CompactInBackground: background,
	})
	defer eng.Close()

	dir, err := os.MkdirTemp("", "pathhist-sustained-")
	if err != nil {
		panic(fmt.Sprintf("experiments: wal dir: %v", err))
	}
	defer os.RemoveAll(dir)
	log, err := wal.Open(filepath.Join(dir, "extend.wal"))
	if err != nil {
		panic(fmt.Sprintf("experiments: wal: %v", err))
	}
	defer log.Close()

	stop := make(chan struct{})
	served := make(chan int, 2)
	for g := 0; g < 2; g++ {
		go func(g int) {
			n := 0
			for i := g; ; i++ {
				select {
				case <-stop:
					served <- n
					return
				default:
				}
				q := env.Queries[i%len(env.Queries)]
				_ = eng.TripQuery(SPQFor(q, TemporalFilters, 20))
				n++
			}
		}(g)
	}

	prevTotal := uint64(eng.Index().Stats().Trajs)
	lats := make([]float64, 0, len(cuts))
	ingestStart := time.Now()
	for b := range cuts {
		hi := s.Len()
		if b+1 < len(cuts) {
			hi = cuts[b+1]
		}
		batch := s.Slice(cuts[b], hi)
		var payload bytes.Buffer
		if _, err := batch.WriteTo(&payload); err != nil {
			panic(fmt.Sprintf("experiments: serialising batch %d: %v", b, err))
		}
		t0 := time.Now()
		if err := log.Append(prevTotal, batch.Len(), payload.Bytes()); err != nil {
			panic(fmt.Sprintf("experiments: wal append %d: %v", b, err))
		}
		if _, err := eng.Extend(batch); err != nil {
			panic(fmt.Sprintf("experiments: sustained extend %d: %v", b, err))
		}
		lats = append(lats, float64(time.Since(t0).Microseconds())/1000)
		prevTotal += uint64(batch.Len())
	}
	ingestSecs := time.Since(ingestStart).Seconds()
	drainStart := time.Now()
	var drainMs float64
	if background {
		deadline := time.Now().Add(30 * time.Second)
		for eng.Index().NumPartitions() >= trigger && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		drainMs = float64(time.Since(drainStart).Microseconds()) / 1000
	}
	close(stop)
	queries := <-served
	queries += <-served

	sort.Float64s(lats)
	compactions, _ := eng.CompactionInfo()
	ws := log.Stats()
	row := SustainedRow{
		Mode:          name,
		Batches:       len(lats),
		ExtendP50Ms:   percentile(lats, 0.50),
		ExtendP95Ms:   percentile(lats, 0.95),
		ExtendP99Ms:   percentile(lats, 0.99),
		ExtendMaxMs:   percentile(lats, 1.0),
		QueriesPerSec: float64(queries) / ingestSecs,
		Compactions:   compactions,
		DrainMs:       drainMs,
	}
	if ws.Appends > 0 {
		row.FsyncMsPerBatch = float64(ws.FsyncNanos) / 1e6 / float64(ws.Appends)
	}
	return row
}

// FormatSustained renders the regime comparison as an aligned table.
func FormatSustained(rows []SustainedRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s%9s%10s%10s%10s%10s%12s%9s%13s%10s\n",
		"regime", "batches", "p50 ms", "p95 ms", "p99 ms", "max ms", "queries/s", "merges", "fsync ms/b", "drain ms")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s%9d%10.2f%10.2f%10.2f%10.2f%12.0f%9d%13.3f%10.1f\n",
			r.Mode, r.Batches, r.ExtendP50Ms, r.ExtendP95Ms, r.ExtendP99Ms, r.ExtendMaxMs,
			r.QueriesPerSec, r.Compactions, r.FsyncMsPerBatch, r.DrainMs)
	}
	return b.String()
}
