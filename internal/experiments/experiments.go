// Package experiments reproduces the paper's evaluation (Section 6): one
// runner per figure, each returning the rows/series the paper plots.
// cmd/ttbench prints them; bench_test.go wraps them in testing.B benchmarks;
// EXPERIMENTS.md records the measured shapes against the paper's.
package experiments

import (
	"fmt"
	"time"

	"pathhist/internal/card"
	"pathhist/internal/metrics"
	"pathhist/internal/query"
	"pathhist/internal/snt"
	"pathhist/internal/temporal"
	"pathhist/internal/traj"
	"pathhist/internal/workload"
)

// QueryType is the three query families of Section 6.
type QueryType int

// The evaluated query types.
const (
	TemporalFilters QueryType = iota // periodic interval, no user filter
	UserFilters                      // periodic interval + user filter
	SPQOnly                          // fixed interval [0, t0), no user filter
)

func (q QueryType) String() string {
	switch q {
	case TemporalFilters:
		return "Temporal Filters"
	case UserFilters:
		return "User Filters"
	default:
		return "SPQ Only"
	}
}

// Gamma and the log-likelihood uniform support bounds (Section 5.3.3;
// gamma = 0.99, h = 10 s in the paper's Figure 8).
const (
	Gamma    = 0.99
	LogLTmin = 0
	LogLTmax = 4 * 3600
)

// Env caches the dataset, the query set and built indexes across
// experiments.
type Env struct {
	DS      *workload.Dataset
	Queries []workload.Query
	indexes map[indexKey]*snt.Index
}

type indexKey struct {
	tree      temporal.TreeKind
	partDays  int
	todBucket int
}

// NewEnv builds the dataset and derives the query set (frac defaults to the
// paper's 1% when <= 0; minLen filters out trivial trips).
func NewEnv(cfg workload.Config, frac float64, minLen int) *Env {
	if frac <= 0 {
		frac = 0.01
	}
	ds := workload.BuildDataset(cfg)
	return &Env{
		DS:      ds,
		Queries: ds.MakeQueries(frac, minLen, cfg.Seed+1),
		indexes: make(map[indexKey]*snt.Index),
	}
}

// Index returns (building and caching on demand) an index variant.
func (env *Env) Index(tree temporal.TreeKind, partDays, todBucket int) *snt.Index {
	k := indexKey{tree, partDays, todBucket}
	if ix, ok := env.indexes[k]; ok {
		return ix
	}
	ix := snt.Build(env.DS.G, env.DS.Store, snt.Options{
		Tree:             tree,
		PartitionDays:    partDays,
		TodBucketSeconds: todBucket,
	})
	env.indexes[k] = ix
	return ix
}

// SPQFor derives the evaluation SPQ for a query under a query type
// (Section 5.2): periodic αmin window centred on the trip start, or the
// fixed interval [0, t0); user filter only for UserFilters. The query's own
// trajectory is always excluded (DESIGN.md §4, decision 5).
func SPQFor(q workload.Query, qt QueryType, beta int) query.SPQ {
	f := snt.Filter{User: traj.NoUser, ExcludeTraj: q.Traj}
	var iv snt.Interval
	switch qt {
	case SPQOnly:
		iv = snt.NewFixed(0, q.T0)
	case UserFilters:
		f.User = q.User
		iv = snt.PeriodicAround(q.T0, query.DefaultAlphas[0])
	default:
		iv = snt.PeriodicAround(q.T0, query.DefaultAlphas[0])
	}
	return query.SPQ{Path: q.Path, Interval: iv, Filter: f, Beta: beta}
}

// GridPoint is one cell of the Figures 5-9 grid.
type GridPoint struct {
	QType      QueryType
	Pi         string
	Sigma      string
	Beta       int
	SMAPE      float64 // Figure 5
	WeightedE  float64 // Figure 6
	AvgSubLen  float64 // Figure 7
	LogL       float64 // Figure 8
	MsPerQuery float64 // Figure 9
	Queries    int
}

// subActuals maps each final sub-path to the query trajectory's true travel
// time over that sub-path (the a^{Pj}_tri of Section 5.3.2). Final sub-paths
// partition the query path in order, so a linear walk suffices.
func subActuals(q workload.Query, subs []query.SubResult) []int64 {
	out := make([]int64, len(subs))
	off := 0
	for i := range subs {
		var sum int64
		for j := 0; j < len(subs[i].Path); j++ {
			sum += int64(q.Entries[off+j].TT)
		}
		out[i] = sum
		off += len(subs[i].Path)
	}
	return out
}

// RunCell evaluates one engine configuration over the whole query set.
func (env *Env) RunCell(ix *snt.Index, qt QueryType, pt query.Partitioner, sp query.Splitter, beta int, est *card.Estimator) GridPoint {
	eng := query.NewEngine(ix, query.Config{
		Partitioner: pt,
		Splitter:    sp,
		BucketWidth: 10,
		Estimator:   est,
	})
	g := env.DS.G
	pnt := GridPoint{QType: qt, Pi: pt.String(), Sigma: sp.String(), Beta: beta, Queries: len(env.Queries)}
	var elapsed time.Duration
	var smapeSum, weSum, logLSum, subLenSum float64
	for _, q := range env.Queries {
		res := eng.TripQuery(SPQFor(q, qt, beta))
		elapsed += res.Elapsed
		smapeSum += metrics.SMAPETerm(res.PredictedMean(), float64(q.Actual))
		actuals := subActuals(q, res.Subs)
		total := g.PathLength(q.Path)
		var we float64
		for i := range res.Subs {
			w := g.PathLength(res.Subs[i].Path) / total
			we += metrics.WeightedErrorTerm(w, res.Subs[i].MeanX(), float64(actuals[i]))
		}
		weSum += we
		logLSum += res.Hist.LogLikelihood(int(q.Actual), Gamma, LogLTmin, LogLTmax)
		subLenSum += res.AvgSubPathLen()
	}
	n := float64(len(env.Queries))
	if n == 0 {
		return pnt
	}
	pnt.SMAPE = smapeSum / n
	pnt.WeightedE = weSum / n
	pnt.LogL = logLSum / n
	pnt.AvgSubLen = subLenSum / n
	pnt.MsPerQuery = float64(elapsed.Microseconds()) / 1000 / n
	return pnt
}

// GridSpec enumerates one query type's method grid, mirroring the paper's
// figure legends.
type GridSpec struct {
	QType        QueryType
	Partitioners []query.Partitioner
	Splitters    []query.Splitter
	Betas        []int
}

// DefaultBetas is the paper's β sweep.
var DefaultBetas = []int{10, 20, 30, 40, 50}

// DefaultGrids returns the three grids of Figures 5-9: Temporal Filters
// compare πC, πZ, πZC, πN against the regular baselines π1, π2, π3; User
// Filters compare πC, πZ, πZC, πMDM; SPQ Only compares πC, πZ, πZC, πN.
func DefaultGrids() []GridSpec {
	both := []query.Splitter{query.SigmaR, query.SigmaL}
	return []GridSpec{
		{
			QType: TemporalFilters,
			Partitioners: []query.Partitioner{
				{Kind: query.Category}, {Kind: query.ZoneKind}, {Kind: query.ZoneCategory},
				{Kind: query.None},
				{Kind: query.Regular, P: 1}, {Kind: query.Regular, P: 2}, {Kind: query.Regular, P: 3},
			},
			Splitters: both,
			Betas:     DefaultBetas,
		},
		{
			QType: UserFilters,
			Partitioners: []query.Partitioner{
				{Kind: query.Category}, {Kind: query.ZoneKind}, {Kind: query.ZoneCategory},
				{Kind: query.MDM},
			},
			Splitters: both,
			Betas:     DefaultBetas,
		},
		{
			QType: SPQOnly,
			Partitioners: []query.Partitioner{
				{Kind: query.Category}, {Kind: query.ZoneKind}, {Kind: query.ZoneCategory},
				{Kind: query.None},
			},
			Splitters: both,
			Betas:     DefaultBetas,
		},
	}
}

// RunGrid evaluates a grid on the default (FULL, CSS) index.
func (env *Env) RunGrid(spec GridSpec) []GridPoint {
	ix := env.Index(temporal.CSS, 0, 0)
	var out []GridPoint
	for _, pt := range spec.Partitioners {
		for _, sp := range spec.Splitters {
			for _, beta := range spec.Betas {
				out = append(out, env.RunCell(ix, spec.QType, pt, sp, beta, nil))
			}
		}
	}
	return out
}

// Baselines is the pair of reference errors quoted in Section 6.1: using
// speed limits only, and using all available trajectories per segment.
type Baselines struct {
	SpeedLimitSMAPE float64
	SpeedLimitWE    float64
	SegmentAllSMAPE float64
	SegmentAllWE    float64
}

// RunBaselines computes both baselines on the default index.
func (env *Env) RunBaselines() Baselines {
	ix := env.Index(temporal.CSS, 0, 0)
	g := env.DS.G
	var b Baselines
	// Speed limits only.
	for _, q := range env.Queries {
		pred := g.EstimatePathTT(q.Path)
		b.SpeedLimitSMAPE += metrics.SMAPETerm(pred, float64(q.Actual))
		total := g.PathLength(q.Path)
		for _, e := range q.Entries {
			w := g.Edge(e.Edge).Length / total
			b.SpeedLimitWE += metrics.WeightedErrorTerm(w, g.EstimateTT(e.Edge), float64(e.TT))
		}
	}
	// All available trajectories per segment: π1 with the fixed interval
	// [0, t0) and no cardinality requirement.
	eng := query.NewEngine(ix, query.Config{
		Partitioner: query.Partitioner{Kind: query.Regular, P: 1},
		BucketWidth: 10,
	})
	for _, q := range env.Queries {
		res := eng.TripQuery(query.SPQ{
			Path:     q.Path,
			Interval: snt.NewFixed(0, q.T0),
			Filter:   snt.Filter{User: traj.NoUser, ExcludeTraj: q.Traj},
			Beta:     0,
		})
		b.SegmentAllSMAPE += metrics.SMAPETerm(res.PredictedMean(), float64(q.Actual))
		actuals := subActuals(q, res.Subs)
		total := g.PathLength(q.Path)
		for i := range res.Subs {
			w := g.PathLength(res.Subs[i].Path) / total
			b.SegmentAllWE += metrics.WeightedErrorTerm(w, res.Subs[i].MeanX(), float64(actuals[i]))
		}
	}
	n := float64(len(env.Queries))
	if n > 0 {
		b.SpeedLimitSMAPE /= n
		b.SpeedLimitWE /= n
		b.SegmentAllSMAPE /= n
		b.SegmentAllWE /= n
	}
	return b
}

// FormatGrid renders grid points as an aligned text table, one figure panel.
func FormatGrid(points []GridPoint, metric func(GridPoint) float64, name string) string {
	if len(points) == 0 {
		return "(no data)\n"
	}
	// Collect method (pi, sigma) rows and beta columns.
	type method struct{ pi, sigma string }
	var methods []method
	seen := map[method]bool{}
	betas := []int{}
	seenBeta := map[int]bool{}
	vals := map[method]map[int]float64{}
	for _, p := range points {
		m := method{p.Pi, p.Sigma}
		if !seen[m] {
			seen[m] = true
			methods = append(methods, m)
			vals[m] = map[int]float64{}
		}
		if !seenBeta[p.Beta] {
			seenBeta[p.Beta] = true
			betas = append(betas, p.Beta)
		}
		vals[m][p.Beta] = metric(p)
	}
	out := fmt.Sprintf("%-16s", name+" \\ beta")
	for _, b := range betas {
		out += fmt.Sprintf("%10d", b)
	}
	out += "\n"
	for _, m := range methods {
		out += fmt.Sprintf("%-16s", m.pi+"/"+m.sigma)
		for _, b := range betas {
			out += fmt.Sprintf("%10.2f", vals[m][b])
		}
		out += "\n"
	}
	return out
}

// EdgeCount is a convenience for reports.
func (env *Env) EdgeCount() int { return env.DS.G.NumEdges() }

// NetworkPathLen returns the average query path length in segments.
func (env *Env) NetworkPathLen() float64 {
	_, segs, _ := env.DS.AvgQueryStats(env.Queries)
	return segs
}
