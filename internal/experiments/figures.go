package experiments

import (
	"fmt"
	"sort"
	"time"

	"pathhist/internal/card"
	"pathhist/internal/metrics"
	"pathhist/internal/query"
	"pathhist/internal/snt"
	"pathhist/internal/temporal"
)

// DefaultPartitionDays is the Figure 10/11 partition-size sweep: 7, 30, 90,
// 365 days, and 0 for the single FULL partition.
var DefaultPartitionDays = []int{7, 30, 90, 365, 0}

// partLabel names a partition size like the paper's x-axes.
func partLabel(days int) string {
	if days == 0 {
		return "FULL"
	}
	return fmt.Sprintf("%d", days)
}

// MemoryRow is one bar group of Figure 10a plus the setup time of 10c.
// ForestMiB is the construction-time tree layout of the configured kind
// (the paper's per-layout comparison); FrozenMiB is the columnar layout the
// index actually serves from after freezing.
type MemoryRow struct {
	Label        string // partition size or "BT"
	Partitions   int
	CMiB         float64
	WTMiB        float64
	UserMiB      float64
	ForestMiB    float64
	FrozenMiB    float64
	TotalMiB     float64
	SetupSeconds float64
}

const mib = 1024 * 1024

// RunMemory reproduces Figures 10a and 10c: index memory by component and
// setup time for each partition size (CSS forest), plus the B+-tree forest
// variant on a single partition ("BT").
func (env *Env) RunMemory(partDays []int) []MemoryRow {
	var rows []MemoryRow
	emit := func(label string, tree temporal.TreeKind, days int) {
		ix := env.Index(tree, days, 0)
		m := ix.Memory()
		rows = append(rows, MemoryRow{
			Label:        label,
			Partitions:   ix.NumPartitions(),
			CMiB:         float64(m.CBytes) / mib,
			WTMiB:        float64(m.WTBytes) / mib,
			UserMiB:      float64(m.UserBytes) / mib,
			ForestMiB:    float64(ix.Stats().TreeBytes) / mib,
			FrozenMiB:    float64(m.ForestBytes) / mib,
			TotalMiB:     float64(m.Total()) / mib,
			SetupSeconds: ix.Stats().SetupTime.Seconds(),
		})
	}
	for _, d := range partDays {
		emit(partLabel(d), temporal.CSS, d)
	}
	emit("BT", temporal.BPlus, 0)
	return rows
}

// TodMemoryRow is one point of Figure 10b.
type TodMemoryRow struct {
	Label         string
	BucketMinutes int
	MiB           float64
}

// RunTodMemory reproduces Figure 10b: time-of-day histogram memory per
// partition size for bucket widths of 1, 5 and 10 minutes.
func (env *Env) RunTodMemory(partDays []int, bucketMinutes []int) []TodMemoryRow {
	var rows []TodMemoryRow
	for _, d := range partDays {
		for _, bm := range bucketMinutes {
			ix := env.Index(temporal.CSS, d, bm*60)
			rows = append(rows, TodMemoryRow{
				Label:         partLabel(d),
				BucketMinutes: bm,
				MiB:           float64(ix.Memory().TodBytes) / mib,
			})
		}
	}
	return rows
}

// QErrorRow is one box of Figure 11a.
type QErrorRow struct {
	Mode        string
	SubQueries  int
	MeanLog10   float64
	MedianLog10 float64
	P90Log10    float64
}

// RunQError reproduces Figure 11a: the q-error of the five estimator modes
// over sub-queries derived with πZ, σR and β=20 (Section 6.4 runs 5,000).
func (env *Env) RunQError(maxSubQueries int) []QErrorRow {
	// Derive sub-queries from the query set with πZ.
	ixCSS := env.Index(temporal.CSS, 0, 900)
	ixBT := env.Index(temporal.BPlus, 0, 900)
	pt := query.Partitioner{Kind: query.ZoneKind}
	var subs []query.SPQ
	for _, q := range env.Queries {
		spq := SPQFor(q, TemporalFilters, 20)
		subs = append(subs, pt.Partition(env.DS.G, spq)...)
		if len(subs) >= maxSubQueries {
			subs = subs[:maxSubQueries]
			break
		}
	}
	modes := []struct {
		mode card.Mode
		ix   *snt.Index
	}{
		{card.ISA, ixCSS},
		{card.BTFast, ixBT},
		{card.CSSFast, ixCSS},
		{card.BTAcc, ixBT},
		{card.CSSAcc, ixCSS},
	}
	var rows []QErrorRow
	for _, m := range modes {
		est := card.New(m.ix, m.mode)
		var logQs []float64
		for _, s := range subs {
			bhat, ok := est.Estimate(s.Path, s.Interval, s.Filter)
			if !ok {
				continue
			}
			actual := float64(m.ix.CountMatches(s.Path, s.Interval, s.Filter, 0))
			logQs = append(logQs, metrics.Log10(metrics.QError(bhat, actual)))
		}
		rows = append(rows, QErrorRow{
			Mode:        m.mode.String(),
			SubQueries:  len(logQs),
			MeanLog10:   metrics.Mean(logQs),
			MedianLog10: metrics.Percentile(logQs, 50),
			P90Log10:    metrics.Percentile(logQs, 90),
		})
	}
	return rows
}

// EstimatorRuntimeRow is one line point of Figures 11b and 11c.
type EstimatorRuntimeRow struct {
	Label      string // partition size
	Config     string // CSS, CSS-Fast, CSS-Acc, BT, BT-Fast, BT-Acc, ISA
	MsPerQuery float64
	SMAPE      float64
}

// RunEstimatorSweep reproduces Figures 11b and 11c: query runtime and
// accuracy for each tree/estimator pairing across partition sizes, with πZ,
// σR and β=20 (Section 6.4).
func (env *Env) RunEstimatorSweep(partDays []int) []EstimatorRuntimeRow {
	type cfg struct {
		name string
		tree temporal.TreeKind
		mode card.Mode
		tod  int
	}
	cfgs := []cfg{
		{"CSS", temporal.CSS, card.Off, 0},
		{"CSS-Fast", temporal.CSS, card.CSSFast, 0},
		{"CSS-Acc", temporal.CSS, card.CSSAcc, 900},
		{"BT", temporal.BPlus, card.Off, 0},
		{"BT-Fast", temporal.BPlus, card.BTFast, 0},
		{"BT-Acc", temporal.BPlus, card.BTAcc, 900},
		{"ISA", temporal.CSS, card.ISA, 0},
	}
	pt := query.Partitioner{Kind: query.ZoneKind}
	var rows []EstimatorRuntimeRow
	for _, days := range partDays {
		for _, c := range cfgs {
			ix := env.Index(c.tree, days, c.tod)
			var est *card.Estimator
			if c.mode != card.Off {
				est = card.New(ix, c.mode)
			}
			p := env.RunCell(ix, TemporalFilters, pt, query.SigmaR, 20, est)
			rows = append(rows, EstimatorRuntimeRow{
				Label:      partLabel(days),
				Config:     c.name,
				MsPerQuery: p.MsPerQuery,
				SMAPE:      p.SMAPE,
			})
		}
	}
	return rows
}

// IndexBuildTiming measures a cold build (used by Figure 10c and the
// BenchmarkIndexBuild* benches).
func (env *Env) IndexBuildTiming(tree temporal.TreeKind, partDays int) time.Duration {
	ix := snt.Build(env.DS.G, env.DS.Store, snt.Options{Tree: tree, PartitionDays: partDays})
	return ix.Stats().SetupTime
}

// FormatMemory renders Figure 10a/10c rows.
func FormatMemory(rows []MemoryRow) string {
	out := fmt.Sprintf("%-8s%12s%12s%12s%12s%12s%12s%12s%10s\n",
		"part", "partitions", "C MiB", "WT MiB", "user MiB", "tree MiB", "frozen MiB", "total MiB", "setup s")
	for _, r := range rows {
		out += fmt.Sprintf("%-8s%12d%12.2f%12.2f%12.2f%12.2f%12.2f%12.2f%10.2f\n",
			r.Label, r.Partitions, r.CMiB, r.WTMiB, r.UserMiB, r.ForestMiB, r.FrozenMiB, r.TotalMiB, r.SetupSeconds)
	}
	return out
}

// FormatTodMemory renders Figure 10b rows.
func FormatTodMemory(rows []TodMemoryRow) string {
	out := fmt.Sprintf("%-8s%14s%12s\n", "part", "bucket (min)", "MiB")
	for _, r := range rows {
		out += fmt.Sprintf("%-8s%14d%12.2f\n", r.Label, r.BucketMinutes, r.MiB)
	}
	return out
}

// FormatQError renders Figure 11a rows.
func FormatQError(rows []QErrorRow) string {
	out := fmt.Sprintf("%-10s%12s%14s%14s%14s\n", "mode", "subqueries", "mean log10q", "med log10q", "p90 log10q")
	for _, r := range rows {
		out += fmt.Sprintf("%-10s%12d%14.3f%14.3f%14.3f\n",
			r.Mode, r.SubQueries, r.MeanLog10, r.MedianLog10, r.P90Log10)
	}
	return out
}

// FormatEstimatorSweep renders Figure 11b/11c rows grouped by config.
func FormatEstimatorSweep(rows []EstimatorRuntimeRow, metric func(EstimatorRuntimeRow) float64, name string) string {
	labels := []string{}
	seenL := map[string]bool{}
	configs := []string{}
	seenC := map[string]bool{}
	vals := map[string]map[string]float64{}
	for _, r := range rows {
		if !seenL[r.Label] {
			seenL[r.Label] = true
			labels = append(labels, r.Label)
		}
		if !seenC[r.Config] {
			seenC[r.Config] = true
			configs = append(configs, r.Config)
		}
		if vals[r.Config] == nil {
			vals[r.Config] = map[string]float64{}
		}
		vals[r.Config][r.Label] = metric(r)
	}
	sort.Strings(configs)
	out := fmt.Sprintf("%-10s", name+" \\ part")
	for _, l := range labels {
		out += fmt.Sprintf("%10s", l)
	}
	out += "\n"
	for _, c := range configs {
		out += fmt.Sprintf("%-10s", c)
		for _, l := range labels {
			out += fmt.Sprintf("%10.2f", vals[c][l])
		}
		out += "\n"
	}
	return out
}
