package experiments

import (
	"strings"
	"sync"
	"testing"

	"pathhist/internal/query"
	"pathhist/internal/temporal"
	"pathhist/internal/workload"
)

// tinyEnv is shared across tests (building the dataset once).
var (
	tinyOnce sync.Once
	tinyEnvV *Env
)

func tinyEnv(t testing.TB) *Env {
	t.Helper()
	tinyOnce.Do(func() {
		cfg := workload.SmallConfig()
		cfg.Net.Cities = 3
		cfg.Net.GridSize = 5
		cfg.Drivers = 25
		cfg.Days = 60
		cfg.TargetTrips = 1200
		tinyEnvV = NewEnv(cfg, 0.1, 5)
	})
	if len(tinyEnvV.Queries) == 0 {
		t.Fatal("tiny env has no queries")
	}
	return tinyEnvV
}

func TestQueryTypeNames(t *testing.T) {
	if TemporalFilters.String() == "" || UserFilters.String() == "" || SPQOnly.String() == "" {
		t.Error("names empty")
	}
}

func TestSPQFor(t *testing.T) {
	env := tinyEnv(t)
	q := env.Queries[0]
	tf := SPQFor(q, TemporalFilters, 20)
	if !tf.Interval.IsPeriodic() || tf.Filter.HasPredicate() || tf.Filter.ExcludeTraj != q.Traj {
		t.Errorf("temporal SPQ wrong: %+v", tf)
	}
	uf := SPQFor(q, UserFilters, 20)
	if !uf.Filter.HasPredicate() || uf.Filter.User != q.User {
		t.Errorf("user SPQ wrong: %+v", uf)
	}
	so := SPQFor(q, SPQOnly, 20)
	if so.Interval.IsPeriodic() || so.Interval.End != q.T0 {
		t.Errorf("SPQ-only wrong: %+v", so)
	}
}

func TestRunCellProducesSaneMetrics(t *testing.T) {
	env := tinyEnv(t)
	ix := env.Index(temporal.CSS, 0, 0)
	p := env.RunCell(ix, TemporalFilters, query.Partitioner{Kind: query.ZoneKind}, query.SigmaR, 20, nil)
	if p.Queries != len(env.Queries) {
		t.Fatalf("queries = %d", p.Queries)
	}
	if p.SMAPE <= 0 || p.SMAPE > 100 {
		t.Errorf("sMAPE = %v implausible", p.SMAPE)
	}
	if p.WeightedE <= 0 || p.WeightedE > 150 {
		t.Errorf("weighted error = %v implausible", p.WeightedE)
	}
	if p.AvgSubLen < 1 {
		t.Errorf("avg sub length = %v", p.AvgSubLen)
	}
	if p.LogL >= 0 || p.LogL < -12 {
		t.Errorf("logL = %v implausible", p.LogL)
	}
	if p.MsPerQuery <= 0 {
		t.Errorf("ms/query = %v", p.MsPerQuery)
	}
}

func TestBaselinesOrdering(t *testing.T) {
	env := tinyEnv(t)
	b := env.RunBaselines()
	ix := env.Index(temporal.CSS, 0, 0)
	online := env.RunCell(ix, TemporalFilters, query.Partitioner{Kind: query.ZoneKind}, query.SigmaR, 20, nil)
	// Section 6.1: speed limits worst, per-segment-all better, online
	// methods best.
	if !(b.SpeedLimitSMAPE > b.SegmentAllSMAPE) {
		t.Errorf("speed-limit (%v) should be worse than segment-all (%v)",
			b.SpeedLimitSMAPE, b.SegmentAllSMAPE)
	}
	if !(b.SegmentAllSMAPE > online.SMAPE) {
		t.Errorf("segment-all (%v) should be worse than online (%v)",
			b.SegmentAllSMAPE, online.SMAPE)
	}
}

func TestPeriodicBeatsSPQOnly(t *testing.T) {
	// Figure 5c: SPQ-only cannot observe time-of-day congestion.
	env := tinyEnv(t)
	ix := env.Index(temporal.CSS, 0, 0)
	pt := query.Partitioner{Kind: query.ZoneKind}
	periodic := env.RunCell(ix, TemporalFilters, pt, query.SigmaR, 20, nil)
	fixed := env.RunCell(ix, SPQOnly, pt, query.SigmaR, 20, nil)
	if periodic.SMAPE >= fixed.SMAPE {
		t.Errorf("periodic (%v) should beat SPQ-only (%v)", periodic.SMAPE, fixed.SMAPE)
	}
	// And SPQ-only is faster (longer sub-paths, fewer scans).
	if fixed.AvgSubLen <= periodic.AvgSubLen {
		t.Errorf("SPQ-only sub-paths (%v) should be longer than periodic (%v)",
			fixed.AvgSubLen, periodic.AvgSubLen)
	}
}

func TestRunGridAndFormat(t *testing.T) {
	env := tinyEnv(t)
	spec := GridSpec{
		QType:        TemporalFilters,
		Partitioners: []query.Partitioner{{Kind: query.ZoneKind}, {Kind: query.Regular, P: 1}},
		Splitters:    []query.Splitter{query.SigmaR},
		Betas:        []int{10, 20},
	}
	points := env.RunGrid(spec)
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	txt := FormatGrid(points, func(p GridPoint) float64 { return p.SMAPE }, "sMAPE")
	if !strings.Contains(txt, "piZ/sigmaR") || !strings.Contains(txt, "pi1/sigmaR") {
		t.Errorf("table missing methods:\n%s", txt)
	}
	if FormatGrid(nil, func(p GridPoint) float64 { return 0 }, "x") == "" {
		t.Error("empty grid format")
	}
}

func TestRunMemoryShape(t *testing.T) {
	env := tinyEnv(t)
	rows := env.RunMemory([]int{7, 0})
	if len(rows) != 3 { // 7, FULL, BT
		t.Fatalf("rows = %d", len(rows))
	}
	weekly, full, bt := rows[0], rows[1], rows[2]
	if weekly.Partitions <= full.Partitions {
		t.Error("weekly should have more partitions")
	}
	// Figure 10a: C grows with partitions; forest roughly flat; BT forest
	// larger than CSS forest.
	if weekly.CMiB <= full.CMiB {
		t.Errorf("C: weekly %v <= full %v", weekly.CMiB, full.CMiB)
	}
	if bt.ForestMiB <= full.ForestMiB {
		t.Errorf("BT forest (%v) should exceed CSS forest (%v)", bt.ForestMiB, full.ForestMiB)
	}
	// The served (frozen columnar) forest must undercut both tree layouts.
	for _, r := range []MemoryRow{full, bt} {
		if r.FrozenMiB >= r.ForestMiB {
			t.Errorf("%s: frozen forest (%v MiB) not smaller than tree layout (%v MiB)",
				r.Label, r.FrozenMiB, r.ForestMiB)
		}
	}
	if weekly.SetupSeconds <= 0 || full.TotalMiB <= 0 {
		t.Error("missing stats")
	}
	if got := FormatMemory(rows); !strings.Contains(got, "FULL") || !strings.Contains(got, "BT") {
		t.Errorf("FormatMemory:\n%s", got)
	}
}

func TestRunTodMemoryShape(t *testing.T) {
	env := tinyEnv(t)
	rows := env.RunTodMemory([]int{0}, []int{1, 10})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Finer buckets cost more (Figure 10b).
	if rows[0].MiB <= rows[1].MiB {
		t.Errorf("1-min buckets (%v) should exceed 10-min (%v)", rows[0].MiB, rows[1].MiB)
	}
	if got := FormatTodMemory(rows); !strings.Contains(got, "FULL") {
		t.Errorf("FormatTodMemory:\n%s", got)
	}
}

func TestRunQErrorOrdering(t *testing.T) {
	env := tinyEnv(t)
	rows := env.RunQError(300)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byMode := map[string]QErrorRow{}
	for _, r := range rows {
		byMode[r.Mode] = r
		if r.SubQueries == 0 {
			t.Fatalf("mode %s evaluated no sub-queries", r.Mode)
		}
	}
	// Figure 11a: ISA worst by a wide margin; Acc modes beat Fast modes.
	if byMode["ISA"].MeanLog10 <= byMode["CSS-Fast"].MeanLog10 {
		t.Errorf("ISA (%v) should be worse than CSS-Fast (%v)",
			byMode["ISA"].MeanLog10, byMode["CSS-Fast"].MeanLog10)
	}
	if byMode["CSS-Acc"].MeanLog10 > byMode["CSS-Fast"].MeanLog10 {
		t.Errorf("CSS-Acc (%v) should beat CSS-Fast (%v)",
			byMode["CSS-Acc"].MeanLog10, byMode["CSS-Fast"].MeanLog10)
	}
	if got := FormatQError(rows); !strings.Contains(got, "ISA") {
		t.Errorf("FormatQError:\n%s", got)
	}
}

func TestRunEstimatorSweep(t *testing.T) {
	env := tinyEnv(t)
	rows := env.RunEstimatorSweep([]int{0})
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	byCfg := map[string]EstimatorRuntimeRow{}
	for _, r := range rows {
		byCfg[r.Config] = r
		if r.MsPerQuery <= 0 {
			t.Fatalf("%s: ms/query %v", r.Config, r.MsPerQuery)
		}
	}
	// Figure 11c: estimator effect on accuracy is minuscule (within a few
	// percent of the no-estimator configuration).
	base := byCfg["CSS"].SMAPE
	for _, cfgName := range []string{"CSS-Fast", "CSS-Acc", "ISA"} {
		if d := byCfg[cfgName].SMAPE - base; d > 3 || d < -3 {
			t.Errorf("%s shifts sMAPE by %v (base %v)", cfgName, d, base)
		}
	}
	if got := FormatEstimatorSweep(rows, func(r EstimatorRuntimeRow) float64 { return r.MsPerQuery }, "ms"); !strings.Contains(got, "CSS-Acc") {
		t.Errorf("FormatEstimatorSweep:\n%s", got)
	}
}

func TestIndexBuildTiming(t *testing.T) {
	env := tinyEnv(t)
	if d := env.IndexBuildTiming(temporal.CSS, 0); d <= 0 {
		t.Errorf("build timing = %v", d)
	}
}

func TestEnvHelpers(t *testing.T) {
	env := tinyEnv(t)
	if env.EdgeCount() <= 0 || env.NetworkPathLen() < 5 {
		t.Errorf("helpers: edges=%d pathlen=%v", env.EdgeCount(), env.NetworkPathLen())
	}
	// Index caching returns identical pointers.
	a := env.Index(temporal.CSS, 0, 0)
	b := env.Index(temporal.CSS, 0, 0)
	if a != b {
		t.Error("index not cached")
	}
}

func TestAblations(t *testing.T) {
	env := tinyEnv(t)
	zb := env.RunZoneBetaAblation(20)
	if len(zb) != 3 {
		t.Fatalf("zone-beta rows = %d", len(zb))
	}
	for _, r := range zb {
		if r.SMAPE <= 0 || r.MsPerQuery <= 0 {
			t.Fatalf("%s: empty metrics %+v", r.Name, r)
		}
	}
	// Relaxing β in some zones coarsens the final partitioning there.
	if zb[1].AvgSubLen < zb[0].AvgSubLen && zb[2].AvgSubLen < zb[0].AvgSubLen {
		t.Errorf("zone-relaxed β should allow longer sub-paths somewhere: %+v", zb)
	}
	se := env.RunShiftEnlargeAblation(20)
	if len(se) != 2 || se[0].Name == se[1].Name {
		t.Fatalf("shift rows = %+v", se)
	}
	sp := env.RunSplitterAblation(20)
	if len(sp) != 2 {
		t.Fatalf("splitter rows = %d", len(sp))
	}
	if got := FormatAblation(zb); !strings.Contains(got, "uniform") {
		t.Errorf("FormatAblation:\n%s", got)
	}
}
