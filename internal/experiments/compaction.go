package experiments

import (
	"fmt"
	"strings"
	"time"

	"pathhist/internal/query"
	"pathhist/internal/snt"
	"pathhist/internal/traj"
)

// Compaction sweep: the ingestion-degradation experiment behind PR 4. An
// index fragmented by many small Extend batches pays one FM-index backward
// search per partition per sub-query, so query latency grows with ingest
// count; compaction merges the partitions back and must return latency to
// (within noise of) a single-partition from-scratch build.

// CompactionRow is one engine layout measured over the query set.
type CompactionRow struct {
	Name       string
	Partitions int
	MsPerQuery float64
	IndexBytes int
	// CompactionMs is the one-off merge cost (only on the compacted row).
	CompactionMs float64
}

// IngestionCuts picks up to nBatches quiescent split points in the newest
// half of a store (sorting it as a side effect): the resulting batches
// each start strictly after everything before them has ended — the Extend
// precondition — and are spread evenly over the available boundaries. nil
// means the store has too few boundaries to split at all.
func IngestionCuts(s *traj.Store, nBatches int) []int {
	cuts := s.QuiescentCuts()
	if len(cuts) < 2 {
		return nil
	}
	tail := cuts[len(cuts)/2:]
	if nBatches < len(tail) {
		stride := len(tail) / nBatches
		picked := make([]int, 0, nBatches)
		for i := 0; i < len(tail) && len(picked) < nBatches; i += stride {
			picked = append(picked, tail[i])
		}
		tail = picked
	}
	return tail
}

// FragmentedIndex builds an index over the oldest half of the dataset and
// ingests the rest through up to nBatches Extend batches cut at quiescent
// boundaries, returning the fragmented index (one partition per batch plus
// the base).
func (env *Env) FragmentedIndex(nBatches int) *snt.Index {
	s := env.DS.Store.Slice(0, env.DS.Store.Len())
	cuts := IngestionCuts(s, nBatches)
	if cuts == nil {
		// No split points: the whole dataset in one build.
		return snt.Build(env.DS.G, s, snt.Options{})
	}
	ix := snt.Build(env.DS.G, s.Slice(0, cuts[0]), snt.Options{})
	for b := range cuts {
		hi := s.Len()
		if b+1 < len(cuts) {
			hi = cuts[b+1]
		}
		next, err := ix.Extend(s.Slice(cuts[b], hi))
		if err != nil {
			panic(fmt.Sprintf("experiments: fragmenting extend %d: %v", b, err))
		}
		ix = next
	}
	return ix
}

// timeQueries measures cold average query latency over the query set (both
// caches disabled so every query pays its scans).
func (env *Env) timeQueries(ix *snt.Index) float64 {
	eng := query.NewEngine(ix, query.Config{
		Partitioner: query.Partitioner{Kind: query.ZoneKind}, BucketWidth: 10,
		DisableCache: true, DisableFullResultCache: true,
	})
	start := time.Now()
	for _, q := range env.Queries {
		_ = eng.TripQuery(SPQFor(q, TemporalFilters, 20))
	}
	return float64(time.Since(start).Microseconds()) / 1000 / float64(len(env.Queries))
}

// RunCompactionSweep measures query latency on the fragmented layout, the
// compacted layout, and a single-partition from-scratch rebuild.
func (env *Env) RunCompactionSweep(nBatches int) []CompactionRow {
	frag := env.FragmentedIndex(nBatches)
	rows := []CompactionRow{{
		Name:       fmt.Sprintf("fragmented (%d extends)", frag.NumPartitions()-1),
		Partitions: frag.NumPartitions(),
		MsPerQuery: env.timeQueries(frag),
		IndexBytes: frag.Memory().Total(),
	}}
	compacted, st, err := frag.Compact(snt.CompactionPolicy{TriggerPartitions: -1})
	if err != nil {
		panic(fmt.Sprintf("experiments: compaction: %v", err))
	}
	rows = append(rows, CompactionRow{
		Name:         "compacted",
		Partitions:   compacted.NumPartitions(),
		MsPerQuery:   env.timeQueries(compacted),
		IndexBytes:   compacted.Memory().Total(),
		CompactionMs: float64(st.Elapsed.Microseconds()) / 1000,
	})
	rebuilt := env.Index(0, 0, 0)
	rows = append(rows, CompactionRow{
		Name:       "rebuilt from scratch",
		Partitions: rebuilt.NumPartitions(),
		MsPerQuery: env.timeQueries(rebuilt),
		IndexBytes: rebuilt.Memory().Total(),
	})
	return rows
}

// FormatCompaction renders the sweep as an aligned table.
func FormatCompaction(rows []CompactionRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s%12s%12s%12s%14s\n", "layout", "partitions", "ms/query", "MiB", "compact ms")
	for _, r := range rows {
		compact := ""
		if r.CompactionMs > 0 {
			compact = fmt.Sprintf("%.1f", r.CompactionMs)
		}
		fmt.Fprintf(&b, "%-26s%12d%12.3f%12.2f%14s\n",
			r.Name, r.Partitions, r.MsPerQuery, float64(r.IndexBytes)/1024/1024, compact)
	}
	return b.String()
}
