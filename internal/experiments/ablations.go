package experiments

import (
	"fmt"

	"pathhist/internal/metrics"
	"pathhist/internal/network"
	"pathhist/internal/query"
	"pathhist/internal/temporal"
)

// AblationRow is one configuration of an ablation sweep.
type AblationRow struct {
	Name       string
	SMAPE      float64
	WeightedE  float64
	LogL       float64
	AvgSubLen  float64
	MsPerQuery float64
}

// runNamedCell evaluates one explicit engine config over the query set.
func (env *Env) runNamedCell(name string, qt QueryType, cfg query.Config, beta int) AblationRow {
	ix := env.Index(temporal.CSS, 0, 0)
	eng := query.NewEngine(ix, cfg)
	g := env.DS.G
	var row AblationRow
	row.Name = name
	n := float64(len(env.Queries))
	if n == 0 {
		return row
	}
	var elapsedMs float64
	for _, q := range env.Queries {
		res := eng.TripQuery(SPQFor(q, qt, beta))
		elapsedMs += float64(res.Elapsed.Microseconds()) / 1000
		row.SMAPE += metrics.SMAPETerm(res.PredictedMean(), float64(q.Actual))
		actuals := subActuals(q, res.Subs)
		total := g.PathLength(q.Path)
		for i := range res.Subs {
			w := g.PathLength(res.Subs[i].Path) / total
			row.WeightedE += metrics.WeightedErrorTerm(w, res.Subs[i].MeanX(), float64(actuals[i]))
		}
		row.LogL += res.Hist.LogLikelihood(int(q.Actual), Gamma, LogLTmin, LogLTmax)
		row.AvgSubLen += res.AvgSubPathLen()
	}
	row.SMAPE /= n
	row.WeightedE /= n
	row.LogL /= n
	row.AvgSubLen /= n
	row.MsPerQuery = elapsedMs / n
	return row
}

// RunZoneBetaAblation evaluates the paper's outlook extension: per-zone β
// requirements (smaller sample sizes in rural zones) against the uniform β.
func (env *Env) RunZoneBetaAblation(beta int) []AblationRow {
	base := query.Config{Partitioner: query.Partitioner{Kind: query.ZoneKind}, BucketWidth: 10}
	relaxedRural := base
	relaxedRural.ZoneBetas = map[network.Zone]int{
		network.ZoneRural:       beta / 2,
		network.ZoneSummerHouse: beta / 2,
	}
	relaxedCity := base
	relaxedCity.ZoneBetas = map[network.Zone]int{
		network.ZoneCity:      beta / 2,
		network.ZoneAmbiguous: beta / 2,
	}
	return []AblationRow{
		env.runNamedCell(fmt.Sprintf("uniform beta=%d", beta), TemporalFilters, base, beta),
		env.runNamedCell(fmt.Sprintf("rural beta=%d", beta/2), TemporalFilters, relaxedRural, beta),
		env.runNamedCell(fmt.Sprintf("city beta=%d", beta/2), TemporalFilters, relaxedCity, beta),
	}
}

// RunShiftEnlargeAblation evaluates the Dai-et-al interval adaptation
// (Section 4.2) against plain per-sub-query windows.
func (env *Env) RunShiftEnlargeAblation(beta int) []AblationRow {
	on := query.Config{Partitioner: query.Partitioner{Kind: query.ZoneKind}, BucketWidth: 10}
	off := on
	off.DisableShiftEnlarge = true
	return []AblationRow{
		env.runNamedCell("shift-and-enlarge on", TemporalFilters, on, beta),
		env.runNamedCell("shift-and-enlarge off", TemporalFilters, off, beta),
	}
}

// RunSplitterAblation isolates σR vs σL on the πN partitioning where the
// splitter does all the work.
func (env *Env) RunSplitterAblation(beta int) []AblationRow {
	r := query.Config{Partitioner: query.Partitioner{Kind: query.None}, Splitter: query.SigmaR, BucketWidth: 10}
	l := r
	l.Splitter = query.SigmaL
	return []AblationRow{
		env.runNamedCell("piN/sigmaR", TemporalFilters, r, beta),
		env.runNamedCell("piN/sigmaL", TemporalFilters, l, beta),
	}
}

// FormatAblation renders ablation rows.
func FormatAblation(rows []AblationRow) string {
	out := fmt.Sprintf("%-24s%10s%10s%10s%10s%12s\n",
		"config", "sMAPE", "wErr", "logL", "subLen", "ms/query")
	for _, r := range rows {
		out += fmt.Sprintf("%-24s%10.2f%10.2f%10.2f%10.2f%12.2f\n",
			r.Name, r.SMAPE, r.WeightedE, r.LogL, r.AvgSubLen, r.MsPerQuery)
	}
	return out
}
