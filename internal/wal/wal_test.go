package wal

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, path string) *WAL {
	t.Helper()
	w, err := Open(path)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

func appendT(t *testing.T, w *WAL, prevTotal uint64, trajs int, batch []byte) {
	t.Helper()
	if err := w.Append(prevTotal, trajs, batch); err != nil {
		t.Fatalf("Append(prevTotal=%d): %v", prevTotal, err)
	}
}

// batch returns a recognisable payload of the given length.
func batch(seed byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w := openT(t, path)
	appendT(t, w, 0, 3, batch(1, 100))
	appendT(t, w, 3, 2, batch(2, 37)) // odd length exercises padding
	appendT(t, w, 5, 7, batch(3, 8))
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := openT(t, path)
	recs, err := r.Records()
	if err != nil {
		t.Fatalf("Records: %v", err)
	}
	want := []struct {
		prev  uint64
		trajs uint32
		seed  byte
		n     int
	}{{0, 3, 1, 100}, {3, 2, 2, 37}, {5, 7, 3, 8}}
	if len(recs) != len(want) {
		t.Fatalf("got %d records, want %d", len(recs), len(want))
	}
	for i, wr := range want {
		got := recs[i]
		if got.PrevTotal != wr.prev || got.Trajs != wr.trajs {
			t.Errorf("record %d: got (prev=%d trajs=%d), want (%d, %d)",
				i, got.PrevTotal, got.Trajs, wr.prev, wr.trajs)
		}
		exp := batch(wr.seed, wr.n)
		if string(got.Batch) != string(exp) {
			t.Errorf("record %d: payload mismatch (len %d vs %d)", i, len(got.Batch), len(exp))
		}
	}
	if st := r.Stats(); st.Records != 3 || st.TornTail {
		t.Errorf("stats after clean reopen: %+v", st)
	}
}

func TestEmptyFileRoundTrips(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w := openT(t, path)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r := openT(t, path)
	recs, err := r.Records()
	if err != nil || len(recs) != 0 {
		t.Fatalf("fresh log reopen: recs=%d err=%v", len(recs), err)
	}
}

// TestBitFlipFailsClosed flips one bit in every byte position of a record's
// payload and header in turn; each damaged file must refuse to open (CRC or
// structural error), never silently drop or alter the record. This mirrors
// the PR 5 snapshot corruption table.
func TestBitFlipFailsClosed(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w := openT(t, path)
	appendT(t, w, 0, 2, batch(9, 48))
	w.Close()
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one bit in each byte of the record (header + payload). Skip the
	// file header: magic/version damage has its own test below. Skip the
	// record header's reserved + pad words (bytes 12..16 and 28..32 of the
	// record header), which are not covered by any check.
	recOff := headerSize
	for pos := recOff; pos < len(pristine); pos++ {
		rel := pos - recOff
		if (rel >= 12 && rel < 16) || (rel >= 28 && rel < 32) {
			continue
		}
		if rel >= recHdrSize+48 {
			continue // padding bytes, not covered by the CRC
		}
		mut := append([]byte(nil), pristine...)
		mut[pos] ^= 0x10
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := Open(path)
		if err == nil {
			// A header mutation can legitimately turn the record into a
			// torn tail (declared length now exceeds the file) — that is a
			// safe outcome only if the record is GONE, not altered.
			recs, rerr := w.Records()
			w.Close()
			if rerr == nil && len(recs) > 0 {
				t.Fatalf("bit flip at offset %d: record survived corruption", pos)
			}
			continue
		}
		if !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrCorrupt) {
			t.Errorf("bit flip at offset %d: unexpected error class: %v", pos, err)
		}
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w := openT(t, path)
	appendT(t, w, 0, 1, batch(1, 16))
	w.Close()
	data, _ := os.ReadFile(path)

	mut := append([]byte(nil), data...)
	mut[0] ^= 0xff
	os.WriteFile(path, mut, 0o644)
	if _, err := Open(path); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: got %v", err)
	}

	mut = append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(mut[8:], Version+1)
	os.WriteFile(path, mut, 0o644)
	if _, err := Open(path); !errors.Is(err, ErrVersion) {
		t.Errorf("bad version: got %v", err)
	}
}

// TestTornTailRecovered simulates a crash mid-append: the file ends inside
// the last record at every possible byte position. Open must recover the
// intact prefix and drop the torn record — it was never acknowledged.
func TestTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w := openT(t, path)
	appendT(t, w, 0, 3, batch(1, 64))
	w.Close()
	oneRec, _ := os.ReadFile(path)
	w = openT(t, path)
	appendT(t, w, 3, 2, batch(2, 40))
	w.Close()
	full, _ := os.ReadFile(path)

	for cut := len(oneRec) + 1; cut < len(full); cut++ {
		os.WriteFile(path, full[:cut], 0o644)
		w, err := Open(path)
		if err != nil {
			t.Fatalf("cut at %d: Open: %v", cut, err)
		}
		recs, err := w.Records()
		if err != nil {
			t.Fatalf("cut at %d: Records: %v", cut, err)
		}
		if len(recs) != 1 || recs[0].PrevTotal != 0 {
			t.Fatalf("cut at %d: got %d records, want the intact first one", cut, len(recs))
		}
		st := w.Stats()
		if !st.TornTail || st.TornBytes != int64(cut-len(oneRec)) {
			t.Fatalf("cut at %d: stats %+v", cut, st)
		}
		// The repaired log must accept further appends and reopen cleanly.
		appendT(t, w, 3, 2, batch(2, 40))
		w.Close()
		r := openT(t, path)
		recs, _ = r.Records()
		if len(recs) != 2 {
			t.Fatalf("cut at %d: post-repair append lost: %d records", cut, len(recs))
		}
		r.Close()
	}
}

// TestTornHeader covers a crash before even the 16-byte file header landed.
func TestTornHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	os.WriteFile(path, []byte(Magic[:4]), 0o644)
	w, err := Open(path)
	if err != nil {
		t.Fatalf("Open over torn header: %v", err)
	}
	defer w.Close()
	if st := w.Stats(); !st.TornTail || st.Records != 0 {
		t.Fatalf("stats: %+v", st)
	}
	appendT(t, w, 0, 1, batch(1, 8))
}

func TestRollbackLast(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w := openT(t, path)
	appendT(t, w, 0, 1, batch(1, 24))
	appendT(t, w, 1, 1, batch(2, 24))
	if err := w.RollbackLast(); err != nil {
		t.Fatalf("RollbackLast: %v", err)
	}
	recs, _ := w.Records()
	if len(recs) != 1 || recs[0].PrevTotal != 0 {
		t.Fatalf("after rollback: %d records", len(recs))
	}
	// The rollback must be durable across reopen, and the slot reusable.
	appendT(t, w, 1, 4, batch(3, 24))
	w.Close()
	r := openT(t, path)
	recs, _ = r.Records()
	if len(recs) != 2 || recs[1].Trajs != 4 {
		t.Fatalf("after reopen: %+v", recs)
	}
	r.Close()
	w2 := openT(t, filepath.Join(t.TempDir(), "empty.log"))
	if err := w2.RollbackLast(); err == nil {
		t.Error("RollbackLast on empty log should fail")
	}
}

func TestTruncateCovered(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w := openT(t, path)
	appendT(t, w, 0, 3, batch(1, 32)) // total after: 3
	appendT(t, w, 3, 2, batch(2, 32)) // total after: 5
	appendT(t, w, 5, 4, batch(3, 32)) // total after: 9

	// A snapshot mid-way through a batch must not drop that batch.
	if err := w.TruncateCovered(4); err != nil {
		t.Fatalf("TruncateCovered(4): %v", err)
	}
	recs, _ := w.Records()
	if len(recs) != 2 || recs[0].PrevTotal != 3 {
		t.Fatalf("after partial rotation: %+v", recs)
	}
	// The rewritten file must reopen cleanly with the same tail.
	w.Close()
	w = openT(t, path)
	recs, _ = w.Records()
	if len(recs) != 2 || recs[0].PrevTotal != 3 || recs[1].PrevTotal != 5 {
		t.Fatalf("after rotation reopen: %+v", recs)
	}
	if string(recs[0].Batch) != string(batch(2, 32)) {
		t.Fatal("rotation corrupted the surviving payload")
	}

	// Full coverage empties the log in place.
	if err := w.TruncateCovered(9); err != nil {
		t.Fatalf("TruncateCovered(9): %v", err)
	}
	if recs, _ := w.Records(); len(recs) != 0 {
		t.Fatalf("after full rotation: %d records", len(recs))
	}
	if w.Size() != headerSize {
		t.Fatalf("size after full rotation: %d", w.Size())
	}
	// Appends continue after rotation, and the whole thing reopens.
	appendT(t, w, 9, 1, batch(4, 16))
	w.Close()
	r := openT(t, path)
	recs, _ = r.Records()
	if len(recs) != 1 || recs[0].PrevTotal != 9 {
		t.Fatalf("post-rotation append: %+v", recs)
	}
}

func TestTruncateCoveredNoop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w := openT(t, path)
	appendT(t, w, 10, 5, batch(1, 16))
	if err := w.TruncateCovered(10); err != nil {
		t.Fatal(err)
	}
	if recs, _ := w.Records(); len(recs) != 1 {
		t.Fatal("noop rotation dropped a record")
	}
	if st := w.Stats(); st.Rotations != 0 {
		t.Errorf("noop rotation counted: %+v", st)
	}
}

// TestOutOfOrderRejected: records must be non-decreasing in PrevTotal; a
// spliced or rewound log fails closed.
func TestOutOfOrderRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w := openT(t, path)
	appendT(t, w, 5, 2, batch(1, 16))
	appendT(t, w, 3, 1, batch(2, 16)) // Append itself doesn't police order; scan does
	w.Close()
	if _, err := Open(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("out-of-order log: got %v", err)
	}
}

func TestEmptyBatchRejected(t *testing.T) {
	w := openT(t, filepath.Join(t.TempDir(), "wal.log"))
	if err := w.Append(0, 0, batch(1, 8)); err == nil {
		t.Error("zero-traj append accepted")
	}
	if err := w.Append(0, 1, nil); err == nil {
		t.Error("empty-payload append accepted")
	}
}

func TestStatsAccounting(t *testing.T) {
	w := openT(t, filepath.Join(t.TempDir(), "wal.log"))
	appendT(t, w, 0, 1, batch(1, 100))
	appendT(t, w, 1, 1, batch(2, 100))
	st := w.Stats()
	if st.Appends != 2 || st.Records != 2 {
		t.Errorf("appends: %+v", st)
	}
	if st.FsyncNanos <= 0 {
		t.Errorf("fsync time not accounted: %+v", st)
	}
	if st.Bytes != w.Size() {
		t.Errorf("bytes %d != size %d", st.Bytes, w.Size())
	}
}
