package wal

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"pathhist/internal/failpoint"
)

// errDisk is the simulated I/O failure every test here injects.
var errDisk = errors.New("simulated disk failure")

// TestAppendSyncFailureIsSticky is the fail-stop contract: after a failed
// fsync the log refuses every further mutation with ErrWALFailed, and a
// restart's Open recovers exactly the records appended before the failure.
func TestAppendSyncFailureIsSticky(t *testing.T) {
	defer failpoint.Reset()
	path := filepath.Join(t.TempDir(), "wal.log")
	w := openT(t, path)
	appendT(t, w, 0, 2, batch(1, 64))
	appendT(t, w, 2, 3, batch(2, 48))

	// Fail the third append's fsync.
	failpoint.Enable(FailpointAppendSync, failpoint.Injection{Err: errDisk})
	err := w.Append(5, 1, batch(3, 32))
	if !errors.Is(err, errDisk) {
		t.Fatalf("failed append returned %v, want the injected %v", err, errDisk)
	}
	failpoint.Disable(FailpointAppendSync)
	if !w.Failed() {
		t.Fatal("log not marked failed after a sync failure")
	}
	if !w.Stats().Failed {
		t.Fatal("Stats().Failed false after a sync failure")
	}

	// Every further mutation is refused, even though the disk "recovered".
	if err := w.Append(5, 1, batch(4, 16)); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("append after failure returned %v, want ErrWALFailed", err)
	}
	if err := w.RollbackLast(); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("rollback after failure returned %v, want ErrWALFailed", err)
	}
	if err := w.TruncateCovered(5); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("rotation after failure returned %v, want ErrWALFailed", err)
	}

	// Reads keep working: the acknowledged records are still served.
	recs, err := w.Records()
	if err != nil {
		t.Fatalf("Records on a failed log: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("failed log serves %d records, want the 2 acknowledged", len(recs))
	}
	w.Close()

	// Restart: the partial third record was truncated away before the
	// failure latched, so Open recovers exactly the acknowledged prefix.
	r := openT(t, path)
	if r.Failed() {
		t.Fatal("reopened log inherited the failed state")
	}
	recs, err = r.Records()
	if err != nil {
		t.Fatalf("Records after reopen: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("reopened log holds %d records, want 2", len(recs))
	}
	if st := r.Stats(); st.TornTail {
		t.Fatalf("reopen found a torn tail (%d bytes): the failed append was not cleanly undone", st.TornBytes)
	}
	if !bytes.Equal(recs[1].Batch, batch(2, 48)) {
		t.Fatal("recovered record 1 differs from the acknowledged payload")
	}
	// And the recovered log accepts appends again.
	if err := r.Append(5, 1, batch(5, 24)); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}

// TestAppendWriteFailureIsSticky is the same contract for a failed write
// (ENOSPC-style) rather than a failed fsync.
func TestAppendWriteFailureIsSticky(t *testing.T) {
	defer failpoint.Reset()
	path := filepath.Join(t.TempDir(), "wal.log")
	w := openT(t, path)
	appendT(t, w, 0, 1, batch(1, 40))
	failpoint.Enable(FailpointAppendWrite, failpoint.Injection{Err: errDisk})
	if err := w.Append(1, 1, batch(2, 40)); !errors.Is(err, errDisk) {
		t.Fatalf("failed append returned %v", err)
	}
	failpoint.Reset()
	if err := w.Append(1, 1, batch(2, 40)); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("append after write failure returned %v, want ErrWALFailed", err)
	}
	w.Close()
	r := openT(t, path)
	recs, err := r.Records()
	if err != nil || len(recs) != 1 {
		t.Fatalf("reopen: %d records, err %v; want 1, nil", len(recs), err)
	}
}

// TestNthAppendFails pins the SkipFirst wiring the serving-layer suite
// depends on: appends 1..N-1 succeed, append N fails, none after N land.
func TestNthAppendFails(t *testing.T) {
	defer failpoint.Reset()
	path := filepath.Join(t.TempDir(), "wal.log")
	w := openT(t, path)
	const n = 3
	failpoint.Enable(FailpointAppendSync, failpoint.Injection{Err: errDisk, SkipFirst: n - 1})
	total := uint64(0)
	acked := 0
	for i := 0; i < 5; i++ {
		err := w.Append(total, 2, batch(byte(i), 32))
		if err == nil {
			total += 2
			acked++
			continue
		}
		if i < n-1 {
			t.Fatalf("append %d failed early: %v", i+1, err)
		}
	}
	if acked != n-1 {
		t.Fatalf("%d appends acknowledged, want %d", acked, n-1)
	}
	w.Close()
	r := openT(t, path)
	recs, err := r.Records()
	if err != nil {
		t.Fatalf("Records: %v", err)
	}
	if len(recs) != n-1 {
		t.Fatalf("recovered %d records, want the %d acknowledged", len(recs), n-1)
	}
}

// TestRotationFailureIsSticky: a failed rotation latches fail-stop too —
// the serving layer stops accepting ingest rather than risking replay debt
// on an unknown file state.
func TestRotationFailureIsSticky(t *testing.T) {
	defer failpoint.Reset()
	path := filepath.Join(t.TempDir(), "wal.log")
	w := openT(t, path)
	appendT(t, w, 0, 2, batch(1, 64))
	failpoint.Enable(FailpointRotate, failpoint.Injection{Err: errDisk})
	if err := w.TruncateCovered(2); !errors.Is(err, errDisk) {
		t.Fatalf("rotation returned %v", err)
	}
	failpoint.Reset()
	if err := w.Append(2, 1, batch(2, 16)); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("append after rotation failure returned %v, want ErrWALFailed", err)
	}
}

// TestRollbackSyncFailureIsSticky: RollbackLast's own sync failing latches
// the state as well (the record may or may not still be on disk).
func TestRollbackSyncFailureIsSticky(t *testing.T) {
	defer failpoint.Reset()
	path := filepath.Join(t.TempDir(), "wal.log")
	w := openT(t, path)
	appendT(t, w, 0, 2, batch(1, 64))
	failpoint.Enable(FailpointRollbackSync, failpoint.Injection{Err: errDisk})
	if err := w.RollbackLast(); !errors.Is(err, errDisk) {
		t.Fatalf("rollback returned %v", err)
	}
	failpoint.Reset()
	if err := w.Append(2, 1, batch(2, 16)); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("append after rollback failure returned %v, want ErrWALFailed", err)
	}
	if err := w.RollbackLast(); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("second rollback returned %v, want ErrWALFailed", err)
	}
}
