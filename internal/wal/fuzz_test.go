package wal

import (
	"os"
	"path/filepath"
	"testing"
)

// fuzzWALBytes builds a healthy two-record log and returns its file image,
// seeding the corpus with bytes every valid prefix of which Open must
// accept.
func fuzzWALBytes(f *testing.F) []byte {
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.wal")
	w, err := Open(path)
	if err != nil {
		f.Fatal(err)
	}
	if err := w.Append(0, 2, []byte("batch-one-payload")); err != nil {
		f.Fatal(err)
	}
	if err := w.Append(2, 3, []byte("batch-two")); err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzOpen feeds arbitrary bytes to the WAL recovery scan. Open must never
// panic: it either fails closed or repairs a torn tail and yields records
// it fully validated. Whatever Open accepts must survive a reopen with the
// identical record set — recovery is idempotent — and the repaired log
// must accept a fresh append.
func FuzzOpen(f *testing.F) {
	seed := fuzzWALBytes(f)
	f.Add(seed)
	f.Add(seed[:len(seed)-5]) // torn tail mid-record
	f.Add(seed[:headerSize])  // empty log
	f.Add([]byte{})
	f.Add([]byte("not a wal at all, far too short or wrong magic"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := Open(path)
		if err != nil {
			return
		}
		recs, err := w.Records()
		if err != nil {
			t.Fatalf("records of an accepted log: %v", err)
		}
		st := w.Stats()
		if st.Records != len(recs) {
			t.Fatalf("stats count %d records, Records returned %d", st.Records, len(recs))
		}
		if err := w.Close(); err != nil {
			t.Fatalf("closing an accepted log: %v", err)
		}
		// Reopen: the repaired file must scan to the same records.
		w2, err := Open(path)
		if err != nil {
			t.Fatalf("reopening a repaired log: %v", err)
		}
		defer w2.Close()
		recs2, err := w2.Records()
		if err != nil {
			t.Fatalf("records on reopen: %v", err)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("reopen found %d records, first open %d", len(recs2), len(recs))
		}
		for i := range recs {
			if recs[i].PrevTotal != recs2[i].PrevTotal || recs[i].Trajs != recs2[i].Trajs ||
				string(recs[i].Batch) != string(recs2[i].Batch) {
				t.Fatalf("record %d changed across reopen", i)
			}
		}
		// The recovered log is a working log: appends still go through.
		var next uint64
		if n := len(recs2); n > 0 {
			next = recs2[n-1].PrevTotal + uint64(recs2[n-1].Trajs)
		}
		if err := w2.Append(next, 1, []byte("post-recovery batch")); err != nil {
			t.Fatalf("append to a recovered log: %v", err)
		}
	})
}
