package wal

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"pathhist/internal/failpoint"
)

// recLen is the on-disk length of a record with a payload of n bytes.
func recLen(n int) int64 { return recHdrSize + ((int64(n) + 7) &^ 7) }

// waitSize polls until the log's written (not necessarily synced) size
// reaches want — the signal that a concurrent Append has written its record
// and entered the group-commit wait.
func waitSize(t *testing.T, w *WAL, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for w.Size() < want {
		if time.Now().After(deadline) {
			t.Fatalf("log size never reached %d (at %d)", want, w.Size())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestGroupCommit drives the leader/follower protocol deterministically: a
// slow-disk failpoint holds the first append's fsync open while three more
// appends write their records and queue, so the second fsync covers all
// three at once. Four appends, two fsyncs, one of them a group commit.
func TestGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w := openT(t, path)
	failpoint.Enable(FailpointAppendSync, failpoint.Injection{Delay: 300 * time.Millisecond})
	defer failpoint.Disable(FailpointAppendSync)

	const payload = 64
	var wg sync.WaitGroup
	errs := make([]error, 4)
	start := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = w.Append(uint64(i), 1, batch(byte(10+i), payload))
		}()
		// The record lands in the file (under the lock) before the append
		// joins the fsync wait; polling for it fixes the file order, which
		// the PrevTotal monotonicity check on reopen depends on.
		waitSize(t, w, headerSize+int64(i+1)*recLen(payload))
	}
	// Append 0 writes and leads the first (held-open) fsync; 1..3 write
	// while it is in flight and share the one fsync that follows.
	for i := 0; i < 4; i++ {
		start(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	st := w.Stats()
	if st.Appends != 4 || st.Records != 4 {
		t.Fatalf("got %d appends, %d records, want 4 and 4", st.Appends, st.Records)
	}
	if st.GroupCommits < 1 {
		t.Fatalf("no group commit recorded across 4 concurrent appends: %+v", st)
	}
	failpoint.Disable(FailpointAppendSync)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := openT(t, path)
	recs, err := r.Records()
	if err != nil {
		t.Fatalf("Records after reopen: %v", err)
	}
	if len(recs) != 4 {
		t.Fatalf("reopen found %d records, want 4", len(recs))
	}
	for i, rec := range recs {
		if rec.PrevTotal != uint64(i) || rec.Trajs != 1 {
			t.Errorf("record %d: got (prev=%d trajs=%d), want (%d, 1)", i, rec.PrevTotal, rec.Trajs, i)
		}
		if string(rec.Batch) != string(batch(byte(10+i), payload)) {
			t.Errorf("record %d: payload mismatch", i)
		}
	}
}

// TestGroupCommitFailureFailsAllWaiters: when the shared fsync fails, every
// append it was to cover returns an error (none was acknowledged), the
// unsynced tail is truncated back off the file, and a reopen recovers
// exactly the durable prefix — here, nothing.
func TestGroupCommitFailureFailsAllWaiters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w := openT(t, path)
	errDisk := errors.New("simulated fsync failure")
	failpoint.Enable(FailpointAppendSync, failpoint.Injection{Delay: 300 * time.Millisecond, Err: errDisk})
	defer failpoint.Disable(FailpointAppendSync)

	const payload = 32
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = w.Append(uint64(i), 1, batch(byte(20+i), payload))
		}()
		waitSize(t, w, headerSize+int64(i+1)*recLen(payload))
	}
	wg.Wait()
	leaders, followers := 0, 0
	for i, err := range errs {
		switch {
		case err == nil:
			t.Fatalf("append %d succeeded across a failed fsync", i)
		case errors.Is(err, errDisk):
			leaders++
		case errors.Is(err, ErrWALFailed):
			followers++
		default:
			t.Fatalf("append %d: unexpected error %v", i, err)
		}
	}
	if leaders != 1 || followers != 3 {
		t.Fatalf("got %d leader errors and %d follower errors, want 1 and 3 (%v)", leaders, followers, errs)
	}
	if st := w.Stats(); !st.Failed || st.Appends != 0 || st.Records != 0 {
		t.Fatalf("stats after failed group commit: %+v", st)
	}
	if err := w.Append(9, 1, batch(9, payload)); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("append on failed log: %v", err)
	}
	failpoint.Disable(FailpointAppendSync)

	// The truncation dropped the whole unsynced tail: a restart recovers an
	// empty (header-only) log, exactly what clients were acknowledged.
	r := openT(t, path)
	recs, err := r.Records()
	if err != nil {
		t.Fatalf("Records after reopen: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("reopen found %d records, want 0", len(recs))
	}
	if st := r.Stats(); st.TornTail {
		t.Fatalf("reopen repaired a torn tail; the failure path should have synced a clean truncation: %+v", st)
	}
}
