// Package wal is the write-ahead log of acknowledged ingest batches
// (DESIGN.md §11): a small append-only file that makes /extend durable. A
// batch's raw bytes are appended — and fsynced — before the client sees its
// acknowledgement, so a crash at any later point can be repaired by
// replaying the log over the last index snapshot: every acknowledged batch
// is recovered, and nothing that was never fully fsynced ever reappears.
//
// The framing follows the internal/snapio conventions: everything is
// little-endian, every record carries a Castagnoli CRC32 of its payload,
// and corruption fails closed with distinct sentinel errors. The one
// deliberate exception to fail-closed is the torn tail: a record that the
// file ends inside (a crash mid-append) is by construction unacknowledged —
// the acknowledgement strictly follows the fsync — so Open truncates it
// away and reports it instead of refusing to start. A record that is fully
// present but fails its CRC is real corruption (bit rot, splicing) and is
// rejected with ErrChecksum: it may cover an acknowledged batch, so
// serving without it would silently lose data.
//
// Records carry no epochs. The correlation between log and snapshot is the
// total trajectory count: ingestion is append-only and strictly serialised,
// so "the index holds T trajectories" identifies a unique prefix of the
// batch sequence. Each record stores the count the batch was applied on top
// of (PrevTotal) plus its own batch size, which gives replay exact skip,
// ordering and wrong-snapshot checks without coupling the log to epoch
// numbering (compactions advance epochs but never appear in the log).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"pathhist/internal/failpoint"
)

// Fault-injection sites (internal/failpoint) at the I/O operations whose
// failures the fail-stop state machine must handle. Production cost is one
// atomic load per site when nothing is enabled.
const (
	// FailpointAppendWrite fails the record write of Append.
	FailpointAppendWrite = "wal.append.write"
	// FailpointAppendSync fails the fsync that makes an append durable.
	FailpointAppendSync = "wal.append.sync"
	// FailpointRotate fails the log rotation (TruncateCovered).
	FailpointRotate = "wal.rotate"
	// FailpointRollbackSync fails the fsync of a RollbackLast truncation.
	FailpointRollbackSync = "wal.rollback.sync"
)

// Magic identifies a pathhist write-ahead log file (8 bytes).
const Magic = "PHWAL\x00\x00\x01"

// Version is the current log format version; readers reject any other.
const Version uint32 = 1

// Sentinel errors, one per failure mode (wrapped with positional detail).
var (
	// ErrWALFailed means a previous append or sync failed and the log is in
	// its sticky failed state: the bytes on disk may or may not include the
	// failed record (an fsync error leaves the kernel's and the platter's
	// view unknowable), so every further mutation — Append, RollbackLast,
	// TruncateCovered — is refused. Fail-stop is the only safe behaviour:
	// continuing to append after a failed sync could acknowledge batches
	// into a log whose prefix is not durable, silently breaking the
	// acknowledged ⇒ fsynced ⇒ recovered guarantee. The repair is a process
	// restart, whose Open re-scans what actually reached the disk.
	ErrWALFailed = errors.New("wal: log is in failed state after an earlier write/sync error")
	// ErrBadMagic means the file is not a write-ahead log at all.
	ErrBadMagic = errors.New("wal: bad magic (not a write-ahead log)")
	// ErrVersion means the log was written by an incompatible version.
	ErrVersion = errors.New("wal: unsupported log format version")
	// ErrChecksum means a fully-present record fails its CRC32 — real
	// corruption, never produced by a torn append (those truncate the file
	// short and are repaired by Open).
	ErrChecksum = errors.New("wal: record checksum mismatch")
	// ErrCorrupt means a record header declares something structurally
	// impossible (zero-length batch, absurd size).
	ErrCorrupt = errors.New("wal: corrupt record header")
)

// crcTable is the Castagnoli polynomial, as everywhere in the snapshot
// format (hardware-accelerated on amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// recordCRC covers the record header's meaningful prefix (prevTotal, trajs,
// reserved, length — the first 24 bytes) and the payload, so a flipped bit
// in the replay metadata fails closed just like one in the batch itself.
func recordCRC(hdr24, payload []byte) uint32 {
	c := crc32.Checksum(hdr24, crcTable)
	return crc32.Update(c, crcTable, payload)
}

const (
	headerSize = 16 // magic(8) + version(4) + reserved(4)
	recHdrSize = 32 // prevTotal(8) + trajs(4) + reserved(4) + length(8) + crc(4) + pad(4)

	// maxRecordBytes bounds one record's declared payload so a corrupt
	// length cannot drive a huge allocation; it comfortably exceeds any
	// /extend body the serving layer admits.
	maxRecordBytes = 1 << 31
)

// Record is one logged batch: the raw ingest bytes (the traj binary format,
// exactly as they arrived) plus the replay-ordering metadata.
type Record struct {
	// PrevTotal is the number of indexed trajectories the batch was applied
	// on top of. Records are strictly increasing in PrevTotal (every batch
	// adds at least one trajectory), which is what replay orders and
	// cross-checks against the snapshot.
	PrevTotal uint64
	// Trajs is the batch's own trajectory count; PrevTotal+Trajs is the
	// total after the batch.
	Trajs uint32
	// Batch is the raw batch payload.
	Batch []byte
}

// Stats is a point-in-time summary of the log, surfaced in /statsz.
type Stats struct {
	// Records and Bytes describe the live log (bytes include the header).
	Records int
	Bytes   int64
	// Appends, AppendedBytes and FsyncNanos are cumulative since Open:
	// FsyncNanos/Appends is the durability cost one acknowledged batch
	// pays.
	Appends       int64
	AppendedBytes int64
	FsyncNanos    int64
	// GroupCommits counts fsyncs that made more than one append durable at
	// once — the group-commit batching that lets concurrent Append calls
	// share a single fsync instead of queueing one each.
	GroupCommits int64
	// Rotations counts TruncateCovered calls that shrank the file;
	// Rollbacks counts appended records withdrawn by RollbackLast.
	Rotations int64
	Rollbacks int64
	// TornTail reports that Open repaired a torn (unacknowledged) tail,
	// and TornBytes how many bytes it dropped.
	TornTail  bool
	TornBytes int64
	// Failed reports the sticky fail-stop state (see ErrWALFailed).
	Failed bool
}

// WAL is an open write-ahead log. All methods are safe for concurrent use,
// though the serving layer additionally serialises Append with the index
// publication it precedes (the log order must equal the apply order).
type WAL struct {
	mu   sync.Mutex
	f    *os.File
	path string
	size int64
	recs []recMeta // live records, in file order

	// Group-commit state (DESIGN.md §11). Concurrent Appends write their
	// records under mu, then share fsyncs: whoever finds no fsync in flight
	// becomes the leader and syncs the whole written tail; the rest wait on
	// cond for the synced watermark to pass their record's end. One fsync
	// can thus make many appends durable at once.
	cond         *sync.Cond // broadcast when synced/syncing/failed change
	synced       int64      // durable prefix: every byte below this is fsynced
	syncing      bool       // an fsync is in flight (mu released around it)
	unsyncedRecs int        // records written since the last fsync started

	appends       int64
	appendedBytes int64
	fsyncNanos    int64
	groupCommits  int64
	rotations     int64
	rollbacks     int64
	tornTail      bool
	tornBytes     int64

	// failed latches the first mutation failure (see ErrWALFailed); cause
	// keeps that first error for diagnostics.
	failed bool
	cause  error
}

// recMeta locates one live record inside the file.
type recMeta struct {
	off       int64 // record header offset
	len       int64 // header + padded payload
	prevTotal uint64
	trajs     uint32
}

// Open opens (creating if absent) the log at path and scans it: existing
// records are validated front to back, a torn tail — the file ending inside
// a record — is truncated away (it was never acknowledged), and any other
// inconsistency fails closed with a sentinel error. The scanned records are
// available via Records for replay; the file is positioned for Append.
func Open(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	w := &WAL{f: f, path: path}
	w.cond = sync.NewCond(&w.mu)
	if err := w.scan(); err != nil {
		//lint:ignore syncerr the scan error wins; the fd wrote nothing and holds nothing acknowledged
		f.Close()
		return nil, err
	}
	w.synced = w.size // everything the scan admitted is on disk and synced
	return w, nil
}

// scan validates the whole file, truncating a torn tail in place.
func (w *WAL) scan() error {
	data, err := io.ReadAll(w.f)
	if err != nil {
		return fmt.Errorf("wal: reading log: %w", err)
	}
	if len(data) == 0 {
		// Fresh log: write the header now so the file on disk is always
		// well-formed (an empty file and a header-only file both mean "no
		// records", but only the latter round-trips through Open cleanly).
		var h [headerSize]byte
		copy(h[:8], Magic)
		binary.LittleEndian.PutUint32(h[8:], Version)
		if _, err := w.f.Write(h[:]); err != nil {
			return fmt.Errorf("wal: writing header: %w", err)
		}
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("wal: syncing header: %w", err)
		}
		w.size = headerSize
		return nil
	}
	if len(data) < headerSize {
		// Even the header is torn. The file cannot hold any acknowledged
		// record, so rewriting the header loses nothing.
		return w.truncateTo(0, int64(len(data)))
	}
	if string(data[:8]) != Magic {
		return ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != Version {
		return fmt.Errorf("%w: file version %d, reader supports %d", ErrVersion, v, Version)
	}
	off := int64(headerSize)
	lastTotal := uint64(0)
	for off < int64(len(data)) {
		rest := int64(len(data)) - off
		if rest < recHdrSize {
			// Torn mid-header: the append never completed, so the record was
			// never acknowledged.
			return w.truncateTo(off, rest)
		}
		h := data[off:]
		prevTotal := binary.LittleEndian.Uint64(h)
		trajs := binary.LittleEndian.Uint32(h[8:])
		length := binary.LittleEndian.Uint64(h[16:])
		crc := binary.LittleEndian.Uint32(h[24:])
		if length == 0 || length > maxRecordBytes || trajs == 0 {
			return fmt.Errorf("%w: record at offset %d declares %d payload bytes, %d trajectories",
				ErrCorrupt, off, length, trajs)
		}
		padded := (int64(length) + 7) &^ 7
		if rest < recHdrSize+padded {
			// Torn mid-payload: same reasoning as a torn header.
			return w.truncateTo(off, rest)
		}
		payload := data[off+recHdrSize : off+recHdrSize+int64(length)]
		if got := recordCRC(h[:24], payload); got != crc {
			// The record is fully present yet damaged. It may cover an
			// acknowledged batch, so this is never repaired silently.
			return fmt.Errorf("%w: record %d at offset %d: CRC %08x, stored %08x",
				ErrChecksum, len(w.recs), off, got, crc)
		}
		if prevTotal < lastTotal {
			return fmt.Errorf("%w: record %d at offset %d: prev-total %d below predecessor's %d",
				ErrCorrupt, len(w.recs), off, prevTotal, lastTotal)
		}
		lastTotal = prevTotal + uint64(trajs)
		w.recs = append(w.recs, recMeta{off: off, len: recHdrSize + padded, prevTotal: prevTotal, trajs: trajs})
		off += recHdrSize + padded
	}
	w.size = off
	return nil
}

// truncateTo drops the torn tail starting at off (tornBytes bytes of it
// exist) and rewrites the header if even that was incomplete.
func (w *WAL) truncateTo(off, torn int64) error {
	if off == 0 {
		if err := w.f.Truncate(0); err != nil {
			return fmt.Errorf("wal: truncating torn header: %w", err)
		}
		if _, err := w.f.Seek(0, io.SeekStart); err != nil {
			return err
		}
		var h [headerSize]byte
		copy(h[:8], Magic)
		binary.LittleEndian.PutUint32(h[8:], Version)
		if _, err := w.f.Write(h[:]); err != nil {
			return fmt.Errorf("wal: rewriting header: %w", err)
		}
		off = headerSize
	} else if err := w.f.Truncate(off); err != nil {
		return fmt.Errorf("wal: truncating torn tail: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing truncation: %w", err)
	}
	w.size = off
	w.tornTail = true
	w.tornBytes = torn
	return nil
}

// Records returns the live records in file order for replay. The payload
// slices are owned by the caller from here on (the WAL keeps only offsets).
func (w *WAL) Records() ([]Record, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Record, 0, len(w.recs))
	for i, m := range w.recs {
		buf := make([]byte, m.len-recHdrSize)
		if _, err := w.f.ReadAt(buf, m.off+recHdrSize); err != nil {
			return nil, fmt.Errorf("wal: reading record %d: %w", i, err)
		}
		length := int64(binary.LittleEndian.Uint64(w.hdrAt(m.off)[16:]))
		out = append(out, Record{PrevTotal: m.prevTotal, Trajs: m.trajs, Batch: buf[:length]})
	}
	return out, nil
}

// hdrAt re-reads a record header (only used on the cold Records path).
func (w *WAL) hdrAt(off int64) []byte {
	var h [recHdrSize]byte
	_, _ = w.f.ReadAt(h[:], off)
	return h[:]
}

// failLocked latches the log's sticky failed state (keeping the first
// cause) and returns err. Group-commit waiters are woken so they observe
// the failure instead of waiting for a watermark that will never advance.
// Callers hold mu.
func (w *WAL) failLocked(err error) error {
	if !w.failed {
		w.failed = true
		w.cause = err
	}
	w.cond.Broadcast()
	return err
}

// checkLocked refuses every mutation once the log failed. Callers hold mu.
func (w *WAL) checkLocked() error {
	if w.failed {
		return fmt.Errorf("%w (first failure: %v)", ErrWALFailed, w.cause)
	}
	return nil
}

// Failed reports whether the log is in its sticky failed state (see
// ErrWALFailed): reads keep working, every mutation is refused.
func (w *WAL) Failed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.failed
}

// syncAppend runs the fsync of one appended record (behind its failpoint).
func (w *WAL) syncAppend() error {
	if err := failpoint.Inject(FailpointAppendSync); err != nil {
		return err
	}
	return w.f.Sync()
}

// writeAppend writes one record's bytes at the log tail (behind its
// failpoint).
func (w *WAL) writeAppend(buf []byte) error {
	if err := failpoint.Inject(FailpointAppendWrite); err != nil {
		return err
	}
	_, err := w.f.WriteAt(buf, w.size)
	return err
}

// Append logs one batch and fsyncs it. It must complete before the batch is
// acknowledged to the client — the fsync is the durability point the
// recovery guarantee rests on. prevTotal is the indexed trajectory count the
// batch is being applied on top of, trajs the batch's own count.
//
// Concurrent appends group-commit: each writes its record under the lock,
// then the fsyncs are shared. The first appender to find no fsync in flight
// becomes the leader, releases the lock, and syncs the entire written tail;
// appends that arrive while that fsync runs write their records and wait —
// the next fsync (led by whichever of them gets there first) covers all of
// them at once. Append returns only after the synced watermark covers its
// record, so the acknowledged ⇒ fsynced guarantee is exactly as before; the
// batching only collapses N queued fsyncs into few (Stats.GroupCommits
// counts the fsyncs that covered more than one append).
//
// Failure is fail-stop: after any write or fsync error the on-disk state is
// unknowable (the kernel may or may not have persisted the bytes it
// reported failure for), so the log latches ErrWALFailed and refuses every
// later mutation, and every append whose record the failed fsync was to
// cover returns the error (none of them was acknowledged). Before latching,
// one best-effort truncation drops the unsynced tail back off the file, so
// a disk that recovers (or a simulated fault) leaves the file holding
// exactly the durable prefix — a restart's Open then recovers exactly what
// clients were told succeeded, never more.
func (w *WAL) Append(prevTotal uint64, trajs int, batch []byte) error {
	if len(batch) == 0 || trajs <= 0 {
		return fmt.Errorf("wal: refusing to log an empty batch")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.checkLocked(); err != nil {
		return err
	}
	padded := (int64(len(batch)) + 7) &^ 7
	buf := make([]byte, recHdrSize+padded)
	binary.LittleEndian.PutUint64(buf, prevTotal)
	binary.LittleEndian.PutUint32(buf[8:], uint32(trajs))
	binary.LittleEndian.PutUint64(buf[16:], uint64(len(batch)))
	binary.LittleEndian.PutUint32(buf[24:], recordCRC(buf[:24], batch))
	copy(buf[recHdrSize:], batch)
	if err := w.writeAppend(buf); err != nil {
		w.undoUnsyncedLocked()
		return w.failLocked(fmt.Errorf("wal: appending record: %w", err))
	}
	w.recs = append(w.recs, recMeta{off: w.size, len: int64(len(buf)), prevTotal: prevTotal, trajs: uint32(trajs)})
	w.size += int64(len(buf))
	w.unsyncedRecs++
	myEnd := w.size
	for w.synced < myEnd {
		if w.failed {
			// A concurrent write or shared fsync failed before this record
			// became durable; its bytes were truncated away with the rest of
			// the unsynced tail.
			return fmt.Errorf("%w (first failure: %v)", ErrWALFailed, w.cause)
		}
		if w.syncing {
			w.cond.Wait()
			continue
		}
		// No fsync in flight: lead one covering the whole written tail.
		w.syncing = true
		target := w.size
		covered := w.unsyncedRecs
		w.unsyncedRecs = 0
		w.mu.Unlock()
		started := time.Now()
		err := w.syncAppend()
		w.mu.Lock()
		w.fsyncNanos += time.Since(started).Nanoseconds()
		w.syncing = false
		if err != nil {
			w.undoUnsyncedLocked()
			return w.failLocked(fmt.Errorf("wal: syncing record: %w", err))
		}
		if w.failed {
			// A concurrent writer failed and truncated the tail while this
			// fsync ran; the watermark must not advance over bytes that are
			// no longer there.
			w.cond.Broadcast()
			return fmt.Errorf("%w (first failure: %v)", ErrWALFailed, w.cause)
		}
		w.synced = target
		if covered > 1 {
			w.groupCommits++
		}
		w.cond.Broadcast()
	}
	w.appends++
	w.appendedBytes += int64(len(buf))
	return nil
}

// undoUnsyncedLocked best-effort truncates the unsynced tail — every record
// written since the durable watermark — back off the file (and syncs the
// truncation) so the on-disk log holds exactly the acknowledged records
// again. Its own failures are swallowed: the caller is already latching the
// failed state, and even records left behind are unacknowledged, fully
// framed, and therefore harmless — replay applies batches no client was
// told about, and the torn-tail repair handles a partial one. The in-memory
// view is cut back regardless, so Stats and Records describe only the
// durable prefix. Callers hold mu.
func (w *WAL) undoUnsyncedLocked() {
	if err := w.f.Truncate(w.synced); err == nil {
		//lint:ignore syncerr documented best-effort: the caller is latching the primary append failure
		_ = w.f.Sync()
	}
	for len(w.recs) > 0 {
		last := w.recs[len(w.recs)-1]
		if last.off+last.len <= w.synced {
			break
		}
		w.recs = w.recs[:len(w.recs)-1]
	}
	w.size = w.synced
	w.unsyncedRecs = 0
}

// quiesceLocked waits until no fsync is in flight and the written tail is
// durable (or the log has failed), so callers that truncate or close the
// file never race a group-commit fsync. Appenders never abandon an unsynced
// tail — one of them always leads the fsync that drains it — so the wait
// terminates. Callers hold mu.
func (w *WAL) quiesceLocked() {
	for w.syncing || (!w.failed && w.synced < w.size) {
		w.cond.Wait()
	}
}

// RollbackLast withdraws the most recently appended record — the repair for
// the narrow window where a batch was logged but its index publication then
// failed (validation runs before Append, so this is exceptional). The file
// is truncated back and synced; a crash before the truncation lands leaves
// a record whose replay will fail the same way the publication did, which
// keeps recovery fail-closed rather than silently divergent.
func (w *WAL) RollbackLast() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.quiesceLocked()
	if err := w.checkLocked(); err != nil {
		// A failed log cannot be repaired by truncation — the write position
		// itself is in doubt. Restart and re-scan instead.
		return err
	}
	if len(w.recs) == 0 {
		return fmt.Errorf("wal: rollback with no records")
	}
	last := w.recs[len(w.recs)-1]
	if err := w.f.Truncate(last.off); err != nil {
		return w.failLocked(fmt.Errorf("wal: rollback truncate: %w", err))
	}
	if err := w.syncRollback(); err != nil {
		return w.failLocked(fmt.Errorf("wal: rollback sync: %w", err))
	}
	w.recs = w.recs[:len(w.recs)-1]
	w.size = last.off
	w.synced = last.off
	w.rollbacks++
	return nil
}

// syncRollback syncs a rollback truncation (behind its failpoint).
func (w *WAL) syncRollback() error {
	if err := failpoint.Inject(FailpointRollbackSync); err != nil {
		return err
	}
	return w.f.Sync()
}

// TruncateCovered drops every record a snapshot at coveredTotal indexed
// trajectories already covers — the log rotation that bounds replay length.
// A record with PrevTotal+Trajs <= coveredTotal is fully inside the
// snapshot; later records are kept (the snapshot was captured while ingest
// kept running). The caller must only pass totals of snapshots that are
// durably on disk: the records are gone the moment this returns.
//
// When records survive, the kept tail is rewritten through a temp file and
// atomically renamed over the log (with a directory fsync), so a crash
// mid-rotation leaves either the old complete log or the new complete log.
func (w *WAL) TruncateCovered(coveredTotal uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.quiesceLocked()
	if err := w.checkLocked(); err != nil {
		return err
	}
	if err := failpoint.Inject(FailpointRotate); err != nil {
		return w.failLocked(fmt.Errorf("wal: rotation: %w", err))
	}
	keep := 0
	for keep < len(w.recs) && w.recs[keep].prevTotal+uint64(w.recs[keep].trajs) <= coveredTotal {
		keep++
	}
	if keep == 0 {
		return nil
	}
	if keep == len(w.recs) {
		// Nothing survives: truncate in place to a bare header. An in-place
		// truncation failure leaves the live file in doubt — fail-stop.
		if err := w.f.Truncate(headerSize); err != nil {
			return w.failLocked(fmt.Errorf("wal: rotation truncate: %w", err))
		}
		if err := w.f.Sync(); err != nil {
			return w.failLocked(fmt.Errorf("wal: rotation sync: %w", err))
		}
		w.recs = w.recs[:0]
		w.size = headerSize
		w.synced = headerSize
		w.rotations++
		return nil
	}
	// A tail survives: rebuild the file as header + tail, atomically.
	tailOff := w.recs[keep].off
	tail := make([]byte, w.size-tailOff)
	if _, err := w.f.ReadAt(tail, tailOff); err != nil {
		return fmt.Errorf("wal: rotation read: %w", err)
	}
	dir := filepath.Dir(w.path)
	tmp, err := os.CreateTemp(dir, ".wal-*.tmp")
	if err != nil {
		return fmt.Errorf("wal: rotation temp: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		//lint:ignore syncerr fail closure: the primary rotation error wins and the temp file is removed
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	var h [headerSize]byte
	copy(h[:8], Magic)
	binary.LittleEndian.PutUint32(h[8:], Version)
	if _, err := tmp.Write(h[:]); err != nil {
		return fail(fmt.Errorf("wal: rotation header: %w", err))
	}
	if _, err := tmp.Write(tail); err != nil {
		return fail(fmt.Errorf("wal: rotation tail: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("wal: rotation sync: %w", err))
	}
	if err := os.Rename(tmpName, w.path); err != nil {
		return fail(fmt.Errorf("wal: rotation rename: %w", err))
	}
	// The rename is only durable once the directory entry is fsynced; a
	// failure is surfaced rather than latched — both inodes hold a valid
	// log, and a crash that resurrects the pre-rotation file merely replays
	// records the snapshot already covers (recovery is idempotent). The
	// in-memory swap still completes first so w.f tracks the live path.
	var dirErr error
	if d, err := os.Open(dir); err == nil {
		if err := d.Sync(); err != nil {
			dirErr = fmt.Errorf("wal: rotation dir sync: %w", err)
		}
		if err := d.Close(); err != nil && dirErr == nil {
			dirErr = fmt.Errorf("wal: rotation dir close: %w", err)
		}
	}
	old := w.f
	w.f = tmp
	//lint:ignore syncerr the rename fully replaced the pre-rotation inode; nothing acknowledged depends on its close
	old.Close()
	// Re-base the kept record offsets onto the new file layout.
	delta := tailOff - headerSize
	kept := w.recs[keep:]
	w.recs = w.recs[:0]
	for _, m := range kept {
		m.off -= delta
		w.recs = append(w.recs, m)
	}
	w.size -= delta
	w.synced = w.size
	w.rotations++
	return dirErr
}

// Size returns the current log size in bytes (the backpressure signal the
// serving layer bounds).
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Stats returns a point-in-time summary.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Stats{
		Records:       len(w.recs),
		Bytes:         w.size,
		Appends:       w.appends,
		AppendedBytes: w.appendedBytes,
		FsyncNanos:    w.fsyncNanos,
		GroupCommits:  w.groupCommits,
		Rotations:     w.rotations,
		Rollbacks:     w.rollbacks,
		TornTail:      w.tornTail,
		TornBytes:     w.tornBytes,
		Failed:        w.failed,
	}
}

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Close closes the underlying file, first waiting out any in-flight
// group-commit fsync so the fd is never closed under it. Records already
// fsynced stay durable; Close itself syncs nothing (every append returns
// only after its fsync).
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.quiesceLocked()
	return w.f.Close()
}
