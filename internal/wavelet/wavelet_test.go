package wavelet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func checkRanks(t *testing.T, seq []int32, tr *Tree) {
	t.Helper()
	counts := map[int32]int{}
	distinct := map[int32]bool{}
	for _, s := range seq {
		distinct[s] = true
	}
	for i := 0; i <= len(seq); i++ {
		for s := range distinct {
			if got := tr.Rank(s, i); got != counts[s] {
				t.Fatalf("Rank(%d, %d) = %d, want %d", s, i, got, counts[s])
			}
		}
		if i < len(seq) {
			counts[seq[i]]++
		}
	}
}

func TestRankSmall(t *testing.T) {
	// The paper's BWT-ish sequence: EFEE$$$$AAAACBDBB with $=1, A=2, ...
	seq := []int32{6, 7, 6, 6, 1, 1, 1, 1, 2, 2, 2, 2, 4, 3, 5, 3, 3}
	tr := New(seq)
	checkRanks(t, seq, tr)
	if tr.Len() != len(seq) {
		t.Errorf("Len = %d", tr.Len())
	}
	// Example from Procedure 2's walkthrough: rank_A(Tbwt, 8) = 0 and
	// rank_A(Tbwt, 11) = 3 on the real paper BWT; verify on this layout:
	if got := tr.Rank(2, 8); got != 0 {
		t.Errorf("rank_A(8) = %d, want 0", got)
	}
	if got := tr.Rank(2, 12); got != 4 {
		t.Errorf("rank_A(12) = %d, want 4", got)
	}
	// Absent symbol.
	if got := tr.Rank(99, 17); got != 0 {
		t.Errorf("rank of absent symbol = %d", got)
	}
}

func TestAccess(t *testing.T) {
	seq := []int32{5, 1, 4, 4, 2, 9, 1, 5, 5, 3}
	tr := New(seq)
	for i, s := range seq {
		if got := tr.Access(i); got != s {
			t.Errorf("Access(%d) = %d, want %d", i, got, s)
		}
	}
}

func TestSingleSymbol(t *testing.T) {
	seq := []int32{7, 7, 7, 7}
	tr := New(seq)
	if got := tr.Rank(7, 3); got != 3 {
		t.Errorf("single-symbol rank = %d", got)
	}
	if got := tr.Rank(5, 3); got != 0 {
		t.Errorf("absent rank = %d", got)
	}
	if got := tr.Access(2); got != 7 {
		t.Errorf("Access = %d", got)
	}
}

func TestEmpty(t *testing.T) {
	tr := New(nil)
	if tr.Len() != 0 || tr.Rank(3, 10) != 0 {
		t.Error("empty tree misbehaves")
	}
}

func TestSkewedFrequencies(t *testing.T) {
	// Heavily skewed: Huffman shape differs strongly from balanced.
	var seq []int32
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		switch {
		case rng.Intn(100) < 80:
			seq = append(seq, 1)
		case rng.Intn(100) < 90:
			seq = append(seq, 2)
		default:
			seq = append(seq, int32(3+rng.Intn(60)))
		}
	}
	tr := New(seq)
	// Spot-check rank at random prefixes for random symbols.
	for trial := 0; trial < 300; trial++ {
		i := rng.Intn(len(seq) + 1)
		s := seq[rng.Intn(len(seq))]
		want := 0
		for j := 0; j < i; j++ {
			if seq[j] == s {
				want++
			}
		}
		if got := tr.Rank(s, i); got != want {
			t.Fatalf("Rank(%d, %d) = %d, want %d", s, i, got, want)
		}
	}
}

func TestRankQuick(t *testing.T) {
	f := func(raw []byte) bool {
		seq := make([]int32, len(raw))
		for i, b := range raw {
			seq[i] = int32(b % 11)
		}
		tr := New(seq)
		counts := map[int32]int{}
		for i := 0; i <= len(seq); i++ {
			for s := int32(0); s < 11; s++ {
				if tr.Rank(s, i) != counts[s] {
					return false
				}
			}
			if i < len(seq) {
				counts[seq[i]]++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSizeBytesGrowsWithNodes(t *testing.T) {
	small := New([]int32{1, 2, 1, 2})
	big := New([]int32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	if big.SizeBytes() <= small.SizeBytes() {
		t.Errorf("wider alphabet should cost more: %d vs %d", big.SizeBytes(), small.SizeBytes())
	}
}

// TestRank2MatchesRankPairs: the paired-rank descent must agree with two
// independent Rank calls for every symbol (present or absent) and every
// bound pair, including the degenerate single-symbol and empty trees.
func TestRank2MatchesRankPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	seqs := [][]int32{
		{},           // empty
		{5, 5, 5, 5}, // single symbol
		{1, 2},       // minimal alphabet
		randomSeq(rng, 300, 2),
		randomSeq(rng, 500, 17),
		randomSeq(rng, 1000, 200),
	}
	for si, seq := range seqs {
		tr := New(seq)
		n := len(seq)
		for s := int32(0); s < 20; s++ {
			for trial := 0; trial < 50; trial++ {
				i := rng.Intn(n + 2)
				j := rng.Intn(n + 2)
				if i > j {
					i, j = j, i
				}
				ri, rj := tr.Rank2(s, i, j)
				if wi, wj := tr.Rank(s, i), tr.Rank(s, j); ri != wi || rj != wj {
					t.Fatalf("seq %d: Rank2(%d, %d, %d) = (%d, %d), want (%d, %d)",
						si, s, i, j, ri, rj, wi, wj)
				}
			}
		}
	}
}

func randomSeq(rng *rand.Rand, n int, alphabet int32) []int32 {
	seq := make([]int32, n)
	for i := range seq {
		seq[i] = rng.Int31n(alphabet)
	}
	return seq
}
