// Snapshot serialization of the wavelet tree (DESIGN.md §10). The Huffman
// shape (node child links), the per-symbol code table and every node's bit
// vector — payload plus rank directory — are written verbatim, so loading
// restores the exact tree without re-deriving codes or re-counting bits.
// Under a zero-copy reader (DESIGN.md §15) every node's vector views the
// read-only mapping; the tree is immutable after construction, so the
// views are safe for its whole lifetime.
package wavelet

import (
	"fmt"
	"sort"

	"pathhist/internal/bitvec"
	"pathhist/internal/snapio"
)

// EncodeSnap appends the tree to the open snapshot section.
func (t *Tree) EncodeSnap(w *snapio.Writer) {
	w.U64(uint64(t.n))
	w.Bool(t.singleUse)
	w.I64(int64(t.single))
	w.U64(uint64(len(t.nodes)))
	for i := range t.nodes {
		nd := &t.nodes[i]
		w.I64(int64(nd.left))
		w.I64(int64(nd.right))
		nd.bv.EncodeSnap(w)
	}
	// The code table is a map; emit it in symbol order so snapshots of the
	// same tree are byte-identical.
	syms := make([]int32, 0, len(t.codes))
	for s := range t.codes {
		syms = append(syms, s)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
	w.U64(uint64(len(syms)))
	for _, s := range syms {
		c := t.codes[s]
		w.I64(int64(s))
		w.U64(c.bits)
		w.U64(uint64(c.len))
	}
}

// DecodeSnapTree reads a tree written by EncodeSnap.
func DecodeSnapTree(r *snapio.Reader) (*Tree, error) {
	t := &Tree{codes: make(map[int32]code)}
	t.n = int(r.U64())
	t.singleUse = r.Bool()
	t.single = int32(r.I64())
	numNodes := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if numNodes > r.Remaining() {
		// Each node costs well over one payload byte; a larger count is a
		// corrupt length, not a big tree.
		return nil, fmt.Errorf("wavelet: snapshot declares %d nodes, %d bytes remain", numNodes, r.Remaining())
	}
	t.nodes = make([]node, numNodes)
	for i := range t.nodes {
		t.nodes[i].left = int32(r.I64())
		t.nodes[i].right = int32(r.I64())
		bv, err := bitvec.DecodeSnapVector(r)
		if err != nil {
			return nil, fmt.Errorf("wavelet: node %d: %w", i, err)
		}
		t.nodes[i].bv = bv
	}
	numCodes := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if numCodes > r.Remaining()/24 {
		return nil, fmt.Errorf("wavelet: snapshot declares %d codes, %d bytes remain", numCodes, r.Remaining())
	}
	for i := 0; i < numCodes; i++ {
		sym := int32(r.I64())
		bits := r.U64()
		cl := r.U64()
		if cl > 64 {
			return nil, fmt.Errorf("wavelet: snapshot code length %d for symbol %d", cl, sym)
		}
		t.codes[sym] = code{bits: bits, len: uint8(cl)}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	// Structural validation: child links must stay inside the node slice
	// (leaves are encoded as negative complements and always valid).
	for i := range t.nodes {
		for _, ch := range [2]int32{t.nodes[i].left, t.nodes[i].right} {
			if ch >= 0 && int(ch) >= len(t.nodes) {
				return nil, fmt.Errorf("wavelet: node %d links to %d of %d nodes", i, ch, len(t.nodes))
			}
		}
	}
	return t, nil
}
