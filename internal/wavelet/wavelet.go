// Package wavelet implements a Huffman-shaped wavelet tree over an integer
// alphabet with O(code length) rank queries — the sdsl-lite structure the
// paper stores the Burrows-Wheeler transform in (Section 6.2: "sdsl-lite's
// integer-alphabet Huffman-shaped wavelet tree").
package wavelet

import (
	"container/heap"
	"sort"

	"pathhist/internal/bitvec"
)

// Tree is an immutable Huffman-shaped wavelet tree over []int32 symbols.
type Tree struct {
	n     int
	nodes []node
	codes map[int32]code
	// single holds the symbol when the alphabet has exactly one symbol
	// (degenerate tree without bits).
	single    int32
	singleUse bool
}

type node struct {
	bv *bitvec.Vector
	// children: negative = leaf (symbol = ^child), otherwise node index.
	left, right int32
}

type code struct {
	bits uint64
	len  uint8
}

type hItem struct {
	weight int64
	order  int   // tie-break for determinism
	sym    int32 // valid when leaf
	leaf   bool
	left   *hItem
	right  *hItem
}

type hHeap []*hItem

func (h hHeap) Len() int { return len(h) }
func (h hHeap) Less(i, j int) bool {
	if h[i].weight != h[j].weight {
		return h[i].weight < h[j].weight
	}
	return h[i].order < h[j].order
}
func (h hHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *hHeap) Push(x interface{}) { *h = append(*h, x.(*hItem)) }
func (h *hHeap) Pop() interface{} {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}

// New builds a wavelet tree over seq. An empty sequence yields a usable
// tree whose ranks are all zero.
func New(seq []int32) *Tree {
	t := &Tree{n: len(seq), codes: make(map[int32]code)}
	freq := make(map[int32]int64)
	for _, s := range seq {
		freq[s]++
	}
	if len(freq) == 0 {
		t.singleUse = true
		t.single = -1
		return t
	}
	if len(freq) == 1 {
		t.singleUse = true
		for s := range freq {
			t.single = s
		}
		return t
	}
	// Deterministic Huffman: seed heap in symbol order.
	syms := make([]int32, 0, len(freq))
	for s := range freq {
		syms = append(syms, s)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
	h := make(hHeap, 0, len(syms))
	order := 0
	for _, s := range syms {
		h = append(h, &hItem{weight: freq[s], order: order, sym: s, leaf: true})
		order++
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(*hItem)
		b := heap.Pop(&h).(*hItem)
		heap.Push(&h, &hItem{weight: a.weight + b.weight, order: order, left: a, right: b})
		order++
	}
	root := heap.Pop(&h).(*hItem)

	// Flatten internal nodes breadth-first and assign codes.
	type qe struct {
		it   *hItem
		bits uint64
		len  uint8
	}
	var assign func(q qe) int32
	assign = func(q qe) int32 {
		idx := int32(len(t.nodes))
		t.nodes = append(t.nodes, node{})
		var nd node
		if q.it.left.leaf {
			t.codes[q.it.left.sym] = code{bits: q.bits, len: q.len + 1}
			nd.left = ^q.it.left.sym
		} else {
			nd.left = assign(qe{it: q.it.left, bits: q.bits, len: q.len + 1})
		}
		if q.it.right.leaf {
			t.codes[q.it.right.sym] = code{bits: q.bits | 1<<q.len, len: q.len + 1}
			nd.right = ^q.it.right.sym
		} else {
			nd.right = assign(qe{it: q.it.right, bits: q.bits | 1<<q.len, len: q.len + 1})
		}
		t.nodes[idx] = nd
		return idx
	}
	assign(qe{it: root})

	// Count bits per node, preallocate builders, then fill with cursors.
	counts := make([]int64, len(t.nodes))
	for _, s := range seq {
		c := t.codes[s]
		ni := int32(0)
		for d := uint8(0); d < c.len; d++ {
			counts[ni]++
			if ni < 0 {
				break
			}
			if c.bits&(1<<d) == 0 {
				ni = t.nodes[ni].left
			} else {
				ni = t.nodes[ni].right
			}
			if ni < 0 {
				break
			}
		}
	}
	builders := make([]*bitvec.Builder, len(t.nodes))
	cursors := make([]int, len(t.nodes))
	for i := range builders {
		builders[i] = bitvec.NewBuilder(int(counts[i]))
		builders[i].SetLen(int(counts[i]))
	}
	for _, s := range seq {
		c := t.codes[s]
		ni := int32(0)
		for d := uint8(0); d < c.len; d++ {
			bit := c.bits&(1<<d) != 0
			if bit {
				builders[ni].Set(cursors[ni])
			}
			cursors[ni]++
			var next int32
			if bit {
				next = t.nodes[ni].right
			} else {
				next = t.nodes[ni].left
			}
			if next < 0 {
				break
			}
			ni = next
		}
	}
	for i := range t.nodes {
		t.nodes[i].bv = builders[i].Finish()
	}
	return t
}

// Len returns the sequence length.
func (t *Tree) Len() int { return t.n }

// Rank returns the number of occurrences of symbol c in the prefix [0, i).
func (t *Tree) Rank(c int32, i int) int {
	if i <= 0 {
		return 0
	}
	if i > t.n {
		i = t.n
	}
	if t.singleUse {
		if c == t.single {
			return i
		}
		return 0
	}
	cd, ok := t.codes[c]
	if !ok {
		return 0
	}
	ni := int32(0)
	for d := uint8(0); d < cd.len; d++ {
		nd := &t.nodes[ni]
		var next int32
		if cd.bits&(1<<d) == 0 {
			i = nd.bv.Rank0(i)
			next = nd.left
		} else {
			i = nd.bv.Rank1(i)
			next = nd.right
		}
		if i == 0 {
			return 0
		}
		if next < 0 {
			return i
		}
		ni = next
	}
	return i
}

// Rank2 returns Rank(c, i) and Rank(c, j) from a single tree descent. The
// FM-index backward search of Procedure 2 needs the ranks of both interval
// bounds at the same symbol for every path step; answering them together
// halves the code lookups and node walks, and on the O(1) bit-vector rank
// directory the whole step is a handful of table reads. Requires i <= j
// (backward-search bounds always satisfy this); results are identical to
// two Rank calls.
func (t *Tree) Rank2(c int32, i, j int) (ri, rj int) {
	if j <= 0 {
		return 0, 0
	}
	if i < 0 {
		i = 0
	}
	if j > t.n {
		j = t.n
	}
	if i > j {
		i = j
	}
	if t.singleUse {
		if c == t.single {
			return i, j
		}
		return 0, 0
	}
	cd, ok := t.codes[c]
	if !ok {
		return 0, 0
	}
	ni := int32(0)
	for d := uint8(0); d < cd.len; d++ {
		nd := &t.nodes[ni]
		var next int32
		if cd.bits&(1<<d) == 0 {
			i = nd.bv.Rank0(i)
			j = nd.bv.Rank0(j)
			next = nd.left
		} else {
			i = nd.bv.Rank1(i)
			j = nd.bv.Rank1(j)
			next = nd.right
		}
		if j == 0 {
			return 0, 0
		}
		if next < 0 {
			return i, j
		}
		ni = next
	}
	return i, j
}

// Access returns the symbol at position i (used by tests; query processing
// needs only Rank).
func (t *Tree) Access(i int) int32 {
	if t.singleUse {
		return t.single
	}
	ni := int32(0)
	for {
		nd := &t.nodes[ni]
		var next int32
		if nd.bv.Get(i) {
			i = nd.bv.Rank1(i)
			next = nd.right
		} else {
			i = nd.bv.Rank0(i)
			next = nd.left
		}
		if next < 0 {
			return ^next
		}
		ni = next
	}
}

// perNodeOverhead models the fixed per-node cost of the C++ structure
// (vtable/pointers/size fields); it is what makes many small wavelet trees
// expensive (Figure 10a).
const perNodeOverhead = 48

// SizeBytes models the memory footprint: per-node bit vectors with rank
// directories, per-node overhead, and the code table.
func (t *Tree) SizeBytes() int {
	sz := 0
	for i := range t.nodes {
		sz += perNodeOverhead
		if t.nodes[i].bv != nil {
			sz += t.nodes[i].bv.SizeBytes()
		}
	}
	sz += len(t.codes) * 16 // symbol -> (bits, len)
	return sz
}
