// Package metrics implements the evaluation metrics of Section 5.3: the
// symmetric mean absolute percentage error (sMAPE) of summed sub-query
// means, the length-weighted error, the average log-likelihood of result
// histograms, and the q-error of cardinality estimates.
package metrics

import "math"

// SMAPETerm returns the single-query sMAPE term in percent (Section 5.3.1):
//
//	100 * |pred - actual| / ((pred + actual) / 2)
func SMAPETerm(pred, actual float64) float64 {
	den := (pred + actual) / 2
	if den == 0 {
		return 0
	}
	return 100 * math.Abs(pred-actual) / den
}

// WeightedErrorTerm returns one sub-query's contribution to the weighted
// error of a query (Section 5.3.2): weight * sMAPE(pred_j, actual_j)/100,
// scaled back to percent by the caller summing terms already in percent.
func WeightedErrorTerm(weight, pred, actual float64) float64 {
	return weight * SMAPETerm(pred, actual)
}

// QError returns the q-error of a cardinality estimate (Section 5.3.4):
//
//	q = max(est'/n', n'/est') with n' = max(n, 1), est' = max(est, 1)
//
// following Stefanoni et al.'s handling of empty sets.
func QError(est, n float64) float64 {
	e := math.Max(est, 1)
	a := math.Max(n, 1)
	return math.Max(e/a, a/e)
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MeanInt returns the mean of integer samples.
func MeanInt(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += float64(x)
	}
	return s / float64(len(xs))
}

// Percentile returns the p-th percentile (0..100) of xs using nearest-rank
// on a sorted copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	// insertion sort; metric sample sets are small enough
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	rank := int(math.Ceil(p/100*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

// Log10 returns log10(x) guarding zero (the q-error axis of Figure 11a is
// in orders of magnitude).
func Log10(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Log10(x)
}
