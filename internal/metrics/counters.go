package metrics

import "sync/atomic"

// ServerCounters are the serving-layer robustness counters exported on
// /statsz (DESIGN.md §12): how often deadlines fired, clients hung up,
// handlers panicked, and whether the process is in degraded read-only mode
// after a WAL failure. The counters are monotonically increasing except the
// two gauges; everything is safe for concurrent use.
type ServerCounters struct {
	// QueryTimeouts counts queries aborted by their server- or
	// client-requested deadline.
	QueryTimeouts atomic.Int64
	// CanceledRequests counts requests aborted because the client
	// disconnected before the response was written.
	CanceledRequests atomic.Int64
	// PanicsRecovered counts handler panics the recovery middleware
	// converted to 500 responses instead of a process crash.
	PanicsRecovered atomic.Int64
	// WALFailed is a gauge: 1 after the write-ahead log latched its sticky
	// failed state, 0 while it is healthy.
	WALFailed atomic.Int64
	// DegradedMode is a gauge: 1 while the server is shedding writes and
	// serving reads only, 0 in normal operation.
	DegradedMode atomic.Int64

	// Sharded scatter-gather counters (DESIGN.md §14), all zero in
	// single-engine deployments.

	// ShardDispatches counts per-shard sub-query dispatches issued by the
	// query router (hedge attempts not included).
	ShardDispatches atomic.Int64
	// HedgedDispatches counts dispatches whose p99-based hedge timer fired
	// and launched a second attempt.
	HedgedDispatches atomic.Int64
	// HedgeWins counts hedged dispatches where the second attempt finished
	// first.
	HedgeWins atomic.Int64
	// CrossReplicaHedges counts hedged dispatches whose second attempt was
	// sent to a different replica of the shard than the first (always zero
	// with replica sets of one, where the hedge re-asks the same engine).
	CrossReplicaHedges atomic.Int64
	// ShardFailures counts dispatches that failed outright (fault injected,
	// budget exhausted, or shard down) after any hedging.
	ShardFailures atomic.Int64
	// ShardsShed counts dispatches skipped before issue because the shard's
	// health state machine said the shard is down.
	ShardsShed atomic.Int64
	// PartialResponses counts queries answered from a strict subset of
	// shards (partial: true in the JSON response).
	PartialResponses atomic.Int64
	// IngestReroutes counts ingest batches routed away from their
	// round-robin shard because it was down or degraded.
	IngestReroutes atomic.Int64
}

// ServerCounterValues is the plain-value snapshot of ServerCounters that
// marshals into the /statsz response.
type ServerCounterValues struct {
	QueryTimeouts      int64 `json:"query_timeouts"`
	CanceledRequests   int64 `json:"canceled_requests"`
	PanicsRecovered    int64 `json:"panics_recovered"`
	WALFailed          int64 `json:"wal_failed"`
	DegradedMode       int64 `json:"degraded_mode"`
	ShardDispatches    int64 `json:"shard_dispatches,omitempty"`
	HedgedDispatches   int64 `json:"hedged_dispatches,omitempty"`
	HedgeWins          int64 `json:"hedge_wins,omitempty"`
	CrossReplicaHedges int64 `json:"cross_replica_hedges,omitempty"`
	ShardFailures      int64 `json:"shard_failures,omitempty"`
	ShardsShed         int64 `json:"shards_shed,omitempty"`
	PartialResponses   int64 `json:"partial_responses,omitempty"`
	IngestReroutes     int64 `json:"ingest_reroutes,omitempty"`
}

// Snapshot reads every counter once. The values are individually atomic,
// not a consistent cut — fine for monitoring.
func (c *ServerCounters) Snapshot() ServerCounterValues {
	return ServerCounterValues{
		QueryTimeouts:      c.QueryTimeouts.Load(),
		CanceledRequests:   c.CanceledRequests.Load(),
		PanicsRecovered:    c.PanicsRecovered.Load(),
		WALFailed:          c.WALFailed.Load(),
		DegradedMode:       c.DegradedMode.Load(),
		ShardDispatches:    c.ShardDispatches.Load(),
		HedgedDispatches:   c.HedgedDispatches.Load(),
		HedgeWins:          c.HedgeWins.Load(),
		CrossReplicaHedges: c.CrossReplicaHedges.Load(),
		ShardFailures:      c.ShardFailures.Load(),
		ShardsShed:         c.ShardsShed.Load(),
		PartialResponses:   c.PartialResponses.Load(),
		IngestReroutes:     c.IngestReroutes.Load(),
	}
}
