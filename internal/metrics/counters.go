package metrics

import "sync/atomic"

// ServerCounters are the serving-layer robustness counters exported on
// /statsz (DESIGN.md §12): how often deadlines fired, clients hung up,
// handlers panicked, and whether the process is in degraded read-only mode
// after a WAL failure. The counters are monotonically increasing except the
// two gauges; everything is safe for concurrent use.
type ServerCounters struct {
	// QueryTimeouts counts queries aborted by their server- or
	// client-requested deadline.
	QueryTimeouts atomic.Int64
	// CanceledRequests counts requests aborted because the client
	// disconnected before the response was written.
	CanceledRequests atomic.Int64
	// PanicsRecovered counts handler panics the recovery middleware
	// converted to 500 responses instead of a process crash.
	PanicsRecovered atomic.Int64
	// WALFailed is a gauge: 1 after the write-ahead log latched its sticky
	// failed state, 0 while it is healthy.
	WALFailed atomic.Int64
	// DegradedMode is a gauge: 1 while the server is shedding writes and
	// serving reads only, 0 in normal operation.
	DegradedMode atomic.Int64
}

// ServerCounterValues is the plain-value snapshot of ServerCounters that
// marshals into the /statsz response.
type ServerCounterValues struct {
	QueryTimeouts    int64 `json:"query_timeouts"`
	CanceledRequests int64 `json:"canceled_requests"`
	PanicsRecovered  int64 `json:"panics_recovered"`
	WALFailed        int64 `json:"wal_failed"`
	DegradedMode     int64 `json:"degraded_mode"`
}

// Snapshot reads every counter once. The values are individually atomic,
// not a consistent cut — fine for monitoring.
func (c *ServerCounters) Snapshot() ServerCounterValues {
	return ServerCounterValues{
		QueryTimeouts:    c.QueryTimeouts.Load(),
		CanceledRequests: c.CanceledRequests.Load(),
		PanicsRecovered:  c.PanicsRecovered.Load(),
		WALFailed:        c.WALFailed.Load(),
		DegradedMode:     c.DegradedMode.Load(),
	}
}
