package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSMAPETerm(t *testing.T) {
	if got := SMAPETerm(100, 100); got != 0 {
		t.Errorf("equal = %v", got)
	}
	// |110-90| / ((110+90)/2) = 20/100 = 20%.
	if got := SMAPETerm(110, 90); math.Abs(got-20) > 1e-9 {
		t.Errorf("sMAPE = %v, want 20", got)
	}
	// Symmetry.
	if SMAPETerm(110, 90) != SMAPETerm(90, 110) {
		t.Error("not symmetric")
	}
	// Degenerate zero denominator.
	if got := SMAPETerm(0, 0); got != 0 {
		t.Errorf("zero case = %v", got)
	}
	// Bounded by 200%.
	if got := SMAPETerm(1000, 0); math.Abs(got-200) > 1e-9 {
		t.Errorf("max = %v", got)
	}
}

func TestWeightedErrorTerm(t *testing.T) {
	// Weight 0.5 of a 20% term contributes 10.
	if got := WeightedErrorTerm(0.5, 110, 90); math.Abs(got-10) > 1e-9 {
		t.Errorf("weighted = %v", got)
	}
}

func TestQError(t *testing.T) {
	if got := QError(10, 10); got != 1 {
		t.Errorf("exact = %v", got)
	}
	if got := QError(100, 10); got != 10 {
		t.Errorf("over = %v", got)
	}
	if got := QError(1, 10); got != 10 {
		t.Errorf("under = %v", got)
	}
	// Empty-set handling: est'=max(est,1), n'=max(n,1).
	if got := QError(0, 0); got != 1 {
		t.Errorf("both empty = %v", got)
	}
	if got := QError(0.2, 5); got != 5 {
		t.Errorf("sub-one estimate = %v", got)
	}
}

func TestQErrorProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		q := QError(float64(a), float64(b))
		return q >= 1 && q == QError(float64(b), float64(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeans(t *testing.T) {
	if Mean(nil) != 0 || MeanInt(nil) != 0 {
		t.Error("empty means")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := MeanInt([]int{2, 4}); got != 3 {
		t.Errorf("MeanInt = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("max = %v", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("min = %v", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile")
	}
}

func TestLog10(t *testing.T) {
	if Log10(100) != 2 {
		t.Error("log10(100)")
	}
	if Log10(0) != 0 || Log10(-5) != 0 {
		t.Error("guarded log10")
	}
}
