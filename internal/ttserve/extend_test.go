package ttserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"pathhist"
)

// postBatch serialises a store and POSTs it to /extend.
func postBatch(t *testing.T, url string, batch *pathhist.Store) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if _, err := batch.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/extend", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestExtendEndpoint drives the live-ingestion path end to end over HTTP:
// a batch in the traj binary format is ingested, the epoch advances, and a
// repeated query reflects the new samples without a server restart.
func TestExtendEndpoint(t *testing.T) {
	eng, ids := testEngine(t)
	srv := httptest.NewServer(NewHandlerWith(eng, Config{EnableExtend: true}))
	defer srv.Close()

	queryURL := fmt.Sprintf("%s/query?path=%d,%d,%d&beta=10&until=%d",
		srv.URL, ids["A"], ids["B"], ids["E"], int64(1)<<40)
	before, err := fetch(queryURL)
	if err != nil {
		t.Fatal(err)
	}
	if before.Epoch != 0 {
		t.Fatalf("pre-extend epoch = %d", before.Epoch)
	}

	day := int64(86400)
	batch := pathhist.NewStore()
	batch.Add(3, []pathhist.Entry{
		{Edge: ids["A"], T: day, TT: 5},
		{Edge: ids["B"], T: day + 5, TT: 5},
		{Edge: ids["E"], T: day + 10, TT: 5},
	})
	resp := postBatch(t, srv.URL, batch)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("extend status = %d", resp.StatusCode)
	}
	var er ExtendResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.Trajectories != 1 || er.Epoch != 1 || er.Total != 5 {
		t.Fatalf("extend response = %+v", er)
	}

	after, err := fetch(queryURL)
	if err != nil {
		t.Fatal(err)
	}
	if after.Epoch != 1 || after.FullCacheHit {
		t.Fatalf("post-extend response: epoch %d, fullCacheHit %v", after.Epoch, after.FullCacheHit)
	}
	if want := before.SubQueries[0].Samples + 1; after.SubQueries[0].Samples != want {
		t.Fatalf("post-extend samples = %d, want %d", after.SubQueries[0].Samples, want)
	}

	// /statsz surfaces the ingest counters and the new epoch.
	sresp, err := http.Get(srv.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st Stats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if !st.ExtendEnabled || st.Extends != 1 || st.ExtendTrajectories != 1 ||
		st.Epoch != 1 || st.Partitions != 2 || st.Trajectories != 5 || st.LastExtendUnix == 0 {
		t.Fatalf("stats after extend = %+v", st)
	}
	// The epoch publication swept both caches eagerly; the purge counters
	// surface through /statsz (lazy invalidations only remain for queries
	// racing the publication on a pinned snapshot).
	if st.CachePurges == 0 || st.FullCachePurges == 0 {
		t.Fatalf("no cache purges surfaced after extend: %+v", st)
	}
}

// TestExtendEndpointErrors covers the rejection paths: wrong method, bad
// body, overlapping batch — and that a rejected batch changes nothing.
func TestExtendEndpointErrors(t *testing.T) {
	eng, ids := testEngine(t)
	srv := httptest.NewServer(NewHandlerWith(eng, Config{EnableExtend: true}))
	defer srv.Close()

	if resp, err := http.Get(srv.URL + "/extend"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /extend status = %d", resp.StatusCode)
		}
	}
	resp, err := http.Post(srv.URL+"/extend", "application/octet-stream",
		strings.NewReader("not a traj store"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body status = %d", resp.StatusCode)
	}

	// A batch inside the indexed time range is a semantic rejection: 422.
	overlap := pathhist.NewStore()
	overlap.Add(1, []pathhist.Entry{{Edge: ids["A"], T: 1, TT: 2}})
	resp = postBatch(t, srv.URL, overlap)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("overlapping batch status = %d", resp.StatusCode)
	}

	var st Stats
	sresp, err := http.Get(srv.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 0 || st.Extends != 0 || st.ExtendRejects != 2 {
		t.Fatalf("stats after rejects = %+v", st)
	}
}

// TestExtendDisabledByDefault: without Config.EnableExtend the endpoint
// does not exist.
func TestExtendDisabledByDefault(t *testing.T) {
	eng, _ := testEngine(t)
	srv := httptest.NewServer(NewHandler(eng))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/extend", "application/octet-stream", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled /extend status = %d", resp.StatusCode)
	}
}

// TestExtendWhileServingConcurrently hammers /query from several goroutines
// while batches arrive through /extend (run under -race in CI): the HTTP
// layer statement of the non-blocking ingestion contract.
func TestExtendWhileServingConcurrently(t *testing.T) {
	eng, ids := testEngine(t)
	srv := httptest.NewServer(NewHandlerWith(eng, Config{EnableExtend: true}))
	defer srv.Close()

	urls := []string{
		fmt.Sprintf("%s/query?path=%d,%d,%d&beta=10&until=%d", srv.URL, ids["A"], ids["B"], ids["E"], int64(1)<<40),
		fmt.Sprintf("%s/query?path=%d&beta=5&until=%d", srv.URL, ids["A"], int64(1)<<40),
		fmt.Sprintf("%s/query?path=%d&tod=00:00&window=900&beta=1", srv.URL, ids["B"]),
	}
	done := make(chan struct{})
	errs := make(chan error, 4)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				if _, err := fetch(urls[(i+g)%len(urls)]); err != nil {
					errs <- fmt.Errorf("goroutine %d: %w", g, err)
					return
				}
			}
		}(g)
	}
	day := int64(86400)
	for b := 1; b <= 4; b++ {
		batch := pathhist.NewStore()
		at := int64(b) * day
		batch.Add(pathhist.UserID(b), []pathhist.Entry{
			{Edge: ids["A"], T: at, TT: 3 + int32(b)},
			{Edge: ids["B"], T: at + 5, TT: 4},
			{Edge: ids["E"], T: at + 10, TT: 4},
		})
		resp := postBatch(t, srv.URL, batch)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			close(done)
			wg.Wait()
			t.Fatalf("batch %d status = %d", b, resp.StatusCode)
		}
	}
	close(done)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	final, err := fetch(urls[0])
	if err != nil {
		t.Fatal(err)
	}
	if final.Epoch != 4 || final.SubQueries[0].Samples != 2+4 {
		t.Fatalf("final response: epoch %d, samples %d, want 4 and 6",
			final.Epoch, final.SubQueries[0].Samples)
	}
}
