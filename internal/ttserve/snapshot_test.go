package ttserve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pathhist"
)

// TestSnapshotEndpoint: POST /snapshot persists the served index to the
// configured directory, reports what it wrote, and surfaces the outcome in
// /statsz; the written file restores an equivalent engine.
func TestSnapshotEndpoint(t *testing.T) {
	eng, ids := testEngine(t)
	dir := t.TempDir()
	srv := httptest.NewServer(NewServer(eng, Config{EnableExtend: true, SnapshotDir: dir}))
	defer srv.Close()

	// GET is rejected.
	resp, err := http.Get(srv.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /snapshot status = %d", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/snapshot", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /snapshot status = %d", resp.StatusCode)
	}
	var sr SnapshotResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Bytes <= 0 || sr.Epoch != 0 || !strings.HasSuffix(sr.Path, pathhist.SnapshotName(sr.Epoch)) {
		t.Fatalf("snapshot response = %+v", sr)
	}
	fi, err := os.Stat(filepath.Join(dir, pathhist.SnapshotName(sr.Epoch)))
	if err != nil || fi.Size() != sr.Bytes {
		t.Fatalf("snapshot file: %v (size %d, want %d)", err, fi.Size(), sr.Bytes)
	}

	// /statsz reflects the write.
	resp, err = http.Get(srv.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.SnapshotEpoch != 0 || st.SnapshotBytes != sr.Bytes || st.LastSnapshotUnix == 0 {
		t.Fatalf("statsz snapshot fields = epoch %d bytes %d unix %d",
			st.SnapshotEpoch, st.SnapshotBytes, st.LastSnapshotUnix)
	}

	// The persisted snapshot restores a serving-equivalent engine.
	g, _ := pathhist.PaperExampleNetwork()
	restored, err := pathhist.LoadSnapshotFile(g, sr.Path, pathhist.Options{
		Partition: pathhist.NoPartition, BucketSeconds: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := pathhist.Query{Path: pathhist.Path{ids["A"], ids["B"], ids["E"]}, Beta: 2}
	a, err := eng.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanSeconds != b.MeanSeconds || a.Epoch != b.Epoch {
		t.Fatalf("restored engine disagrees: %v/%d vs %v/%d", a.MeanSeconds, a.Epoch, b.MeanSeconds, b.Epoch)
	}
}

// TestSnapshotEndpointGating: /snapshot only exists behind EnableExtend
// plus a configured directory, and WriteSnapshot without a directory fails.
func TestSnapshotEndpointGating(t *testing.T) {
	eng, _ := testEngine(t)
	for name, cfg := range map[string]Config{
		"no extend": {SnapshotDir: t.TempDir()},
		"no dir":    {EnableExtend: true},
	} {
		srv := httptest.NewServer(NewServer(eng, cfg))
		resp, err := http.Post(srv.URL+"/snapshot", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: POST /snapshot status = %d, want 404", name, resp.StatusCode)
		}
		srv.Close()
	}
	s := NewServer(eng, Config{})
	if _, err := s.WriteSnapshot(); err == nil {
		t.Fatal("WriteSnapshot without a directory succeeded")
	}
}
