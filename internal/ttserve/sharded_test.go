package ttserve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"pathhist"
	"pathhist/internal/failpoint"
	"pathhist/internal/sharded"
	"pathhist/internal/workload"
)

func shardedDataset(t *testing.T) *workload.Dataset {
	t.Helper()
	cfg := workload.SmallConfig()
	cfg.Net.Cities = 3
	cfg.Net.GridSize = 5
	cfg.Drivers = 12
	cfg.Days = 20
	cfg.TargetTrips = 300
	return workload.BuildDataset(cfg)
}

// shardedFixture is a scatter-gather front over n shards plus an unsharded
// control server over the same (deep-copied) store, both on test listeners.
type shardedFixture struct {
	ds       *workload.Dataset
	front    *ShardedServer
	frontURL string
	single   string // control server URL
}

func newShardedFixture(t *testing.T, n int, cfg Config) *shardedFixture {
	t.Helper()
	ds := shardedDataset(t)
	ds.Store.SortByStart()
	cluster, err := sharded.Build(ds.G, ds.Store.Slice(0, ds.Store.Len()), sharded.Config{Shards: n})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	shards := make([]*Server, cluster.NumShards())
	for i := range shards {
		shards[i] = NewServer(cluster.Engine(i), Config{EnableExtend: cfg.EnableExtend})
	}
	front, err := NewShardedServer(cluster, shards, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fsrv := httptest.NewServer(front)
	t.Cleanup(fsrv.Close)

	eng, err := pathhist.NewEngine(ds.G, ds.Store.Slice(0, ds.Store.Len()), pathhist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	ssrv := httptest.NewServer(NewServer(eng, Config{EnableExtend: cfg.EnableExtend}))
	t.Cleanup(ssrv.Close)
	return &shardedFixture{ds: ds, front: front, frontURL: fsrv.URL, single: ssrv.URL}
}

func shardedPathParam(p pathhist.Path) string {
	out := ""
	for i, e := range p {
		if i > 0 {
			out += ","
		}
		out += strconv.Itoa(int(e))
	}
	return out
}

// queryURLs is a deterministic differential mix: sub-paths of real
// trajectories, fixed full-range and periodic intervals, varying β, a user
// filter.
func (f *shardedFixture) queryURLs() []string {
	var urls []string
	for i := 0; i < 12; i++ {
		tr := f.ds.Store.Get(pathhist.TrajID((i * 37) % f.ds.Store.Len()))
		tp := tr.Path()
		plen := 1 + i%4
		if plen > len(tp) {
			plen = len(tp)
		}
		param := shardedPathParam(pathhist.Path(tp[:plen]))
		switch i % 3 {
		case 0:
			urls = append(urls, fmt.Sprintf("/query?path=%s&beta=5", param))
		case 1:
			urls = append(urls, fmt.Sprintf("/query?path=%s", param))
		default:
			urls = append(urls, fmt.Sprintf("/query?path=%s&tod=08:15&window=1800&beta=10", param))
		}
	}
	first := f.ds.Store.Get(0)
	urls = append(urls, fmt.Sprintf("/query?path=%s&user=3&beta=8", shardedPathParam(pathhist.Path(first.Path()[:1]))))
	return urls
}

func shardedGetJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp.StatusCode
}

// TestShardedFrontBitIdentity: with every shard healthy, the front's JSON
// answers — mean, quantiles, sub-queries, histogram — are identical to the
// unsharded server's over the same data, for every query shape the /query
// surface accepts, and never flagged partial.
func TestShardedFrontBitIdentity(t *testing.T) {
	for _, n := range []int{1, 3} {
		f := newShardedFixture(t, n, Config{})
		for _, q := range f.queryURLs() {
			var got ShardedResponse
			var want Response
			if code := shardedGetJSON(t, f.frontURL+q, &got); code != http.StatusOK {
				t.Fatalf("shards=%d %s: front status %d", n, q, code)
			}
			if code := shardedGetJSON(t, f.single+q, &want); code != http.StatusOK {
				t.Fatalf("shards=%d %s: control status %d", n, q, code)
			}
			if got.Partial || len(got.MissingShards) != 0 {
				t.Fatalf("shards=%d %s: healthy cluster answered partial: %+v", n, q, got)
			}
			if math.Abs(got.MeanSeconds-want.MeanSeconds) > 1e-9 ||
				got.P05 != want.P05 || got.P50 != want.P50 || got.P95 != want.P95 ||
				got.Empty != want.Empty {
				t.Fatalf("shards=%d %s:\nfront   %+v\ncontrol %+v", n, q, got.Response, want)
			}
			if len(got.SubQueries) != len(want.SubQueries) {
				t.Fatalf("shards=%d %s: %d sub-queries vs %d", n, q, len(got.SubQueries), len(want.SubQueries))
			}
			for i := range got.SubQueries {
				gs, ws := got.SubQueries[i], want.SubQueries[i]
				if gs.Segments != ws.Segments || gs.Samples != ws.Samples || gs.Fallback != ws.Fallback ||
					math.Abs(gs.MeanTT-ws.MeanTT) > 1e-9 {
					t.Fatalf("shards=%d %s sub %d: %+v vs %+v", n, q, i, gs, ws)
				}
			}
			if len(got.Histogram) != len(want.Histogram) {
				t.Fatalf("shards=%d %s: %d buckets vs %d", n, q, len(got.Histogram), len(want.Histogram))
			}
			for i := range got.Histogram {
				if got.Histogram[i] != want.Histogram[i] {
					t.Fatalf("shards=%d %s bucket %d: %+v vs %+v", n, q, i, got.Histogram[i], want.Histogram[i])
				}
			}
		}
	}
}

// TestShardedFrontExtend: a batch POSTed to the front routes whole to one
// shard, the cluster total advances, and the extended data answers queries
// identically to an unsharded server that ingested the same batch.
func TestShardedFrontExtend(t *testing.T) {
	ds := shardedDataset(t)
	ds.Store.SortByStart()
	cuts := ds.Store.QuiescentCuts()
	if len(cuts) == 0 {
		t.Skip("no quiescent cuts in the dataset")
	}
	cut := cuts[len(cuts)/2]
	base, batch := ds.Store.Slice(0, cut), ds.Store.Slice(cut, ds.Store.Len())

	cluster, err := sharded.Build(ds.G, base.Slice(0, base.Len()), sharded.Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	shards := make([]*Server, cluster.NumShards())
	for i := range shards {
		shards[i] = NewServer(cluster.Engine(i), Config{EnableExtend: true})
	}
	front, err := NewShardedServer(cluster, shards, Config{EnableExtend: true})
	if err != nil {
		t.Fatal(err)
	}
	fsrv := httptest.NewServer(front)
	defer fsrv.Close()

	eng, err := pathhist.NewEngine(ds.G, base.Slice(0, base.Len()), pathhist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Extend(batch.Slice(0, batch.Len())); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := batch.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(fsrv.URL+"/extend", "application/octet-stream", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var ext ShardedExtendResponse
	if err := json.NewDecoder(resp.Body).Decode(&ext); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("extend status = %d", resp.StatusCode)
	}
	if ext.Shard < 0 || ext.Shard >= 4 || ext.ClusterTotal != ds.Store.Len() {
		t.Fatalf("extend response: %+v (want cluster total %d)", ext, ds.Store.Len())
	}

	// The batch's own edges now answer through the merged scan, exactly as
	// the unsharded engine that ingested the same batch answers.
	qp := pathhist.Path(batch.Get(0).Path()[:1])
	q := pathhist.Query{Path: qp, Beta: 50}
	want, err := eng.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	var got ShardedResponse
	url := fmt.Sprintf("%s/query?path=%s&beta=50", fsrv.URL, shardedPathParam(qp))
	if code := shardedGetJSON(t, url, &got); code != http.StatusOK {
		t.Fatalf("post-extend query status %d", code)
	}
	if got.Partial || math.Abs(got.MeanSeconds-want.MeanSeconds) > 1e-9 ||
		len(got.SubQueries) != len(want.Subs) || got.SubQueries[0].Samples != want.Subs[0].Samples {
		t.Fatalf("post-extend divergence: front %+v vs engine mean %v subs %+v", got, want.MeanSeconds, want.Subs)
	}
}

// TestShardedFrontPartialDegradation: with one shard fault-injected down,
// /query still answers 200 from the survivors with the partial flag and the
// missing shard listed; with too many shards down it sheds 503 with a
// Retry-After hint instead of lying.
func TestShardedFrontPartialDegradation(t *testing.T) {
	f := newShardedFixture(t, 4, Config{})
	boom := errors.New("injected shard fault")
	site := failpoint.ShardDown + ".2"
	failpoint.Enable(site, failpoint.Injection{Err: boom})
	defer failpoint.Disable(site)

	q := f.queryURLs()[0]
	var got ShardedResponse
	if code := shardedGetJSON(t, f.frontURL+q, &got); code != http.StatusOK {
		t.Fatalf("one-shard-down query status %d", code)
	}
	if !got.Partial || len(got.MissingShards) != 1 || got.MissingShards[0] != 2 {
		t.Fatalf("one-shard-down response: partial=%v missing=%v", got.Partial, got.MissingShards)
	}
	var frac float64
	for _, b := range got.Histogram {
		frac += b.Fraction
	}
	if !got.Empty && math.Abs(frac-1) > 1e-9 {
		t.Fatalf("partial histogram fractions sum to %v", frac)
	}
	var st ShardedStats
	if code := shardedGetJSON(t, f.frontURL+"/statsz", &st); code != http.StatusOK {
		t.Fatalf("statsz status %d", code)
	}
	if st.Counters.PartialResponses < 1 || st.Shards != 4 {
		t.Fatalf("statsz after partial answer: %+v", st.Counters)
	}

	// Take three of four down: coverage falls below the 0.5 floor.
	for _, k := range []string{".0", ".1"} {
		failpoint.Enable(failpoint.ShardDown+k, failpoint.Injection{Err: boom})
		defer failpoint.Disable(failpoint.ShardDown + k)
	}
	resp, err := http.Get(f.frontURL + q)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("below-coverage query status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("below-coverage 503 without Retry-After")
	}
}

// TestShardedFrontDegradedIngestReroutes: a shard already latched degraded
// at construction never receives a batch — every extend routes to the
// healthy shard.
func TestShardedFrontDegradedIngestReroutes(t *testing.T) {
	ds := shardedDataset(t)
	ds.Store.SortByStart()
	cuts := ds.Store.QuiescentCuts()
	if len(cuts) < 3 {
		t.Skipf("only %d quiescent cuts", len(cuts))
	}
	base := ds.Store.Slice(0, cuts[len(cuts)-3])
	b1 := ds.Store.Slice(cuts[len(cuts)-3], cuts[len(cuts)-2])
	b2 := ds.Store.Slice(cuts[len(cuts)-2], ds.Store.Len())

	cluster, err := sharded.Build(ds.G, base.Slice(0, base.Len()), sharded.Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	shards := make([]*Server, 2)
	for i := range shards {
		shards[i] = NewServer(cluster.Engine(i), Config{EnableExtend: true})
	}
	shards[0].enterDegraded(errors.New("simulated write-ahead log failure"))
	front, err := NewShardedServer(cluster, shards, Config{EnableExtend: true})
	if err != nil {
		t.Fatal(err)
	}
	fsrv := httptest.NewServer(front)
	defer fsrv.Close()

	for i, b := range []*pathhist.Store{b1, b2} {
		var buf bytes.Buffer
		if _, err := b.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(fsrv.URL+"/extend", "application/octet-stream", bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var ext ShardedExtendResponse
		if err := json.NewDecoder(resp.Body).Decode(&ext); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || ext.Shard != 1 {
			t.Fatalf("batch %d: status %d, shard %d — degraded shard 0 must never ingest", i, resp.StatusCode, ext.Shard)
		}
	}
	var st ShardedStats
	if code := shardedGetJSON(t, fsrv.URL+"/statsz", &st); code != http.StatusOK {
		t.Fatalf("statsz status %d", code)
	}
	if st.Counters.IngestReroutes < 1 {
		t.Fatalf("no ingest reroutes counted: %+v", st.Counters)
	}
}

// TestShardedFrontDrain: BeginDrain flips /readyz and sheds /query and
// /extend with 503 + Retry-After, mirroring the single-engine contract.
func TestShardedFrontDrain(t *testing.T) {
	f := newShardedFixture(t, 2, Config{EnableExtend: true})
	f.front.BeginDrain()
	for _, probe := range []string{"/readyz", f.queryURLs()[0]} {
		resp, err := http.Get(f.frontURL + probe)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("draining %s: status %d, want 503", probe, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("draining %s: no Retry-After", probe)
		}
	}
	resp, err := http.Post(f.frontURL+"/extend", "application/octet-stream", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("draining /extend: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}

// TestRetryAfterJitter: the hint stays within [base, base+jitter] whole
// seconds and actually varies — shed clients must not retry in lockstep.
func TestRetryAfterJitter(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 300; i++ {
		v := RetryAfter()
		n, err := strconv.Atoi(v)
		if err != nil || n < retryAfterSeconds || n > retryAfterSeconds+retryAfterJitterSeconds {
			t.Fatalf("Retry-After %q outside [%d, %d]", v, retryAfterSeconds, retryAfterSeconds+retryAfterJitterSeconds)
		}
		seen[v] = true
	}
	if len(seen) < 2 {
		t.Fatalf("Retry-After never varied across 300 draws: %v", seen)
	}
}
