package ttserve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"pathhist"
	"pathhist/internal/failpoint"
	"pathhist/internal/wal"
)

// stripTelemetry zeroes the per-request cache/scan telemetry so two
// servings of the same answer compare equal on the statistical content.
func stripTelemetry(r Response) Response {
	r.IndexScans, r.CacheHits, r.CacheMisses, r.Invalidations = 0, 0, 0, 0
	r.FullCacheHit = false
	return r
}

// getJSON fetches a URL and decodes the JSON body into out, returning the
// status code.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding body: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestFailStopEndToEnd is the fault-injection acceptance suite of
// DESIGN.md §12: an injected fsync failure on the Nth acknowledged batch
// must (a) refuse that batch and every later one, (b) flip the server into
// degraded read-only mode — 503 on the mutating endpoints, 200 with
// identical answers on /query — and (c) leave on-disk state from which a
// restart recovers exactly the acknowledged prefix, bit-identically.
func TestFailStopEndToEnd(t *testing.T) {
	defer failpoint.Reset()
	dir := t.TempDir()
	walPath := filepath.Join(dir, "extend.wal")
	log, err := wal.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	eng, ids := testEngine(t)
	srv := httptest.NewServer(NewServer(eng, Config{
		EnableExtend: true, WAL: log, SnapshotDir: filepath.Join(dir, "snap"),
	}))
	defer srv.Close()
	s := srv.Config.Handler.(*Server)

	// Two acknowledged batches, then remember the served answer.
	for d := int64(1); d <= 2; d++ {
		resp := postBatch(t, srv.URL, dayBatch(ids, 7, d))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("extend day %d: status %d", d, resp.StatusCode)
		}
	}
	want := stripTelemetry(queryMean(t, srv.URL, ids))
	ackTrajs := eng.Trajectories()
	ackEpoch := eng.Epoch()

	// The third batch's fsync fails: the disk ate the write.
	failpoint.Enable(wal.FailpointAppendSync, failpoint.Injection{Err: errors.New("simulated disk failure")})
	resp := postBatch(t, srv.URL, dayBatch(ids, 7, 3))
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("failed extend body not JSON: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError || e.Error == "" {
		t.Fatalf("failed extend: status %d, body %+v; want 500 with an error", resp.StatusCode, e)
	}
	failpoint.Reset()

	if !s.Degraded() {
		t.Fatal("server not degraded after the WAL failure")
	}
	// No later batch is acknowledged, even though the disk "recovered".
	resp = postBatch(t, srv.URL, dayBatch(ids, 7, 4))
	e = ErrorResponse{}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("degraded extend body not JSON: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(e.Error, "degraded") {
		t.Fatalf("degraded extend: status %d, body %+v; want 503 degraded", resp.StatusCode, e)
	}
	// Compaction and snapshots are shut too: both mutate durable anchors.
	for _, ep := range []string{"/compact", "/snapshot"} {
		pr, err := http.Post(srv.URL+ep, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		pr.Body.Close()
		if pr.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("degraded POST %s: status %d, want 503", ep, pr.StatusCode)
		}
	}
	if _, err := s.WriteSnapshot(); err == nil {
		t.Fatal("WriteSnapshot succeeded in degraded mode")
	}
	// Reads keep serving the acknowledged state, answers unchanged.
	got := stripTelemetry(queryMean(t, srv.URL, ids))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("degraded read diverged:\n got %+v\nwant %+v", got, want)
	}
	// Routability: /readyz stays 200 (reads work) but says degraded.
	rr, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 256)
	n, _ := rr.Body.Read(body)
	rr.Body.Close()
	if rr.StatusCode != http.StatusOK || !strings.Contains(string(body[:n]), "degraded") {
		t.Fatalf("readyz: status %d, body %q; want 200 mentioning degraded", rr.StatusCode, body[:n])
	}
	var st Stats
	if code := getJSON(t, srv.URL+"/statsz", &st); code != http.StatusOK {
		t.Fatalf("statsz: status %d", code)
	}
	if st.WALFailed != 1 || st.DegradedMode != 1 || st.DegradedCause == "" {
		t.Fatalf("statsz gauges: wal_failed %d, degraded_mode %d, cause %q",
			st.WALFailed, st.DegradedMode, st.DegradedCause)
	}

	// Restart: only the files survive. Recovery must produce exactly the
	// acknowledged prefix — two batches, same epoch, same answers — and a
	// healthy write path.
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	relog, err := wal.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer relog.Close()
	if relog.Failed() {
		t.Fatal("reopened log inherited the failed state")
	}
	eng2, _ := testEngine(t)
	applied, err := ReplayWAL(eng2, relog)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if applied != 2 {
		t.Fatalf("replay applied %d batches, want the 2 acknowledged", applied)
	}
	if eng2.Trajectories() != ackTrajs || eng2.Epoch() != ackEpoch {
		t.Fatalf("recovered %d trajs @ epoch %d, acknowledged %d @ %d",
			eng2.Trajectories(), eng2.Epoch(), ackTrajs, ackEpoch)
	}
	srv2 := httptest.NewServer(NewServer(eng2, Config{EnableExtend: true, WAL: relog}))
	defer srv2.Close()
	s2 := srv2.Config.Handler.(*Server)
	if s2.Degraded() {
		t.Fatal("recovered server started degraded")
	}
	got2 := stripTelemetry(queryMean(t, srv2.URL, ids))
	if !reflect.DeepEqual(got2, want) {
		t.Fatalf("recovered answers diverge:\n got %+v\nwant %+v", got2, want)
	}
	// The write path is back: the batch that failed mid-flight can be
	// resubmitted and acknowledged now.
	resp = postBatch(t, srv2.URL, dayBatch(ids, 7, 3))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit after recovery: status %d", resp.StatusCode)
	}
}

// TestPanicIsolation: a panic inside a handler — injected at the /query
// failpoint, standing in for any latent bug a hostile request tickles —
// answers that request with a 500 JSON error and increments the counter;
// the process and every later request keep working.
func TestPanicIsolation(t *testing.T) {
	defer failpoint.Reset()
	eng, ids := testEngine(t)
	srv := httptest.NewServer(NewServer(eng, Config{}))
	defer srv.Close()
	s := srv.Config.Handler.(*Server)

	okURL := srv.URL + "/query?path=" + queryPath(ids)
	failpoint.Enable(FailpointQueryPanic, failpoint.Injection{Panic: "injected bug"})
	var e ErrorResponse
	if code := getJSON(t, okURL, &e); code != http.StatusInternalServerError {
		t.Fatalf("panicking query: status %d, want 500", code)
	}
	if !strings.Contains(e.Error, "internal error") {
		t.Fatalf("panicking query body: %+v", e)
	}
	failpoint.Reset()
	if got := s.Counters().PanicsRecovered.Load(); got != 1 {
		t.Fatalf("panics_recovered = %d, want 1", got)
	}
	// One bad request harmed nobody: the next one answers normally.
	var r Response
	if code := getJSON(t, okURL, &r); code != http.StatusOK {
		t.Fatalf("query after panic: status %d", code)
	}
	var st Stats
	getJSON(t, srv.URL+"/statsz", &st)
	if st.PanicsRecovered != 1 {
		t.Fatalf("statsz panics_recovered = %d, want 1", st.PanicsRecovered)
	}
}

// queryPath formats the A,B,E path parameter (plus a small beta) for URL
// building.
func queryPath(ids map[string]pathhist.EdgeID) string {
	return fmt.Sprintf("%d,%d,%d&beta=2", ids["A"], ids["B"], ids["E"])
}
