package ttserve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"pathhist"
)

// extendBatches posts n strictly-newer one-trajectory batches.
func extendBatches(t *testing.T, url string, ids map[string]pathhist.EdgeID, n int) {
	t.Helper()
	day := int64(86400)
	for b := 0; b < n; b++ {
		at := day * int64(b+1)
		batch := pathhist.NewStore()
		batch.Add(pathhist.UserID(b%3), []pathhist.Entry{
			{Edge: ids["A"], T: at, TT: 4},
			{Edge: ids["B"], T: at + 4, TT: 5},
			{Edge: ids["E"], T: at + 9, TT: 4},
		})
		resp := postBatch(t, url, batch)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("extend %d status = %d", b, resp.StatusCode)
		}
	}
}

// TestCompactEndpoint drives ingest fragmentation and manual compaction end
// to end over HTTP: many small /extend batches pile up partitions, POST
// /compact merges them, query answers stay identical, and /statsz reports
// the compaction.
func TestCompactEndpoint(t *testing.T) {
	eng, ids := testEngine(t)
	srv := httptest.NewServer(NewHandlerWith(eng, Config{EnableExtend: true}))
	defer srv.Close()

	extendBatches(t, srv.URL, ids, 6)
	queryURL := fmt.Sprintf("%s/query?path=%d,%d,%d&beta=2&until=%d",
		srv.URL, ids["A"], ids["B"], ids["E"], int64(1)<<40)
	before, err := fetch(queryURL)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(srv.URL+"/compact", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compact status = %d", resp.StatusCode)
	}
	var cr CompactResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if cr.PartitionsBefore != 7 || cr.PartitionsAfter != 1 || cr.Runs != 1 {
		t.Fatalf("compact response = %+v", cr)
	}
	if cr.Epoch != 7 { // 6 ingest epochs + 1 compaction epoch
		t.Fatalf("epoch after compaction = %d", cr.Epoch)
	}

	after, err := fetch(queryURL)
	if err != nil {
		t.Fatal(err)
	}
	if after.MeanSeconds != before.MeanSeconds || len(after.Histogram) != len(before.Histogram) {
		t.Fatalf("compaction changed answers: %+v vs %+v", after, before)
	}
	if after.Epoch != 7 {
		t.Fatalf("post-compaction query epoch = %d", after.Epoch)
	}

	sresp, err := http.Get(srv.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st Stats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Partitions != 1 || st.Compactions != 1 || st.LastCompactionMerged != 6 || st.LastCompactUnix == 0 {
		t.Fatalf("statsz after compaction = %+v", st)
	}
	if st.Index == "" || st.Epoch != 7 {
		t.Fatalf("statsz index summary missing: %+v", st)
	}

	// GET is rejected; a second POST is an idempotent no-op.
	if resp, err := http.Get(srv.URL + "/compact"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /compact status = %d", resp.StatusCode)
		}
	}
	resp2, err := http.Post(srv.URL+"/compact", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var cr2 CompactResponse
	if err := json.NewDecoder(resp2.Body).Decode(&cr2); err != nil {
		t.Fatal(err)
	}
	if cr2.PartitionsBefore != 1 || cr2.PartitionsAfter != 1 || cr2.Epoch != 7 {
		t.Fatalf("idempotent compact response = %+v", cr2)
	}
}

// TestCompactDisabledWithoutExtend: the maintenance endpoint only exists on
// deployments that opted into mutation.
func TestCompactDisabledWithoutExtend(t *testing.T) {
	eng, _ := testEngine(t)
	srv := httptest.NewServer(NewHandler(eng))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/compact", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/compact on read-only deployment: status = %d", resp.StatusCode)
	}
}

// TestExtendAdmissionTrajectoryBudget: a batch above the configured
// trajectory budget is rejected with 413 and a JSON error before the engine
// sees it, and the rejection is counted separately from malformed bodies.
func TestExtendAdmissionTrajectoryBudget(t *testing.T) {
	eng, ids := testEngine(t)
	srv := httptest.NewServer(NewHandlerWith(eng, Config{
		EnableExtend:          true,
		MaxExtendTrajectories: 2,
	}))
	defer srv.Close()

	day := int64(86400)
	big := pathhist.NewStore()
	for k := 0; k < 3; k++ {
		big.Add(pathhist.UserID(k), []pathhist.Entry{{Edge: ids["A"], T: day + int64(k)*100, TT: 5}})
	}
	epochBefore := eng.Epoch()
	resp := postBatch(t, srv.URL, big)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch status = %d, want 413", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("rejection content type = %q", ct)
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Error == "" {
		t.Fatalf("rejection body not a JSON error: %v %+v", err, er)
	}
	if eng.Epoch() != epochBefore || eng.Trajectories() != 4 {
		t.Fatal("rejected batch reached the engine")
	}

	// A batch within the budget still lands.
	ok := pathhist.NewStore()
	ok.Add(9, []pathhist.Entry{{Edge: ids["A"], T: 2 * day, TT: 5}})
	resp2 := postBatch(t, srv.URL, ok)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("in-budget batch status = %d", resp2.StatusCode)
	}

	var st Stats
	sresp, err := http.Get(srv.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ExtendOverloadRejects != 1 || st.ExtendRejects != 0 || st.Extends != 1 {
		t.Fatalf("admission counters = %+v", st)
	}
}

// TestExtendAdmissionByteBudget: a body above MaxExtendBytes is rejected
// with 413 + JSON, not the generic 400 of a malformed body.
func TestExtendAdmissionByteBudget(t *testing.T) {
	eng, ids := testEngine(t)
	srv := httptest.NewServer(NewHandlerWith(eng, Config{
		EnableExtend:   true,
		MaxExtendBytes: 64, // far below any serialised batch
	}))
	defer srv.Close()

	batch := pathhist.NewStore()
	for k := 0; k < 16; k++ {
		batch.Add(pathhist.UserID(k), []pathhist.Entry{{Edge: ids["A"], T: 86400 + int64(k)*60, TT: 5}})
	}
	resp := postBatch(t, srv.URL, batch)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status = %d, want 413", resp.StatusCode)
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Error == "" {
		t.Fatalf("rejection body not a JSON error: %v %+v", err, er)
	}
	if eng.Epoch() != 0 {
		t.Fatal("oversized body reached the engine")
	}
}
