package ttserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"pathhist"
	"pathhist/internal/wal"
)

// dayBatch builds a one-trajectory batch whose entries start at day d —
// strictly after the base dataset's time range, so Extend admits it.
func dayBatch(ids map[string]pathhist.EdgeID, user pathhist.UserID, d int64) *pathhist.Store {
	day := d * 86400
	b := pathhist.NewStore()
	b.Add(user, []pathhist.Entry{
		{Edge: ids["A"], T: day, TT: 5},
		{Edge: ids["B"], T: day + 5, TT: 5},
		{Edge: ids["E"], T: day + 10, TT: 5},
	})
	return b
}

// queryMean fetches /query for the A,B,E path over all time and returns the
// decoded response.
func queryMean(t *testing.T, url string, ids map[string]pathhist.EdgeID) Response {
	t.Helper()
	r, err := fetch(fmt.Sprintf("%s/query?path=%d,%d,%d&beta=10&until=%d",
		url, ids["A"], ids["B"], ids["E"], int64(1)<<40))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestExtendWALDurability is the acknowledged ⇒ fsynced ⇒ recovered
// contract over HTTP: every 200 from /extend leaves a log record on disk,
// and after a simulated SIGKILL (the process state vanishes, only the files
// survive) a fresh engine + ReplayWAL reproduces exactly the acknowledged
// state — same trajectory count, same epoch, same query answers.
func TestExtendWALDurability(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "extend.wal")
	log, err := wal.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	eng, ids := testEngine(t)
	srv := httptest.NewServer(NewServer(eng, Config{EnableExtend: true, WAL: log}))
	defer srv.Close()

	for d := int64(1); d <= 3; d++ {
		resp := postBatch(t, srv.URL, dayBatch(ids, 7, d))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("extend day %d: status %d", d, resp.StatusCode)
		}
	}
	if st := log.Stats(); st.Records != 3 || st.Appends != 3 {
		t.Fatalf("wal after 3 acks: %+v", st)
	}
	want := queryMean(t, srv.URL, ids)

	// Crash: no shutdown hook runs; the log file is all that survives.
	// (Close only releases the descriptor — every ack already fsynced.)
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	relog, err := wal.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer relog.Close()
	eng2, _ := testEngine(t)
	applied, err := ReplayWAL(eng2, relog)
	if err != nil || applied != 3 {
		t.Fatalf("replay: applied %d, err %v", applied, err)
	}
	if eng2.Trajectories() != eng.Trajectories() || eng2.Epoch() != eng.Epoch() {
		t.Fatalf("recovered %d trajs @ epoch %d, served %d @ %d",
			eng2.Trajectories(), eng2.Epoch(), eng.Trajectories(), eng.Epoch())
	}
	srv2 := httptest.NewServer(NewServer(eng2, Config{}))
	defer srv2.Close()
	got := queryMean(t, srv2.URL, ids)
	if got.MeanSeconds != want.MeanSeconds || got.P50 != want.P50 || got.Epoch != want.Epoch {
		t.Fatalf("recovered answers diverge: %+v vs %+v", got, want)
	}

	// Replay is idempotent: running it again over the recovered engine
	// applies nothing (every record is covered).
	if applied, err := ReplayWAL(eng2, relog); err != nil || applied != 0 {
		t.Fatalf("second replay: applied %d, err %v", applied, err)
	}
}

// TestExtendWALSnapshotRotation: WriteSnapshot rotates the log (its records
// are covered by the durable snapshot), and recovery from snapshot + the
// remaining log equals the acknowledged state — including when the crash
// lands between snapshot and rotation, leaving covered records the replay
// must skip rather than double-apply.
func TestExtendWALSnapshotRotation(t *testing.T) {
	dir := t.TempDir()
	snapDir := filepath.Join(dir, "snap")
	if err := os.MkdirAll(snapDir, 0o755); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, "extend.wal")
	log, err := wal.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	eng, ids := testEngine(t)
	srv := httptest.NewServer(NewServer(eng, Config{
		EnableExtend: true, WAL: log, SnapshotDir: snapDir,
	}))
	defer srv.Close()
	s := srv.Config.Handler.(*Server)

	postOK := func(d int64) {
		t.Helper()
		resp := postBatch(t, srv.URL, dayBatch(ids, 7, d))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("extend day %d: status %d", d, resp.StatusCode)
		}
	}
	postOK(1)
	postOK(2)
	if _, err := s.WriteSnapshot(); err != nil {
		t.Fatal(err)
	}
	if st := log.Stats(); st.Records != 0 || st.Rotations != 1 {
		t.Fatalf("wal after covering snapshot: %+v", st)
	}
	postOK(3)
	if st := log.Stats(); st.Records != 1 {
		t.Fatalf("wal after post-snapshot extend: %+v", st)
	}
	want := queryMean(t, srv.URL, ids)

	// Recover: newest snapshot + replay of the single uncovered record.
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	snap, err := pathhist.FindLatestSnapshot(snapDir)
	if err != nil || snap == "" {
		t.Fatalf("FindLatestSnapshot: %q, %v", snap, err)
	}
	g, _ := pathhist.PaperExampleNetwork()
	eng2, err := pathhist.LoadSnapshotFile(g, snap, pathhist.Options{
		Partition: pathhist.NoPartition, BucketSeconds: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	relog, err := wal.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer relog.Close()
	if applied, err := ReplayWAL(eng2, relog); err != nil || applied != 1 {
		t.Fatalf("replay: applied %d, err %v", applied, err)
	}
	if eng2.Trajectories() != eng.Trajectories() {
		t.Fatalf("recovered %d trajectories, want %d", eng2.Trajectories(), eng.Trajectories())
	}
	srv2 := httptest.NewServer(NewServer(eng2, Config{}))
	defer srv2.Close()
	got := queryMean(t, srv2.URL, ids)
	if got.MeanSeconds != want.MeanSeconds || got.P50 != want.P50 {
		t.Fatalf("recovered answers diverge: %+v vs %+v", got, want)
	}

	// Crash-between-snapshot-and-rotation: rebuild that state by replaying
	// a log that still holds records the snapshot covers. Nothing may be
	// double-applied.
	eng3, err := pathhist.LoadSnapshotFile(g, snap, pathhist.Options{
		Partition: pathhist.NoPartition, BucketSeconds: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	covered, err := wal.Open(filepath.Join(dir, "covered.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer covered.Close()
	var b1, b3 bytes.Buffer
	if _, err := dayBatch(ids, 7, 1).WriteTo(&b1); err != nil {
		t.Fatal(err)
	}
	if _, err := dayBatch(ids, 7, 3).WriteTo(&b3); err != nil {
		t.Fatal(err)
	}
	// Base held 4 trajectories; days 1 and 2 were snapshotted at total 6.
	if err := covered.Append(4, 1, b1.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := covered.Append(6, 1, b3.Bytes()); err != nil {
		t.Fatal(err)
	}
	if applied, err := ReplayWAL(eng3, covered); err != nil || applied != 1 {
		t.Fatalf("replay over covered records: applied %d, err %v", applied, err)
	}
	if eng3.Trajectories() != eng.Trajectories() {
		t.Fatalf("covered replay: %d trajectories, want %d", eng3.Trajectories(), eng.Trajectories())
	}
}

// TestExtendWALTornTail: a crash mid-append leaves a torn record; Open
// truncates it (it was never acknowledged — the ack strictly follows the
// fsync) and replay recovers exactly the complete records.
func TestExtendWALTornTail(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "extend.wal")
	log, err := wal.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	eng, ids := testEngine(t)
	srv := httptest.NewServer(NewServer(eng, Config{EnableExtend: true, WAL: log}))
	defer srv.Close()
	for d := int64(1); d <= 2; d++ {
		resp := postBatch(t, srv.URL, dayBatch(ids, 7, d))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("extend day %d: status %d", d, resp.StatusCode)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	// The crash hits while record 3 is half-written: simulate with a bare
	// partial header at the tail.
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 17)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	relog, err := wal.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer relog.Close()
	st := relog.Stats()
	if !st.TornTail || st.TornBytes != 17 || st.Records != 2 {
		t.Fatalf("torn-tail repair: %+v", st)
	}
	eng2, _ := testEngine(t)
	if applied, err := ReplayWAL(eng2, relog); err != nil || applied != 2 {
		t.Fatalf("replay: applied %d, err %v", applied, err)
	}
	if eng2.Trajectories() != eng.Trajectories() {
		t.Fatalf("recovered %d trajectories, want %d", eng2.Trajectories(), eng.Trajectories())
	}
}

// TestReplayWrongSnapshot: a log that does not descend from the restored
// snapshot — a gap (records start beyond the index) or a partial overlap
// (a record straddles the index's total) — fails closed instead of
// serving a state no client was acknowledged.
func TestReplayWrongSnapshot(t *testing.T) {
	eng, ids := testEngine(t) // 4 trajectories
	var payload bytes.Buffer
	if _, err := dayBatch(ids, 7, 1).WriteTo(&payload); err != nil {
		t.Fatal(err)
	}
	for name, rec := range map[string]struct {
		prevTotal uint64
		trajs     int
	}{
		"gap":             {6, 1}, // starts beyond the restored total of 4
		"partial overlap": {3, 2}, // straddles it: 3+2 > 4 but 3 < 4
	} {
		log, err := wal.Open(filepath.Join(t.TempDir(), "bad.wal"))
		if err != nil {
			t.Fatal(err)
		}
		if err := log.Append(rec.prevTotal, rec.trajs, payload.Bytes()); err != nil {
			t.Fatal(err)
		}
		if applied, err := ReplayWAL(eng, log); err == nil {
			t.Fatalf("%s: replay applied %d records without error", name, applied)
		}
		log.Close()
	}
	if eng.Trajectories() != 4 {
		t.Fatalf("failed replays mutated the engine: %d trajectories", eng.Trajectories())
	}
}

// TestExtendValidationPrecedesWAL: a batch the engine would refuse (it
// overlaps the indexed time range) is rejected with 422 before anything is
// logged — the WAL only ever holds batches replay will accept.
func TestExtendValidationPrecedesWAL(t *testing.T) {
	log, err := wal.Open(filepath.Join(t.TempDir(), "extend.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	eng, ids := testEngine(t)
	srv := httptest.NewServer(NewServer(eng, Config{EnableExtend: true, WAL: log}))
	defer srv.Close()

	overlap := pathhist.NewStore()
	overlap.Add(7, []pathhist.Entry{{Edge: ids["A"], T: 1, TT: 3}}) // inside the base range
	resp := postBatch(t, srv.URL, overlap)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("overlapping batch: status %d, want 422", resp.StatusCode)
	}
	if st := log.Stats(); st.Records != 0 || st.Appends != 0 || st.Rollbacks != 0 {
		t.Fatalf("rejected batch reached the log: %+v", st)
	}
	if eng.Trajectories() != 4 || eng.Epoch() != 0 {
		t.Fatalf("rejected batch mutated the engine: %d trajs @ epoch %d",
			eng.Trajectories(), eng.Epoch())
	}
}

// TestExtendOverloadSheds: /extend answers 503 + Retry-After once the WAL
// or the partition backlog outgrows its bound, and recovers as soon as a
// snapshot (rotation) or compaction pays the debt back down.
func TestExtendOverloadSheds(t *testing.T) {
	dir := t.TempDir()
	snapDir := filepath.Join(dir, "snap")
	if err := os.MkdirAll(snapDir, 0o755); err != nil {
		t.Fatal(err)
	}
	log, err := wal.Open(filepath.Join(dir, "extend.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	eng, ids := testEngine(t)
	srv := httptest.NewServer(NewServer(eng, Config{
		EnableExtend: true,
		WAL:          log,
		SnapshotDir:  snapDir,
		MaxWALBytes:  20, // just above the 16-byte header: any record trips it
	}))
	defer srv.Close()
	s := srv.Config.Handler.(*Server)

	resp := postBatch(t, srv.URL, dayBatch(ids, 7, 1))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first extend: status %d", resp.StatusCode)
	}
	resp = postBatch(t, srv.URL, dayBatch(ids, 7, 2))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-bound extend: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Error == "" {
		t.Fatalf("503 without JSON error body: %v (%+v)", err, er)
	}
	// A snapshot rotates the log; ingest resumes.
	if _, err := s.WriteSnapshot(); err != nil {
		t.Fatal(err)
	}
	resp = postBatch(t, srv.URL, dayBatch(ids, 7, 2))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-rotation extend: status %d", resp.StatusCode)
	}

	// Partition-backlog bound, same shape: base(1) + 2 batches = 3
	// partitions > 2 sheds, compaction readmits.
	srv2 := httptest.NewServer(NewServer(eng, Config{
		EnableExtend:        true,
		MaxPartitionBacklog: 2,
	}))
	defer srv2.Close()
	if eng.Partitions() <= 2 {
		t.Fatalf("fixture: %d partitions, want > 2", eng.Partitions())
	}
	resp = postBatch(t, srv2.URL, dayBatch(ids, 7, 3))
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("backlogged extend: status %d, want 503", resp.StatusCode)
	}
	creq, err := http.Post(srv2.URL+"/compact", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	creq.Body.Close()
	if creq.StatusCode != http.StatusOK {
		t.Fatalf("compact: status %d", creq.StatusCode)
	}
	resp = postBatch(t, srv2.URL, dayBatch(ids, 7, 3))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-compaction extend: status %d", resp.StatusCode)
	}
}

// TestDrainAndReadyz: BeginDrain turns every serving endpoint into a
// 503 + Retry-After with a JSON body (instead of the connection resets a
// closing listener used to hand out), while /healthz stays alive and
// /readyz reports unroutable; SetReady cannot resurrect a draining server.
func TestDrainAndReadyz(t *testing.T) {
	dir := t.TempDir()
	eng, ids := testEngine(t)
	srv := httptest.NewServer(NewServer(eng, Config{EnableExtend: true, SnapshotDir: dir}))
	defer srv.Close()
	s := srv.Config.Handler.(*Server)

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	if resp := get("/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh /readyz: %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	s.SetReady(false)
	if resp := get("/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after SetReady(false): %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	s.SetReady(true)

	s.BeginDrain()
	for _, probe := range []struct {
		method, path string
	}{
		{http.MethodGet, fmt.Sprintf("/query?path=%d&beta=2&until=100", ids["A"])},
		{http.MethodPost, "/extend"},
		{http.MethodPost, "/compact"},
		{http.MethodPost, "/snapshot"},
	} {
		req, err := http.NewRequest(probe.method, srv.URL+probe.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("draining %s: status %d, want 503", probe.path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("draining %s: no Retry-After", probe.path)
		}
		var er ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Error == "" {
			t.Fatalf("draining %s: no JSON error body (%v)", probe.path, err)
		}
		resp.Body.Close()
	}
	if resp := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("draining /healthz: %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	s.SetReady(true) // a drain is terminal
	if resp := get("/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after drain: %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	// /statsz reflects the lifecycle bits.
	resp := get("/statsz")
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Ready || !st.Draining {
		t.Fatalf("statsz lifecycle: ready=%v draining=%v", st.Ready, st.Draining)
	}
}

// TestStatszWALFields: with a WAL wired in, /statsz surfaces its counters.
func TestStatszWALFields(t *testing.T) {
	log, err := wal.Open(filepath.Join(t.TempDir(), "extend.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	eng, ids := testEngine(t)
	srv := httptest.NewServer(NewServer(eng, Config{EnableExtend: true, WAL: log}))
	defer srv.Close()
	resp := postBatch(t, srv.URL, dayBatch(ids, 7, 1))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("extend: status %d", resp.StatusCode)
	}
	sresp, err := http.Get(srv.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st Stats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if !st.WALEnabled || st.WALRecords != 1 || st.WALAppends != 1 ||
		st.WALBytes <= 16 || st.WALFsyncMsTotal <= 0 {
		t.Fatalf("statsz wal fields: %+v", st)
	}
}
