package ttserve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"pathhist"
	"pathhist/internal/metrics"
	"pathhist/internal/sharded"
)

// ShardedServer is the scatter-gather serving front (DESIGN.md §14): one
// HTTP surface over a sharded.Cluster plus one per-shard Server carrying
// each shard's durability state (its own write-ahead log and snapshot
// directory). Queries fan out through the cluster's router and merge
// bit-identically to a single engine while every shard is healthy; when
// shards are down the answer degrades to the survivors' exact merge with
// `partial: true` and the missing shard list, and only below the coverage
// floor does /query fail with a 503. Ingest routes each batch whole to one
// healthy shard, whose Server runs the same validate → WAL append → index
// sequence a single-engine deployment runs — so the per-batch durability
// contract (acknowledged ⇒ fsynced ⇒ recovered) is unchanged, just striped.
type ShardedServer struct {
	cluster *sharded.Cluster
	shards  []*Server
	cfg     Config
	mux     *http.ServeMux

	extends         atomic.Int64
	extendTrajs     atomic.Int64
	extendRejects   atomic.Int64
	extendOverloads atomic.Int64
	lastExtendUnix  atomic.Int64

	ready    atomic.Bool
	draining atomic.Bool
}

// errShardOverloaded marks a routed ingest refused because the target
// shard's own WAL or merge backlog outgrew its bound (mapped to 503).
var errShardOverloaded = errors.New("ttserve: ingest shard is overloaded")

// errShardDegraded marks a routed ingest refused because the target shard
// latched degraded read-only mode after the cluster reserved it — a window
// the degraded-latch mirroring closes for every later batch.
var errShardDegraded = errors.New("ttserve: ingest shard is degraded (read-only)")

// NewShardedServer wraps a cluster and its per-shard Servers into one
// handler. shards[i] must wrap the same engine as cluster.Engine(i) — each
// carries that shard's WAL and snapshot configuration; their HTTP surface
// is never registered, only their ingest/snapshot/stats machinery is used.
// Front-level admission limits (body size, trajectory cap, timeouts) come
// from cfg.
func NewShardedServer(cluster *sharded.Cluster, shards []*Server, cfg Config) (*ShardedServer, error) {
	if cluster == nil || len(shards) != cluster.NumShards() {
		return nil, fmt.Errorf("ttserve: %d shard servers for a %d-shard cluster", len(shards), cluster.NumShards())
	}
	if cfg.MaxExtendBytes <= 0 {
		cfg.MaxExtendBytes = DefaultMaxExtendBytes
	}
	s := &ShardedServer{cluster: cluster, shards: shards, cfg: cfg, mux: http.NewServeMux()}
	s.ready.Store(true)
	// A shard restored straight into degraded mode (its log failed during
	// recovery) must be out of the ingest rotation from the first request.
	for i, sh := range shards {
		if sh.Degraded() {
			cluster.SetDegraded(i, true)
		}
	}
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("/readyz", s.readyz)
	s.mux.HandleFunc("/statsz", s.statsz)
	s.mux.HandleFunc("/query", s.query)
	if cfg.EnableExtend {
		s.mux.HandleFunc("/extend", s.extend)
		s.mux.HandleFunc("/compact", s.compact)
		if len(shards) > 0 && shards[0].cfg.SnapshotDir != "" {
			s.mux.HandleFunc("/snapshot", s.snapshot)
		}
	}
	return s, nil
}

// Counters exposes the cluster's robustness counters (shared, live).
func (s *ShardedServer) Counters() *metrics.ServerCounters { return s.cluster.Counters() }

// ServeHTTP dispatches behind the same panic isolation as the single-engine
// Server: a handler panic becomes a 500 on that request, never a crash.
func (s *ShardedServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	tw := &headerTracker{ResponseWriter: w}
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		if rec == http.ErrAbortHandler {
			panic(rec)
		}
		s.cluster.Counters().PanicsRecovered.Add(1)
		if !tw.wrote {
			rejectJSON(tw.ResponseWriter, http.StatusInternalServerError,
				fmt.Sprintf("internal error: %v", rec))
		}
	}()
	s.mux.ServeHTTP(tw, r)
}

// BeginDrain moves the front and every shard into the terminal draining
// state (see Server.BeginDrain).
func (s *ShardedServer) BeginDrain() {
	s.draining.Store(true)
	s.ready.Store(false)
	for _, sh := range s.shards {
		sh.BeginDrain()
	}
}

// SetReady overrides the readiness bit; BeginDrain clears it permanently.
func (s *ShardedServer) SetReady(v bool) { s.ready.Store(v && !s.draining.Load()) }

// readyz reports routability. The front stays ready while shards are down —
// partial degradation is the design — so the body, not the status, carries
// the per-shard picture.
func (s *ShardedServer) readyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() || s.draining.Load() {
		w.Header().Set("Retry-After", RetryAfter())
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "not ready")
		return
	}
	healthy := 0
	for _, st := range s.cluster.Status() {
		if st.State == "ready" {
			healthy++
		}
	}
	w.WriteHeader(http.StatusOK)
	if n := s.cluster.NumShards(); healthy < n {
		fmt.Fprintf(w, "ready (%d of %d shards healthy)\n", healthy, n)
		return
	}
	fmt.Fprintln(w, "ready")
}

// ShardedResponse is the JSON shape of a sharded /query answer: the
// single-engine Response plus the partial-result contract. Epoch is the sum
// of the shards' epochs — a cluster-wide publication counter, not a single
// index version.
type ShardedResponse struct {
	Response
	// Partial marks an answer computed without MissingShards' data; the
	// histogram and statistics are exact over the surviving shards.
	Partial bool `json:"partial,omitempty"`
	// MissingShards lists (ascending) the shards the answer excludes.
	MissingShards []int `json:"missing_shards,omitempty"`
	// Restarts counts mid-query shard failures the router recovered from.
	Restarts int `json:"restarts,omitempty"`
}

func (s *ShardedServer) query(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		unavailableJSON(w, "server is draining")
		return
	}
	q, err := parseQuery(r)
	if err != nil {
		rejectJSON(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel, limit, err := requestDeadline(r, s.cfg.QueryTimeout)
	if err != nil {
		rejectJSON(w, http.StatusBadRequest, err.Error())
		return
	}
	if cancel != nil {
		defer cancel()
	}
	res, err := s.cluster.Query(ctx, q)
	if err != nil {
		switch {
		case errors.Is(err, sharded.ErrInsufficientCoverage):
			// Too many shards out to answer honestly: shed, like any other
			// overload, and let the client retry once shards recover.
			unavailableJSON(w, err.Error())
		case errors.Is(err, context.DeadlineExceeded):
			s.cluster.Counters().QueryTimeouts.Add(1)
			rejectJSON(w, http.StatusGatewayTimeout,
				fmt.Sprintf("query exceeded its %v deadline", limit))
		case errors.Is(err, context.Canceled):
			s.cluster.Counters().CanceledRequests.Add(1)
			rejectJSON(w, StatusClientClosedRequest, "client closed the request")
		default:
			rejectJSON(w, http.StatusUnprocessableEntity, err.Error())
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.toShardedResponse(res))
}

func (s *ShardedServer) toShardedResponse(res *sharded.Result) ShardedResponse {
	out := ShardedResponse{
		Partial:       res.Partial,
		MissingShards: res.Missing,
		Restarts:      res.Restarts,
	}
	out.MeanSeconds = res.MeanSeconds
	out.IndexScans = res.IndexScans
	for i := range res.Subs {
		sub := &res.Subs[i]
		out.SubQueries = append(out.SubQueries, SubResponse{
			Segments: len(sub.Path),
			Samples:  len(sub.X),
			MeanTT:   sub.MeanX(),
			Fallback: sub.Fallback,
		})
	}
	for _, st := range s.cluster.Status() {
		out.Epoch += st.Epoch
	}
	fillHistogram(&out.Response, res.Hist)
	return out
}

// ShardedExtendResponse is the JSON shape of a sharded /extend answer: the
// single-engine shape (Epoch and Total are the ingesting shard's) plus
// which shard took the batch and the cluster-wide total.
type ShardedExtendResponse struct {
	ExtendResponse
	Shard        int `json:"shard"`
	ClusterTotal int `json:"cluster_total_trajectories"`
}

// extend routes one batch whole to one healthy shard. Admission (global
// time-range validation, shard reservation) runs in the cluster; the shard's
// own Server then runs the standard durable sequence — validate, WAL
// append + fsync, index — so a 200 carries the same crash-survival promise
// as the single-engine deployment. Batches admitted to different shards
// overlap their fsyncs (the WAL group-commits them per shard).
func (s *ShardedServer) extend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		rejectJSON(w, http.StatusMethodNotAllowed, "POST a traj-format batch to /extend")
		return
	}
	if s.draining.Load() {
		s.extendOverloads.Add(1)
		unavailableJSON(w, "server is draining")
		return
	}
	started := time.Now()
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxExtendBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.extendOverloads.Add(1)
			rejectJSON(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("batch exceeds the %d-byte limit; split it into smaller batches", tooBig.Limit))
			return
		}
		s.extendRejects.Add(1)
		rejectJSON(w, http.StatusBadRequest, fmt.Sprintf("reading batch: %v", err))
		return
	}
	batch, err := pathhist.ReadStore(bytes.NewReader(raw))
	if err != nil {
		s.extendRejects.Add(1)
		rejectJSON(w, http.StatusBadRequest, fmt.Sprintf("decoding batch: %v", err))
		return
	}
	if max := s.cfg.MaxExtendTrajectories; max > 0 && batch.Len() > max {
		s.extendOverloads.Add(1)
		rejectJSON(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch holds %d trajectories, limit is %d; split it into smaller batches", batch.Len(), max))
		return
	}
	ctx := r.Context()
	if s.cfg.ExtendTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.ExtendTimeout)
		defer cancel()
	}
	var st pathhist.IngestStats
	var shedMsg string
	status := http.StatusUnprocessableEntity
	si, err := s.cluster.RouteIngest(batch, func(shard int) error {
		sh := s.shards[shard]
		if sh.Degraded() {
			// The shard latched fail-stop between the cluster's reservation
			// and here (or outside any ingest, e.g. a failed snapshot
			// rotation). Mirror the latch so the next batch reroutes.
			s.cluster.SetDegraded(shard, true)
			return errShardDegraded
		}
		if msg, shed := sh.ingestOverload(); shed {
			shedMsg = msg
			return errShardOverloaded
		}
		var ierr error
		st, status, ierr = sh.ingest(ctx, raw, batch)
		if sh.Degraded() {
			// The shard's log just latched fail-stop: take it out of the
			// ingest rotation so the next batch reroutes instead of failing.
			s.cluster.SetDegraded(shard, true)
		}
		return ierr
	})
	if err != nil {
		switch {
		case errors.Is(err, errShardOverloaded):
			s.extendOverloads.Add(1)
			unavailableJSON(w, fmt.Sprintf("shard %d: %s", si, shedMsg))
		case errors.Is(err, errShardDegraded):
			s.extendRejects.Add(1)
			unavailableJSON(w, fmt.Sprintf("shard %d is degraded (read-only) after a write-ahead log failure; the next batch reroutes", si))
		case errors.Is(err, sharded.ErrNoIngestShard):
			s.extendOverloads.Add(1)
			unavailableJSON(w, "every shard is down or degraded (read-only); restart to recover the write path")
		case si < 0:
			// Cluster admission refused the batch (its time range overlaps
			// data some shard already indexed or a batch still in flight).
			s.extendRejects.Add(1)
			rejectJSON(w, http.StatusUnprocessableEntity, err.Error())
		case errors.Is(err, context.DeadlineExceeded):
			s.extendRejects.Add(1)
			s.cluster.Counters().QueryTimeouts.Add(1)
			rejectJSON(w, http.StatusGatewayTimeout,
				fmt.Sprintf("extend timed out after %v; no batch was acknowledged", s.cfg.ExtendTimeout))
		case errors.Is(err, context.Canceled):
			s.extendRejects.Add(1)
			s.cluster.Counters().CanceledRequests.Add(1)
			rejectJSON(w, StatusClientClosedRequest, "client closed the request")
		default:
			s.extendRejects.Add(1)
			rejectJSON(w, status, err.Error())
		}
		return
	}
	s.extends.Add(1)
	s.extendTrajs.Add(int64(batch.Len()))
	s.lastExtendUnix.Store(time.Now().Unix())
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(ShardedExtendResponse{
		ExtendResponse: ExtendResponse{
			Trajectories: batch.Len(),
			Epoch:        st.Epoch,
			Total:        st.TotalTrajectories,
			ElapsedMs:    float64(time.Since(started).Microseconds()) / 1000,
		},
		Shard:        si,
		ClusterTotal: s.cluster.Trajectories(),
	})
}

// ShardedStats is the JSON shape of the sharded /statsz: front-level ingest
// counters, the cluster's fault-tolerance counters, and every shard's
// health plus full single-engine stats.
type ShardedStats struct {
	Shards                int                         `json:"shards"`
	Trajectories          int                         `json:"trajectories"`
	Ready                 bool                        `json:"ready"`
	Draining              bool                        `json:"draining,omitempty"`
	Extends               int64                       `json:"extends"`
	ExtendTrajectories    int64                       `json:"extend_trajectories"`
	ExtendRejects         int64                       `json:"extend_rejects"`
	ExtendOverloadRejects int64                       `json:"extend_overload_rejects"`
	LastExtendUnix        int64                       `json:"last_extend_unix,omitempty"`
	Counters              metrics.ServerCounterValues `json:"counters"`
	ShardHealth           []sharded.ShardStatus       `json:"shard_health"`
	ShardStats            []Stats                     `json:"shard_stats"`
}

func (s *ShardedServer) statsz(w http.ResponseWriter, r *http.Request) {
	st := ShardedStats{
		Shards:                s.cluster.NumShards(),
		Trajectories:          s.cluster.Trajectories(),
		Ready:                 s.ready.Load(),
		Draining:              s.draining.Load(),
		Extends:               s.extends.Load(),
		ExtendTrajectories:    s.extendTrajs.Load(),
		ExtendRejects:         s.extendRejects.Load(),
		ExtendOverloadRejects: s.extendOverloads.Load(),
		LastExtendUnix:        s.lastExtendUnix.Load(),
		Counters:              s.cluster.Counters().Snapshot(),
		ShardHealth:           s.cluster.Status(),
	}
	for _, sh := range s.shards {
		st.ShardStats = append(st.ShardStats, sh.statsSnapshot())
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(st)
}

// ShardSnapshotResult is one shard's entry in a /snapshot fan-out answer.
type ShardSnapshotResult struct {
	Shard int `json:"shard"`
	SnapshotResponse
	Error string `json:"error,omitempty"`
}

// WriteSnapshots persists every shard's index to its own snapshot
// directory (rotating its WAL). Shards fail independently: a full disk
// under one shard must not stop the others from bounding their replay
// debt. The first error is returned after every shard was attempted.
func (s *ShardedServer) WriteSnapshots() ([]ShardSnapshotResult, error) {
	out := make([]ShardSnapshotResult, len(s.shards))
	var firstErr error
	for i, sh := range s.shards {
		resp, err := sh.WriteSnapshot()
		out[i] = ShardSnapshotResult{Shard: i, SnapshotResponse: resp}
		if err != nil {
			out[i].Error = err.Error()
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d: %w", i, err)
			}
			if sh.Degraded() {
				s.cluster.SetDegraded(i, true)
			}
		}
	}
	return out, firstErr
}

// snapshot handles POST /snapshot: persist every shard's index now.
func (s *ShardedServer) snapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		rejectJSON(w, http.StatusMethodNotAllowed, "POST to /snapshot to persist every shard's index")
		return
	}
	if s.draining.Load() {
		unavailableJSON(w, "server is draining")
		return
	}
	out, err := s.WriteSnapshots()
	w.Header().Set("Content-Type", "application/json")
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
	}
	_ = json.NewEncoder(w).Encode(out)
}

// ShardCompactResult is one shard's entry in a /compact fan-out answer.
type ShardCompactResult struct {
	Shard int `json:"shard"`
	CompactResponse
	Error string `json:"error,omitempty"`
}

// compact handles POST /compact: merge every shard's ingested partitions.
// Shards compact independently; a degraded shard is skipped (compaction
// would advance an epoch its broken log no longer anchors).
func (s *ShardedServer) compact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		rejectJSON(w, http.StatusMethodNotAllowed, "POST to /compact to merge every shard's ingested partitions")
		return
	}
	if s.draining.Load() {
		unavailableJSON(w, "server is draining")
		return
	}
	out := make([]ShardCompactResult, len(s.shards))
	failed := false
	for i, sh := range s.shards {
		out[i] = ShardCompactResult{Shard: i}
		if sh.Degraded() {
			out[i].Error = "shard is degraded (read-only) after a write-ahead log failure"
			continue
		}
		st, err := sh.eng.Compact()
		if err != nil {
			out[i].Error = err.Error()
			failed = true
			continue
		}
		out[i].CompactResponse = CompactResponse{
			PartitionsBefore: st.PartitionsBefore,
			PartitionsAfter:  st.PartitionsAfter,
			Runs:             st.Runs,
			TrajsRebuilt:     st.TrajsRebuilt,
			RecordsRebuilt:   st.RecordsRebuilt,
			Epoch:            st.Epoch,
			ElapsedMs:        float64(st.Elapsed.Microseconds()) / 1000,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if failed {
		w.WriteHeader(http.StatusUnprocessableEntity)
	}
	_ = json.NewEncoder(w).Encode(out)
}
