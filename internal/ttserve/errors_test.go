package ttserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pathhist"
)

// TestErrorBodiesAreJSON is the error-contract audit: every 4xx/5xx the
// serving endpoints (/query, /extend, /compact, /snapshot) produce carries
// Content-Type application/json and a decodable {"error": "..."} body, so
// clients never have to sniff between JSON and text/plain.
func TestErrorBodiesAreJSON(t *testing.T) {
	eng, ids := testEngine(t)
	srv := httptest.NewServer(NewServer(eng, Config{
		EnableExtend: true, SnapshotDir: t.TempDir(), MaxExtendTrajectories: 1,
	}))
	defer srv.Close()

	drainEng, _ := testEngine(t)
	drainSrv := httptest.NewServer(NewServer(drainEng, Config{EnableExtend: true, SnapshotDir: t.TempDir()}))
	defer drainSrv.Close()
	drainSrv.Config.Handler.(*Server).BeginDrain()

	// An oversized batch for the trajectory-budget rejection.
	bigBatch := pathhist.NewStore()
	for d := int64(1); d <= 2; d++ {
		day := d * 86400
		bigBatch.Add(7, []pathhist.Entry{{Edge: ids["A"], T: day, TT: 5}})
	}
	var big bytes.Buffer
	if _, err := bigBatch.WriteTo(&big); err != nil {
		t.Fatal(err)
	}
	// A batch Extend itself refuses: it overlaps the indexed time range.
	overlapping := pathhist.NewStore()
	overlapping.Add(7, []pathhist.Entry{{Edge: ids["A"], T: 0, TT: 5}})
	var overlap bytes.Buffer
	if _, err := overlapping.WriteTo(&overlap); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		base   *httptest.Server
		method string
		url    string
		body   []byte
		want   int
	}{
		{"query missing path", srv, "GET", "/query", nil, 400},
		{"query bad edge", srv, "GET", "/query?path=abc", nil, 400},
		{"query bad timeout", srv, "GET", fmt.Sprintf("/query?path=%d&timeout=bogus", ids["A"]), nil, 400},
		{"query untraversable", srv, "GET", fmt.Sprintf("/query?path=%d,%d", ids["A"], ids["D"]), nil, 422},
		{"query draining", drainSrv, "GET", fmt.Sprintf("/query?path=%d", ids["A"]), nil, 503},
		{"extend wrong method", srv, "GET", "/extend", nil, 405},
		{"extend garbage body", srv, "POST", "/extend", []byte("not a batch"), 400},
		{"extend over trajectory budget", srv, "POST", "/extend", big.Bytes(), 413},
		{"extend engine rejects", srv, "POST", "/extend", overlap.Bytes(), 422},
		{"extend draining", drainSrv, "POST", "/extend", overlap.Bytes(), 503},
		{"compact wrong method", srv, "GET", "/compact", nil, 405},
		{"compact draining", drainSrv, "POST", "/compact", nil, 503},
		{"snapshot wrong method", srv, "GET", "/snapshot", nil, 405},
		{"snapshot draining", drainSrv, "POST", "/snapshot", nil, 503},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, c.base.URL+c.url, bytes.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d (body %q)", c.name, resp.StatusCode, c.want, raw)
			continue
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("%s: Content-Type %q, want application/json (body %q)", c.name, ct, raw)
			continue
		}
		var e ErrorResponse
		if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
			t.Errorf("%s: body %q not an {\"error\": ...} document (err %v)", c.name, raw, err)
		}
	}
}
