package ttserve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"pathhist"
)

func testEngine(t *testing.T) (*pathhist.Engine, map[string]pathhist.EdgeID) {
	t.Helper()
	g, ids := pathhist.PaperExampleNetwork()
	s := pathhist.NewStore()
	e := func(name string, at int64, tt int32) pathhist.Entry {
		return pathhist.Entry{Edge: ids[name], T: at, TT: tt}
	}
	s.Add(1, []pathhist.Entry{e("A", 0, 3), e("B", 3, 4), e("E", 7, 4)})
	s.Add(2, []pathhist.Entry{e("A", 2, 4), e("C", 6, 2), e("D", 8, 4), e("E", 12, 5)})
	s.Add(2, []pathhist.Entry{e("A", 4, 3), e("B", 7, 3), e("F", 10, 6)})
	s.Add(1, []pathhist.Entry{e("A", 6, 3), e("B", 9, 3), e("E", 12, 4)})
	eng, err := pathhist.NewEngine(g, s, pathhist.Options{
		Partition:     pathhist.NoPartition,
		BucketSeconds: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, ids
}

func TestHealthz(t *testing.T) {
	eng, _ := testEngine(t)
	srv := httptest.NewServer(NewHandler(eng))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestQueryEndpoint(t *testing.T) {
	eng, ids := testEngine(t)
	srv := httptest.NewServer(NewHandler(eng))
	defer srv.Close()
	url := fmt.Sprintf("%s/query?path=%d,%d,%d&beta=2", srv.URL, ids["A"], ids["B"], ids["E"])
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	// Fixed interval over all data: both full-path matches (10 and 11 s).
	if math.Abs(out.MeanSeconds-10.5) > 1e-9 {
		t.Errorf("mean = %v, want 10.5", out.MeanSeconds)
	}
	if len(out.SubQueries) != 1 || out.SubQueries[0].Samples != 2 {
		t.Errorf("subs = %+v", out.SubQueries)
	}
	var totalFrac float64
	for _, b := range out.Histogram {
		totalFrac += b.Fraction
	}
	if math.Abs(totalFrac-1) > 1e-9 {
		t.Errorf("histogram fractions sum to %v", totalFrac)
	}
	if out.IndexScans < 1 {
		t.Error("index scans missing")
	}
}

func TestQueryEndpointUserAndTod(t *testing.T) {
	eng, ids := testEngine(t)
	srv := httptest.NewServer(NewHandler(eng))
	defer srv.Close()
	url := fmt.Sprintf("%s/query?path=%d&tod=00:00&window=900&beta=1&user=2", srv.URL, ids["A"])
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.MeanSeconds <= 0 {
		t.Errorf("mean = %v", out.MeanSeconds)
	}
}

// TestToResponseEmptyHistogram is the regression test for the NaN bug: a
// nil or zero-mass histogram must not divide by its total (Fraction NaN
// breaks json.Encoder AFTER the 200 header, truncating the body) nor call
// Quantile/Min on a zero-value histogram (division by a zero bucket
// width). The response must flag emptiness and stay encodable.
func TestToResponseEmptyHistogram(t *testing.T) {
	for name, res := range map[string]*pathhist.Result{
		"nil":      {Histogram: nil, MeanSeconds: 12},
		"zeroMass": {Histogram: &pathhist.Histogram{}, MeanSeconds: 12},
	} {
		out := toResponse(res)
		if !out.Empty || len(out.Histogram) != 0 {
			t.Fatalf("%s: response = %+v, want empty flag and no buckets", name, out)
		}
		if out.P05 != 0 || out.P50 != 0 || out.P95 != 0 {
			t.Fatalf("%s: quantiles of an empty histogram = %+v", name, out)
		}
		data, err := json.Marshal(out)
		if err != nil {
			t.Fatalf("%s: response not encodable: %v", name, err)
		}
		var back Response
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: round trip: %v", name, err)
		}
	}
}

// TestQueryEndpointFromUntil: fixed intervals are expressible over HTTP.
func TestQueryEndpointFromUntil(t *testing.T) {
	eng, ids := testEngine(t)
	srv := httptest.NewServer(NewHandler(eng))
	defer srv.Close()
	// [0, 6) covers only trajectory 0's A-B-E start (entry at t=0); the
	// other full-path match enters A at t=6 and is excluded.
	url := fmt.Sprintf("%s/query?path=%d,%d,%d&from=0&until=6&beta=5", srv.URL, ids["A"], ids["B"], ids["E"])
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.SubQueries) != 1 || out.SubQueries[0].Samples != 1 {
		t.Fatalf("subs = %+v, want exactly the t=0 traversal", out.SubQueries)
	}
	if math.Abs(out.MeanSeconds-11) > 1e-9 {
		t.Errorf("mean = %v, want 11", out.MeanSeconds)
	}
	// A wider interval picks up the second full-path match.
	wide, err := fetch(fmt.Sprintf("%s/query?path=%d,%d,%d&from=0&until=100&beta=5",
		srv.URL, ids["A"], ids["B"], ids["E"]))
	if err != nil {
		t.Fatal(err)
	}
	if wide.SubQueries[0].Samples != 2 {
		t.Fatalf("wide subs = %+v", wide.SubQueries)
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	eng, ids := testEngine(t)
	srv := httptest.NewServer(NewHandler(eng))
	defer srv.Close()
	cases := []struct {
		name string
		url  string
		want int
	}{
		{"missing path", "/query", http.StatusBadRequest},
		{"bad edge", "/query?path=abc", http.StatusBadRequest},
		{"negative edge", "/query?path=-3", http.StatusBadRequest},
		{"bad tod", fmt.Sprintf("/query?path=%d&tod=25:99", ids["A"]), http.StatusBadRequest},
		{"bad tod format", fmt.Sprintf("/query?path=%d&tod=8am", ids["A"]), http.StatusBadRequest},
		{"bad window", fmt.Sprintf("/query?path=%d&window=-5", ids["A"]), http.StatusBadRequest},
		{"window without tod", fmt.Sprintf("/query?path=%d&window=900", ids["A"]), http.StatusBadRequest},
		{"bad beta", fmt.Sprintf("/query?path=%d&beta=x", ids["A"]), http.StatusBadRequest},
		{"bad user", fmt.Sprintf("/query?path=%d&user=-2", ids["A"]), http.StatusBadRequest},
		{"bad from", fmt.Sprintf("/query?path=%d&from=x", ids["A"]), http.StatusBadRequest},
		{"bad until", fmt.Sprintf("/query?path=%d&until=-4", ids["A"]), http.StatusBadRequest},
		{"until before from", fmt.Sprintf("/query?path=%d&from=100&until=50", ids["A"]), http.StatusBadRequest},
		{"until equals from", fmt.Sprintf("/query?path=%d&from=100&until=100", ids["A"]), http.StatusBadRequest},
		{"tod with from", fmt.Sprintf("/query?path=%d&tod=08:00&from=0", ids["A"]), http.StatusBadRequest},
		{"tod with until", fmt.Sprintf("/query?path=%d&tod=08:00&until=50", ids["A"]), http.StatusBadRequest},
		// <A, D> is not traversable: semantic error, 422.
		{"untraversable", fmt.Sprintf("/query?path=%d,%d", ids["A"], ids["D"]), http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		resp, err := http.Get(srv.URL + c.url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
}
