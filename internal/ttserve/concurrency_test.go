package ttserve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestStatsz checks the observability endpoint shape and that cache
// counters move under query traffic.
func TestStatsz(t *testing.T) {
	eng, ids := testEngine(t)
	srv := httptest.NewServer(NewHandler(eng))
	defer srv.Close()

	queryURL := fmt.Sprintf("%s/query?path=%d,%d,%d&tod=00:00&window=40&beta=2",
		srv.URL, ids["A"], ids["B"], ids["E"])
	for i := 0; i < 3; i++ {
		resp, err := http.Get(queryURL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query status = %d", resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Partitions < 1 || st.IndexBytes <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Repeated identical queries are served whole from the full-result
	// cache; the first run populated the sub-result cache on its way.
	if st.FullCacheHits == 0 || st.FullCacheEntries == 0 || st.FullCacheHitRatio <= 0 {
		t.Fatalf("repeated identical queries produced no full-result cache hits: %+v", st)
	}
	if st.CacheMisses == 0 || st.CacheEntries == 0 {
		t.Fatalf("first query did not populate the sub-result cache: %+v", st)
	}
}

// TestConcurrentRequests drives the handler from many goroutines (run
// under -race in CI) and checks all answers for one query agree — the
// service-level consequence of the engine's concurrency safety.
func TestConcurrentRequests(t *testing.T) {
	eng, ids := testEngine(t)
	srv := httptest.NewServer(NewHandler(eng))
	defer srv.Close()

	urls := []string{
		fmt.Sprintf("%s/query?path=%d,%d,%d&tod=00:00&window=40&beta=2", srv.URL, ids["A"], ids["B"], ids["E"]),
		fmt.Sprintf("%s/query?path=%d,%d&beta=1", srv.URL, ids["A"], ids["B"]),
		fmt.Sprintf("%s/query?path=%d&user=1&tod=00:00&window=60&beta=1", srv.URL, ids["A"]),
	}
	want := make([]Response, len(urls))
	for i, u := range urls {
		r, err := fetch(u)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}

	const goroutines = 8
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				j := (i + g) % len(urls)
				got, err := fetch(urls[j])
				if err != nil {
					errs <- err
					return
				}
				if got.MeanSeconds != want[j].MeanSeconds ||
					got.P50 != want[j].P50 ||
					len(got.SubQueries) != len(want[j].SubQueries) {
					errs <- fmt.Errorf("url %d: answer drifted: %+v vs %+v", j, got, want[j])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func fetch(url string) (Response, error) {
	var out Response
	resp, err := http.Get(url)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("status %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}
