package ttserve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// The tests here pin the HTTP deadline plumbing: a server-configured or
// per-request query timeout surfaces as a typed 504 JSON error and a
// counter, never as a hung request or a partial 200. Latency-bound
// assertions (deadline ⇒ response within 2× the deadline on a pathological
// query) live in the root package's deadline test, which has a dataset
// large enough for scans to outlive a deadline honestly.

func TestQueryServerTimeout(t *testing.T) {
	eng, ids := testEngine(t)
	// A deadline that has always already expired when the engine looks:
	// the smallest positive duration.
	srv := httptest.NewServer(NewServer(eng, Config{QueryTimeout: time.Nanosecond}))
	defer srv.Close()
	s := srv.Config.Handler.(*Server)

	var e ErrorResponse
	code := getJSON(t, srv.URL+"/query?path="+queryPath(ids), &e)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", code)
	}
	if !strings.Contains(e.Error, "deadline") {
		t.Fatalf("body %+v, want a deadline error", e)
	}
	if got := s.Counters().QueryTimeouts.Load(); got != 1 {
		t.Fatalf("query_timeouts = %d, want 1", got)
	}
	var st Stats
	getJSON(t, srv.URL+"/statsz", &st)
	if st.QueryTimeouts != 1 {
		t.Fatalf("statsz query_timeouts = %d, want 1", st.QueryTimeouts)
	}
}

func TestQueryPerRequestTimeout(t *testing.T) {
	eng, ids := testEngine(t)
	// Generous server limit; the request lowers it below feasibility.
	srv := httptest.NewServer(NewServer(eng, Config{QueryTimeout: time.Minute}))
	defer srv.Close()

	var e ErrorResponse
	if code := getJSON(t, srv.URL+"/query?path="+queryPath(ids)+"&timeout=1ns", &e); code != http.StatusGatewayTimeout {
		t.Fatalf("lowered timeout: status %d, want 504", code)
	}
	// A request cannot RAISE the server limit: with a 1ns server cap even
	// a 10s request timeout must still expire.
	srv2 := httptest.NewServer(NewServer(eng, Config{QueryTimeout: time.Nanosecond}))
	defer srv2.Close()
	if code := getJSON(t, srv2.URL+"/query?path="+queryPath(ids)+"&timeout=10s", &e); code != http.StatusGatewayTimeout {
		t.Fatalf("capped timeout: status %d, want 504", code)
	}
	// Sanity: the same query with room to breathe answers 200 (bare
	// integers are milliseconds).
	var r Response
	if code := getJSON(t, srv.URL+"/query?path="+queryPath(ids)+"&timeout=30000", &r); code != http.StatusOK {
		t.Fatalf("feasible timeout: status %d, want 200", code)
	}
	// Malformed values are 400s, not silently unbounded.
	for _, bad := range []string{"abc", "-5ms", "0"} {
		if code := getJSON(t, srv.URL+"/query?path="+queryPath(ids)+"&timeout="+bad, &e); code != http.StatusBadRequest {
			t.Fatalf("timeout=%q: status %d, want 400", bad, code)
		}
	}
}

func TestExtendTimeoutSheds(t *testing.T) {
	eng, ids := testEngine(t)
	srv := httptest.NewServer(NewServer(eng, Config{
		EnableExtend: true, ExtendTimeout: time.Nanosecond,
	}))
	defer srv.Close()
	resp := postBatch(t, srv.URL, dayBatch(ids, 7, 1))
	defer resp.Body.Close()
	// With no WAL the engine's ExtendCtx sheds at the expired deadline;
	// nothing is acknowledged or applied.
	if resp.StatusCode != http.StatusUnprocessableEntity && resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want a deadline rejection", resp.StatusCode)
	}
	if got := eng.Epoch(); got != 0 {
		t.Fatalf("epoch %d after a shed extend, want 0", got)
	}
}
