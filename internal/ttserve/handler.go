// Package ttserve implements the HTTP JSON handler behind cmd/ttserve: a
// thin, concurrency-safe service layer over a pathhist.Engine. One Engine
// is shared by all requests without additional locking — the engine is safe
// for concurrent use (immutable index, per-query scratch state, internally
// synchronised sub-result cache; DESIGN.md §6), so the handler's
// concurrency model is simply net/http's goroutine-per-request.
package ttserve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"pathhist"
)

// Response is the JSON shape of a /query answer.
type Response struct {
	MeanSeconds  float64       `json:"mean_seconds"`
	P05          float64       `json:"p05_seconds"`
	P50          float64       `json:"p50_seconds"`
	P95          float64       `json:"p95_seconds"`
	SubQueries   []SubResponse `json:"sub_queries"`
	IndexScans   int           `json:"index_scans"`
	CacheHits    int           `json:"cache_hits"`
	CacheMisses  int           `json:"cache_misses"`
	FullCacheHit bool          `json:"full_cache_hit,omitempty"`
	Histogram    []Bucket      `json:"histogram"`
}

// Stats is the JSON shape of a /statsz answer: cumulative engine-level
// observability for capacity planning and cache tuning.
type Stats struct {
	Partitions        int     `json:"partitions"`
	CacheHits         int64   `json:"cache_hits"`
	CacheMisses       int64   `json:"cache_misses"`
	CacheEntries      int     `json:"cache_entries"`
	CacheHitRatio     float64 `json:"cache_hit_ratio"`
	FullCacheHits     int64   `json:"full_cache_hits"`
	FullCacheMisses   int64   `json:"full_cache_misses"`
	FullCacheEntries  int     `json:"full_cache_entries"`
	FullCacheHitRatio float64 `json:"full_cache_hit_ratio"`
	IndexBytes        int     `json:"index_bytes"`
}

// SubResponse describes one final sub-query.
type SubResponse struct {
	Segments int     `json:"segments"`
	Samples  int     `json:"samples"`
	MeanTT   float64 `json:"mean_seconds"`
	Fallback bool    `json:"speed_limit_fallback,omitempty"`
}

// Bucket is one histogram bucket [From, From+Width) with its mass share.
type Bucket struct {
	From     int     `json:"from_seconds"`
	Width    int     `json:"width_seconds"`
	Fraction float64 `json:"fraction"`
}

// NewHandler returns the service mux for an engine.
func NewHandler(eng *pathhist.Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		cs := eng.CacheStats()
		fs := eng.FullCacheStats()
		c, wt, user, forest := eng.IndexMemory()
		st := Stats{
			Partitions:       eng.Partitions(),
			CacheHits:        cs.Hits,
			CacheMisses:      cs.Misses,
			CacheEntries:     cs.Entries,
			FullCacheHits:    fs.Hits,
			FullCacheMisses:  fs.Misses,
			FullCacheEntries: fs.Entries,
			IndexBytes:       c + wt + user + forest,
		}
		if total := cs.Hits + cs.Misses; total > 0 {
			st.CacheHitRatio = float64(cs.Hits) / float64(total)
		}
		if total := fs.Hits + fs.Misses; total > 0 {
			st.FullCacheHitRatio = float64(fs.Hits) / float64(total)
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(st)
	})
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		q, err := parseQuery(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := eng.Query(q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(toResponse(res)); err != nil {
			// Too late for a status change; the connection is gone.
			return
		}
	})
	return mux
}

// parseQuery decodes the /query parameters.
func parseQuery(r *http.Request) (pathhist.Query, error) {
	var q pathhist.Query
	raw := r.URL.Query().Get("path")
	if raw == "" {
		return q, fmt.Errorf("missing ?path=<edge,edge,...>")
	}
	for _, tok := range strings.Split(raw, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || id < 0 {
			return q, fmt.Errorf("bad edge id %q", tok)
		}
		q.Path = append(q.Path, pathhist.EdgeID(id))
	}
	if tod := r.URL.Query().Get("tod"); tod != "" {
		parts := strings.SplitN(tod, ":", 2)
		if len(parts) != 2 {
			return q, fmt.Errorf("bad tod %q, want HH:MM", tod)
		}
		hh, err1 := strconv.Atoi(parts[0])
		mm, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || hh < 0 || hh > 23 || mm < 0 || mm > 59 {
			return q, fmt.Errorf("bad tod %q", tod)
		}
		// Any timestamp with this time of day works; day 1 avoids the
		// zero value that means "fixed interval".
		q.Around = 86400 + int64(hh*3600+mm*60)
	}
	if ws := r.URL.Query().Get("window"); ws != "" {
		w, err := strconv.ParseInt(ws, 10, 64)
		if err != nil || w <= 0 {
			return q, fmt.Errorf("bad window %q", ws)
		}
		q.WindowSeconds = w
	}
	if bs := r.URL.Query().Get("beta"); bs != "" {
		b, err := strconv.Atoi(bs)
		if err != nil || b < 0 {
			return q, fmt.Errorf("bad beta %q", bs)
		}
		q.Beta = b
	}
	if us := r.URL.Query().Get("user"); us != "" {
		u, err := strconv.Atoi(us)
		if err != nil || u < 0 {
			return q, fmt.Errorf("bad user %q", us)
		}
		q.FilterUser = true
		q.User = pathhist.UserID(u)
	}
	return q, nil
}

func toResponse(res *pathhist.Result) Response {
	out := Response{
		MeanSeconds:  res.MeanSeconds,
		P05:          res.Histogram.Quantile(0.05),
		P50:          res.Histogram.Quantile(0.5),
		P95:          res.Histogram.Quantile(0.95),
		IndexScans:   res.IndexScans,
		CacheHits:    res.CacheHits,
		CacheMisses:  res.CacheMisses,
		FullCacheHit: res.FullCacheHit,
	}
	for _, s := range res.Subs {
		out.SubQueries = append(out.SubQueries, SubResponse{
			Segments: len(s.Path),
			Samples:  s.Samples,
			MeanTT:   s.MeanTT,
			Fallback: s.Fallback,
		})
	}
	h := res.Histogram
	w := h.BucketWidth()
	total := h.Total()
	lo := h.Min() / w * w
	for b := lo; b <= h.Max(); b += w {
		if m := h.Count(b); m > 0 {
			out.Histogram = append(out.Histogram, Bucket{
				From: b, Width: w, Fraction: m / total,
			})
		}
	}
	return out
}
