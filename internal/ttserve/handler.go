// Package ttserve implements the HTTP JSON handler behind cmd/ttserve: a
// thin, concurrency-safe service layer over a pathhist.Engine. One Engine
// is shared by all requests without additional locking — the engine is safe
// for concurrent use (immutable index snapshots, per-query scratch state,
// internally synchronised caches; DESIGN.md §6), so the handler's
// concurrency model is simply net/http's goroutine-per-request.
//
// When live ingestion is enabled (Config.EnableExtend), POST /extend
// accepts a trajectory batch in the traj binary format (Store.WriteTo) and
// publishes it through Engine.Extend: queries keep flowing while the batch
// is indexed, and the response reports the newly published epoch.
//
// Durability (DESIGN.md §11): with Config.WAL set, /extend acknowledges a
// batch only after its raw bytes are fsynced to the write-ahead log —
// validate, append, index, in that order under one ingest lock — so a 200
// means the batch survives a crash at any later instant. On restart,
// ReplayWAL re-applies every logged record the restored snapshot does not
// already cover. WriteSnapshot rotates the log (the snapshot durably covers
// its records) and prunes old snapshot generations, and /extend sheds load
// with 503 + Retry-After when the log or the merge backlog outgrows its
// bound — backpressure instead of unbounded replay debt.
package ttserve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pathhist"
	"pathhist/internal/failpoint"
	"pathhist/internal/metrics"
	"pathhist/internal/wal"
)

// Config parameterises the handler.
type Config struct {
	// EnableExtend registers the POST /extend ingestion endpoint and the
	// POST /compact maintenance endpoint. Off by default: both mutate
	// served state, so exposing them is an explicit deployment decision
	// (cmd/ttserve: -enable-extend).
	EnableExtend bool
	// MaxExtendBytes caps the accepted /extend request body size
	// (DefaultMaxExtendBytes when 0). A larger body is rejected with
	// 413 and a JSON error before the engine sees it.
	MaxExtendBytes int64
	// MaxExtendTrajectories caps the number of trajectories accepted in
	// one /extend batch (0 = unlimited). An oversized batch is rejected
	// with 413 and a JSON error before the engine indexes anything —
	// admission control for the ingest path: a single huge batch would
	// otherwise monopolise the (serialised) extend lock and build one
	// giant partition in the request goroutine.
	MaxExtendTrajectories int
	// SnapshotDir, when set, is where Server.WriteSnapshot persists the
	// served index (atomically, as an epoch-named snapshot file). Together
	// with EnableExtend it also registers the POST /snapshot endpoint —
	// snapshotting is a mutation of durable state, so the HTTP trigger
	// sits behind the same deployment gate as /extend and /compact
	// (cmd/ttserve: -snapshot-dir).
	SnapshotDir string
	// SnapshotKeep bounds how many epoch-named snapshot generations
	// WriteSnapshot retains in SnapshotDir (DefaultSnapshotKeep when 0;
	// the newest is always kept). Older generations only waste disk once a
	// newer snapshot is durably on disk — but several survivors mean a
	// corrupt newest file still leaves a recovery point.
	SnapshotKeep int
	// WAL, when non-nil, makes acknowledged ingestion durable: every
	// /extend batch is appended (and fsynced) to this log before the
	// engine indexes it, and rolled back if indexing then fails — the log
	// holds exactly the acknowledged, applied batches. The caller owns the
	// log's lifecycle (cmd/ttserve opens it, replays it into the engine
	// via ReplayWAL, and hands it here).
	WAL *wal.WAL
	// LoadedSnapshotPath names the snapshot file the engine was restored
	// from, when it was. Retention (WriteSnapshot's pruning) never deletes
	// this file: until a newer snapshot lands it is the only durable base
	// the WAL's records chain from.
	LoadedSnapshotPath string
	// MaxWALBytes sheds ingest load once the write-ahead log outgrows this
	// many bytes (0 = unbounded): /extend answers 503 + Retry-After until
	// a snapshot rotates the log. A growing log means snapshots have
	// fallen behind — accepting more batches would only deepen the replay
	// debt a crash victim has to pay.
	MaxWALBytes int64
	// MaxPartitionBacklog sheds ingest load once the served index holds
	// more than this many partitions (0 = unbounded): /extend answers
	// 503 + Retry-After until compaction catches up. The partition count
	// is the merge backlog — background compaction keeps ingest out of
	// the merge path, and this bound keeps a sustained burst from growing
	// the backlog (and per-query partition fan-out) without limit.
	MaxPartitionBacklog int
	// QueryTimeout bounds each /query's end-to-end processing time (0 =
	// unbounded). The deadline propagates into the engine's scan loops, so
	// a pathological query is cut off within a hair of the limit and
	// answered with a 504 JSON error instead of holding its goroutine and
	// scratch memory for seconds (cmd/ttserve: -query-timeout). A request
	// may lower (never raise) its own limit with ?timeout=.
	QueryTimeout time.Duration
	// ExtendTimeout bounds how long a /extend waits to become the active
	// writer (0 = unbounded). Ingests serialise on one lock, so a slow
	// build stalls the queue behind it; with a deadline the queued request
	// sheds with a 504 instead. Once a batch reaches the WAL it is always
	// fully applied — the deadline only covers the wait, never tears the
	// acknowledged⇒applied invariant (cmd/ttserve: -extend-timeout).
	ExtendTimeout time.Duration
}

// DefaultMaxExtendBytes is the default /extend body cap (64 MiB).
const DefaultMaxExtendBytes = 64 << 20

// DefaultSnapshotKeep is the default snapshot retention (newest K files).
const DefaultSnapshotKeep = 3

// retryAfterSeconds is the base Retry-After hint on 503 responses: overload
// (WAL or merge backlog over bound) clears on the next snapshot or
// compaction cycle — seconds, not milliseconds — while draining never
// clears, so the hint mainly keeps well-behaved clients from hammering a
// dying listener.
const retryAfterSeconds = 1

// retryAfterJitterSeconds is how many extra whole seconds RetryAfter spreads
// the hint over (the value is uniform in [base, base+jitter]).
const retryAfterJitterSeconds = 2

// RetryAfter renders a jittered Retry-After value. Every shed client gets
// the same fixed hint from a deterministic header, so an overload or drain
// that sheds a burst of requests at once would see the whole burst come back
// in lockstep one second later — the retry spike re-creates the overload.
// Spreading the hint over a few seconds de-synchronises the herd. Exported
// for cmd/ttserve's bootstrap handler, which sheds during recovery before
// any Server exists.
func RetryAfter() string {
	return strconv.Itoa(retryAfterSeconds + rand.Intn(retryAfterJitterSeconds+1))
}

// StatusClientClosedRequest is the non-standard (nginx-convention) status
// for a request whose client disconnected before the response was written.
// The client never sees it; it exists so access logs and counters separate
// "we were too slow" (504) from "they hung up" (499).
const StatusClientClosedRequest = 499

// FailpointQueryPanic names the fault-injection site inside the /query
// handler that the panic-isolation tests fire (see internal/failpoint): a
// panic injected here stands in for any handler bug, and must surface as a
// 500 on this request only, never a process crash.
const FailpointQueryPanic = "ttserve.query.panic"

// Response is the JSON shape of a /query answer.
type Response struct {
	MeanSeconds   float64       `json:"mean_seconds"`
	P05           float64       `json:"p05_seconds"`
	P50           float64       `json:"p50_seconds"`
	P95           float64       `json:"p95_seconds"`
	Empty         bool          `json:"empty,omitempty"` // no histogram mass; quantiles are zero
	SubQueries    []SubResponse `json:"sub_queries"`
	IndexScans    int           `json:"index_scans"`
	CacheHits     int           `json:"cache_hits"`
	CacheMisses   int           `json:"cache_misses"`
	Invalidations int           `json:"cache_invalidations,omitempty"`
	FullCacheHit  bool          `json:"full_cache_hit,omitempty"`
	Epoch         uint64        `json:"epoch"`
	Histogram     []Bucket      `json:"histogram"`
}

// Stats is the JSON shape of a /statsz answer: cumulative engine-level
// observability for capacity planning, cache tuning and ingest monitoring.
type Stats struct {
	Partitions             int     `json:"partitions"`
	Epoch                  uint64  `json:"epoch"`
	Trajectories           int     `json:"trajectories"`
	CacheHits              int64   `json:"cache_hits"`
	CacheMisses            int64   `json:"cache_misses"`
	CacheInvalidations     int64   `json:"cache_invalidations"`
	CacheEntries           int     `json:"cache_entries"`
	CacheHitRatio          float64 `json:"cache_hit_ratio"`
	FullCacheHits          int64   `json:"full_cache_hits"`
	FullCacheMisses        int64   `json:"full_cache_misses"`
	FullCacheInvalidations int64   `json:"full_cache_invalidations"`
	FullCacheEntries       int     `json:"full_cache_entries"`
	FullCacheHitRatio      float64 `json:"full_cache_hit_ratio"`
	CachePurges            int64   `json:"cache_purges"`
	FullCachePurges        int64   `json:"full_cache_purges"`
	IndexBytes             int     `json:"index_bytes"`
	ExtendEnabled          bool    `json:"extend_enabled"`
	Extends                int64   `json:"extends"`
	ExtendTrajectories     int64   `json:"extend_trajectories"`
	ExtendRejects          int64   `json:"extend_rejects"`
	ExtendOverloadRejects  int64   `json:"extend_overload_rejects"`
	LastExtendUnix         int64   `json:"last_extend_unix,omitempty"`
	Compactions            int64   `json:"compactions"`
	CompactionFailures     int64   `json:"compaction_failures,omitempty"`
	LastCompactionMerged   int64   `json:"last_compaction_merged_partitions"`
	LastCompactUnix        int64   `json:"last_compact_unix,omitempty"`
	SnapshotEpoch          uint64  `json:"snapshot_epoch"`
	LastSnapshotUnix       int64   `json:"last_snapshot_unix,omitempty"`
	SnapshotBytes          int64   `json:"snapshot_bytes,omitempty"`
	Ready                  bool    `json:"ready"`
	Draining               bool    `json:"draining,omitempty"`
	WALEnabled             bool    `json:"wal_enabled"`
	WALRecords             int     `json:"wal_records,omitempty"`
	WALBytes               int64   `json:"wal_bytes,omitempty"`
	WALAppends             int64   `json:"wal_appends,omitempty"`
	WALFsyncMsTotal        float64 `json:"wal_fsync_ms_total,omitempty"`
	WALRotations           int64   `json:"wal_rotations,omitempty"`
	WALRollbacks           int64   `json:"wal_rollbacks,omitempty"`
	QueryTimeouts          int64   `json:"query_timeouts"`
	CanceledRequests       int64   `json:"canceled_requests"`
	PanicsRecovered        int64   `json:"panics_recovered"`
	WALFailed              int64   `json:"wal_failed"`
	DegradedMode           int64   `json:"degraded_mode"`
	DegradedCause          string  `json:"degraded_cause,omitempty"`
	Index                  string  `json:"index"`
}

// ExtendResponse is the JSON shape of a successful /extend answer.
type ExtendResponse struct {
	Trajectories int     `json:"trajectories"`
	Epoch        uint64  `json:"epoch"`
	Total        int     `json:"total_trajectories"`
	ElapsedMs    float64 `json:"elapsed_ms"`
}

// SnapshotResponse is the JSON shape of a /snapshot answer.
type SnapshotResponse struct {
	Path      string  `json:"path"`
	Bytes     int64   `json:"bytes"`
	Epoch     uint64  `json:"epoch"`
	ElapsedMs float64 `json:"elapsed_ms"`
}

// CompactResponse is the JSON shape of a /compact answer.
type CompactResponse struct {
	PartitionsBefore int     `json:"partitions_before"`
	PartitionsAfter  int     `json:"partitions_after"`
	Runs             int     `json:"merged_runs"`
	TrajsRebuilt     int     `json:"trajectories_rebuilt"`
	RecordsRebuilt   int     `json:"records_rebuilt"`
	Epoch            uint64  `json:"epoch"`
	ElapsedMs        float64 `json:"elapsed_ms"`
}

// ErrorResponse is the JSON error body of admission rejections.
type ErrorResponse struct {
	Error string `json:"error"`
}

// rejectJSON writes a JSON error with the given status.
func rejectJSON(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ErrorResponse{Error: msg})
}

// SubResponse describes one final sub-query.
type SubResponse struct {
	Segments int     `json:"segments"`
	Samples  int     `json:"samples"`
	MeanTT   float64 `json:"mean_seconds"`
	Fallback bool    `json:"speed_limit_fallback,omitempty"`
}

// Bucket is one histogram bucket [From, From+Width) with its mass share.
type Bucket struct {
	From     int     `json:"from_seconds"`
	Width    int     `json:"width_seconds"`
	Fraction float64 `json:"fraction"`
}

// Server carries the shared engine, the handler-level ingest counters
// surfaced in /statsz, and the snapshot persistence state. It implements
// http.Handler; WriteSnapshot is also callable directly so the process
// lifecycle (cmd/ttserve's graceful shutdown) can persist a final snapshot
// outside any HTTP request.
type Server struct {
	eng *pathhist.Engine
	cfg Config
	mux *http.ServeMux

	extends         atomic.Int64
	extendTrajs     atomic.Int64
	extendRejects   atomic.Int64
	extendOverloads atomic.Int64
	lastExtendUnix  atomic.Int64

	// ingestMu serialises the durable admission sequence — validate, WAL
	// append, index — so the log order is exactly the apply order. Without
	// a WAL the engine's own extend lock would suffice; with one, two
	// interleaved requests could otherwise log in one order and apply in
	// the other.
	ingestMu sync.Mutex

	// ready and draining drive /readyz and load-balancer behaviour: ready
	// starts true (a constructed Server has a fully recovered engine) and
	// flips false on BeginDrain; draining additionally turns the serving
	// endpoints into 503 + Retry-After so a rolling restart sheds clients
	// to peers instead of resetting their connections.
	ready    atomic.Bool
	draining atomic.Bool

	// snapshotMu serialises snapshot writes: concurrent triggers would
	// race on the same target file for no benefit (each write captures
	// the newest published epoch anyway).
	snapshotMu       sync.Mutex
	snapshotEpoch    atomic.Uint64
	snapshotBytes    atomic.Int64
	lastSnapshotUnix atomic.Int64

	// counters are the robustness counters exported on /statsz.
	counters metrics.ServerCounters

	// degraded latches the fail-stop read-only mode (DESIGN.md §12): once
	// the WAL reports a write/sync failure, the mutating endpoints shed
	// with 503 while reads keep serving the (healthy, in-memory) index.
	// The latch never clears in-process — the disk is suspect, and the
	// only trustworthy reset is a restart, whose recovery re-reads the log
	// from the bytes that actually made it down.
	degraded      atomic.Bool
	degradedCause atomic.Pointer[string]
}

// enterDegraded latches degraded read-only mode, recording the first cause.
func (s *Server) enterDegraded(cause error) {
	if s.degraded.CompareAndSwap(false, true) {
		msg := cause.Error()
		s.degradedCause.Store(&msg)
		s.counters.DegradedMode.Store(1)
		s.counters.WALFailed.Store(1)
	}
}

// Degraded reports whether the server latched read-only mode.
func (s *Server) Degraded() bool { return s.degraded.Load() }

// Counters exposes the robustness counters (shared, live — callers must
// only read).
func (s *Server) Counters() *metrics.ServerCounters { return &s.counters }

// checkWAL inspects the log's health after a failed WAL operation and
// latches degraded mode when the failure was the log's sticky fail-stop
// (as opposed to a transient admission error that left the log healthy).
func (s *Server) checkWAL(err error) {
	if log := s.cfg.WAL; log != nil && log.Failed() {
		s.enterDegraded(err)
	}
}

// NewHandler returns the service handler for an engine with the default
// configuration (ingestion disabled).
func NewHandler(eng *pathhist.Engine) http.Handler {
	return NewHandlerWith(eng, Config{})
}

// NewHandlerWith returns the service handler for an engine.
func NewHandlerWith(eng *pathhist.Engine, cfg Config) http.Handler {
	return NewServer(eng, cfg)
}

// NewServer returns the service for an engine.
func NewServer(eng *pathhist.Engine, cfg Config) *Server {
	if cfg.MaxExtendBytes <= 0 {
		cfg.MaxExtendBytes = DefaultMaxExtendBytes
	}
	if cfg.SnapshotKeep <= 0 {
		cfg.SnapshotKeep = DefaultSnapshotKeep
	}
	s := &Server{eng: eng, cfg: cfg, mux: http.NewServeMux()}
	s.ready.Store(true)
	// Liveness vs readiness: /healthz answers 200 as long as the process
	// serves HTTP at all (even draining — the process is alive), while
	// /readyz tells the load balancer whether to route here.
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("/readyz", s.readyz)
	s.mux.HandleFunc("/statsz", s.statsz)
	s.mux.HandleFunc("/query", s.query)
	if cfg.EnableExtend {
		s.mux.HandleFunc("/extend", s.extend)
		s.mux.HandleFunc("/compact", s.compact)
		if cfg.SnapshotDir != "" {
			s.mux.HandleFunc("/snapshot", s.snapshot)
		}
	}
	return s
}

// headerTracker remembers whether a handler already committed a response,
// so the panic-recovery path knows whether a 500 can still be written.
type headerTracker struct {
	http.ResponseWriter
	wrote bool
}

func (h *headerTracker) WriteHeader(code int) {
	h.wrote = true
	h.ResponseWriter.WriteHeader(code)
}

func (h *headerTracker) Write(b []byte) (int, error) {
	h.wrote = true
	return h.ResponseWriter.Write(b)
}

// ServeHTTP dispatches to the service mux behind panic isolation: a panic
// in one handler — a bug tickled by one hostile request — is converted to a
// 500 on that request (when the response is still unwritten) and counted,
// instead of unwinding into net/http's connection teardown with the whole
// process's fate depending on what the panic corrupted. http.ErrAbortHandler
// is re-panicked: it is net/http's own sanctioned way to abort a response,
// not a bug.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	tw := &headerTracker{ResponseWriter: w}
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		if rec == http.ErrAbortHandler {
			panic(rec)
		}
		s.counters.PanicsRecovered.Add(1)
		if !tw.wrote {
			rejectJSON(tw.ResponseWriter, http.StatusInternalServerError,
				fmt.Sprintf("internal error: %v", rec))
		}
	}()
	s.mux.ServeHTTP(tw, r)
}

// BeginDrain moves the server into its terminal draining state: /readyz
// flips to 503 and the serving endpoints (/query, /extend, /compact,
// /snapshot) answer 503 + Retry-After with a JSON error body instead of
// having their connections reset by the closing listener. Call it before
// http.Server.Shutdown so the load balancer stops routing here while
// in-flight requests finish.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
	s.ready.Store(false)
}

// SetReady overrides the readiness bit (it starts true — a constructed
// Server wraps a fully recovered engine). BeginDrain clears it permanently.
func (s *Server) SetReady(v bool) { s.ready.Store(v && !s.draining.Load()) }

// readyz reports routability: 200 once recovery (snapshot load + WAL
// replay) is complete and the server is not draining, 503 otherwise.
func (s *Server) readyz(w http.ResponseWriter, r *http.Request) {
	if s.ready.Load() && !s.draining.Load() {
		w.WriteHeader(http.StatusOK)
		if s.degraded.Load() {
			// Still routable — reads serve fine — but operators watching
			// readiness probes should see the write path is gone.
			fmt.Fprintln(w, "ready (degraded: read-only after a write-ahead log failure)")
			return
		}
		fmt.Fprintln(w, "ready")
		return
	}
	w.Header().Set("Retry-After", RetryAfter())
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintln(w, "not ready")
}

// unavailable writes a 503 with a jittered Retry-After hint and a JSON
// error body.
func (s *Server) unavailable(w http.ResponseWriter, msg string) {
	unavailableJSON(w, msg)
}

// unavailableJSON is the shared 503 shape: jittered Retry-After hint plus a
// JSON error body (the single-engine Server and the sharded front emit the
// same wire format).
func unavailableJSON(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", RetryAfter())
	rejectJSON(w, http.StatusServiceUnavailable, msg)
}

// ingestOverload reports whether the server sheds ingest load right now:
// the write-ahead log outgrew its bound (a snapshot repays that debt) or
// the merge backlog did (compaction repays it). Checked before any work is
// done on an /extend, and by the sharded front before handing a routed
// batch to a shard.
func (s *Server) ingestOverload() (string, bool) {
	if max := s.cfg.MaxWALBytes; max > 0 && s.cfg.WAL != nil && s.cfg.WAL.Size() > max {
		return fmt.Sprintf(
			"write-ahead log holds %d bytes (bound %d); waiting for a snapshot to rotate it",
			s.cfg.WAL.Size(), max), true
	}
	if max := s.cfg.MaxPartitionBacklog; max > 0 && s.eng.Partitions() > max {
		return fmt.Sprintf(
			"index holds %d partitions (bound %d); waiting for compaction to catch up",
			s.eng.Partitions(), max), true
	}
	return "", false
}

// WriteSnapshot persists the currently published index snapshot as an
// epoch-named file in Config.SnapshotDir (atomic temp-file + rename),
// rotates the write-ahead log — the snapshot durably covers every batch up
// to its trajectory count, so those records are dead weight a crash victim
// would only re-skip — prunes old snapshot generations down to
// Config.SnapshotKeep (never the file the engine was loaded from), and
// records the outcome in the /statsz counters. It is the engine behind
// POST /snapshot, the periodic snapshot loop, and the final snapshot of a
// graceful shutdown.
//
// The order matters for crash safety: snapshot first (fsync + rename +
// directory fsync), then log rotation, then pruning. A crash between any
// two steps leaves extra durable state (stale WAL records a replay skips,
// an extra snapshot file), never missing state.
func (s *Server) WriteSnapshot() (SnapshotResponse, error) {
	if s.cfg.SnapshotDir == "" {
		return SnapshotResponse{}, fmt.Errorf("ttserve: no snapshot directory configured")
	}
	if s.degraded.Load() {
		// The disk already ate one write; a snapshot would trust it with
		// the whole index and then rotate away the log records that are
		// the only durable account of what was acknowledged.
		return SnapshotResponse{}, fmt.Errorf("ttserve: refusing snapshot in degraded mode (write-ahead log failed)")
	}
	s.snapshotMu.Lock()
	defer s.snapshotMu.Unlock()
	started := time.Now()
	st, err := s.eng.SnapshotFileIn(s.cfg.SnapshotDir)
	if err != nil {
		return SnapshotResponse{}, err
	}
	// The counters report what the file actually holds (the epoch pinned
	// inside SnapshotFileIn), not a re-read of engine state that a racing
	// extend may already have advanced.
	s.snapshotEpoch.Store(st.Epoch)
	s.snapshotBytes.Store(st.Bytes)
	s.lastSnapshotUnix.Store(time.Now().Unix())
	resp := SnapshotResponse{
		Path:  st.Path,
		Bytes: st.Bytes,
		Epoch: st.Epoch,
	}
	if log := s.cfg.WAL; log != nil {
		if err := log.TruncateCovered(uint64(st.Trajectories)); err != nil {
			// The snapshot itself is durable; a rotation failure only means
			// the log keeps covered records (replay skips them). But if the
			// failure latched the log's fail-stop state, the write path
			// must close with it.
			s.checkWAL(err)
			resp.ElapsedMs = float64(time.Since(started).Microseconds()) / 1000
			return resp, fmt.Errorf("ttserve: rotating WAL after snapshot: %w", err)
		}
	}
	// Pin both the configured restore file and the file the engine is
	// serving over a mapping. They usually coincide, but an engine mapped
	// from an explicit -load-snapshot path inside the snapshot dir has no
	// LoadedSnapshotPath pin, and deleting a mapped file silently breaks
	// the next restart's re-open even though the running process keeps
	// serving (the unlinked inode stays alive on unix).
	if _, err := pathhist.PruneSnapshots(s.cfg.SnapshotDir, s.cfg.SnapshotKeep,
		s.cfg.LoadedSnapshotPath, s.eng.MappedSnapshotPath()); err != nil {
		resp.ElapsedMs = float64(time.Since(started).Microseconds()) / 1000
		return resp, err
	}
	resp.ElapsedMs = float64(time.Since(started).Microseconds()) / 1000
	return resp, nil
}

// snapshot handles POST /snapshot: persist the served index now. Gated by
// EnableExtend + SnapshotDir (see Config).
func (s *Server) snapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		rejectJSON(w, http.StatusMethodNotAllowed, "POST to /snapshot to persist the served index")
		return
	}
	if s.draining.Load() {
		s.unavailable(w, "server is draining")
		return
	}
	if s.degraded.Load() {
		s.unavailable(w, "server is degraded (read-only) after a write-ahead log failure; restart to recover")
		return
	}
	resp, err := s.WriteSnapshot()
	if err != nil {
		rejectJSON(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

func (s *Server) statsz(w http.ResponseWriter, r *http.Request) {
	st := s.statsSnapshot()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(st)
}

// statsSnapshot assembles the /statsz payload. The sharded front calls it
// once per shard to build its aggregated view.
func (s *Server) statsSnapshot() Stats {
	cs := s.eng.CacheStats()
	fs := s.eng.FullCacheStats()
	c, wt, user, forest := s.eng.IndexMemory()
	compactions, lastCompaction := s.eng.CompactionInfo()
	st := Stats{
		Partitions:             s.eng.Partitions(),
		Epoch:                  s.eng.Epoch(),
		Trajectories:           s.eng.Trajectories(),
		CacheHits:              cs.Hits,
		CacheMisses:            cs.Misses,
		CacheInvalidations:     cs.Invalidations,
		CacheEntries:           cs.Entries,
		FullCacheHits:          fs.Hits,
		FullCacheMisses:        fs.Misses,
		FullCacheInvalidations: fs.Invalidations,
		FullCacheEntries:       fs.Entries,
		CachePurges:            cs.Purges,
		FullCachePurges:        fs.Purges,
		IndexBytes:             c + wt + user + forest,
		ExtendEnabled:          s.cfg.EnableExtend,
		Extends:                s.extends.Load(),
		ExtendTrajectories:     s.extendTrajs.Load(),
		ExtendRejects:          s.extendRejects.Load(),
		ExtendOverloadRejects:  s.extendOverloads.Load(),
		LastExtendUnix:         s.lastExtendUnix.Load(),
		Compactions:            compactions,
		CompactionFailures:     s.eng.CompactionFailures(),
		LastCompactionMerged:   int64(lastCompaction.PartitionsBefore - lastCompaction.PartitionsAfter),
		LastCompactUnix:        lastCompaction.CompletedUnix,
		SnapshotEpoch:          s.snapshotEpoch.Load(),
		LastSnapshotUnix:       s.lastSnapshotUnix.Load(),
		SnapshotBytes:          s.snapshotBytes.Load(),
		Ready:                  s.ready.Load(),
		Draining:               s.draining.Load(),
		WALEnabled:             s.cfg.WAL != nil,
		Index:                  s.eng.IndexInfo(),
	}
	cv := s.counters.Snapshot()
	st.QueryTimeouts = cv.QueryTimeouts
	st.CanceledRequests = cv.CanceledRequests
	st.PanicsRecovered = cv.PanicsRecovered
	st.WALFailed = cv.WALFailed
	st.DegradedMode = cv.DegradedMode
	if cause := s.degradedCause.Load(); cause != nil {
		st.DegradedCause = *cause
	}
	if log := s.cfg.WAL; log != nil {
		ws := log.Stats()
		st.WALRecords = ws.Records
		st.WALBytes = ws.Bytes
		st.WALAppends = ws.Appends
		st.WALFsyncMsTotal = float64(ws.FsyncNanos) / 1e6
		st.WALRotations = ws.Rotations
		st.WALRollbacks = ws.Rollbacks
		if ws.Failed && st.WALFailed == 0 {
			// The log failed outside a request path this server drove
			// (defence in depth): surface it even before a handler trips.
			st.WALFailed = 1
		}
	}
	if total := cs.Hits + cs.Misses; total > 0 {
		st.CacheHitRatio = float64(cs.Hits) / float64(total)
	}
	if total := fs.Hits + fs.Misses; total > 0 {
		st.FullCacheHitRatio = float64(fs.Hits) / float64(total)
	}
	return st
}

// parseTimeout reads a ?timeout= value: a Go duration string ("50ms",
// "1.5s") or a bare integer meaning milliseconds.
func parseTimeout(raw string) (time.Duration, error) {
	if ms, err := strconv.Atoi(raw); err == nil {
		if ms <= 0 {
			return 0, fmt.Errorf("bad timeout %q: must be positive", raw)
		}
		return time.Duration(ms) * time.Millisecond, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("bad timeout %q: want a positive duration like 50ms", raw)
	}
	return d, nil
}

// requestDeadline resolves the effective deadline for a request: the
// configured server limit, lowered (never raised) by a ?timeout= parameter.
// It returns the derived context and its cancel func (both unchanged when
// no limit applies).
func requestDeadline(r *http.Request, limit time.Duration) (context.Context, context.CancelFunc, time.Duration, error) {
	ctx := r.Context()
	if raw := r.URL.Query().Get("timeout"); raw != "" {
		d, err := parseTimeout(raw)
		if err != nil {
			return ctx, nil, 0, err
		}
		if limit == 0 || d < limit {
			limit = d
		}
	}
	if limit <= 0 {
		return ctx, nil, 0, nil
	}
	ctx, cancel := context.WithTimeout(ctx, limit)
	return ctx, cancel, limit, nil
}

func (s *Server) query(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		// A draining listener used to just close on clients mid-restart;
		// a 503 with Retry-After lets them fail over cleanly instead.
		s.unavailable(w, "server is draining")
		return
	}
	q, err := parseQuery(r)
	if err != nil {
		rejectJSON(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel, limit, err := requestDeadline(r, s.cfg.QueryTimeout)
	if err != nil {
		rejectJSON(w, http.StatusBadRequest, err.Error())
		return
	}
	if cancel != nil {
		defer cancel()
	}
	if err := failpoint.Inject(FailpointQueryPanic); err != nil {
		// The site exists for panic injection; an error injection surfaces
		// as a plain 500 so tests can also drive that path.
		rejectJSON(w, http.StatusInternalServerError, err.Error())
		return
	}
	res, err := s.eng.QueryCtx(ctx, q)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			// The query, not the client, ran out of time: the engine
			// abandoned its scans at the deadline and freed its scratch
			// state; nothing partial was computed or cached.
			s.counters.QueryTimeouts.Add(1)
			rejectJSON(w, http.StatusGatewayTimeout,
				fmt.Sprintf("query exceeded its %v deadline", limit))
		case errors.Is(err, context.Canceled):
			// The client hung up; the status is for logs and counters only.
			s.counters.CanceledRequests.Add(1)
			rejectJSON(w, StatusClientClosedRequest, "client closed the request")
		default:
			rejectJSON(w, http.StatusUnprocessableEntity, err.Error())
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(toResponse(res)); err != nil {
		// Too late for a status change; the connection is gone.
		return
	}
}

// extend ingests a trajectory batch: the request body is the traj binary
// format (pathhist.Store.WriteTo / ReadStore — the same bytes ttgen writes
// to trajectories.bin). Malformed bodies are 400s; well-formed batches the
// engine rejects (e.g. overlapping the indexed time range) are 422s; an
// overloaded or draining server sheds with 503 + Retry-After before doing
// any work. With a WAL configured, the 200 is only written after the batch
// is fsynced to the log and indexed (see ingest).
func (s *Server) extend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		rejectJSON(w, http.StatusMethodNotAllowed, "POST a traj-format batch to /extend")
		return
	}
	if s.draining.Load() {
		s.extendOverloads.Add(1)
		s.unavailable(w, "server is draining")
		return
	}
	if s.degraded.Load() {
		// Fail-stop: the WAL can no longer make batches durable, so no
		// batch is acknowledged. Reads keep serving; the write path stays
		// closed until a restart re-establishes a trustworthy log.
		s.extendRejects.Add(1)
		s.unavailable(w, "server is degraded (read-only) after a write-ahead log failure; restart to recover")
		return
	}
	// Overload shedding, checked before the body is even read: both
	// conditions are repay-the-debt signals (a snapshot rotates the log, a
	// compaction cycle shrinks the backlog), so the honest answer is
	// "retry shortly", not a slow accept that deepens the hole.
	if msg, shed := s.ingestOverload(); shed {
		s.extendOverloads.Add(1)
		s.unavailable(w, msg)
		return
	}
	started := time.Now()
	// The raw bytes are read once and decoded from memory: the WAL logs
	// exactly the bytes the client sent (replay re-decodes them), so the
	// decode and the log entry can never disagree.
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxExtendBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			// Admission control, byte budget: the request exceeded the
			// configured body cap — a client-side sizing problem, reported
			// as 413 with a machine-readable body so batch producers can
			// split and retry.
			s.extendOverloads.Add(1)
			rejectJSON(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("batch exceeds the %d-byte limit; split it into smaller batches", tooBig.Limit))
			return
		}
		s.extendRejects.Add(1)
		rejectJSON(w, http.StatusBadRequest, fmt.Sprintf("reading batch: %v", err))
		return
	}
	batch, err := pathhist.ReadStore(bytes.NewReader(raw))
	if err != nil {
		s.extendRejects.Add(1)
		rejectJSON(w, http.StatusBadRequest, fmt.Sprintf("decoding batch: %v", err))
		return
	}
	if max := s.cfg.MaxExtendTrajectories; max > 0 && batch.Len() > max {
		// Admission control, trajectory budget: indexing runs in the
		// request goroutine under the serialised extend lock, so one huge
		// batch would stall every later ingest for its whole build time.
		s.extendOverloads.Add(1)
		rejectJSON(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch holds %d trajectories, limit is %d; split it into smaller batches", batch.Len(), max))
		return
	}
	ctx := r.Context()
	if s.cfg.ExtendTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.ExtendTimeout)
		defer cancel()
	}
	st, status, err := s.ingest(ctx, raw, batch)
	if err != nil {
		s.extendRejects.Add(1)
		if errors.Is(err, context.DeadlineExceeded) {
			s.counters.QueryTimeouts.Add(1)
			status = http.StatusGatewayTimeout
			err = fmt.Errorf("extend timed out after %v waiting for the writer lock; no batch was acknowledged", s.cfg.ExtendTimeout)
		} else if errors.Is(err, context.Canceled) {
			s.counters.CanceledRequests.Add(1)
			status = StatusClientClosedRequest
		}
		rejectJSON(w, status, err.Error())
		return
	}
	s.extends.Add(1)
	s.extendTrajs.Add(int64(batch.Len()))
	s.lastExtendUnix.Store(time.Now().Unix())
	w.Header().Set("Content-Type", "application/json")
	// The response reports the publication this batch produced (from
	// IngestStats), not a re-read of engine state a concurrent extend may
	// already have advanced.
	_ = json.NewEncoder(w).Encode(ExtendResponse{
		Trajectories: batch.Len(),
		Epoch:        st.Epoch,
		Total:        st.TotalTrajectories,
		ElapsedMs:    float64(time.Since(started).Microseconds()) / 1000,
	})
}

// ingest runs the durable admission sequence for one batch under the
// ingest lock: validate, append to the WAL (fsynced), then index. The
// returned status is the HTTP code to report alongside a non-nil error.
//
// The ordering is the durability contract. Validation runs first so the
// log never records a batch replay would refuse; the fsynced append runs
// before Extend so an acknowledged batch is on disk before any client can
// observe it (acknowledged ⇒ fsynced ⇒ recovered); and if Extend still
// fails after validation passed, the fresh record is rolled back so the
// log stays exactly the applied history.
// The context only guards the entry points — the wait for the ingest lock
// and the moment before the WAL append. Once a batch's record is fsynced,
// the sequence always runs to the publication: aborting between append and
// Extend would leave a logged-but-unapplied record, breaking the invariant
// that the log is exactly the applied history.
func (s *Server) ingest(ctx context.Context, raw []byte, batch *pathhist.Store) (pathhist.IngestStats, int, error) {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	log := s.cfg.WAL
	if log == nil {
		st, err := s.eng.ExtendCtx(ctx, batch)
		if err != nil {
			return st, http.StatusUnprocessableEntity, err
		}
		return st, http.StatusOK, nil
	}
	if err := ctx.Err(); err != nil {
		// The wait for a slow predecessor consumed the deadline; nothing
		// was logged or applied, so shedding here is clean.
		return pathhist.IngestStats{}, http.StatusGatewayTimeout, err
	}
	if err := s.eng.ValidateExtend(batch); err != nil {
		return pathhist.IngestStats{}, http.StatusUnprocessableEntity, err
	}
	if err := log.Append(uint64(s.eng.Trajectories()), batch.Len(), raw); err != nil {
		// A batch that cannot be made durable is not acknowledged — the
		// failure is the server's (disk trouble), not the client's. A
		// write/sync failure latches the log's fail-stop state; mirror it
		// into degraded read-only serving.
		s.checkWAL(err)
		return pathhist.IngestStats{}, http.StatusInternalServerError,
			fmt.Errorf("write-ahead log: %v", err)
	}
	st, err := s.eng.Extend(batch)
	if err != nil {
		// Validation mirrors Extend's admission checks, so this is a
		// should-not-happen path — but the log must not keep a record the
		// index refused.
		if rbErr := log.RollbackLast(); rbErr != nil {
			s.checkWAL(rbErr)
			return st, http.StatusInternalServerError,
				fmt.Errorf("%v (and rolling back its WAL record failed: %v)", err, rbErr)
		}
		return st, http.StatusUnprocessableEntity, err
	}
	return st, http.StatusOK, nil
}

// ReplayWAL applies every logged record the restored engine does not
// already cover, in log order, and returns how many batches it applied.
// Records are correlated on trajectory totals: a record whose end
// (PrevTotal+Trajs) the engine already holds is skipped — the snapshot
// covers it, and a crash between snapshot and log rotation leaves exactly
// such records — and the first uncovered record must start at the engine's
// current total. Anything else (a gap, a partial overlap) means the log
// does not descend from the restored snapshot — a mispaired -wal-path /
// snapshot-dir — and replay fails closed rather than serve a state no
// client was ever acknowledged.
func ReplayWAL(eng *pathhist.Engine, log *wal.WAL) (int, error) {
	recs, err := log.Records()
	if err != nil {
		return 0, err
	}
	total := uint64(eng.Trajectories())
	applied := 0
	for i, rec := range recs {
		end := rec.PrevTotal + uint64(rec.Trajs)
		if end <= total {
			continue // durably covered by the snapshot already
		}
		if rec.PrevTotal != total {
			return applied, fmt.Errorf(
				"ttserve: wal record %d spans trajectories %d..%d but the index holds %d: log does not match the restored snapshot",
				i, rec.PrevTotal, end, total)
		}
		batch, err := pathhist.ReadStore(bytes.NewReader(rec.Batch))
		if err != nil {
			return applied, fmt.Errorf("ttserve: decoding wal record %d: %w", i, err)
		}
		if batch.Len() != int(rec.Trajs) {
			return applied, fmt.Errorf("ttserve: wal record %d holds %d trajectories, header says %d",
				i, batch.Len(), rec.Trajs)
		}
		if _, err := eng.Extend(batch); err != nil {
			return applied, fmt.Errorf("ttserve: replaying wal record %d: %w", i, err)
		}
		total = end
		applied++
	}
	return applied, nil
}

// compact triggers partition compaction: the engine merges the temporal
// partitions accumulated by /extend batches back into few large ones and
// publishes the result as a new epoch, off the serving path. Idempotent —
// when nothing needs merging the response reports an unchanged layout.
func (s *Server) compact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		rejectJSON(w, http.StatusMethodNotAllowed, "POST to /compact to merge ingested partitions")
		return
	}
	if s.draining.Load() {
		s.unavailable(w, "server is draining")
		return
	}
	if s.degraded.Load() {
		// Compaction is safe for the in-memory index, but it advances the
		// epoch and invites a snapshot of state the broken log no longer
		// anchors; in fail-stop mode, do nothing but serve reads.
		s.unavailable(w, "server is degraded (read-only) after a write-ahead log failure; restart to recover")
		return
	}
	st, err := s.eng.Compact()
	if err != nil {
		rejectJSON(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	// The response reports the epoch of this compaction's own publication
	// (from CompactionStats), not a re-read of engine state a concurrent
	// extend may already have advanced.
	_ = json.NewEncoder(w).Encode(CompactResponse{
		PartitionsBefore: st.PartitionsBefore,
		PartitionsAfter:  st.PartitionsAfter,
		Runs:             st.Runs,
		TrajsRebuilt:     st.TrajsRebuilt,
		RecordsRebuilt:   st.RecordsRebuilt,
		Epoch:            st.Epoch,
		ElapsedMs:        float64(st.Elapsed.Microseconds()) / 1000,
	})
}

// parseQuery decodes the /query parameters.
func parseQuery(r *http.Request) (pathhist.Query, error) {
	var q pathhist.Query
	raw := r.URL.Query().Get("path")
	if raw == "" {
		return q, fmt.Errorf("missing ?path=<edge,edge,...>")
	}
	for _, tok := range strings.Split(raw, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || id < 0 {
			return q, fmt.Errorf("bad edge id %q", tok)
		}
		q.Path = append(q.Path, pathhist.EdgeID(id))
	}
	tod := r.URL.Query().Get("tod")
	from, hasFrom := r.URL.Query().Get("from"), false
	until, hasUntil := r.URL.Query().Get("until"), false
	if tod != "" && (from != "" || until != "") {
		return q, fmt.Errorf("tod is mutually exclusive with from/until")
	}
	if tod != "" {
		parts := strings.SplitN(tod, ":", 2)
		if len(parts) != 2 {
			return q, fmt.Errorf("bad tod %q, want HH:MM", tod)
		}
		hh, err1 := strconv.Atoi(parts[0])
		mm, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || hh < 0 || hh > 23 || mm < 0 || mm > 59 {
			return q, fmt.Errorf("bad tod %q", tod)
		}
		q.Periodic = true
		q.Around = int64(hh*3600 + mm*60)
	}
	if from != "" {
		v, err := strconv.ParseInt(from, 10, 64)
		if err != nil || v < 0 {
			return q, fmt.Errorf("bad from %q", from)
		}
		q.From, hasFrom = v, true
	}
	if until != "" {
		v, err := strconv.ParseInt(until, 10, 64)
		if err != nil || v <= 0 {
			return q, fmt.Errorf("bad until %q", until)
		}
		q.Until, hasUntil = v, true
	}
	if hasFrom && hasUntil && q.Until <= q.From {
		return q, fmt.Errorf("until (%d) must be greater than from (%d)", q.Until, q.From)
	}
	if ws := r.URL.Query().Get("window"); ws != "" {
		if tod == "" {
			return q, fmt.Errorf("window requires tod")
		}
		w, err := strconv.ParseInt(ws, 10, 64)
		if err != nil || w <= 0 {
			return q, fmt.Errorf("bad window %q", ws)
		}
		q.WindowSeconds = w
	}
	if bs := r.URL.Query().Get("beta"); bs != "" {
		b, err := strconv.Atoi(bs)
		if err != nil || b < 0 {
			return q, fmt.Errorf("bad beta %q", bs)
		}
		q.Beta = b
	}
	if us := r.URL.Query().Get("user"); us != "" {
		u, err := strconv.Atoi(us)
		if err != nil || u < 0 {
			return q, fmt.Errorf("bad user %q", us)
		}
		q.FilterUser = true
		q.User = pathhist.UserID(u)
	}
	return q, nil
}

func toResponse(res *pathhist.Result) Response {
	out := Response{
		MeanSeconds:   res.MeanSeconds,
		IndexScans:    res.IndexScans,
		CacheHits:     res.CacheHits,
		CacheMisses:   res.CacheMisses,
		Invalidations: res.CacheInvalidations,
		FullCacheHit:  res.FullCacheHit,
		Epoch:         res.Epoch,
	}
	for _, s := range res.Subs {
		out.SubQueries = append(out.SubQueries, SubResponse{
			Segments: len(s.Path),
			Samples:  s.Samples,
			MeanTT:   s.MeanTT,
			Fallback: s.Fallback,
		})
	}
	fillHistogram(&out, res.Histogram)
	return out
}

// fillHistogram renders a histogram into the response's quantiles and
// buckets. A zero-mass histogram would make every Fraction 0/0 = NaN, which
// json.Encoder rejects after the 200 header is already out (the client sees
// a truncated body) — the emptiness is flagged instead.
func fillHistogram(out *Response, h *pathhist.Histogram) {
	if h == nil || h.Total() == 0 {
		out.Empty = true
		return
	}
	out.P05 = h.Quantile(0.05)
	out.P50 = h.Quantile(0.5)
	out.P95 = h.Quantile(0.95)
	w := h.BucketWidth()
	total := h.Total()
	lo := h.Min() / w * w
	for b := lo; b <= h.Max(); b += w {
		if m := h.Count(b); m > 0 {
			out.Histogram = append(out.Histogram, Bucket{
				From: b, Width: w, Fraction: m / total,
			})
		}
	}
}
