//go:build unix

package snapio

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps path read-only. PROT_READ makes the immutability contract
// hardware-enforced: any write through a zero-copy column view faults
// instead of silently corrupting the snapshot every replica shares.
func mapFile(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		// mmap rejects zero-length maps; an empty file fails header
		// verification anyway, with a better error than EINVAL.
		return &Mapping{path: path}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("snapio: %s: %d bytes exceeds this platform's address space", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("snapio: mmap %s: %w", path, err)
	}
	return &Mapping{data: data, path: path, mapped: true}, nil
}

func munmap(data []byte) error { return syscall.Munmap(data) }
