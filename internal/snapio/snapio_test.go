package snapio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteHeader(Header{Epoch: 7, Partitions: 3, Sections: 2})
	w.Begin(1)
	w.U64(42)
	w.I64(-5)
	w.Bool(true)
	w.I64s([]int64{1, -2, 3})
	w.I32s([]int32{4, -5, 6}) // odd count: exercises padding
	w.U16s([]uint16{7, 8, 9})
	w.End()
	w.Begin(2)
	w.U64s([]uint64{10, 11})
	w.U32s(nil)
	w.End()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len()%8 != 0 {
		t.Fatalf("file length %d not 8-byte aligned", buf.Len())
	}
	if w.Written() != int64(buf.Len()) {
		t.Fatalf("Written() = %d, buffered %d", w.Written(), buf.Len())
	}

	r, err := NewReader(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if h := r.Header(); h.Epoch != 7 || h.Partitions != 3 || h.Sections != 2 {
		t.Fatalf("header = %+v", h)
	}
	kind, err := r.Next()
	if err != nil || kind != 1 {
		t.Fatalf("Next = %d, %v", kind, err)
	}
	if v := r.U64(); v != 42 {
		t.Fatalf("U64 = %d", v)
	}
	if v := r.I64(); v != -5 {
		t.Fatalf("I64 = %d", v)
	}
	if !r.Bool() {
		t.Fatal("Bool = false")
	}
	if got := r.I64s(); len(got) != 3 || got[1] != -2 {
		t.Fatalf("I64s = %v", got)
	}
	if got := r.I32s(); len(got) != 3 || got[1] != -5 {
		t.Fatalf("I32s = %v", got)
	}
	if got := r.U16s(); len(got) != 3 || got[2] != 9 {
		t.Fatalf("U16s = %v", got)
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining %d after full decode", r.Remaining())
	}
	kind, err = r.Next()
	if err != nil || kind != 2 {
		t.Fatalf("Next = %d, %v", kind, err)
	}
	if got := r.U64s(); len(got) != 2 || got[0] != 10 {
		t.Fatalf("U64s = %v", got)
	}
	if got := r.U32s(); got != nil {
		t.Fatalf("U32s = %v, want nil", got)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("after last section: %v, want io.EOF", err)
	}
}

func encodeOne(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteHeader(Header{Epoch: 1, Partitions: 1, Sections: 1})
	w.Begin(9)
	w.I64s([]int64{1, 2, 3, 4})
	w.End()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFailClosed(t *testing.T) {
	good := encodeOne(t)

	t.Run("bad magic", func(t *testing.T) {
		data := append([]byte(nil), good...)
		data[0] ^= 0xff
		if _, err := NewReader(data); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("err = %v, want ErrBadMagic", err)
		}
	})
	t.Run("wrong version", func(t *testing.T) {
		data := append([]byte(nil), good...)
		binary.LittleEndian.PutUint32(data[8:], Version+1)
		if _, err := NewReader(data); !errors.Is(err, ErrVersion) {
			t.Fatalf("err = %v, want ErrVersion", err)
		}
	})
	t.Run("header crc", func(t *testing.T) {
		data := append([]byte(nil), good...)
		data[16] ^= 0x01 // epoch byte: covered by header CRC
		if _, err := NewReader(data); !errors.Is(err, ErrChecksum) {
			t.Fatalf("err = %v, want ErrChecksum", err)
		}
	})
	t.Run("short header", func(t *testing.T) {
		if _, err := NewReader(good[:headerSize-1]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v, want ErrTruncated", err)
		}
	})
	t.Run("payload bit flip", func(t *testing.T) {
		data := append([]byte(nil), good...)
		data[len(data)-4] ^= 0x10
		r, err := NewReader(data)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Next(); !errors.Is(err, ErrChecksum) {
			t.Fatalf("err = %v, want ErrChecksum", err)
		}
	})
	t.Run("truncated payload", func(t *testing.T) {
		r, err := NewReader(good[:len(good)-8])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Next(); !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v, want ErrTruncated", err)
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		data := append(append([]byte(nil), good...), 0, 0, 0, 0, 0, 0, 0, 0)
		r, err := NewReader(data)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Next(); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Next(); !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v, want ErrTruncated", err)
		}
	})
	t.Run("hostile slice length", func(t *testing.T) {
		// A section whose declared slice length exceeds the payload must
		// fail with ErrTruncated, not attempt the allocation.
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.WriteHeader(Header{Sections: 1})
		w.Begin(1)
		w.U64(1 << 60) // slice length with no elements following
		w.End()
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Next(); err != nil {
			t.Fatal(err)
		}
		if got := r.I64s(); got != nil {
			t.Fatalf("I64s = %v", got)
		}
		if !errors.Is(r.Err(), ErrTruncated) {
			t.Fatalf("err = %v, want ErrTruncated", r.Err())
		}
	})
}
