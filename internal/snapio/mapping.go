// The backing-store abstraction of zero-copy snapshot loading (DESIGN.md
// §15): a decoded index owns its columns on the heap (NewReader) or views
// them over a read-only file mapping (MapFile + NewMappedReader). A Mapping
// is the second kind of backing store; it hands out one immutable byte
// slice covering the whole file and stays alive for as long as any decoded
// structure references it.

package snapio

// Mapping is a snapshot file opened as a read-only backing store. On unix
// it is a PROT_READ mmap — the kernel enforces immutability (a write
// through a view faults) and K processes or engines mapping the same file
// share one page cache. Elsewhere it degrades to a heap copy of the file
// with identical semantics minus the sharing.
//
// Lifecycle: every column decoded from a NewMappedReader over Data()
// aliases the mapping, so Close must not run until every index epoch that
// references those columns is unreachable. Engines that load from a
// mapping therefore hold it for their whole lifetime and let process exit
// clean it up; Close exists for tests and for loads that fail before
// publishing.
type Mapping struct {
	data   []byte
	path   string
	mapped bool
}

// MapFile opens path as a read-only backing store: a real mapping on unix,
// a heap copy of the file elsewhere.
func MapFile(path string) (*Mapping, error) { return mapFile(path) }

// Data returns the file bytes. The slice is immutable: it may be backed by
// read-only pages.
func (m *Mapping) Data() []byte { return m.data }

// Path returns the file the mapping was opened from.
func (m *Mapping) Path() string { return m.path }

// Mapped reports whether Data is an OS mapping (false on the portable
// heap-copy fallback).
func (m *Mapping) Mapped() bool { return m.mapped }

// Close releases the mapping. It must only be called once nothing decoded
// over Data remains reachable; after Close, Data returns nil.
func (m *Mapping) Close() error {
	data, mapped := m.data, m.mapped
	m.data = nil
	if !mapped || data == nil {
		return nil
	}
	return munmap(data)
}
