// Package snapio is the low-level framing of the on-disk index snapshot
// format (DESIGN.md §10): a fixed header followed by a sequence of typed,
// checksummed sections. Everything is little-endian and 8-byte aligned —
// scalar fields are fixed-width, every slice payload starts on an 8-byte
// boundary inside its section, and every section payload starts on an
// 8-byte file offset — so a loader can either read sections sequentially
// (what ReadFile/Reader do) or mmap the file and point column slices
// straight into the mapping.
//
// Integrity is fail-closed: the header carries its own CRC32, every section
// carries a CRC32 of its payload, and each failure mode surfaces as a
// distinct sentinel error (ErrBadMagic, ErrVersion, ErrTruncated,
// ErrChecksum) so callers can report corruption precisely and refuse to
// serve a damaged index.
package snapio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"unsafe"
)

// hostLittleEndian reports whether the running machine stores integers the
// way the format does. On such hosts (amd64, arm64, ...) column slices are
// encoded and decoded with single bulk copies — the file bytes are exactly
// the in-memory bytes, which is what makes the format mmap-friendly. The
// per-element encoding/binary path below is the portable fallback, and the
// byte-level result is identical either way.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Magic identifies a pathhist snapshot file (8 bytes).
const Magic = "PHSNAP\x00\x01"

// Version is the current snapshot format version. Readers reject any other
// value: the format is versioned, not self-describing.
const Version uint32 = 1

// Sentinel errors, one per failure mode (wrapped with positional detail).
var (
	// ErrBadMagic means the bytes are not a snapshot file at all.
	ErrBadMagic = errors.New("snapio: bad magic (not a snapshot file)")
	// ErrVersion means the snapshot was written by an incompatible format
	// version.
	ErrVersion = errors.New("snapio: unsupported snapshot format version")
	// ErrTruncated means the file ends (or a section's payload ends) before
	// the structure it declares.
	ErrTruncated = errors.New("snapio: truncated snapshot")
	// ErrChecksum means a header or section CRC32 does not match its bytes.
	ErrChecksum = errors.New("snapio: checksum mismatch")
)

// crcTable is the Castagnoli polynomial (hardware-accelerated on amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

const (
	headerSize     = 40 // magic(8) + version(4) + flags(4) + epoch(8) + partitions(4) + sections(4) + crc(4) + pad(4)
	sectionHdrSize = 24 // kind(4) + reserved(4) + length(8) + crc(4) + pad(4)
)

// Header is the snapshot file header. Epoch and Partitions are owned by the
// index layer (snt); snapio only carries them up front so a loader can
// cross-check them against the section contents before trusting anything.
type Header struct {
	Epoch      uint64
	Partitions uint32
	Sections   uint32
}

// Writer emits a snapshot: one header, then Begin/End-framed sections. Each
// section's payload is buffered in memory (one section at a time) so its
// length and CRC can be written ahead of it; errors are sticky and surfaced
// by Close.
type Writer struct {
	w    io.Writer
	err  error
	n    int64
	buf  []byte // current section payload
	kind uint32
	open bool
	hdr  bool
}

// NewWriter returns a Writer over w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// WriteHeader writes the file header. It must be called exactly once,
// before the first Begin.
func (w *Writer) WriteHeader(h Header) {
	if w.err != nil {
		return
	}
	if w.hdr || w.open {
		w.err = errors.New("snapio: WriteHeader misuse")
		return
	}
	w.hdr = true
	var b [headerSize]byte
	copy(b[:8], Magic)
	binary.LittleEndian.PutUint32(b[8:], Version)
	binary.LittleEndian.PutUint32(b[12:], 0) // flags, reserved
	binary.LittleEndian.PutUint64(b[16:], h.Epoch)
	binary.LittleEndian.PutUint32(b[24:], h.Partitions)
	binary.LittleEndian.PutUint32(b[28:], h.Sections)
	binary.LittleEndian.PutUint32(b[32:], crc32.Checksum(b[:32], crcTable))
	w.write(b[:])
}

// Begin starts a new section of the given kind.
func (w *Writer) Begin(kind uint32) {
	if w.err != nil {
		return
	}
	if !w.hdr || w.open {
		w.err = errors.New("snapio: Begin misuse")
		return
	}
	w.kind = kind
	w.open = true
	w.buf = w.buf[:0]
}

// End finishes the current section: its header (kind, length, CRC) and the
// payload, padded to the 8-byte file alignment, are written out.
func (w *Writer) End() {
	if w.err != nil {
		return
	}
	if !w.open {
		w.err = errors.New("snapio: End without Begin")
		return
	}
	w.open = false
	var h [sectionHdrSize]byte
	binary.LittleEndian.PutUint32(h[0:], w.kind)
	binary.LittleEndian.PutUint64(h[8:], uint64(len(w.buf)))
	binary.LittleEndian.PutUint32(h[16:], crc32.Checksum(w.buf, crcTable))
	w.write(h[:])
	w.write(w.buf)
	if pad := (8 - len(w.buf)%8) % 8; pad > 0 {
		var zeros [8]byte
		w.write(zeros[:pad])
	}
}

// Close flushes nothing (sections are written eagerly) but reports the
// first error encountered, including a section left open.
func (w *Writer) Close() error {
	if w.err == nil && w.open {
		w.err = errors.New("snapio: Close with open section")
	}
	return w.err
}

// Written returns the number of bytes emitted so far.
func (w *Writer) Written() int64 { return w.n }

func (w *Writer) write(b []byte) {
	if w.err != nil {
		return
	}
	m, err := w.w.Write(b)
	w.n += int64(m)
	w.err = err
}

// --- payload scalar/slice appenders ---
// Scalars are fixed-width little-endian. Slices are written as a uint64
// element count, padding to realign to 8, then the raw elements. All of
// them keep the payload 8-byte aligned after every slice body.

// U32 appends a uint32 followed by 4 bytes of padding (alignment-preserving).
func (w *Writer) U32(v uint32) { w.U64(uint64(v)) }

// U64 appends a uint64.
func (w *Writer) U64(v uint64) {
	if !w.open {
		w.fail("U64 outside section")
		return
	}
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// I64 appends an int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Bool appends a bool as a full word (alignment-preserving).
func (w *Writer) Bool(v bool) {
	if v {
		w.U64(1)
	} else {
		w.U64(0)
	}
}

func (w *Writer) fail(msg string) {
	if w.err == nil {
		w.err = errors.New("snapio: " + msg)
	}
}

// slicePrefix appends the element count.
func (w *Writer) slicePrefix(n int) { w.U64(uint64(n)) }

// alignBuf pads the payload to an 8-byte boundary.
func (w *Writer) alignBuf() {
	for len(w.buf)%8 != 0 {
		w.buf = append(w.buf, 0)
	}
}

// rawBytes views a fixed-width integer slice as its in-memory bytes (only
// valid for the bulk copies guarded by hostLittleEndian).
func rawBytes[T ~int32 | ~int64 | ~uint16 | ~uint32 | ~uint64](v []T) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*int(unsafe.Sizeof(v[0])))
}

// WriteI32s appends a column of any int32-kinded type (e.g. trajectory
// ids) without an intermediate []int32 copy.
func WriteI32s[T ~int32](w *Writer, v []T) {
	w.slicePrefix(len(v))
	if hostLittleEndian {
		w.buf = append(w.buf, rawBytes(v)...)
	} else {
		for _, x := range v {
			w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(x))
		}
	}
	w.alignBuf()
}

// ReadI32s reads a column written by WriteI32s (or I32s) into any
// int32-kinded element type, without an intermediate []int32 copy.
func ReadI32s[T ~int32](r *Reader) []T {
	n := r.sliceLen(4, "[]int32")
	if r.err != nil || n == 0 {
		r.alignOff()
		return nil
	}
	if v, ok := view[T](r, n); ok {
		r.alignOff()
		return v
	}
	out := make([]T, n)
	if hostLittleEndian {
		r.secOff += copy(rawBytes(out), r.sec[r.secOff:r.secOff+n*4])
	} else {
		for i := range out {
			out[i] = T(binary.LittleEndian.Uint32(r.sec[r.secOff:]))
			r.secOff += 4
		}
	}
	r.alignOff()
	return out
}

// I64s appends a []int64 column.
func (w *Writer) I64s(v []int64) {
	w.slicePrefix(len(v))
	if hostLittleEndian {
		w.buf = append(w.buf, rawBytes(v)...)
		return
	}
	for _, x := range v {
		w.buf = binary.LittleEndian.AppendUint64(w.buf, uint64(x))
	}
}

// U64s appends a []uint64 column.
func (w *Writer) U64s(v []uint64) {
	w.slicePrefix(len(v))
	if hostLittleEndian {
		w.buf = append(w.buf, rawBytes(v)...)
		return
	}
	for _, x := range v {
		w.buf = binary.LittleEndian.AppendUint64(w.buf, x)
	}
}

// I32s appends a []int32 column (8-byte padded).
func (w *Writer) I32s(v []int32) { WriteI32s(w, v) }

// U32s appends a []uint32 column (8-byte padded).
func (w *Writer) U32s(v []uint32) {
	w.slicePrefix(len(v))
	if hostLittleEndian {
		w.buf = append(w.buf, rawBytes(v)...)
	} else {
		for _, x := range v {
			w.buf = binary.LittleEndian.AppendUint32(w.buf, x)
		}
	}
	w.alignBuf()
}

// U16s appends a []uint16 column (8-byte padded).
func (w *Writer) U16s(v []uint16) {
	w.slicePrefix(len(v))
	if hostLittleEndian {
		w.buf = append(w.buf, rawBytes(v)...)
	} else {
		for _, x := range v {
			w.buf = binary.LittleEndian.AppendUint16(w.buf, x)
		}
	}
	w.alignBuf()
}

// Reader decodes a snapshot from an in-memory byte slice (the whole file;
// loading is dominated by one sequential read). The header is verified at
// construction; Next verifies each section's CRC before exposing its
// payload. Scalar/slice getters use a sticky error — decode a section, then
// check Err once.
type Reader struct {
	data []byte
	off  int
	hdr  Header

	// zeroCopy makes the column getters return sub-slices of data instead
	// of heap copies when the host and alignment allow it (see view). Set
	// for readers over a read-only Mapping: the returned columns alias the
	// mapping and are immutable by contract — writing through them is a
	// fault on unix (PROT_READ) and a data race everywhere.
	zeroCopy bool

	sectionsRead uint32
	sec          []byte
	secOff       int
	kind         uint32
	err          error
}

// NewReader verifies the magic, version and header CRC and positions the
// reader at the first section. Column getters copy out of data; the caller
// owns the returned slices.
func NewReader(data []byte) (*Reader, error) {
	return newReader(data, false)
}

// NewMappedReader is NewReader in zero-copy mode: column getters return
// aligned sub-slices of data (normally a read-only Mapping) instead of heap
// copies, falling back to copies on big-endian hosts or misaligned payloads
// — the byte-level result is identical either way. Every returned column
// must be treated as immutable, and data must stay alive (and mapped) for
// as long as any decoded structure is reachable.
func NewMappedReader(data []byte) (*Reader, error) {
	return newReader(data, true)
}

func newReader(data []byte, zeroCopy bool) (*Reader, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d-byte file, %d-byte header", ErrTruncated, len(data), headerSize)
	}
	if string(data[:8]) != Magic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != Version {
		return nil, fmt.Errorf("%w: file version %d, reader supports %d", ErrVersion, v, Version)
	}
	if got, want := crc32.Checksum(data[:32], crcTable), binary.LittleEndian.Uint32(data[32:]); got != want {
		return nil, fmt.Errorf("%w: header CRC %08x, stored %08x", ErrChecksum, got, want)
	}
	r := &Reader{data: data, off: headerSize, zeroCopy: zeroCopy}
	r.hdr = Header{
		Epoch:      binary.LittleEndian.Uint64(data[16:]),
		Partitions: binary.LittleEndian.Uint32(data[24:]),
		Sections:   binary.LittleEndian.Uint32(data[28:]),
	}
	return r, nil
}

// Header returns the verified file header.
func (r *Reader) Header() Header { return r.hdr }

// ZeroCopy reports whether the reader is in zero-copy mode (constructed by
// NewMappedReader): column getters may alias the underlying bytes, so every
// structure decoded from it must treat its columns as immutable.
func (r *Reader) ZeroCopy() bool { return r.zeroCopy }

// view returns n elements of the current section payload as a []T aliasing
// the reader's bytes — the zero-copy fast path. It applies only when the
// reader is in zero-copy mode, the host is little-endian (file bytes are
// the in-memory bytes) and the payload happens to be element-aligned; the
// format guarantees 8-byte alignment relative to the file, so for a mapping
// (page-aligned) the alignment check always passes, while an arbitrary heap
// buffer may fail it and fall back to copying. The returned slice has
// cap == len: appending to it reallocates instead of writing through the
// mapping.
func view[T ~int32 | ~int64 | ~uint16 | ~uint32 | ~uint64](r *Reader, n int) ([]T, bool) {
	var zero T
	size := int(unsafe.Sizeof(zero))
	if !r.zeroCopy || !hostLittleEndian || n == 0 {
		return nil, false
	}
	p := unsafe.Pointer(&r.sec[r.secOff])
	if uintptr(p)%uintptr(size) != 0 {
		return nil, false
	}
	out := unsafe.Slice((*T)(p), n)
	r.secOff += n * size
	return out, true
}

// Next advances to the next section, verifying its checksum, and returns
// its kind. After the declared section count it returns io.EOF (and
// ErrTruncated if trailing bytes remain — a spliced file is corrupt too).
func (r *Reader) Next() (uint32, error) {
	if r.err != nil {
		return 0, r.err
	}
	if r.sectionsRead == r.hdr.Sections {
		if r.off != len(r.data) {
			return 0, fmt.Errorf("%w: %d trailing bytes after last section", ErrTruncated, len(r.data)-r.off)
		}
		return 0, io.EOF
	}
	if len(r.data)-r.off < sectionHdrSize {
		return 0, fmt.Errorf("%w: section %d header", ErrTruncated, r.sectionsRead)
	}
	h := r.data[r.off:]
	kind := binary.LittleEndian.Uint32(h)
	length := binary.LittleEndian.Uint64(h[8:])
	crc := binary.LittleEndian.Uint32(h[16:])
	r.off += sectionHdrSize
	if length > uint64(len(r.data)-r.off) {
		return 0, fmt.Errorf("%w: section %d declares %d payload bytes, %d remain",
			ErrTruncated, r.sectionsRead, length, len(r.data)-r.off)
	}
	payload := r.data[r.off : r.off+int(length)]
	if got := crc32.Checksum(payload, crcTable); got != crc {
		return 0, fmt.Errorf("%w: section %d (kind %d) CRC %08x, stored %08x",
			ErrChecksum, r.sectionsRead, kind, got, crc)
	}
	r.off += int(length)
	if pad := (8 - int(length)%8) % 8; pad > 0 {
		if len(r.data)-r.off < pad {
			return 0, fmt.Errorf("%w: section %d padding", ErrTruncated, r.sectionsRead)
		}
		r.off += pad
	}
	r.sectionsRead++
	r.sec, r.secOff, r.kind = payload, 0, kind
	return kind, nil
}

// Err returns the first decode error of the current section.
func (r *Reader) Err() error { return r.err }

// Remaining returns the unread byte count of the current section payload.
func (r *Reader) Remaining() int { return len(r.sec) - r.secOff }

func (r *Reader) failShort(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s in section kind %d at offset %d", ErrTruncated, what, r.kind, r.secOff)
	}
}

// U64 reads a uint64 scalar.
func (r *Reader) U64() uint64 {
	if r.err != nil || len(r.sec)-r.secOff < 8 {
		r.failShort("uint64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.sec[r.secOff:])
	r.secOff += 8
	return v
}

// I64 reads an int64 scalar.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// U32 reads a uint32 scalar (stored as a word).
func (r *Reader) U32() uint32 {
	v := r.U64()
	if r.err == nil && v > math.MaxUint32 {
		r.err = fmt.Errorf("snapio: uint32 field overflows: %d", v)
	}
	return uint32(v)
}

// Int reads a non-negative int scalar (stored as a word).
func (r *Reader) Int() int {
	v := r.U64()
	if r.err == nil && v > math.MaxInt64/2 {
		r.err = fmt.Errorf("snapio: int field overflows: %d", v)
	}
	return int(v)
}

// Bool reads a bool (stored as a word).
func (r *Reader) Bool() bool { return r.U64() != 0 }

// sliceLen reads and bounds-checks a slice element count: the declared
// length must fit the remaining payload, so hostile or corrupt lengths fail
// with ErrTruncated instead of attempting a huge allocation.
func (r *Reader) sliceLen(elemSize int, what string) int {
	n := r.U64()
	if r.err != nil {
		return 0
	}
	if n > uint64((len(r.sec)-r.secOff)/elemSize) {
		r.failShort(what)
		return 0
	}
	return int(n)
}

func (r *Reader) alignOff() {
	if rem := r.secOff % 8; rem != 0 {
		r.secOff += 8 - rem
	}
}

// I64s reads a []int64 column.
func (r *Reader) I64s() []int64 {
	n := r.sliceLen(8, "[]int64")
	if r.err != nil || n == 0 {
		return nil
	}
	if v, ok := view[int64](r, n); ok {
		return v
	}
	out := make([]int64, n)
	if hostLittleEndian {
		r.secOff += copy(rawBytes(out), r.sec[r.secOff:r.secOff+n*8])
		return out
	}
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(r.sec[r.secOff:]))
		r.secOff += 8
	}
	return out
}

// U64s reads a []uint64 column.
func (r *Reader) U64s() []uint64 {
	n := r.sliceLen(8, "[]uint64")
	if r.err != nil || n == 0 {
		return nil
	}
	if v, ok := view[uint64](r, n); ok {
		return v
	}
	out := make([]uint64, n)
	if hostLittleEndian {
		r.secOff += copy(rawBytes(out), r.sec[r.secOff:r.secOff+n*8])
		return out
	}
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(r.sec[r.secOff:])
		r.secOff += 8
	}
	return out
}

// I32s reads a []int32 column.
func (r *Reader) I32s() []int32 { return ReadI32s[int32](r) }

// U32s reads a []uint32 column.
func (r *Reader) U32s() []uint32 {
	n := r.sliceLen(4, "[]uint32")
	if r.err != nil || n == 0 {
		r.alignOff()
		return nil
	}
	if v, ok := view[uint32](r, n); ok {
		r.alignOff()
		return v
	}
	out := make([]uint32, n)
	if hostLittleEndian {
		r.secOff += copy(rawBytes(out), r.sec[r.secOff:r.secOff+n*4])
	} else {
		for i := range out {
			out[i] = binary.LittleEndian.Uint32(r.sec[r.secOff:])
			r.secOff += 4
		}
	}
	r.alignOff()
	return out
}

// U16s reads a []uint16 column.
func (r *Reader) U16s() []uint16 {
	n := r.sliceLen(2, "[]uint16")
	if r.err != nil || n == 0 {
		r.alignOff()
		return nil
	}
	if v, ok := view[uint16](r, n); ok {
		r.alignOff()
		return v
	}
	out := make([]uint16, n)
	if hostLittleEndian {
		r.secOff += copy(rawBytes(out), r.sec[r.secOff:r.secOff+n*2])
	} else {
		for i := range out {
			out[i] = binary.LittleEndian.Uint16(r.sec[r.secOff:])
			r.secOff += 2
		}
	}
	r.alignOff()
	return out
}
