package snapio

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"unsafe"
)

// writeTestSnapshot encodes one snapshot with a single section holding every
// column width, returning the file bytes and the values written.
func writeTestSnapshot(t *testing.T) ([]byte, []int64, []uint32, []uint16) {
	t.Helper()
	i64s := []int64{-5, 0, 7, 1 << 40}
	u32s := []uint32{1, 2, 3}
	u16s := []uint16{9, 8, 7, 6, 5}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteHeader(Header{Epoch: 11, Partitions: 1, Sections: 1})
	w.Begin(1)
	w.I64s(i64s)
	w.U32s(u32s)
	w.U16s(u16s)
	w.End()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), i64s, u32s, u16s
}

// aliases reports whether slice s points into block.
func aliases[T any](s []T, block []byte) bool {
	if len(s) == 0 || len(block) == 0 {
		return false
	}
	p := uintptr(unsafe.Pointer(unsafe.SliceData(s)))
	lo := uintptr(unsafe.Pointer(unsafe.SliceData(block)))
	return p >= lo && p < lo+uintptr(len(block))
}

// TestMappedReaderZeroCopy: a NewMappedReader decodes columns as views into
// the backing bytes — same values as the copying reader, but aliasing the
// buffer instead of fresh heap memory.
func TestMappedReaderZeroCopy(t *testing.T) {
	data, i64s, u32s, u16s := writeTestSnapshot(t)

	for _, mode := range []string{"copied", "mapped"} {
		var r *Reader
		var err error
		if mode == "mapped" {
			r, err = NewMappedReader(data)
		} else {
			r, err = NewReader(data)
		}
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if got, want := r.ZeroCopy(), mode == "mapped"; got != want {
			t.Fatalf("%s: ZeroCopy() = %v", mode, got)
		}
		if _, err := r.Next(); err != nil {
			t.Fatalf("%s: Next: %v", mode, err)
		}
		gi := r.I64s()
		gu32 := r.U32s()
		gu16 := r.U16s()
		if err := r.Err(); err != nil {
			t.Fatalf("%s: decode: %v", mode, err)
		}
		for i := range i64s {
			if gi[i] != i64s[i] {
				t.Fatalf("%s: I64s[%d] = %d, want %d", mode, i, gi[i], i64s[i])
			}
		}
		for i := range u32s {
			if gu32[i] != u32s[i] {
				t.Fatalf("%s: U32s[%d] = %d, want %d", mode, i, gu32[i], u32s[i])
			}
		}
		for i := range u16s {
			if gu16[i] != u16s[i] {
				t.Fatalf("%s: U16s[%d] = %d, want %d", mode, i, gu16[i], u16s[i])
			}
		}
		wantAlias := mode == "mapped" && hostLittleEndian
		if aliases(gi, data) != wantAlias || aliases(gu32, data) != wantAlias || aliases(gu16, data) != wantAlias {
			t.Fatalf("%s: aliasing = %v/%v/%v, want all %v", mode,
				aliases(gi, data), aliases(gu32, data), aliases(gu16, data), wantAlias)
		}
		// A view must have no spare capacity: appending to it reallocates
		// instead of writing past the column into the mapping.
		if wantAlias && (cap(gi) != len(gi) || cap(gu32) != len(gu32) || cap(gu16) != len(gu16)) {
			t.Fatalf("view capacity exceeds length: %d/%d %d/%d %d/%d",
				cap(gi), len(gi), cap(gu32), len(gu32), cap(gu16), len(gu16))
		}
	}
}

// TestMappedReaderChecksum: the mapped reader verifies section CRCs exactly
// like the copying one — corruption fails closed before any view is handed
// out.
func TestMappedReaderChecksum(t *testing.T) {
	data, _, _, _ := writeTestSnapshot(t)
	bad := append([]byte(nil), data...)
	bad[headerSize+sectionHdrSize+3] ^= 0x10 // flip one payload bit
	r, err := NewMappedReader(bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("corrupt section decoded under a mapped reader")
	}
}

// TestMapFile: the file-backed store round-trips bytes, reports its mode and
// path, serves a mapped reader, and closes cleanly (idempotently).
func TestMapFile(t *testing.T) {
	data, i64s, _, _ := writeTestSnapshot(t)
	path := filepath.Join(t.TempDir(), "snap.snt")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	m, err := MapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Path() != path {
		t.Fatalf("Path() = %q, want %q", m.Path(), path)
	}
	if !bytes.Equal(m.Data(), data) {
		t.Fatal("mapped bytes differ from the file")
	}
	r, err := NewMappedReader(m.Data())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	got := r.I64s()
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(i64s) || got[0] != i64s[0] {
		t.Fatalf("decoded %v, want %v", got, i64s)
	}
	if m.Mapped() != aliases(got, m.Data()) && hostLittleEndian {
		t.Fatalf("Mapped() = %v but view aliasing = %v", m.Mapped(), aliases(got, m.Data()))
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if m.Data() != nil {
		t.Fatal("Data() non-nil after Close")
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	// Empty files map to an empty, unmapped store; missing files fail.
	empty := filepath.Join(t.TempDir(), "empty.snt")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	me, err := MapFile(empty)
	if err != nil {
		t.Fatal(err)
	}
	if len(me.Data()) != 0 || me.Mapped() {
		t.Fatalf("empty file: %d bytes, mapped %v", len(me.Data()), me.Mapped())
	}
	if err := me.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := MapFile(filepath.Join(t.TempDir(), "nope.snt")); err == nil {
		t.Fatal("missing file mapped")
	}
}
