package snapio

import (
	"unsafe"

	"pathhist/internal/network"
	"pathhist/internal/traj"
)

// Alignment and size audit for the unsafe bulk-copy path.
//
// rawBytes views a fixed-width integer slice as its in-memory bytes, and
// WriteI32s/ReadI32s (and the I64s/U16s/U32s/U64s column codecs) memcpy
// through that view whenever hostLittleEndian holds. The soundness of
// those copies — and of pointing column slices straight into an mmap'd
// snapshot — rests on three properties this file pins at compile time, so
// a port to a new architecture or an edit to an id type fails the build
// instead of corrupting snapshots:
//
//  1. The id types serialized through the ~int32 codecs are exactly 4
//     bytes. The generic constraint already forces the underlying type,
//     but the assertions below keep the wire contract visible and break
//     loudly if an id is ever widened.
//
//  2. Every column element's alignment divides 8. Sections and columns
//     are padded to 8-byte boundaries (alignBuf/alignOff), and mmap bases
//     are page-aligned, so an 8-byte-aligned offset satisfies any element
//     alignment that divides 8. This holds for all fixed-width integers
//     on every port Go has (alignment never exceeds size, and never
//     exceeds 8), but it is the load-bearing fact, so it is asserted, not
//     assumed.
//
//  3. The header and section-header sizes match their documented layouts
//     and are themselves multiples of 8, which is what makes every
//     section payload start 8-byte aligned in the first place.
//
// Byte order is NOT assumed: rawBytes is only reached behind the
// hostLittleEndian runtime check, with a per-element encode/decode
// fallback on big-endian hosts.

// A negative constant converted to uint fails to compile: each line
// asserts its expression is zero.
const (
	_ = uint(-(headerSize % 8))     // header must keep sections 8-byte aligned
	_ = uint(-(sectionHdrSize % 8)) // section header must keep payloads 8-byte aligned
	_ = uint(-(8 % unsafe.Alignof(uint16(0))))
	_ = uint(-(8 % unsafe.Alignof(uint32(0))))
	_ = uint(-(8 % unsafe.Alignof(uint64(0))))
	_ = uint(-(8 % unsafe.Alignof(int32(0))))
	_ = uint(-(8 % unsafe.Alignof(int64(0))))
	_ = uint(-(8 % unsafe.Alignof(traj.ID(0))))
	_ = uint(-(8 % unsafe.Alignof(network.EdgeID(0))))
)

// A size drift in either direction makes one of the paired array lengths
// negative and the package fails to compile.
var (
	_ [unsafe.Sizeof(traj.ID(0)) - 4]struct{}
	_ [4 - unsafe.Sizeof(traj.ID(0))]struct{}
	_ [unsafe.Sizeof(network.EdgeID(0)) - 4]struct{}
	_ [4 - unsafe.Sizeof(network.EdgeID(0))]struct{}
)
