//go:build !unix

package snapio

import "os"

// mapFile on non-unix platforms reads the file onto the heap: the same
// backing-store interface and zero-copy decode path, without page-cache
// sharing or kernel-enforced immutability.
func mapFile(path string) (*Mapping, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &Mapping{data: data, path: path}, nil
}

func munmap(data []byte) error { return nil }
