package snapio

import (
	"bytes"
	"encoding/binary"
	"testing"
	"unsafe"

	"pathhist/internal/network"
	"pathhist/internal/traj"
)

// TestLayoutInvariants re-states the compile-time audit of layout.go as a
// runtime test, so a violation shows up as a named failure and not only as
// a build break.
func TestLayoutInvariants(t *testing.T) {
	if headerSize%8 != 0 {
		t.Errorf("headerSize = %d, not a multiple of 8", headerSize)
	}
	if sectionHdrSize%8 != 0 {
		t.Errorf("sectionHdrSize = %d, not a multiple of 8", sectionHdrSize)
	}
	checks := []struct {
		name  string
		size  uintptr
		align uintptr
	}{
		{"traj.ID", unsafe.Sizeof(traj.ID(0)), unsafe.Alignof(traj.ID(0))},
		{"network.EdgeID", unsafe.Sizeof(network.EdgeID(0)), unsafe.Alignof(network.EdgeID(0))},
		{"uint16", unsafe.Sizeof(uint16(0)), unsafe.Alignof(uint16(0))},
		{"int32", unsafe.Sizeof(int32(0)), unsafe.Alignof(int32(0))},
		{"int64", unsafe.Sizeof(int64(0)), unsafe.Alignof(int64(0))},
		{"uint64", unsafe.Sizeof(uint64(0)), unsafe.Alignof(uint64(0))},
	}
	for _, c := range checks {
		if 8%c.align != 0 {
			t.Errorf("%s alignment %d does not divide the format's 8-byte padding", c.name, c.align)
		}
		if c.align > c.size {
			t.Errorf("%s alignment %d exceeds its size %d", c.name, c.align, c.size)
		}
	}
	if got := unsafe.Sizeof(traj.ID(0)); got != 4 {
		t.Errorf("traj.ID size = %d, want 4 (wire contract of the ~int32 codecs)", got)
	}
	if got := unsafe.Sizeof(network.EdgeID(0)); got != 4 {
		t.Errorf("network.EdgeID size = %d, want 4 (wire contract of the ~int32 codecs)", got)
	}
}

// TestRawBytesMatchesEncoding proves the bulk-copy view of an id column is
// byte-for-byte the little-endian wire encoding — the equivalence the
// hostLittleEndian fast path relies on.
func TestRawBytesMatchesEncoding(t *testing.T) {
	if !hostLittleEndian {
		t.Skip("big-endian host: the bulk-copy path is disabled by construction")
	}
	ids := []traj.ID{0, 1, -2, 0x01020304, -0x7fffffff}
	var want []byte
	for _, id := range ids {
		want = binary.LittleEndian.AppendUint32(want, uint32(id))
	}
	if got := rawBytes(ids); !bytes.Equal(got, want) {
		t.Fatalf("rawBytes([]traj.ID) = % x, want % x", got, want)
	}
	ts := []int64{1, -9, 1 << 40}
	want = want[:0]
	for _, v := range ts {
		want = binary.LittleEndian.AppendUint64(want, uint64(v))
	}
	if got := rawBytes(ts); !bytes.Equal(got, want) {
		t.Fatalf("rawBytes([]int64) = % x, want % x", got, want)
	}
}
