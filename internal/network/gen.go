package network

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Rect is an axis-aligned rectangle in world meters, used to describe the
// footprint of generated built-up areas.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Contains reports whether (x, y) lies inside the rectangle.
func (r Rect) Contains(x, y float64) bool {
	return x >= r.MinX && x < r.MaxX && y >= r.MinY && y < r.MaxY
}

// Expand grows the rectangle by m meters on all sides.
func (r Rect) Expand(m float64) Rect {
	return Rect{r.MinX - m, r.MinY - m, r.MaxX + m, r.MaxY + m}
}

// GenConfig parameterises the synthetic network generator. The generator
// substitutes for the OSM North Denmark extract (DESIGN.md §1): it produces a
// hierarchical network with city street grids, arterials, inter-city
// motorways, link roads and minor categories, with speed limits partially
// unknown as in real OSM data.
type GenConfig struct {
	Seed             int64
	Cities           int     // number of cities (>= 2)
	GridSize         int     // g x g street-grid nodes per city
	GridSpacing      float64 // meters between adjacent grid nodes
	WorldSize        float64 // side of the square world in meters
	SummerAreas      int     // number of summer-house settlements
	ExtraLinks       int     // inter-city links beyond the spanning tree
	UnknownSpeedProb float64 // fraction of edges with unknown speed limit
}

// DefaultGenConfig returns the laptop-scale default used by the experiment
// harness (≈20-30k directed edges with the default workload settings).
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Seed:             42,
		Cities:           10,
		GridSize:         9,
		GridSpacing:      180,
		WorldSize:        40000,
		SummerAreas:      4,
		ExtraLinks:       4,
		UnknownSpeedProb: 0.08,
	}
}

// GenResult is the output of Generate: the graph (all edges initially
// ZoneRural; the zoning join overwrites zones) plus the built-up footprints
// the zoning generator needs.
type GenResult struct {
	Graph       *Graph
	CityRects   []Rect
	SummerRects []Rect
	// CityBorder[i] lists border vertices of city i (candidate trip
	// endpoints and inter-city connection points).
	CityBorder [][]VertexID
	// CityVertices[i] lists all grid vertices of city i.
	CityVertices [][]VertexID
}

// Generate builds a synthetic road network. It panics on nonsensical
// configuration (it is a programming error, not runtime input).
func Generate(cfg GenConfig) *GenResult {
	if cfg.Cities < 2 || cfg.GridSize < 2 {
		panic(fmt.Sprintf("network: invalid GenConfig %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := New()
	res := &GenResult{Graph: g}

	centers := placeCities(rng, cfg)
	for _, c := range centers {
		buildCityGrid(g, rng, cfg, c, res)
	}
	connectCities(g, rng, cfg, centers, res)
	for i := 0; i < cfg.SummerAreas; i++ {
		buildSummerArea(g, rng, cfg, res)
	}
	eraseSpeedLimits(g, rng, cfg)
	return res
}

type point struct{ x, y float64 }

func placeCities(rng *rand.Rand, cfg GenConfig) []point {
	margin := float64(cfg.GridSize)*cfg.GridSpacing/2 + 1500
	minSep := 3 * float64(cfg.GridSize) * cfg.GridSpacing
	var centers []point
	for len(centers) < cfg.Cities {
		p := point{
			x: margin + rng.Float64()*(cfg.WorldSize-2*margin),
			y: margin + rng.Float64()*(cfg.WorldSize-2*margin),
		}
		ok := true
		for _, c := range centers {
			if math.Hypot(c.x-p.x, c.y-p.y) < minSep {
				ok = false
				break
			}
		}
		if ok {
			centers = append(centers, p)
		} else if minSep > 500 {
			minSep *= 0.98 // relax separation so placement always terminates
		}
	}
	return centers
}

// buildCityGrid lays a g x g street grid around center. Roads: central row
// and column are primary arterials, the border ring is secondary, every
// third interior line is tertiary, the rest residential with occasional
// living streets; a few pedestrian/service spurs are attached.
func buildCityGrid(g *Graph, rng *rand.Rand, cfg GenConfig, center point, res *GenResult) {
	n := cfg.GridSize
	sp := cfg.GridSpacing
	half := float64(n-1) * sp / 2
	grid := make([][]VertexID, n)
	var all, border []VertexID
	for i := 0; i < n; i++ {
		grid[i] = make([]VertexID, n)
		for j := 0; j < n; j++ {
			jit := sp * 0.12
			x := center.x - half + float64(i)*sp + (rng.Float64()-0.5)*jit
			y := center.y - half + float64(j)*sp + (rng.Float64()-0.5)*jit
			v := g.AddVertex(x, y)
			grid[i][j] = v
			all = append(all, v)
			if i == 0 || j == 0 || i == n-1 || j == n-1 {
				border = append(border, v)
			}
		}
	}
	mid := n / 2
	lineCat := func(idx int) (Category, float64) {
		switch {
		case idx == mid:
			return Primary, 60
		case idx == 0 || idx == n-1:
			return Secondary, 50
		case idx%3 == 0:
			return Tertiary, 50
		default:
			if rng.Float64() < 0.12 {
				return LivingStreet, 15
			}
			return Residential, 30 + 10*float64(rng.Intn(2))
		}
	}
	addBoth := func(a, b VertexID, cat Category, sl float64) {
		g.AddEdge(Edge{From: a, To: b, Cat: cat, SpeedLimit: sl, Zone: ZoneRural})
		g.AddEdge(Edge{From: b, To: a, Cat: cat, SpeedLimit: sl, Zone: ZoneRural})
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i+1 < n { // horizontal edge belongs to row line j
				cat, sl := lineCat(j)
				addBoth(grid[i][j], grid[i+1][j], cat, sl)
			}
			if j+1 < n { // vertical edge belongs to column line i
				cat, sl := lineCat(i)
				addBoth(grid[i][j], grid[i][j+1], cat, sl)
			}
		}
	}
	// A few pedestrian/service spurs (slow dead ends exercising rare
	// categories without attracting routed traffic).
	for k := 0; k < 3; k++ {
		vi := all[rng.Intn(len(all))]
		vv := g.Vertex(vi)
		sx := vv.X + (rng.Float64()-0.5)*sp
		sy := vv.Y + (rng.Float64()-0.5)*sp
		s := g.AddVertex(sx, sy)
		cat := Service
		sl := 20.0
		if k == 0 {
			cat, sl = Pedestrian, 5
		}
		addBoth(vi, s, cat, sl)
	}
	res.CityRects = append(res.CityRects, Rect{
		MinX: center.x - half - sp*0.4, MinY: center.y - half - sp*0.4,
		MaxX: center.x + half + sp*0.4, MaxY: center.y + half + sp*0.4,
	})
	res.CityBorder = append(res.CityBorder, border)
	res.CityVertices = append(res.CityVertices, all)
}

// connectCities builds a spanning tree over city centers plus ExtraLinks
// shortcuts. Long links become motorways, medium trunks, short primaries;
// the first and last segment of each link is the corresponding *_link
// category.
func connectCities(g *Graph, rng *rand.Rand, cfg GenConfig, centers []point, res *GenResult) {
	k := len(centers)
	type cand struct {
		i, j int
		d    float64
	}
	var edges []cand
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			d := math.Hypot(centers[i].x-centers[j].x, centers[i].y-centers[j].y)
			edges = append(edges, cand{i, j, d})
		}
	}
	sort.Slice(edges, func(a, b int) bool { return edges[a].d < edges[b].d })
	parent := make([]int, k)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	extra := cfg.ExtraLinks
	for _, c := range edges {
		ri, rj := find(c.i), find(c.j)
		if ri != rj {
			parent[ri] = rj
			buildLink(g, rng, centers, c.i, c.j, c.d, res)
		} else if extra > 0 && c.d < cfg.WorldSize/2 {
			extra--
			buildLink(g, rng, centers, c.i, c.j, c.d, res)
		}
	}
}

func nearestBorder(g *Graph, border []VertexID, to point) VertexID {
	best := border[0]
	bd := math.Inf(1)
	for _, v := range border {
		vv := g.Vertex(v)
		d := math.Hypot(vv.X-to.x, vv.Y-to.y)
		if d < bd {
			bd = d
			best = v
		}
	}
	return best
}

func buildLink(g *Graph, rng *rand.Rand, centers []point, i, j int, dist float64, res *GenResult) {
	var cat, linkCat Category
	var sl, linkSL float64
	switch {
	case dist > 12000:
		cat, sl, linkCat, linkSL = Motorway, 110, MotorwayLink, 70
		if rng.Float64() < 0.3 {
			sl = 130
		}
	case dist > 6000:
		cat, sl, linkCat, linkSL = Trunk, 90, TrunkLink, 70
	default:
		cat, sl, linkCat, linkSL = Primary, 80, PrimaryLink, 60
	}
	a := nearestBorder(g, res.CityBorder[i], centers[j])
	b := nearestBorder(g, res.CityBorder[j], centers[i])
	av, bv := g.Vertex(a), g.Vertex(b)
	segLen := 650 + rng.Float64()*250
	nSeg := int(math.Max(2, math.Round(math.Hypot(bv.X-av.X, bv.Y-av.Y)/segLen)))
	prev := a
	for s := 1; s <= nSeg; s++ {
		var v VertexID
		if s == nSeg {
			v = b
		} else {
			t := float64(s) / float64(nSeg)
			// Perpendicular jitter gives links gentle curvature.
			px := av.X + t*(bv.X-av.X)
			py := av.Y + t*(bv.Y-av.Y)
			nx, ny := -(bv.Y - av.Y), bv.X-av.X
			nl := math.Hypot(nx, ny)
			off := (rng.Float64() - 0.5) * 220
			v = g.AddVertex(px+nx/nl*off, py+ny/nl*off)
		}
		c, s2 := cat, sl
		if s == 1 || s == nSeg {
			c, s2 = linkCat, linkSL
		}
		g.AddEdge(Edge{From: prev, To: v, Cat: c, SpeedLimit: s2, Zone: ZoneRural})
		g.AddEdge(Edge{From: v, To: prev, Cat: c, SpeedLimit: s2, Zone: ZoneRural})
		prev = v
	}
}

// buildSummerArea places a small settlement in open space and connects it to
// the nearest city border with a minor road; a couple of track edges are
// attached.
func buildSummerArea(g *Graph, rng *rand.Rand, cfg GenConfig, res *GenResult) {
	// Find open space away from cities.
	var cx, cy float64
	for try := 0; ; try++ {
		cx = 2000 + rng.Float64()*(cfg.WorldSize-4000)
		cy = 2000 + rng.Float64()*(cfg.WorldSize-4000)
		ok := true
		for _, r := range res.CityRects {
			if r.Expand(2000).Contains(cx, cy) {
				ok = false
				break
			}
		}
		if ok || try > 200 {
			break
		}
	}
	const m, sp = 3, 120
	grid := make([][]VertexID, m)
	for i := 0; i < m; i++ {
		grid[i] = make([]VertexID, m)
		for j := 0; j < m; j++ {
			grid[i][j] = g.AddVertex(cx+float64(i-1)*sp, cy+float64(j-1)*sp)
		}
	}
	addBoth := func(a, b VertexID, cat Category, sl float64) {
		g.AddEdge(Edge{From: a, To: b, Cat: cat, SpeedLimit: sl, Zone: ZoneRural})
		g.AddEdge(Edge{From: b, To: a, Cat: cat, SpeedLimit: sl, Zone: ZoneRural})
	}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if i+1 < m {
				addBoth(grid[i][j], grid[i+1][j], Unclassified, 30)
			}
			if j+1 < m {
				addBoth(grid[i][j], grid[i][j+1], Unclassified, 30)
			}
		}
	}
	// Track spur.
	t := g.AddVertex(cx+2*sp, cy+2*sp)
	addBoth(grid[m-1][m-1], t, Track, 10)
	// Access road to nearest city border vertex.
	bestCity, bestV, bd := -1, VertexID(0), math.Inf(1)
	for ci, border := range res.CityBorder {
		v := nearestBorder(g, border, point{cx, cy})
		vv := g.Vertex(v)
		if d := math.Hypot(vv.X-cx, vv.Y-cy); d < bd {
			bd, bestCity, bestV = d, ci, v
		}
	}
	_ = bestCity
	av := g.Vertex(bestV)
	nSeg := int(math.Max(1, math.Round(bd/800)))
	prev := grid[0][0]
	from := point{cx - sp, cy - sp}
	for s := 1; s <= nSeg; s++ {
		var v VertexID
		if s == nSeg {
			v = bestV
		} else {
			t := float64(s) / float64(nSeg)
			v = g.AddVertex(from.x+t*(av.X-from.x), from.y+t*(av.Y-from.y))
		}
		cat := Road
		if s%2 == 0 {
			cat = Unclassified
		}
		addBoth(prev, v, cat, 60)
		prev = v
	}
	res.SummerRects = append(res.SummerRects, Rect{
		MinX: cx - 1.6*sp, MinY: cy - 1.6*sp, MaxX: cx + 1.6*sp, MaxY: cy + 1.6*sp,
	})
}

func eraseSpeedLimits(g *Graph, rng *rand.Rand, cfg GenConfig) {
	for i := 0; i < g.NumEdges(); i++ {
		if rng.Float64() < cfg.UnknownSpeedProb {
			g.edges[i].SpeedLimit = 0
		}
	}
}
