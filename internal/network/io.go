package network

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary serialisation of a Graph: little-endian, length-prefixed.
//
//	magic "NET1" | uint32 nVertices | per vertex: float64 x, y
//	             | uint32 nEdges    | per edge: int32 from, int32 to,
//	               uint8 cat, uint8 zone, float64 speedLimit, float64 length

var netMagic = [4]byte{'N', 'E', 'T', '1'}

// WriteTo serialises the graph. Edge names are not persisted (they exist
// only on example fixtures).
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v interface{}) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := write(netMagic); err != nil {
		return n, err
	}
	if err := write(uint32(len(g.vertices))); err != nil {
		return n, err
	}
	for _, v := range g.vertices {
		if err := write(v.X); err != nil {
			return n, err
		}
		if err := write(v.Y); err != nil {
			return n, err
		}
	}
	if err := write(uint32(len(g.edges))); err != nil {
		return n, err
	}
	for i := range g.edges {
		e := &g.edges[i]
		if err := write(int32(e.From)); err != nil {
			return n, err
		}
		if err := write(int32(e.To)); err != nil {
			return n, err
		}
		if err := write(uint8(e.Cat)); err != nil {
			return n, err
		}
		if err := write(uint8(e.Zone)); err != nil {
			return n, err
		}
		if err := write(e.SpeedLimit); err != nil {
			return n, err
		}
		if err := write(e.Length); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadGraph deserialises a graph written by WriteTo.
func ReadGraph(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, fmt.Errorf("network: reading magic: %w", err)
	}
	if m != netMagic {
		return nil, fmt.Errorf("network: bad magic %q", m[:])
	}
	var nv uint32
	if err := binary.Read(br, binary.LittleEndian, &nv); err != nil {
		return nil, err
	}
	g := New()
	for i := uint32(0); i < nv; i++ {
		var x, y float64
		if err := binary.Read(br, binary.LittleEndian, &x); err != nil {
			return nil, fmt.Errorf("network: vertex %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &y); err != nil {
			return nil, fmt.Errorf("network: vertex %d: %w", i, err)
		}
		g.AddVertex(x, y)
	}
	var ne uint32
	if err := binary.Read(br, binary.LittleEndian, &ne); err != nil {
		return nil, err
	}
	for i := uint32(0); i < ne; i++ {
		var from, to int32
		var cat, zone uint8
		var sl, length float64
		if err := binary.Read(br, binary.LittleEndian, &from); err != nil {
			return nil, fmt.Errorf("network: edge %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &to); err != nil {
			return nil, fmt.Errorf("network: edge %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &cat); err != nil {
			return nil, fmt.Errorf("network: edge %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &zone); err != nil {
			return nil, fmt.Errorf("network: edge %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &sl); err != nil {
			return nil, fmt.Errorf("network: edge %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &length); err != nil {
			return nil, fmt.Errorf("network: edge %d: %w", i, err)
		}
		g.AddEdge(Edge{
			From: VertexID(from), To: VertexID(to),
			Cat: Category(cat), Zone: Zone(zone),
			SpeedLimit: sl, Length: length,
		})
	}
	return g, nil
}
