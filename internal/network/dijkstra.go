package network

import (
	"container/heap"
	"math"
)

// Router computes time-weighted shortest paths over a Graph. It is used by
// the trip simulator to generate realistic vehicle routes; it is not part of
// the paper's query pipeline itself (the paper assumes routes are given).
type Router struct {
	g *Graph
	// scratch buffers reused across queries
	dist []float64
	prev []EdgeID
	seen []int32
	gen  int32
}

// NewRouter returns a Router over g.
func NewRouter(g *Graph) *Router {
	n := g.NumVertices()
	return &Router{
		g:    g,
		dist: make([]float64, n),
		prev: make([]EdgeID, n),
		seen: make([]int32, n),
	}
}

type pqItem struct {
	v VertexID
	d float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].d < q[j].d }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Route returns the minimum speed-limit-time path from src to dst, or nil if
// dst is unreachable. The returned path is freshly allocated.
func (r *Router) Route(src, dst VertexID) Path {
	if src == dst {
		return nil
	}
	g := r.g
	r.gen++
	gen := r.gen
	r.dist[src] = 0
	r.seen[src] = gen
	r.prev[src] = NoEdge
	q := pq{{v: src, d: 0}}
	for len(q) > 0 {
		it := heap.Pop(&q).(pqItem)
		if r.seen[it.v] == gen && it.d > r.dist[it.v] {
			continue // stale entry
		}
		if it.v == dst {
			break
		}
		for _, eid := range g.Out(it.v) {
			e := g.Edge(eid)
			w := g.EstimateTT(eid)
			nd := it.d + w
			if r.seen[e.To] != gen || nd < r.dist[e.To] {
				r.seen[e.To] = gen
				r.dist[e.To] = nd
				r.prev[e.To] = eid
				heap.Push(&q, pqItem{v: e.To, d: nd})
			}
		}
	}
	if r.seen[dst] != gen || math.IsInf(r.dist[dst], 1) {
		return nil
	}
	// Reconstruct.
	var rev Path
	for v := dst; v != src; {
		eid := r.prev[v]
		if eid == NoEdge {
			return nil
		}
		rev = append(rev, eid)
		v = r.g.Edge(eid).From
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
