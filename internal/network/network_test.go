package network

import (
	"math"
	"testing"
)

func TestPaperExampleTable1(t *testing.T) {
	g, ids := PaperExample()
	want := []struct {
		name string
		cat  Category
		zone Zone
		sl   float64
		l    float64
		tt   float64 // Table 1 estimateTT, rounded to 0.1 s
	}{
		{"A", Motorway, ZoneRural, 110, 900, 29.5},
		{"B", Primary, ZoneCity, 50, 120, 8.6},
		{"C", Secondary, ZoneCity, 30, 40, 4.8},
		{"D", Secondary, ZoneCity, 30, 80, 9.6},
		{"E", Primary, ZoneCity, 50, 100, 7.2},
		{"F", Primary, ZoneRural, 80, 800, 36.0},
	}
	for _, w := range want {
		id, ok := ids[w.name]
		if !ok {
			t.Fatalf("missing segment %q", w.name)
		}
		e := g.Edge(id)
		if e.Cat != w.cat || e.Zone != w.zone || e.SpeedLimit != w.sl || e.Length != w.l {
			t.Errorf("%s: got %+v", w.name, e)
		}
		got := math.Round(g.EstimateTT(id)*10) / 10
		if got != w.tt {
			t.Errorf("%s: estimateTT = %v, want %v", w.name, got, w.tt)
		}
	}
}

func TestPaperExamplePaths(t *testing.T) {
	g, ids := PaperExample()
	paths := [][]string{{"A", "B", "E"}, {"A", "C", "D", "E"}, {"A", "B", "F"}}
	for _, names := range paths {
		var p Path
		for _, n := range names {
			p = append(p, ids[n])
		}
		if !g.IsTraversable(p) {
			t.Errorf("path %v not traversable", names)
		}
	}
	bad := Path{ids["A"], ids["D"]}
	if g.IsTraversable(bad) {
		t.Error("path <A,D> should not be traversable")
	}
}

func TestMedianSpeedLimitFallback(t *testing.T) {
	g := New()
	v0 := g.AddVertex(0, 0)
	v1 := g.AddVertex(1000, 0)
	g.AddEdge(Edge{From: v0, To: v1, Cat: Primary, SpeedLimit: 80})
	g.AddEdge(Edge{From: v1, To: v0, Cat: Primary, SpeedLimit: 60})
	unknown := g.AddEdge(Edge{From: v0, To: v1, Cat: Primary, SpeedLimit: 0})
	if got := g.SpeedLimitOf(unknown); got != 70 {
		t.Errorf("median fallback = %v, want 70 (median of 80, 60)", got)
	}
	// Category with no known limits at all falls back to the global default.
	e2 := g.AddEdge(Edge{From: v0, To: v1, Cat: Track, SpeedLimit: 0})
	if got := g.SpeedLimitOf(e2); got != 50 {
		t.Errorf("global fallback = %v, want 50", got)
	}
	// Odd count median.
	g.AddEdge(Edge{From: v0, To: v1, Cat: Primary, SpeedLimit: 100})
	if got := g.SpeedLimitOf(unknown); got != 80 {
		t.Errorf("odd median = %v, want 80", got)
	}
}

func TestEstimateTTSecondsAtLeastOne(t *testing.T) {
	g := New()
	v0 := g.AddVertex(0, 0)
	v1 := g.AddVertex(1, 0)
	e := g.AddEdge(Edge{From: v0, To: v1, Cat: Residential, SpeedLimit: 50, Length: 1})
	if got := g.EstimateTTSeconds(e); got != 1 {
		t.Errorf("EstimateTTSeconds tiny edge = %d, want 1", got)
	}
}

func TestEdgeLengthDerivedFromGeometry(t *testing.T) {
	g := New()
	v0 := g.AddVertex(0, 0)
	v1 := g.AddVertex(300, 400)
	e := g.AddEdge(Edge{From: v0, To: v1, Cat: Primary, SpeedLimit: 50})
	if got := g.Edge(e).Length; got != 500 {
		t.Errorf("derived length = %v, want 500", got)
	}
}

func TestTurnBetween(t *testing.T) {
	g := New()
	c := g.AddVertex(0, 0)
	e := g.AddVertex(100, 0)   // east
	n := g.AddVertex(100, 100) // north of e
	s := g.AddVertex(100, -90) // south of e
	e2 := g.AddVertex(210, 5)  // roughly further east
	in := g.AddEdge(Edge{From: c, To: e, Cat: Primary, SpeedLimit: 50})
	left := g.AddEdge(Edge{From: e, To: n, Cat: Primary, SpeedLimit: 50})
	right := g.AddEdge(Edge{From: e, To: s, Cat: Primary, SpeedLimit: 50})
	straight := g.AddEdge(Edge{From: e, To: e2, Cat: Primary, SpeedLimit: 50})
	back := g.AddEdge(Edge{From: e, To: c, Cat: Primary, SpeedLimit: 50})
	if got := g.TurnBetween(in, left); got != TurnLeft {
		t.Errorf("left turn = %v", got)
	}
	if got := g.TurnBetween(in, right); got != TurnRight {
		t.Errorf("right turn = %v", got)
	}
	if got := g.TurnBetween(in, straight); got != TurnStraight {
		t.Errorf("straight = %v", got)
	}
	if got := g.TurnBetween(in, back); got != TurnUTurn {
		t.Errorf("u-turn = %v", got)
	}
}

func TestRouterOnPaperExample(t *testing.T) {
	g, ids := PaperExample()
	r := NewRouter(g)
	// From start of A to end of E the fastest route is A,B,E
	// (A+B+E = 29.5+8.6+7.2 = 45.3 s vs A+C+D+E = 29.5+4.8+9.6+7.2 = 51.1 s).
	src := g.Edge(ids["A"]).From
	dst := g.Edge(ids["E"]).To
	p := r.Route(src, dst)
	want := Path{ids["A"], ids["B"], ids["E"]}
	if len(p) != len(want) {
		t.Fatalf("route = %v, want %v", p, want)
	}
	for i := range p {
		if p[i] != want[i] {
			t.Fatalf("route = %v, want %v", p, want)
		}
	}
	if !g.IsTraversable(p) {
		t.Error("routed path not traversable")
	}
	// Unreachable: nothing leaves the end of F.
	if got := r.Route(g.Edge(ids["F"]).To, src); got != nil {
		t.Errorf("expected nil route, got %v", got)
	}
	// Trivial: src == dst.
	if got := r.Route(src, src); got != nil {
		t.Errorf("expected nil route for src==dst, got %v", got)
	}
}

func TestGenerateInvariants(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Cities = 5
	cfg.GridSize = 6
	res := Generate(cfg)
	g := res.Graph
	if g.NumEdges() < 1000 {
		t.Fatalf("generated only %d edges", g.NumEdges())
	}
	if len(res.CityRects) != cfg.Cities || len(res.CityBorder) != cfg.Cities {
		t.Fatalf("city metadata missing: %d rects, %d borders",
			len(res.CityRects), len(res.SummerRects))
	}
	if len(res.SummerRects) != cfg.SummerAreas {
		t.Fatalf("summer areas = %d, want %d", len(res.SummerRects), cfg.SummerAreas)
	}
	// Every edge references valid vertices and has positive length.
	seenCat := map[Category]bool{}
	unknown := 0
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(EdgeID(i))
		if e.From < 0 || int(e.From) >= g.NumVertices() || e.To < 0 || int(e.To) >= g.NumVertices() {
			t.Fatalf("edge %d has invalid endpoints %+v", i, e)
		}
		if e.Length <= 0 {
			t.Fatalf("edge %d has length %v", i, e.Length)
		}
		seenCat[e.Cat] = true
		if e.SpeedLimit == 0 {
			unknown++
		}
	}
	for _, c := range []Category{Motorway, Primary, Secondary, Residential} {
		if !seenCat[c] {
			t.Errorf("category %v absent from generated network", c)
		}
	}
	if unknown == 0 {
		t.Error("no edges with unknown speed limit; median fallback untested by workload")
	}
	// Cities are mutually reachable via the router.
	r := NewRouter(g)
	for i := 1; i < cfg.Cities; i++ {
		p := r.Route(res.CityBorder[0][0], res.CityBorder[i][0])
		if p == nil {
			t.Fatalf("city 0 cannot reach city %d", i)
		}
		if !g.IsTraversable(p) {
			t.Fatalf("route to city %d not traversable", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Cities = 3
	cfg.GridSize = 5
	a := Generate(cfg)
	b := Generate(cfg)
	if a.Graph.NumEdges() != b.Graph.NumEdges() || a.Graph.NumVertices() != b.Graph.NumVertices() {
		t.Fatalf("same seed produced different sizes: %d/%d vs %d/%d",
			a.Graph.NumEdges(), a.Graph.NumVertices(), b.Graph.NumEdges(), b.Graph.NumVertices())
	}
	for i := 0; i < a.Graph.NumEdges(); i++ {
		ea, eb := a.Graph.Edge(EdgeID(i)), b.Graph.Edge(EdgeID(i))
		if ea != eb {
			t.Fatalf("edge %d differs: %+v vs %+v", i, ea, eb)
		}
	}
}

func TestPathHelpers(t *testing.T) {
	g, ids := PaperExample()
	p := Path{ids["A"], ids["C"], ids["D"], ids["E"]}
	if got := g.PathLength(p); got != 900+40+80+100 {
		t.Errorf("PathLength = %v", got)
	}
	sub := p.Sub(1, 3)
	if len(sub) != 2 || sub[0] != ids["C"] || sub[1] != ids["D"] {
		t.Errorf("Sub = %v", sub)
	}
	if got := math.Round(g.EstimatePathTT(p)*10) / 10; got != 51.1 {
		t.Errorf("EstimatePathTT = %v, want 51.1", got)
	}
}

func TestCategoryAndZoneStrings(t *testing.T) {
	if Motorway.String() != "motorway" || Road.String() != "road" {
		t.Error("category names wrong")
	}
	if ZoneCity.String() != "city" || ZoneAmbiguous.String() != "ambiguous" {
		t.Error("zone names wrong")
	}
	if Category(200).String() == "" || Zone(200).String() == "" {
		t.Error("out-of-range names should not be empty")
	}
	if !Motorway.IsMainRoad() || !Trunk.IsMainRoad() || Residential.IsMainRoad() || Secondary.IsMainRoad() {
		t.Error("IsMainRoad misclassifies")
	}
}
