package network

// PaperExample builds the example road network of Figure 1 / Table 1:
//
//	segment  category   zone   speed limit  length  estimateTT
//	A        motorway   rural  110          900     29.5 s
//	B        primary    city    50          120      8.6 s
//	C        secondary  city    30           40      4.8 s
//	D        secondary  city    30           80      9.6 s
//	E        primary    city    50          100      7.2 s
//	F        primary    rural   80          800     36.0 s
//
// The topology admits exactly the trajectory paths used throughout the
// paper's examples: <A,B,E>, <A,C,D,E>, <A,B,F>. The returned map resolves
// the segment names "A".."F" to edge ids.
func PaperExample() (*Graph, map[string]EdgeID) {
	g := New()
	v0 := g.AddVertex(0, 0)
	v1 := g.AddVertex(900, 0)   // end of A: B and C diverge
	v2 := g.AddVertex(1020, 30) // end of B / D: E and F diverge
	v3 := g.AddVertex(940, 60)  // end of C: start of D
	v4 := g.AddVertex(1120, 40) // end of E
	v5 := g.AddVertex(1800, 50) // end of F

	ids := map[string]EdgeID{
		"A": g.AddEdge(Edge{From: v0, To: v1, Cat: Motorway, Zone: ZoneRural, SpeedLimit: 110, Length: 900, Name: "A"}),
		"B": g.AddEdge(Edge{From: v1, To: v2, Cat: Primary, Zone: ZoneCity, SpeedLimit: 50, Length: 120, Name: "B"}),
		"C": g.AddEdge(Edge{From: v1, To: v3, Cat: Secondary, Zone: ZoneCity, SpeedLimit: 30, Length: 40, Name: "C"}),
		"D": g.AddEdge(Edge{From: v3, To: v2, Cat: Secondary, Zone: ZoneCity, SpeedLimit: 30, Length: 80, Name: "D"}),
		"E": g.AddEdge(Edge{From: v2, To: v4, Cat: Primary, Zone: ZoneCity, SpeedLimit: 50, Length: 100, Name: "E"}),
		"F": g.AddEdge(Edge{From: v2, To: v5, Cat: Primary, Zone: ZoneRural, SpeedLimit: 80, Length: 800, Name: "F"}),
	}
	return g, ids
}
