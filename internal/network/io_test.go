package network

import (
	"bytes"
	"testing"
)

func TestGraphRoundTrip(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Cities = 3
	cfg.GridSize = 5
	g := Generate(cfg).Graph
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := ReadGraph(&buf)
	if err != nil {
		t.Fatalf("ReadGraph: %v", err)
	}
	if got.NumVertices() != g.NumVertices() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("sizes differ: %d/%d vs %d/%d",
			got.NumVertices(), got.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for i := 0; i < g.NumVertices(); i++ {
		if got.Vertex(VertexID(i)) != g.Vertex(VertexID(i)) {
			t.Fatalf("vertex %d differs", i)
		}
	}
	for i := 0; i < g.NumEdges(); i++ {
		a, b := g.Edge(EdgeID(i)), got.Edge(EdgeID(i))
		a.Name = "" // names are not persisted
		if a != b {
			t.Fatalf("edge %d differs: %+v vs %+v", i, a, b)
		}
	}
	// Adjacency was rebuilt.
	if len(got.Out(0)) != len(g.Out(0)) {
		t.Error("adjacency not rebuilt")
	}
	// Median fallback still works.
	if got.MedianSpeedLimit(Primary) != g.MedianSpeedLimit(Primary) {
		t.Error("median speed limits differ")
	}
}

func TestReadGraphErrors(t *testing.T) {
	if _, err := ReadGraph(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadGraph(bytes.NewReader(nil)); err == nil {
		t.Error("empty accepted")
	}
	g, _ := PaperExample()
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadGraph(bytes.NewReader(buf.Bytes()[:buf.Len()-3])); err == nil {
		t.Error("truncated accepted")
	}
}
