// Package network models the spatial road network G = (V, E, F) of the
// paper (Section 2.2): a directed graph whose edges represent one driving
// direction of a road segment, annotated by the function set
// F : E -> Cat x Z x SL x L (road category, zone type, speed limit, length).
//
// The package also provides the speed-limit travel-time fallback estimateTT
// (Table 1), time-weighted shortest paths used by the trip simulator, and a
// deterministic synthetic generator that substitutes for the OpenStreetMap
// extract used in the paper (see DESIGN.md §1).
package network

import (
	"fmt"
	"math"
)

// VertexID identifies a graph vertex.
type VertexID int32

// EdgeID identifies a directed edge (one direction of a road segment).
type EdgeID int32

// NoEdge is the invalid edge sentinel.
const NoEdge EdgeID = -1

// Category is an OSM-style road category. The paper's map has 17 categories;
// the same 17 are modelled here.
type Category uint8

// The 17 road categories (Section 5.1.1).
const (
	Motorway Category = iota
	Trunk
	Primary
	Secondary
	Tertiary
	Unclassified
	Residential
	MotorwayLink
	TrunkLink
	PrimaryLink
	SecondaryLink
	TertiaryLink
	LivingStreet
	Service
	Pedestrian
	Track
	Road
	NumCategories // number of categories, not a category itself
)

var categoryNames = [NumCategories]string{
	"motorway", "trunk", "primary", "secondary", "tertiary", "unclassified",
	"residential", "motorway_link", "trunk_link", "primary_link",
	"secondary_link", "tertiary_link", "living_street", "service",
	"pedestrian", "track", "road",
}

// String returns the OSM-style name of the category.
func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return fmt.Sprintf("category(%d)", uint8(c))
}

// IsMainRoad reports whether the category is a "main road" in the sense of
// the πMDM partitioning method: motorways and other major roads connecting
// cities (Section 6.1).
func (c Category) IsMainRoad() bool {
	switch c {
	case Motorway, Trunk, Primary, MotorwayLink, TrunkLink:
		return true
	}
	return false
}

// Zone is the zone type of the area a segment lies in (Section 5.1.2).
type Zone uint8

// The three zoning-map categories plus the derived ambiguous type.
const (
	ZoneCity Zone = iota
	ZoneRural
	ZoneSummerHouse
	ZoneAmbiguous
	NumZones
)

var zoneNames = [NumZones]string{"city", "rural", "summer_house", "ambiguous"}

// String returns the zone-type name.
func (z Zone) String() string {
	if int(z) < len(zoneNames) {
		return zoneNames[z]
	}
	return fmt.Sprintf("zone(%d)", uint8(z))
}

// Vertex is a graph vertex with planar coordinates in meters.
type Vertex struct {
	X, Y float64
}

// Edge is a directed edge and its F-annotations.
type Edge struct {
	From, To   VertexID
	Cat        Category
	Zone       Zone
	SpeedLimit float64 // km/h; 0 means unknown (median fallback applies)
	Length     float64 // meters
	Name       string  // optional human-readable label ("A".."F" in examples)
}

// Graph is the spatial network. The zero value is unusable; construct with
// New and add vertices/edges, or use Generate.
type Graph struct {
	vertices []Vertex
	edges    []Edge
	out      [][]EdgeID // outgoing edges per vertex
	in       [][]EdgeID // incoming edges per vertex

	medianSL   [NumCategories]float64 // per-category median of known limits
	medianOnce bool
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// AddVertex appends a vertex and returns its id.
func (g *Graph) AddVertex(x, y float64) VertexID {
	g.vertices = append(g.vertices, Vertex{X: x, Y: y})
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return VertexID(len(g.vertices) - 1)
}

// AddEdge appends a directed edge and returns its id. If the edge's Length is
// zero it is derived from the vertex coordinates.
func (g *Graph) AddEdge(e Edge) EdgeID {
	if e.From < 0 || int(e.From) >= len(g.vertices) || e.To < 0 || int(e.To) >= len(g.vertices) {
		panic(fmt.Sprintf("network: AddEdge with out-of-range endpoint %d->%d", e.From, e.To))
	}
	if e.Length == 0 {
		e.Length = g.Distance(e.From, e.To)
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, e)
	g.out[e.From] = append(g.out[e.From], id)
	g.in[e.To] = append(g.in[e.To], id)
	g.medianOnce = false
	return id
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.vertices) }

// NumEdges returns |E| (directed edges).
func (g *Graph) NumEdges() int { return len(g.edges) }

// Vertex returns the vertex with the given id.
func (g *Graph) Vertex(v VertexID) Vertex { return g.vertices[v] }

// Edge returns the edge with the given id.
func (g *Graph) Edge(e EdgeID) Edge { return g.edges[e] }

// SetZone overwrites the zone annotation of an edge (used by the zoning join).
func (g *Graph) SetZone(e EdgeID, z Zone) { g.edges[e].Zone = z }

// Out returns the outgoing edge ids of v. The slice must not be modified.
func (g *Graph) Out(v VertexID) []EdgeID { return g.out[v] }

// In returns the incoming edge ids of v. The slice must not be modified.
func (g *Graph) In(v VertexID) []EdgeID { return g.in[v] }

// Distance returns the Euclidean distance between two vertices in meters.
func (g *Graph) Distance(a, b VertexID) float64 {
	va, vb := g.vertices[a], g.vertices[b]
	return math.Hypot(va.X-vb.X, va.Y-vb.Y)
}

// Midpoint returns the planar midpoint of an edge.
func (g *Graph) Midpoint(e EdgeID) (x, y float64) {
	ed := g.edges[e]
	a, b := g.vertices[ed.From], g.vertices[ed.To]
	return (a.X + b.X) / 2, (a.Y + b.Y) / 2
}

// MedianSpeedLimit returns the median of all known speed limits of the
// category, the fallback the paper uses when a segment's limit is unknown
// (Section 5.1.1). If the category has no known limits at all, a global
// default of 50 km/h is returned.
func (g *Graph) MedianSpeedLimit(c Category) float64 {
	if !g.medianOnce {
		g.computeMedians()
	}
	if m := g.medianSL[c]; m > 0 {
		return m
	}
	return 50
}

func (g *Graph) computeMedians() {
	var per [NumCategories][]float64
	for i := range g.edges {
		e := &g.edges[i]
		if e.SpeedLimit > 0 {
			per[e.Cat] = append(per[e.Cat], e.SpeedLimit)
		}
	}
	for c := range per {
		g.medianSL[c] = median(per[c])
	}
	g.medianOnce = true
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	// Insertion sort into a copy: category lists are small and this avoids
	// importing sort for a single call site.
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// SpeedLimitOf returns the effective speed limit of e in km/h, applying the
// per-category median fallback for unknown limits.
func (g *Graph) SpeedLimitOf(e EdgeID) float64 {
	ed := &g.edges[e]
	if ed.SpeedLimit > 0 {
		return ed.SpeedLimit
	}
	return g.MedianSpeedLimit(ed.Cat)
}

// EstimateTT returns the traversal time of e in seconds if the segment is
// traversed at its (effective) speed limit:
//
//	estimateTT(e) = 3.6 * F(e).l / F(e).sl
//
// This is the data-free fallback of Section 2.2 / Table 1.
func (g *Graph) EstimateTT(e EdgeID) float64 {
	sl := g.SpeedLimitOf(e)
	return 3.6 * g.edges[e].Length / sl
}

// EstimateTTSeconds returns EstimateTT rounded to whole seconds, at least 1,
// the value fed into histograms by the Procedure 5 fallback.
func (g *Graph) EstimateTTSeconds(e EdgeID) int {
	s := int(math.Round(g.EstimateTT(e)))
	if s < 1 {
		s = 1
	}
	return s
}

// Path is a traversable sequence of directed edges P = <e0, ..., el-1>.
type Path []EdgeID

// Sub returns the sub-path P[i, j) (Section 2.2). The result aliases P.
func (p Path) Sub(i, j int) Path { return p[i:j] }

// LengthMeters returns the summed segment lengths of the path.
func (g *Graph) PathLength(p Path) float64 {
	var sum float64
	for _, e := range p {
		sum += g.edges[e].Length
	}
	return sum
}

// IsTraversable reports whether consecutive edges of p share endpoints
// (e_i.To == e_{i+1}.From).
func (g *Graph) IsTraversable(p Path) bool {
	for i := 1; i < len(p); i++ {
		if g.edges[p[i-1]].To != g.edges[p[i]].From {
			return false
		}
	}
	return true
}

// EstimatePathTT returns the speed-limit travel time of a whole path in
// seconds (the "speed limits only" baseline of Section 6.1).
func (g *Graph) EstimatePathTT(p Path) float64 {
	var sum float64
	for _, e := range p {
		sum += g.EstimateTT(e)
	}
	return sum
}

// Turn classifies the turning movement between two consecutive edges.
type Turn uint8

// Turning movements at intersections, used by the trip simulator to model
// the intersection costs that motivate path-based estimation (Section 1).
const (
	TurnStraight Turn = iota
	TurnRight
	TurnLeft
	TurnUTurn
)

// TurnBetween classifies the movement from edge a onto edge b using the
// signed angle between their direction vectors.
func (g *Graph) TurnBetween(a, b EdgeID) Turn {
	ea, eb := g.edges[a], g.edges[b]
	ax := g.vertices[ea.To].X - g.vertices[ea.From].X
	ay := g.vertices[ea.To].Y - g.vertices[ea.From].Y
	bx := g.vertices[eb.To].X - g.vertices[eb.From].X
	by := g.vertices[eb.To].Y - g.vertices[eb.From].Y
	// Angle of b relative to a in (-pi, pi].
	ang := math.Atan2(ax*by-ay*bx, ax*bx+ay*by)
	deg := ang * 180 / math.Pi
	switch {
	case deg > 135 || deg < -135:
		return TurnUTurn
	case deg > 45:
		return TurnLeft
	case deg < -45:
		return TurnRight
	default:
		return TurnStraight
	}
}
