package analysis

import (
	"go/ast"
	"go/types"
)

// SyncErr enforces the fail-closed durability discipline of DESIGN.md
// §10-§12 (PR 7's ErrWALFailed latch): the error of every operation that
// moves acknowledged bytes toward the disk — file writes, fsyncs,
// truncations, renames, and the Close that flushes a write — must be
// checked, propagated, or explicitly latched. A discarded Sync error is
// the exact failure mode that silently breaks "acknowledged ⇒ fsynced ⇒
// recovered": the client saw a 200, the platter never saw the bytes.
//
// Flagged: calls whose error result is dropped (expression statements and
// assignments to blank identifiers only) to
//   - (*os.File) Write / WriteAt / Sync / Truncate / Close,
//   - os.Rename,
//   - Close / Sync methods of types declared in internal/wal and
//     internal/snapio.
//
// `defer f.Close()` is exempt: on read paths it is idiomatic and harmless,
// and the repo's write paths all Sync-then-Close explicitly before the
// deferred cleanup runs. Deliberate best-effort discards (error-path
// cleanup where the primary error must win) carry a //lint:ignore syncerr
// directive with the justification.
var SyncErr = &Analyzer{
	Name: "syncerr",
	Doc: "durability-path errors (os.File Write/Sync/Truncate/Close, " +
		"os.Rename, wal/snapio Close/Sync) must be checked or explicitly latched",
	Run: runSyncErr,
}

// durabilityPkgs are the packages whose own Close/Sync methods latch or
// surface durability state.
var durabilityPkgs = map[string]bool{
	"pathhist/internal/wal":    true,
	"pathhist/internal/snapio": true,
}

func runSyncErr(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					checkSyncCall(pass, call, false)
				}
			case *ast.DeferStmt:
				checkSyncCall(pass, st.Call, true)
			case *ast.GoStmt:
				checkSyncCall(pass, st.Call, true)
			case *ast.AssignStmt:
				if len(st.Rhs) != 1 {
					return true
				}
				call, ok := st.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, lhs := range st.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); !ok || id.Name != "_" {
						return true // some result is kept
					}
				}
				checkSyncCall(pass, call, false)
			}
			return true
		})
	}
}

// checkSyncCall reports call if it discards a durability error. deferred
// exempts Close (but not Sync/Write/Rename — deferring those still drops
// the error).
func checkSyncCall(pass *Pass, call *ast.CallExpr, deferred bool) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || !returnsError(fn) {
		return
	}
	name := fn.Name()
	pkgPath, recv := funcOwner(fn)
	var target bool
	switch {
	case recv == "File" && pkgPath == "os":
		switch name {
		case "Write", "WriteAt", "WriteString", "Sync", "Truncate", "Close":
			target = true
		}
	case recv == "" && pkgPath == "os" && name == "Rename":
		target = true
	case durabilityPkgs[pkgPath] && (name == "Close" || name == "Sync"):
		target = true
	}
	if !target {
		return
	}
	if deferred && name == "Close" {
		return
	}
	what := name
	if recv != "" {
		what = "(" + recv + ")." + name
	}
	pass.Reportf(call.Pos(),
		"discarded error from %s on the durability path; check it, propagate it, "+
			"or latch it fail-closed (//lint:ignore syncerr <reason> for deliberate best-effort)",
		what)
}

// returnsError reports whether fn's last result is an error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}
